file(REMOVE_RECURSE
  "CMakeFiles/log_anomaly_detection.dir/log_anomaly_detection.cc.o"
  "CMakeFiles/log_anomaly_detection.dir/log_anomaly_detection.cc.o.d"
  "log_anomaly_detection"
  "log_anomaly_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_anomaly_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
