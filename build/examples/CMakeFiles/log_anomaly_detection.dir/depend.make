# Empty dependencies file for log_anomaly_detection.
# This may be replaced when dependencies are built.
