file(REMOVE_RECURSE
  "CMakeFiles/trajectory_anomaly.dir/trajectory_anomaly.cc.o"
  "CMakeFiles/trajectory_anomaly.dir/trajectory_anomaly.cc.o.d"
  "trajectory_anomaly"
  "trajectory_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
