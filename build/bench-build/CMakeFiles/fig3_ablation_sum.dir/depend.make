# Empty dependencies file for fig3_ablation_sum.
# This may be replaced when dependencies are built.
