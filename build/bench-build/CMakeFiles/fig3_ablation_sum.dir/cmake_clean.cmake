file(REMOVE_RECURSE
  "../bench/fig3_ablation_sum"
  "../bench/fig3_ablation_sum.pdb"
  "CMakeFiles/fig3_ablation_sum.dir/fig3_ablation_sum.cc.o"
  "CMakeFiles/fig3_ablation_sum.dir/fig3_ablation_sum.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ablation_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
