file(REMOVE_RECURSE
  "../bench/fig5_hparam_sensitivity"
  "../bench/fig5_hparam_sensitivity.pdb"
  "CMakeFiles/fig5_hparam_sensitivity.dir/fig5_hparam_sensitivity.cc.o"
  "CMakeFiles/fig5_hparam_sensitivity.dir/fig5_hparam_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hparam_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
