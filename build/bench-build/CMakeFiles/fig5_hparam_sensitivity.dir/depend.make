# Empty dependencies file for fig5_hparam_sensitivity.
# This may be replaced when dependencies are built.
