file(REMOVE_RECURSE
  "../bench/fig1_motivating_example"
  "../bench/fig1_motivating_example.pdb"
  "CMakeFiles/fig1_motivating_example.dir/fig1_motivating_example.cc.o"
  "CMakeFiles/fig1_motivating_example.dir/fig1_motivating_example.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_motivating_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
