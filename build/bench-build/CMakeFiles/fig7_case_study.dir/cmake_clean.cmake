file(REMOVE_RECURSE
  "../bench/fig7_case_study"
  "../bench/fig7_case_study.pdb"
  "CMakeFiles/fig7_case_study.dir/fig7_case_study.cc.o"
  "CMakeFiles/fig7_case_study.dir/fig7_case_study.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
