file(REMOVE_RECURSE
  "../bench/table3_global_extractor"
  "../bench/table3_global_extractor.pdb"
  "CMakeFiles/table3_global_extractor.dir/table3_global_extractor.cc.o"
  "CMakeFiles/table3_global_extractor.dir/table3_global_extractor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_global_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
