# Empty dependencies file for table3_global_extractor.
# This may be replaced when dependencies are built.
