file(REMOVE_RECURSE
  "../bench/fig6_runtime"
  "../bench/fig6_runtime.pdb"
  "CMakeFiles/fig6_runtime.dir/fig6_runtime.cc.o"
  "CMakeFiles/fig6_runtime.dir/fig6_runtime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
