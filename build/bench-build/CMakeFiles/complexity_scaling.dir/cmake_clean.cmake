file(REMOVE_RECURSE
  "../bench/complexity_scaling"
  "../bench/complexity_scaling.pdb"
  "CMakeFiles/complexity_scaling.dir/complexity_scaling.cc.o"
  "CMakeFiles/complexity_scaling.dir/complexity_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
