file(REMOVE_RECURSE
  "../bench/fig4_ablation_gru"
  "../bench/fig4_ablation_gru.pdb"
  "CMakeFiles/fig4_ablation_gru.dir/fig4_ablation_gru.cc.o"
  "CMakeFiles/fig4_ablation_gru.dir/fig4_ablation_gru.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ablation_gru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
