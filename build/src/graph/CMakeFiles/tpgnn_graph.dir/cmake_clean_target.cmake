file(REMOVE_RECURSE
  "libtpgnn_graph.a"
)
