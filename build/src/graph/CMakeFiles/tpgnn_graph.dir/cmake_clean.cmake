file(REMOVE_RECURSE
  "CMakeFiles/tpgnn_graph.dir/adjacency.cc.o"
  "CMakeFiles/tpgnn_graph.dir/adjacency.cc.o.d"
  "CMakeFiles/tpgnn_graph.dir/eigen.cc.o"
  "CMakeFiles/tpgnn_graph.dir/eigen.cc.o.d"
  "CMakeFiles/tpgnn_graph.dir/influence.cc.o"
  "CMakeFiles/tpgnn_graph.dir/influence.cc.o.d"
  "CMakeFiles/tpgnn_graph.dir/io.cc.o"
  "CMakeFiles/tpgnn_graph.dir/io.cc.o.d"
  "CMakeFiles/tpgnn_graph.dir/neighbor_index.cc.o"
  "CMakeFiles/tpgnn_graph.dir/neighbor_index.cc.o.d"
  "CMakeFiles/tpgnn_graph.dir/snapshot.cc.o"
  "CMakeFiles/tpgnn_graph.dir/snapshot.cc.o.d"
  "CMakeFiles/tpgnn_graph.dir/stats.cc.o"
  "CMakeFiles/tpgnn_graph.dir/stats.cc.o.d"
  "CMakeFiles/tpgnn_graph.dir/temporal_graph.cc.o"
  "CMakeFiles/tpgnn_graph.dir/temporal_graph.cc.o.d"
  "libtpgnn_graph.a"
  "libtpgnn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpgnn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
