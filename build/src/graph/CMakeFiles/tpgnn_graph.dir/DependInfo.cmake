
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/adjacency.cc" "src/graph/CMakeFiles/tpgnn_graph.dir/adjacency.cc.o" "gcc" "src/graph/CMakeFiles/tpgnn_graph.dir/adjacency.cc.o.d"
  "/root/repo/src/graph/eigen.cc" "src/graph/CMakeFiles/tpgnn_graph.dir/eigen.cc.o" "gcc" "src/graph/CMakeFiles/tpgnn_graph.dir/eigen.cc.o.d"
  "/root/repo/src/graph/influence.cc" "src/graph/CMakeFiles/tpgnn_graph.dir/influence.cc.o" "gcc" "src/graph/CMakeFiles/tpgnn_graph.dir/influence.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/tpgnn_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/tpgnn_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/neighbor_index.cc" "src/graph/CMakeFiles/tpgnn_graph.dir/neighbor_index.cc.o" "gcc" "src/graph/CMakeFiles/tpgnn_graph.dir/neighbor_index.cc.o.d"
  "/root/repo/src/graph/snapshot.cc" "src/graph/CMakeFiles/tpgnn_graph.dir/snapshot.cc.o" "gcc" "src/graph/CMakeFiles/tpgnn_graph.dir/snapshot.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/tpgnn_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/tpgnn_graph.dir/stats.cc.o.d"
  "/root/repo/src/graph/temporal_graph.cc" "src/graph/CMakeFiles/tpgnn_graph.dir/temporal_graph.cc.o" "gcc" "src/graph/CMakeFiles/tpgnn_graph.dir/temporal_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/tpgnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tpgnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
