# Empty dependencies file for tpgnn_graph.
# This may be replaced when dependencies are built.
