file(REMOVE_RECURSE
  "CMakeFiles/tpgnn_nn.dir/attention.cc.o"
  "CMakeFiles/tpgnn_nn.dir/attention.cc.o.d"
  "CMakeFiles/tpgnn_nn.dir/checkpoint.cc.o"
  "CMakeFiles/tpgnn_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/tpgnn_nn.dir/embedding.cc.o"
  "CMakeFiles/tpgnn_nn.dir/embedding.cc.o.d"
  "CMakeFiles/tpgnn_nn.dir/gru_cell.cc.o"
  "CMakeFiles/tpgnn_nn.dir/gru_cell.cc.o.d"
  "CMakeFiles/tpgnn_nn.dir/init.cc.o"
  "CMakeFiles/tpgnn_nn.dir/init.cc.o.d"
  "CMakeFiles/tpgnn_nn.dir/linear.cc.o"
  "CMakeFiles/tpgnn_nn.dir/linear.cc.o.d"
  "CMakeFiles/tpgnn_nn.dir/lstm_cell.cc.o"
  "CMakeFiles/tpgnn_nn.dir/lstm_cell.cc.o.d"
  "CMakeFiles/tpgnn_nn.dir/module.cc.o"
  "CMakeFiles/tpgnn_nn.dir/module.cc.o.d"
  "CMakeFiles/tpgnn_nn.dir/optimizer.cc.o"
  "CMakeFiles/tpgnn_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/tpgnn_nn.dir/time_encoding.cc.o"
  "CMakeFiles/tpgnn_nn.dir/time_encoding.cc.o.d"
  "libtpgnn_nn.a"
  "libtpgnn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpgnn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
