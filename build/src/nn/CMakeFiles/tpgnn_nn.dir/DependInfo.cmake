
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/tpgnn_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/tpgnn_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/checkpoint.cc" "src/nn/CMakeFiles/tpgnn_nn.dir/checkpoint.cc.o" "gcc" "src/nn/CMakeFiles/tpgnn_nn.dir/checkpoint.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/tpgnn_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/tpgnn_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/gru_cell.cc" "src/nn/CMakeFiles/tpgnn_nn.dir/gru_cell.cc.o" "gcc" "src/nn/CMakeFiles/tpgnn_nn.dir/gru_cell.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/tpgnn_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/tpgnn_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/tpgnn_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/tpgnn_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/lstm_cell.cc" "src/nn/CMakeFiles/tpgnn_nn.dir/lstm_cell.cc.o" "gcc" "src/nn/CMakeFiles/tpgnn_nn.dir/lstm_cell.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/tpgnn_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/tpgnn_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/tpgnn_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/tpgnn_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/time_encoding.cc" "src/nn/CMakeFiles/tpgnn_nn.dir/time_encoding.cc.o" "gcc" "src/nn/CMakeFiles/tpgnn_nn.dir/time_encoding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/tpgnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tpgnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
