# Empty compiler generated dependencies file for tpgnn_nn.
# This may be replaced when dependencies are built.
