# Empty dependencies file for tpgnn_nn.
# This may be replaced when dependencies are built.
