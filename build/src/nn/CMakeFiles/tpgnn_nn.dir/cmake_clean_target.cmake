file(REMOVE_RECURSE
  "libtpgnn_nn.a"
)
