file(REMOVE_RECURSE
  "CMakeFiles/tpgnn_util.dir/env.cc.o"
  "CMakeFiles/tpgnn_util.dir/env.cc.o.d"
  "CMakeFiles/tpgnn_util.dir/logging.cc.o"
  "CMakeFiles/tpgnn_util.dir/logging.cc.o.d"
  "CMakeFiles/tpgnn_util.dir/rng.cc.o"
  "CMakeFiles/tpgnn_util.dir/rng.cc.o.d"
  "CMakeFiles/tpgnn_util.dir/status.cc.o"
  "CMakeFiles/tpgnn_util.dir/status.cc.o.d"
  "libtpgnn_util.a"
  "libtpgnn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpgnn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
