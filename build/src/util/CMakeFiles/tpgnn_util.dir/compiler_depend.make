# Empty compiler generated dependencies file for tpgnn_util.
# This may be replaced when dependencies are built.
