file(REMOVE_RECURSE
  "libtpgnn_util.a"
)
