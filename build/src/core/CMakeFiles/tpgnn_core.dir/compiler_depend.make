# Empty compiler generated dependencies file for tpgnn_core.
# This may be replaced when dependencies are built.
