
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/tpgnn_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/tpgnn_core.dir/config.cc.o.d"
  "/root/repo/src/core/global_extractor.cc" "src/core/CMakeFiles/tpgnn_core.dir/global_extractor.cc.o" "gcc" "src/core/CMakeFiles/tpgnn_core.dir/global_extractor.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/tpgnn_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/tpgnn_core.dir/model.cc.o.d"
  "/root/repo/src/core/temporal_propagation.cc" "src/core/CMakeFiles/tpgnn_core.dir/temporal_propagation.cc.o" "gcc" "src/core/CMakeFiles/tpgnn_core.dir/temporal_propagation.cc.o.d"
  "/root/repo/src/core/transformer_extractor.cc" "src/core/CMakeFiles/tpgnn_core.dir/transformer_extractor.cc.o" "gcc" "src/core/CMakeFiles/tpgnn_core.dir/transformer_extractor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/tpgnn_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tpgnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tpgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tpgnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tpgnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
