# Empty dependencies file for tpgnn_core.
# This may be replaced when dependencies are built.
