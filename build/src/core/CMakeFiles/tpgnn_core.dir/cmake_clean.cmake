file(REMOVE_RECURSE
  "CMakeFiles/tpgnn_core.dir/config.cc.o"
  "CMakeFiles/tpgnn_core.dir/config.cc.o.d"
  "CMakeFiles/tpgnn_core.dir/global_extractor.cc.o"
  "CMakeFiles/tpgnn_core.dir/global_extractor.cc.o.d"
  "CMakeFiles/tpgnn_core.dir/model.cc.o"
  "CMakeFiles/tpgnn_core.dir/model.cc.o.d"
  "CMakeFiles/tpgnn_core.dir/temporal_propagation.cc.o"
  "CMakeFiles/tpgnn_core.dir/temporal_propagation.cc.o.d"
  "CMakeFiles/tpgnn_core.dir/transformer_extractor.cc.o"
  "CMakeFiles/tpgnn_core.dir/transformer_extractor.cc.o.d"
  "libtpgnn_core.a"
  "libtpgnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpgnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
