file(REMOVE_RECURSE
  "libtpgnn_core.a"
)
