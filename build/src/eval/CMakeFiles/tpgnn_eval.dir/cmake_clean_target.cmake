file(REMOVE_RECURSE
  "libtpgnn_eval.a"
)
