file(REMOVE_RECURSE
  "CMakeFiles/tpgnn_eval.dir/experiment.cc.o"
  "CMakeFiles/tpgnn_eval.dir/experiment.cc.o.d"
  "CMakeFiles/tpgnn_eval.dir/metrics.cc.o"
  "CMakeFiles/tpgnn_eval.dir/metrics.cc.o.d"
  "CMakeFiles/tpgnn_eval.dir/trainer.cc.o"
  "CMakeFiles/tpgnn_eval.dir/trainer.cc.o.d"
  "libtpgnn_eval.a"
  "libtpgnn_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpgnn_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
