# Empty dependencies file for tpgnn_eval.
# This may be replaced when dependencies are built.
