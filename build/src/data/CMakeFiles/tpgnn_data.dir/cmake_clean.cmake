file(REMOVE_RECURSE
  "CMakeFiles/tpgnn_data.dir/dataset_spec.cc.o"
  "CMakeFiles/tpgnn_data.dir/dataset_spec.cc.o.d"
  "CMakeFiles/tpgnn_data.dir/datasets.cc.o"
  "CMakeFiles/tpgnn_data.dir/datasets.cc.o.d"
  "CMakeFiles/tpgnn_data.dir/log_session_generator.cc.o"
  "CMakeFiles/tpgnn_data.dir/log_session_generator.cc.o.d"
  "CMakeFiles/tpgnn_data.dir/negative_sampling.cc.o"
  "CMakeFiles/tpgnn_data.dir/negative_sampling.cc.o.d"
  "CMakeFiles/tpgnn_data.dir/trajectory_generator.cc.o"
  "CMakeFiles/tpgnn_data.dir/trajectory_generator.cc.o.d"
  "libtpgnn_data.a"
  "libtpgnn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpgnn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
