
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset_spec.cc" "src/data/CMakeFiles/tpgnn_data.dir/dataset_spec.cc.o" "gcc" "src/data/CMakeFiles/tpgnn_data.dir/dataset_spec.cc.o.d"
  "/root/repo/src/data/datasets.cc" "src/data/CMakeFiles/tpgnn_data.dir/datasets.cc.o" "gcc" "src/data/CMakeFiles/tpgnn_data.dir/datasets.cc.o.d"
  "/root/repo/src/data/log_session_generator.cc" "src/data/CMakeFiles/tpgnn_data.dir/log_session_generator.cc.o" "gcc" "src/data/CMakeFiles/tpgnn_data.dir/log_session_generator.cc.o.d"
  "/root/repo/src/data/negative_sampling.cc" "src/data/CMakeFiles/tpgnn_data.dir/negative_sampling.cc.o" "gcc" "src/data/CMakeFiles/tpgnn_data.dir/negative_sampling.cc.o.d"
  "/root/repo/src/data/trajectory_generator.cc" "src/data/CMakeFiles/tpgnn_data.dir/trajectory_generator.cc.o" "gcc" "src/data/CMakeFiles/tpgnn_data.dir/trajectory_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tpgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tpgnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tpgnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
