file(REMOVE_RECURSE
  "libtpgnn_data.a"
)
