# Empty compiler generated dependencies file for tpgnn_data.
# This may be replaced when dependencies are built.
