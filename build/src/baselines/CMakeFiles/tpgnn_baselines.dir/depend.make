# Empty dependencies file for tpgnn_baselines.
# This may be replaced when dependencies are built.
