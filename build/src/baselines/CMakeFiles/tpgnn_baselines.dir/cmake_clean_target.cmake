file(REMOVE_RECURSE
  "libtpgnn_baselines.a"
)
