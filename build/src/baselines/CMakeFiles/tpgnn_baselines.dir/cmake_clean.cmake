file(REMOVE_RECURSE
  "CMakeFiles/tpgnn_baselines.dir/baseline.cc.o"
  "CMakeFiles/tpgnn_baselines.dir/baseline.cc.o.d"
  "CMakeFiles/tpgnn_baselines.dir/baselines.cc.o"
  "CMakeFiles/tpgnn_baselines.dir/baselines.cc.o.d"
  "CMakeFiles/tpgnn_baselines.dir/continuous.cc.o"
  "CMakeFiles/tpgnn_baselines.dir/continuous.cc.o.d"
  "CMakeFiles/tpgnn_baselines.dir/discrete.cc.o"
  "CMakeFiles/tpgnn_baselines.dir/discrete.cc.o.d"
  "CMakeFiles/tpgnn_baselines.dir/spectral.cc.o"
  "CMakeFiles/tpgnn_baselines.dir/spectral.cc.o.d"
  "CMakeFiles/tpgnn_baselines.dir/static_gnn.cc.o"
  "CMakeFiles/tpgnn_baselines.dir/static_gnn.cc.o.d"
  "libtpgnn_baselines.a"
  "libtpgnn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpgnn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
