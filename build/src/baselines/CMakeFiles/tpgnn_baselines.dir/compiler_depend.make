# Empty compiler generated dependencies file for tpgnn_baselines.
# This may be replaced when dependencies are built.
