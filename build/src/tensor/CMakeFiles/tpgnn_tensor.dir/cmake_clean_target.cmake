file(REMOVE_RECURSE
  "libtpgnn_tensor.a"
)
