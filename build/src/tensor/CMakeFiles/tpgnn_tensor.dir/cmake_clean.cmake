file(REMOVE_RECURSE
  "CMakeFiles/tpgnn_tensor.dir/ops.cc.o"
  "CMakeFiles/tpgnn_tensor.dir/ops.cc.o.d"
  "CMakeFiles/tpgnn_tensor.dir/tensor.cc.o"
  "CMakeFiles/tpgnn_tensor.dir/tensor.cc.o.d"
  "libtpgnn_tensor.a"
  "libtpgnn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpgnn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
