# Empty compiler generated dependencies file for tpgnn_tensor.
# This may be replaced when dependencies are built.
