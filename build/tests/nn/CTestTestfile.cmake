# CMake generated Testfile for 
# Source directory: /root/repo/tests/nn
# Build directory: /root/repo/build/tests/nn
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nn/nn_module_test[1]_include.cmake")
include("/root/repo/build/tests/nn/nn_layers_test[1]_include.cmake")
include("/root/repo/build/tests/nn/nn_recurrent_test[1]_include.cmake")
include("/root/repo/build/tests/nn/nn_attention_test[1]_include.cmake")
include("/root/repo/build/tests/nn/nn_optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/nn/nn_checkpoint_test[1]_include.cmake")
