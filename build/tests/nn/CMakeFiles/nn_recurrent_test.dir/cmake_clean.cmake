file(REMOVE_RECURSE
  "CMakeFiles/nn_recurrent_test.dir/recurrent_test.cc.o"
  "CMakeFiles/nn_recurrent_test.dir/recurrent_test.cc.o.d"
  "nn_recurrent_test"
  "nn_recurrent_test.pdb"
  "nn_recurrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_recurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
