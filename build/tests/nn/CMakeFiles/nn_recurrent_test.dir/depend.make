# Empty dependencies file for nn_recurrent_test.
# This may be replaced when dependencies are built.
