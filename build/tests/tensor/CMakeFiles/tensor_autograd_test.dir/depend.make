# Empty dependencies file for tensor_autograd_test.
# This may be replaced when dependencies are built.
