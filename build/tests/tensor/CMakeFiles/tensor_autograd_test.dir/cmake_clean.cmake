file(REMOVE_RECURSE
  "CMakeFiles/tensor_autograd_test.dir/autograd_test.cc.o"
  "CMakeFiles/tensor_autograd_test.dir/autograd_test.cc.o.d"
  "tensor_autograd_test"
  "tensor_autograd_test.pdb"
  "tensor_autograd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_autograd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
