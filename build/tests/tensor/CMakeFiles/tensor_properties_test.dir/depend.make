# Empty dependencies file for tensor_properties_test.
# This may be replaced when dependencies are built.
