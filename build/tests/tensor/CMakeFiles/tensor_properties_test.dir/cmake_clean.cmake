file(REMOVE_RECURSE
  "CMakeFiles/tensor_properties_test.dir/properties_test.cc.o"
  "CMakeFiles/tensor_properties_test.dir/properties_test.cc.o.d"
  "tensor_properties_test"
  "tensor_properties_test.pdb"
  "tensor_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
