# CMake generated Testfile for 
# Source directory: /root/repo/tests/graph
# Build directory: /root/repo/build/tests/graph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/graph/graph_temporal_graph_test[1]_include.cmake")
include("/root/repo/build/tests/graph/graph_adjacency_test[1]_include.cmake")
include("/root/repo/build/tests/graph/graph_snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/graph/graph_eigen_test[1]_include.cmake")
include("/root/repo/build/tests/graph/graph_neighbor_index_test[1]_include.cmake")
include("/root/repo/build/tests/graph/graph_influence_test[1]_include.cmake")
include("/root/repo/build/tests/graph/graph_stats_test[1]_include.cmake")
include("/root/repo/build/tests/graph/graph_io_test[1]_include.cmake")
