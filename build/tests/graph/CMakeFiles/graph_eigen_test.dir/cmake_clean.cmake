file(REMOVE_RECURSE
  "CMakeFiles/graph_eigen_test.dir/eigen_test.cc.o"
  "CMakeFiles/graph_eigen_test.dir/eigen_test.cc.o.d"
  "graph_eigen_test"
  "graph_eigen_test.pdb"
  "graph_eigen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_eigen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
