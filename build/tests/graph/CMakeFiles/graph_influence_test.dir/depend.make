# Empty dependencies file for graph_influence_test.
# This may be replaced when dependencies are built.
