file(REMOVE_RECURSE
  "CMakeFiles/graph_influence_test.dir/influence_test.cc.o"
  "CMakeFiles/graph_influence_test.dir/influence_test.cc.o.d"
  "graph_influence_test"
  "graph_influence_test.pdb"
  "graph_influence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_influence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
