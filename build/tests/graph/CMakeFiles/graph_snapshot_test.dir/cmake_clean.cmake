file(REMOVE_RECURSE
  "CMakeFiles/graph_snapshot_test.dir/snapshot_test.cc.o"
  "CMakeFiles/graph_snapshot_test.dir/snapshot_test.cc.o.d"
  "graph_snapshot_test"
  "graph_snapshot_test.pdb"
  "graph_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
