# Empty dependencies file for graph_snapshot_test.
# This may be replaced when dependencies are built.
