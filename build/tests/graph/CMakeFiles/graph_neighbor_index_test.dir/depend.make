# Empty dependencies file for graph_neighbor_index_test.
# This may be replaced when dependencies are built.
