file(REMOVE_RECURSE
  "CMakeFiles/graph_neighbor_index_test.dir/neighbor_index_test.cc.o"
  "CMakeFiles/graph_neighbor_index_test.dir/neighbor_index_test.cc.o.d"
  "graph_neighbor_index_test"
  "graph_neighbor_index_test.pdb"
  "graph_neighbor_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_neighbor_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
