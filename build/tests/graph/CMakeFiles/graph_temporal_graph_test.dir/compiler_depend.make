# Empty compiler generated dependencies file for graph_temporal_graph_test.
# This may be replaced when dependencies are built.
