file(REMOVE_RECURSE
  "CMakeFiles/graph_temporal_graph_test.dir/temporal_graph_test.cc.o"
  "CMakeFiles/graph_temporal_graph_test.dir/temporal_graph_test.cc.o.d"
  "graph_temporal_graph_test"
  "graph_temporal_graph_test.pdb"
  "graph_temporal_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_temporal_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
