file(REMOVE_RECURSE
  "CMakeFiles/baselines_suite_test.dir/suite_test.cc.o"
  "CMakeFiles/baselines_suite_test.dir/suite_test.cc.o.d"
  "baselines_suite_test"
  "baselines_suite_test.pdb"
  "baselines_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
