# Empty dependencies file for baselines_suite_test.
# This may be replaced when dependencies are built.
