file(REMOVE_RECURSE
  "CMakeFiles/baselines_static_test.dir/static_test.cc.o"
  "CMakeFiles/baselines_static_test.dir/static_test.cc.o.d"
  "baselines_static_test"
  "baselines_static_test.pdb"
  "baselines_static_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_static_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
