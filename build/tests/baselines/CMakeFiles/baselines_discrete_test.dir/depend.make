# Empty dependencies file for baselines_discrete_test.
# This may be replaced when dependencies are built.
