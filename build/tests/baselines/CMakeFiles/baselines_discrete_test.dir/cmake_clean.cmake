file(REMOVE_RECURSE
  "CMakeFiles/baselines_discrete_test.dir/discrete_test.cc.o"
  "CMakeFiles/baselines_discrete_test.dir/discrete_test.cc.o.d"
  "baselines_discrete_test"
  "baselines_discrete_test.pdb"
  "baselines_discrete_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_discrete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
