file(REMOVE_RECURSE
  "CMakeFiles/baselines_continuous_test.dir/continuous_test.cc.o"
  "CMakeFiles/baselines_continuous_test.dir/continuous_test.cc.o.d"
  "baselines_continuous_test"
  "baselines_continuous_test.pdb"
  "baselines_continuous_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_continuous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
