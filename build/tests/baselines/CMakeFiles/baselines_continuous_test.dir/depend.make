# Empty dependencies file for baselines_continuous_test.
# This may be replaced when dependencies are built.
