# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/core_propagation_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_theorem1_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_extractor_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_model_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_extensions_test[1]_include.cmake")
