# Empty dependencies file for core_theorem1_test.
# This may be replaced when dependencies are built.
