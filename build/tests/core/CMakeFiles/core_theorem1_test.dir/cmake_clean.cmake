file(REMOVE_RECURSE
  "CMakeFiles/core_theorem1_test.dir/theorem1_test.cc.o"
  "CMakeFiles/core_theorem1_test.dir/theorem1_test.cc.o.d"
  "core_theorem1_test"
  "core_theorem1_test.pdb"
  "core_theorem1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_theorem1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
