file(REMOVE_RECURSE
  "CMakeFiles/eval_auc_test.dir/auc_test.cc.o"
  "CMakeFiles/eval_auc_test.dir/auc_test.cc.o.d"
  "eval_auc_test"
  "eval_auc_test.pdb"
  "eval_auc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_auc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
