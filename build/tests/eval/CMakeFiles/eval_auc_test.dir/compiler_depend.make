# Empty compiler generated dependencies file for eval_auc_test.
# This may be replaced when dependencies are built.
