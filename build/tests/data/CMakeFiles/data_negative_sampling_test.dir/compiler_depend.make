# Empty compiler generated dependencies file for data_negative_sampling_test.
# This may be replaced when dependencies are built.
