file(REMOVE_RECURSE
  "CMakeFiles/data_negative_sampling_test.dir/negative_sampling_test.cc.o"
  "CMakeFiles/data_negative_sampling_test.dir/negative_sampling_test.cc.o.d"
  "data_negative_sampling_test"
  "data_negative_sampling_test.pdb"
  "data_negative_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_negative_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
