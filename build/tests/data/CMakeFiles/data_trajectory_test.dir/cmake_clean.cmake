file(REMOVE_RECURSE
  "CMakeFiles/data_trajectory_test.dir/trajectory_test.cc.o"
  "CMakeFiles/data_trajectory_test.dir/trajectory_test.cc.o.d"
  "data_trajectory_test"
  "data_trajectory_test.pdb"
  "data_trajectory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_trajectory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
