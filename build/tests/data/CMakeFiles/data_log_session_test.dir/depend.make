# Empty dependencies file for data_log_session_test.
# This may be replaced when dependencies are built.
