file(REMOVE_RECURSE
  "CMakeFiles/data_log_session_test.dir/log_session_test.cc.o"
  "CMakeFiles/data_log_session_test.dir/log_session_test.cc.o.d"
  "data_log_session_test"
  "data_log_session_test.pdb"
  "data_log_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_log_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
