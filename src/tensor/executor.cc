#include "tensor/executor.h"

#include <atomic>
#include <limits>

#include "util/logging.h"

namespace tpgnn::tensor::plan {

namespace {

// Summed bytes of all live executor arenas + high-water mark. Updated on
// the (rare) grow path and in the destructor, never per Run.
std::atomic<uint64_t> g_arena_bytes_live{0};
std::atomic<uint64_t> g_arena_bytes_peak{0};

void AddArenaBytes(uint64_t bytes) {
  const uint64_t live =
      g_arena_bytes_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = g_arena_bytes_peak.load(std::memory_order_relaxed);
  while (live > peak && !g_arena_bytes_peak.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

}  // namespace

uint64_t ArenaBytesLive() {
  return g_arena_bytes_live.load(std::memory_order_relaxed);
}

uint64_t ArenaBytesPeak() {
  return g_arena_bytes_peak.load(std::memory_order_relaxed);
}

PlanExecutor::~PlanExecutor() {
  g_arena_bytes_live.fetch_sub(arena_.size() * sizeof(float),
                               std::memory_order_relaxed);
}

namespace {

inline const float* In(const ValueRef& ref, const RunContext& ctx,
                       ParamTable params, const float* arena) {
  switch (ref.kind) {
    case ValueRef::Kind::kSrcRow:
      return ctx.src + ref.offset;
    case ValueRef::Kind::kDstRow:
      return ctx.dst + ref.offset;
    case ValueRef::Kind::kMRow:
      return ctx.m + ref.offset;
    case ValueRef::Kind::kAux:
      return ctx.aux + ref.offset;
    case ValueRef::Kind::kArena:
      return arena + ref.offset;
    case ValueRef::Kind::kParam:
      return params[ref.index];
    case ValueRef::Kind::kNone:
      break;
  }
  TPGNN_CHECK(false) << "unbound plan operand";
  return nullptr;
}

inline float* Out(const ValueRef& ref, const RunContext& ctx, float* arena) {
  switch (ref.kind) {
    case ValueRef::Kind::kDstRow:
      return ctx.dst + ref.offset;
    case ValueRef::Kind::kMRow:
      return ctx.m + ref.offset;
    case ValueRef::Kind::kArena:
      return arena + ref.offset;
    default:
      break;
  }
  TPGNN_CHECK(false) << "plan op writes a read-only operand";
  return nullptr;
}

}  // namespace

void PlanExecutor::Run(const CompiledProgram& program, ParamTable params,
                       const RunContext& ctx) {
  if (static_cast<size_t>(program.arena_size()) > arena_.size()) {
    const size_t grown =
        static_cast<size_t>(program.arena_size()) - arena_.size();
    arena_.resize(static_cast<size_t>(program.arena_size()));
    ++arena_grows_;
    AddArenaBytes(grown * sizeof(float));
  }
  float* arena = arena_.data();
  if (poison_) {
    const float nan = std::numeric_limits<float>::quiet_NaN();
    for (float& v : arena_) v = nan;
  }
  const Kernels& ker = ActiveKernels();

  for (const PlanOp& op : program.ops()) {
    switch (op.code) {
      case OpCode::kZero:
        ker.zero(Out(op.a, ctx, arena), op.n);
        break;
      case OpCode::kCopy:
        ker.copy(Out(op.a, ctx, arena), In(op.b, ctx, params, arena), op.n);
        break;
      case OpCode::kAddAccumulate:
        ker.add_accumulate(Out(op.a, ctx, arena),
                           In(op.b, ctx, params, arena), op.n);
        break;
      case OpCode::kTanh:
        ker.tanh_inplace(Out(op.a, ctx, arena), op.n);
        break;
      case OpCode::kTanhAdd:
        ker.tanh_add(Out(op.a, ctx, arena), In(op.b, ctx, params, arena),
                     op.n);
        break;
      case OpCode::kGemv:
        ker.gemm_accumulate(In(op.b, ctx, params, arena),
                            In(op.c, ctx, params, arena),
                            Out(op.a, ctx, arena), 1, op.k, op.n);
        break;
      case OpCode::kSigmoidBias:
        ker.sigmoid_bias(Out(op.a, ctx, arena), In(op.b, ctx, params, arena),
                         op.n);
        break;
      case OpCode::kGruCandidate:
        ker.gru_candidate(Out(op.a, ctx, arena),
                          In(op.b, ctx, params, arena),
                          In(op.c, ctx, params, arena),
                          In(op.d, ctx, params, arena),
                          In(op.e, ctx, params, arena), op.n);
        break;
      case OpCode::kGruBlend:
        ker.gru_blend(Out(op.a, ctx, arena), In(op.b, ctx, params, arena),
                      In(op.c, ctx, params, arena),
                      In(op.d, ctx, params, arena), op.n);
        break;
      case OpCode::kTime2Vec:
        ker.time2vec(Out(op.a, ctx, arena), ctx.t,
                     In(op.b, ctx, params, arena),
                     In(op.c, ctx, params, arena),
                     In(op.d, ctx, params, arena),
                     In(op.e, ctx, params, arena), op.n);
        break;
      case OpCode::kPhasor:
        ker.phasor(Out(op.a, ctx, arena), Out(op.b, ctx, arena), ctx.t,
                   In(op.c, ctx, params, arena),
                   In(op.d, ctx, params, arena), op.n);
        break;
      case OpCode::kTimeCount: {
        float* m = Out(op.a, ctx, arena);
        m[0] = ctx.t + m[0];
        m[1] = 1.0f + m[1];
        break;
      }
      case OpCode::kRotatePairs:
        ker.rotate_pairs(Out(op.a, ctx, arena),
                         In(op.b, ctx, params, arena),
                         In(op.c, ctx, params, arena),
                         In(op.d, ctx, params, arena),
                         In(op.e, ctx, params, arena), op.n);
        break;
      case OpCode::kLinearCorrect: {
        const float* m = In(op.b, ctx, params, arena);
        const float* w0 = In(op.c, ctx, params, arena);
        const float* phi0 = In(op.d, ctx, params, arena);
        // Mirrors the recorded correction's association: sn = Σt·sf first,
        // both products rounded separately, then summed.
        const float sn = m[0] * ctx.t;
        const float kf = m[1];
        const float lin_w = w0[0] * sn;
        const float lin_p = phi0[0] * kf;
        Out(op.a, ctx, arena)[0] = lin_w + lin_p;
        break;
      }
      case OpCode::kScaleByCount: {
        const float* m = In(op.b, ctx, params, arena);
        const float kf = m[1];
        const float invk = kf > 0.0f ? 1.0f / kf : 1.0f;
        ker.scale_inplace(Out(op.a, ctx, arena), invk, op.n);
        break;
      }
    }
  }
}

}  // namespace tpgnn::tensor::plan
