#ifndef TPGNN_TENSOR_PLAN_H_
#define TPGNN_TENSOR_PLAN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

// Planned per-edge execution (DESIGN.md §4.6). The per-edge compute graph of
// the temporal propagation — the node-state update, the SUM time-accumulator
// fold, and the per-row readout — is compiled ONCE per configuration into a
// static op list over symbolic operands (the edge's src/dst rows, the
// accumulator row, parameter-table slots, and arena temporaries). Compilation
// plans every temporary into a single preallocated arena with liveness-based
// slot reuse; execution (tensor/executor.h) then walks the op list with zero
// allocation and zero virtual dispatch, calling the runtime-selected SIMD
// kernel table (tensor/kernels.h).
//
// Programs are pure shape: they reference parameters by slot index, never by
// pointer, so one compiled program serves every model with the same
// PlanSpec. The process-wide PlanCache shares them; re-planning happens
// exactly when a spec (config) changes.

namespace tpgnn::tensor::plan {

// Parameter-table slots. A model binds a ParamTable (slot -> const float*)
// once; unused slots stay null. Slot meanings follow nn::Time2Vec and
// nn::GruCell.
enum ParamSlot : int32_t {
  kParamW0 = 0,  // Time2Vec w0 [1]
  kParamPhi0,    // Time2Vec phi0 [1]
  kParamW,       // Time2Vec w [time_dim - 1]
  kParamPhi,     // Time2Vec phi [time_dim - 1]
  kParamWz,      // GRU gate weights / biases
  kParamUz,
  kParamBz,
  kParamWr,
  kParamUr,
  kParamBr,
  kParamWn,
  kParamUn,
  kParamBn,
  kNumParamSlots,
};

using ParamTable = const float* const*;  // kNumParamSlots entries.

// Where an operand lives. Offsets are in floats from the base pointer.
struct ValueRef {
  enum class Kind : uint8_t {
    kNone,
    kSrcRow,  // RunContext::src + offset (read-only)
    kDstRow,  // RunContext::dst + offset
    kMRow,    // RunContext::m + offset
    kAux,     // RunContext::aux + offset (per-call constant block, read-only)
    kArena,   // executor arena + offset; before Compile(), `index` is the
              // temp id and `offset` is relative to that temp
    kParam,   // param_table[index]
  };
  Kind kind = Kind::kNone;
  int32_t index = 0;
  int32_t offset = 0;
};

enum class OpCode : uint8_t {
  kZero,           // a[0..n) = 0
  kCopy,           // a[i] = b[i]
  kAddAccumulate,  // a[i] = b[i] + a[i]
  kTanh,           // a[i] = tanh(a[i])
  kTanhAdd,        // a[i] = tanh(b[i] + a[i])
  kGemv,           // a[1, n] += b[1, k] x param(c)[k, n]
  kSigmoidBias,    // a[i] = sigmoid(a[i] + param(b)[i])
  kGruCandidate,   // a[i] = tanh(b[i]*c[i] + (d[i] + param(e)[i]))
  kGruBlend,       // a[i] = b[i]*c[i] + (1-b[i])*d[i]; a may alias c
  kTime2Vec,       // a[0..n) = Time2Vec(ctx.t) via params w0/phi0/w/phi
  kPhasor,         // a = sin(w*ctx.t + phi), b = cos(w*ctx.t + phi)
  kTimeCount,      // a[0] = ctx.t + a[0]; a[1] = 1 + a[1]
  kRotatePairs,    // a[i] = b[i]*d[i] - c[i]*e[i]
  kLinearCorrect,  // a[0] = w0*(b[0]*ctx.t) + phi0*b[1] (params c, d)
  kScaleByCount,   // a[i] *= (b[1] > 0 ? 1/b[1] : 1)
};

struct PlanOp {
  OpCode code;
  int32_t n = 0;  // element count / GEMV output width
  int32_t k = 0;  // GEMV inner width
  ValueRef a, b, c, d, e;
};

// Arena temporary, post-compilation. [first_op, last_op] is the closed
// liveness interval in op indices; overlapping-lifetime temps are guaranteed
// disjoint [offset, offset + len) ranges (tested in plan_test).
struct TempInfo {
  int32_t offset = 0;
  int32_t len = 0;
  int32_t first_op = 0;
  int32_t last_op = 0;
};

class CompiledProgram {
 public:
  const std::vector<PlanOp>& ops() const { return ops_; }
  const std::vector<TempInfo>& temps() const { return temps_; }
  int32_t arena_size() const { return arena_size_; }
  bool empty() const { return ops_.empty(); }

 private:
  friend class ProgramBuilder;
  std::vector<PlanOp> ops_;
  std::vector<TempInfo> temps_;
  int32_t arena_size_ = 0;
};

// Builds one program: declare temps, append ops, Compile() to run liveness
// planning and produce the arena layout.
class ProgramBuilder {
 public:
  // Declares an arena temporary of `len` floats; returns its temp id.
  int32_t Temp(int32_t len);

  // ValueRef constructors.
  static ValueRef Src(int32_t offset = 0);
  static ValueRef Dst(int32_t offset = 0);
  static ValueRef MRow(int32_t offset = 0);
  static ValueRef Aux(int32_t offset = 0);
  static ValueRef Param(int32_t slot);
  ValueRef Arena(int32_t temp_id, int32_t offset = 0) const;

  void Append(PlanOp op);

  // Liveness-plans temps into the arena (first-fit over a free list; a
  // temp's slot is recycled as soon as its last referencing op retires) and
  // returns the finished program. The builder is consumed.
  CompiledProgram Compile();

 private:
  std::vector<PlanOp> ops_;
  std::vector<int32_t> temp_lens_;
};

// Everything that determines program shape — the plan cache key. Mirrors the
// core::TpGnnConfig fields the per-edge fold depends on, expressed without a
// core dependency.
struct PlanSpec {
  enum class Updater : uint8_t { kSum, kGru };
  Updater updater = Updater::kSum;
  int32_t embed_dim = 0;
  int32_t time_dim = 0;  // 0 = no time encoding.
  bool stabilize = false;
  bool invariant = false;  // TimeBasis::kInvariant.

  bool operator==(const PlanSpec& o) const {
    return updater == o.updater && embed_dim == o.embed_dim &&
           time_dim == o.time_dim && stabilize == o.stabilize &&
           invariant == o.invariant;
  }
  bool has_time_accumulator() const {
    return updater == Updater::kSum && time_dim > 0;
  }
};

// The three per-edge/per-row programs a configuration compiles to. Any of
// them may be empty when the spec does not use that stage.
struct CompiledPlans {
  PlanSpec spec;
  // Node-state update, per edge. Context: src = source row, dst =
  // destination row, t = the GRU time argument (gap or normalized absolute;
  // unused for SUM).
  CompiledProgram edge;
  // SUM time-accumulator fold, per edge. Context: m = accumulator row, t =
  // raw time (invariant) or normalized time (absolute).
  CompiledProgram time;
  // Readout, per node row. Context: src = x row, m = accumulator row, dst =
  // output row (embed + time_dim wide), t = the invariant linear rescale
  // factor, aux = the rotation table [cos(w*T) ++ sin(w*T)].
  CompiledProgram finalize;
};

// Builders (also used directly by tests and benches).
CompiledProgram BuildEdgeProgram(const PlanSpec& spec);
CompiledProgram BuildTimeProgram(const PlanSpec& spec);
CompiledProgram BuildFinalizeProgram(const PlanSpec& spec);
CompiledPlans BuildPlans(const PlanSpec& spec);

// Process-wide shared cache of compiled plans, keyed by PlanSpec. Lookup is
// a mutex-guarded linear scan over a handful of entries; models hold the
// shared_ptr so entries never need eviction-safety games.
class PlanCache {
 public:
  static PlanCache& Global();

  std::shared_ptr<const CompiledPlans> Get(const PlanSpec& spec);

  // Introspection for tests: how many times Get() compiled a new entry.
  uint64_t builds() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const CompiledPlans>> entries_;
  uint64_t builds_ = 0;
};

}  // namespace tpgnn::tensor::plan

#endif  // TPGNN_TENSOR_PLAN_H_
