#include "tensor/gemm.h"

#include "tensor/kernels.h"

// The three GEMM-accumulate entry points are thin wrappers over the
// runtime-dispatched kernel table (tensor/kernels.h): exactly one blocked
// implementation exists per ISA, and every caller — the recorded ops'
// forward/backward, the zero-copy inference paths, and the planned executor —
// goes through the same dispatch. All GEMM kernels are in the bitwise parity
// class, so training numerics are identical in every SIMD mode.

namespace tpgnn::tensor::internal {

void GemmAccumulate(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m) {
  ActiveKernels().gemm_accumulate(a, b, c, n, k, m);
}

void GemmAccumulateNT(const float* a, const float* b, float* c, int64_t n,
                      int64_t k, int64_t m) {
  ActiveKernels().gemm_accumulate_nt(a, b, c, n, k, m);
}

void GemmAccumulateTN(const float* a, const float* b, float* c, int64_t n,
                      int64_t k, int64_t m) {
  ActiveKernels().gemm_accumulate_tn(a, b, c, n, k, m);
}

}  // namespace tpgnn::tensor::internal
