#include "tensor/gemm.h"

namespace tpgnn::tensor::internal {

// C += A x B. ikj order with a 4-wide k tile: four B rows stream against one
// resident C row, so C is loaded/stored once per four multiply-adds instead
// of once per one as in the naive ikj loop, and the four independent products
// give the vectorizer ILP to chew on. All-zero tiles (one-hot / padded rows)
// are skipped like the scalar kernel skipped zero elements.
void GemmAccumulate(const float* __restrict__ a, const float* __restrict__ b,
                    float* __restrict__ c, int64_t n, int64_t k, int64_t m) {
  constexpr int64_t kTile = 4;
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    float* __restrict__ crow = c + i * m;
    int64_t kk = 0;
    for (; kk + kTile <= k; kk += kTile) {
      const float a0 = arow[kk];
      const float a1 = arow[kk + 1];
      const float a2 = arow[kk + 2];
      const float a3 = arow[kk + 3];
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const float* b0 = b + kk * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      for (int64_t j = 0; j < m; ++j) {
        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
    }
    for (; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * m;
      for (int64_t j = 0; j < m; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

// C += A x B^T: rows of C are dot products of contiguous rows, computed four
// at a time so each A row is read once per four outputs.
void GemmAccumulateNT(const float* __restrict__ a, const float* __restrict__ b,
                      float* __restrict__ c, int64_t n, int64_t k, int64_t m) {
  constexpr int64_t kTile = 4;
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * m;
    float* __restrict__ crow = c + i * k;
    int64_t kk = 0;
    for (; kk + kTile <= k; kk += kTile) {
      const float* b0 = b + kk * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      float acc0 = 0.0f;
      float acc1 = 0.0f;
      float acc2 = 0.0f;
      float acc3 = 0.0f;
      for (int64_t j = 0; j < m; ++j) {
        const float av = arow[j];
        acc0 += av * b0[j];
        acc1 += av * b1[j];
        acc2 += av * b2[j];
        acc3 += av * b3[j];
      }
      crow[kk] += acc0;
      crow[kk + 1] += acc1;
      crow[kk + 2] += acc2;
      crow[kk + 3] += acc3;
    }
    for (; kk < k; ++kk) {
      const float* brow = b + kk * m;
      float acc = 0.0f;
      for (int64_t j = 0; j < m; ++j) {
        acc += arow[j] * brow[j];
      }
      crow[kk] += acc;
    }
  }
}

// C += A^T x B: four A rows are folded into the resident C row per pass.
void GemmAccumulateTN(const float* __restrict__ a, const float* __restrict__ b,
                      float* __restrict__ c, int64_t n, int64_t k, int64_t m) {
  constexpr int64_t kTile = 4;
  for (int64_t kk = 0; kk < k; ++kk) {
    float* __restrict__ crow = c + kk * m;
    int64_t i = 0;
    for (; i + kTile <= n; i += kTile) {
      const float a0 = a[i * k + kk];
      const float a1 = a[(i + 1) * k + kk];
      const float a2 = a[(i + 2) * k + kk];
      const float a3 = a[(i + 3) * k + kk];
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const float* b0 = b + i * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      for (int64_t j = 0; j < m; ++j) {
        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
    }
    for (; i < n; ++i) {
      const float av = a[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = b + i * m;
      for (int64_t j = 0; j < m; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace tpgnn::tensor::internal
