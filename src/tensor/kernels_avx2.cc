// AVX2 kernel table (DESIGN.md §4.6). This translation unit is compiled with
// -mavx2 and deliberately WITHOUT -mfma: the bitwise-class kernels promise
// bit-identical results to the scalar table, which holds only if every
// per-lane operation is the same IEEE mul/add sequence the scalar kernel
// executes — an FMA contraction (one rounding instead of two) would break
// that silently. The ulp-class transcendental maps use a vector exp
// polynomial instead of libm and are covered by the "kernel-ulp" tolerance
// mode (kTranscendentalUlpBound, tests/tensor/kernels_test.cc).

#include "tensor/kernels.h"

#include "util/logging.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>
#include <cstring>

namespace tpgnn::tensor {
namespace {

// --- Vector exp/tanh/sigmoid ------------------------------------------------

// expf via Cody-Waite range reduction and a degree-6 polynomial (the classic
// Cephes coefficients). Max error ~2 ulp over the clamped domain, which the
// tanh/sigmoid compositions below keep within kTranscendentalUlpBound of the
// libm scalar kernels.
inline __m256 Exp8(__m256 x) {
  const __m256 kHi = _mm256_set1_ps(88.3762626647950f);
  const __m256 kLo = _mm256_set1_ps(-87.3365478515625f);
  const __m256 kLog2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 kC1 = _mm256_set1_ps(0.693359375f);
  const __m256 kC2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 kHalf = _mm256_set1_ps(0.5f);
  const __m256 kOne = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(x, kHi);
  x = _mm256_max_ps(x, kLo);

  __m256 fx = _mm256_add_ps(_mm256_mul_ps(x, kLog2e), kHalf);
  fx = _mm256_floor_ps(fx);

  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, kC1));
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, kC2));

  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), kOne);
  y = _mm256_add_ps(_mm256_mul_ps(y, x), kOne);

  const __m256i n = _mm256_cvtps_epi32(fx);
  const __m256i pow2 =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2));
}

// tanh(x): Cephes split. |x| < 0.625 uses the odd minimax polynomial
// x + x^3 P(x^2) — the 1 - 2/(exp+1) form cancels catastrophically near
// zero and would blow the kernel-ulp bound. Larger |x| uses
// sign(x) * (1 - 2 / (exp(2|x|) + 1)); |x| clamped to 9.2, past which the
// expression rounds to ±1 in float anyway.
inline __m256 Tanh8(__m256 x) {
  const __m256 kSignMask = _mm256_set1_ps(-0.0f);
  const __m256 kOne = _mm256_set1_ps(1.0f);
  const __m256 kTwo = _mm256_set1_ps(2.0f);
  const __m256 sign = _mm256_and_ps(x, kSignMask);
  __m256 ax = _mm256_andnot_ps(kSignMask, x);

  // Small branch (|x| < 0.625).
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 p = _mm256_set1_ps(-5.70498872745e-3f);
  p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(2.06390887954e-2f));
  p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(-5.37397155531e-2f));
  p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(1.33314422036e-1f));
  p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(-3.33332819422e-1f));
  const __m256 small =
      _mm256_add_ps(x, _mm256_mul_ps(_mm256_mul_ps(x, z), p));

  // Large branch.
  ax = _mm256_min_ps(ax, _mm256_set1_ps(9.2f));
  const __m256 e = Exp8(_mm256_mul_ps(kTwo, ax));
  const __m256 large = _mm256_or_ps(
      _mm256_sub_ps(kOne, _mm256_div_ps(kTwo, _mm256_add_ps(e, kOne))), sign);

  const __m256 use_small =
      _mm256_cmp_ps(_mm256_andnot_ps(kSignMask, x),
                    _mm256_set1_ps(0.625f), _CMP_LT_OQ);
  return _mm256_blendv_ps(large, small, use_small);
}

inline __m256 Sigmoid8(__m256 x) {
  const __m256 kOne = _mm256_set1_ps(1.0f);
  const __m256 e = Exp8(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(kOne, _mm256_add_ps(kOne, e));
}

// --- GEMM (bitwise class) ---------------------------------------------------
// Same loop structure, tile width, zero-tile skip, and per-element
// association as the scalar kernels; only the j loop is widened to 8 lanes.

void GemmAccumulateAvx2(const float* a, const float* b, float* c, int64_t n,
                        int64_t k, int64_t m) {
  constexpr int64_t kTile = 4;
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    int64_t kk = 0;
    for (; kk + kTile <= k; kk += kTile) {
      const float a0 = arow[kk];
      const float a1 = arow[kk + 1];
      const float a2 = arow[kk + 2];
      const float a3 = arow[kk + 3];
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const float* b0 = b + kk * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      const __m256 va0 = _mm256_set1_ps(a0);
      const __m256 va1 = _mm256_set1_ps(a1);
      const __m256 va2 = _mm256_set1_ps(a2);
      const __m256 va3 = _mm256_set1_ps(a3);
      int64_t j = 0;
      for (; j + 8 <= m; j += 8) {
        // crow[j] + ((((a0*b0) + a1*b1) + a2*b2) + a3*b3), per lane — the
        // scalar expression's exact association.
        __m256 sum = _mm256_mul_ps(va0, _mm256_loadu_ps(b0 + j));
        sum = _mm256_add_ps(sum, _mm256_mul_ps(va1, _mm256_loadu_ps(b1 + j)));
        sum = _mm256_add_ps(sum, _mm256_mul_ps(va2, _mm256_loadu_ps(b2 + j)));
        sum = _mm256_add_ps(sum, _mm256_mul_ps(va3, _mm256_loadu_ps(b3 + j)));
        _mm256_storeu_ps(crow + j,
                         _mm256_add_ps(_mm256_loadu_ps(crow + j), sum));
      }
      for (; j < m; ++j) {
        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
    }
    for (; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * m;
      const __m256 vav = _mm256_set1_ps(av);
      int64_t j = 0;
      for (; j + 8 <= m; j += 8) {
        const __m256 prod = _mm256_mul_ps(vav, _mm256_loadu_ps(brow + j));
        _mm256_storeu_ps(crow + j,
                         _mm256_add_ps(_mm256_loadu_ps(crow + j), prod));
      }
      for (; j < m; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

// The NT variant's inner loops are dot-product reductions whose summation
// order defines the reference result; widening them would reassociate, so
// every ISA delegates to the scalar kernel (kernels.h parity policy).
void GemmAccumulateNTAvx2(const float* a, const float* b, float* c, int64_t n,
                          int64_t k, int64_t m) {
  ScalarKernels().gemm_accumulate_nt(a, b, c, n, k, m);
}

void GemmAccumulateTNAvx2(const float* a, const float* b, float* c, int64_t n,
                          int64_t k, int64_t m) {
  constexpr int64_t kTile = 4;
  for (int64_t kk = 0; kk < k; ++kk) {
    float* crow = c + kk * m;
    int64_t i = 0;
    for (; i + kTile <= n; i += kTile) {
      const float a0 = a[i * k + kk];
      const float a1 = a[(i + 1) * k + kk];
      const float a2 = a[(i + 2) * k + kk];
      const float a3 = a[(i + 3) * k + kk];
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const float* b0 = b + i * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      const __m256 va0 = _mm256_set1_ps(a0);
      const __m256 va1 = _mm256_set1_ps(a1);
      const __m256 va2 = _mm256_set1_ps(a2);
      const __m256 va3 = _mm256_set1_ps(a3);
      int64_t j = 0;
      for (; j + 8 <= m; j += 8) {
        __m256 sum = _mm256_mul_ps(va0, _mm256_loadu_ps(b0 + j));
        sum = _mm256_add_ps(sum, _mm256_mul_ps(va1, _mm256_loadu_ps(b1 + j)));
        sum = _mm256_add_ps(sum, _mm256_mul_ps(va2, _mm256_loadu_ps(b2 + j)));
        sum = _mm256_add_ps(sum, _mm256_mul_ps(va3, _mm256_loadu_ps(b3 + j)));
        _mm256_storeu_ps(crow + j,
                         _mm256_add_ps(_mm256_loadu_ps(crow + j), sum));
      }
      for (; j < m; ++j) {
        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
    }
    for (; i < n; ++i) {
      const float av = a[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = b + i * m;
      const __m256 vav = _mm256_set1_ps(av);
      int64_t j = 0;
      for (; j + 8 <= m; j += 8) {
        const __m256 prod = _mm256_mul_ps(vav, _mm256_loadu_ps(brow + j));
        _mm256_storeu_ps(crow + j,
                         _mm256_add_ps(_mm256_loadu_ps(crow + j), prod));
      }
      for (; j < m; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

// --- Linear elementwise (bitwise class) -------------------------------------

void CopyAvx2(float* dst, const float* src, int64_t n) {
  if (n > 0) std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

void ZeroAvx2(float* dst, int64_t n) {
  if (n > 0) std::memset(dst, 0, static_cast<size_t>(n) * sizeof(float));
}

void AddAccumulateAvx2(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_add_ps(_mm256_loadu_ps(src + i),
                               _mm256_loadu_ps(dst + i)));
  }
  for (; i < n; ++i) {
    dst[i] = src[i] + dst[i];
  }
}

void ScaleInplaceAvx2(float* v, float s, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(v + i, _mm256_mul_ps(_mm256_loadu_ps(v + i), vs));
  }
  for (; i < n; ++i) {
    v[i] = v[i] * s;
  }
}

void GruBlendAvx2(float* out, const float* z, const float* h, const float* nn,
                  int64_t n) {
  const __m256 kOne = _mm256_set1_ps(1.0f);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 vz = _mm256_loadu_ps(z + j);
    const __m256 keep = _mm256_mul_ps(vz, _mm256_loadu_ps(h + j));
    const __m256 take =
        _mm256_mul_ps(_mm256_sub_ps(kOne, vz), _mm256_loadu_ps(nn + j));
    _mm256_storeu_ps(out + j, _mm256_add_ps(keep, take));
  }
  for (; j < n; ++j) {
    out[j] = z[j] * h[j] + (1.0f - z[j]) * nn[j];
  }
}

void RotatePairsAvx2(float* out, const float* a, const float* b,
                     const float* c, const float* s, int64_t n) {
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 ac = _mm256_mul_ps(_mm256_loadu_ps(a + j),
                                    _mm256_loadu_ps(c + j));
    const __m256 bs = _mm256_mul_ps(_mm256_loadu_ps(b + j),
                                    _mm256_loadu_ps(s + j));
    _mm256_storeu_ps(out + j, _mm256_sub_ps(ac, bs));
  }
  for (; j < n; ++j) {
    const float ac = a[j] * c[j];
    const float bs = b[j] * s[j];
    out[j] = ac - bs;
  }
}

// --- Transcendental maps (ulp class) ----------------------------------------
// Tails of fewer than 8 elements run the scalar (libm) expression: tail
// elements are then exactly the scalar kernel's values, and full lanes are
// within the kernel-ulp bound.

void TanhInplaceAvx2(float* v, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(v + i, Tanh8(_mm256_loadu_ps(v + i)));
  }
  for (; i < n; ++i) {
    v[i] = std::tanh(v[i]);
  }
}

void TanhAddAvx2(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 sum = _mm256_add_ps(_mm256_loadu_ps(src + i),
                                     _mm256_loadu_ps(dst + i));
    _mm256_storeu_ps(dst + i, Tanh8(sum));
  }
  for (; i < n; ++i) {
    dst[i] = std::tanh(src[i] + dst[i]);
  }
}

void SigmoidBiasAvx2(float* v, const float* bias, int64_t n) {
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 sum = _mm256_add_ps(_mm256_loadu_ps(v + j),
                                     _mm256_loadu_ps(bias + j));
    _mm256_storeu_ps(v + j, Sigmoid8(sum));
  }
  for (; j < n; ++j) {
    v[j] = 1.0f / (1.0f + std::exp(-(v[j] + bias[j])));
  }
}

void GruCandidateAvx2(float* out, const float* r, const float* hu,
                      const float* xn, const float* bias, int64_t n) {
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 xb = _mm256_add_ps(_mm256_loadu_ps(xn + j),
                                    _mm256_loadu_ps(bias + j));
    const __m256 arg = _mm256_add_ps(
        _mm256_mul_ps(_mm256_loadu_ps(r + j), _mm256_loadu_ps(hu + j)), xb);
    _mm256_storeu_ps(out + j, Tanh8(arg));
  }
  for (; j < n; ++j) {
    const float xb = xn[j] + bias[j];
    out[j] = std::tanh(r[j] * hu[j] + xb);
  }
}

// --- Time encoding (bitwise class) ------------------------------------------
// The phase w*t + phi is computed with vector mul/add (per-lane identical to
// scalar); sin/cos themselves stay libm on every ISA so the periodic
// channels — whose arguments are raw session timestamps in the invariant
// basis — never drift from the recorded path.

void Time2VecAvx2(float* out, float t, const float* w0, const float* phi0,
                  const float* w, const float* phi, int64_t dim) {
  out[0] = w0[0] * t + phi0[0];
  const int64_t periodic = dim - 1;
  const __m256 vt = _mm256_set1_ps(t);
  alignas(32) float theta[8];
  int64_t j = 0;
  for (; j + 8 <= periodic; j += 8) {
    _mm256_store_ps(theta,
                    _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(w + j), vt),
                                  _mm256_loadu_ps(phi + j)));
    for (int lane = 0; lane < 8; ++lane) {
      out[1 + j + lane] = std::sin(theta[lane]);
    }
  }
  for (; j < periodic; ++j) {
    out[j + 1] = std::sin(w[j] * t + phi[j]);
  }
}

void PhasorAvx2(float* sin_out, float* cos_out, float t, const float* w,
                const float* phi, int64_t n) {
  const __m256 vt = _mm256_set1_ps(t);
  alignas(32) float theta[8];
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_store_ps(theta,
                    _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(w + j), vt),
                                  _mm256_loadu_ps(phi + j)));
    for (int lane = 0; lane < 8; ++lane) {
      sin_out[j + lane] = std::sin(theta[lane]);
      cos_out[j + lane] = std::cos(theta[lane]);
    }
  }
  for (; j < n; ++j) {
    const float theta_j = w[j] * t + phi[j];
    sin_out[j] = std::sin(theta_j);
    cos_out[j] = std::cos(theta_j);
  }
}

void RotationAvx2(float* cos_out, float* sin_out, float delta, const float* w,
                  int64_t n) {
  const __m256 vd = _mm256_set1_ps(delta);
  alignas(32) float theta[8];
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_store_ps(theta, _mm256_mul_ps(_mm256_loadu_ps(w + j), vd));
    for (int lane = 0; lane < 8; ++lane) {
      cos_out[j + lane] = std::cos(theta[lane]);
      sin_out[j + lane] = std::sin(theta[lane]);
    }
  }
  for (; j < n; ++j) {
    const float theta_j = w[j] * delta;
    cos_out[j] = std::cos(theta_j);
    sin_out[j] = std::sin(theta_j);
  }
}

const Kernels kAvx2Table = {
    GemmAccumulateAvx2,
    GemmAccumulateNTAvx2,
    GemmAccumulateTNAvx2,
    CopyAvx2,
    ZeroAvx2,
    AddAccumulateAvx2,
    ScaleInplaceAvx2,
    GruBlendAvx2,
    RotatePairsAvx2,
    TanhInplaceAvx2,
    TanhAddAvx2,
    SigmoidBiasAvx2,
    GruCandidateAvx2,
    Time2VecAvx2,
    PhasorAvx2,
    RotationAvx2,
    "avx2",
};

}  // namespace

namespace internal {

bool Avx2Supported() { return __builtin_cpu_supports("avx2"); }

const Kernels& Avx2Kernels() { return kAvx2Table; }

}  // namespace internal
}  // namespace tpgnn::tensor

#else  // !defined(__AVX2__)

namespace tpgnn::tensor::internal {

bool Avx2Supported() { return false; }

const Kernels& Avx2Kernels() {
  TPGNN_CHECK(false) << "AVX2 kernels were not compiled into this build";
  return ScalarKernels();
}

}  // namespace tpgnn::tensor::internal

#endif  // defined(__AVX2__)
