#ifndef TPGNN_TENSOR_OPS_H_
#define TPGNN_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

// Differentiable operators over Tensor. All functions are pure: they return
// fresh tensors and never mutate inputs. When gradients are enabled
// (GradEnabled()) and at least one input requires grad, the result carries an
// autograd node so Tensor::Backward() reaches the inputs.
//
// Elementwise binary operators support NumPy-style broadcasting (shapes are
// right-aligned; dimensions of size one repeat). Axis arguments are
// non-negative.

namespace tpgnn::tensor {

// Broadcast result shape; CHECK-fails on incompatible shapes.
Shape BroadcastShape(const Shape& a, const Shape& b);

// --- Elementwise binary (broadcasting) -------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// --- Scalar forms -----------------------------------------------------------
Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);
// Elementwise power with a constant exponent; for non-integer exponents the
// base must be positive.
Tensor Pow(const Tensor& a, float exponent);

// --- Elementwise unary -------------------------------------------------------
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Sin(const Tensor& a);
Tensor Cos(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope);

// --- Shape manipulation ------------------------------------------------------
// Copying reshape; Numel must be preserved.
Tensor Reshape(const Tensor& a, const Shape& new_shape);
// 2-D transpose.
Tensor Transpose(const Tensor& a);
// Concatenation of 1-D tensors (axis 0) or 2-D tensors (axis 0 or 1).
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);
// Stacks equal-length 1-D tensors into a [n, m] matrix (one per row).
Tensor Stack(const std::vector<Tensor>& rows);
// Gathers rows (dim 0) of a 1-D or 2-D tensor.
Tensor IndexSelect(const Tensor& a, const std::vector<int64_t>& indices);
// Row `row` of a 2-D tensor as a 1-D tensor.
Tensor Row(const Tensor& a, int64_t row);
// Gathers rows of a 2-D tensor into a [indices.size(), cols] matrix in one
// recorded op; the backward pass scatter-adds row gradients (duplicate
// indices accumulate). Equivalent to IndexSelect on a matrix, kept separate
// so per-edge endpoint lookups cost a single node.
Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices);
// base with updates[i] added into row indices[i] (duplicates accumulate):
// out = base; out[indices[i], :] += updates[i, :]. base [n, cols],
// updates [indices.size(), cols]. The functional counterpart of a per-edge
// state write; gradients flow to both base (identity) and updates (gather).
Tensor ScatterRowAdd(const Tensor& base, const std::vector<int64_t>& indices,
                     const Tensor& updates);

// --- Linear algebra -----------------------------------------------------------
// [n, k] x [k, m] -> [n, m].
Tensor MatMul(const Tensor& a, const Tensor& b);
// x*W + b in one recorded op ([n, k] x [k, m] + [m] -> [n, m]);
// bit-identical to Add(MatMul(x, w), b) but one node and one buffer.
Tensor Affine(const Tensor& x, const Tensor& w, const Tensor& b);
// x*W + h*U + b in one recorded op ([n, k1] x [k1, m] + [n, k2] x [k2, m]
// + [m] -> [n, m]); the GRU gate pre-activation. Both GEMMs accumulate into
// one buffer, so rounding differs from the unfused Add(Add(...)) chain.
Tensor Affine2(const Tensor& x, const Tensor& w, const Tensor& h,
               const Tensor& u, const Tensor& b);

// --- Fused elementwise (equal shapes, no broadcasting) ----------------------
// a*b + c.
Tensor MulAdd(const Tensor& a, const Tensor& b, const Tensor& c);
// tanh(a + b).
Tensor TanhAdd(const Tensor& a, const Tensor& b);
// z*h + (1-z)*n, the GRU convex blend; bit-identical to the unfused
// Add(Mul(z, h), Mul(Sub(ones, z), n)) chain without materializing ones.
Tensor GruBlend(const Tensor& z, const Tensor& h, const Tensor& n);

// --- Reductions -----------------------------------------------------------------
// Sum/mean over all elements -> scalar [1].
Tensor Sum(const Tensor& a);
Tensor Mean(const Tensor& a);
// Sum/mean of a 2-D tensor along `axis` (0 -> [cols], 1 -> [rows]).
Tensor SumAxis(const Tensor& a, int64_t axis);
Tensor MeanAxis(const Tensor& a, int64_t axis);

// --- Normalization / losses -------------------------------------------------------
// Softmax over the last axis of a 1-D or 2-D tensor (per row for 2-D).
Tensor Softmax(const Tensor& a);
// Numerically stable mean binary cross-entropy over logits; `targets` is
// same-numel, gradient does not flow into targets.
Tensor BinaryCrossEntropyWithLogits(const Tensor& logits,
                                    const Tensor& targets);

// --- Non-differentiable helpers -----------------------------------------------------
// In-place accumulation for inference-time state updates: a += b and
// a += s*b. CHECK-fail on tensors carrying autograd state (grad_fn or
// requires_grad) — mutating a recorded tensor would corrupt saved
// activations. Shapes must match exactly.
void AddInPlace(Tensor& a, const Tensor& b);
void ScaledAddInPlace(Tensor& a, const Tensor& b, float s);
// Index of the largest element (flat).
int64_t Argmax(const Tensor& a);
// True when |a - b| <= atol + rtol * |b| elementwise (shapes must match).
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

}  // namespace tpgnn::tensor

#endif  // TPGNN_TENSOR_OPS_H_
