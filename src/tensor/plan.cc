#include "tensor/plan.h"

#include <algorithm>

#include "util/logging.h"

namespace tpgnn::tensor::plan {

namespace {

// Collects the arena temp ids a ValueRef touches (pre-compilation encoding:
// index = temp id).
void NoteTemp(const ValueRef& ref, int32_t op_index,
              std::vector<std::pair<int32_t, int32_t>>& live) {
  if (ref.kind != ValueRef::Kind::kArena) return;
  auto& interval = live[static_cast<size_t>(ref.index)];
  interval.first = std::min(interval.first, op_index);
  interval.second = std::max(interval.second, op_index);
}

void Rewrite(ValueRef& ref, const std::vector<int32_t>& base) {
  if (ref.kind != ValueRef::Kind::kArena) return;
  ref.offset += base[static_cast<size_t>(ref.index)];
  ref.index = 0;
}

PlanOp Op(OpCode code, int32_t n, int32_t k, ValueRef a, ValueRef b = {},
          ValueRef c = {}, ValueRef d = {}, ValueRef e = {}) {
  PlanOp op;
  op.code = code;
  op.n = n;
  op.k = k;
  op.a = a;
  op.b = b;
  op.c = c;
  op.d = d;
  op.e = e;
  return op;
}

}  // namespace

int32_t ProgramBuilder::Temp(int32_t len) {
  TPGNN_CHECK_GT(len, 0);
  temp_lens_.push_back(len);
  return static_cast<int32_t>(temp_lens_.size()) - 1;
}

ValueRef ProgramBuilder::Src(int32_t offset) {
  return {ValueRef::Kind::kSrcRow, 0, offset};
}
ValueRef ProgramBuilder::Dst(int32_t offset) {
  return {ValueRef::Kind::kDstRow, 0, offset};
}
ValueRef ProgramBuilder::MRow(int32_t offset) {
  return {ValueRef::Kind::kMRow, 0, offset};
}
ValueRef ProgramBuilder::Aux(int32_t offset) {
  return {ValueRef::Kind::kAux, 0, offset};
}
ValueRef ProgramBuilder::Param(int32_t slot) {
  return {ValueRef::Kind::kParam, slot, 0};
}
ValueRef ProgramBuilder::Arena(int32_t temp_id, int32_t offset) const {
  TPGNN_CHECK_GE(temp_id, 0);
  TPGNN_CHECK_LT(temp_id, static_cast<int32_t>(temp_lens_.size()));
  return {ValueRef::Kind::kArena, temp_id, offset};
}

void ProgramBuilder::Append(PlanOp op) { ops_.push_back(op); }

CompiledProgram ProgramBuilder::Compile() {
  const size_t num_temps = temp_lens_.size();
  const int32_t num_ops = static_cast<int32_t>(ops_.size());

  // Liveness: the closed interval of op indices referencing each temp.
  std::vector<std::pair<int32_t, int32_t>> live(
      num_temps, {num_ops, -1});
  for (int32_t i = 0; i < num_ops; ++i) {
    NoteTemp(ops_[static_cast<size_t>(i)].a, i, live);
    NoteTemp(ops_[static_cast<size_t>(i)].b, i, live);
    NoteTemp(ops_[static_cast<size_t>(i)].c, i, live);
    NoteTemp(ops_[static_cast<size_t>(i)].d, i, live);
    NoteTemp(ops_[static_cast<size_t>(i)].e, i, live);
  }

  // Linear-scan slot assignment in first-def order: expire temps whose last
  // use precedes the new temp's first def, then first-fit the free list.
  // Freed ranges are reused whole (no splitting) — with a handful of temps
  // per program the fragmentation ceiling is irrelevant, and whole-range
  // reuse keeps the no-alias argument trivial.
  std::vector<int32_t> order;
  for (size_t t = 0; t < num_temps; ++t) {
    TPGNN_CHECK_GE(live[t].second, 0) << "unreferenced plan temp " << t;
    order.push_back(static_cast<int32_t>(t));
  }
  std::sort(order.begin(), order.end(), [&](int32_t x, int32_t y) {
    return live[static_cast<size_t>(x)].first <
           live[static_cast<size_t>(y)].first;
  });

  struct Range {
    int32_t offset;
    int32_t len;
  };
  std::vector<Range> free_list;
  struct Active {
    int32_t temp;
    int32_t end;
    Range range;
  };
  std::vector<Active> active;
  std::vector<int32_t> base(num_temps, 0);
  int32_t arena_size = 0;

  for (int32_t t : order) {
    const auto interval = live[static_cast<size_t>(t)];
    // Expire.
    for (size_t i = active.size(); i-- > 0;) {
      if (active[i].end < interval.first) {
        free_list.push_back(active[i].range);
        active.erase(active.begin() + static_cast<ptrdiff_t>(i));
      }
    }
    const int32_t len = temp_lens_[static_cast<size_t>(t)];
    Range slot{-1, 0};
    for (size_t i = 0; i < free_list.size(); ++i) {
      if (free_list[i].len >= len) {
        slot = free_list[i];
        free_list.erase(free_list.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    if (slot.offset < 0) {
      slot = Range{arena_size, len};
      arena_size += len;
    }
    base[static_cast<size_t>(t)] = slot.offset;
    active.push_back(Active{t, interval.second, slot});
  }

  CompiledProgram program;
  program.arena_size_ = arena_size;
  program.ops_ = std::move(ops_);
  for (PlanOp& op : program.ops_) {
    Rewrite(op.a, base);
    Rewrite(op.b, base);
    Rewrite(op.c, base);
    Rewrite(op.d, base);
    Rewrite(op.e, base);
  }
  program.temps_.reserve(num_temps);
  for (size_t t = 0; t < num_temps; ++t) {
    program.temps_.push_back(TempInfo{base[t], temp_lens_[t], live[t].first,
                                      live[t].second});
  }
  return program;
}

// --- Builders ---------------------------------------------------------------

CompiledProgram BuildEdgeProgram(const PlanSpec& spec) {
  using B = ProgramBuilder;
  ProgramBuilder b;
  const int32_t d = spec.embed_dim;
  TPGNN_CHECK_GT(d, 0);

  if (spec.updater == PlanSpec::Updater::kSum) {
    // Eq. (3): dst += src, optionally tanh-squashed. The fused kTanhAdd
    // rounds the sum before tanh exactly like the two-step recorded chain.
    if (spec.stabilize) {
      b.Append(Op(OpCode::kTanhAdd, d, 0, B::Dst(), B::Src()));
    } else {
      b.Append(Op(OpCode::kAddAccumulate, d, 0, B::Dst(), B::Src()));
    }
    return b.Compile();
  }

  // GRU updater, mirroring GruCell::StepInto op for op: message staging,
  // gates (x·W first, h·U second, bias-sigmoid last), candidate, blend.
  const int32_t td = spec.time_dim;
  const int32_t k = d + td;
  const int32_t msg = b.Temp(k);
  const int32_t z = b.Temp(d);
  const int32_t r = b.Temp(d);
  const int32_t hu = b.Temp(d);
  const int32_t xn = b.Temp(d);

  b.Append(Op(OpCode::kCopy, d, 0, b.Arena(msg), B::Src()));
  if (td > 0) {
    b.Append(Op(OpCode::kTime2Vec, td, 0, b.Arena(msg, d), B::Param(kParamW0),
              B::Param(kParamPhi0), B::Param(kParamW), B::Param(kParamPhi)));
  }
  b.Append(Op(OpCode::kZero, d, 0, b.Arena(z)));
  b.Append(Op(OpCode::kZero, d, 0, b.Arena(r)));
  b.Append(Op(OpCode::kZero, d, 0, b.Arena(hu)));
  b.Append(Op(OpCode::kZero, d, 0, b.Arena(xn)));

  b.Append(Op(OpCode::kGemv, d, k, b.Arena(z), b.Arena(msg), B::Param(kParamWz)));
  b.Append(Op(OpCode::kGemv, d, d, b.Arena(z), B::Dst(), B::Param(kParamUz)));
  b.Append(Op(OpCode::kSigmoidBias, d, 0, b.Arena(z), B::Param(kParamBz)));
  b.Append(Op(OpCode::kGemv, d, k, b.Arena(r), b.Arena(msg), B::Param(kParamWr)));
  b.Append(Op(OpCode::kGemv, d, d, b.Arena(r), B::Dst(), B::Param(kParamUr)));
  b.Append(Op(OpCode::kSigmoidBias, d, 0, b.Arena(r), B::Param(kParamBr)));
  b.Append(Op(OpCode::kGemv, d, d, b.Arena(hu), B::Dst(), B::Param(kParamUn)));
  b.Append(Op(OpCode::kGemv, d, k, b.Arena(xn), b.Arena(msg), B::Param(kParamWn)));

  // The candidate is defined after the message's last use, so liveness
  // planning recycles the message slot for it (tested in plan_test).
  const int32_t cand = b.Temp(d);
  b.Append(Op(OpCode::kGruCandidate, d, 0, b.Arena(cand), b.Arena(r),
            b.Arena(hu), b.Arena(xn), B::Param(kParamBn)));
  b.Append(Op(OpCode::kGruBlend, d, 0, B::Dst(), b.Arena(z), B::Dst(),
            b.Arena(cand)));
  return b.Compile();
}

CompiledProgram BuildTimeProgram(const PlanSpec& spec) {
  using B = ProgramBuilder;
  ProgramBuilder b;
  if (!spec.has_time_accumulator()) {
    return b.Compile();
  }
  const int32_t td = spec.time_dim;

  if (spec.invariant) {
    // Invariant basis, row layout [Σt, k, A_1..A_{d-1}, B_1..B_{d-1}]: the
    // raw-time phasor accumulates; max_time is never read (the correction
    // happens in the finalize program).
    const int32_t p = td - 1;
    const int32_t sin_t = b.Temp(p);
    const int32_t cos_t = b.Temp(p);
    b.Append(Op(OpCode::kPhasor, p, 0, b.Arena(sin_t), b.Arena(cos_t),
              B::Param(kParamW), B::Param(kParamPhi)));
    b.Append(Op(OpCode::kTimeCount, 2, 0, B::MRow()));
    b.Append(Op(OpCode::kAddAccumulate, p, 0, B::MRow(2), b.Arena(sin_t)));
    b.Append(Op(OpCode::kAddAccumulate, p, 0, B::MRow(td + 1), b.Arena(cos_t)));
    return b.Compile();
  }

  // Absolute basis: m += f(t_norm), optionally tanh-squashed (fused).
  const int32_t enc = b.Temp(td);
  b.Append(Op(OpCode::kTime2Vec, td, 0, b.Arena(enc), B::Param(kParamW0),
            B::Param(kParamPhi0), B::Param(kParamW), B::Param(kParamPhi)));
  if (spec.stabilize) {
    b.Append(Op(OpCode::kTanhAdd, td, 0, B::MRow(), b.Arena(enc)));
  } else {
    b.Append(Op(OpCode::kAddAccumulate, td, 0, B::MRow(), b.Arena(enc)));
  }
  return b.Compile();
}

CompiledProgram BuildFinalizeProgram(const PlanSpec& spec) {
  using B = ProgramBuilder;
  ProgramBuilder b;
  const int32_t d = spec.embed_dim;
  const int32_t td = spec.time_dim;

  b.Append(Op(OpCode::kCopy, d, 0, B::Dst(), B::Src()));
  if (!spec.has_time_accumulator()) {
    b.Append(Op(OpCode::kTanh, d, 0, B::Dst()));
    return b.Compile();
  }
  if (!spec.invariant) {
    b.Append(Op(OpCode::kCopy, td, 0, B::Dst(d), B::MRow()));
    b.Append(Op(OpCode::kTanh, d + td, 0, B::Dst()));
    return b.Compile();
  }
  // Invariant correction (DESIGN.md §4.3): linear channel w0·(Σt·sf) +
  // phi0·k, phasor rotation A·cos(wT) − B·sin(wT); ctx.t carries sf, ctx.aux
  // carries [cos(w·T) ++ sin(w·T)].
  const int32_t p = td - 1;
  b.Append(Op(OpCode::kLinearCorrect, 1, 0, B::Dst(d), B::MRow(),
            B::Param(kParamW0), B::Param(kParamPhi0)));
  b.Append(Op(OpCode::kRotatePairs, p, 0, B::Dst(d + 1), B::MRow(2),
            B::MRow(td + 1), B::Aux(0), B::Aux(p)));
  if (spec.stabilize) {
    b.Append(Op(OpCode::kScaleByCount, td, 0, B::Dst(d), B::MRow()));
  }
  b.Append(Op(OpCode::kTanh, d + td, 0, B::Dst()));
  return b.Compile();
}

CompiledPlans BuildPlans(const PlanSpec& spec) {
  CompiledPlans plans;
  plans.spec = spec;
  plans.edge = BuildEdgeProgram(spec);
  plans.time = BuildTimeProgram(spec);
  plans.finalize = BuildFinalizeProgram(spec);
  return plans;
}

// --- PlanCache --------------------------------------------------------------

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

std::shared_ptr<const CompiledPlans> PlanCache::Get(const PlanSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->spec == spec) return entry;
  }
  auto built = std::make_shared<const CompiledPlans>(BuildPlans(spec));
  entries_.push_back(built);
  ++builds_;
  return built;
}

uint64_t PlanCache::builds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return builds_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace tpgnn::tensor::plan
