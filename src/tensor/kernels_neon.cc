// NEON kernel table (DESIGN.md §4.6), compiled only on ARM targets with
// Advanced SIMD. NEON covers the bitwise class — GEMM and the linear
// elementwise kernels — with 4-lane vmul/vadd sequences matching the scalar
// association exactly (no vfma, same reason the AVX2 table avoids FMA). The
// ulp-class transcendental maps and the time-encoding kernels delegate to the
// scalar table: they stay bitwise-equal to the reference by construction, so
// this table has no tolerance mode at all.

#include "tensor/kernels.h"

#include "util/logging.h"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)

#include <arm_neon.h>

#include <cstring>

namespace tpgnn::tensor {
namespace {

void GemmAccumulateNeon(const float* a, const float* b, float* c, int64_t n,
                        int64_t k, int64_t m) {
  constexpr int64_t kTile = 4;
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    int64_t kk = 0;
    for (; kk + kTile <= k; kk += kTile) {
      const float a0 = arow[kk];
      const float a1 = arow[kk + 1];
      const float a2 = arow[kk + 2];
      const float a3 = arow[kk + 3];
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const float* b0 = b + kk * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      const float32x4_t va0 = vdupq_n_f32(a0);
      const float32x4_t va1 = vdupq_n_f32(a1);
      const float32x4_t va2 = vdupq_n_f32(a2);
      const float32x4_t va3 = vdupq_n_f32(a3);
      int64_t j = 0;
      for (; j + 4 <= m; j += 4) {
        float32x4_t sum = vmulq_f32(va0, vld1q_f32(b0 + j));
        sum = vaddq_f32(sum, vmulq_f32(va1, vld1q_f32(b1 + j)));
        sum = vaddq_f32(sum, vmulq_f32(va2, vld1q_f32(b2 + j)));
        sum = vaddq_f32(sum, vmulq_f32(va3, vld1q_f32(b3 + j)));
        vst1q_f32(crow + j, vaddq_f32(vld1q_f32(crow + j), sum));
      }
      for (; j < m; ++j) {
        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
    }
    for (; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * m;
      const float32x4_t vav = vdupq_n_f32(av);
      int64_t j = 0;
      for (; j + 4 <= m; j += 4) {
        const float32x4_t prod = vmulq_f32(vav, vld1q_f32(brow + j));
        vst1q_f32(crow + j, vaddq_f32(vld1q_f32(crow + j), prod));
      }
      for (; j < m; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void GemmAccumulateNTNeon(const float* a, const float* b, float* c, int64_t n,
                          int64_t k, int64_t m) {
  ScalarKernels().gemm_accumulate_nt(a, b, c, n, k, m);
}

void GemmAccumulateTNNeon(const float* a, const float* b, float* c, int64_t n,
                          int64_t k, int64_t m) {
  constexpr int64_t kTile = 4;
  for (int64_t kk = 0; kk < k; ++kk) {
    float* crow = c + kk * m;
    int64_t i = 0;
    for (; i + kTile <= n; i += kTile) {
      const float a0 = a[i * k + kk];
      const float a1 = a[(i + 1) * k + kk];
      const float a2 = a[(i + 2) * k + kk];
      const float a3 = a[(i + 3) * k + kk];
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const float* b0 = b + i * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      const float32x4_t va0 = vdupq_n_f32(a0);
      const float32x4_t va1 = vdupq_n_f32(a1);
      const float32x4_t va2 = vdupq_n_f32(a2);
      const float32x4_t va3 = vdupq_n_f32(a3);
      int64_t j = 0;
      for (; j + 4 <= m; j += 4) {
        float32x4_t sum = vmulq_f32(va0, vld1q_f32(b0 + j));
        sum = vaddq_f32(sum, vmulq_f32(va1, vld1q_f32(b1 + j)));
        sum = vaddq_f32(sum, vmulq_f32(va2, vld1q_f32(b2 + j)));
        sum = vaddq_f32(sum, vmulq_f32(va3, vld1q_f32(b3 + j)));
        vst1q_f32(crow + j, vaddq_f32(vld1q_f32(crow + j), sum));
      }
      for (; j < m; ++j) {
        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
    }
    for (; i < n; ++i) {
      const float av = a[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = b + i * m;
      const float32x4_t vav = vdupq_n_f32(av);
      int64_t j = 0;
      for (; j + 4 <= m; j += 4) {
        const float32x4_t prod = vmulq_f32(vav, vld1q_f32(brow + j));
        vst1q_f32(crow + j, vaddq_f32(vld1q_f32(crow + j), prod));
      }
      for (; j < m; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void CopyNeon(float* dst, const float* src, int64_t n) {
  if (n > 0) std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

void ZeroNeon(float* dst, int64_t n) {
  if (n > 0) std::memset(dst, 0, static_cast<size_t>(n) * sizeof(float));
}

void AddAccumulateNeon(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(src + i), vld1q_f32(dst + i)));
  }
  for (; i < n; ++i) {
    dst[i] = src[i] + dst[i];
  }
}

void ScaleInplaceNeon(float* v, float s, int64_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(v + i, vmulq_f32(vld1q_f32(v + i), vs));
  }
  for (; i < n; ++i) {
    v[i] = v[i] * s;
  }
}

void GruBlendNeon(float* out, const float* z, const float* h, const float* nn,
                  int64_t n) {
  const float32x4_t kOne = vdupq_n_f32(1.0f);
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const float32x4_t vz = vld1q_f32(z + j);
    const float32x4_t keep = vmulq_f32(vz, vld1q_f32(h + j));
    const float32x4_t take = vmulq_f32(vsubq_f32(kOne, vz), vld1q_f32(nn + j));
    vst1q_f32(out + j, vaddq_f32(keep, take));
  }
  for (; j < n; ++j) {
    out[j] = z[j] * h[j] + (1.0f - z[j]) * nn[j];
  }
}

void RotatePairsNeon(float* out, const float* a, const float* b,
                     const float* c, const float* s, int64_t n) {
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const float32x4_t ac = vmulq_f32(vld1q_f32(a + j), vld1q_f32(c + j));
    const float32x4_t bs = vmulq_f32(vld1q_f32(b + j), vld1q_f32(s + j));
    vst1q_f32(out + j, vsubq_f32(ac, bs));
  }
  for (; j < n; ++j) {
    const float ac = a[j] * c[j];
    const float bs = b[j] * s[j];
    out[j] = ac - bs;
  }
}

const Kernels MakeNeonTable() {
  Kernels t = ScalarKernels();  // Transcendentals + time encoding stay libm.
  t.gemm_accumulate = GemmAccumulateNeon;
  t.gemm_accumulate_nt = GemmAccumulateNTNeon;
  t.gemm_accumulate_tn = GemmAccumulateTNNeon;
  t.copy = CopyNeon;
  t.zero = ZeroNeon;
  t.add_accumulate = AddAccumulateNeon;
  t.scale_inplace = ScaleInplaceNeon;
  t.gru_blend = GruBlendNeon;
  t.rotate_pairs = RotatePairsNeon;
  t.name = "neon";
  return t;
}

}  // namespace

namespace internal {

bool NeonSupported() { return true; }

const Kernels& NeonKernels() {
  static const Kernels table = MakeNeonTable();
  return table;
}

}  // namespace internal
}  // namespace tpgnn::tensor

#else  // !__ARM_NEON

namespace tpgnn::tensor::internal {

bool NeonSupported() { return false; }

const Kernels& NeonKernels() {
  TPGNN_CHECK(false) << "NEON kernels were not compiled into this build";
  return ScalarKernels();
}

}  // namespace tpgnn::tensor::internal

#endif  // __ARM_NEON
