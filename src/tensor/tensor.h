#ifndef TPGNN_TENSOR_TENSOR_H_
#define TPGNN_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

// A small dense float32 tensor library with reverse-mode autograd.
//
// Tensors are row-major and contiguous. A Tensor is a cheap, value-semantic
// handle onto a shared TensorImpl; copying a Tensor aliases storage. All
// operators (see tensor/ops.h) are pure functions that return fresh tensors
// and, when gradients are enabled, record an AutogradNode so that
// Tensor::Backward() can propagate gradients to every leaf that has
// requires_grad set.

namespace tpgnn::tensor {

using Shape = std::vector<int64_t>;

// Number of elements described by a shape (product of dims; 1 for rank 0).
int64_t Numel(const Shape& shape);

// Human-readable form, e.g. "[2, 3]".
std::string ShapeToString(const Shape& shape);

struct TensorImpl;

// One recorded operation in the autograd tape. `backward` receives the
// gradient of the loss w.r.t. this node's output and accumulates gradients
// into the input impls it captured.
struct AutogradNode {
  std::string op_name;
  // Producers of this node's inputs; traversed during Backward().
  std::vector<std::shared_ptr<TensorImpl>> inputs;
  std::function<void(const std::vector<float>& grad_output)> backward;
  // Set by Tensor::Backward() on the root so a second Backward() over the
  // same tape fails fast instead of silently double-accumulating.
  bool backward_invoked = false;
};

struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  bool requires_grad = false;
  // Lazily materialized; same length as data once touched.
  std::vector<float> grad;
  // Null for leaves and for results computed under NoGradGuard.
  std::shared_ptr<AutogradNode> grad_fn;

  TensorImpl() = default;
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;
  // Returns data and grad storage to the thread's buffer pool
  // (util/buffer_pool.h) so the next same-shape op reuses it.
  ~TensorImpl();

  int64_t numel() const { return static_cast<int64_t>(data.size()); }
  void EnsureGrad();
  void AccumulateGrad(const std::vector<float>& g);
};

// Recycled tape nodes: Backward() returns the nodes of a finished tape to a
// thread-local free list; ops pop from it instead of make_shared, so the
// per-graph epoch loop stops paying control-block churn per recorded op.
// The returned node is cleared (empty inputs, null backward,
// backward_invoked=false).
std::shared_ptr<AutogradNode> AcquireAutogradNode();

// RAII guard that disables gradient recording on the current thread.
// Nestable.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

// True unless at least one NoGradGuard is live on this thread.
bool GradEnabled();

// RAII scope that redirects gradient accumulation for a fixed set of impls
// (typically the shared model parameters) into thread-private shadow
// buffers. While a scope is live on a thread, every backward closure that
// would write into `impl->grad` of a shadowed impl writes into the scope's
// buffer instead, so several threads can run Backward() over tapes sharing
// the same parameters without racing. Non-shadowed impls (per-graph
// intermediates, which are thread-private by construction) accumulate into
// `impl->grad` as usual.
//
// After the concurrent section, the owner drains each scope with
// `shadow_grads()` and sums the buffers into the real parameter gradients
// in a deterministic order (see eval::TrainClassifier).
//
// At most one scope may be live per thread.
class ShadowGradScope {
 public:
  explicit ShadowGradScope(
      const std::vector<std::shared_ptr<TensorImpl>>& shadowed);
  ~ShadowGradScope();

  ShadowGradScope(const ShadowGradScope&) = delete;
  ShadowGradScope& operator=(const ShadowGradScope&) = delete;

  // Shadow buffer for the i-th shadowed impl (order of the constructor
  // argument). Empty if no gradient reached it.
  const std::vector<float>& shadow_grad(size_t i) const;
  // Moves the i-th shadow buffer out (the scope's slot is left empty). The
  // caller owns the buffer and should ReleaseBuffer() it once consumed.
  std::vector<float> TakeShadowGrad(size_t i);
  size_t size() const { return shadowed_.size(); }

 private:
  friend std::vector<float>& GradBufferFor(TensorImpl& impl);

  std::vector<TensorImpl*> shadowed_;
  std::vector<std::vector<float>> buffers_;
};

// The buffer backward closures must accumulate into for `impl` on the
// current thread: a live ShadowGradScope's buffer if `impl` is shadowed,
// otherwise `impl->grad`. Zero-initialized to `impl->data.size()` on first
// touch, like EnsureGrad().
std::vector<float>& GradBufferFor(TensorImpl& impl);

class Tensor {
 public:
  // An empty (rank-1, zero-length) tensor.
  Tensor();

  // --- Factory functions -------------------------------------------------

  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  static Tensor Ones(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value,
                     bool requires_grad = false);
  // Takes ownership of `values`; Numel(shape) must equal values.size().
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);
  // Scalar (shape [1]).
  static Tensor Scalar(float value, bool requires_grad = false);
  // Uniform in [lo, hi).
  static Tensor Uniform(const Shape& shape, float lo, float hi, Rng& rng,
                        bool requires_grad = false);
  // Standard normal scaled by stddev.
  static Tensor Randn(const Shape& shape, float stddev, Rng& rng,
                      bool requires_grad = false);
  // Identity matrix [n, n].
  static Tensor Eye(int64_t n);

  // Wraps an existing impl (used by ops).
  static Tensor FromImpl(std::shared_ptr<TensorImpl> impl);

  // --- Introspection ------------------------------------------------------

  const Shape& shape() const;
  int64_t dim() const;
  int64_t size(int64_t axis) const;
  int64_t numel() const;
  bool defined() const { return impl_ != nullptr; }

  // Value of a single-element tensor.
  float item() const;
  // Element access by multi-index (rank must match).
  float at(std::initializer_list<int64_t> index) const;
  float& MutableAt(std::initializer_list<int64_t> index);

  const std::vector<float>& data() const;
  std::vector<float>& MutableData();

  // --- Autograd -----------------------------------------------------------

  bool requires_grad() const;
  // Only valid on leaves (tensors without grad_fn).
  void set_requires_grad(bool value);

  // Runs reverse-mode differentiation from this tensor, which must be a
  // scalar (numel == 1). Gradients accumulate into impl->grad of every
  // reachable tensor that requires grad.
  void Backward();

  // Gradient buffer (materializes zeros if absent). CHECK-fails unless
  // requires_grad.
  const std::vector<float>& grad() const;
  // Mutable gradient buffer (e.g. for gradient clipping).
  std::vector<float>& MutableGrad();
  Tensor GradTensor() const;
  void ZeroGrad();

  // A leaf copy sharing no autograd history (data is copied).
  Tensor Detach() const;
  // Deep copy with identical flags (autograd history not copied).
  Tensor Clone() const;

  std::string ToString() const;

  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  explicit Tensor(std::shared_ptr<TensorImpl> impl);

  std::shared_ptr<TensorImpl> impl_;
};

// Offset of a multi-index into row-major storage.
int64_t RowMajorOffset(const Shape& shape,
                       std::initializer_list<int64_t> index);

// --- Zero-copy row views ----------------------------------------------------
//
// A RowSpan aliases one row of a 2-D tensor's storage without copying.
// Aliasing rule: spans are raw pointers into impl->data, so they are only
// valid (a) while the owning Tensor is alive and (b) on tensors that carry
// no autograd history — mutating a recorded tensor's storage would silently
// corrupt saved activations. MutableRowSpan CHECK-fails on tensors with a
// grad_fn or requires_grad; the inference propagation paths are the intended
// users.

struct ConstRowSpan {
  const float* data = nullptr;
  int64_t size = 0;
};

struct RowSpan {
  float* data = nullptr;
  int64_t size = 0;
};

ConstRowSpan RowSpanOf(const Tensor& m, int64_t row);
RowSpan MutableRowSpan(Tensor& m, int64_t row);

}  // namespace tpgnn::tensor

#endif  // TPGNN_TENSOR_TENSOR_H_
