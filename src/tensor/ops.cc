#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <type_traits>
#include <utility>

#include "tensor/gemm.h"
#include "util/buffer_pool.h"
#include "util/logging.h"

namespace tpgnn::tensor {

using internal::GemmAccumulate;
using internal::GemmAccumulateNT;
using internal::GemmAccumulateTN;

namespace {

// Pooled output buffer for an op result (zero-filled; see util/buffer_pool.h).
std::vector<float> OutBuffer(int64_t n) {
  return util::AcquireBuffer(static_cast<size_t>(n));
}

// Pooled copy of an existing buffer.
std::vector<float> PooledCopy(const std::vector<float>& src) {
  std::vector<float> out = util::AcquireBuffer(src.size());
  std::copy(src.begin(), src.end(), out.begin());
  return out;
}

// Creates the op result and, when needed, attaches the autograd node built by
// `make_backward` (only invoked if some input requires grad and gradients are
// enabled, so no closure is allocated on inference paths). `make_backward`
// may optionally take the output impl so the closure can read the saved
// forward activations instead of recomputing them; the raw pointer is safe
// because the output impl owns the node that owns the closure. Nodes come
// from the thread's recycle list (AcquireAutogradNode), and `inputs` is
// templated so brace-enclosed call sites pass a stack-backed
// initializer_list instead of heap-allocating a std::vector per op.
template <typename Inputs, typename MakeBackward>
Tensor MakeResultImpl(const char* name, const Inputs& inputs,
                      const Shape& shape, std::vector<float> data,
                      MakeBackward&& make_backward) {
  bool requires_grad = false;
  if (GradEnabled()) {
    for (const Tensor& t : inputs) {
      requires_grad = requires_grad || t.requires_grad();
    }
  }
  Tensor out = Tensor::FromVector(shape, std::move(data), false);
  if (requires_grad) {
    out.impl()->requires_grad = true;
    std::shared_ptr<AutogradNode> node = AcquireAutogradNode();
    node->op_name = name;
    node->inputs.reserve(inputs.size());
    for (const Tensor& t : inputs) {
      node->inputs.push_back(t.impl());
    }
    if constexpr (std::is_invocable_v<MakeBackward&, TensorImpl*>) {
      node->backward = make_backward(out.impl().get());
    } else {
      node->backward = make_backward();
    }
    out.impl()->grad_fn = std::move(node);
  }
  return out;
}

template <typename MakeBackward>
Tensor MakeResult(const char* name, std::initializer_list<Tensor> inputs,
                  const Shape& shape, std::vector<float> data,
                  MakeBackward&& make_backward) {
  return MakeResultImpl(name, inputs, shape, std::move(data),
                        std::forward<MakeBackward>(make_backward));
}

template <typename MakeBackward>
Tensor MakeResult(const char* name, const std::vector<Tensor>& inputs,
                  const Shape& shape, std::vector<float> data,
                  MakeBackward&& make_backward) {
  return MakeResultImpl(name, inputs, shape, std::move(data),
                        std::forward<MakeBackward>(make_backward));
}

// Row-major strides of `in` aligned to broadcast shape `out`; stride 0 marks
// broadcast (repeated) axes.
std::vector<int64_t> BroadcastStrides(const Shape& in, const Shape& out) {
  std::vector<int64_t> in_strides(in.size());
  int64_t acc = 1;
  for (size_t i = in.size(); i-- > 0;) {
    in_strides[i] = acc;
    acc *= in[i];
  }
  std::vector<int64_t> strides(out.size(), 0);
  size_t offset = out.size() - in.size();
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == 1 && out[offset + i] != 1) {
      strides[offset + i] = 0;
    } else {
      strides[offset + i] = in_strides[i];
    }
  }
  return strides;
}

// Iterates all flat indices of `shape`, calling fn(out_flat, a_off, b_off).
template <typename Fn>
void ForEachBroadcast(const Shape& shape, const std::vector<int64_t>& sa,
                      const std::vector<int64_t>& sb, Fn&& fn) {
  const int64_t n = Numel(shape);
  if (n == 0) return;
  const size_t rank = shape.size();
  std::vector<int64_t> idx(rank, 0);
  int64_t oa = 0;
  int64_t ob = 0;
  for (int64_t i = 0; i < n; ++i) {
    fn(i, oa, ob);
    for (size_t ax = rank; ax-- > 0;) {
      ++idx[ax];
      oa += sa[ax];
      ob += sb[ax];
      if (idx[ax] < shape[ax]) break;
      idx[ax] = 0;
      oa -= sa[ax] * shape[ax];
      ob -= sb[ax] * shape[ax];
    }
  }
}

// Shared implementation for broadcasting binary elementwise operators.
// `fwd(x, y)` computes the value; `dfda`/`dfdb` compute partial derivatives
// from the input values.
template <typename Fwd, typename Dfda, typename Dfdb>
Tensor BinaryEw(const char* name, const Tensor& a, const Tensor& b, Fwd fwd,
                Dfda dfda, Dfdb dfdb) {
  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  const int64_t n = Numel(out_shape);
  std::vector<float> out = OutBuffer(n);
  const std::vector<float>& ad = a.data();
  const std::vector<float>& bd = b.data();

  const bool same_shape = a.shape() == b.shape();
  if (same_shape) {
    for (int64_t i = 0; i < n; ++i) {
      out[static_cast<size_t>(i)] = fwd(ad[static_cast<size_t>(i)],
                                        bd[static_cast<size_t>(i)]);
    }
  } else {
    const auto sa = BroadcastStrides(a.shape(), out_shape);
    const auto sb = BroadcastStrides(b.shape(), out_shape);
    ForEachBroadcast(out_shape, sa, sb,
                     [&](int64_t i, int64_t oa, int64_t ob) {
                       out[static_cast<size_t>(i)] =
                           fwd(ad[static_cast<size_t>(oa)],
                               bd[static_cast<size_t>(ob)]);
                     });
  }

  return MakeResult(name, {a, b}, out_shape, std::move(out), [&]() {
    auto a_impl = a.impl();
    auto b_impl = b.impl();
    Shape shape = out_shape;
    // Strides are computed once here instead of on every backward call.
    std::vector<int64_t> sa;
    std::vector<int64_t> sb;
    if (!same_shape) {
      sa = BroadcastStrides(a.shape(), out_shape);
      sb = BroadcastStrides(b.shape(), out_shape);
    }
    return [a_impl, b_impl, shape, sa, sb, dfda, dfdb,
            same_shape](const std::vector<float>& grad_out) {
      const bool need_a = a_impl->requires_grad;
      const bool need_b = b_impl->requires_grad;
      std::vector<float>* ag = need_a ? &GradBufferFor(*a_impl) : nullptr;
      std::vector<float>* bg = need_b ? &GradBufferFor(*b_impl) : nullptr;
      const std::vector<float>& ad = a_impl->data;
      const std::vector<float>& bd = b_impl->data;
      if (same_shape) {
        const int64_t n = static_cast<int64_t>(grad_out.size());
        for (int64_t i = 0; i < n; ++i) {
          const size_t s = static_cast<size_t>(i);
          if (need_a) (*ag)[s] += dfda(ad[s], bd[s]) * grad_out[s];
          if (need_b) (*bg)[s] += dfdb(ad[s], bd[s]) * grad_out[s];
        }
      } else {
        ForEachBroadcast(shape, sa, sb,
                         [&](int64_t i, int64_t oa, int64_t ob) {
                           const size_t si = static_cast<size_t>(i);
                           const size_t sao = static_cast<size_t>(oa);
                           const size_t sbo = static_cast<size_t>(ob);
                           if (need_a) {
                             (*ag)[sao] +=
                                 dfda(ad[sao], bd[sbo]) * grad_out[si];
                           }
                           if (need_b) {
                             (*bg)[sbo] +=
                                 dfdb(ad[sao], bd[sbo]) * grad_out[si];
                           }
                         });
      }
    };
  });
}

// Shared implementation for unary elementwise operators whose derivative is
// a function of the input alone; `dfdx(x)` must not re-run the forward
// computation.
template <typename Fwd, typename Dfdx>
Tensor UnaryEw(const char* name, const Tensor& a, Fwd fwd, Dfdx dfdx) {
  const int64_t n = a.numel();
  std::vector<float> out = OutBuffer(n);
  const std::vector<float>& ad = a.data();
  for (int64_t i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] = fwd(ad[static_cast<size_t>(i)]);
  }
  return MakeResult(name, {a}, a.shape(), std::move(out), [&]() {
    auto a_impl = a.impl();
    return [a_impl, dfdx](const std::vector<float>& grad_out) {
      std::vector<float>& ag = GradBufferFor(*a_impl);
      const std::vector<float>& ad = a_impl->data;
      for (size_t i = 0; i < grad_out.size(); ++i) {
        ag[i] += dfdx(ad[i]) * grad_out[i];
      }
    };
  });
}

// Unary elementwise operators whose derivative is a function of the output
// alone (Sigmoid, Tanh, Exp, Sqrt): the backward closure reads the saved
// forward activations from the output impl instead of recomputing the
// transcendental per element.
template <typename Fwd, typename Dfdy>
Tensor UnaryEwFromOutput(const char* name, const Tensor& a, Fwd fwd,
                         Dfdy dfdy) {
  const int64_t n = a.numel();
  std::vector<float> out = OutBuffer(n);
  const std::vector<float>& ad = a.data();
  for (int64_t i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] = fwd(ad[static_cast<size_t>(i)]);
  }
  return MakeResult(
      name, {a}, a.shape(), std::move(out), [&](TensorImpl* out_impl) {
        auto a_impl = a.impl();
        return [a_impl, out_impl, dfdy](const std::vector<float>& grad_out) {
          std::vector<float>& ag = GradBufferFor(*a_impl);
          const std::vector<float>& y = out_impl->data;
          for (size_t i = 0; i < grad_out.size(); ++i) {
            ag[i] += dfdy(y[i]) * grad_out[i];
          }
        };
      });
}

}  // namespace

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da =
        i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const int64_t db =
        i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    TPGNN_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast: " << ShapeToString(a) << " vs "
        << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryEw(
      "Add", a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryEw(
      "Sub", a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryEw(
      "Mul", a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryEw(
      "Div", a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor Scale(const Tensor& a, float s) {
  return UnaryEw(
      "Scale", a, [s](float x) { return x * s; }, [s](float) { return s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryEw(
      "AddScalar", a, [s](float x) { return x + s; },
      [](float) { return 1.0f; });
}

Tensor Pow(const Tensor& a, float exponent) {
  return UnaryEw(
      "Pow", a, [exponent](float x) { return std::pow(x, exponent); },
      [exponent](float x) {
        return exponent * std::pow(x, exponent - 1.0f);
      });
}

Tensor Neg(const Tensor& a) {
  return UnaryEw(
      "Neg", a, [](float x) { return -x; }, [](float) { return -1.0f; });
}

Tensor Exp(const Tensor& a) {
  return UnaryEwFromOutput(
      "Exp", a, [](float x) { return std::exp(x); },
      [](float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryEw(
      "Log", a, [](float x) { return std::log(x); },
      [](float x) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryEwFromOutput(
      "Sqrt", a, [](float x) { return std::sqrt(x); },
      [](float y) { return 0.5f / y; });
}

Tensor Sin(const Tensor& a) {
  return UnaryEw(
      "Sin", a, [](float x) { return std::sin(x); },
      [](float x) { return std::cos(x); });
}

Tensor Cos(const Tensor& a) {
  return UnaryEw(
      "Cos", a, [](float x) { return std::cos(x); },
      [](float x) { return -std::sin(x); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryEwFromOutput(
      "Tanh", a, [](float x) { return std::tanh(x); },
      [](float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryEwFromOutput(
      "Sigmoid", a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float y) { return y * (1.0f - y); });
}

Tensor Relu(const Tensor& a) {
  return UnaryEw(
      "Relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return UnaryEw(
      "LeakyRelu", a,
      [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; },
      [negative_slope](float x) {
        return x > 0.0f ? 1.0f : negative_slope;
      });
}

Tensor Reshape(const Tensor& a, const Shape& new_shape) {
  TPGNN_CHECK_EQ(Numel(new_shape), a.numel())
      << "Reshape " << ShapeToString(a.shape()) << " -> "
      << ShapeToString(new_shape);
  std::vector<float> out = PooledCopy(a.data());
  return MakeResult("Reshape", {a}, new_shape, std::move(out), [&]() {
    auto a_impl = a.impl();
    return [a_impl](const std::vector<float>& grad_out) {
      std::vector<float>& ag = GradBufferFor(*a_impl);
      for (size_t i = 0; i < grad_out.size(); ++i) {
        ag[i] += grad_out[i];
      }
    };
  });
}

Tensor Transpose(const Tensor& a) {
  TPGNN_CHECK_EQ(a.dim(), 2) << "Transpose requires a 2-D tensor";
  const int64_t n = a.size(0);
  const int64_t m = a.size(1);
  std::vector<float> out = OutBuffer(n * m);
  const std::vector<float>& ad = a.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      out[static_cast<size_t>(j * n + i)] = ad[static_cast<size_t>(i * m + j)];
    }
  }
  return MakeResult("Transpose", {a}, {m, n}, std::move(out), [&]() {
    auto a_impl = a.impl();
    return [a_impl, n, m](const std::vector<float>& grad_out) {
      std::vector<float>& ag = GradBufferFor(*a_impl);
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < m; ++j) {
          ag[static_cast<size_t>(i * m + j)] +=
              grad_out[static_cast<size_t>(j * n + i)];
        }
      }
    };
  });
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  TPGNN_CHECK(!parts.empty());
  const int64_t rank = parts[0].dim();
  TPGNN_CHECK(rank == 1 || rank == 2) << "Concat supports 1-D/2-D tensors";
  TPGNN_CHECK_GE(axis, 0);
  TPGNN_CHECK_LT(axis, rank);
  for (const Tensor& p : parts) {
    TPGNN_CHECK_EQ(p.dim(), rank);
    for (int64_t ax = 0; ax < rank; ++ax) {
      if (ax != axis) TPGNN_CHECK_EQ(p.size(ax), parts[0].size(ax));
    }
  }

  Shape out_shape = parts[0].shape();
  out_shape[static_cast<size_t>(axis)] = 0;
  for (const Tensor& p : parts) {
    out_shape[static_cast<size_t>(axis)] += p.size(axis);
  }

  const int64_t total = Numel(out_shape);
  std::vector<float> out = OutBuffer(total);
  if (rank == 1 || axis == 0) {
    size_t cursor = 0;
    for (const Tensor& p : parts) {
      std::copy(p.data().begin(), p.data().end(), out.begin() + cursor);
      cursor += p.data().size();
    }
  } else {  // rank == 2, axis == 1
    const int64_t rows = out_shape[0];
    const int64_t out_cols = out_shape[1];
    int64_t col_offset = 0;
    for (const Tensor& p : parts) {
      const int64_t cols = p.size(1);
      const std::vector<float>& pd = p.data();
      for (int64_t r = 0; r < rows; ++r) {
        std::copy(pd.begin() + r * cols, pd.begin() + (r + 1) * cols,
                  out.begin() + r * out_cols + col_offset);
      }
      col_offset += cols;
    }
  }

  return MakeResult("Concat", parts, out_shape, std::move(out), [&]() {
    std::vector<std::shared_ptr<TensorImpl>> impls;
    impls.reserve(parts.size());
    for (const Tensor& p : parts) impls.push_back(p.impl());
    Shape shape = out_shape;
    return [impls, shape, axis, rank](const std::vector<float>& grad_out) {
      if (rank == 1 || axis == 0) {
        size_t cursor = 0;
        for (const auto& impl : impls) {
          if (impl->requires_grad) {
            std::vector<float>& ig = GradBufferFor(*impl);
            for (size_t i = 0; i < impl->data.size(); ++i) {
              ig[i] += grad_out[cursor + i];
            }
          }
          cursor += impl->data.size();
        }
      } else {
        const int64_t rows = shape[0];
        const int64_t out_cols = shape[1];
        int64_t col_offset = 0;
        for (const auto& impl : impls) {
          const int64_t cols = impl->shape[1];
          if (impl->requires_grad) {
            std::vector<float>& ig = GradBufferFor(*impl);
            for (int64_t r = 0; r < rows; ++r) {
              for (int64_t c = 0; c < cols; ++c) {
                ig[static_cast<size_t>(r * cols + c)] +=
                    grad_out[static_cast<size_t>(r * out_cols + col_offset +
                                                 c)];
              }
            }
          }
          col_offset += cols;
        }
      }
    };
  });
}

Tensor Stack(const std::vector<Tensor>& rows) {
  TPGNN_CHECK(!rows.empty());
  const int64_t n = static_cast<int64_t>(rows.size());
  const int64_t m = rows[0].numel();
  std::vector<float> out = OutBuffer(n * m);
  for (int64_t i = 0; i < n; ++i) {
    const Tensor& r = rows[static_cast<size_t>(i)];
    TPGNN_CHECK_EQ(r.dim(), 1) << "Stack expects 1-D tensors";
    TPGNN_CHECK_EQ(r.numel(), m);
    std::copy(r.data().begin(), r.data().end(), out.begin() + i * m);
  }
  return MakeResult("Stack", rows, {n, m}, std::move(out), [&]() {
    std::vector<std::shared_ptr<TensorImpl>> impls;
    impls.reserve(rows.size());
    for (const Tensor& r : rows) impls.push_back(r.impl());
    return [impls, m](const std::vector<float>& grad_out) {
      for (size_t i = 0; i < impls.size(); ++i) {
        if (!impls[i]->requires_grad) continue;
        std::vector<float>& rg = GradBufferFor(*impls[i]);
        const float* g = grad_out.data() + static_cast<int64_t>(i) * m;
        for (int64_t c = 0; c < m; ++c) {
          rg[static_cast<size_t>(c)] += g[c];
        }
      }
    };
  });
}

Tensor IndexSelect(const Tensor& a, const std::vector<int64_t>& indices) {
  const int64_t rank = a.dim();
  TPGNN_CHECK(rank == 1 || rank == 2) << "IndexSelect supports 1-D/2-D";
  const int64_t n = a.size(0);
  const int64_t cols = rank == 2 ? a.size(1) : 1;
  std::vector<float> out =
      OutBuffer(static_cast<int64_t>(indices.size()) * cols);
  const std::vector<float>& ad = a.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t row = indices[i];
    TPGNN_CHECK_GE(row, 0);
    TPGNN_CHECK_LT(row, n);
    std::copy(ad.begin() + row * cols, ad.begin() + (row + 1) * cols,
              out.begin() + static_cast<int64_t>(i) * cols);
  }
  Shape out_shape =
      rank == 2 ? Shape{static_cast<int64_t>(indices.size()), cols}
                : Shape{static_cast<int64_t>(indices.size())};
  return MakeResult("IndexSelect", {a}, out_shape, std::move(out), [&]() {
    auto a_impl = a.impl();
    std::vector<int64_t> idx = indices;
    return [a_impl, idx, cols](const std::vector<float>& grad_out) {
      std::vector<float>& ag = GradBufferFor(*a_impl);
      for (size_t i = 0; i < idx.size(); ++i) {
        for (int64_t c = 0; c < cols; ++c) {
          ag[static_cast<size_t>(idx[i] * cols + c)] +=
              grad_out[i * static_cast<size_t>(cols) +
                       static_cast<size_t>(c)];
        }
      }
    };
  });
}

Tensor Row(const Tensor& a, int64_t row) {
  TPGNN_CHECK_EQ(a.dim(), 2);
  TPGNN_CHECK_GE(row, 0);
  TPGNN_CHECK_LT(row, a.size(0));
  const int64_t cols = a.size(1);
  std::vector<float> out = OutBuffer(cols);
  const float* src = a.data().data() + row * cols;
  std::copy(src, src + cols, out.begin());
  return MakeResult("Row", {a}, {cols}, std::move(out), [&]() {
    auto a_impl = a.impl();
    return [a_impl, row, cols](const std::vector<float>& grad_out) {
      std::vector<float>& ag = GradBufferFor(*a_impl);
      float* dst = ag.data() + row * cols;
      for (int64_t c = 0; c < cols; ++c) {
        dst[c] += grad_out[static_cast<size_t>(c)];
      }
    };
  });
}

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices) {
  TPGNN_CHECK_EQ(a.dim(), 2) << "GatherRows requires a matrix";
  const int64_t n = a.size(0);
  const int64_t cols = a.size(1);
  const int64_t k = static_cast<int64_t>(indices.size());
  std::vector<float> out = OutBuffer(k * cols);
  const std::vector<float>& ad = a.data();
  for (int64_t i = 0; i < k; ++i) {
    const int64_t row = indices[static_cast<size_t>(i)];
    TPGNN_CHECK_GE(row, 0);
    TPGNN_CHECK_LT(row, n);
    std::copy(ad.begin() + row * cols, ad.begin() + (row + 1) * cols,
              out.begin() + i * cols);
  }
  return MakeResult("GatherRows", {a}, {k, cols}, std::move(out), [&]() {
    auto a_impl = a.impl();
    std::vector<int64_t> idx = indices;
    return [a_impl, idx, cols](const std::vector<float>& grad_out) {
      std::vector<float>& ag = GradBufferFor(*a_impl);
      for (size_t i = 0; i < idx.size(); ++i) {
        float* dst = ag.data() + idx[i] * cols;
        const float* g = grad_out.data() + static_cast<int64_t>(i) * cols;
        for (int64_t c = 0; c < cols; ++c) {
          dst[c] += g[c];
        }
      }
    };
  });
}

Tensor ScatterRowAdd(const Tensor& base, const std::vector<int64_t>& indices,
                     const Tensor& updates) {
  TPGNN_CHECK_EQ(base.dim(), 2) << "ScatterRowAdd requires matrices";
  TPGNN_CHECK_EQ(updates.dim(), 2);
  const int64_t n = base.size(0);
  const int64_t cols = base.size(1);
  TPGNN_CHECK_EQ(updates.size(1), cols);
  TPGNN_CHECK_EQ(updates.size(0), static_cast<int64_t>(indices.size()));
  std::vector<float> out = PooledCopy(base.data());
  const std::vector<float>& ud = updates.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t row = indices[i];
    TPGNN_CHECK_GE(row, 0);
    TPGNN_CHECK_LT(row, n);
    float* dst = out.data() + row * cols;
    const float* src = ud.data() + static_cast<int64_t>(i) * cols;
    for (int64_t c = 0; c < cols; ++c) {
      dst[c] += src[c];
    }
  }
  return MakeResult(
      "ScatterRowAdd", {base, updates}, base.shape(), std::move(out), [&]() {
        auto base_impl = base.impl();
        auto updates_impl = updates.impl();
        std::vector<int64_t> idx = indices;
        return [base_impl, updates_impl, idx,
                cols](const std::vector<float>& grad_out) {
          if (base_impl->requires_grad) {
            std::vector<float>& bg = GradBufferFor(*base_impl);
            for (size_t i = 0; i < grad_out.size(); ++i) {
              bg[i] += grad_out[i];
            }
          }
          if (updates_impl->requires_grad) {
            std::vector<float>& ug = GradBufferFor(*updates_impl);
            for (size_t i = 0; i < idx.size(); ++i) {
              float* dst = ug.data() + static_cast<int64_t>(i) * cols;
              const float* g = grad_out.data() + idx[i] * cols;
              for (int64_t c = 0; c < cols; ++c) {
                dst[c] += g[c];
              }
            }
          }
        };
      });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TPGNN_CHECK_EQ(a.dim(), 2);
  TPGNN_CHECK_EQ(b.dim(), 2);
  TPGNN_CHECK_EQ(a.size(1), b.size(0))
      << "MatMul " << ShapeToString(a.shape()) << " x "
      << ShapeToString(b.shape());
  const int64_t n = a.size(0);
  const int64_t k = a.size(1);
  const int64_t m = b.size(1);
  std::vector<float> out = OutBuffer(n * m);
  GemmAccumulate(a.data().data(), b.data().data(), out.data(), n, k, m);
  return MakeResult("MatMul", {a, b}, {n, m}, std::move(out), [&]() {
    auto a_impl = a.impl();
    auto b_impl = b.impl();
    return [a_impl, b_impl, n, k, m](const std::vector<float>& grad_out) {
      if (a_impl->requires_grad) {
        // dA = dC x B^T
        GemmAccumulateNT(grad_out.data(), b_impl->data.data(),
                         GradBufferFor(*a_impl).data(), n, k, m);
      }
      if (b_impl->requires_grad) {
        // dB = A^T x dC
        GemmAccumulateTN(a_impl->data.data(), grad_out.data(),
                         GradBufferFor(*b_impl).data(), n, k, m);
      }
    };
  });
}

Tensor Affine(const Tensor& x, const Tensor& w, const Tensor& b) {
  TPGNN_CHECK_EQ(x.dim(), 2);
  TPGNN_CHECK_EQ(w.dim(), 2);
  TPGNN_CHECK_EQ(x.size(1), w.size(0))
      << "Affine " << ShapeToString(x.shape()) << " x "
      << ShapeToString(w.shape());
  const int64_t n = x.size(0);
  const int64_t k = x.size(1);
  const int64_t m = w.size(1);
  TPGNN_CHECK_EQ(b.numel(), m);
  std::vector<float> out = OutBuffer(n * m);
  GemmAccumulate(x.data().data(), w.data().data(), out.data(), n, k, m);
  const float* bias = b.data().data();
  for (int64_t i = 0; i < n; ++i) {
    float* row = out.data() + i * m;
    for (int64_t j = 0; j < m; ++j) {
      row[j] += bias[j];
    }
  }
  return MakeResult("Affine", {x, w, b}, {n, m}, std::move(out), [&]() {
    auto x_impl = x.impl();
    auto w_impl = w.impl();
    auto b_impl = b.impl();
    return [x_impl, w_impl, b_impl, n, k,
            m](const std::vector<float>& grad_out) {
      if (x_impl->requires_grad) {
        GemmAccumulateNT(grad_out.data(), w_impl->data.data(),
                         GradBufferFor(*x_impl).data(), n, k, m);
      }
      if (w_impl->requires_grad) {
        GemmAccumulateTN(x_impl->data.data(), grad_out.data(),
                         GradBufferFor(*w_impl).data(), n, k, m);
      }
      if (b_impl->requires_grad) {
        std::vector<float>& bg = GradBufferFor(*b_impl);
        for (int64_t i = 0; i < n; ++i) {
          const float* g = grad_out.data() + i * m;
          for (int64_t j = 0; j < m; ++j) {
            bg[static_cast<size_t>(j)] += g[j];
          }
        }
      }
    };
  });
}

Tensor Affine2(const Tensor& x, const Tensor& w, const Tensor& h,
               const Tensor& u, const Tensor& b) {
  TPGNN_CHECK_EQ(x.dim(), 2);
  TPGNN_CHECK_EQ(w.dim(), 2);
  TPGNN_CHECK_EQ(h.dim(), 2);
  TPGNN_CHECK_EQ(u.dim(), 2);
  TPGNN_CHECK_EQ(x.size(1), w.size(0));
  TPGNN_CHECK_EQ(h.size(1), u.size(0));
  TPGNN_CHECK_EQ(x.size(0), h.size(0));
  const int64_t n = x.size(0);
  const int64_t kx = x.size(1);
  const int64_t kh = h.size(1);
  const int64_t m = w.size(1);
  TPGNN_CHECK_EQ(u.size(1), m);
  TPGNN_CHECK_EQ(b.numel(), m);
  std::vector<float> out = OutBuffer(n * m);
  GemmAccumulate(x.data().data(), w.data().data(), out.data(), n, kx, m);
  GemmAccumulate(h.data().data(), u.data().data(), out.data(), n, kh, m);
  const float* bias = b.data().data();
  for (int64_t i = 0; i < n; ++i) {
    float* row = out.data() + i * m;
    for (int64_t j = 0; j < m; ++j) {
      row[j] += bias[j];
    }
  }
  return MakeResult(
      "Affine2", {x, w, h, u, b}, {n, m}, std::move(out), [&]() {
        auto x_impl = x.impl();
        auto w_impl = w.impl();
        auto h_impl = h.impl();
        auto u_impl = u.impl();
        auto b_impl = b.impl();
        return [x_impl, w_impl, h_impl, u_impl, b_impl, n, kx, kh,
                m](const std::vector<float>& grad_out) {
          if (x_impl->requires_grad) {
            GemmAccumulateNT(grad_out.data(), w_impl->data.data(),
                             GradBufferFor(*x_impl).data(), n, kx, m);
          }
          if (w_impl->requires_grad) {
            GemmAccumulateTN(x_impl->data.data(), grad_out.data(),
                             GradBufferFor(*w_impl).data(), n, kx, m);
          }
          if (h_impl->requires_grad) {
            GemmAccumulateNT(grad_out.data(), u_impl->data.data(),
                             GradBufferFor(*h_impl).data(), n, kh, m);
          }
          if (u_impl->requires_grad) {
            GemmAccumulateTN(h_impl->data.data(), grad_out.data(),
                             GradBufferFor(*u_impl).data(), n, kh, m);
          }
          if (b_impl->requires_grad) {
            std::vector<float>& bg = GradBufferFor(*b_impl);
            for (int64_t i = 0; i < n; ++i) {
              const float* g = grad_out.data() + i * m;
              for (int64_t j = 0; j < m; ++j) {
                bg[static_cast<size_t>(j)] += g[j];
              }
            }
          }
        };
      });
}

Tensor MulAdd(const Tensor& a, const Tensor& b, const Tensor& c) {
  TPGNN_CHECK(a.shape() == b.shape() && a.shape() == c.shape())
      << "MulAdd requires equal shapes";
  const int64_t n = a.numel();
  std::vector<float> out = OutBuffer(n);
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  const float* cd = c.data().data();
  for (int64_t i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] = ad[i] * bd[i] + cd[i];
  }
  return MakeResult("MulAdd", {a, b, c}, a.shape(), std::move(out), [&]() {
    auto a_impl = a.impl();
    auto b_impl = b.impl();
    auto c_impl = c.impl();
    return [a_impl, b_impl, c_impl](const std::vector<float>& grad_out) {
      const size_t n = grad_out.size();
      if (a_impl->requires_grad) {
        std::vector<float>& ag = GradBufferFor(*a_impl);
        for (size_t i = 0; i < n; ++i) ag[i] += b_impl->data[i] * grad_out[i];
      }
      if (b_impl->requires_grad) {
        std::vector<float>& bg = GradBufferFor(*b_impl);
        for (size_t i = 0; i < n; ++i) bg[i] += a_impl->data[i] * grad_out[i];
      }
      if (c_impl->requires_grad) {
        std::vector<float>& cg = GradBufferFor(*c_impl);
        for (size_t i = 0; i < n; ++i) cg[i] += grad_out[i];
      }
    };
  });
}

Tensor TanhAdd(const Tensor& a, const Tensor& b) {
  TPGNN_CHECK(a.shape() == b.shape()) << "TanhAdd requires equal shapes";
  const int64_t n = a.numel();
  std::vector<float> out = OutBuffer(n);
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  for (int64_t i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] = std::tanh(ad[i] + bd[i]);
  }
  return MakeResult(
      "TanhAdd", {a, b}, a.shape(), std::move(out), [&](TensorImpl* out_impl) {
        auto a_impl = a.impl();
        auto b_impl = b.impl();
        return [a_impl, b_impl,
                out_impl](const std::vector<float>& grad_out) {
          const std::vector<float>& y = out_impl->data;
          const bool need_a = a_impl->requires_grad;
          const bool need_b = b_impl->requires_grad;
          std::vector<float>* ag = need_a ? &GradBufferFor(*a_impl) : nullptr;
          std::vector<float>* bg = need_b ? &GradBufferFor(*b_impl) : nullptr;
          for (size_t i = 0; i < grad_out.size(); ++i) {
            const float d = (1.0f - y[i] * y[i]) * grad_out[i];
            if (need_a) (*ag)[i] += d;
            if (need_b) (*bg)[i] += d;
          }
        };
      });
}

Tensor GruBlend(const Tensor& z, const Tensor& h, const Tensor& n) {
  TPGNN_CHECK(z.shape() == h.shape() && z.shape() == n.shape())
      << "GruBlend requires equal shapes";
  const int64_t count = z.numel();
  std::vector<float> out = OutBuffer(count);
  const float* zd = z.data().data();
  const float* hd = h.data().data();
  const float* nd = n.data().data();
  // Matches the unfused chain bitwise: z*h + (1 - z)*n with (1 - z)
  // computed first, products second, sum last.
  for (int64_t i = 0; i < count; ++i) {
    out[static_cast<size_t>(i)] = zd[i] * hd[i] + (1.0f - zd[i]) * nd[i];
  }
  return MakeResult("GruBlend", {z, h, n}, z.shape(), std::move(out), [&]() {
    auto z_impl = z.impl();
    auto h_impl = h.impl();
    auto n_impl = n.impl();
    return [z_impl, h_impl, n_impl](const std::vector<float>& grad_out) {
      const std::vector<float>& zd = z_impl->data;
      const std::vector<float>& hd = h_impl->data;
      const std::vector<float>& nd = n_impl->data;
      if (z_impl->requires_grad) {
        std::vector<float>& zg = GradBufferFor(*z_impl);
        for (size_t i = 0; i < grad_out.size(); ++i) {
          zg[i] += (hd[i] - nd[i]) * grad_out[i];
        }
      }
      if (h_impl->requires_grad) {
        std::vector<float>& hg = GradBufferFor(*h_impl);
        for (size_t i = 0; i < grad_out.size(); ++i) {
          hg[i] += zd[i] * grad_out[i];
        }
      }
      if (n_impl->requires_grad) {
        std::vector<float>& ng = GradBufferFor(*n_impl);
        for (size_t i = 0; i < grad_out.size(); ++i) {
          ng[i] += (1.0f - zd[i]) * grad_out[i];
        }
      }
    };
  });
}

Tensor Sum(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.data()) acc += v;
  std::vector<float> out = OutBuffer(1);
  out[0] = static_cast<float>(acc);
  return MakeResult("Sum", {a}, {1}, std::move(out), [&]() {
    auto a_impl = a.impl();
    return [a_impl](const std::vector<float>& grad_out) {
      for (float& g : GradBufferFor(*a_impl)) g += grad_out[0];
    };
  });
}

Tensor Mean(const Tensor& a) {
  TPGNN_CHECK_GT(a.numel(), 0);
  const float inv = 1.0f / static_cast<float>(a.numel());
  return Scale(Sum(a), inv);
}

Tensor SumAxis(const Tensor& a, int64_t axis) {
  TPGNN_CHECK_EQ(a.dim(), 2);
  TPGNN_CHECK(axis == 0 || axis == 1);
  const int64_t n = a.size(0);
  const int64_t m = a.size(1);
  const std::vector<float>& ad = a.data();
  if (axis == 0) {
    std::vector<float> out = OutBuffer(m);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < m; ++j) {
        out[static_cast<size_t>(j)] += ad[static_cast<size_t>(i * m + j)];
      }
    }
    return MakeResult("SumAxis0", {a}, {m}, std::move(out), [&]() {
      auto a_impl = a.impl();
      return [a_impl, n, m](const std::vector<float>& grad_out) {
        std::vector<float>& ag = GradBufferFor(*a_impl);
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t j = 0; j < m; ++j) {
            ag[static_cast<size_t>(i * m + j)] +=
                grad_out[static_cast<size_t>(j)];
          }
        }
      };
    });
  }
  std::vector<float> out = OutBuffer(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      out[static_cast<size_t>(i)] += ad[static_cast<size_t>(i * m + j)];
    }
  }
  return MakeResult("SumAxis1", {a}, {n}, std::move(out), [&]() {
    auto a_impl = a.impl();
    return [a_impl, n, m](const std::vector<float>& grad_out) {
      std::vector<float>& ag = GradBufferFor(*a_impl);
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < m; ++j) {
          ag[static_cast<size_t>(i * m + j)] +=
              grad_out[static_cast<size_t>(i)];
        }
      }
    };
  });
}

Tensor MeanAxis(const Tensor& a, int64_t axis) {
  TPGNN_CHECK_EQ(a.dim(), 2);
  const int64_t denom = axis == 0 ? a.size(0) : a.size(1);
  TPGNN_CHECK_GT(denom, 0);
  return Scale(SumAxis(a, axis), 1.0f / static_cast<float>(denom));
}

Tensor Softmax(const Tensor& a) {
  const int64_t rank = a.dim();
  TPGNN_CHECK(rank == 1 || rank == 2);
  const int64_t rows = rank == 2 ? a.size(0) : 1;
  const int64_t cols = rank == 2 ? a.size(1) : a.size(0);
  TPGNN_CHECK_GT(cols, 0);
  const std::vector<float>& ad = a.data();
  std::vector<float> out = OutBuffer(static_cast<int64_t>(ad.size()));
  for (int64_t r = 0; r < rows; ++r) {
    const float* in_row = ad.data() + r * cols;
    float* out_row = out.data() + r * cols;
    float max_v = in_row[0];
    for (int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, in_row[c]);
    float total = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      out_row[c] = std::exp(in_row[c] - max_v);
      total += out_row[c];
    }
    for (int64_t c = 0; c < cols; ++c) out_row[c] /= total;
  }
  return MakeResult(
      "Softmax", {a}, a.shape(), std::move(out), [&](TensorImpl* out_impl) {
        auto a_impl = a.impl();
        return [a_impl, out_impl, rows,
                cols](const std::vector<float>& grad_out) {
          std::vector<float>& ag = GradBufferFor(*a_impl);
          // Saved forward activations live in the output impl; no copy.
          const std::vector<float>& y = out_impl->data;
          for (int64_t r = 0; r < rows; ++r) {
            const float* yr = y.data() + r * cols;
            const float* gr = grad_out.data() + r * cols;
            float dot = 0.0f;
            for (int64_t c = 0; c < cols; ++c) dot += yr[c] * gr[c];
            for (int64_t c = 0; c < cols; ++c) {
              ag[static_cast<size_t>(r * cols + c)] += yr[c] * (gr[c] - dot);
            }
          }
        };
      });
}

Tensor BinaryCrossEntropyWithLogits(const Tensor& logits,
                                    const Tensor& targets) {
  TPGNN_CHECK_EQ(logits.numel(), targets.numel());
  TPGNN_CHECK_GT(logits.numel(), 0);
  const std::vector<float>& x = logits.data();
  const std::vector<float>& t = targets.data();
  double loss = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    // max(x, 0) - x*t + log(1 + exp(-|x|)) : numerically stable BCE.
    loss += std::max(x[i], 0.0f) - x[i] * t[i] +
            std::log1p(std::exp(-std::abs(x[i])));
  }
  loss /= static_cast<double>(x.size());
  std::vector<float> out = OutBuffer(1);
  out[0] = static_cast<float>(loss);
  return MakeResult("BCEWithLogits", {logits}, {1}, std::move(out), [&]() {
    auto logits_impl = logits.impl();
    // Keeping the targets impl alive is cheaper than copying its data; no
    // gradient flows into it (it is not a recorded input).
    auto targets_impl = targets.impl();
    return [logits_impl, targets_impl](const std::vector<float>& grad_out) {
      std::vector<float>& lg = GradBufferFor(*logits_impl);
      const std::vector<float>& tgt = targets_impl->data;
      const float scale =
          grad_out[0] / static_cast<float>(logits_impl->data.size());
      for (size_t i = 0; i < logits_impl->data.size(); ++i) {
        const float sig = 1.0f / (1.0f + std::exp(-logits_impl->data[i]));
        lg[i] += scale * (sig - tgt[i]);
      }
    };
  });
}

void AddInPlace(Tensor& a, const Tensor& b) {
  TPGNN_CHECK(a.shape() == b.shape()) << "AddInPlace requires equal shapes";
  TPGNN_CHECK(a.impl()->grad_fn == nullptr && !a.requires_grad())
      << "AddInPlace would corrupt a recorded tensor's saved activations";
  std::vector<float>& ad = a.MutableData();
  const std::vector<float>& bd = b.data();
  for (size_t i = 0; i < ad.size(); ++i) {
    ad[i] += bd[i];
  }
}

void ScaledAddInPlace(Tensor& a, const Tensor& b, float s) {
  TPGNN_CHECK(a.shape() == b.shape())
      << "ScaledAddInPlace requires equal shapes";
  TPGNN_CHECK(a.impl()->grad_fn == nullptr && !a.requires_grad())
      << "ScaledAddInPlace would corrupt a recorded tensor's saved "
         "activations";
  std::vector<float>& ad = a.MutableData();
  const std::vector<float>& bd = b.data();
  for (size_t i = 0; i < ad.size(); ++i) {
    ad[i] += s * bd[i];
  }
}

int64_t Argmax(const Tensor& a) {
  TPGNN_CHECK_GT(a.numel(), 0);
  const std::vector<float>& ad = a.data();
  return static_cast<int64_t>(
      std::max_element(ad.begin(), ad.end()) - ad.begin());
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float av = a.data()[static_cast<size_t>(i)];
    const float bv = b.data()[static_cast<size_t>(i)];
    if (std::abs(av - bv) > atol + rtol * std::abs(bv)) return false;
  }
  return true;
}

}  // namespace tpgnn::tensor
