#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "util/buffer_pool.h"
#include "util/logging.h"

namespace tpgnn::tensor {

int64_t Numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    TPGNN_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

TensorImpl::~TensorImpl() {
  util::ReleaseBuffer(std::move(grad));
  util::ReleaseBuffer(std::move(data));
}

void TensorImpl::EnsureGrad() {
  if (grad.size() != data.size()) {
    if (grad.capacity() >= data.size()) {
      grad.assign(data.size(), 0.0f);
    } else {
      util::ReleaseBuffer(std::move(grad));
      grad = util::AcquireBuffer(data.size());
    }
  }
}

void TensorImpl::AccumulateGrad(const std::vector<float>& g) {
  TPGNN_CHECK_EQ(g.size(), data.size());
  EnsureGrad();
  for (size_t i = 0; i < g.size(); ++i) {
    grad[i] += g[i];
  }
}

namespace {

thread_local int no_grad_depth = 0;
thread_local ShadowGradScope* shadow_scope = nullptr;

// Thread-local recycle list for finished tape nodes. Bounded so a single
// giant tape cannot pin memory forever; the trainer's tapes are far smaller.
constexpr size_t kMaxFreeNodes = 8192;

thread_local bool tls_nodes_destroyed = false;

struct NodeFreeList {
  std::vector<std::shared_ptr<AutogradNode>> nodes;
  ~NodeFreeList() { tls_nodes_destroyed = true; }
};

NodeFreeList* NodeCache() {
  if (tls_nodes_destroyed) return nullptr;
  thread_local NodeFreeList list;
  return &list;
}

// Parks a cleared node for reuse; `node` must already have empty inputs and
// a null backward closure.
void RecycleAutogradNode(std::shared_ptr<AutogradNode>&& node) {
  NodeFreeList* cache = NodeCache();
  if (cache != nullptr && cache->nodes.size() < kMaxFreeNodes) {
    node->backward_invoked = false;
    cache->nodes.push_back(std::move(node));
  }
}

std::shared_ptr<TensorImpl> MakeImpl(const Shape& shape,
                                     std::vector<float> values,
                                     bool requires_grad) {
  TPGNN_CHECK_EQ(Numel(shape), static_cast<int64_t>(values.size()))
      << "shape " << ShapeToString(shape);
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(values);
  impl->requires_grad = requires_grad && GradEnabled();
  return impl;
}

}  // namespace

std::shared_ptr<AutogradNode> AcquireAutogradNode() {
  NodeFreeList* cache = util::BufferPoolEnabled() ? NodeCache() : nullptr;
  if (cache != nullptr && !cache->nodes.empty()) {
    std::shared_ptr<AutogradNode> node = std::move(cache->nodes.back());
    cache->nodes.pop_back();
    util::RecordNodeAcquire(/*reused=*/true);
    return node;
  }
  util::RecordNodeAcquire(/*reused=*/false);
  return std::make_shared<AutogradNode>();
}

NoGradGuard::NoGradGuard() { ++no_grad_depth; }
NoGradGuard::~NoGradGuard() { --no_grad_depth; }

bool GradEnabled() { return no_grad_depth == 0; }

ShadowGradScope::ShadowGradScope(
    const std::vector<std::shared_ptr<TensorImpl>>& shadowed) {
  TPGNN_CHECK(shadow_scope == nullptr)
      << "nested ShadowGradScope on one thread";
  shadowed_.reserve(shadowed.size());
  for (const auto& impl : shadowed) {
    TPGNN_CHECK(impl != nullptr);
    shadowed_.push_back(impl.get());
  }
  buffers_.resize(shadowed_.size());
  shadow_scope = this;
}

ShadowGradScope::~ShadowGradScope() {
  shadow_scope = nullptr;
  for (std::vector<float>& buffer : buffers_) {
    util::ReleaseBuffer(std::move(buffer));
  }
}

const std::vector<float>& ShadowGradScope::shadow_grad(size_t i) const {
  TPGNN_CHECK_LT(i, buffers_.size());
  return buffers_[i];
}

std::vector<float> ShadowGradScope::TakeShadowGrad(size_t i) {
  TPGNN_CHECK_LT(i, buffers_.size());
  std::vector<float> out = std::move(buffers_[i]);
  buffers_[i] = std::vector<float>();
  return out;
}

std::vector<float>& GradBufferFor(TensorImpl& impl) {
  if (shadow_scope != nullptr) {
    // Linear scan: the shadowed set is the model's parameter list (tens of
    // entries) and backward touches each parameter a handful of times per
    // tape, so this stays cheaper than hashing for real models.
    for (size_t i = 0; i < shadow_scope->shadowed_.size(); ++i) {
      if (shadow_scope->shadowed_[i] == &impl) {
        std::vector<float>& buffer = shadow_scope->buffers_[i];
        if (buffer.size() != impl.data.size()) {
          if (buffer.capacity() >= impl.data.size()) {
            buffer.assign(impl.data.size(), 0.0f);
          } else {
            util::ReleaseBuffer(std::move(buffer));
            buffer = util::AcquireBuffer(impl.data.size());
          }
        }
        return buffer;
      }
    }
  }
  impl.EnsureGrad();
  return impl.grad;
}

Tensor::Tensor() : impl_(MakeImpl({0}, {}, false)) {}

Tensor::Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Full(shape, 0.0f, requires_grad);
}

Tensor Tensor::Ones(const Shape& shape, bool requires_grad) {
  return Full(shape, 1.0f, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  std::vector<float> values =
      util::AcquireBuffer(static_cast<size_t>(Numel(shape)));
  if (value != 0.0f) {
    std::fill(values.begin(), values.end(), value);
  }
  return Tensor(MakeImpl(shape, std::move(values), requires_grad));
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values,
                          bool requires_grad) {
  return Tensor(MakeImpl(shape, std::move(values), requires_grad));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector({1}, {value}, requires_grad);
}

Tensor Tensor::Uniform(const Shape& shape, float lo, float hi, Rng& rng,
                       bool requires_grad) {
  std::vector<float> values =
      util::AcquireBuffer(static_cast<size_t>(Numel(shape)));
  for (float& v : values) {
    v = rng.UniformFloat(lo, hi);
  }
  return Tensor(MakeImpl(shape, std::move(values), requires_grad));
}

Tensor Tensor::Randn(const Shape& shape, float stddev, Rng& rng,
                     bool requires_grad) {
  std::vector<float> values =
      util::AcquireBuffer(static_cast<size_t>(Numel(shape)));
  for (float& v : values) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return Tensor(MakeImpl(shape, std::move(values), requires_grad));
}

Tensor Tensor::Eye(int64_t n) {
  std::vector<float> values = util::AcquireBuffer(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    values[static_cast<size_t>(i * n + i)] = 1.0f;
  }
  return Tensor(MakeImpl({n, n}, std::move(values), false));
}

Tensor Tensor::FromImpl(std::shared_ptr<TensorImpl> impl) {
  TPGNN_CHECK(impl != nullptr);
  return Tensor(std::move(impl));
}

const Shape& Tensor::shape() const { return impl_->shape; }

int64_t Tensor::dim() const { return static_cast<int64_t>(impl_->shape.size()); }

int64_t Tensor::size(int64_t axis) const {
  TPGNN_CHECK_GE(axis, 0);
  TPGNN_CHECK_LT(axis, dim());
  return impl_->shape[static_cast<size_t>(axis)];
}

int64_t Tensor::numel() const { return impl_->numel(); }

float Tensor::item() const {
  TPGNN_CHECK_EQ(numel(), 1) << "item() requires a single-element tensor";
  return impl_->data[0];
}

int64_t RowMajorOffset(const Shape& shape,
                       std::initializer_list<int64_t> index) {
  TPGNN_CHECK_EQ(shape.size(), index.size());
  int64_t offset = 0;
  size_t axis = 0;
  for (int64_t i : index) {
    TPGNN_CHECK_GE(i, 0);
    TPGNN_CHECK_LT(i, shape[axis]);
    offset = offset * shape[axis] + i;
    ++axis;
  }
  return offset;
}

float Tensor::at(std::initializer_list<int64_t> index) const {
  return impl_->data[static_cast<size_t>(RowMajorOffset(impl_->shape, index))];
}

float& Tensor::MutableAt(std::initializer_list<int64_t> index) {
  return impl_->data[static_cast<size_t>(RowMajorOffset(impl_->shape, index))];
}

const std::vector<float>& Tensor::data() const { return impl_->data; }

std::vector<float>& Tensor::MutableData() { return impl_->data; }

bool Tensor::requires_grad() const { return impl_->requires_grad; }

void Tensor::set_requires_grad(bool value) {
  TPGNN_CHECK(impl_->grad_fn == nullptr)
      << "set_requires_grad is only valid on leaf tensors";
  impl_->requires_grad = value;
}

void Tensor::Backward() {
  TPGNN_CHECK_EQ(numel(), 1)
      << "Backward() requires a scalar loss (got shape "
      << ShapeToString(impl_->shape) << "); reduce with Sum()/Mean() first";
  TPGNN_CHECK(impl_->requires_grad)
      << "Backward() on a tensor that does not require grad";
  if (impl_->grad_fn != nullptr) {
    TPGNN_CHECK(!impl_->grad_fn->backward_invoked)
        << "Backward() called twice on the same tape (op "
        << impl_->grad_fn->op_name
        << "); recompute the forward pass to build a fresh tape";
    impl_->grad_fn->backward_invoked = true;
  }

  // Topological order over AutogradNodes: reverse postorder of a DFS that
  // follows input edges. Every consumer then precedes its producers, so each
  // node sees its output's fully accumulated gradient.
  std::vector<std::shared_ptr<TensorImpl>> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<std::shared_ptr<TensorImpl>, size_t>> stack;
  if (impl_->grad_fn != nullptr) {
    stack.emplace_back(impl_, 0);
    visited.insert(impl_.get());
  }
  while (!stack.empty()) {
    std::shared_ptr<TensorImpl> node = stack.back().first;
    size_t next_child = stack.back().second;
    const auto& inputs = node->grad_fn->inputs;
    bool descended = false;
    while (next_child < inputs.size()) {
      const std::shared_ptr<TensorImpl>& child = inputs[next_child];
      ++next_child;
      if (child->grad_fn != nullptr && visited.insert(child.get()).second) {
        stack.back().second = next_child;
        stack.emplace_back(child, 0);
        descended = true;
        break;
      }
    }
    if (!descended) {
      order.push_back(node);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());

  impl_->EnsureGrad();
  impl_->grad[0] += 1.0f;
  for (const auto& node : order) {
    node->EnsureGrad();
    node->grad_fn->backward(node->grad);
  }

  if (!util::BufferPoolEnabled()) {
    return;
  }
  // Release the finished tape eagerly: interior activations' grad buffers go
  // back to the pool, nodes drop their captured inputs (so the shared_ptr
  // chains unwind here instead of via deep recursion in ~TensorImpl), and
  // cleared nodes are parked for reuse by the next forward pass. The root
  // keeps its node with backward_invoked=true so a second Backward() on the
  // same tape still fails fast.
  for (const auto& impl : order) {
    std::shared_ptr<AutogradNode> node = std::move(impl->grad_fn);
    impl->grad_fn = nullptr;
    if (impl.get() != impl_.get()) {
      util::ReleaseBuffer(std::move(impl->grad));
      impl->grad = std::vector<float>();
    }
    node->inputs.clear();
    node->backward = nullptr;
    if (impl.get() == impl_.get()) {
      impl->grad_fn = std::move(node);
    } else if (node.use_count() == 1) {
      RecycleAutogradNode(std::move(node));
    }
  }
}

const std::vector<float>& Tensor::grad() const {
  TPGNN_CHECK(impl_->requires_grad);
  impl_->EnsureGrad();
  return impl_->grad;
}

std::vector<float>& Tensor::MutableGrad() {
  TPGNN_CHECK(impl_->requires_grad);
  impl_->EnsureGrad();
  return impl_->grad;
}

namespace {

// Pooled copy of an existing buffer (Detach/Clone/GradTensor).
std::vector<float> CopyToPooled(const std::vector<float>& src) {
  std::vector<float> out = util::AcquireBuffer(src.size());
  std::copy(src.begin(), src.end(), out.begin());
  return out;
}

}  // namespace

Tensor Tensor::GradTensor() const {
  return FromVector(shape(), CopyToPooled(grad()), /*requires_grad=*/false);
}

void Tensor::ZeroGrad() {
  impl_->grad.assign(impl_->data.size(), 0.0f);
}

Tensor Tensor::Detach() const {
  return FromVector(shape(), CopyToPooled(impl_->data),
                    /*requires_grad=*/false);
}

Tensor Tensor::Clone() const {
  Tensor copy =
      FromVector(shape(), CopyToPooled(impl_->data), /*requires_grad=*/false);
  copy.impl_->requires_grad = impl_->requires_grad;
  return copy;
}

std::string Tensor::ToString() const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape()) << " {";
  const int64_t limit = std::min<int64_t>(numel(), 16);
  for (int64_t i = 0; i < limit; ++i) {
    if (i > 0) os << ", ";
    os << impl_->data[static_cast<size_t>(i)];
  }
  if (numel() > limit) os << ", ...";
  os << "}";
  return os.str();
}

ConstRowSpan RowSpanOf(const Tensor& m, int64_t row) {
  TPGNN_CHECK_EQ(m.dim(), 2) << "RowSpanOf requires a matrix";
  TPGNN_CHECK_GE(row, 0);
  TPGNN_CHECK_LT(row, m.size(0));
  const int64_t cols = m.size(1);
  return ConstRowSpan{m.data().data() + row * cols, cols};
}

RowSpan MutableRowSpan(Tensor& m, int64_t row) {
  TPGNN_CHECK_EQ(m.dim(), 2) << "MutableRowSpan requires a matrix";
  TPGNN_CHECK_GE(row, 0);
  TPGNN_CHECK_LT(row, m.size(0));
  TPGNN_CHECK(m.impl()->grad_fn == nullptr && !m.requires_grad())
      << "MutableRowSpan would corrupt a recorded tensor's saved activations";
  const int64_t cols = m.size(1);
  return RowSpan{m.MutableData().data() + row * cols, cols};
}

}  // namespace tpgnn::tensor
