#ifndef TPGNN_TENSOR_GEMM_H_
#define TPGNN_TENSOR_GEMM_H_

#include <cstdint>

// Row-major GEMM-accumulate kernels shared by the differentiable ops
// (MatMul/Affine/Affine2, forward and backward) and by the zero-copy
// inference paths (nn::GruCell::StepInto, core propagation). Keeping one set
// of kernels guarantees the training and inference forward passes produce
// bit-identical values.

namespace tpgnn::tensor::internal {

// C += A x B (C [n, m], A [n, k], B [k, m]).
void GemmAccumulate(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m);

// C += A x B^T (C [n, k], A [n, m], B [k, m]); the dA backward GEMM.
void GemmAccumulateNT(const float* a, const float* b, float* c, int64_t n,
                      int64_t k, int64_t m);

// C += A^T x B (C [k, m], A [n, k], B [n, m]); the dB backward GEMM.
void GemmAccumulateTN(const float* a, const float* b, float* c, int64_t n,
                      int64_t k, int64_t m);

}  // namespace tpgnn::tensor::internal

#endif  // TPGNN_TENSOR_GEMM_H_
