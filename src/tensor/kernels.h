#ifndef TPGNN_TENSOR_KERNELS_H_
#define TPGNN_TENSOR_KERNELS_H_

#include <cstdint>

// Runtime-dispatched compute kernels (DESIGN.md §4.6). Every numeric loop
// the per-edge plans, the GEMM wrappers, and the zero-copy inference paths
// execute lives behind one function-pointer table, selected once per process
// from CPUID with a TPGNN_SIMD=scalar|avx2|auto override. The scalar table is
// the reference semantics; ISA tables must honour the parity policy below.
//
// Parity policy (tested by tests/tensor/kernels_test.cc):
//  * Bitwise class — GEMM, copies, adds, blends, rotations, and every
//    time-encoding kernel: each ISA implementation must produce bit-identical
//    results to the scalar table for all shapes. This is achievable because
//    these kernels only vectorize across independent output elements with the
//    same per-element association and no FMA contraction; reductions that
//    cannot keep the scalar summation order (gemm_accumulate_nt's inner dot
//    products) stay scalar on every ISA.
//  * ulp class (the named tolerance mode, "kernel-ulp") — the saturating
//    transcendental maps tanh_inplace / tanh_add / sigmoid_bias /
//    gru_candidate: ISA implementations may evaluate tanh/sigmoid with a
//    vector exp polynomial instead of libm, and must stay within
//    kTranscendentalUlpBound ULPs of the scalar kernel per element. Only
//    inference paths run these through the active table; the recorded
//    (autograd) ops in tensor/ops.cc keep libm so training numerics and
//    checkpoints are ISA-independent.

namespace tpgnn::tensor {

// Maximum ULP distance allowed between the scalar and any ISA implementation
// of the ulp-class kernels above (the "kernel-ulp" tolerance mode).
inline constexpr int kTranscendentalUlpBound = 8;

struct Kernels {
  // --- GEMM (bitwise) ------------------------------------------------------
  // C += A x B (C [n, m], A [n, k], B [k, m]).
  void (*gemm_accumulate)(const float* a, const float* b, float* c, int64_t n,
                          int64_t k, int64_t m);
  // C += A x B^T (C [n, k], A [n, m], B [k, m]); inner loops are dot-product
  // reductions, so every ISA keeps the scalar summation order.
  void (*gemm_accumulate_nt)(const float* a, const float* b, float* c,
                             int64_t n, int64_t k, int64_t m);
  // C += A^T x B (C [k, m], A [n, k], B [n, m]).
  void (*gemm_accumulate_tn)(const float* a, const float* b, float* c,
                             int64_t n, int64_t k, int64_t m);

  // --- Linear elementwise (bitwise) ----------------------------------------
  void (*copy)(float* dst, const float* src, int64_t n);
  void (*zero)(float* dst, int64_t n);
  // dst[i] = src[i] + dst[i] (the SUM fold's association order).
  void (*add_accumulate)(float* dst, const float* src, int64_t n);
  void (*scale_inplace)(float* v, float s, int64_t n);
  // out[j] = z[j] * h[j] + (1 - z[j]) * n[j]; out may alias h.
  void (*gru_blend)(float* out, const float* z, const float* h,
                    const float* nn, int64_t n);
  // out[j] = a[j] * c[j] - b[j] * s[j], computed as (a*c) - (b*s) with one
  // rounding per product: the invariant-basis phasor rotation.
  void (*rotate_pairs)(float* out, const float* a, const float* b,
                       const float* c, const float* s, int64_t n);

  // --- Transcendental maps (ulp class) -------------------------------------
  void (*tanh_inplace)(float* v, int64_t n);
  // dst[i] = tanh(src[i] + dst[i]) — the fused stabilized-SUM step.
  void (*tanh_add)(float* dst, const float* src, int64_t n);
  // v[j] = sigmoid(v[j] + bias[j]) — the fused GRU gate epilogue.
  void (*sigmoid_bias)(float* v, const float* bias, int64_t n);
  // out[j] = tanh(r[j] * hu[j] + (xn[j] + bias[j])) — the GRU candidate,
  // associating exactly like Tanh(MulAdd(r, h·Un, Affine(x, Wn, bn))).
  void (*gru_candidate)(float* out, const float* r, const float* hu,
                        const float* xn, const float* bias, int64_t n);

  // --- Time encoding (bitwise; sin/cos stay libm on every ISA) -------------
  // out[0] = w0*t + phi0; out[1 + j] = sin(w[j]*t + phi[j]), dim-1 wide.
  void (*time2vec)(float* out, float t, const float* w0, const float* phi0,
                   const float* w, const float* phi, int64_t dim);
  // sin_out[j] = sin(w[j]*t + phi[j]), cos_out[j] = cos(w[j]*t + phi[j]).
  void (*phasor)(float* sin_out, float* cos_out, float t, const float* w,
                 const float* phi, int64_t n);
  // cos_out[j] = cos(w[j]*delta), sin_out[j] = sin(w[j]*delta).
  void (*rotation)(float* cos_out, float* sin_out, float delta,
                   const float* w, int64_t n);

  const char* name;  // "scalar", "avx2", "neon".
};

enum class SimdMode {
  kScalar,
  kAvx2,
  kNeon,
  kAuto,  // Highest ISA this build + CPU supports; resolves to one of the
          // concrete modes above.
};

// The reference table; always available.
const Kernels& ScalarKernels();

// The table for the mode selected at startup: TPGNN_SIMD when set (the
// process aborts on an explicit request for an ISA this build or CPU cannot
// run — a forced-ISA CI leg must not silently test scalar), else kAuto.
const Kernels& ActiveKernels();

// The concrete mode ActiveKernels() resolved to (never kAuto).
SimdMode ActiveSimdMode();

// Test/bench override; resolves kAuto and returns the concrete mode now
// active. Aborts on an unsupported concrete mode, like the env override.
SimdMode SetSimdMode(SimdMode mode);

// True when the named concrete mode can execute on this build + CPU.
bool SimdModeSupported(SimdMode mode);

const char* SimdModeName(SimdMode mode);
// Parses "scalar" / "avx2" / "neon" / "auto"; returns false on junk.
bool ParseSimdMode(const char* name, SimdMode* mode);

// RAII mode pin for tests and benches.
class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(SimdMode mode)
      : previous_(ActiveSimdMode()) {
    SetSimdMode(mode);
  }
  ~ScopedSimdMode() { SetSimdMode(previous_); }
  ScopedSimdMode(const ScopedSimdMode&) = delete;
  ScopedSimdMode& operator=(const ScopedSimdMode&) = delete;

 private:
  SimdMode previous_;
};

namespace internal {
// Defined by kernels_avx2.cc / kernels_neon.cc. When the translation unit was
// built without the ISA (non-x86 target, compiler without -mavx2), the
// corresponding *Supported() returns false and the table getter aborts.
bool Avx2Supported();
const Kernels& Avx2Kernels();
bool NeonSupported();
const Kernels& NeonKernels();
}  // namespace internal

}  // namespace tpgnn::tensor

#endif  // TPGNN_TENSOR_KERNELS_H_
