#ifndef TPGNN_TENSOR_EXECUTOR_H_
#define TPGNN_TENSOR_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/plan.h"

// Executes compiled per-edge programs (tensor/plan.h) against a preallocated
// arena. One executor is embedded per propagation scratch (offline fold,
// serving session); after the first run its arena is warm and a run performs
// zero heap allocation and zero virtual dispatch — a switch over opcodes
// calling the SIMD kernel table resolved once per run.

namespace tpgnn::tensor::plan {

// Per-run operand bindings. Field meanings per program are documented on
// CompiledPlans.
struct RunContext {
  const float* src = nullptr;
  float* dst = nullptr;
  float* m = nullptr;
  const float* aux = nullptr;
  float t = 0.0f;
};

class PlanExecutor {
 public:
  PlanExecutor() = default;
  ~PlanExecutor();
  // Arena bytes are tracked in the process-wide live/peak accounting below,
  // so executors move (the arena travels with its bytes) but never copy.
  PlanExecutor(PlanExecutor&&) noexcept = default;
  PlanExecutor& operator=(PlanExecutor&&) noexcept = default;
  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  // Runs `program` with the given parameter table (kNumParamSlots entries)
  // and bindings. Grows the arena on first use of a larger program; never
  // shrinks, so steady-state runs are allocation-free.
  void Run(const CompiledProgram& program, ParamTable params,
           const RunContext& ctx);

  // Debug mode: fill the whole arena with signaling garbage (NaN) before
  // every run, so any op reading an arena slot it did not define first — a
  // liveness-planning bug — corrupts the output instead of silently reusing
  // a stale value. Used by plan_test; off by default.
  void set_poison(bool poison) { poison_ = poison; }

  // Introspection: how many times Run had to (re)grow the arena.
  uint64_t arena_grows() const { return arena_grows_; }
  size_t arena_size() const { return arena_.size(); }

 private:
  std::vector<float> arena_;
  uint64_t arena_grows_ = 0;
  bool poison_ = false;
};

// Process-wide arena accounting (relaxed atomics): the summed bytes of every
// live executor arena, and its high-water mark. One session's arena is a
// constant of the plan config, so live bytes track the resident-session
// count — exactly the quantity the soak harness asserts stays bounded once
// eviction reaches steady state (DESIGN.md §4.9).
uint64_t ArenaBytesLive();
uint64_t ArenaBytesPeak();

}  // namespace tpgnn::tensor::plan

#endif  // TPGNN_TENSOR_EXECUTOR_H_
