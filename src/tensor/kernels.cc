#include "tensor/kernels.h"

#include <atomic>
#include <cmath>
#include <cstring>

#include "util/env.h"
#include "util/logging.h"

namespace tpgnn::tensor {
namespace {

// --- Scalar GEMM kernels (moved verbatim from the old tensor/gemm.cc) ------

// C += A x B. ikj order with a 4-wide k tile: four B rows stream against one
// resident C row, so C is loaded/stored once per four multiply-adds instead
// of once per one as in the naive ikj loop, and the four independent products
// give the vectorizer ILP to chew on. All-zero tiles (one-hot / padded rows)
// are skipped like the scalar kernel skipped zero elements.
void GemmAccumulateScalar(const float* __restrict__ a,
                          const float* __restrict__ b, float* __restrict__ c,
                          int64_t n, int64_t k, int64_t m) {
  constexpr int64_t kTile = 4;
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    float* __restrict__ crow = c + i * m;
    int64_t kk = 0;
    for (; kk + kTile <= k; kk += kTile) {
      const float a0 = arow[kk];
      const float a1 = arow[kk + 1];
      const float a2 = arow[kk + 2];
      const float a3 = arow[kk + 3];
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const float* b0 = b + kk * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      for (int64_t j = 0; j < m; ++j) {
        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
    }
    for (; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * m;
      for (int64_t j = 0; j < m; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

// C += A x B^T: rows of C are dot products of contiguous rows, computed four
// at a time so each A row is read once per four outputs. The inner loops are
// sequential reductions; their summation order is the reference order every
// ISA table must reproduce (see kernels.h), so this kernel stays scalar
// everywhere.
void GemmAccumulateNTScalar(const float* __restrict__ a,
                            const float* __restrict__ b, float* __restrict__ c,
                            int64_t n, int64_t k, int64_t m) {
  constexpr int64_t kTile = 4;
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * m;
    float* __restrict__ crow = c + i * k;
    int64_t kk = 0;
    for (; kk + kTile <= k; kk += kTile) {
      const float* b0 = b + kk * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      float acc0 = 0.0f;
      float acc1 = 0.0f;
      float acc2 = 0.0f;
      float acc3 = 0.0f;
      for (int64_t j = 0; j < m; ++j) {
        const float av = arow[j];
        acc0 += av * b0[j];
        acc1 += av * b1[j];
        acc2 += av * b2[j];
        acc3 += av * b3[j];
      }
      crow[kk] += acc0;
      crow[kk + 1] += acc1;
      crow[kk + 2] += acc2;
      crow[kk + 3] += acc3;
    }
    for (; kk < k; ++kk) {
      const float* brow = b + kk * m;
      float acc = 0.0f;
      for (int64_t j = 0; j < m; ++j) {
        acc += arow[j] * brow[j];
      }
      crow[kk] += acc;
    }
  }
}

// C += A^T x B: four A rows are folded into the resident C row per pass.
void GemmAccumulateTNScalar(const float* __restrict__ a,
                            const float* __restrict__ b, float* __restrict__ c,
                            int64_t n, int64_t k, int64_t m) {
  constexpr int64_t kTile = 4;
  for (int64_t kk = 0; kk < k; ++kk) {
    float* __restrict__ crow = c + kk * m;
    int64_t i = 0;
    for (; i + kTile <= n; i += kTile) {
      const float a0 = a[i * k + kk];
      const float a1 = a[(i + 1) * k + kk];
      const float a2 = a[(i + 2) * k + kk];
      const float a3 = a[(i + 3) * k + kk];
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const float* b0 = b + i * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      for (int64_t j = 0; j < m; ++j) {
        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
    }
    for (; i < n; ++i) {
      const float av = a[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = b + i * m;
      for (int64_t j = 0; j < m; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

// --- Scalar elementwise kernels --------------------------------------------

void CopyScalar(float* dst, const float* src, int64_t n) {
  if (n > 0) std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

void ZeroScalar(float* dst, int64_t n) {
  if (n > 0) std::memset(dst, 0, static_cast<size_t>(n) * sizeof(float));
}

void AddAccumulateScalar(float* dst, const float* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] = src[i] + dst[i];
  }
}

void ScaleInplaceScalar(float* v, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    v[i] = v[i] * s;
  }
}

void GruBlendScalar(float* out, const float* z, const float* h,
                    const float* nn, int64_t n) {
  for (int64_t j = 0; j < n; ++j) {
    out[j] = z[j] * h[j] + (1.0f - z[j]) * nn[j];
  }
}

void RotatePairsScalar(float* out, const float* a, const float* b,
                       const float* c, const float* s, int64_t n) {
  for (int64_t j = 0; j < n; ++j) {
    const float ac = a[j] * c[j];
    const float bs = b[j] * s[j];
    out[j] = ac - bs;
  }
}

void TanhInplaceScalar(float* v, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    v[i] = std::tanh(v[i]);
  }
}

void TanhAddScalar(float* dst, const float* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] = std::tanh(src[i] + dst[i]);
  }
}

void SigmoidBiasScalar(float* v, const float* bias, int64_t n) {
  for (int64_t j = 0; j < n; ++j) {
    v[j] = 1.0f / (1.0f + std::exp(-(v[j] + bias[j])));
  }
}

void GruCandidateScalar(float* out, const float* r, const float* hu,
                        const float* xn, const float* bias, int64_t n) {
  for (int64_t j = 0; j < n; ++j) {
    const float xb = xn[j] + bias[j];
    out[j] = std::tanh(r[j] * hu[j] + xb);
  }
}

void Time2VecScalar(float* out, float t, const float* w0, const float* phi0,
                    const float* w, const float* phi, int64_t dim) {
  out[0] = w0[0] * t + phi0[0];
  for (int64_t j = 0; j < dim - 1; ++j) {
    out[j + 1] = std::sin(w[j] * t + phi[j]);
  }
}

void PhasorScalar(float* sin_out, float* cos_out, float t, const float* w,
                  const float* phi, int64_t n) {
  // Two-step rounding (w*t, then +phi) mirrors the recorded
  // Sin(Add(Scale(w, t), phi)) chain, keeping the two paths bit-identical.
  for (int64_t j = 0; j < n; ++j) {
    const float theta = w[j] * t + phi[j];
    sin_out[j] = std::sin(theta);
    cos_out[j] = std::cos(theta);
  }
}

void RotationScalar(float* cos_out, float* sin_out, float delta,
                    const float* w, int64_t n) {
  for (int64_t j = 0; j < n; ++j) {
    const float theta = w[j] * delta;
    cos_out[j] = std::cos(theta);
    sin_out[j] = std::sin(theta);
  }
}

const Kernels kScalarTable = {
    GemmAccumulateScalar,
    GemmAccumulateNTScalar,
    GemmAccumulateTNScalar,
    CopyScalar,
    ZeroScalar,
    AddAccumulateScalar,
    ScaleInplaceScalar,
    GruBlendScalar,
    RotatePairsScalar,
    TanhInplaceScalar,
    TanhAddScalar,
    SigmoidBiasScalar,
    GruCandidateScalar,
    Time2VecScalar,
    PhasorScalar,
    RotationScalar,
    "scalar",
};

// --- Dispatch ---------------------------------------------------------------

struct Dispatch {
  std::atomic<const Kernels*> table{&kScalarTable};
  std::atomic<SimdMode> mode{SimdMode::kScalar};
};

SimdMode ResolveAuto() {
  if (internal::Avx2Supported()) return SimdMode::kAvx2;
  if (internal::NeonSupported()) return SimdMode::kNeon;
  return SimdMode::kScalar;
}

const Kernels* TableFor(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
      return &kScalarTable;
    case SimdMode::kAvx2:
      TPGNN_CHECK(internal::Avx2Supported())
          << "TPGNN_SIMD=avx2 requested but this build/CPU has no AVX2";
      return &internal::Avx2Kernels();
    case SimdMode::kNeon:
      TPGNN_CHECK(internal::NeonSupported())
          << "TPGNN_SIMD=neon requested but this build/CPU has no NEON";
      return &internal::NeonKernels();
    case SimdMode::kAuto:
      return TableFor(ResolveAuto());
  }
  TPGNN_CHECK(false) << "unreachable SimdMode";
  return &kScalarTable;
}

Dispatch& GetDispatch() {
  // The initial mode is read from TPGNN_SIMD exactly once, at first use.
  static Dispatch* d = [] {
    auto* dispatch = new Dispatch();
    SimdMode mode = SimdMode::kAuto;
    const std::string env = GetEnvString("TPGNN_SIMD", "auto");
    TPGNN_CHECK(ParseSimdMode(env.c_str(), &mode))
        << "TPGNN_SIMD must be scalar|avx2|neon|auto, got \"" << env << "\"";
    if (mode == SimdMode::kAuto) mode = ResolveAuto();
    dispatch->table.store(TableFor(mode), std::memory_order_release);
    dispatch->mode.store(mode, std::memory_order_release);
    return dispatch;
  }();
  return *d;
}

}  // namespace

const Kernels& ScalarKernels() { return kScalarTable; }

const Kernels& ActiveKernels() {
  return *GetDispatch().table.load(std::memory_order_acquire);
}

SimdMode ActiveSimdMode() {
  return GetDispatch().mode.load(std::memory_order_acquire);
}

SimdMode SetSimdMode(SimdMode mode) {
  if (mode == SimdMode::kAuto) mode = ResolveAuto();
  Dispatch& d = GetDispatch();
  d.table.store(TableFor(mode), std::memory_order_release);
  d.mode.store(mode, std::memory_order_release);
  return mode;
}

bool SimdModeSupported(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
    case SimdMode::kAuto:
      return true;
    case SimdMode::kAvx2:
      return internal::Avx2Supported();
    case SimdMode::kNeon:
      return internal::NeonSupported();
  }
  return false;
}

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kAvx2:
      return "avx2";
    case SimdMode::kNeon:
      return "neon";
    case SimdMode::kAuto:
      return "auto";
  }
  return "unknown";
}

bool ParseSimdMode(const char* name, SimdMode* mode) {
  const std::string s(name == nullptr ? "" : name);
  if (s == "scalar") {
    *mode = SimdMode::kScalar;
  } else if (s == "avx2") {
    *mode = SimdMode::kAvx2;
  } else if (s == "neon") {
    *mode = SimdMode::kNeon;
  } else if (s == "auto") {
    *mode = SimdMode::kAuto;
  } else {
    return false;
  }
  return true;
}

}  // namespace tpgnn::tensor
