#include "graph/adjacency.h"

#include <cmath>

#include "util/logging.h"

namespace tpgnn::graph {

using tensor::Tensor;

Tensor DenseAdjacency(int64_t num_nodes,
                      const std::vector<TemporalEdge>& edges,
                      const AdjacencyOptions& options) {
  Tensor adj = Tensor::Zeros({num_nodes, num_nodes});
  for (const TemporalEdge& e : edges) {
    adj.MutableAt({e.src, e.dst}) = 1.0f;
    if (options.symmetric) {
      adj.MutableAt({e.dst, e.src}) = 1.0f;
    }
  }
  if (options.add_self_loops) {
    for (int64_t i = 0; i < num_nodes; ++i) {
      adj.MutableAt({i, i}) = 1.0f;
    }
  }
  return adj;
}

namespace {

std::vector<float> Degrees(const Tensor& adjacency) {
  TPGNN_CHECK_EQ(adjacency.dim(), 2);
  TPGNN_CHECK_EQ(adjacency.size(0), adjacency.size(1));
  const int64_t n = adjacency.size(0);
  std::vector<float> deg(static_cast<size_t>(n), 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      deg[static_cast<size_t>(i)] += adjacency.at({i, j});
    }
  }
  return deg;
}

}  // namespace

Tensor SymmetricNormalize(const Tensor& adjacency) {
  const int64_t n = adjacency.size(0);
  std::vector<float> deg = Degrees(adjacency);
  Tensor out = Tensor::Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) {
    const float di = deg[static_cast<size_t>(i)];
    if (di <= 0.0f) continue;
    for (int64_t j = 0; j < n; ++j) {
      const float dj = deg[static_cast<size_t>(j)];
      if (dj <= 0.0f) continue;
      out.MutableAt({i, j}) =
          adjacency.at({i, j}) / (std::sqrt(di) * std::sqrt(dj));
    }
  }
  return out;
}

Tensor RowNormalize(const Tensor& adjacency) {
  const int64_t n = adjacency.size(0);
  std::vector<float> deg = Degrees(adjacency);
  Tensor out = Tensor::Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) {
    const float di = deg[static_cast<size_t>(i)];
    if (di <= 0.0f) continue;
    for (int64_t j = 0; j < n; ++j) {
      out.MutableAt({i, j}) = adjacency.at({i, j}) / di;
    }
  }
  return out;
}

Tensor Laplacian(const Tensor& adjacency) {
  const int64_t n = adjacency.size(0);
  std::vector<float> deg = Degrees(adjacency);
  Tensor out = Tensor::Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out.MutableAt({i, j}) = -adjacency.at({i, j});
    }
    out.MutableAt({i, i}) = deg[static_cast<size_t>(i)] - adjacency.at({i, i});
  }
  return out;
}

Tensor NormalizedLaplacian(const Tensor& adjacency) {
  const int64_t n = adjacency.size(0);
  Tensor norm = SymmetricNormalize(adjacency);
  Tensor out = Tensor::Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out.MutableAt({i, j}) = (i == j ? 1.0f : 0.0f) - norm.at({i, j});
    }
  }
  return out;
}

}  // namespace tpgnn::graph
