#include "graph/neighbor_index.h"

#include <algorithm>

#include "util/logging.h"

namespace tpgnn::graph {

TemporalNeighborIndex::TemporalNeighborIndex(const TemporalGraph& graph,
                                             bool undirected) {
  by_node_.assign(static_cast<size_t>(graph.num_nodes()), {});
  for (const TemporalEdge& e : graph.edges()) {
    by_node_[static_cast<size_t>(e.dst)].push_back({e.src, e.time});
    if (undirected) {
      by_node_[static_cast<size_t>(e.src)].push_back({e.dst, e.time});
    }
  }
  for (auto& list : by_node_) {
    std::stable_sort(list.begin(), list.end(),
                     [](const TemporalNeighbor& a, const TemporalNeighbor& b) {
                       return a.time < b.time;
                     });
  }
}

std::vector<TemporalNeighbor> TemporalNeighborIndex::Recent(int64_t node,
                                                            double t,
                                                            int64_t k) const {
  TPGNN_CHECK_GE(node, 0);
  TPGNN_CHECK_LT(node, static_cast<int64_t>(by_node_.size()));
  TPGNN_CHECK_GE(k, 0);
  const auto& list = by_node_[static_cast<size_t>(node)];
  // First element with time >= t.
  auto end = std::lower_bound(
      list.begin(), list.end(), t,
      [](const TemporalNeighbor& a, double value) { return a.time < value; });
  std::vector<TemporalNeighbor> out;
  out.reserve(static_cast<size_t>(k));
  for (auto it = end; it != list.begin() && static_cast<int64_t>(out.size()) < k;) {
    --it;
    out.push_back(*it);
  }
  return out;
}

std::vector<TemporalNeighbor> TemporalNeighborIndex::AllBefore(
    int64_t node, double t) const {
  TPGNN_CHECK_GE(node, 0);
  TPGNN_CHECK_LT(node, static_cast<int64_t>(by_node_.size()));
  const auto& list = by_node_[static_cast<size_t>(node)];
  auto end = std::lower_bound(
      list.begin(), list.end(), t,
      [](const TemporalNeighbor& a, double value) { return a.time < value; });
  return std::vector<TemporalNeighbor>(list.begin(), end);
}

}  // namespace tpgnn::graph
