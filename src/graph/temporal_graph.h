#ifndef TPGNN_GRAPH_TEMPORAL_GRAPH_H_
#define TPGNN_GRAPH_TEMPORAL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

// Continuous-time dynamic network (CTDN), Definition 1 of the paper:
// G = (V, E^T, X, T). Nodes carry a q-dimensional feature vector; edges are
// directed, timestamped interactions (u, v, t) where the direction denotes
// information flow.

namespace tpgnn::graph {

struct TemporalEdge {
  int64_t src = 0;
  int64_t dst = 0;
  double time = 0.0;

  friend bool operator==(const TemporalEdge&, const TemporalEdge&) = default;
};

class TemporalGraph {
 public:
  TemporalGraph(int64_t num_nodes, int64_t feature_dim);

  // --- Construction -------------------------------------------------------

  // Overwrites the feature vector of `node`; `f.size()` must equal
  // feature_dim().
  void SetNodeFeature(int64_t node, const std::vector<float>& f);

  // Appends a timestamped edge. Endpoints must be valid node ids; time must
  // be non-negative.
  void AddEdge(int64_t src, int64_t dst, double time);

  // --- Accessors ------------------------------------------------------------

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  int64_t feature_dim() const { return feature_dim_; }

  // Edges in insertion order.
  const std::vector<TemporalEdge>& edges() const { return edges_; }
  // Mutable access invalidates the cached max timestamp (callers may rewrite
  // times in place); the next MaxTime() rescans.
  std::vector<TemporalEdge>& mutable_edges() {
    max_time_dirty_ = true;
    return edges_;
  }

  // Edges sorted ascending by timestamp (stable: insertion order breaks
  // ties). This is the order consumed by temporal propagation (Alg. 1).
  std::vector<TemporalEdge> ChronologicalEdges() const;

  // Chronological order, but with ties at equal timestamps randomly permuted
  // (Sec. V-D: the model shuffles same-timestamp edges each epoch).
  std::vector<TemporalEdge> ChronologicalEdgesShuffled(Rng& rng) const;

  const std::vector<float>& node_feature(int64_t node) const;

  // Dense [num_nodes, feature_dim] feature matrix (no gradient).
  tensor::Tensor FeatureMatrix() const;

  // Largest timestamp; 0 for edgeless graphs. O(1) on the append-only path
  // (AddEdge maintains the running max — serving calls this per event);
  // rescans once after mutable_edges().
  double MaxTime() const;

 private:
  int64_t num_nodes_;
  int64_t feature_dim_;
  std::vector<std::vector<float>> features_;
  std::vector<TemporalEdge> edges_;
  mutable double max_time_ = 0.0;
  mutable bool max_time_dirty_ = false;
};

// A graph with its binary classification label (1 = positive/normal,
// 0 = negative/anomalous), Definition 3.
struct LabeledGraph {
  TemporalGraph graph;
  int label = 1;
};

using GraphDataset = std::vector<LabeledGraph>;

}  // namespace tpgnn::graph

#endif  // TPGNN_GRAPH_TEMPORAL_GRAPH_H_
