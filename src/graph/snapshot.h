#ifndef TPGNN_GRAPH_SNAPSHOT_H_
#define TPGNN_GRAPH_SNAPSHOT_H_

#include <vector>

#include "graph/temporal_graph.h"

// Discretiser for snapshot-based (discrete) DGNN baselines: crops a CTDN
// into a fixed number of static snapshots by equal-width time windows
// (Sec. V-D of the paper). Edge order inside a window is lost by design —
// this is exactly the information loss the paper attributes to discrete
// DGNNs.

namespace tpgnn::graph {

struct Snapshot {
  // Edges whose timestamps fall in this window (window mode) or in all
  // windows up to and including this one (cumulative mode).
  std::vector<TemporalEdge> edges;
  double window_start = 0.0;
  double window_end = 0.0;
};

enum class SnapshotMode {
  kWindow,      // Each snapshot holds only its own window's edges.
  kCumulative,  // Each snapshot holds all edges up to its window end.
};

// Splits [0, MaxTime] into `num_snapshots` equal windows. Always returns
// exactly `num_snapshots` snapshots (possibly with empty edge lists).
std::vector<Snapshot> MakeSnapshots(const TemporalGraph& graph,
                                    int64_t num_snapshots,
                                    SnapshotMode mode = SnapshotMode::kWindow);

}  // namespace tpgnn::graph

#endif  // TPGNN_GRAPH_SNAPSHOT_H_
