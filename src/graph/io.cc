#include "graph/io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace tpgnn::graph {

namespace {

constexpr char kGraphMagic[] = "tpgnn-graph";
constexpr char kDatasetMagic[] = "tpgnn-dataset";
constexpr int kVersion = 1;

}  // namespace

Status WriteGraph(std::ostream& os, const TemporalGraph& graph) {
  os << kGraphMagic << " " << kVersion << "\n";
  os << graph.num_nodes() << " " << graph.feature_dim() << " "
     << graph.num_edges() << "\n";
  os.precision(17);
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    os << "F";
    for (float f : graph.node_feature(v)) {
      os << " " << f;
    }
    os << "\n";
  }
  for (const TemporalEdge& e : graph.edges()) {
    os << "E " << e.src << " " << e.dst << " " << e.time << "\n";
  }
  if (!os) {
    return Status::Internal("write failed");
  }
  return Status::Ok();
}

Status ReadGraph(std::istream& is, TemporalGraph* out) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kGraphMagic) {
    return Status::InvalidArgument("not a tpgnn-graph stream");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported graph version " +
                                   std::to_string(version));
  }
  int64_t num_nodes = 0;
  int64_t feature_dim = 0;
  int64_t num_edges = 0;
  if (!(is >> num_nodes >> feature_dim >> num_edges) || num_nodes < 0 ||
      feature_dim <= 0 || num_edges < 0) {
    return Status::InvalidArgument("malformed graph header");
  }
  TemporalGraph graph(num_nodes, feature_dim);
  for (int64_t v = 0; v < num_nodes; ++v) {
    std::string tag;
    if (!(is >> tag) || tag != "F") {
      return Status::InvalidArgument("expected feature line");
    }
    std::vector<float> f(static_cast<size_t>(feature_dim));
    for (float& value : f) {
      if (!(is >> value)) {
        return Status::InvalidArgument("malformed feature line");
      }
    }
    graph.SetNodeFeature(v, f);
  }
  for (int64_t e = 0; e < num_edges; ++e) {
    std::string tag;
    int64_t src = 0;
    int64_t dst = 0;
    double time = 0.0;
    if (!(is >> tag >> src >> dst >> time) || tag != "E") {
      return Status::InvalidArgument("malformed edge line");
    }
    if (src < 0 || src >= num_nodes || dst < 0 || dst >= num_nodes ||
        time < 0.0) {
      return Status::InvalidArgument("edge out of range");
    }
    graph.AddEdge(src, dst, time);
  }
  *out = std::move(graph);
  return Status::Ok();
}

Status SaveDataset(const std::string& path, const GraphDataset& dataset) {
  std::ofstream os(path);
  if (!os) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  os << kDatasetMagic << " " << kVersion << "\n";
  os << dataset.size() << "\n";
  for (const LabeledGraph& sample : dataset) {
    os << "G " << sample.label << "\n";
    Status status = WriteGraph(os, sample.graph);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

Status LoadDataset(const std::string& path, GraphDataset* out) {
  std::ifstream is(path);
  if (!is) {
    return Status::NotFound("cannot open: " + path);
  }
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kDatasetMagic) {
    return Status::InvalidArgument("not a tpgnn-dataset file: " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported dataset version");
  }
  size_t count = 0;
  if (!(is >> count)) {
    return Status::InvalidArgument("malformed dataset header");
  }
  GraphDataset dataset;
  dataset.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string tag;
    int label = 0;
    if (!(is >> tag >> label) || tag != "G" || (label != 0 && label != 1)) {
      return Status::InvalidArgument("malformed sample header");
    }
    TemporalGraph graph(1, 1);
    Status status = ReadGraph(is, &graph);
    if (!status.ok()) {
      return status;
    }
    dataset.push_back({std::move(graph), label});
  }
  *out = std::move(dataset);
  return Status::Ok();
}

}  // namespace tpgnn::graph
