#ifndef TPGNN_GRAPH_EIGEN_H_
#define TPGNN_GRAPH_EIGEN_H_

#include <vector>

#include "tensor/tensor.h"

// Cyclic Jacobi eigendecomposition for small dense symmetric matrices
// (session graphs have at most a few hundred nodes). Used by the Spectral
// Clustering baseline on graph Laplacians.

namespace tpgnn::graph {

struct EigenDecomposition {
  // Ascending eigenvalues.
  std::vector<double> eigenvalues;
  // eigenvectors[k] is the unit eigenvector for eigenvalues[k].
  std::vector<std::vector<double>> eigenvectors;
};

// `matrix` must be square and symmetric (within tolerance). Converges to
// off-diagonal Frobenius norm below `tol` or after `max_sweeps` full sweeps.
EigenDecomposition JacobiEigenDecomposition(const tensor::Tensor& matrix,
                                            double tol = 1e-10,
                                            int max_sweeps = 64);

}  // namespace tpgnn::graph

#endif  // TPGNN_GRAPH_EIGEN_H_
