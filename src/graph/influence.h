#ifndef TPGNN_GRAPH_INFLUENCE_H_
#define TPGNN_GRAPH_INFLUENCE_H_

#include <vector>

#include "graph/temporal_graph.h"

// Influential-node closure (Definition 4 of the paper): node u is
// influential to v iff a valid path — a sequence of edges with
// non-decreasing timestamps — leads from u to v. This reference
// implementation processes edges chronologically and propagates ancestor
// sets, mirroring the order used by temporal propagation; it is the oracle
// against which Theorem 1 is property-tested.

namespace tpgnn::graph {

class InfluenceClosure {
 public:
  // Computes the closure using the given edge order (must be sorted by
  // non-decreasing time; ties resolved by list position, matching the order
  // the propagation algorithm would consume).
  InfluenceClosure(int64_t num_nodes,
                   const std::vector<TemporalEdge>& chronological_edges);

  // Convenience: uses graph.ChronologicalEdges().
  explicit InfluenceClosure(const TemporalGraph& graph);

  // True iff u is influential to v (u != v; a node is not considered its own
  // influencer).
  bool Influences(int64_t u, int64_t v) const;

  // All nodes influential to v.
  std::vector<int64_t> InfluencersOf(int64_t v) const;

  int64_t num_nodes() const { return num_nodes_; }

 private:
  void Build(const std::vector<TemporalEdge>& edges);

  int64_t num_nodes_;
  // reach_[v][u] == true iff u is influential to v.
  std::vector<std::vector<bool>> reach_;
};

}  // namespace tpgnn::graph

#endif  // TPGNN_GRAPH_INFLUENCE_H_
