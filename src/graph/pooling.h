#ifndef TPGNN_GRAPH_POOLING_H_
#define TPGNN_GRAPH_POOLING_H_

#include "tensor/ops.h"
#include "tensor/tensor.h"

// Graph-level readouts over a node embedding matrix H of shape [n, d].
// The paper's baselines use Mean pooling (Sec. V-D) to turn node/edge
// representations into graph representations.

namespace tpgnn::graph {

// Column-wise mean -> [d]. Differentiable.
inline tensor::Tensor MeanPool(const tensor::Tensor& node_embeddings) {
  return tensor::MeanAxis(node_embeddings, /*axis=*/0);
}

// Column-wise sum -> [d]. Differentiable.
inline tensor::Tensor SumPool(const tensor::Tensor& node_embeddings) {
  return tensor::SumAxis(node_embeddings, /*axis=*/0);
}

}  // namespace tpgnn::graph

#endif  // TPGNN_GRAPH_POOLING_H_
