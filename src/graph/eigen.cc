#include "graph/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace tpgnn::graph {

EigenDecomposition JacobiEigenDecomposition(const tensor::Tensor& matrix,
                                            double tol, int max_sweeps) {
  TPGNN_CHECK_EQ(matrix.dim(), 2);
  TPGNN_CHECK_EQ(matrix.size(0), matrix.size(1));
  const int64_t n = matrix.size(0);

  // Working copy in double precision; v accumulates rotations.
  std::vector<double> a(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      a[static_cast<size_t>(i * n + j)] =
          0.5 * (static_cast<double>(matrix.at({i, j})) +
                 static_cast<double>(matrix.at({j, i})));
    }
  }
  std::vector<double> v(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i * n + i)] = 1.0;

  auto at = [&](std::vector<double>& m, int64_t i, int64_t j) -> double& {
    return m[static_cast<size_t>(i * n + j)];
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        off += at(a, i, j) * at(a, i, j);
      }
    }
    if (std::sqrt(2.0 * off) < tol) break;

    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = at(a, p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = at(a, p, p);
        const double aqq = at(a, q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (int64_t k = 0; k < n; ++k) {
          const double akp = at(a, k, p);
          const double akq = at(a, k, q);
          at(a, k, p) = c * akp - s * akq;
          at(a, k, q) = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double apk = at(a, p, k);
          const double aqk = at(a, q, k);
          at(a, p, k) = c * apk - s * aqk;
          at(a, q, k) = s * apk + c * aqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = at(v, k, p);
          const double vkq = at(v, k, q);
          at(v, k, p) = c * vkp - s * vkq;
          at(v, k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return at(a, x, x) < at(a, y, y);
  });

  EigenDecomposition result;
  result.eigenvalues.reserve(static_cast<size_t>(n));
  result.eigenvectors.reserve(static_cast<size_t>(n));
  for (int64_t k : order) {
    result.eigenvalues.push_back(at(a, k, k));
    std::vector<double> vec(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      vec[static_cast<size_t>(i)] = at(v, i, k);
    }
    result.eigenvectors.push_back(std::move(vec));
  }
  return result;
}

}  // namespace tpgnn::graph
