#include "graph/stats.h"

#include <cstdio>

namespace tpgnn::graph {

DatasetStats ComputeDatasetStats(const GraphDataset& dataset) {
  DatasetStats s;
  s.graph_count = static_cast<int64_t>(dataset.size());
  if (dataset.empty()) return s;
  int64_t negatives = 0;
  double nodes = 0.0;
  double edges = 0.0;
  for (const LabeledGraph& g : dataset) {
    if (g.label == 0) ++negatives;
    nodes += static_cast<double>(g.graph.num_nodes());
    edges += static_cast<double>(g.graph.num_edges());
  }
  s.negative_ratio =
      static_cast<double>(negatives) / static_cast<double>(dataset.size());
  s.avg_nodes = nodes / static_cast<double>(dataset.size());
  s.avg_edges = edges / static_cast<double>(dataset.size());
  s.feature_dim = dataset.front().graph.feature_dim();
  return s;
}

std::string FormatStatsRow(const std::string& name, const DatasetStats& s) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%-12s | %7lld | %5.1f%% | %6.1f | %6.1f | %lld", name.c_str(),
                static_cast<long long>(s.graph_count),
                100.0 * s.negative_ratio, s.avg_nodes, s.avg_edges,
                static_cast<long long>(s.feature_dim));
  return std::string(buffer);
}

}  // namespace tpgnn::graph
