#ifndef TPGNN_GRAPH_NEIGHBOR_INDEX_H_
#define TPGNN_GRAPH_NEIGHBOR_INDEX_H_

#include <vector>

#include "graph/temporal_graph.h"

// Temporal neighborhood queries for the continuous DGNN baselines
// (TGAT/TGN/GraphMixer): "the k most recent interactions of node v strictly
// before time t".

namespace tpgnn::graph {

struct TemporalNeighbor {
  int64_t node = 0;  // The other endpoint.
  double time = 0.0;
};

class TemporalNeighborIndex {
 public:
  // `undirected` treats every edge as an interaction visible from both
  // endpoints (the convention of TGAT/TGN); otherwise only in-edges (sources
  // of information flow) are indexed for the destination node.
  explicit TemporalNeighborIndex(const TemporalGraph& graph,
                                 bool undirected = true);

  // Up to `k` most recent neighbors of `node` with interaction time < t,
  // most recent first.
  std::vector<TemporalNeighbor> Recent(int64_t node, double t,
                                       int64_t k) const;

  // All neighbors of `node` before time t, chronological order.
  std::vector<TemporalNeighbor> AllBefore(int64_t node, double t) const;

 private:
  // Per node, interactions sorted ascending by time.
  std::vector<std::vector<TemporalNeighbor>> by_node_;
};

}  // namespace tpgnn::graph

#endif  // TPGNN_GRAPH_NEIGHBOR_INDEX_H_
