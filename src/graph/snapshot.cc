#include "graph/snapshot.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tpgnn::graph {

std::vector<Snapshot> MakeSnapshots(const TemporalGraph& graph,
                                    int64_t num_snapshots, SnapshotMode mode) {
  TPGNN_CHECK_GT(num_snapshots, 0);
  const double max_time = graph.MaxTime();
  // Guard against all-zero timestamps: use a unit horizon so every edge
  // lands in the first window.
  const double horizon = max_time > 0.0 ? max_time : 1.0;
  const double width = horizon / static_cast<double>(num_snapshots);

  std::vector<Snapshot> snapshots(static_cast<size_t>(num_snapshots));
  for (int64_t s = 0; s < num_snapshots; ++s) {
    snapshots[static_cast<size_t>(s)].window_start =
        width * static_cast<double>(s);
    snapshots[static_cast<size_t>(s)].window_end =
        width * static_cast<double>(s + 1);
  }

  for (const TemporalEdge& e : graph.ChronologicalEdges()) {
    int64_t slot = static_cast<int64_t>(std::floor(e.time / width));
    slot = std::clamp<int64_t>(slot, 0, num_snapshots - 1);
    if (mode == SnapshotMode::kWindow) {
      snapshots[static_cast<size_t>(slot)].edges.push_back(e);
    } else {
      for (int64_t s = slot; s < num_snapshots; ++s) {
        snapshots[static_cast<size_t>(s)].edges.push_back(e);
      }
    }
  }
  return snapshots;
}

}  // namespace tpgnn::graph
