#include "graph/influence.h"

#include "util/logging.h"

namespace tpgnn::graph {

InfluenceClosure::InfluenceClosure(
    int64_t num_nodes, const std::vector<TemporalEdge>& chronological_edges)
    : num_nodes_(num_nodes) {
  for (size_t i = 1; i < chronological_edges.size(); ++i) {
    TPGNN_CHECK_LE(chronological_edges[i - 1].time,
                   chronological_edges[i].time)
        << "edges must be sorted by non-decreasing time";
  }
  Build(chronological_edges);
}

InfluenceClosure::InfluenceClosure(const TemporalGraph& graph)
    : num_nodes_(graph.num_nodes()) {
  Build(graph.ChronologicalEdges());
}

void InfluenceClosure::Build(const std::vector<TemporalEdge>& edges) {
  reach_.assign(static_cast<size_t>(num_nodes_),
                std::vector<bool>(static_cast<size_t>(num_nodes_), false));
  // Processing edges in chronological order, the ancestor set of the target
  // absorbs the source and the source's ancestors: exactly the information
  // flow realized by temporal propagation.
  for (const TemporalEdge& e : edges) {
    auto& dst = reach_[static_cast<size_t>(e.dst)];
    const auto& src = reach_[static_cast<size_t>(e.src)];
    dst[static_cast<size_t>(e.src)] = true;
    for (int64_t u = 0; u < num_nodes_; ++u) {
      if (src[static_cast<size_t>(u)]) {
        dst[static_cast<size_t>(u)] = true;
      }
    }
  }
}

bool InfluenceClosure::Influences(int64_t u, int64_t v) const {
  TPGNN_CHECK_GE(u, 0);
  TPGNN_CHECK_LT(u, num_nodes_);
  TPGNN_CHECK_GE(v, 0);
  TPGNN_CHECK_LT(v, num_nodes_);
  return reach_[static_cast<size_t>(v)][static_cast<size_t>(u)];
}

std::vector<int64_t> InfluenceClosure::InfluencersOf(int64_t v) const {
  TPGNN_CHECK_GE(v, 0);
  TPGNN_CHECK_LT(v, num_nodes_);
  std::vector<int64_t> out;
  for (int64_t u = 0; u < num_nodes_; ++u) {
    if (reach_[static_cast<size_t>(v)][static_cast<size_t>(u)]) {
      out.push_back(u);
    }
  }
  return out;
}

}  // namespace tpgnn::graph
