#ifndef TPGNN_GRAPH_ADJACENCY_H_
#define TPGNN_GRAPH_ADJACENCY_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "tensor/tensor.h"

// Dense adjacency-matrix builders for the static and snapshot-based
// baselines. All returned tensors are constants (no gradient).

namespace tpgnn::graph {

struct AdjacencyOptions {
  bool symmetric = true;       // Add both directions.
  bool add_self_loops = true;  // A + I.
};

// Dense binary adjacency over the given edges (timestamps ignored; repeated
// edges collapse to 1).
tensor::Tensor DenseAdjacency(int64_t num_nodes,
                              const std::vector<TemporalEdge>& edges,
                              const AdjacencyOptions& options = {});

// GCN propagation matrix D^{-1/2} A D^{-1/2} computed from a dense
// non-negative adjacency (rows/cols with zero degree stay zero).
tensor::Tensor SymmetricNormalize(const tensor::Tensor& adjacency);

// Row-stochastic D^{-1} A (mean aggregation, GraphSage-style).
tensor::Tensor RowNormalize(const tensor::Tensor& adjacency);

// Unnormalized graph Laplacian L = D - A of a symmetric adjacency.
tensor::Tensor Laplacian(const tensor::Tensor& adjacency);

// Symmetric normalized Laplacian I - D^{-1/2} A D^{-1/2}.
tensor::Tensor NormalizedLaplacian(const tensor::Tensor& adjacency);

}  // namespace tpgnn::graph

#endif  // TPGNN_GRAPH_ADJACENCY_H_
