#ifndef TPGNN_GRAPH_IO_H_
#define TPGNN_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/temporal_graph.h"
#include "util/status.h"

// Plain-text serialization of CTDNs and labeled datasets, so generated
// corpora can be inspected, versioned, and exchanged with other tools.
//
// Format (whitespace separated):
//   tpgnn-graph 1
//   <num_nodes> <feature_dim> <num_edges>
//   F <f_0> ... <f_{q-1}>          (one line per node, in node order)
//   E <src> <dst> <time>           (one line per edge, insertion order)
//
// A dataset file is:
//   tpgnn-dataset 1
//   <graph_count>
//   G <label>
//   <graph as above> ...

namespace tpgnn::graph {

Status WriteGraph(std::ostream& os, const TemporalGraph& graph);
Status ReadGraph(std::istream& is, TemporalGraph* out);

Status SaveDataset(const std::string& path, const GraphDataset& dataset);
Status LoadDataset(const std::string& path, GraphDataset* out);

}  // namespace tpgnn::graph

#endif  // TPGNN_GRAPH_IO_H_
