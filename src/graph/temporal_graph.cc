#include "graph/temporal_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace tpgnn::graph {

TemporalGraph::TemporalGraph(int64_t num_nodes, int64_t feature_dim)
    : num_nodes_(num_nodes), feature_dim_(feature_dim) {
  TPGNN_CHECK_GE(num_nodes, 0);
  TPGNN_CHECK_GT(feature_dim, 0);
  features_.assign(static_cast<size_t>(num_nodes),
                   std::vector<float>(static_cast<size_t>(feature_dim), 0.0f));
}

void TemporalGraph::SetNodeFeature(int64_t node, const std::vector<float>& f) {
  TPGNN_CHECK_GE(node, 0);
  TPGNN_CHECK_LT(node, num_nodes_);
  TPGNN_CHECK_EQ(static_cast<int64_t>(f.size()), feature_dim_);
  features_[static_cast<size_t>(node)] = f;
}

void TemporalGraph::AddEdge(int64_t src, int64_t dst, double time) {
  TPGNN_CHECK_GE(src, 0);
  TPGNN_CHECK_LT(src, num_nodes_);
  TPGNN_CHECK_GE(dst, 0);
  TPGNN_CHECK_LT(dst, num_nodes_);
  TPGNN_CHECK_GE(time, 0.0);
  edges_.push_back({src, dst, time});
  if (!max_time_dirty_ && time > max_time_) {
    max_time_ = time;
  }
}

std::vector<TemporalEdge> TemporalGraph::ChronologicalEdges() const {
  std::vector<TemporalEdge> sorted = edges_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.time < b.time;
                   });
  return sorted;
}

std::vector<TemporalEdge> TemporalGraph::ChronologicalEdgesShuffled(
    Rng& rng) const {
  std::vector<TemporalEdge> sorted = ChronologicalEdges();
  // Permute runs of equal timestamps.
  size_t start = 0;
  while (start < sorted.size()) {
    size_t end = start + 1;
    while (end < sorted.size() && sorted[end].time == sorted[start].time) {
      ++end;
    }
    if (end - start > 1) {
      for (size_t i = end - start; i > 1; --i) {
        size_t j = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(i) - 1));
        std::swap(sorted[start + i - 1], sorted[start + j]);
      }
    }
    start = end;
  }
  return sorted;
}

const std::vector<float>& TemporalGraph::node_feature(int64_t node) const {
  TPGNN_CHECK_GE(node, 0);
  TPGNN_CHECK_LT(node, num_nodes_);
  return features_[static_cast<size_t>(node)];
}

tensor::Tensor TemporalGraph::FeatureMatrix() const {
  std::vector<float> data;
  data.reserve(static_cast<size_t>(num_nodes_ * feature_dim_));
  for (const auto& f : features_) {
    data.insert(data.end(), f.begin(), f.end());
  }
  return tensor::Tensor::FromVector({num_nodes_, feature_dim_},
                                    std::move(data));
}

double TemporalGraph::MaxTime() const {
  if (max_time_dirty_) {
    max_time_ = 0.0;
    for (const TemporalEdge& e : edges_) {
      max_time_ = std::max(max_time_, e.time);
    }
    max_time_dirty_ = false;
  }
  return max_time_;
}

}  // namespace tpgnn::graph
