#ifndef TPGNN_GRAPH_STATS_H_
#define TPGNN_GRAPH_STATS_H_

#include <string>

#include "graph/temporal_graph.h"

// Dataset-level statistics (Table I of the paper).

namespace tpgnn::graph {

struct DatasetStats {
  int64_t graph_count = 0;
  double negative_ratio = 0.0;
  double avg_nodes = 0.0;
  double avg_edges = 0.0;
  int64_t feature_dim = 0;
};

DatasetStats ComputeDatasetStats(const GraphDataset& dataset);

// One Table-I style row, e.g.
// "Forum-java | 400 | 32.5% | 27.0 | 30.1 | 3".
std::string FormatStatsRow(const std::string& name, const DatasetStats& s);

}  // namespace tpgnn::graph

#endif  // TPGNN_GRAPH_STATS_H_
