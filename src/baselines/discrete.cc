#include "baselines/discrete.h"

#include "graph/adjacency.h"
#include "graph/pooling.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::baselines {

using tensor::Concat;
using tensor::MatMul;
using tensor::Relu;
using tensor::Reshape;
using tensor::Softmax;
using tensor::Tensor;
using tensor::Transpose;

SnapshotSequenceClassifier::SnapshotSequenceClassifier(
    const DiscreteOptions& options, uint64_t seed)
    : options_(options), init_rng_(seed) {
  TPGNN_CHECK_GT(options_.num_snapshots, 0);
  gcn_ = std::make_unique<nn::Linear>(options_.feature_dim,
                                      options_.hidden_dim, init_rng_);
  RegisterChild("gcn", gcn_.get());
  head_ = std::make_unique<nn::Linear>(options_.hidden_dim, 1, init_rng_);
  RegisterChild("head", head_.get());
}

Tensor SnapshotSequenceClassifier::EncodeSnapshot(
    const graph::TemporalGraph& graph, const graph::Snapshot& snapshot) {
  Tensor adj = graph::SymmetricNormalize(graph::DenseAdjacency(
      graph.num_nodes(), snapshot.edges, graph::AdjacencyOptions{}));
  Tensor z = Relu(gcn_->Forward(MatMul(adj, graph.FeatureMatrix())));
  return Reshape(graph::MeanPool(z), {1, options_.hidden_dim});
}

Tensor SnapshotSequenceClassifier::ForwardLogit(
    const graph::TemporalGraph& graph, bool /*training*/, Rng& /*rng*/) {
  std::vector<graph::Snapshot> snapshots =
      graph::MakeSnapshots(graph, options_.num_snapshots);
  std::vector<Tensor> embeddings;
  embeddings.reserve(snapshots.size());
  for (const graph::Snapshot& snapshot : snapshots) {
    embeddings.push_back(EncodeSnapshot(graph, snapshot));
  }
  Tensor g = SequenceEmbedding(embeddings);
  Tensor logit = head_->Forward(g);
  return Reshape(logit, {1});
}

std::vector<Tensor> SnapshotSequenceClassifier::TrainableParameters() {
  return Parameters();
}

EvolveGcn::EvolveGcn(const DiscreteOptions& options, uint64_t seed)
    : SnapshotSequenceClassifier(options, seed) {
  evolve_ = std::make_unique<nn::GruCell>(options.hidden_dim,
                                          options.hidden_dim, init_rng());
  RegisterChild("evolve", evolve_.get());
}

Tensor EvolveGcn::SequenceEmbedding(
    const std::vector<Tensor>& snapshot_embeddings) {
  // The GRU hidden state plays the role of the evolving GCN weight
  // (diagonal simplification of EvolveGCN-H): each snapshot embedding is
  // modulated by the current state before driving the next evolution step.
  Tensor state = Tensor::Zeros({1, options().hidden_dim});
  for (const Tensor& s : snapshot_embeddings) {
    Tensor modulated = tensor::Mul(s, tensor::Tanh(state));
    state = evolve_->Forward(tensor::Add(s, modulated), state);
  }
  return state;
}

GcLstm::GcLstm(const DiscreteOptions& options, uint64_t seed)
    : SnapshotSequenceClassifier(options, seed) {
  lstm_ = std::make_unique<nn::LstmCell>(options.hidden_dim,
                                         options.hidden_dim, init_rng());
  RegisterChild("lstm", lstm_.get());
}

Tensor GcLstm::SequenceEmbedding(
    const std::vector<Tensor>& snapshot_embeddings) {
  nn::LstmCell::State state = lstm_->InitialState(1);
  for (const Tensor& s : snapshot_embeddings) {
    state = lstm_->Forward(s, state);
  }
  return state.h;
}

AddGraph::AddGraph(const DiscreteOptions& options, uint64_t seed)
    : SnapshotSequenceClassifier(options, seed) {
  gru_ = std::make_unique<nn::GruCell>(options.hidden_dim, options.hidden_dim,
                                       init_rng());
  RegisterChild("gru", gru_.get());
  attention_query_ = std::make_unique<nn::Linear>(options.hidden_dim, 1,
                                                  init_rng(), /*bias=*/false);
  RegisterChild("attention_query", attention_query_.get());
}

Tensor AddGraph::SequenceEmbedding(
    const std::vector<Tensor>& snapshot_embeddings) {
  Tensor state = Tensor::Zeros({1, options().hidden_dim});
  std::vector<Tensor> history;
  history.reserve(snapshot_embeddings.size());
  for (const Tensor& s : snapshot_embeddings) {
    state = gru_->Forward(s, state);
    history.push_back(state);
  }
  // Attention over the hidden-state history.
  Tensor stacked = Concat(history, /*axis=*/0);        // [T, d]
  Tensor scores = attention_query_->Forward(stacked);  // [T, 1]
  Tensor alpha = Softmax(Transpose(scores));           // [1, T]
  return MatMul(alpha, stacked);                       // [1, d]
}

Taddy::Taddy(const DiscreteOptions& options, uint64_t seed)
    : SnapshotSequenceClassifier(options, seed) {
  positions_ = RegisterParameter(
      "positions", Tensor::Randn({options.num_snapshots, options.hidden_dim},
                                 0.1f, init_rng()));
  encoder_ = std::make_unique<nn::MultiheadAttention>(options.hidden_dim,
                                                      /*num_heads=*/2,
                                                      init_rng());
  RegisterChild("encoder", encoder_.get());
  ffn_ = std::make_unique<nn::Linear>(options.hidden_dim, options.hidden_dim,
                                      init_rng());
  RegisterChild("ffn", ffn_.get());
}

Tensor Taddy::SequenceEmbedding(
    const std::vector<Tensor>& snapshot_embeddings) {
  TPGNN_CHECK_EQ(static_cast<int64_t>(snapshot_embeddings.size()),
                 options().num_snapshots);
  Tensor tokens =
      tensor::Add(Concat(snapshot_embeddings, /*axis=*/0), positions_);
  Tensor encoded = encoder_->Forward(tokens, tokens, tokens);
  Tensor transformed = Relu(ffn_->Forward(tensor::Add(encoded, tokens)));
  return Reshape(graph::MeanPool(transformed), {1, options().hidden_dim});
}

}  // namespace tpgnn::baselines
