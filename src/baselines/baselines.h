#ifndef TPGNN_BASELINES_BASELINES_H_
#define TPGNN_BASELINES_BASELINES_H_

#include <string>
#include <utility>
#include <vector>

#include "baselines/continuous.h"  // IWYU pragma: export
#include "baselines/discrete.h"    // IWYU pragma: export
#include "baselines/spectral.h"    // IWYU pragma: export
#include "baselines/static_gnn.h"  // IWYU pragma: export
#include "eval/experiment.h"

// Umbrella header and factory registry for the twelve baselines of Table II.

namespace tpgnn::baselines {

struct BaselineSuiteOptions {
  int64_t feature_dim = 3;
  int64_t hidden_dim = 32;
  int64_t time_dim = 6;
  // Snapshot count for the discrete DGNNs: the paper uses 5 for the log
  // datasets and 20 for the trajectory datasets (Sec. V-D).
  int64_t num_snapshots = 5;
};

// All twelve baselines in the paper's Table II row order: four static, four
// discrete, four continuous.
std::vector<std::pair<std::string, eval::ClassifierFactory>>
AllBaselineFactories(const BaselineSuiteOptions& options);

// The four continuous baselines with the Global Temporal Embedding Extractor
// readout (Table III "+G" rows). `global_hidden_dim` is the extractor's GRU
// hidden size (32 in the paper).
std::vector<std::pair<std::string, eval::ClassifierFactory>>
ContinuousPlusGlobalFactories(const BaselineSuiteOptions& options,
                              int64_t global_hidden_dim);

}  // namespace tpgnn::baselines

#endif  // TPGNN_BASELINES_BASELINES_H_
