#include "baselines/continuous.h"

#include <algorithm>

#include "graph/neighbor_index.h"
#include "graph/pooling.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::baselines {

using graph::TemporalGraph;
using graph::TemporalNeighbor;
using graph::TemporalNeighborIndex;
using tensor::Add;
using tensor::Concat;
using tensor::MatMul;
using tensor::Relu;
using tensor::Reshape;
using tensor::Row;
using tensor::Scale;
using tensor::Stack;
using tensor::Tanh;
using tensor::Tensor;

Tgat::Tgat(const ContinuousOptions& options, uint64_t seed,
           int64_t global_hidden_dim)
    : options_(options), init_rng_(seed) {
  model_dim_ = options_.hidden_dim + options_.time_dim;
  TPGNN_CHECK_EQ(model_dim_ % options_.num_heads, 0)
      << "hidden + time dim must be divisible by the head count";
  embed_ = std::make_unique<nn::Linear>(options_.feature_dim,
                                        options_.hidden_dim, init_rng_);
  RegisterChild("embed", embed_.get());
  time_ =
      std::make_unique<nn::BochnerTimeEncoding>(options_.time_dim, init_rng_);
  RegisterChild("time", time_.get());
  for (int64_t l = 0; l < options_.num_layers; ++l) {
    attention_.push_back(std::make_unique<nn::MultiheadAttention>(
        model_dim_, options_.num_heads, init_rng_));
    combine_.push_back(std::make_unique<nn::Linear>(
        model_dim_ + options_.hidden_dim, options_.hidden_dim, init_rng_));
    const std::string suffix = std::to_string(l);
    RegisterChild("attention" + suffix, attention_.back().get());
    RegisterChild("combine" + suffix, combine_.back().get());
  }
  InitReadout(global_hidden_dim, init_rng_);
}

Tensor Tgat::NodeEmbeddings(const TemporalGraph& graph, bool /*training*/,
                            Rng& /*rng*/) {
  const int64_t n = graph.num_nodes();
  const double t_end = graph.MaxTime() + 1.0;
  TemporalNeighborIndex index(graph, /*undirected=*/true);

  std::vector<Tensor> h(static_cast<size_t>(n));
  Tensor x = embed_->Forward(graph.FeatureMatrix());
  for (int64_t v = 0; v < n; ++v) {
    h[static_cast<size_t>(v)] = Reshape(Row(x, v), {1, options_.hidden_dim});
  }

  Tensor phi_zero = Reshape(time_->Forward(0.0f), {1, options_.time_dim});
  for (size_t layer = 0; layer < attention_.size(); ++layer) {
    std::vector<Tensor> next(static_cast<size_t>(n));
    for (int64_t v = 0; v < n; ++v) {
      const size_t vs = static_cast<size_t>(v);
      std::vector<TemporalNeighbor> neighbors =
          index.Recent(v, t_end, options_.num_neighbors);
      Tensor attended;
      if (neighbors.empty()) {
        attended = Tensor::Zeros({1, model_dim_});
      } else {
        Tensor query = Concat({h[vs], phi_zero}, /*axis=*/1);
        std::vector<Tensor> keys;
        keys.reserve(neighbors.size());
        for (const TemporalNeighbor& nb : neighbors) {
          Tensor phi = Reshape(
              time_->Forward(static_cast<float>(t_end - nb.time)),
              {1, options_.time_dim});
          keys.push_back(
              Concat({h[static_cast<size_t>(nb.node)], phi}, /*axis=*/1));
        }
        Tensor kv = Concat(keys, /*axis=*/0);
        attended = attention_[layer]->Forward(query, kv, kv);
      }
      next[vs] = Relu(
          combine_[layer]->Forward(Concat({attended, h[vs]}, /*axis=*/1)));
    }
    h = std::move(next);
  }
  return Concat(h, /*axis=*/0);
}

Tgn::Tgn(const ContinuousOptions& options, uint64_t seed,
         int64_t global_hidden_dim)
    : options_(options), init_rng_(seed) {
  embed_ = std::make_unique<nn::Linear>(options_.feature_dim,
                                        options_.hidden_dim, init_rng_);
  RegisterChild("embed", embed_.get());
  time_ = std::make_unique<nn::Time2Vec>(options_.time_dim, init_rng_);
  RegisterChild("time", time_.get());
  memory_updater_ = std::make_unique<nn::GruCell>(
      options_.hidden_dim + options_.time_dim, options_.hidden_dim,
      init_rng_);
  RegisterChild("memory_updater", memory_updater_.get());
  InitReadout(global_hidden_dim, init_rng_);
}

Tensor Tgn::NodeEmbeddings(const TemporalGraph& graph, bool /*training*/,
                           Rng& /*rng*/) {
  const int64_t n = graph.num_nodes();
  Tensor x = embed_->Forward(graph.FeatureMatrix());
  std::vector<Tensor> memory(static_cast<size_t>(n));
  std::vector<double> last_update(static_cast<size_t>(n), 0.0);
  for (int64_t v = 0; v < n; ++v) {
    memory[static_cast<size_t>(v)] =
        Reshape(Row(x, v), {1, options_.hidden_dim});
  }
  for (const graph::TemporalEdge& e : graph.ChronologicalEdges()) {
    const size_t u = static_cast<size_t>(e.src);
    const size_t v = static_cast<size_t>(e.dst);
    // Interaction semantics: both memories are refreshed from the other
    // endpoint's (pre-update) state.
    Tensor m_u = memory[u];
    Tensor m_v = memory[v];
    Tensor phi_v = Reshape(
        time_->Forward(static_cast<float>(e.time - last_update[v])),
        {1, options_.time_dim});
    memory[v] =
        memory_updater_->Forward(Concat({m_u, phi_v}, /*axis=*/1), m_v);
    Tensor phi_u = Reshape(
        time_->Forward(static_cast<float>(e.time - last_update[u])),
        {1, options_.time_dim});
    memory[u] =
        memory_updater_->Forward(Concat({m_v, phi_u}, /*axis=*/1), m_u);
    last_update[u] = e.time;
    last_update[v] = e.time;
  }
  return Concat(memory, /*axis=*/0);
}

DyGnn::DyGnn(const ContinuousOptions& options, uint64_t seed,
             int64_t global_hidden_dim)
    : options_(options), init_rng_(seed) {
  embed_ = std::make_unique<nn::Linear>(options_.feature_dim,
                                        options_.hidden_dim, init_rng_);
  RegisterChild("embed", embed_.get());
  interact_src_ = std::make_unique<nn::Linear>(
      options_.hidden_dim, options_.hidden_dim, init_rng_, /*bias=*/false);
  RegisterChild("interact_src", interact_src_.get());
  interact_dst_ = std::make_unique<nn::Linear>(options_.hidden_dim,
                                               options_.hidden_dim, init_rng_);
  RegisterChild("interact_dst", interact_dst_.get());
  update_src_ = std::make_unique<nn::LstmCell>(options_.hidden_dim,
                                               options_.hidden_dim, init_rng_);
  RegisterChild("update_src", update_src_.get());
  update_dst_ = std::make_unique<nn::LstmCell>(options_.hidden_dim,
                                               options_.hidden_dim, init_rng_);
  RegisterChild("update_dst", update_dst_.get());
  propagate_ = std::make_unique<nn::Linear>(options_.hidden_dim,
                                            options_.hidden_dim, init_rng_);
  RegisterChild("propagate", propagate_.get());
  InitReadout(global_hidden_dim, init_rng_);
}

Tensor DyGnn::NodeEmbeddings(const TemporalGraph& graph, bool /*training*/,
                             Rng& /*rng*/) {
  const int64_t n = graph.num_nodes();
  Tensor x = embed_->Forward(graph.FeatureMatrix());
  std::vector<nn::LstmCell::State> state(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    state[static_cast<size_t>(v)] = {
        Reshape(Row(x, v), {1, options_.hidden_dim}),
        Tensor::Zeros({1, options_.hidden_dim})};
  }
  TemporalNeighborIndex index(graph, /*undirected=*/true);
  for (const graph::TemporalEdge& e : graph.ChronologicalEdges()) {
    const size_t u = static_cast<size_t>(e.src);
    const size_t v = static_cast<size_t>(e.dst);
    // Interact unit: the interaction message.
    Tensor message = Tanh(Add(interact_src_->Forward(state[u].h),
                              interact_dst_->Forward(state[v].h)));
    // Update components for both endpoints.
    state[u] = update_src_->Forward(message, state[u]);
    state[v] = update_dst_->Forward(message, state[v]);
    // Propagation component: recent neighbors receive a damped share.
    Tensor shared = Scale(Tanh(propagate_->Forward(message)), 0.2f);
    for (const TemporalNeighbor& nb :
         index.Recent(e.dst, e.time, /*k=*/3)) {
      const size_t w = static_cast<size_t>(nb.node);
      if (w == u || w == v) continue;
      state[w].h = Add(state[w].h, shared);
    }
  }
  std::vector<Tensor> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    rows.push_back(state[static_cast<size_t>(v)].h);
  }
  return Concat(rows, /*axis=*/0);
}

GraphMixer::GraphMixer(const ContinuousOptions& options, uint64_t seed,
                       int64_t global_hidden_dim)
    : options_(options), init_rng_(seed) {
  embed_ = std::make_unique<nn::Linear>(options_.feature_dim,
                                        options_.hidden_dim, init_rng_);
  RegisterChild("embed", embed_.get());
  time_ = std::make_unique<nn::Time2Vec>(options_.time_dim, init_rng_);
  RegisterChild("time", time_.get());
  token_mlp_ = std::make_unique<nn::Linear>(
      options_.hidden_dim + options_.time_dim, options_.hidden_dim,
      init_rng_);
  RegisterChild("token_mlp", token_mlp_.get());
  node_mlp_ = std::make_unique<nn::Linear>(2 * options_.hidden_dim,
                                           options_.hidden_dim, init_rng_);
  RegisterChild("node_mlp", node_mlp_.get());
  InitReadout(global_hidden_dim, init_rng_);
}

Tensor GraphMixer::NodeEmbeddings(const TemporalGraph& graph,
                                  bool /*training*/, Rng& /*rng*/) {
  const int64_t n = graph.num_nodes();
  const double t_end = graph.MaxTime() + 1.0;
  Tensor x = embed_->Forward(graph.FeatureMatrix());
  TemporalNeighborIndex index(graph, /*undirected=*/true);
  std::vector<Tensor> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    Tensor self = Reshape(Row(x, v), {1, options_.hidden_dim});
    std::vector<TemporalNeighbor> neighbors =
        index.Recent(v, t_end, options_.num_neighbors);
    Tensor mixed;
    if (neighbors.empty()) {
      mixed = Tensor::Zeros({1, options_.hidden_dim});
    } else {
      std::vector<Tensor> tokens;
      tokens.reserve(neighbors.size());
      for (const TemporalNeighbor& nb : neighbors) {
        Tensor phi =
            Reshape(time_->Forward(static_cast<float>(t_end - nb.time)),
                    {1, options_.time_dim});
        Tensor token = Concat(
            {Reshape(Row(x, nb.node), {1, options_.hidden_dim}), phi},
            /*axis=*/1);
        tokens.push_back(Relu(token_mlp_->Forward(token)));
      }
      // Mean over the token dimension (the Mixer's token mixing collapses
      // to mean pooling in this 1-block simplification).
      mixed = Reshape(graph::MeanPool(Concat(tokens, /*axis=*/0)),
                      {1, options_.hidden_dim});
    }
    rows.push_back(Relu(node_mlp_->Forward(Concat({self, mixed}, 1))));
  }
  return Concat(rows, /*axis=*/0);
}

}  // namespace tpgnn::baselines
