#include "baselines/baseline.h"

#include "graph/pooling.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::baselines {

using tensor::Reshape;
using tensor::Tensor;

void PooledNodeClassifier::InitReadout(int64_t global_hidden_dim, Rng& rng) {
  TPGNN_CHECK(head_ == nullptr) << "InitReadout called twice";
  int64_t head_in = embedding_dim();
  if (global_hidden_dim > 0) {
    extractor_ = std::make_unique<core::GlobalTemporalExtractor>(
        embedding_dim(), global_hidden_dim, rng);
    RegisterChild("global_extractor", extractor_.get());
    head_in = global_hidden_dim;
  }
  head_ = std::make_unique<nn::Linear>(head_in, 1, rng);
  RegisterChild("head", head_.get());
}

Tensor PooledNodeClassifier::ForwardLogit(const graph::TemporalGraph& graph,
                                          bool training, Rng& rng) {
  TPGNN_CHECK(head_ != nullptr) << "subclass must call InitReadout";
  Tensor h = NodeEmbeddings(graph, training, rng);
  Tensor pooled = extractor_ != nullptr
                      ? extractor_->Forward(h, graph.ChronologicalEdges())
                      : graph::MeanPool(h);
  Tensor logit = head_->Forward(Reshape(pooled, {1, pooled.numel()}));
  return Reshape(logit, {1});
}

std::vector<Tensor> PooledNodeClassifier::TrainableParameters() {
  return Parameters();
}

std::string PooledNodeClassifier::name() const {
  return extractor_ != nullptr ? base_name() + "+G" : base_name();
}

}  // namespace tpgnn::baselines
