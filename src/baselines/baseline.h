#ifndef TPGNN_BASELINES_BASELINE_H_
#define TPGNN_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/global_extractor.h"
#include "eval/classifier.h"
#include "graph/temporal_graph.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Shared scaffold for the baseline models of Sec. V-B. Each baseline
// produces per-node embeddings; the base class turns them into a graph
// logit using Mean graph pooling (the paper's adaptation of node-level
// baselines to graph classification, Sec. V-D) or — for the "+G" variants of
// Table III — the paper's Global Temporal Embedding Extractor.

namespace tpgnn::baselines {

class PooledNodeClassifier : public nn::Module, public eval::GraphClassifier {
 public:
  ~PooledNodeClassifier() override = default;

  tensor::Tensor ForwardLogit(const graph::TemporalGraph& graph, bool training,
                              Rng& rng) override;
  std::vector<tensor::Tensor> TrainableParameters() override;
  std::string name() const override;

 protected:
  PooledNodeClassifier() = default;

  // Node embedding matrix [n, embedding_dim()].
  virtual tensor::Tensor NodeEmbeddings(const graph::TemporalGraph& graph,
                                        bool training, Rng& rng) = 0;
  virtual int64_t embedding_dim() const = 0;
  virtual std::string base_name() const = 0;

  // Must be called at the end of the subclass constructor (it needs
  // embedding_dim()). `global_hidden_dim > 0` enables the "+G" readout with
  // that GRU hidden size; otherwise Mean pooling is used.
  void InitReadout(int64_t global_hidden_dim, Rng& rng);

 private:
  std::unique_ptr<core::GlobalTemporalExtractor> extractor_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace tpgnn::baselines

#endif  // TPGNN_BASELINES_BASELINE_H_
