#ifndef TPGNN_BASELINES_CONTINUOUS_H_
#define TPGNN_BASELINES_CONTINUOUS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "nn/attention.h"
#include "nn/gru_cell.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"
#include "nn/time_encoding.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Continuous DGNN baselines (Sec. V-B). Each consumes the raw timestamped
// edge stream (no snapshotting) and produces node embeddings pooled by the
// shared PooledNodeClassifier readout (Mean, or the +G global extractor for
// Table III).
//
// Simplifications vs. the original systems are intentional and documented in
// DESIGN.md; each model keeps the mechanism the paper credits for its rank:
// TGAT's h-hop temporal attention over recent neighbors, TGN's bidirectional
// memory updates, DyGNN's LSTM update+propagate components (the costliest,
// as in Fig. 6), and GraphMixer's MLP over the most recent 1-hop neighbors.

namespace tpgnn::baselines {

struct ContinuousOptions {
  int64_t feature_dim = 3;
  int64_t hidden_dim = 32;
  int64_t time_dim = 6;
  int64_t num_neighbors = 10;  // Recent-k neighbor budget.
  int64_t num_layers = 2;      // TGAT layers (paper setting).
  int64_t num_heads = 2;       // TGAT attention heads (paper setting).
};

// TGAT (Xu et al. 2020): temporal graph attention with Bochner functional
// time encoding over the k most recent neighbors.
class Tgat : public PooledNodeClassifier {
 public:
  Tgat(const ContinuousOptions& options, uint64_t seed,
       int64_t global_hidden_dim = 0);

 protected:
  tensor::Tensor NodeEmbeddings(const graph::TemporalGraph& graph,
                                bool training, Rng& rng) override;
  int64_t embedding_dim() const override { return options_.hidden_dim; }
  std::string base_name() const override { return "TGAT"; }

 private:
  ContinuousOptions options_;
  Rng init_rng_;
  int64_t model_dim_;  // hidden + time.
  std::unique_ptr<nn::Linear> embed_;
  std::unique_ptr<nn::BochnerTimeEncoding> time_;
  std::vector<std::unique_ptr<nn::MultiheadAttention>> attention_;
  std::vector<std::unique_ptr<nn::Linear>> combine_;
};

// TGN (Rossi et al. 2020): per-node memory updated by a GRU message
// function on every interaction; both endpoints are refreshed (interaction
// semantics, not information-flow semantics — the contrast the paper draws
// with TP-GNN-GRU).
class Tgn : public PooledNodeClassifier {
 public:
  Tgn(const ContinuousOptions& options, uint64_t seed,
      int64_t global_hidden_dim = 0);

 protected:
  tensor::Tensor NodeEmbeddings(const graph::TemporalGraph& graph,
                                bool training, Rng& rng) override;
  int64_t embedding_dim() const override { return options_.hidden_dim; }
  std::string base_name() const override { return "TGN"; }

 private:
  ContinuousOptions options_;
  Rng init_rng_;
  std::unique_ptr<nn::Linear> embed_;
  std::unique_ptr<nn::Time2Vec> time_;
  std::unique_ptr<nn::GruCell> memory_updater_;
};

// DyGNN (Ma et al. 2020): LSTM-based update component for both endpoints of
// each interaction plus a propagation component pushing the interaction
// message to recent neighbors.
class DyGnn : public PooledNodeClassifier {
 public:
  DyGnn(const ContinuousOptions& options, uint64_t seed,
        int64_t global_hidden_dim = 0);

 protected:
  tensor::Tensor NodeEmbeddings(const graph::TemporalGraph& graph,
                                bool training, Rng& rng) override;
  int64_t embedding_dim() const override { return options_.hidden_dim; }
  std::string base_name() const override { return "DyGNN"; }

 private:
  ContinuousOptions options_;
  Rng init_rng_;
  std::unique_ptr<nn::Linear> embed_;
  std::unique_ptr<nn::Linear> interact_src_;
  std::unique_ptr<nn::Linear> interact_dst_;
  std::unique_ptr<nn::LstmCell> update_src_;
  std::unique_ptr<nn::LstmCell> update_dst_;
  std::unique_ptr<nn::Linear> propagate_;
};

// GraphMixer (Cong et al. 2023): MLP link/node encoders over the most
// recent 1-hop interactions; no attention, no memory.
class GraphMixer : public PooledNodeClassifier {
 public:
  GraphMixer(const ContinuousOptions& options, uint64_t seed,
             int64_t global_hidden_dim = 0);

 protected:
  tensor::Tensor NodeEmbeddings(const graph::TemporalGraph& graph,
                                bool training, Rng& rng) override;
  int64_t embedding_dim() const override { return options_.hidden_dim; }
  std::string base_name() const override { return "GraphMixer"; }

 private:
  ContinuousOptions options_;
  Rng init_rng_;
  std::unique_ptr<nn::Linear> embed_;
  std::unique_ptr<nn::Time2Vec> time_;
  std::unique_ptr<nn::Linear> token_mlp_;
  std::unique_ptr<nn::Linear> node_mlp_;
};

}  // namespace tpgnn::baselines

#endif  // TPGNN_BASELINES_CONTINUOUS_H_
