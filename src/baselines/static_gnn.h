#ifndef TPGNN_BASELINES_STATIC_GNN_H_
#define TPGNN_BASELINES_STATIC_GNN_H_

#include <memory>
#include <string>

#include "baselines/baseline.h"
#include "nn/linear.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Static GNN baselines (Sec. V-B): GCN, GraphSage (MEAN aggregator), GAT.
// Timestamps are ignored; the edge set is treated as a static undirected
// graph with self-loops — exactly the paper's adaptation of static models.

namespace tpgnn::baselines {

struct StaticGnnOptions {
  int64_t feature_dim = 3;
  int64_t hidden_dim = 32;  // Paper sets static hidden size to 32.
  int64_t num_layers = 2;
};

// Kipf & Welling 2017: H' = ReLU(D^{-1/2} A D^{-1/2} H W).
class Gcn : public PooledNodeClassifier {
 public:
  Gcn(const StaticGnnOptions& options, uint64_t seed,
      int64_t global_hidden_dim = 0);

 protected:
  tensor::Tensor NodeEmbeddings(const graph::TemporalGraph& graph,
                                bool training, Rng& rng) override;
  int64_t embedding_dim() const override { return options_.hidden_dim; }
  std::string base_name() const override { return "GCN"; }

 private:
  StaticGnnOptions options_;
  Rng init_rng_;
  std::vector<std::unique_ptr<nn::Linear>> layers_;
};

// Hamilton et al. 2017 with the MEAN aggregator:
// H' = ReLU(W [H ++ mean_neighbors(H)]).
class GraphSage : public PooledNodeClassifier {
 public:
  GraphSage(const StaticGnnOptions& options, uint64_t seed,
            int64_t global_hidden_dim = 0);

 protected:
  tensor::Tensor NodeEmbeddings(const graph::TemporalGraph& graph,
                                bool training, Rng& rng) override;
  int64_t embedding_dim() const override { return options_.hidden_dim; }
  std::string base_name() const override { return "GraphSage"; }

 private:
  StaticGnnOptions options_;
  Rng init_rng_;
  std::vector<std::unique_ptr<nn::Linear>> layers_;
};

// Velickovic et al. 2018: additive attention over neighbors,
// alpha_ij = softmax_j(LeakyReLU(a1^T W h_i + a2^T W h_j)).
class Gat : public PooledNodeClassifier {
 public:
  Gat(const StaticGnnOptions& options, uint64_t seed,
      int64_t global_hidden_dim = 0);

 protected:
  tensor::Tensor NodeEmbeddings(const graph::TemporalGraph& graph,
                                bool training, Rng& rng) override;
  int64_t embedding_dim() const override { return options_.hidden_dim; }
  std::string base_name() const override { return "GAT"; }

 private:
  struct GatLayer {
    std::unique_ptr<nn::Linear> w;   // No bias.
    std::unique_ptr<nn::Linear> a1;  // [hidden] -> [1].
    std::unique_ptr<nn::Linear> a2;
  };

  StaticGnnOptions options_;
  Rng init_rng_;
  std::vector<GatLayer> layers_;
};

}  // namespace tpgnn::baselines

#endif  // TPGNN_BASELINES_STATIC_GNN_H_
