#include "baselines/static_gnn.h"

#include "graph/adjacency.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::baselines {

using graph::AdjacencyOptions;
using graph::DenseAdjacency;
using tensor::Add;
using tensor::Concat;
using tensor::LeakyRelu;
using tensor::MatMul;
using tensor::Mul;
using tensor::Relu;
using tensor::Softmax;
using tensor::Tensor;

Gcn::Gcn(const StaticGnnOptions& options, uint64_t seed,
         int64_t global_hidden_dim)
    : options_(options), init_rng_(seed) {
  int64_t in = options_.feature_dim;
  for (int64_t l = 0; l < options_.num_layers; ++l) {
    layers_.push_back(
        std::make_unique<nn::Linear>(in, options_.hidden_dim, init_rng_));
    RegisterChild("layer" + std::to_string(l), layers_.back().get());
    in = options_.hidden_dim;
  }
  InitReadout(global_hidden_dim, init_rng_);
}

Tensor Gcn::NodeEmbeddings(const graph::TemporalGraph& graph, bool /*training*/,
                           Rng& /*rng*/) {
  Tensor adj = graph::SymmetricNormalize(
      DenseAdjacency(graph.num_nodes(), graph.edges(), AdjacencyOptions{}));
  Tensor h = graph.FeatureMatrix();
  for (size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l]->Forward(MatMul(adj, h));
    if (l + 1 < layers_.size()) {
      h = Relu(h);
    }
  }
  return h;
}

GraphSage::GraphSage(const StaticGnnOptions& options, uint64_t seed,
                     int64_t global_hidden_dim)
    : options_(options), init_rng_(seed) {
  int64_t in = options_.feature_dim;
  for (int64_t l = 0; l < options_.num_layers; ++l) {
    // Input is [self ++ mean-of-neighbors].
    layers_.push_back(
        std::make_unique<nn::Linear>(2 * in, options_.hidden_dim, init_rng_));
    RegisterChild("layer" + std::to_string(l), layers_.back().get());
    in = options_.hidden_dim;
  }
  InitReadout(global_hidden_dim, init_rng_);
}

Tensor GraphSage::NodeEmbeddings(const graph::TemporalGraph& graph,
                                 bool /*training*/, Rng& /*rng*/) {
  Tensor mean_adj = graph::RowNormalize(DenseAdjacency(
      graph.num_nodes(), graph.edges(),
      AdjacencyOptions{.symmetric = true, .add_self_loops = false}));
  Tensor h = graph.FeatureMatrix();
  for (size_t l = 0; l < layers_.size(); ++l) {
    Tensor aggregated = MatMul(mean_adj, h);
    h = layers_[l]->Forward(Concat({h, aggregated}, /*axis=*/1));
    if (l + 1 < layers_.size()) {
      h = Relu(h);
    }
  }
  return h;
}

Gat::Gat(const StaticGnnOptions& options, uint64_t seed,
         int64_t global_hidden_dim)
    : options_(options), init_rng_(seed) {
  int64_t in = options_.feature_dim;
  for (int64_t l = 0; l < options_.num_layers; ++l) {
    GatLayer layer;
    layer.w = std::make_unique<nn::Linear>(in, options_.hidden_dim, init_rng_,
                                           /*bias=*/false);
    layer.a1 = std::make_unique<nn::Linear>(options_.hidden_dim, 1, init_rng_,
                                            /*bias=*/false);
    layer.a2 = std::make_unique<nn::Linear>(options_.hidden_dim, 1, init_rng_,
                                            /*bias=*/false);
    const std::string suffix = std::to_string(l);
    RegisterChild("w" + suffix, layer.w.get());
    RegisterChild("a1" + suffix, layer.a1.get());
    RegisterChild("a2" + suffix, layer.a2.get());
    layers_.push_back(std::move(layer));
    in = options_.hidden_dim;
  }
  InitReadout(global_hidden_dim, init_rng_);
}

Tensor Gat::NodeEmbeddings(const graph::TemporalGraph& graph, bool /*training*/,
                           Rng& /*rng*/) {
  const int64_t n = graph.num_nodes();
  Tensor mask =
      DenseAdjacency(n, graph.edges(), AdjacencyOptions{});  // With loops.
  Tensor h = graph.FeatureMatrix();
  for (size_t l = 0; l < layers_.size(); ++l) {
    Tensor wh = layers_[l].w->Forward(h);             // [n, d]
    Tensor s1 = layers_[l].a1->Forward(wh);           // [n, 1]
    Tensor s2 = layers_[l].a2->Forward(wh);           // [n, 1]
    // scores[i][j] = s1[i] + s2[j] via broadcasting.
    Tensor scores = LeakyRelu(Add(s1, tensor::Transpose(s2)), 0.2f);
    // Exclude non-neighbors with a large negative penalty.
    Tensor penalty =
        tensor::Scale(tensor::AddScalar(mask, -1.0f), 1e9f);
    Tensor alpha = Softmax(Add(scores, penalty));
    h = MatMul(alpha, wh);
    if (l + 1 < layers_.size()) {
      h = Relu(h);
    }
  }
  return h;
}

}  // namespace tpgnn::baselines
