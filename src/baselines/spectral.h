#ifndef TPGNN_BASELINES_SPECTRAL_H_
#define TPGNN_BASELINES_SPECTRAL_H_

#include <memory>
#include <string>
#include <vector>

#include "eval/classifier.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Spectral Clustering baseline (Ng et al. 2001, Sec. V-B): the graph is
// treated as undirected, node features are ignored, and the graph-level
// representation is the spectrum (smallest eigenvalues) of the normalized
// Laplacian — order-invariant and feature-blind, which is why the paper
// reports it as the weakest baseline. A logistic head on the spectrum is the
// only trainable part.

namespace tpgnn::baselines {

class SpectralClustering : public nn::Module, public eval::GraphClassifier {
 public:
  // `spectrum_dim`: number of leading (smallest) eigenvalues used.
  SpectralClustering(int64_t spectrum_dim, uint64_t seed);

  tensor::Tensor ForwardLogit(const graph::TemporalGraph& graph, bool training,
                              Rng& rng) override;
  std::vector<tensor::Tensor> TrainableParameters() override;
  std::string name() const override { return "Spectral Clustering"; }

  // The (constant) spectral feature vector for a graph; exposed for tests.
  tensor::Tensor SpectralFeatures(const graph::TemporalGraph& graph) const;

 private:
  int64_t spectrum_dim_;
  Rng init_rng_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace tpgnn::baselines

#endif  // TPGNN_BASELINES_SPECTRAL_H_
