#include "baselines/baselines.h"

#include <memory>

namespace tpgnn::baselines {

namespace {

StaticGnnOptions ToStatic(const BaselineSuiteOptions& options) {
  StaticGnnOptions s;
  s.feature_dim = options.feature_dim;
  s.hidden_dim = options.hidden_dim;
  return s;
}

DiscreteOptions ToDiscrete(const BaselineSuiteOptions& options) {
  DiscreteOptions d;
  d.feature_dim = options.feature_dim;
  d.hidden_dim = options.hidden_dim;
  d.num_snapshots = options.num_snapshots;
  return d;
}

ContinuousOptions ToContinuous(const BaselineSuiteOptions& options) {
  ContinuousOptions c;
  c.feature_dim = options.feature_dim;
  c.hidden_dim = options.hidden_dim;
  c.time_dim = options.time_dim;
  return c;
}

}  // namespace

std::vector<std::pair<std::string, eval::ClassifierFactory>>
AllBaselineFactories(const BaselineSuiteOptions& options) {
  const StaticGnnOptions s = ToStatic(options);
  const DiscreteOptions d = ToDiscrete(options);
  const ContinuousOptions c = ToContinuous(options);
  return {
      {"Spectral Clustering",
       [](uint64_t seed) {
         return std::make_unique<SpectralClustering>(/*spectrum_dim=*/8, seed);
       }},
      {"GCN", [s](uint64_t seed) { return std::make_unique<Gcn>(s, seed); }},
      {"GraphSage",
       [s](uint64_t seed) { return std::make_unique<GraphSage>(s, seed); }},
      {"GAT", [s](uint64_t seed) { return std::make_unique<Gat>(s, seed); }},
      {"AddGraph",
       [d](uint64_t seed) { return std::make_unique<AddGraph>(d, seed); }},
      {"TADDY",
       [d](uint64_t seed) { return std::make_unique<Taddy>(d, seed); }},
      {"EvolveGCN",
       [d](uint64_t seed) { return std::make_unique<EvolveGcn>(d, seed); }},
      {"GC-LSTM",
       [d](uint64_t seed) { return std::make_unique<GcLstm>(d, seed); }},
      {"TGN", [c](uint64_t seed) { return std::make_unique<Tgn>(c, seed); }},
      {"DyGNN",
       [c](uint64_t seed) { return std::make_unique<DyGnn>(c, seed); }},
      {"TGAT", [c](uint64_t seed) { return std::make_unique<Tgat>(c, seed); }},
      {"GraphMixer",
       [c](uint64_t seed) { return std::make_unique<GraphMixer>(c, seed); }},
  };
}

std::vector<std::pair<std::string, eval::ClassifierFactory>>
ContinuousPlusGlobalFactories(const BaselineSuiteOptions& options,
                              int64_t global_hidden_dim) {
  const ContinuousOptions c = ToContinuous(options);
  return {
      {"TGAT+G",
       [c, global_hidden_dim](uint64_t seed) {
         return std::make_unique<Tgat>(c, seed, global_hidden_dim);
       }},
      {"DyGNN+G",
       [c, global_hidden_dim](uint64_t seed) {
         return std::make_unique<DyGnn>(c, seed, global_hidden_dim);
       }},
      {"TGN+G",
       [c, global_hidden_dim](uint64_t seed) {
         return std::make_unique<Tgn>(c, seed, global_hidden_dim);
       }},
      {"GraphMixer+G",
       [c, global_hidden_dim](uint64_t seed) {
         return std::make_unique<GraphMixer>(c, seed, global_hidden_dim);
       }},
  };
}

}  // namespace tpgnn::baselines
