#include "baselines/spectral.h"

#include <algorithm>

#include "graph/adjacency.h"
#include "graph/eigen.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::baselines {

using tensor::Reshape;
using tensor::Tensor;

SpectralClustering::SpectralClustering(int64_t spectrum_dim, uint64_t seed)
    : spectrum_dim_(spectrum_dim), init_rng_(seed) {
  TPGNN_CHECK_GT(spectrum_dim, 0);
  head_ = std::make_unique<nn::Linear>(spectrum_dim_, 1, init_rng_);
  RegisterChild("head", head_.get());
}

Tensor SpectralClustering::SpectralFeatures(
    const graph::TemporalGraph& graph) const {
  Tensor adjacency = graph::DenseAdjacency(
      graph.num_nodes(), graph.edges(),
      graph::AdjacencyOptions{.symmetric = true, .add_self_loops = false});
  graph::EigenDecomposition decomposition =
      graph::JacobiEigenDecomposition(graph::NormalizedLaplacian(adjacency));
  std::vector<float> features(static_cast<size_t>(spectrum_dim_), 0.0f);
  const int64_t available =
      std::min<int64_t>(spectrum_dim_,
                        static_cast<int64_t>(decomposition.eigenvalues.size()));
  for (int64_t i = 0; i < available; ++i) {
    features[static_cast<size_t>(i)] =
        static_cast<float>(decomposition.eigenvalues[static_cast<size_t>(i)]);
  }
  return Tensor::FromVector({spectrum_dim_}, std::move(features));
}

Tensor SpectralClustering::ForwardLogit(const graph::TemporalGraph& graph,
                                        bool /*training*/, Rng& /*rng*/) {
  Tensor spectrum;
  {
    tensor::NoGradGuard no_grad;  // The spectrum is a constant feature.
    spectrum = SpectralFeatures(graph);
  }
  Tensor logit = head_->Forward(Reshape(spectrum, {1, spectrum_dim_}));
  return Reshape(logit, {1});
}

std::vector<Tensor> SpectralClustering::TrainableParameters() {
  return Parameters();
}

}  // namespace tpgnn::baselines
