#ifndef TPGNN_BASELINES_DISCRETE_H_
#define TPGNN_BASELINES_DISCRETE_H_

#include <memory>
#include <string>
#include <vector>

#include "eval/classifier.h"
#include "graph/snapshot.h"
#include "nn/attention.h"
#include "nn/gru_cell.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Discrete DGNN baselines (Sec. V-B): the dynamic network is cropped into a
// fixed number of static snapshots (Sec. V-D: 5 for the log datasets, 20 for
// the trajectory datasets); a GCN encodes each snapshot and a sequence model
// digests the snapshot sequence. Edge order *within* a snapshot is lost —
// the information loss the paper attributes to this family.

namespace tpgnn::baselines {

struct DiscreteOptions {
  int64_t feature_dim = 3;
  int64_t hidden_dim = 32;
  int64_t num_snapshots = 5;
};

// Base: snapshot encoder (shared one-layer GCN + mean pooling) + a
// subclass-specific sequence model over the pooled snapshot embeddings.
class SnapshotSequenceClassifier : public nn::Module,
                                   public eval::GraphClassifier {
 public:
  tensor::Tensor ForwardLogit(const graph::TemporalGraph& graph, bool training,
                              Rng& rng) override;
  std::vector<tensor::Tensor> TrainableParameters() override;
  std::string name() const override { return base_name(); }

 protected:
  SnapshotSequenceClassifier(const DiscreteOptions& options, uint64_t seed);

  // Digests the per-snapshot embeddings ([1, hidden] each, chronological)
  // into a graph embedding [1, hidden].
  virtual tensor::Tensor SequenceEmbedding(
      const std::vector<tensor::Tensor>& snapshot_embeddings) = 0;
  virtual std::string base_name() const = 0;

  const DiscreteOptions& options() const { return options_; }
  Rng& init_rng() { return init_rng_; }

 private:
  // Pooled GCN embedding of one snapshot.
  tensor::Tensor EncodeSnapshot(const graph::TemporalGraph& graph,
                                const graph::Snapshot& snapshot);

  DiscreteOptions options_;
  Rng init_rng_;
  std::unique_ptr<nn::Linear> gcn_;
  std::unique_ptr<nn::Linear> head_;
};

// EvolveGCN-H (Pareja et al. 2020), simplified: a GRU evolves a diagonal
// reweighting of the GCN output across snapshots.
class EvolveGcn : public SnapshotSequenceClassifier {
 public:
  EvolveGcn(const DiscreteOptions& options, uint64_t seed);

 protected:
  tensor::Tensor SequenceEmbedding(
      const std::vector<tensor::Tensor>& snapshot_embeddings) override;
  std::string base_name() const override { return "EvolveGCN"; }

 private:
  std::unique_ptr<nn::GruCell> evolve_;
};

// GC-LSTM (Chen et al. 2022): LSTM over snapshot embeddings.
class GcLstm : public SnapshotSequenceClassifier {
 public:
  GcLstm(const DiscreteOptions& options, uint64_t seed);

 protected:
  tensor::Tensor SequenceEmbedding(
      const std::vector<tensor::Tensor>& snapshot_embeddings) override;
  std::string base_name() const override { return "GC-LSTM"; }

 private:
  std::unique_ptr<nn::LstmCell> lstm_;
};

// AddGraph (Zheng et al. 2019): GRU over snapshots with attention over the
// hidden-state history.
class AddGraph : public SnapshotSequenceClassifier {
 public:
  AddGraph(const DiscreteOptions& options, uint64_t seed);

 protected:
  tensor::Tensor SequenceEmbedding(
      const std::vector<tensor::Tensor>& snapshot_embeddings) override;
  std::string base_name() const override { return "AddGraph"; }

 private:
  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::Linear> attention_query_;
};

// TADDY (Liu et al. 2023): transformer encoder over snapshot tokens with a
// learned positional encoding.
class Taddy : public SnapshotSequenceClassifier {
 public:
  Taddy(const DiscreteOptions& options, uint64_t seed);

 protected:
  tensor::Tensor SequenceEmbedding(
      const std::vector<tensor::Tensor>& snapshot_embeddings) override;
  std::string base_name() const override { return "TADDY"; }

 private:
  tensor::Tensor positions_;  // [num_snapshots, hidden]
  std::unique_ptr<nn::MultiheadAttention> encoder_;
  std::unique_ptr<nn::Linear> ffn_;
};

}  // namespace tpgnn::baselines

#endif  // TPGNN_BASELINES_DISCRETE_H_
