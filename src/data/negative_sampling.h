#ifndef TPGNN_DATA_NEGATIVE_SAMPLING_H_
#define TPGNN_DATA_NEGATIVE_SAMPLING_H_

#include "graph/temporal_graph.h"
#include "util/rng.h"

// The paper's two negative-sample constructions (Sec. V-A):
//
//  * "context-dependent" structural rewiring: for a small set of edges
//    (u, v, t), replace the target with a node v' such that (u, v') is not an
//    edge of the positive graph, producing a structurally different graph;
//  * temporal shuffling: randomly shuffle the edge establishment order,
//    producing a graph that is topologically identical to the positive one
//    but temporally anomalous (only order-aware models can detect it).

namespace tpgnn::data {

// Rewires ceil(edge_fraction * m) randomly chosen edges. Candidate
// replacement targets already linked from the same source in the positive
// graph are rejected (the paper deletes such candidates); if no valid
// replacement exists the edge is left unchanged.
graph::TemporalGraph RewireNegative(const graph::TemporalGraph& positive,
                                    double edge_fraction, Rng& rng);

// Randomly permutes the timestamps across edges, shuffling the edge
// establishment order while keeping topology and the multiset of timestamps.
graph::TemporalGraph ShuffleNegative(const graph::TemporalGraph& positive,
                                     Rng& rng);

// Subtler temporal negative used by the dataset generators: two disjoint
// blocks of the chronological edge sequence (each ~block_fraction of the
// edges) exchange positions, and the original sorted timestamps are
// reassigned to the new order. Topology and the timestamp multiset are
// unchanged, within-block local order is unchanged — only the mid/long-range
// establishment order is anomalous, which is exactly the kind of anomaly
// (Fig. 1) that order-aware models must integrate over many edges to detect.
graph::TemporalGraph BlockSwapNegative(const graph::TemporalGraph& positive,
                                       double block_fraction, Rng& rng);

// Temporal negative for walk-structured graphs (trajectories): the
// anchor-based loops of the walk — maximal segments starting at the walk's
// first node — are permuted in time, with timestamps reassigned
// positionally. Every local movement remains a valid walk step (the chain
// property "src of edge i == dst of edge i-1" is preserved); only the
// mid/long-range establishment order betrays the negative. Falls back to
// BlockSwapNegative when the walk has fewer than two closed loops.
graph::TemporalGraph LoopSwapNegative(const graph::TemporalGraph& positive,
                                      Rng& rng);

}  // namespace tpgnn::data

#endif  // TPGNN_DATA_NEGATIVE_SAMPLING_H_
