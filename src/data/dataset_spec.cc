#include "data/dataset_spec.h"

namespace tpgnn::data {

DatasetSpec ForumJavaSpec() {
  DatasetSpec spec;
  spec.name = "Forum-java";
  spec.flavor = DatasetFlavor::kLogSession;
  spec.default_graph_count = 172;  // 172,443 / 1000.
  spec.negative_ratio = 0.325;
  spec.avg_nodes = 27;
  spec.avg_edges = 30;
  return spec;
}

DatasetSpec HdfsSpec() {
  DatasetSpec spec;
  spec.name = "HDFS";
  spec.flavor = DatasetFlavor::kLogSession;
  spec.default_graph_count = 130;  // 130,344 / 1000.
  spec.negative_ratio = 0.298;
  spec.avg_nodes = 12;
  spec.avg_edges = 31;
  return spec;
}

DatasetSpec GowallaSpec() {
  DatasetSpec spec;
  spec.name = "Gowalla";
  spec.flavor = DatasetFlavor::kTrajectory;
  spec.default_graph_count = 106;  // 105,862 / 1000.
  spec.negative_ratio = 0.288;
  spec.avg_nodes = 72;
  spec.avg_edges = 117;
  return spec;
}

DatasetSpec FourSquareSpec() {
  DatasetSpec spec;
  spec.name = "FourSquare";
  spec.flavor = DatasetFlavor::kTrajectory;
  spec.default_graph_count = 348;  // 347,848 / 1000.
  spec.negative_ratio = 0.303;
  spec.avg_nodes = 61;
  spec.avg_edges = 135;
  return spec;
}

DatasetSpec BrightkiteSpec() {
  DatasetSpec spec;
  spec.name = "Brightkite";
  spec.flavor = DatasetFlavor::kTrajectory;
  spec.default_graph_count = 45;  // 44,693 / 1000.
  spec.negative_ratio = 0.303;
  spec.avg_nodes = 46;
  spec.avg_edges = 188;
  return spec;
}

std::vector<DatasetSpec> AllDatasetSpecs() {
  return {ForumJavaSpec(), HdfsSpec(), GowallaSpec(), FourSquareSpec(),
          BrightkiteSpec()};
}

}  // namespace tpgnn::data
