#ifndef TPGNN_DATA_DATASETS_H_
#define TPGNN_DATA_DATASETS_H_

#include <cstdint>

#include "data/dataset_spec.h"
#include "graph/temporal_graph.h"

// Dataset assembly: turns a DatasetSpec preset into a labeled GraphDataset
// using the flavour-appropriate generator and negative-sampling mix.

namespace tpgnn::data {

// Generates `count` labeled graphs (count <= 0 uses
// spec.default_graph_count). Deterministic in (spec, count, seed).
graph::GraphDataset MakeDataset(const DatasetSpec& spec, int64_t count,
                                uint64_t seed);

// Drops graphs with fewer than `min_edges` interactions (the paper filters
// sessions/users with fewer than three records).
graph::GraphDataset FilterMinEdges(const graph::GraphDataset& dataset,
                                   int64_t min_edges);

// Chronological split: the first `train_fraction` of the dataset is the
// training set, the remainder the test set (Sec. V-D uses 30%/70%).
struct TrainTestSplit {
  graph::GraphDataset train;
  graph::GraphDataset test;
};

TrainTestSplit SplitDataset(const graph::GraphDataset& dataset,
                            double train_fraction);

}  // namespace tpgnn::data

#endif  // TPGNN_DATA_DATASETS_H_
