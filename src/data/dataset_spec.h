#ifndef TPGNN_DATA_DATASET_SPEC_H_
#define TPGNN_DATA_DATASET_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

// Dataset presets mirroring Table I of the paper. The original corpora
// (Forum-java logs, HDFS logs, Brightkite/Gowalla/FourSquare check-ins) are
// not redistributable here, so each preset drives a synthetic generator that
// reproduces the published statistics: average node/edge counts, negative
// ratio, and 3-dimensional node features. Graph counts are scaled down by
// 1000x by default (the models are per-graph; method ranking stabilizes with
// hundreds of graphs) and can be overridden.

namespace tpgnn::data {

enum class DatasetFlavor {
  kLogSession,  // Forum-java, HDFS: dynamic session networks from logs.
  kTrajectory,  // Brightkite, Gowalla, FourSquare: user POI trajectories.
};

struct DatasetSpec {
  std::string name;
  DatasetFlavor flavor = DatasetFlavor::kLogSession;
  // Default number of graphs to generate (Table I count / 1000).
  int64_t default_graph_count = 100;
  double negative_ratio = 0.3;
  // Target average graph shape (Table I).
  int64_t avg_nodes = 20;
  int64_t avg_edges = 30;
  int64_t feature_dim = 3;
  // Fraction of negatives that are purely temporal (timestamp-order
  // anomalies, invisible to order-agnostic methods); the rest are
  // structural.
  double temporal_negative_fraction = 0.5;
};

// Table I presets.
DatasetSpec ForumJavaSpec();
DatasetSpec HdfsSpec();
DatasetSpec GowallaSpec();
DatasetSpec FourSquareSpec();
DatasetSpec BrightkiteSpec();

// All five, in the paper's column order.
std::vector<DatasetSpec> AllDatasetSpecs();

}  // namespace tpgnn::data

#endif  // TPGNN_DATA_DATASET_SPEC_H_
