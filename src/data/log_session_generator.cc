#include "data/log_session_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "data/negative_sampling.h"
#include "util/logging.h"

namespace tpgnn::data {

using graph::TemporalGraph;

LogSessionGenerator::LogSessionGenerator(const Options& options)
    : options_(options) {
  TPGNN_CHECK_GE(options_.avg_nodes, 3);
  TPGNN_CHECK_GE(options_.avg_edges, options_.avg_nodes - 1)
      << "a session visits every stage at least once";
  TPGNN_CHECK_GE(options_.num_event_types, options_.avg_nodes * 2)
      << "vocabulary must cover stages plus exception templates";
}

std::vector<LogSessionGenerator::Event> LogSessionGenerator::SimulateNormal(
    Rng& rng) const {
  const double jitter = 1.0 + options_.size_jitter * (2.0 * rng.Uniform() - 1.0);
  // Stages of this session's workflow; every stage emits at least one event.
  const int64_t stages = std::max<int64_t>(
      3, static_cast<int64_t>(std::llround(
             static_cast<double>(options_.avg_nodes) * jitter)));
  int64_t extra_budget = std::max<int64_t>(
      0, static_cast<int64_t>(std::llround(
             static_cast<double>(options_.avg_edges + 1 - options_.avg_nodes) *
             jitter)));
  // Probability of one more bounce (revisit of the previous stage) after any
  // emission, tuned so expected extras match the budget.
  const double bounce_prob =
      static_cast<double>(extra_budget) /
      (static_cast<double>(extra_budget) + static_cast<double>(stages) + 1.0);

  std::vector<Event> events;
  double t = 0.0;
  auto emit = [&](int64_t type, bool exception) {
    t += -std::log(1.0 - rng.Uniform());  // Exp(1) inter-event gap.
    Event e;
    e.type = type;
    e.time = t;
    e.duration = static_cast<float>(std::exp(rng.Normal(0.0, 0.4)));
    e.exception = exception;
    events.push_back(e);
  };

  for (int64_t s = 0; s < stages; ++s) {
    emit(s, /*exception=*/false);
    // Bounces: re-emit the previous stage then this one (a retry loop),
    // producing the repeated-edge patterns of Fig. 1.
    while (s > 0 && extra_budget >= 2 && rng.Bernoulli(bounce_prob)) {
      emit(s - 1, false);
      emit(s, false);
      extra_budget -= 2;
    }
  }
  return events;
}

TemporalGraph LogSessionGenerator::BuildGraph(
    const std::vector<Event>& events) const {
  TPGNN_CHECK(!events.empty());
  // Distinct event types, numbered by first appearance.
  std::unordered_map<int64_t, int64_t> node_of_type;
  for (const Event& e : events) {
    node_of_type.emplace(e.type, static_cast<int64_t>(node_of_type.size()));
  }
  const int64_t n = static_cast<int64_t>(node_of_type.size());
  TemporalGraph g(n, /*feature_dim=*/3);

  // Aggregate per-node features: template id, mean duration, exception flag.
  std::vector<double> duration_sum(static_cast<size_t>(n), 0.0);
  std::vector<int64_t> count(static_cast<size_t>(n), 0);
  std::vector<bool> exception(static_cast<size_t>(n), false);
  for (const Event& e : events) {
    const int64_t node = node_of_type[e.type];
    duration_sum[static_cast<size_t>(node)] += e.duration;
    count[static_cast<size_t>(node)] += 1;
    if (e.exception) exception[static_cast<size_t>(node)] = true;
  }
  for (const auto& [type, node] : node_of_type) {
    const size_t s = static_cast<size_t>(node);
    g.SetNodeFeature(
        node,
        {static_cast<float>(type) /
             static_cast<float>(options_.num_event_types),
         static_cast<float>(duration_sum[s] / static_cast<double>(count[s])),
         exception[s] ? 1.0f : 0.0f});
  }

  for (size_t i = 1; i < events.size(); ++i) {
    g.AddEdge(node_of_type[events[i - 1].type], node_of_type[events[i].type],
              events[i].time);
  }
  return g;
}

TemporalGraph LogSessionGenerator::GeneratePositive(Rng& rng) const {
  return BuildGraph(SimulateNormal(rng));
}

TemporalGraph LogSessionGenerator::GenerateNegative(LogFault fault,
                                                    Rng& rng) const {
  TPGNN_CHECK(fault != LogFault::kNone);
  std::vector<Event> events = SimulateNormal(rng);

  switch (fault) {
    case LogFault::kOrderAnomaly: {
      // Topology-preserving: the events happened, but in an impossible
      // order (the session's timestamps are permuted across edges).
      return ShuffleNegative(BuildGraph(events), rng);
    }
    case LogFault::kCrashLoop: {
      // Repeat the pair of events at the crash site 3-6 extra times.
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(events.size()) - 1));
      const int64_t repeats = rng.UniformInt(3, 6);
      double t = events.back().time;
      std::vector<Event> looped(events.begin(),
                                events.begin() + static_cast<int64_t>(pos) + 1);
      for (int64_t r = 0; r < repeats; ++r) {
        for (size_t i = pos - 1; i <= pos; ++i) {
          Event e = events[i];
          t += -std::log(1.0 - rng.Uniform()) * 0.2;  // Rapid-fire loop.
          e.time = t;
          looped.push_back(e);
        }
      }
      return BuildGraph(looped);
    }
    case LogFault::kMissingStep: {
      // Remove every emission of a mandatory middle stage.
      int64_t max_type = 0;
      for (const Event& e : events) max_type = std::max(max_type, e.type);
      if (max_type >= 2) {
        const int64_t victim = rng.UniformInt(1, max_type - 1);
        events.erase(std::remove_if(events.begin(), events.end(),
                                    [victim](const Event& e) {
                                      return e.type == victim;
                                    }),
                     events.end());
      }
      return BuildGraph(events);
    }
    case LogFault::kExceptionBurst: {
      // Insert 2-4 exception events after a random position; exception
      // templates live in the upper half of the vocabulary.
      const int64_t bursts = rng.UniformInt(2, 4);
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(events.size()) - 1));
      std::vector<Event> corrupted(
          events.begin(), events.begin() + static_cast<int64_t>(pos) + 1);
      double t = events[pos].time;
      for (int64_t b = 0; b < bursts; ++b) {
        Event e;
        e.type = rng.UniformInt(options_.num_event_types / 2,
                                options_.num_event_types - 1);
        t += -std::log(1.0 - rng.Uniform()) * 0.3;
        e.time = t;
        e.duration = static_cast<float>(std::exp(rng.Normal(0.5, 0.4)));
        e.exception = true;
        corrupted.push_back(e);
      }
      // Resume the normal tail after the burst, shifted in time.
      for (size_t i = pos + 1; i < events.size(); ++i) {
        Event e = events[i];
        t += -std::log(1.0 - rng.Uniform());
        e.time = t;
        corrupted.push_back(e);
      }
      return BuildGraph(corrupted);
    }
    case LogFault::kNone:
      break;
  }
  TPGNN_CHECK(false) << "unreachable";
  return TemporalGraph(1, 3);
}

LogFault LogSessionGenerator::SampleFault(double temporal_fraction, Rng& rng) {
  if (rng.Bernoulli(temporal_fraction)) {
    return LogFault::kOrderAnomaly;
  }
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return LogFault::kCrashLoop;
    case 1:
      return LogFault::kMissingStep;
    default:
      return LogFault::kExceptionBurst;
  }
}

}  // namespace tpgnn::data
