#include "data/negative_sampling.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace tpgnn::data {

using graph::TemporalEdge;
using graph::TemporalGraph;

TemporalGraph RewireNegative(const TemporalGraph& positive,
                             double edge_fraction, Rng& rng) {
  TPGNN_CHECK_GT(edge_fraction, 0.0);
  TPGNN_CHECK_LE(edge_fraction, 1.0);
  TemporalGraph negative = positive;
  const int64_t n = negative.num_nodes();
  const int64_t m = negative.num_edges();
  if (n < 2 || m == 0) return negative;

  std::set<std::pair<int64_t, int64_t>> existing;
  for (const TemporalEdge& e : positive.edges()) {
    existing.insert({e.src, e.dst});
  }

  const int64_t rewire_count = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(edge_fraction * static_cast<double>(m))));
  std::vector<TemporalEdge>& edges = negative.mutable_edges();
  for (int64_t k = 0; k < rewire_count; ++k) {
    const size_t idx =
        static_cast<size_t>(rng.UniformInt(0, m - 1));
    TemporalEdge& e = edges[idx];
    // Try a handful of replacement targets; give up (leave unchanged) if the
    // source is already connected to every other node.
    for (int attempt = 0; attempt < 16; ++attempt) {
      const int64_t candidate = rng.UniformInt(0, n - 1);
      if (candidate == e.dst || candidate == e.src) continue;
      if (existing.count({e.src, candidate}) > 0) continue;  // Would be normal.
      e.dst = candidate;
      break;
    }
  }
  return negative;
}

TemporalGraph ShuffleNegative(const TemporalGraph& positive, Rng& rng) {
  TemporalGraph negative = positive;
  std::vector<TemporalEdge>& edges = negative.mutable_edges();
  if (edges.size() < 2) return negative;
  std::vector<double> times;
  times.reserve(edges.size());
  for (const TemporalEdge& e : edges) {
    times.push_back(e.time);
  }
  // Derangement-ish shuffle: retry until the assignment actually changes the
  // chronological edge order (guaranteed to terminate for >= 2 distinct
  // timestamps; identical timestamps cannot encode order anyway).
  bool changed = false;
  for (int attempt = 0; attempt < 8 && !changed; ++attempt) {
    rng.Shuffle(times);
    for (size_t i = 0; i < edges.size(); ++i) {
      if (times[i] != edges[i].time) changed = true;
    }
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    edges[i].time = times[i];
  }
  return negative;
}

TemporalGraph BlockSwapNegative(const TemporalGraph& positive,
                                double block_fraction, Rng& rng) {
  TPGNN_CHECK_GT(block_fraction, 0.0);
  TPGNN_CHECK_LE(block_fraction, 0.5);
  std::vector<TemporalEdge> order = positive.ChronologicalEdges();
  const int64_t m = static_cast<int64_t>(order.size());
  const int64_t block = std::max<int64_t>(
      1, static_cast<int64_t>(block_fraction * static_cast<double>(m)));
  if (m < 2 * block + 1) {
    // Too short for two disjoint blocks; fall back to a full shuffle.
    return ShuffleNegative(positive, rng);
  }
  // Start positions: a in [0, m - 2*block - 1], b in (a + block, m - block].
  const int64_t a = rng.UniformInt(0, m - 2 * block - 1);
  const int64_t b = rng.UniformInt(a + block + 1, m - block);

  std::vector<double> times;
  times.reserve(order.size());
  for (const TemporalEdge& e : order) {
    times.push_back(e.time);
  }
  // Rebuild the order with blocks A and B exchanged.
  std::vector<TemporalEdge> swapped;
  swapped.reserve(order.size());
  auto append = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      swapped.push_back(order[static_cast<size_t>(i)]);
    }
  };
  append(0, a);
  append(b, b + block);      // Block B takes A's slot.
  append(a + block, b);      // Middle.
  append(a, a + block);      // Block A takes B's slot.
  append(b + block, m);
  TPGNN_CHECK_EQ(swapped.size(), order.size());

  // Reassign the sorted timestamps positionally.
  TemporalGraph negative(positive.num_nodes(), positive.feature_dim());
  for (int64_t v = 0; v < positive.num_nodes(); ++v) {
    negative.SetNodeFeature(v, positive.node_feature(v));
  }
  for (size_t i = 0; i < swapped.size(); ++i) {
    negative.AddEdge(swapped[i].src, swapped[i].dst, times[i]);
  }
  return negative;
}

// Temporal negative: the trajectory's home-anchored loops are permuted in
// time (timestamps are reassigned positionally). Every local movement
// remains a valid step of a walk — the chain property "src of edge i == dst
// of edge i-1" still holds — so no single edge is anomalous; only the
// mid/long-range order (excursions happening before their POIs were ever
// discovered) betrays the negative. Detecting it requires integrating edge
// order globally, the capability the paper's global temporal embedding
// extractor provides.
TemporalGraph LoopSwapNegative(const TemporalGraph& positive, Rng& rng) {
  std::vector<TemporalEdge> order = positive.ChronologicalEdges();
  if (order.size() < 6) {
    return BlockSwapNegative(positive, /*block_fraction=*/0.2, rng);
  }
  const int64_t home = order.front().src;
  // Segment starts: every edge leaving home starts a loop.
  std::vector<size_t> cuts;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i].src == home) {
      cuts.push_back(i);
    }
  }
  // Only segments that end back at home are permutable: all but the last
  // segment qualify (segment k ends where segment k+1 starts, i.e. home).
  if (cuts.size() < 3) {
    return BlockSwapNegative(positive, /*block_fraction=*/0.2, rng);
  }
  const size_t num_loops = cuts.size() - 1;  // Closed loops.
  std::vector<size_t> perm(num_loops);
  for (size_t i = 0; i < num_loops; ++i) perm[i] = i;
  bool changed = false;
  for (int attempt = 0; attempt < 8 && !changed; ++attempt) {
    rng.Shuffle(perm);
    for (size_t i = 0; i < num_loops; ++i) {
      if (perm[i] != i) changed = true;
    }
  }

  std::vector<TemporalEdge> swapped;
  swapped.reserve(order.size());
  for (size_t k : perm) {
    swapped.insert(swapped.end(),
                   order.begin() + static_cast<int64_t>(cuts[k]),
                   order.begin() + static_cast<int64_t>(cuts[k + 1]));
  }
  // Trailing open segment keeps its slot.
  swapped.insert(swapped.end(),
                 order.begin() + static_cast<int64_t>(cuts[num_loops]),
                 order.end());

  TemporalGraph negative(positive.num_nodes(), positive.feature_dim());
  for (int64_t v = 0; v < positive.num_nodes(); ++v) {
    negative.SetNodeFeature(v, positive.node_feature(v));
  }
  for (size_t i = 0; i < swapped.size(); ++i) {
    negative.AddEdge(swapped[i].src, swapped[i].dst, order[i].time);
  }
  return negative;
}

}  // namespace tpgnn::data
