#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "data/log_session_generator.h"
#include "data/trajectory_generator.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tpgnn::data {

graph::GraphDataset MakeDataset(const DatasetSpec& spec, int64_t count,
                                uint64_t seed) {
  if (count <= 0) count = spec.default_graph_count;
  TPGNN_CHECK_GT(count, 0);
  Rng rng(seed);

  graph::GraphDataset dataset;
  dataset.reserve(static_cast<size_t>(count));

  if (spec.flavor == DatasetFlavor::kLogSession) {
    LogSessionGenerator::Options options;
    options.avg_nodes = spec.avg_nodes;
    options.avg_edges = spec.avg_edges;
    options.num_event_types = std::max<int64_t>(64, spec.avg_nodes * 3);
    LogSessionGenerator generator(options);
    for (int64_t i = 0; i < count; ++i) {
      if (rng.Bernoulli(spec.negative_ratio)) {
        LogFault fault = LogSessionGenerator::SampleFault(
            spec.temporal_negative_fraction, rng);
        dataset.push_back({generator.GenerateNegative(fault, rng), 0});
      } else {
        dataset.push_back({generator.GeneratePositive(rng), 1});
      }
    }
  } else {
    TrajectoryGenerator::Options options;
    options.avg_nodes = spec.avg_nodes;
    options.avg_edges = spec.avg_edges;
    TrajectoryGenerator generator(options);
    for (int64_t i = 0; i < count; ++i) {
      if (rng.Bernoulli(spec.negative_ratio)) {
        dataset.push_back(
            {generator.GenerateNegative(spec.temporal_negative_fraction, rng),
             0});
      } else {
        dataset.push_back({generator.GeneratePositive(rng), 1});
      }
    }
  }
  return dataset;
}

graph::GraphDataset FilterMinEdges(const graph::GraphDataset& dataset,
                                   int64_t min_edges) {
  graph::GraphDataset filtered;
  filtered.reserve(dataset.size());
  for (const graph::LabeledGraph& g : dataset) {
    if (g.graph.num_edges() >= min_edges) {
      filtered.push_back(g);
    }
  }
  return filtered;
}

TrainTestSplit SplitDataset(const graph::GraphDataset& dataset,
                            double train_fraction) {
  TPGNN_CHECK_GE(train_fraction, 0.0);
  TPGNN_CHECK_LE(train_fraction, 1.0);
  const size_t cut = static_cast<size_t>(
      std::llround(train_fraction * static_cast<double>(dataset.size())));
  TrainTestSplit split;
  split.train.assign(dataset.begin(),
                     dataset.begin() + static_cast<int64_t>(cut));
  split.test.assign(dataset.begin() + static_cast<int64_t>(cut),
                    dataset.end());
  return split;
}

}  // namespace tpgnn::data
