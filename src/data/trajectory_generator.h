#ifndef TPGNN_DATA_TRAJECTORY_GENERATOR_H_
#define TPGNN_DATA_TRAJECTORY_GENERATOR_H_

#include <cstdint>

#include "graph/temporal_graph.h"
#include "util/rng.h"

// Synthetic dynamic user-trajectory networks standing in for the Brightkite,
// Gowalla and FourSquare check-in corpora (Sec. V-A). Nodes are POIs with
// (longitude, latitude, country) features; a directed edge (u, v, t) records
// the user moving from POI u to POI v at time t. A normal trajectory is a
// home-biased exploratory walk: mostly local movements, frequent revisits of
// a small favourite set, and occasional exploration of new POIs.
//
// Negatives are derived from fresh positives via the paper's two strategies
// (see data/negative_sampling.h): context-dependent structural rewiring and
// temporal shuffling.

namespace tpgnn::data {

class TrajectoryGenerator {
 public:
  struct Options {
    int64_t avg_nodes = 72;   // POIs per trajectory network (Table I).
    int64_t avg_edges = 117;  // Check-in movements (Table I).
    int64_t num_countries = 6;
    double size_jitter = 0.2;
    // Fraction of revisit steps that return to the favourite set.
    double favourite_bias = 0.6;
    // Edges rewired when building a structural negative.
    double rewire_fraction = 0.15;
  };

  explicit TrajectoryGenerator(const Options& options);

  // A normal trajectory network (label 1). Every POI is visited at least
  // once, so the walk has no isolated nodes.
  graph::TemporalGraph GeneratePositive(Rng& rng) const;

  // A negative (label 0): temporal (shuffled order) with probability
  // temporal_fraction, otherwise structural (rewired edges).
  graph::TemporalGraph GenerateNegative(double temporal_fraction,
                                        Rng& rng) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace tpgnn::data

#endif  // TPGNN_DATA_TRAJECTORY_GENERATOR_H_
