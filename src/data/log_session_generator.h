#ifndef TPGNN_DATA_LOG_SESSION_GENERATOR_H_
#define TPGNN_DATA_LOG_SESSION_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/rng.h"

// Synthetic dynamic session networks standing in for the Forum-java and HDFS
// log corpora (Sec. V-A). A session is a walk through a staged workflow of
// log-event templates; nodes are distinct events, a directed edge (u, v, t)
// records that event v followed event u at time t (the paper's information
// flow). Node features mirror the paper's 3-dim encoding: event template id,
// duration, and exception flag.
//
// Negative sessions are produced by injecting one of four faults modelled on
// the paper's industry fault case:
//   kOrderAnomaly - events happen in an impossible order (topology
//                       identical to a normal session; purely temporal).
//   kCrashLoop        - a step pair repeats pathologically at the crash site.
//   kMissingStep      - a mandatory workflow stage never executes.
//   kExceptionBurst   - exception events interleave with the normal flow.

namespace tpgnn::data {

enum class LogFault {
  kNone = 0,
  kOrderAnomaly,
  kCrashLoop,
  kMissingStep,
  kExceptionBurst,
};

class LogSessionGenerator {
 public:
  struct Options {
    // Target average distinct events per session (Table I avg nodes).
    int64_t avg_nodes = 27;
    // Target average interactions per session (Table I avg edges).
    int64_t avg_edges = 30;
    // Global template vocabulary (stages + exception templates).
    int64_t num_event_types = 64;
    // Relative jitter applied to per-session sizes.
    double size_jitter = 0.2;
  };

  explicit LogSessionGenerator(const Options& options);

  // A normal session network (label 1).
  graph::TemporalGraph GeneratePositive(Rng& rng) const;

  // A faulty session network (label 0). `fault` must not be kNone.
  graph::TemporalGraph GenerateNegative(LogFault fault, Rng& rng) const;

  // Samples a fault: kOrderAnomaly with probability temporal_fraction,
  // otherwise uniformly one of the three structural faults.
  static LogFault SampleFault(double temporal_fraction, Rng& rng);

  const Options& options() const { return options_; }

 private:
  struct Event {
    int64_t type = 0;
    double time = 0.0;
    float duration = 0.0f;
    bool exception = false;
  };

  // Simulates the normal workflow for this session's jittered size.
  std::vector<Event> SimulateNormal(Rng& rng) const;

  graph::TemporalGraph BuildGraph(const std::vector<Event>& events) const;

  Options options_;
};

}  // namespace tpgnn::data

#endif  // TPGNN_DATA_LOG_SESSION_GENERATOR_H_
