#include "data/trajectory_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/negative_sampling.h"
#include "util/logging.h"

namespace tpgnn::data {

using graph::TemporalGraph;

TrajectoryGenerator::TrajectoryGenerator(const Options& options)
    : options_(options) {
  TPGNN_CHECK_GE(options_.avg_nodes, 2);
  TPGNN_CHECK_GE(options_.avg_edges, options_.avg_nodes)
      << "the walk must be able to visit every POI";
  TPGNN_CHECK_GT(options_.num_countries, 0);
}

TemporalGraph TrajectoryGenerator::GeneratePositive(Rng& rng) const {
  const double jitter = 1.0 + options_.size_jitter * (2.0 * rng.Uniform() - 1.0);
  const int64_t n = std::max<int64_t>(
      2, static_cast<int64_t>(std::llround(
             static_cast<double>(options_.avg_nodes) * jitter)));
  const int64_t m = std::max<int64_t>(
      n, static_cast<int64_t>(std::llround(
             static_cast<double>(options_.avg_edges) * jitter)));

  TemporalGraph g(n, /*feature_dim=*/3);

  // POIs cluster around country centres; the user lives in one home country
  // and occasionally travels.
  const int64_t home_country = rng.UniformInt(0, options_.num_countries - 1);
  std::vector<double> lon(static_cast<size_t>(n));
  std::vector<double> lat(static_cast<size_t>(n));
  for (int64_t p = 0; p < n; ++p) {
    const int64_t country =
        rng.Bernoulli(0.85) ? home_country
                            : rng.UniformInt(0, options_.num_countries - 1);
    const double centre_lon =
        -150.0 + 60.0 * static_cast<double>(country % 6);
    const double centre_lat = -30.0 + 20.0 * static_cast<double>(country % 4);
    lon[static_cast<size_t>(p)] = centre_lon + rng.Normal(0.0, 3.0);
    lat[static_cast<size_t>(p)] = centre_lat + rng.Normal(0.0, 3.0);
    g.SetNodeFeature(
        p, {static_cast<float>(lon[static_cast<size_t>(p)] / 180.0),
            static_cast<float>(lat[static_cast<size_t>(p)] / 90.0),
            static_cast<float>(country) /
                static_cast<float>(options_.num_countries)});
  }

  // Favourite set: home plus a few recurring POIs.
  const int64_t favourites =
      std::min<int64_t>(n, 3 + rng.UniformInt(0, 2));

  int64_t current = 0;  // Home.
  int64_t next_unvisited = 1;
  int64_t visited = 1;
  double t = 0.0;
  for (int64_t step = 0; step < m; ++step) {
    const int64_t remaining_steps = m - step;
    const int64_t unvisited = n - visited;
    int64_t next;
    if (unvisited > 0 &&
        (unvisited >= remaining_steps ||
         rng.Bernoulli(static_cast<double>(unvisited) /
                       static_cast<double>(remaining_steps)))) {
      // Exploration: nearest-by-index new POI (keeps movements local since
      // POIs of the home country dominate).
      next = next_unvisited++;
      ++visited;
    } else if (rng.Bernoulli(0.3)) {
      next = 0;  // Return home; trajectories are sequences of home-anchored
                 // loops (used by the temporal negative construction).
    } else if (rng.Bernoulli(options_.favourite_bias)) {
      next = rng.UniformInt(0, favourites - 1);  // Return to a favourite.
    } else {
      next = rng.UniformInt(0, visited - 1);  // Revisit any known POI.
    }
    if (next == current) {
      next = (current + 1) % std::max<int64_t>(visited, 1);
    }
    t += -std::log(1.0 - rng.Uniform());
    g.AddEdge(current, next, t);
    current = next;
  }
  return g;
}

TemporalGraph TrajectoryGenerator::GenerateNegative(double temporal_fraction,
                                                    Rng& rng) const {
  TemporalGraph positive = GeneratePositive(rng);
  if (rng.Bernoulli(temporal_fraction)) {
    return LoopSwapNegative(positive, rng);
  }
  return RewireNegative(positive, options_.rewire_fraction, rng);
}

}  // namespace tpgnn::data
