#include "net/protocol.h"

#include <cstring>

namespace tpgnn::net {

namespace {

// Decoder-side plausibility caps. Anything above these in a length or count
// field is treated as corruption: the caps are far beyond what the serving
// path produces, and refusing early keeps a flipped bit in a count field
// from turning into a giant allocation.
constexpr uint64_t kMaxNodesPerSession = 1ull << 31;
constexpr uint64_t kMaxFeatureDim = 1ull << 24;
constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(StatusCode::kDataLoss);
constexpr uint8_t kMinFrameType = static_cast<uint8_t>(FrameType::kPing);
constexpr uint8_t kMaxFrameType = static_cast<uint8_t>(FrameType::kModelInfo);

void AppendRaw(const void* data, size_t size, std::vector<uint8_t>* out) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  out->insert(out->end(), bytes, bytes + size);
}

void AppendU16(uint16_t value, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(value & 0xff));
  out->push_back(static_cast<uint8_t>(value >> 8));
}

void AppendU32(uint32_t value, std::vector<uint8_t>* out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<uint8_t>((value >> shift) & 0xff));
  }
}

void AppendF32(float value, std::vector<uint8_t>* out) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU32(bits, out);
}

void AppendF64(double value, std::vector<uint8_t>* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<uint8_t>((bits >> shift) & 0xff));
  }
}

void AppendString(const std::string& value, std::vector<uint8_t>* out) {
  AppendVarint(value.size(), out);
  AppendRaw(value.data(), value.size(), out);
}

void AppendBytes(const std::vector<uint8_t>& value, std::vector<uint8_t>* out) {
  AppendVarint(value.size(), out);
  AppendRaw(value.data(), value.size(), out);
}

void AppendEvent(const serve::Event& event, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(event.kind));
  AppendVarint(event.session_id, out);
  AppendF64(event.time, out);
  switch (event.kind) {
    case serve::Event::Kind::kBegin:
      AppendVarint(static_cast<uint64_t>(event.num_nodes), out);
      AppendVarint(static_cast<uint64_t>(event.feature_dim), out);
      AppendVarint(event.features.size(), out);
      for (const serve::NodeInit& init : event.features) {
        AppendZigzag(init.node, out);
        for (float f : init.features) {
          AppendF32(f, out);
        }
      }
      break;
    case serve::Event::Kind::kEdge:
      AppendZigzag(event.src, out);
      AppendZigzag(event.dst, out);
      AppendF64(event.edge_time, out);
      break;
    case serve::Event::Kind::kScore:
      AppendZigzag(event.label, out);
      break;
    case serve::Event::Kind::kEnd:
      break;
  }
}

void AppendScoreResult(const serve::ScoreResult& result,
                       std::vector<uint8_t>* out) {
  AppendVarint(result.session_id, out);
  out->push_back(static_cast<uint8_t>(result.status.code()));
  AppendString(result.status.message(), out);
  AppendF32(result.logit, out);
  AppendF32(result.probability, out);
  AppendVarint(static_cast<uint64_t>(result.edges_scored), out);
  AppendZigzag(result.label, out);
  AppendF64(result.queue_micros, out);
  AppendF64(result.score_micros, out);
}

// Bounds-checked sequential reader over one frame payload. Every Read*
// validates the remaining byte count before touching memory; the first
// failure latches and all later reads fail too, so decode code can chain
// reads and check once.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool failed() const { return failed_; }

  bool ReadU8(uint8_t* value) {
    if (!Require(1)) return false;
    *value = data_[pos_++];
    return true;
  }

  bool ReadF32(float* value) {
    if (!Require(4)) return false;
    uint32_t bits = 0;
    for (int i = 0; i < 4; ++i) {
      bits |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
              << (8 * i);
    }
    pos_ += 4;
    std::memcpy(value, &bits, sizeof(*value));
    return true;
  }

  bool ReadF64(double* value) {
    if (!Require(8)) return false;
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
              << (8 * i);
    }
    pos_ += 8;
    std::memcpy(value, &bits, sizeof(*value));
    return true;
  }

  bool ReadVarint(uint64_t* value) {
    uint64_t result = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!Require(1)) return false;
      const uint8_t byte = data_[pos_++];
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        // The tenth byte may only contribute the single remaining bit.
        if (shift == 63 && byte > 1) {
          return Fail();
        }
        *value = result;
        return true;
      }
    }
    return Fail();  // More than 10 continuation bytes.
  }

  bool ReadZigzag(int64_t* value) {
    uint64_t raw;
    if (!ReadVarint(&raw)) return false;
    *value = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    return true;
  }

  bool ReadString(std::string* value) {
    uint64_t length;
    if (!ReadVarint(&length)) return false;
    if (length > remaining()) return Fail();
    value->assign(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(length));
    pos_ += static_cast<size_t>(length);
    return true;
  }

  bool ReadBytes(std::vector<uint8_t>* value) {
    uint64_t length;
    if (!ReadVarint(&length)) return false;
    if (length > remaining()) return Fail();
    value->assign(data_ + pos_, data_ + pos_ + static_cast<size_t>(length));
    pos_ += static_cast<size_t>(length);
    return true;
  }

 private:
  bool Require(size_t bytes) {
    if (failed_ || remaining() < bytes) {
      return Fail();
    }
    return true;
  }
  bool Fail() {
    failed_ = true;
    return false;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

bool ReadEvent(Reader& reader, serve::Event* event) {
  uint8_t kind;
  if (!reader.ReadU8(&kind)) return false;
  if (kind > static_cast<uint8_t>(serve::Event::Kind::kEnd)) return false;
  event->kind = static_cast<serve::Event::Kind>(kind);
  if (!reader.ReadVarint(&event->session_id)) return false;
  if (!reader.ReadF64(&event->time)) return false;
  switch (event->kind) {
    case serve::Event::Kind::kBegin: {
      uint64_t num_nodes, feature_dim, listed;
      if (!reader.ReadVarint(&num_nodes) || num_nodes > kMaxNodesPerSession) {
        return false;
      }
      if (!reader.ReadVarint(&feature_dim) || feature_dim > kMaxFeatureDim) {
        return false;
      }
      if (!reader.ReadVarint(&listed) || listed > num_nodes) return false;
      event->num_nodes = static_cast<int64_t>(num_nodes);
      event->feature_dim = static_cast<int64_t>(feature_dim);
      // Each entry consumes >= 1 + 4 * feature_dim payload bytes, so a
      // corrupt `listed` cannot force an allocation beyond the payload.
      if (listed > 0 && reader.remaining() / (1 + 4 * feature_dim) < listed) {
        return false;
      }
      event->features.clear();
      event->features.reserve(static_cast<size_t>(listed));
      for (uint64_t i = 0; i < listed; ++i) {
        serve::NodeInit init;
        if (!reader.ReadZigzag(&init.node)) return false;
        init.features.resize(static_cast<size_t>(feature_dim));
        for (float& f : init.features) {
          if (!reader.ReadF32(&f)) return false;
        }
        event->features.push_back(std::move(init));
      }
      break;
    }
    case serve::Event::Kind::kEdge:
      if (!reader.ReadZigzag(&event->src)) return false;
      if (!reader.ReadZigzag(&event->dst)) return false;
      if (!reader.ReadF64(&event->edge_time)) return false;
      break;
    case serve::Event::Kind::kScore: {
      int64_t label;
      if (!reader.ReadZigzag(&label)) return false;
      event->label = static_cast<int>(label);
      break;
    }
    case serve::Event::Kind::kEnd:
      break;
  }
  return true;
}

bool ReadScoreResult(Reader& reader, serve::ScoreResult* result) {
  if (!reader.ReadVarint(&result->session_id)) return false;
  uint8_t code;
  if (!reader.ReadU8(&code) || code > kMaxStatusCode) return false;
  std::string message;
  if (!reader.ReadString(&message)) return false;
  result->status = Status(static_cast<StatusCode>(code), std::move(message));
  if (!reader.ReadF32(&result->logit)) return false;
  if (!reader.ReadF32(&result->probability)) return false;
  uint64_t edges;
  if (!reader.ReadVarint(&edges)) return false;
  result->edges_scored = static_cast<int64_t>(edges);
  int64_t label;
  if (!reader.ReadZigzag(&label)) return false;
  result->label = static_cast<int>(label);
  if (!reader.ReadF64(&result->queue_micros)) return false;
  if (!reader.ReadF64(&result->score_micros)) return false;
  return true;
}

Status CorruptFrame(const std::string& detail) {
  return Status::DataLoss("corrupt frame: " + detail);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kPing:
      return "PING";
    case FrameType::kPong:
      return "PONG";
    case FrameType::kIngestBatch:
      return "INGEST_BATCH";
    case FrameType::kIngestAck:
      return "INGEST_ACK";
    case FrameType::kScore:
      return "SCORE";
    case FrameType::kScoreResult:
      return "SCORE_RESULT";
    case FrameType::kMetricsRequest:
      return "METRICS_REQUEST";
    case FrameType::kMetricsResponse:
      return "METRICS_RESPONSE";
    case FrameType::kShutdown:
      return "SHUTDOWN";
    case FrameType::kGoodbye:
      return "GOODBYE";
    case FrameType::kOverloaded:
      return "OVERLOADED";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kSessionExport:
      return "SESSION_EXPORT";
    case FrameType::kSessionState:
      return "SESSION_STATE";
    case FrameType::kSessionImport:
      return "SESSION_IMPORT";
    case FrameType::kModelLoad:
      return "MODEL_LOAD";
    case FrameType::kModelActivate:
      return "MODEL_ACTIVATE";
    case FrameType::kModelStatus:
      return "MODEL_STATUS";
    case FrameType::kModelInfo:
      return "MODEL_INFO";
  }
  return "UNKNOWN";
}

void AppendVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

void AppendZigzag(int64_t value, std::vector<uint8_t>* out) {
  AppendVarint((static_cast<uint64_t>(value) << 1) ^
                   static_cast<uint64_t>(value >> 63),
               out);
}

void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out) {
  const size_t header_at = out->size();
  AppendU32(kFrameMagic, out);
  out->push_back(kProtocolVersion);
  out->push_back(static_cast<uint8_t>(frame.type));
  AppendU16(0, out);
  AppendU32(0, out);  // Payload length, patched below.
  const size_t payload_at = out->size();

  switch (frame.type) {
    case FrameType::kPing:
    case FrameType::kPong:
      AppendVarint(frame.request_id, out);
      break;
    case FrameType::kIngestBatch:
      AppendVarint(frame.request_id, out);
      AppendVarint(frame.events.size(), out);
      for (const serve::Event& event : frame.events) {
        AppendEvent(event, out);
      }
      break;
    case FrameType::kIngestAck:
    case FrameType::kOverloaded:
      AppendVarint(frame.request_id, out);
      out->push_back(static_cast<uint8_t>(frame.status_code));
      AppendVarint(frame.events_applied, out);
      AppendString(frame.text, out);
      break;
    case FrameType::kScore:
      AppendVarint(frame.request_id, out);
      AppendVarint(frame.session_id, out);
      AppendZigzag(frame.label, out);
      break;
    case FrameType::kScoreResult:
      AppendVarint(frame.results.size(), out);
      for (const serve::ScoreResult& result : frame.results) {
        AppendScoreResult(result, out);
      }
      break;
    case FrameType::kMetricsRequest:
    case FrameType::kShutdown:
    case FrameType::kGoodbye:
      break;
    case FrameType::kMetricsResponse:
      AppendString(frame.text, out);
      break;
    case FrameType::kError:
      out->push_back(static_cast<uint8_t>(frame.status_code));
      AppendString(frame.text, out);
      break;
    case FrameType::kSessionExport:
      AppendVarint(frame.request_id, out);
      AppendVarint(frame.session_id, out);
      break;
    case FrameType::kSessionState:
      AppendVarint(frame.request_id, out);
      out->push_back(static_cast<uint8_t>(frame.status_code));
      AppendString(frame.text, out);
      AppendBytes(frame.blob, out);
      break;
    case FrameType::kSessionImport:
      AppendVarint(frame.request_id, out);
      AppendBytes(frame.blob, out);
      break;
    case FrameType::kModelLoad:
      AppendVarint(frame.request_id, out);
      AppendString(frame.name, out);
      AppendString(frame.text, out);
      break;
    case FrameType::kModelActivate:
      AppendVarint(frame.request_id, out);
      AppendString(frame.name, out);
      out->push_back(frame.mode);
      AppendF64(frame.fraction, out);
      break;
    case FrameType::kModelStatus:
      AppendVarint(frame.request_id, out);
      break;
    case FrameType::kModelInfo:
      AppendVarint(frame.request_id, out);
      out->push_back(static_cast<uint8_t>(frame.status_code));
      AppendString(frame.text, out);
      break;
  }

  const uint32_t payload_len = static_cast<uint32_t>(out->size() - payload_at);
  (*out)[header_at + 8] = static_cast<uint8_t>(payload_len & 0xff);
  (*out)[header_at + 9] = static_cast<uint8_t>((payload_len >> 8) & 0xff);
  (*out)[header_at + 10] = static_cast<uint8_t>((payload_len >> 16) & 0xff);
  (*out)[header_at + 11] = static_cast<uint8_t>((payload_len >> 24) & 0xff);
}

Status DecodeFrame(const uint8_t* data, size_t size,
                   uint32_t max_payload_bytes, Frame* frame,
                   size_t* consumed) {
  *consumed = 0;
  if (size < kFrameHeaderBytes) {
    return Status::Ok();  // Need more bytes.
  }
  uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<uint32_t>(data[static_cast<size_t>(i)]) << (8 * i);
  }
  if (magic != kFrameMagic) {
    return CorruptFrame("bad magic");
  }
  if (data[4] != kProtocolVersion) {
    return CorruptFrame("unsupported protocol version " +
                        std::to_string(static_cast<int>(data[4])));
  }
  const uint8_t raw_type = data[5];
  if (raw_type < kMinFrameType || raw_type > kMaxFrameType) {
    return CorruptFrame("unknown frame type " +
                        std::to_string(static_cast<int>(raw_type)));
  }
  if (data[6] != 0 || data[7] != 0) {
    return CorruptFrame("nonzero reserved bits");
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(data[8 + static_cast<size_t>(i)])
                   << (8 * i);
  }
  if (payload_len > max_payload_bytes) {
    return Status::InvalidArgument(
        "oversized frame: " + std::to_string(payload_len) +
        " payload bytes exceeds limit of " +
        std::to_string(max_payload_bytes));
  }
  const size_t total = kFrameHeaderBytes + payload_len;
  if (size < total) {
    return Status::Ok();  // Header fine; wait for the payload.
  }

  *frame = Frame();
  frame->type = static_cast<FrameType>(raw_type);
  Reader reader(data + kFrameHeaderBytes, payload_len);
  bool ok = true;
  switch (frame->type) {
    case FrameType::kPing:
    case FrameType::kPong:
      ok = reader.ReadVarint(&frame->request_id);
      break;
    case FrameType::kIngestBatch: {
      uint64_t count;
      ok = reader.ReadVarint(&frame->request_id) && reader.ReadVarint(&count);
      // Every event costs >= 10 payload bytes (kind + id + time), so a
      // plausible count is bounded by the bytes actually present.
      if (ok && count > reader.remaining()) ok = false;
      if (ok) {
        frame->events.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; ok && i < count; ++i) {
          serve::Event event;
          ok = ReadEvent(reader, &event);
          if (ok) frame->events.push_back(std::move(event));
        }
      }
      break;
    }
    case FrameType::kIngestAck:
    case FrameType::kOverloaded: {
      uint8_t code = 0;
      ok = reader.ReadVarint(&frame->request_id) && reader.ReadU8(&code) &&
           code <= kMaxStatusCode && reader.ReadVarint(&frame->events_applied) &&
           reader.ReadString(&frame->text);
      if (ok) frame->status_code = static_cast<StatusCode>(code);
      break;
    }
    case FrameType::kScore: {
      int64_t label = 0;
      ok = reader.ReadVarint(&frame->request_id) &&
           reader.ReadVarint(&frame->session_id) && reader.ReadZigzag(&label);
      if (ok) frame->label = static_cast<int>(label);
      break;
    }
    case FrameType::kScoreResult: {
      uint64_t count;
      ok = reader.ReadVarint(&count);
      if (ok && count > reader.remaining()) ok = false;
      if (ok) {
        frame->results.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; ok && i < count; ++i) {
          serve::ScoreResult result;
          ok = ReadScoreResult(reader, &result);
          if (ok) frame->results.push_back(std::move(result));
        }
      }
      break;
    }
    case FrameType::kMetricsRequest:
    case FrameType::kShutdown:
    case FrameType::kGoodbye:
      break;
    case FrameType::kMetricsResponse:
      ok = reader.ReadString(&frame->text);
      break;
    case FrameType::kError: {
      uint8_t code = 0;
      ok = reader.ReadU8(&code) && code <= kMaxStatusCode &&
           reader.ReadString(&frame->text);
      if (ok) frame->status_code = static_cast<StatusCode>(code);
      break;
    }
    case FrameType::kSessionExport:
      ok = reader.ReadVarint(&frame->request_id) &&
           reader.ReadVarint(&frame->session_id);
      break;
    case FrameType::kSessionState: {
      uint8_t code = 0;
      ok = reader.ReadVarint(&frame->request_id) && reader.ReadU8(&code) &&
           code <= kMaxStatusCode && reader.ReadString(&frame->text) &&
           reader.ReadBytes(&frame->blob);
      if (ok) frame->status_code = static_cast<StatusCode>(code);
      break;
    }
    case FrameType::kSessionImport:
      ok = reader.ReadVarint(&frame->request_id) &&
           reader.ReadBytes(&frame->blob);
      break;
    case FrameType::kModelLoad:
      ok = reader.ReadVarint(&frame->request_id) &&
           reader.ReadString(&frame->name) &&
           frame->name.size() <= kMaxModelNameBytes &&
           reader.ReadString(&frame->text);
      break;
    case FrameType::kModelActivate:
      ok = reader.ReadVarint(&frame->request_id) &&
           reader.ReadString(&frame->name) &&
           frame->name.size() <= kMaxModelNameBytes &&
           reader.ReadU8(&frame->mode) && frame->mode <= kMaxModelAdminMode &&
           reader.ReadF64(&frame->fraction);
      break;
    case FrameType::kModelStatus:
      ok = reader.ReadVarint(&frame->request_id);
      break;
    case FrameType::kModelInfo: {
      uint8_t code = 0;
      ok = reader.ReadVarint(&frame->request_id) && reader.ReadU8(&code) &&
           code <= kMaxStatusCode && reader.ReadString(&frame->text);
      if (ok) frame->status_code = static_cast<StatusCode>(code);
      break;
    }
  }
  if (!ok || reader.failed()) {
    return CorruptFrame(std::string("truncated ") +
                        FrameTypeName(frame->type) + " payload");
  }
  if (reader.remaining() != 0) {
    return CorruptFrame(std::to_string(reader.remaining()) +
                        " trailing payload bytes after " +
                        FrameTypeName(frame->type));
  }
  *consumed = total;
  return Status::Ok();
}

}  // namespace tpgnn::net
