#ifndef TPGNN_NET_PROTOCOL_H_
#define TPGNN_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/event.h"
#include "util/status.h"

// The TP-GNN wire protocol: compact length-prefixed binary frames carrying
// batched serving events over a byte stream (TCP). Per-event dispatch
// overhead dominates CPU-side dynamic-GNN serving, so the unit of transfer
// is a *batch* of events, and requests pipeline freely — a client may have
// any number of frames in flight; the server answers in arrival order.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic 0x4E475054 ("TPGN")
//   4       1     protocol version (kProtocolVersion)
//   5       1     frame type (FrameType)
//   6       2     reserved, must be zero
//   8       4     payload length in bytes
//   12      ...   payload (type-specific, see DESIGN.md §4.4)
//
// Payload integers are unsigned LEB128 varints (signed values zigzag);
// floats and doubles are raw IEEE-754 bits; strings are a varint length
// followed by bytes. Decoding is strictly bounds-checked: a malformed,
// truncated-inside-payload, bit-flipped, or trailing-garbage frame yields
// kDataLoss, an oversized length prefix yields kInvalidArgument, and no
// input — adversarial or not — reads out of bounds or aborts (see
// tests/net/protocol_fuzz_test.cc). After a decode error the stream cannot
// be resynchronised; the connection must be torn down.

namespace tpgnn::net {

inline constexpr uint32_t kFrameMagic = 0x4E475054u;  // "TPGN"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr uint32_t kDefaultMaxPayloadBytes = 16u << 20;

enum class FrameType : uint8_t {
  // Client -> server.
  kPing = 1,            // request_id: echo token.
  kIngestBatch = 3,     // request_id + a batch of serve::Events.
  kScore = 5,           // request_id + session_id + label: one score request.
  kMetricsRequest = 7,  // empty.
  kShutdown = 9,        // empty: drain everything, then stop the server.
  // Server -> client.
  kPong = 2,             // request_id echoed from the Ping.
  kIngestAck = 4,        // request_id, status_code, events_applied, text.
  kScoreResult = 6,      // a batch of ScoreResults, in enqueue order.
  kMetricsResponse = 8,  // text: serve::Metrics JSON.
  kGoodbye = 10,         // final frame before the server closes the stream.
  kOverloaded = 11,      // request_id, events_applied: shed load and retry.
  kError = 12,           // status_code + text; the connection closes after.
  // Session migration (router <-> backend, see src/cluster/).
  kSessionExport = 13,  // request_id + session_id: snapshot and hand over.
  kSessionState = 14,   // request_id, status_code, text, blob: the snapshot.
  kSessionImport = 15,  // request_id + blob: install a migrated session;
                        // acknowledged with kIngestAck.
  // Model lifecycle admin (DESIGN.md §4.8).
  kModelLoad = 16,      // request_id, name, text = checkpoint path: register
                        // an inactive version; acknowledged with kIngestAck.
  kModelActivate = 17,  // request_id, name, mode (ModelAdminMode), fraction:
                        // swap / A/B / shadow verbs; acknowledged with
                        // kIngestAck.
  kModelStatus = 18,    // request_id: registry snapshot request.
  kModelInfo = 19,      // request_id, status_code, text: the registry's
                        // StatusJson (or the error message).
};

// kModelActivate sub-verbs, carried in Frame::mode.
enum class ModelAdminMode : uint8_t {
  kActivateDrain = 0,   // Primary swap; live sessions drain on their version.
  kActivateRebase = 1,  // Primary swap; live sessions refold at next touch.
  kSetCandidate = 2,    // A/B: route `fraction` of sessions to `name`.
  kSetShadow = 3,       // Re-score every primary score under `name`.
  kClearCandidate = 4,  // `name` ignored.
  kClearShadow = 5,     // `name` ignored.
};
inline constexpr uint8_t kMaxModelAdminMode =
    static_cast<uint8_t>(ModelAdminMode::kClearShadow);
// Decoder cap for Frame::name, matching serve::kMaxModelVersionName:
// version names are short handles, not payloads.
inline constexpr size_t kMaxModelNameBytes = 256;

const char* FrameTypeName(FrameType type);

// One decoded frame: `type` plus the fields that type uses (unused fields
// keep their defaults). A deliberately plain tagged struct — the server and
// client switch on `type` and read the relevant fields.
struct Frame {
  FrameType type = FrameType::kPing;
  // Correlation id, echoed by the response (Ping token; IngestBatch /
  // Score id echoed by IngestAck / Overloaded).
  uint64_t request_id = 0;
  // kIngestBatch.
  std::vector<serve::Event> events;
  // kScore.
  uint64_t session_id = 0;
  int label = -1;
  // kScoreResult.
  std::vector<serve::ScoreResult> results;
  // kIngestAck / kOverloaded / kError.
  StatusCode status_code = StatusCode::kOk;
  uint64_t events_applied = 0;
  // kIngestAck / kError message; kMetricsResponse JSON.
  std::string text;
  // kSessionState / kSessionImport: opaque serialized serve::SessionState.
  // The wire layer does not interpret it beyond length-checking.
  std::vector<uint8_t> blob;
  // kModelLoad / kModelActivate: registry version name (the checkpoint path
  // rides in `text` for kModelLoad).
  std::string name;
  // kModelActivate sub-verb (ModelAdminMode) and A/B fraction.
  uint8_t mode = 0;
  double fraction = 0.0;
};

// Appends the complete wire encoding of `frame` to `*out`.
void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out);

// Attempts to decode one frame from the front of [data, data + size).
// Outcomes:
//   * kOk, *consumed > 0  — `*frame` holds a complete frame.
//   * kOk, *consumed == 0 — the buffer holds only a frame prefix; read more
//     bytes and call again. Header fields are validated as soon as the
//     12-byte header is present, so corruption is detected without waiting
//     for the payload.
//   * kDataLoss           — corrupt stream (bad magic / version / reserved
//     bits / unknown type / payload that over- or under-runs its length).
//   * kInvalidArgument    — well-formed header whose payload length exceeds
//     `max_payload_bytes`.
Status DecodeFrame(const uint8_t* data, size_t size, uint32_t max_payload_bytes,
                   Frame* frame, size_t* consumed);

// Low-level encoding helpers, exposed for tests and the benchmarks.
void AppendVarint(uint64_t value, std::vector<uint8_t>* out);
void AppendZigzag(int64_t value, std::vector<uint8_t>* out);

}  // namespace tpgnn::net

#endif  // TPGNN_NET_PROTOCOL_H_
