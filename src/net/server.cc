#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "util/failpoint.h"
#include "util/logging.h"

namespace tpgnn::net {

namespace {

// Ids for the two non-connection poll entries.
constexpr uint64_t kListenEntry = 0;
constexpr uint64_t kWakeEntry = ~uint64_t{0};

// Compact a buffer whose consumed prefix has grown past this many bytes.
constexpr size_t kCompactThreshold = 1u << 20;

}  // namespace

Server::Server(serve::InferenceEngine* engine, const ServerOptions& options)
    : engine_(engine), options_(options) {
  TPGNN_CHECK(engine != nullptr);
}

Server::~Server() = default;

Status Server::Start() {
  if (Status s = ListenTcp(options_.bind_address, options_.port,
                           options_.backlog, &listen_fd_, &port_);
      !s.ok()) {
    return s;
  }
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return Status::Internal("pipe failed for shutdown wakeup");
  }
  wake_read_.reset(pipe_fds[0]);
  wake_write_.reset(pipe_fds[1]);
  SetNonBlocking(wake_read_.get(), true);
  SetNonBlocking(wake_write_.get(), true);
  return Status::Ok();
}

void Server::Run() {
  while (PollOnce(options_.poll_timeout_ms)) {
  }
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_write_.valid()) {
    const uint8_t byte = 1;
    // Best-effort wakeup; a full pipe means a wakeup is already pending.
    [[maybe_unused]] ssize_t rc = write(wake_write_.get(), &byte, 1);
  }
}

void Server::Abort() {
  abort_requested_.store(true, std::memory_order_release);
  if (wake_write_.valid()) {
    const uint8_t byte = 1;
    [[maybe_unused]] ssize_t rc = write(wake_write_.get(), &byte, 1);
  }
}

bool Server::PollOnce(int timeout_ms) {
  if (stopped_) {
    return false;
  }
  if (abort_requested_.load(std::memory_order_acquire)) {
    serve::Metrics& metrics = engine_->mutable_metrics();
    metrics.connections_closed.fetch_add(connections_.size(),
                                         std::memory_order_relaxed);
    connections_.clear();
    num_connections_.store(0, std::memory_order_relaxed);
    listen_fd_.reset();
    score_owner_.clear();
    stopped_ = true;
    return false;
  }
  if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
    BeginShutdown();
  }

  std::vector<pollfd> fds;
  std::vector<uint64_t> entry_ids;
  if (listen_fd_.valid() && !draining_ &&
      connections_.size() < static_cast<size_t>(options_.max_connections)) {
    fds.push_back({listen_fd_.get(), POLLIN, 0});
    entry_ids.push_back(kListenEntry);
  }
  if (wake_read_.valid()) {
    fds.push_back({wake_read_.get(), POLLIN, 0});
    entry_ids.push_back(kWakeEntry);
  }
  for (const auto& [id, conn] : connections_) {
    short events = 0;
    if (!draining_ && !conn->draining) {
      events |= POLLIN;
    }
    if (write_backlog(*conn) > 0) {
      events |= POLLOUT;
    }
    if (events != 0) {
      fds.push_back({conn->fd.get(), events, 0});
      entry_ids.push_back(id);
    }
  }

  poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

  for (size_t i = 0; i < fds.size(); ++i) {
    const short revents = fds[i].revents;
    if (revents == 0) {
      continue;
    }
    const uint64_t id = entry_ids[i];
    if (id == kWakeEntry) {
      uint8_t sink[64];
      while (read(wake_read_.get(), sink, sizeof(sink)) > 0) {
      }
      continue;
    }
    if (id == kListenEntry) {
      AcceptPending();
      continue;
    }
    auto it = connections_.find(id);
    if (it == connections_.end()) {
      continue;
    }
    Connection& conn = *it->second;
    if ((revents & POLLOUT) != 0 && !conn.dead) {
      HandleWritable(conn);
    }
    if ((revents & POLLIN) != 0 && !conn.dead && !conn.draining) {
      HandleReadable(conn);
    }
    if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 && !conn.dead &&
        write_backlog(conn) == 0) {
      conn.dead = true;
    }
  }

  // A shutdown frame handled above may have started the drain.
  if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
    BeginShutdown();
  }

  // End of iteration: one engine drain (micro-batched across everything
  // the iteration enqueued), then opportunistic writes.
  PumpEngine();
  for (auto& [id, conn] : connections_) {
    if (!conn->dead && write_backlog(*conn) > 0) {
      HandleWritable(*conn);
    }
    if (conn->draining && !conn->dead && write_backlog(*conn) == 0) {
      conn->dead = true;
    }
  }
  serve::Metrics& metrics = engine_->mutable_metrics();
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second->dead) {
      // Results still owed to this connection are dropped in RouteResults
      // when the owner no longer resolves.
      metrics.connections_closed.fetch_add(1, std::memory_order_relaxed);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  num_connections_.store(connections_.size(), std::memory_order_relaxed);

  if (draining_) {
    const bool drained = connections_.empty();
    const bool expired = clock_.ElapsedMicros() >= drain_deadline_micros_;
    if (drained || expired) {
      metrics.connections_closed.fetch_add(connections_.size(),
                                           std::memory_order_relaxed);
      connections_.clear();
      num_connections_.store(0, std::memory_order_relaxed);
      stopped_ = true;
    }
  }
  return !stopped_;
}

void Server::AcceptPending() {
  serve::Metrics& metrics = engine_->mutable_metrics();
  while (connections_.size() <
         static_cast<size_t>(options_.max_connections)) {
    UniqueFd fd;
    if (Status s = AcceptTcp(listen_fd_.get(), &fd); !s.ok()) {
      return;
    }
    if (!fd.valid()) {
      return;  // Nothing pending.
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = std::move(fd);
    conn->id = next_connection_id_++;
    metrics.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    connections_.emplace(conn->id, std::move(conn));
  }
}

void Server::HandleReadable(Connection& conn) {
  serve::Metrics& metrics = engine_->mutable_metrics();
  uint8_t buf[64 * 1024];
  for (;;) {
    size_t received = 0;
    bool eof = false;
    Status s = RecvNonBlocking(conn.fd.get(), buf, sizeof(buf), &received,
                               &eof);
    if (!s.ok() || eof) {
      conn.dead = true;
      break;
    }
    if (received == 0) {
      break;  // Drained the socket.
    }
    metrics.bytes_received.fetch_add(received, std::memory_order_relaxed);
    conn.in.insert(conn.in.end(), buf, buf + received);
  }

  size_t offset = 0;
  while (!conn.dead && !conn.draining) {
    Frame frame;
    size_t consumed = 0;
    Status s = DecodeFrame(conn.in.data() + offset, conn.in.size() - offset,
                           options_.max_payload_bytes, &frame, &consumed);
    if (!s.ok()) {
      metrics.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      FailConnection(conn, s);
      break;
    }
    if (consumed == 0) {
      break;  // Partial frame; wait for more bytes.
    }
    offset += consumed;
    metrics.frames_received.fetch_add(1, std::memory_order_relaxed);
    HandleFrame(conn, frame);
  }
  if (offset > 0) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<ptrdiff_t>(offset));
  } else if (conn.in.capacity() > kCompactThreshold && conn.in.empty()) {
    conn.in.shrink_to_fit();
  }
}

void Server::HandleWritable(Connection& conn) {
  serve::Metrics& metrics = engine_->mutable_metrics();
  while (write_backlog(conn) > 0) {
    size_t sent = 0;
    Status s = SendNonBlocking(conn.fd.get(), conn.out.data() + conn.out_sent,
                               write_backlog(conn), &sent);
    if (!s.ok()) {
      conn.dead = true;
      return;
    }
    if (sent == 0) {
      break;  // Kernel buffer full; POLLOUT will retry.
    }
    conn.out_sent += sent;
    metrics.bytes_sent.fetch_add(sent, std::memory_order_relaxed);
  }
  if (conn.out_sent == conn.out.size()) {
    conn.out.clear();
    conn.out_sent = 0;
  } else if (conn.out_sent > kCompactThreshold) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() + static_cast<ptrdiff_t>(conn.out_sent));
    conn.out_sent = 0;
  }
}

void Server::HandleFrame(Connection& conn, const Frame& frame) {
  // Injected dispatch stall: stretches the window between decode and reply so
  // client timeouts / interleaving races get exercised. Delay-only by design;
  // errors are injected at the protocol edges, not mid-dispatch.
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("server.dispatch", &hit)) {
    failpoint::ApplyDelay(hit);
  }
  switch (frame.type) {
    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      pong.request_id = frame.request_id;
      SendFrame(conn, pong);
      break;
    }
    case FrameType::kMetricsRequest: {
      Frame response;
      response.type = FrameType::kMetricsResponse;
      // Fold current memory high-water readings into the gauges so remote
      // scrapers (router aggregation, the soak harness) see them without a
      // separate RPC.
      engine_->mutable_metrics().UpdateResourcePeaks();
      response.text = engine_->metrics().ToJson();
      SendFrame(conn, response);
      break;
    }
    case FrameType::kIngestBatch:
      HandleIngestBatch(conn, frame);
      break;
    case FrameType::kScore: {
      Frame reply;
      reply.request_id = frame.request_id;
      if (conn.inflight_scores >= options_.max_inflight_scores ||
          write_backlog(conn) > options_.max_write_buffer_bytes) {
        reply.type = FrameType::kOverloaded;
        reply.status_code = StatusCode::kOverloaded;
        reply.text = "connection at its in-flight score cap";
        SendFrame(conn, reply);
        break;
      }
      serve::Event event;
      event.kind = serve::Event::Kind::kScore;
      event.session_id = frame.session_id;
      event.label = frame.label;
      Status st = IngestWithRetry(event);
      if (st.code() == StatusCode::kOverloaded) {
        reply.type = FrameType::kOverloaded;
        reply.status_code = st.code();
        reply.text = st.message();
        SendFrame(conn, reply);
      } else if (!st.ok()) {
        // A typed failure still produces exactly one SCORE_RESULT.
        reply.type = FrameType::kScoreResult;
        serve::ScoreResult result;
        result.session_id = frame.session_id;
        result.status = st;
        result.label = frame.label;
        reply.results.push_back(std::move(result));
        SendFrame(conn, reply);
      } else {
        score_owner_.push_back(conn.id);
        ++conn.inflight_scores;
      }
      break;
    }
    case FrameType::kShutdown:
      RequestShutdown();
      break;
    case FrameType::kSessionExport: {
      // Migration handover: snapshot the session and, on success, drop it —
      // the requesting router installs the snapshot elsewhere, and two live
      // copies would double-apply any replayed event. In-flight scores
      // pinned here still complete against the pinned state (End defers
      // removal to the last Unpin).
      Frame reply;
      reply.type = FrameType::kSessionState;
      reply.request_id = frame.request_id;
      serve::SessionState state;
      Status st = engine_->ExportSession(frame.session_id, &state);
      reply.status_code = st.code();
      if (st.ok()) {
        serve::SerializeSessionState(state, &reply.blob);
        serve::Event end;
        end.kind = serve::Event::Kind::kEnd;
        end.session_id = frame.session_id;
        engine_->Ingest(end);
      } else {
        reply.text = st.message();
      }
      SendFrame(conn, reply);
      break;
    }
    case FrameType::kSessionImport: {
      Frame reply;
      reply.type = FrameType::kIngestAck;
      reply.request_id = frame.request_id;
      serve::SessionState state;
      Status st = serve::ParseSessionState(frame.blob.data(),
                                           frame.blob.size(), &state);
      if (st.ok()) {
        st = engine_->ImportSession(state);
      }
      reply.status_code = st.code();
      if (!st.ok()) {
        reply.text = st.message();
      } else {
        reply.events_applied = 1;
      }
      SendFrame(conn, reply);
      break;
    }
    case FrameType::kModelLoad: {
      Frame reply;
      reply.type = FrameType::kIngestAck;
      reply.request_id = frame.request_id;
      Status st = engine_->LoadModelVersion(frame.name, frame.text);
      reply.status_code = st.code();
      if (st.ok()) {
        reply.events_applied = 1;
      } else {
        reply.text = st.message();
      }
      SendFrame(conn, reply);
      break;
    }
    case FrameType::kModelActivate: {
      Frame reply;
      reply.type = FrameType::kIngestAck;
      reply.request_id = frame.request_id;
      model::ModelRegistry& registry = engine_->registry();
      Status st;
      switch (static_cast<ModelAdminMode>(frame.mode)) {
        case ModelAdminMode::kActivateDrain:
          st = engine_->ActivateModel(frame.name, model::SwapPolicy::kDrain);
          break;
        case ModelAdminMode::kActivateRebase:
          st = engine_->ActivateModel(frame.name,
                                      model::SwapPolicy::kImmediateRebase);
          break;
        case ModelAdminMode::kSetCandidate:
          st = registry.SetCandidate(frame.name, frame.fraction);
          break;
        case ModelAdminMode::kSetShadow:
          st = registry.SetShadow(frame.name);
          break;
        case ModelAdminMode::kClearCandidate:
          st = registry.ClearCandidate();
          break;
        case ModelAdminMode::kClearShadow:
          st = registry.ClearShadow();
          break;
      }
      reply.status_code = st.code();
      if (st.ok()) {
        reply.events_applied = 1;
      } else {
        reply.text = st.message();
      }
      SendFrame(conn, reply);
      break;
    }
    case FrameType::kModelStatus: {
      Frame reply;
      reply.type = FrameType::kModelInfo;
      reply.request_id = frame.request_id;
      reply.status_code = StatusCode::kOk;
      reply.text = engine_->registry().StatusJson();
      SendFrame(conn, reply);
      break;
    }
    case FrameType::kGoodbye:
      // Client-initiated close: flush what we owe, then close.
      conn.draining = true;
      break;
    default: {
      engine_->mutable_metrics().protocol_errors.fetch_add(
          1, std::memory_order_relaxed);
      FailConnection(
          conn, Status::InvalidArgument(
                    std::string("unexpected frame type from client: ") +
                    FrameTypeName(frame.type)));
      break;
    }
  }
}

void Server::HandleIngestBatch(Connection& conn, const Frame& frame) {
  Frame reply;
  reply.request_id = frame.request_id;
  if (write_backlog(conn) > options_.max_write_buffer_bytes) {
    reply.type = FrameType::kOverloaded;
    reply.status_code = StatusCode::kOverloaded;
    reply.text = "write buffer full; collect your responses";
    SendFrame(conn, reply);
    return;
  }
  uint64_t applied = 0;
  for (const serve::Event& event : frame.events) {
    if (event.kind == serve::Event::Kind::kScore &&
        conn.inflight_scores >= options_.max_inflight_scores) {
      reply.type = FrameType::kOverloaded;
      reply.status_code = StatusCode::kOverloaded;
      reply.events_applied = applied;
      reply.text = "connection at its in-flight score cap";
      SendFrame(conn, reply);
      return;
    }
    Status st = IngestWithRetry(event);
    if (st.code() == StatusCode::kOverloaded) {
      reply.type = FrameType::kOverloaded;
      reply.status_code = st.code();
      reply.events_applied = applied;
      reply.text = st.message();
      SendFrame(conn, reply);
      return;
    }
    if (!st.ok()) {
      // The batch aborts at the first bad event; the ack tells the client
      // exactly where.
      reply.type = FrameType::kIngestAck;
      reply.status_code = st.code();
      reply.events_applied = applied;
      reply.text = st.message();
      SendFrame(conn, reply);
      return;
    }
    if (event.kind == serve::Event::Kind::kScore) {
      score_owner_.push_back(conn.id);
      ++conn.inflight_scores;
    }
    ++applied;
  }
  reply.type = FrameType::kIngestAck;
  reply.status_code = StatusCode::kOk;
  reply.events_applied = applied;
  SendFrame(conn, reply);
}

Status Server::IngestWithRetry(const serve::Event& event) {
  Status st = engine_->Ingest(event);
  if (st.code() == StatusCode::kOverloaded) {
    // Relieve the bounded queue with one full drain, then retry once; if
    // the engine is still overloaded the client must shed load.
    PumpEngine();
    st = engine_->Ingest(event);
  }
  return st;
}

void Server::PumpEngine() {
  std::vector<serve::ScoreResult> results;
  for (;;) {
    results.clear();
    if (engine_->ProcessPending(&results) == 0) {
      break;
    }
    RouteResults(results);
  }
}

void Server::RouteResults(const std::vector<serve::ScoreResult>& results) {
  // The engine returns results in request order — the exact order of
  // score_owner_ pushes. Group per connection, preserving order.
  std::map<uint64_t, std::vector<serve::ScoreResult>> per_connection;
  for (const serve::ScoreResult& result : results) {
    TPGNN_CHECK(!score_owner_.empty());
    const uint64_t owner = score_owner_.front();
    score_owner_.pop_front();
    per_connection[owner].push_back(result);
  }
  for (auto& [owner, owned] : per_connection) {
    auto it = connections_.find(owner);
    if (it == connections_.end() || it->second->dead) {
      continue;  // The requester is gone; its results are dropped.
    }
    Connection& conn = *it->second;
    conn.inflight_scores -= owned.size();
    Frame frame;
    frame.type = FrameType::kScoreResult;
    frame.results = std::move(owned);
    SendFrame(conn, frame);
  }
}

void Server::SendFrame(Connection& conn, const Frame& frame) {
  if (conn.dead) {
    return;
  }
  const size_t start = conn.out.size();
  EncodeFrame(frame, &conn.out);
  // Injected wire corruption: flips a header byte of the frame just encoded
  // (magic/version/reserved only, so the peer always sees a typed kDataLoss
  // rather than an aliased frame or a length stall).
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("server.corrupt_frame", &hit)) {
    failpoint::CorruptFrameHeader(hit, conn.out.data() + start,
                                  conn.out.size() - start);
  }
  engine_->mutable_metrics().frames_sent.fetch_add(1,
                                                   std::memory_order_relaxed);
}

void Server::FailConnection(Connection& conn, const Status& status) {
  Frame error;
  error.type = FrameType::kError;
  error.status_code = status.code();
  error.text = status.message();
  SendFrame(conn, error);
  conn.draining = true;
  // Stop reading immediately: the stream past the bad frame is garbage.
  shutdown(conn.fd.get(), SHUT_RD);
}

void Server::BeginShutdown() {
  draining_ = true;
  listen_fd_.reset();
  // Every enqueued score is flushed and delivered before any GOODBYE, so a
  // graceful shutdown never loses a SCORE_RESULT.
  PumpEngine();
  for (auto& [id, conn] : connections_) {
    if (conn->dead) {
      continue;
    }
    Frame goodbye;
    goodbye.type = FrameType::kGoodbye;
    SendFrame(*conn, goodbye);
    conn->draining = true;
  }
  drain_deadline_micros_ =
      clock_.ElapsedMicros() + options_.drain_timeout_ms * 1000.0;
}

}  // namespace tpgnn::net
