#ifndef TPGNN_NET_SERVER_H_
#define TPGNN_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "serve/inference_engine.h"
#include "util/net.h"
#include "util/status.h"
#include "util/stopwatch.h"

// Poll-based non-blocking TCP front-end over serve::InferenceEngine.
//
// One thread (the caller of Run / PollOnce) owns all sockets: an accept
// loop plus per-connection read and write buffers. Clients pipeline frames
// freely; the server decodes every complete frame per poll iteration,
// dispatches events into the engine, and at the end of the iteration drains
// the engine's score queue once, routing each ScoreResult back to the
// connection that requested it (the engine returns results in request
// order, which is exactly the order of this server's enqueues). Session
// affinity is the caller's contract inherited from the engine: all events
// of one session must arrive on one connection, in order.
//
// Backpressure has three layers, all surfaced as an OVERLOADED frame that
// tells the client how many events of its batch were applied so it can
// retry the rest:
//   * the engine's bounded score queue (kOverloaded from Ingest; the server
//     first drains one micro-batch and retries once before giving up),
//   * a per-connection in-flight score cap (max_inflight_scores),
//   * a per-connection write-buffer cap (max_write_buffer_bytes): while a
//     client is slow to read its responses, new ingest work is rejected
//     rather than buffered without bound.
//
// A malformed frame (kDataLoss / oversized) gets a typed ERROR frame and a
// drain-then-close: the stream cannot be resynchronised. Graceful shutdown
// (SHUTDOWN frame, RequestShutdown(), or SIGINT wired by the caller) stops
// accepting, flushes every pending score through the engine, delivers all
// SCORE_RESULT frames, appends a GOODBYE to each connection, and closes
// once write buffers drain (bounded by drain_timeout_ms).

namespace tpgnn::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  // 0 = pick an ephemeral port; see Server::port().
  int backlog = 64;
  int max_connections = 64;
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  // Per-connection caps (see class comment).
  size_t max_inflight_scores = 256;
  size_t max_write_buffer_bytes = 4u << 20;
  // Poll granularity of Run(); also bounds shutdown latency.
  int poll_timeout_ms = 20;
  // Bound on the drain-then-close phase of a graceful shutdown.
  int drain_timeout_ms = 5000;
};

class Server {
 public:
  // `engine` must outlive the server; the server is its only driver while
  // serving (it calls Ingest and ProcessPending from the poll thread).
  Server(serve::InferenceEngine* engine, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds and listens. After success port() returns the bound port.
  Status Start();
  int port() const { return port_; }

  // Runs the poll loop until a graceful shutdown completes.
  void Run();
  // One poll iteration; false once the server has fully shut down. Exposed
  // so tests can drive the loop by hand.
  bool PollOnce(int timeout_ms);

  // Thread- and signal-safe: requests a graceful shutdown and wakes the
  // poll loop.
  void RequestShutdown();

  // Hard stop, thread-safe: the next poll iteration closes the listen
  // socket and every connection immediately — no drain, no GOODBYE, owed
  // results dropped — exactly what a killed process looks like to its
  // peers. The cluster chaos harness uses this to simulate a backend
  // crash in-process (the engine object survives for post-mortem
  // inspection; a real crash would lose it too).
  void Abort();
  bool shutting_down() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  // Approximate (poll-thread-maintained) connection count.
  size_t num_connections() const {
    return num_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    UniqueFd fd;
    uint64_t id = 0;
    std::vector<uint8_t> in;    // Unparsed received bytes.
    std::vector<uint8_t> out;   // Encoded responses not yet written.
    size_t out_sent = 0;        // Prefix of `out` already on the wire.
    size_t inflight_scores = 0;
    bool draining = false;  // No more reads; close once `out` flushes.
    bool dead = false;      // Remove at end of iteration.
  };

  void AcceptPending();
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  void HandleFrame(Connection& conn, const Frame& frame);
  void HandleIngestBatch(Connection& conn, const Frame& frame);
  // Ingests one event with the drain-once-and-retry overload policy.
  Status IngestWithRetry(const serve::Event& event);
  // Drains one engine micro-batch and routes results to their connections.
  void PumpEngine();
  void RouteResults(const std::vector<serve::ScoreResult>& results);
  void SendFrame(Connection& conn, const Frame& frame);
  // Typed-error teardown: ERROR frame, stop reading, close after flush.
  void FailConnection(Connection& conn, const Status& status);
  void BeginShutdown();
  size_t write_backlog(const Connection& conn) const {
    return conn.out.size() - conn.out_sent;
  }

  serve::InferenceEngine* const engine_;
  const ServerOptions options_;
  UniqueFd listen_fd_;
  int port_ = 0;
  // Self-pipe so RequestShutdown can wake a blocked poll().
  UniqueFd wake_read_;
  UniqueFd wake_write_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> abort_requested_{false};
  bool draining_ = false;
  bool stopped_ = false;
  double drain_deadline_micros_ = 0.0;
  Stopwatch clock_;

  uint64_t next_connection_id_ = 1;
  // std::map keeps iteration order deterministic.
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  // Connection id of every enqueued-but-unanswered score, in engine
  // request order.
  std::deque<uint64_t> score_owner_;
  std::atomic<size_t> num_connections_{0};
};

}  // namespace tpgnn::net

#endif  // TPGNN_NET_SERVER_H_
