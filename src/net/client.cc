#include "net/client.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace tpgnn::net {

namespace {

// IngestAll gives up after this many consecutive zero-progress overload
// rounds (each round drains results or sleeps, so this is generous).
constexpr int kMaxStallRounds = 200;

size_t CountScores(const std::vector<serve::Event>& events, size_t limit) {
  size_t scores = 0;
  for (size_t i = 0; i < limit && i < events.size(); ++i) {
    if (events[i].kind == serve::Event::Kind::kScore) {
      ++scores;
    }
  }
  return scores;
}

}  // namespace

Client::Client(const ClientOptions& options) : options_(options) {}

Client::~Client() { Close(); }

Status Client::Connect() {
  Status last = Status::Internal("no connect attempt made");
  const int attempts = std::max(1, options_.connect_retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.retry_backoff_ms));
    }
    // Injected connect failure: this attempt fails before touching the
    // network, and the surrounding retry loop carries on — with max_fires
    // below connect_retries, Connect still succeeds after injected flaps.
    failpoint::Hit hit;
    if (TPGNN_FAILPOINT("client.connect", &hit)) {
      if (hit.kind == failpoint::Kind::kDelay) {
        failpoint::ApplyDelay(hit);
      } else {
        last = failpoint::InjectedError(StatusCode::kInternal,
                                        "client.connect");
        continue;
      }
    }
    UniqueFd fd;
    last = ConnectTcp(options_.host, options_.port,
                      options_.connect_timeout_ms, &fd);
    if (last.ok()) {
      fd_ = std::move(fd);
      ResetStreamState();
      return Status::Ok();
    }
  }
  return last;
}

void Client::Close() {
  fd_.reset();
  ResetStreamState();
}

void Client::ResetStreamState() {
  in_.clear();
  // Results already collected stay; requests in flight on the old
  // connection will never be answered.
  inflight_scores_ = 0;
}

void Client::InjectBrokenPipeForTest() {
  if (fd_.valid()) {
    shutdown(fd_.get(), SHUT_RDWR);
  }
}

Status Client::SendFrame(const Frame& frame) {
  if (!connected()) {
    if (Status s = Connect(); !s.ok()) {
      return s;
    }
  }
  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);
  // Injected wire corruption toward the server (header bytes only, so the
  // server always answers with a typed ERROR frame — protocol_errors then
  // counts injected fires exactly).
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("client.corrupt_frame", &hit)) {
    failpoint::CorruptFrameHeader(hit, wire.data(), wire.size());
  }
  Status s = SendAll(fd_.get(), wire.data(), wire.size(),
                     options_.io_timeout_ms);
  if (s.code() == StatusCode::kDataLoss && options_.reconnect_on_broken_pipe) {
    // Reconnect-once: the engine's session state lives server-side, so a
    // fresh connection can continue the stream (in-flight results of the
    // old connection are lost).
    Close();
    if (Status c = Connect(); !c.ok()) {
      return c;
    }
    s = SendAll(fd_.get(), wire.data(), wire.size(), options_.io_timeout_ms);
  }
  if (!s.ok()) {
    Close();
  }
  return s;
}

Status Client::ReadFrame(Frame* frame) {
  if (!connected()) {
    return Status::FailedPrecondition("not connected");
  }
  Stopwatch watch;
  uint8_t buf[64 * 1024];
  for (;;) {
    size_t consumed = 0;
    Status s = DecodeFrame(in_.data(), in_.size(), options_.max_payload_bytes,
                           frame, &consumed);
    if (!s.ok()) {
      Close();
      return s;
    }
    if (consumed > 0) {
      in_.erase(in_.begin(), in_.begin() + static_cast<ptrdiff_t>(consumed));
      return Status::Ok();
    }
    const double elapsed_ms = watch.ElapsedSeconds() * 1e3;
    const int left_ms =
        options_.io_timeout_ms - static_cast<int>(elapsed_ms);
    if (left_ms <= 0) {
      return Status::DeadlineExceeded(
          "no frame within " + std::to_string(options_.io_timeout_ms) +
          " ms");
    }
    size_t received = 0;
    s = RecvSome(fd_.get(), buf, sizeof(buf), left_ms, &received);
    if (!s.ok()) {
      if (s.code() != StatusCode::kDeadlineExceeded) {
        Close();
      }
      return s;
    }
    in_.insert(in_.end(), buf, buf + received);
  }
}

Status Client::ReadUntil(FrameType type, Frame* frame,
                         uint64_t ack_request_id) {
  for (;;) {
    if (Status s = ReadFrame(frame); !s.ok()) {
      return s;
    }
    if (frame->type == FrameType::kScoreResult) {
      // May dip below zero when results outrun their batch's ack; the ack's
      // events_applied credit restores the balance (see the field comment).
      inflight_scores_ -= static_cast<int64_t>(frame->results.size());
      results_.insert(results_.end(), frame->results.begin(),
                      frame->results.end());
      if (type == FrameType::kScoreResult) {
        return Status::Ok();
      }
      continue;
    }
    if (frame->type == type) {
      return Status::Ok();
    }
    // OVERLOADED correlated to the awaited INGEST_BATCH is a valid answer;
    // the caller inspects frame->type to tell the two apart. Uncorrelated
    // overloads (shed pipelined SendScores) fall through to the switch.
    if (type == FrameType::kIngestAck &&
        frame->type == FrameType::kOverloaded &&
        frame->request_id == ack_request_id) {
      return Status::Ok();
    }
    switch (frame->type) {
      case FrameType::kError: {
        Status failure(frame->status_code, frame->text);
        Close();
        return failure;
      }
      case FrameType::kGoodbye:
        Close();
        return Status::FailedPrecondition("server shut down mid-call");
      case FrameType::kOverloaded: {
        // An unsolicited overload can only answer a pipelined SendScore:
        // record the shed request as a failed result so accounting and
        // DrainResults still converge.
        if (inflight_scores_ > 0) {
          --inflight_scores_;
          serve::ScoreResult shed;
          shed.status = Status::Overloaded(frame->text);
          results_.push_back(std::move(shed));
        }
        continue;
      }
      default:
        Close();
        return Status::Internal(std::string("unexpected frame: ") +
                                FrameTypeName(frame->type));
    }
  }
}

Status Client::Ping() {
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = next_request_id_++;
  if (Status s = SendFrame(ping); !s.ok()) {
    return s;
  }
  Frame pong;
  if (Status s = ReadUntil(FrameType::kPong, &pong); !s.ok()) {
    return s;
  }
  if (pong.request_id != ping.request_id) {
    Close();
    return Status::Internal("pong token mismatch");
  }
  return Status::Ok();
}

Status Client::IngestBatch(const std::vector<serve::Event>& events,
                           uint64_t* events_applied) {
  Frame batch;
  batch.type = FrameType::kIngestBatch;
  batch.request_id = next_request_id_++;
  batch.events = events;
  if (Status s = SendFrame(batch); !s.ok()) {
    return s;
  }
  // The response is either an INGEST_ACK or an OVERLOADED shed notice;
  // score results of earlier batches may interleave and are collected by
  // ReadUntil.
  Frame response;
  if (Status s =
          ReadUntil(FrameType::kIngestAck, &response, batch.request_id);
      !s.ok()) {
    return s;
  }
  if (response.request_id != batch.request_id) {
    Close();
    return Status::Internal("ingest ack correlation mismatch");
  }
  const uint64_t applied = response.events_applied;
  if (events_applied != nullptr) {
    *events_applied = applied;
  }
  inflight_scores_ +=
      static_cast<int64_t>(CountScores(events, static_cast<size_t>(applied)));
  if (response.type == FrameType::kOverloaded) {
    return Status::Overloaded(response.text.empty() ? "server overloaded"
                                                    : response.text);
  }
  if (response.status_code != StatusCode::kOk) {
    return Status(response.status_code, response.text);
  }
  return Status::Ok();
}

Status Client::IngestAll(const std::vector<serve::Event>& events) {
  size_t pos = 0;
  int stall_rounds = 0;
  while (pos < events.size()) {
    const size_t take =
        std::min(options_.max_events_per_batch, events.size() - pos);
    const std::vector<serve::Event> slice(
        events.begin() + static_cast<ptrdiff_t>(pos),
        events.begin() + static_cast<ptrdiff_t>(pos + take));
    uint64_t applied = 0;
    Status st = IngestBatch(slice, &applied);
    pos += static_cast<size_t>(applied);
    if (st.ok()) {
      stall_rounds = 0;
      continue;
    }
    if (st.code() != StatusCode::kOverloaded) {
      return st;
    }
    stall_rounds = applied > 0 ? 0 : stall_rounds + 1;
    if (stall_rounds > kMaxStallRounds) {
      return st;
    }
    // Shed load: give the server room by collecting a result if any are
    // outstanding, otherwise briefly back off.
    if (inflight_scores_ > 0) {
      Frame frame;
      if (Status s = ReadUntil(FrameType::kScoreResult, &frame); !s.ok()) {
        return s;
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return Status::Ok();
}

Status Client::SendScore(uint64_t session_id, int label) {
  Frame score;
  score.type = FrameType::kScore;
  score.request_id = next_request_id_++;
  score.session_id = session_id;
  score.label = label;
  if (Status s = SendFrame(score); !s.ok()) {
    return s;
  }
  ++inflight_scores_;
  return Status::Ok();
}

Status Client::DrainResults() {
  while (inflight_scores_ > 0) {
    Frame frame;
    if (Status s = ReadUntil(FrameType::kScoreResult, &frame); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Status Client::Score(uint64_t session_id, int label,
                     serve::ScoreResult* result) {
  if (Status s = SendScore(session_id, label); !s.ok()) {
    return s;
  }
  if (Status s = DrainResults(); !s.ok()) {
    return s;
  }
  if (results_.empty()) {
    return Status::Internal("score produced no result");
  }
  // FIFO per connection: the request just sent is answered last.
  *result = std::move(results_.back());
  results_.pop_back();
  return result->status;
}

std::vector<serve::ScoreResult> Client::TakeResults() {
  std::vector<serve::ScoreResult> out;
  out.swap(results_);
  return out;
}

Status Client::GetMetricsJson(std::string* json) {
  Frame request;
  request.type = FrameType::kMetricsRequest;
  if (Status s = SendFrame(request); !s.ok()) {
    return s;
  }
  Frame response;
  if (Status s = ReadUntil(FrameType::kMetricsResponse, &response); !s.ok()) {
    return s;
  }
  *json = std::move(response.text);
  return Status::Ok();
}

Status Client::ModelLoad(const std::string& name, const std::string& path) {
  Frame request;
  request.type = FrameType::kModelLoad;
  request.request_id = next_request_id_++;
  request.name = name;
  request.text = path;
  if (Status s = SendFrame(request); !s.ok()) {
    return s;
  }
  Frame ack;
  if (Status s = ReadUntil(FrameType::kIngestAck, &ack, request.request_id);
      !s.ok()) {
    return s;
  }
  if (ack.request_id != request.request_id) {
    Close();
    return Status::Internal("model load ack correlation mismatch");
  }
  return Status(ack.status_code, ack.text);
}

Status Client::ModelActivate(const std::string& name, ModelAdminMode mode,
                             double fraction) {
  Frame request;
  request.type = FrameType::kModelActivate;
  request.request_id = next_request_id_++;
  request.name = name;
  request.mode = static_cast<uint8_t>(mode);
  request.fraction = fraction;
  if (Status s = SendFrame(request); !s.ok()) {
    return s;
  }
  Frame ack;
  if (Status s = ReadUntil(FrameType::kIngestAck, &ack, request.request_id);
      !s.ok()) {
    return s;
  }
  if (ack.request_id != request.request_id) {
    Close();
    return Status::Internal("model activate ack correlation mismatch");
  }
  return Status(ack.status_code, ack.text);
}

Status Client::ModelStatus(std::string* json) {
  Frame request;
  request.type = FrameType::kModelStatus;
  request.request_id = next_request_id_++;
  if (Status s = SendFrame(request); !s.ok()) {
    return s;
  }
  Frame info;
  if (Status s = ReadUntil(FrameType::kModelInfo, &info); !s.ok()) {
    return s;
  }
  if (info.request_id != request.request_id) {
    Close();
    return Status::Internal("model status correlation mismatch");
  }
  if (info.status_code != StatusCode::kOk) {
    return Status(info.status_code, info.text);
  }
  *json = std::move(info.text);
  return Status::Ok();
}

Status Client::Shutdown() {
  Frame request;
  request.type = FrameType::kShutdown;
  if (Status s = SendFrame(request); !s.ok()) {
    return s;
  }
  Frame goodbye;
  if (Status s = ReadUntil(FrameType::kGoodbye, &goodbye); !s.ok()) {
    return s;
  }
  Close();
  return Status::Ok();
}

}  // namespace tpgnn::net
