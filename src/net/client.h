#ifndef TPGNN_NET_CLIENT_H_
#define TPGNN_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "serve/event.h"
#include "util/net.h"
#include "util/status.h"

// Blocking client for the TP-GNN wire protocol. One Client drives one TCP
// connection; it is not thread-safe (use one Client per thread — sessions
// are connection-affine anyway).
//
// Deadlines: every blocking call observes options.io_timeout_ms and fails
// with kDeadlineExceeded when the server does not answer in time. Connect()
// retries up to connect_retries times with a backoff and a per-attempt
// connect_timeout_ms deadline.
//
// Pipelining: IngestBatch carries Score events alongside Begin/Edge/End.
// Their SCORE_RESULT frames arrive asynchronously and are collected into an
// internal queue whenever the client reads the wire (TakeResults() hands
// them out; inflight_scores() counts requests still unanswered). Results of
// one connection arrive in request order.
//
// Backpressure: a kOverloaded return from IngestBatch means the server
// applied `*events_applied` events and shed the rest; IngestAll() wraps the
// retry loop (drain results -> resend the tail). Reconnect: when a send
// hits a broken pipe and reconnect_on_broken_pipe is set, the client
// reconnects and retries that send once. Server-side session state survives
// (it lives in the engine, not the connection), but score results that were
// in flight on the dead connection are lost; inflight_scores() resets.

namespace tpgnn::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int connect_timeout_ms = 2000;
  int connect_retries = 3;  // Total attempts per Connect() call.
  int retry_backoff_ms = 50;
  int io_timeout_ms = 5000;
  bool reconnect_on_broken_pipe = true;
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  // IngestAll slices streams into frames of at most this many events.
  size_t max_events_per_batch = 256;
};

class Client {
 public:
  explicit Client(const ClientOptions& options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect();
  void Close();
  bool connected() const { return fd_.valid(); }

  // Round-trips a PING.
  Status Ping();

  // Sends `events` as one INGEST_BATCH and waits for the response.
  // kOverloaded: the server applied *events_applied events and shed the
  // rest. Any other non-OK code: the batch aborted at *events_applied with
  // that event's error.
  Status IngestBatch(const std::vector<serve::Event>& events,
                     uint64_t* events_applied = nullptr);

  // Ships a whole event stream, slicing it into batches and absorbing
  // kOverloaded backpressure: on overload the client collects score
  // results (draining the server) and resends the unapplied tail. Fails
  // with kOverloaded only when retries stop making progress.
  Status IngestAll(const std::vector<serve::Event>& events);

  // Synchronous score: sends a SCORE frame and blocks until its result
  // (all earlier pipelined results are collected first — the result of
  // this call is the last one in).
  Status Score(uint64_t session_id, int label, serve::ScoreResult* result);

  // Pipelined score request; the result arrives via TakeResults later.
  Status SendScore(uint64_t session_id, int label);

  // Blocks until every outstanding pipelined score has a result.
  Status DrainResults();

  // Moves all collected score results out, in arrival (= request) order.
  std::vector<serve::ScoreResult> TakeResults();
  size_t inflight_scores() const {
    return inflight_scores_ > 0 ? static_cast<size_t>(inflight_scores_) : 0;
  }

  // Fetches the server's metrics snapshot as JSON (the METRICS RPC).
  Status GetMetricsJson(std::string* json);

  // Model lifecycle admin (DESIGN.md §4.8). ModelLoad registers checkpoint
  // `path` on the server as inactive version `name`; ModelActivate runs one
  // MODEL_ACTIVATE verb (`fraction` is only read by kSetCandidate);
  // ModelStatus fetches the registry's StatusJson. All three block for the
  // correlated ack and surface the server's typed status.
  Status ModelLoad(const std::string& name, const std::string& path);
  Status ModelActivate(const std::string& name, ModelAdminMode mode,
                       double fraction = 0.0);
  Status ModelStatus(std::string* json);

  // Asks the server to drain and stop, waiting for its GOODBYE. Outstanding
  // score results are collected (graceful shutdown delivers them first).
  Status Shutdown();

  // Test hook: wrecks the underlying socket so the next call exercises the
  // broken-pipe reconnect path.
  void InjectBrokenPipeForTest();

 private:
  // Sends one frame; on a broken pipe, optionally reconnects and retries
  // the send once.
  Status SendFrame(const Frame& frame);
  // Reads one frame within the io deadline.
  Status ReadFrame(Frame* frame);
  // Reads frames until one of `type` arrives, collecting score results
  // along the way. ERROR frames surface as their typed status; an
  // unexpected GOODBYE fails with kFailedPrecondition. When waiting for an
  // INGEST_ACK, an OVERLOADED frame correlated to `ack_request_id` also
  // terminates the wait (the caller switches on frame->type).
  Status ReadUntil(FrameType type, Frame* frame, uint64_t ack_request_id = 0);
  void ResetStreamState();

  const ClientOptions options_;
  UniqueFd fd_;
  std::vector<uint8_t> in_;  // Unparsed received bytes.
  uint64_t next_request_id_ = 1;
  // Outstanding pipelined scores. Signed, and transiently negative on
  // purpose: the server may pump the engine mid-batch, so SCORE_RESULTs for
  // a batch's scores can arrive *before* the ack that tells the client how
  // many of them were accepted. The balance settles once the ack lands;
  // clamping the dip at zero instead would leak phantom in-flight scores
  // and wedge DrainResults (found by tests/net/chaos_test.cc).
  int64_t inflight_scores_ = 0;
  std::vector<serve::ScoreResult> results_;
};

}  // namespace tpgnn::net

#endif  // TPGNN_NET_CLIENT_H_
