#ifndef TPGNN_CORE_CONFIG_H_
#define TPGNN_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "nn/checkpoint.h"
#include "util/status.h"

// Configuration of the TP-GNN model (Sec. IV) and its ablation variants
// (Sec. V-F).

namespace tpgnn::core {

// Node-feature updating method inside temporal propagation (Sec. IV-B.2).
enum class Updater {
  kSum,  // Temporal Propagation-SUM, Eqs. (3)-(5).
  kGru,  // Temporal Propagation-GRU, Eq. (6).
};

// EdgeAgg: how the two endpoint embeddings of an edge combine into the edge
// embedding fed to the global extractor. The paper (Sec. IV-C) adopts
// Average out of the six methods of Qu et al. 2020; all six are implemented
// for the design-choice ablation.
enum class EdgeAgg {
  kAverage,        // (h_u + h_v) / 2            [paper default]
  kHadamard,       // h_u o h_v
  kWeightedL1,     // |h_u - h_v|
  kWeightedL2,     // (h_u - h_v)^2
  kActivation,     // tanh(h_u + h_v)
  kConcatenation,  // h_u ++ h_v   (doubles the edge embedding width)
};

// How the global extractor's GRU hidden-state sequence becomes the graph
// embedding (Sec. IV-C).
enum class ExtractorReadout {
  // The paper's choice: the hidden state after the last edge. Gradients
  // must flow through the whole sequence, which trains slowly on long edge
  // sequences at small dataset scale.
  kLastState,
  // Mean of the hidden states over all steps. Still order-sensitive (each
  // state depends on the prefix order) but with direct gradient paths to
  // every step; the default for this repository's small-scale experiments
  // (documented in DESIGN.md / EXPERIMENTS.md).
  kMeanState,
};

// Sequence model of the global temporal embedding extractor. The paper uses
// a GRU and proposes a Transformer for large dynamic graphs (Sec. IV-C /
// future work); both are implemented.
enum class GlobalModule {
  kGru,
  kTransformer,
};

// Basis of the time-coupled propagation state (DESIGN.md §4.3 "Time
// renormalization algebra").
//
// kAbsolute (the paper-literal formulation): every Time2Vec argument is the
// absolute timestamp, normalized by the graph's max time when
// normalize_time is set. The folded per-session state then depends on the
// *final* max timestamp, so online serving must re-fold time-coupled state
// from scratch whenever a new edge raises the session max (the
// `state_refolds` cost; O(session length) per score).
//
// kInvariant (the serving-friendly re-basing): the folded state is carried
// in a max-time-invariant basis and the max-time coupling is applied as a
// bounded algebraic correction at readout —
//   * SUM M-hat is accumulated as raw-time sums [Σt, count] for the linear
//     Time2Vec channel plus phasor pairs [Σ sin(w t + φ), Σ cos(w t + φ)]
//     for the periodic channels; FinalizeState rescales the linear channel
//     by time_scale/max_time and rotates the phasors by w·max_time
//     (exactly Σ sin(w (t − max_time) + φ)), both exact identities.
//   * The GRU's Time2Vec argument becomes the inter-event gap t_i − t_{i−1}
//     (session-chronological), which never changes once folded, so the GRU
//     state needs no correction at all.
// A max-time move is then absorbed in O(nodes · time_dim) at score time
// (counted as `state_rescales`) instead of an O(edges) replay; refolds
// remain only for genuinely out-of-order arrivals. The two bases are
// different (equally valid) models: parameters are shape-compatible, but a
// network trained in one basis should be served in the same basis — the
// checkpoint metadata records it.
enum class TimeBasis {
  kAbsolute,
  kInvariant,
};

// Ablation variants of Sec. V-F. kFull is the complete model.
enum class Variant {
  kFull = 0,
  kRand,      // Random aggregation, no time encoding, mean pooling.
  kWithoutTem,  // No temporal propagation; extractor over raw embeddings.
  kTemp,      // Propagation without the time embedding f(t); mean pooling.
  kTime2Vec,  // Propagation with f(t); mean pooling (no global extractor).
};

struct TpGnnConfig {
  Updater updater = Updater::kSum;
  Variant variant = Variant::kFull;

  int64_t feature_dim = 3;  // q: raw node feature width.
  int64_t embed_dim = 32;   // Node feature embedding width (Eq. 1).
  int64_t time_dim = 6;     // d_t: Time2Vec width (default per Sec. V-D).
  int64_t hidden_dim = 32;  // d: global extractor GRU hidden size.

  // Shuffle equal-timestamp edges during training (Sec. V-D).
  bool shuffle_tied_edges = true;

  // Readout of the global temporal embedding extractor.
  ExtractorReadout extractor_readout = ExtractorReadout::kMeanState;

  // Edge aggregation of the global temporal embedding extractor.
  EdgeAgg edge_agg = EdgeAgg::kAverage;

  // Sequence model of the global extractor (GRU default; Transformer is the
  // paper's large-graph extension).
  GlobalModule global_module = GlobalModule::kGru;
  int64_t transformer_heads = 2;

  // Normalize timestamps to [0, time_scale] per graph before encoding; keeps
  // the linear Time2Vec channel in tanh's active range for long sessions.
  bool normalize_time = true;
  double time_scale = 10.0;

  // Basis of the time-coupled folded state (see TimeBasis above). kAbsolute
  // preserves the original formulation bit-for-bit; kInvariant makes the
  // fold max-time-invariant so online serving scores in O(1) per event.
  TimeBasis time_basis = TimeBasis::kAbsolute;

  // Bounded SUM updates: Eq. (3)/(4) accumulate raw sums, which grow
  // multiplicatively with temporal path counts and saturate the final tanh
  // on dense graphs (Brightkite-scale, ~190 edges). When set, each SUM-step
  // result passes through tanh, keeping magnitudes bounded while preserving
  // the influential-node property (tanh is strictly monotone). Disable for
  // the paper-literal recurrence.
  bool stabilize_sum = true;

  // Derived switches (resolved from `variant`).
  bool use_temporal_propagation() const {
    return variant != Variant::kWithoutTem;
  }
  bool use_time_encoding() const {
    return variant == Variant::kFull || variant == Variant::kTime2Vec ||
           variant == Variant::kWithoutTem;
  }
  bool use_global_extractor() const {
    return variant == Variant::kFull || variant == Variant::kWithoutTem;
  }
  bool random_edge_order() const { return variant == Variant::kRand; }

  std::string ModelName() const;
};

// Checkpoint metadata block (nn/checkpoint.h version 2) describing a
// config: every field that determines parameter shapes or inference-time
// behaviour is recorded, so a consumer can reject a mismatched snapshot
// before touching the parameter payload.
nn::CheckpointMetadata ConfigMetadata(const TpGnnConfig& config);

// Verifies a snapshot's metadata block against `config`. An empty map (a
// version-1 checkpoint) passes; any recognized key whose value differs from
// `config` fails with FailedPrecondition naming the key and both values.
Status ValidateConfigMetadata(const TpGnnConfig& config,
                              const nn::CheckpointMetadata& metadata);

}  // namespace tpgnn::core

#endif  // TPGNN_CORE_CONFIG_H_
