#include "core/config.h"

namespace tpgnn::core {

std::string TpGnnConfig::ModelName() const {
  std::string name =
      updater == Updater::kSum ? "TP-GNN-SUM" : "TP-GNN-GRU";
  switch (variant) {
    case Variant::kFull:
      break;
    case Variant::kRand:
      name += " (rand)";
      break;
    case Variant::kWithoutTem:
      name += " (w/o tem)";
      break;
    case Variant::kTemp:
      name += " (temp)";
      break;
    case Variant::kTime2Vec:
      name += " (time2Vec)";
      break;
  }
  if (global_module == GlobalModule::kTransformer) {
    name += " (transformer)";
  }
  return name;
}

}  // namespace tpgnn::core
