#include "core/config.h"

#include <sstream>

namespace tpgnn::core {

namespace {

const char* UpdaterName(Updater u) {
  return u == Updater::kSum ? "sum" : "gru";
}

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kFull:
      return "full";
    case Variant::kRand:
      return "rand";
    case Variant::kWithoutTem:
      return "without_tem";
    case Variant::kTemp:
      return "temp";
    case Variant::kTime2Vec:
      return "time2vec";
  }
  return "unknown";
}

const char* ReadoutName(ExtractorReadout r) {
  return r == ExtractorReadout::kLastState ? "last_state" : "mean_state";
}

const char* EdgeAggName(EdgeAgg a) {
  switch (a) {
    case EdgeAgg::kAverage:
      return "average";
    case EdgeAgg::kHadamard:
      return "hadamard";
    case EdgeAgg::kWeightedL1:
      return "weighted_l1";
    case EdgeAgg::kWeightedL2:
      return "weighted_l2";
    case EdgeAgg::kActivation:
      return "activation";
    case EdgeAgg::kConcatenation:
      return "concatenation";
  }
  return "unknown";
}

const char* GlobalModuleName(GlobalModule m) {
  return m == GlobalModule::kTransformer ? "transformer" : "gru";
}

const char* TimeBasisName(TimeBasis b) {
  return b == TimeBasis::kInvariant ? "invariant" : "absolute";
}

}  // namespace

std::string TpGnnConfig::ModelName() const {
  std::string name =
      updater == Updater::kSum ? "TP-GNN-SUM" : "TP-GNN-GRU";
  switch (variant) {
    case Variant::kFull:
      break;
    case Variant::kRand:
      name += " (rand)";
      break;
    case Variant::kWithoutTem:
      name += " (w/o tem)";
      break;
    case Variant::kTemp:
      name += " (temp)";
      break;
    case Variant::kTime2Vec:
      name += " (time2Vec)";
      break;
  }
  if (global_module == GlobalModule::kTransformer) {
    name += " (transformer)";
  }
  if (time_basis == TimeBasis::kInvariant) {
    name += " (invariant-time)";
  }
  return name;
}

nn::CheckpointMetadata ConfigMetadata(const TpGnnConfig& config) {
  auto formatted = [](double v) {
    std::ostringstream os;
    os << v;
    return os.str();
  };
  nn::CheckpointMetadata meta;
  meta["model"] = "tp-gnn";
  meta["updater"] = UpdaterName(config.updater);
  meta["variant"] = VariantName(config.variant);
  meta["feature_dim"] = std::to_string(config.feature_dim);
  meta["embed_dim"] = std::to_string(config.embed_dim);
  meta["time_dim"] = std::to_string(config.time_dim);
  meta["hidden_dim"] = std::to_string(config.hidden_dim);
  meta["extractor_readout"] = ReadoutName(config.extractor_readout);
  meta["edge_agg"] = EdgeAggName(config.edge_agg);
  meta["global_module"] = GlobalModuleName(config.global_module);
  meta["transformer_heads"] = std::to_string(config.transformer_heads);
  meta["normalize_time"] = config.normalize_time ? "1" : "0";
  meta["time_scale"] = formatted(config.time_scale);
  meta["stabilize_sum"] = config.stabilize_sum ? "1" : "0";
  meta["time_basis"] = TimeBasisName(config.time_basis);
  return meta;
}

Status ValidateConfigMetadata(const TpGnnConfig& config,
                              const nn::CheckpointMetadata& metadata) {
  if (metadata.empty()) {
    return Status::Ok();  // Version-1 snapshot: nothing to check.
  }
  const nn::CheckpointMetadata expected = ConfigMetadata(config);
  for (const auto& [key, want] : expected) {
    auto it = metadata.find(key);
    if (it == metadata.end()) {
      continue;  // Older producer without this key; shapes still verified.
    }
    if (it->second != want) {
      return Status::FailedPrecondition(
          "snapshot config mismatch: " + key + " snapshot='" + it->second +
          "' expected='" + want + "'");
    }
  }
  return Status::Ok();
}

}  // namespace tpgnn::core
