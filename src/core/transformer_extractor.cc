#include "core/transformer_extractor.h"

#include <cmath>

#include "core/global_extractor.h"
#include "graph/pooling.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::core {

using tensor::Add;
using tensor::Concat;
using tensor::IndexSelect;
using tensor::Relu;
using tensor::Reshape;
using tensor::Row;
using tensor::Tensor;

TransformerGlobalExtractor::TransformerGlobalExtractor(int64_t node_dim,
                                                       int64_t hidden_dim,
                                                       int64_t num_heads,
                                                       Rng& rng,
                                                       EdgeAgg edge_agg)
    : node_dim_(node_dim),
      edge_dim_(EdgeAggOutputDim(edge_agg, node_dim)),
      hidden_dim_(hidden_dim),
      edge_agg_(edge_agg) {
  TPGNN_CHECK_EQ(hidden_dim % num_heads, 0);
  input_proj_ = std::make_unique<nn::Linear>(edge_dim_, hidden_dim_, rng);
  RegisterChild("input_proj", input_proj_.get());
  attention_ =
      std::make_unique<nn::MultiheadAttention>(hidden_dim_, num_heads, rng);
  RegisterChild("attention", attention_.get());
  ffn1_ = std::make_unique<nn::Linear>(hidden_dim_, 2 * hidden_dim_, rng);
  RegisterChild("ffn1", ffn1_.get());
  ffn2_ = std::make_unique<nn::Linear>(2 * hidden_dim_, hidden_dim_, rng);
  RegisterChild("ffn2", ffn2_.get());
}

Tensor TransformerGlobalExtractor::PositionalEncoding(int64_t pos) const {
  std::vector<float> enc(static_cast<size_t>(hidden_dim_));
  for (int64_t i = 0; i < hidden_dim_; ++i) {
    const double rate =
        std::pow(10000.0, -static_cast<double>(i / 2 * 2) /
                              static_cast<double>(hidden_dim_));
    const double angle = static_cast<double>(pos) * rate;
    enc[static_cast<size_t>(i)] = static_cast<float>(
        (i % 2 == 0) ? std::sin(angle) : std::cos(angle));
  }
  return Tensor::FromVector({1, hidden_dim_}, std::move(enc));
}

Tensor TransformerGlobalExtractor::Forward(
    const Tensor& node_embeddings,
    const std::vector<graph::TemporalEdge>& edge_order) const {
  TPGNN_CHECK_EQ(node_embeddings.dim(), 2);
  TPGNN_CHECK_EQ(node_embeddings.size(1), node_dim_);
  if (edge_order.empty()) {
    return Tensor::Zeros({hidden_dim_});
  }

  std::vector<Tensor> tokens;
  tokens.reserve(edge_order.size());
  int64_t pos = 0;
  for (const graph::TemporalEdge& e : edge_order) {
    Tensor endpoints = IndexSelect(node_embeddings, {e.src, e.dst});
    Tensor edge_embedding =
        Reshape(AggregateEdge(edge_agg_, Row(endpoints, 0),
                              Row(endpoints, 1)),
                {1, edge_dim_});
    Tensor token =
        Add(input_proj_->Forward(edge_embedding), PositionalEncoding(pos));
    tokens.push_back(token);
    ++pos;
  }
  Tensor sequence = Concat(tokens, /*axis=*/0);  // [m, d]
  Tensor attended = attention_->Forward(sequence, sequence, sequence);
  Tensor residual1 = Add(sequence, attended);
  Tensor transformed = ffn2_->Forward(Relu(ffn1_->Forward(residual1)));
  Tensor residual2 = Add(residual1, transformed);
  return graph::MeanPool(residual2);
}

}  // namespace tpgnn::core
