#include "core/global_extractor.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::core {

using tensor::Add;
using tensor::ConstRowSpan;
using tensor::GatherRows;
using tensor::Reshape;
using tensor::RowSpanOf;
using tensor::Scale;
using tensor::Tensor;

Tensor AggregateEdge(EdgeAgg agg, const Tensor& h_u, const Tensor& h_v) {
  switch (agg) {
    case EdgeAgg::kAverage:
      return Scale(Add(h_u, h_v), 0.5f);
    case EdgeAgg::kHadamard:
      return tensor::Mul(h_u, h_v);
    case EdgeAgg::kWeightedL1: {
      Tensor diff = tensor::Sub(h_u, h_v);
      // |x| = relu(x) + relu(-x) keeps the expression differentiable a.e.
      return Add(tensor::Relu(diff), tensor::Relu(tensor::Neg(diff)));
    }
    case EdgeAgg::kWeightedL2: {
      Tensor diff = tensor::Sub(h_u, h_v);
      return tensor::Mul(diff, diff);
    }
    case EdgeAgg::kActivation:
      return tensor::Tanh(Add(h_u, h_v));
    case EdgeAgg::kConcatenation:
      // Vectors concatenate along axis 0; batched [m, k] endpoint matrices
      // concatenate per row (axis 1). Elementwise aggregations above work on
      // either rank unchanged.
      return tensor::Concat({h_u, h_v}, /*axis=*/h_u.dim() == 2 ? 1 : 0);
  }
  TPGNN_CHECK(false) << "unreachable";
  return h_u;
}

int64_t EdgeAggOutputDim(EdgeAgg agg, int64_t node_dim) {
  return agg == EdgeAgg::kConcatenation ? 2 * node_dim : node_dim;
}

namespace {

// Raw counterpart of AggregateEdge for the zero-copy inference path: writes
// the edge embedding for endpoint rows `u` and `v` (each `k` wide) into
// `out`. Mirrors the tensor ops' elementwise expressions exactly so the
// values match the recorded path bitwise.
void AggregateEdgeInto(EdgeAgg agg, const float* u, const float* v, int64_t k,
                       float* out) {
  switch (agg) {
    case EdgeAgg::kAverage:
      for (int64_t i = 0; i < k; ++i) out[i] = (u[i] + v[i]) * 0.5f;
      return;
    case EdgeAgg::kHadamard:
      for (int64_t i = 0; i < k; ++i) out[i] = u[i] * v[i];
      return;
    case EdgeAgg::kWeightedL1:
      for (int64_t i = 0; i < k; ++i) {
        const float diff = u[i] - v[i];
        const float neg = -diff;
        out[i] = (diff > 0.0f ? diff : 0.0f) + (neg > 0.0f ? neg : 0.0f);
      }
      return;
    case EdgeAgg::kWeightedL2:
      for (int64_t i = 0; i < k; ++i) {
        const float diff = u[i] - v[i];
        out[i] = diff * diff;
      }
      return;
    case EdgeAgg::kActivation:
      for (int64_t i = 0; i < k; ++i) out[i] = std::tanh(u[i] + v[i]);
      return;
    case EdgeAgg::kConcatenation:
      for (int64_t i = 0; i < k; ++i) out[i] = u[i];
      for (int64_t i = 0; i < k; ++i) out[k + i] = v[i];
      return;
  }
  TPGNN_CHECK(false) << "unreachable";
}

}  // namespace

GlobalTemporalExtractor::GlobalTemporalExtractor(int64_t node_dim,
                                                 int64_t hidden_dim, Rng& rng,
                                                 ExtractorReadout readout,
                                                 EdgeAgg edge_agg)
    : node_dim_(node_dim),
      edge_dim_(EdgeAggOutputDim(edge_agg, node_dim)),
      hidden_dim_(hidden_dim),
      readout_(readout),
      edge_agg_(edge_agg),
      gru_(edge_dim_, hidden_dim, rng) {
  RegisterChild("gru", &gru_);
}

Tensor GlobalTemporalExtractor::Forward(
    const Tensor& node_embeddings,
    const std::vector<graph::TemporalEdge>& edge_order) const {
  TPGNN_CHECK_EQ(node_embeddings.dim(), 2);
  TPGNN_CHECK_EQ(node_embeddings.size(1), node_dim_);

  if (!tensor::GradEnabled()) {
    return ForwardInference(node_embeddings, edge_order);
  }

  const int64_t m = static_cast<int64_t>(edge_order.size());
  Tensor state = Tensor::Zeros({1, hidden_dim_});
  if (m == 0) {
    return Reshape(state, {hidden_dim_});
  }

  // Hoist the per-edge endpoint lookups into two gathers and aggregate all
  // edge embeddings at matrix level; per-row values are identical to the old
  // per-edge Row/AggregateEdge chain, at O(1) recorded ops instead of O(m).
  std::vector<int64_t> srcs(static_cast<size_t>(m));
  std::vector<int64_t> dsts(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    srcs[static_cast<size_t>(i)] = edge_order[static_cast<size_t>(i)].src;
    dsts[static_cast<size_t>(i)] = edge_order[static_cast<size_t>(i)].dst;
  }
  Tensor hu = GatherRows(node_embeddings, srcs);        // [m, k]
  Tensor hv = GatherRows(node_embeddings, dsts);        // [m, k]
  Tensor edges = AggregateEdge(edge_agg_, hu, hv);      // [m, edge_dim]

  std::vector<Tensor> states;
  states.reserve(edge_order.size());
  for (int64_t i = 0; i < m; ++i) {
    Tensor edge_embedding = GatherRows(edges, {i});     // [1, edge_dim]
    // Eqs. (7)-(10): one GRU step per edge in establishment order.
    state = gru_.Forward(edge_embedding, state);
    states.push_back(state);
  }
  if (readout_ == ExtractorReadout::kLastState) {
    return Reshape(state, {hidden_dim_});
  }
  Tensor stacked = tensor::Concat(states, /*axis=*/0);  // [m, d]
  return tensor::MeanAxis(stacked, /*axis=*/0);
}

Tensor GlobalTemporalExtractor::ForwardInference(
    const Tensor& node_embeddings,
    const std::vector<graph::TemporalEdge>& edge_order) const {
  // Zero-copy path: the GRU state, the staged edge embedding, and the mean
  // accumulator live in flat buffers; no tensors are created per edge. The
  // accumulation order matches Concat + SumAxis(0) + Scale, so the readout
  // is bit-identical to the recorded path.
  std::vector<float> state(static_cast<size_t>(hidden_dim_), 0.0f);
  if (edge_order.empty()) {
    return Tensor::FromVector({hidden_dim_}, std::move(state));
  }
  std::vector<float> edge_emb(static_cast<size_t>(edge_dim_));
  std::vector<float> acc(static_cast<size_t>(hidden_dim_), 0.0f);
  nn::GruScratch scratch;
  for (const graph::TemporalEdge& e : edge_order) {
    ConstRowSpan u = RowSpanOf(node_embeddings, e.src);
    ConstRowSpan v = RowSpanOf(node_embeddings, e.dst);
    AggregateEdgeInto(edge_agg_, u.data, v.data, node_dim_, edge_emb.data());
    gru_.StepInto(edge_emb.data(), state.data(), state.data(), scratch);
    if (readout_ == ExtractorReadout::kMeanState) {
      for (int64_t j = 0; j < hidden_dim_; ++j) {
        acc[static_cast<size_t>(j)] += state[static_cast<size_t>(j)];
      }
    }
  }
  if (readout_ == ExtractorReadout::kLastState) {
    return Tensor::FromVector({hidden_dim_}, std::move(state));
  }
  const float inv =
      1.0f / static_cast<float>(static_cast<int64_t>(edge_order.size()));
  for (float& a : acc) a *= inv;
  return Tensor::FromVector({hidden_dim_}, std::move(acc));
}

}  // namespace tpgnn::core
