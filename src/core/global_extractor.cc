#include "core/global_extractor.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::core {

using tensor::Add;
using tensor::IndexSelect;
using tensor::Reshape;
using tensor::Scale;
using tensor::Tensor;

Tensor AggregateEdge(EdgeAgg agg, const Tensor& h_u, const Tensor& h_v) {
  switch (agg) {
    case EdgeAgg::kAverage:
      return Scale(Add(h_u, h_v), 0.5f);
    case EdgeAgg::kHadamard:
      return tensor::Mul(h_u, h_v);
    case EdgeAgg::kWeightedL1: {
      Tensor diff = tensor::Sub(h_u, h_v);
      // |x| = relu(x) + relu(-x) keeps the expression differentiable a.e.
      return Add(tensor::Relu(diff), tensor::Relu(tensor::Neg(diff)));
    }
    case EdgeAgg::kWeightedL2: {
      Tensor diff = tensor::Sub(h_u, h_v);
      return tensor::Mul(diff, diff);
    }
    case EdgeAgg::kActivation:
      return tensor::Tanh(Add(h_u, h_v));
    case EdgeAgg::kConcatenation:
      return tensor::Concat({h_u, h_v}, /*axis=*/0);
  }
  TPGNN_CHECK(false) << "unreachable";
  return h_u;
}

int64_t EdgeAggOutputDim(EdgeAgg agg, int64_t node_dim) {
  return agg == EdgeAgg::kConcatenation ? 2 * node_dim : node_dim;
}

GlobalTemporalExtractor::GlobalTemporalExtractor(int64_t node_dim,
                                                 int64_t hidden_dim, Rng& rng,
                                                 ExtractorReadout readout,
                                                 EdgeAgg edge_agg)
    : node_dim_(node_dim),
      edge_dim_(EdgeAggOutputDim(edge_agg, node_dim)),
      hidden_dim_(hidden_dim),
      readout_(readout),
      edge_agg_(edge_agg),
      gru_(edge_dim_, hidden_dim, rng) {
  RegisterChild("gru", &gru_);
}

Tensor GlobalTemporalExtractor::Forward(
    const Tensor& node_embeddings,
    const std::vector<graph::TemporalEdge>& edge_order) const {
  TPGNN_CHECK_EQ(node_embeddings.dim(), 2);
  TPGNN_CHECK_EQ(node_embeddings.size(1), node_dim_);

  Tensor state = Tensor::Zeros({1, hidden_dim_});
  std::vector<Tensor> states;
  states.reserve(edge_order.size());
  for (const graph::TemporalEdge& e : edge_order) {
    Tensor endpoints = IndexSelect(node_embeddings, {e.src, e.dst});
    Tensor edge_embedding =
        Reshape(AggregateEdge(edge_agg_, tensor::Row(endpoints, 0),
                              tensor::Row(endpoints, 1)),
                {1, edge_dim_});
    // Eqs. (7)-(10): one GRU step per edge in establishment order.
    state = gru_.Forward(edge_embedding, state);
    states.push_back(state);
  }
  if (readout_ == ExtractorReadout::kLastState || states.empty()) {
    return Reshape(state, {hidden_dim_});
  }
  Tensor stacked = tensor::Concat(states, /*axis=*/0);  // [m, d]
  return tensor::MeanAxis(stacked, /*axis=*/0);
}

}  // namespace tpgnn::core
