#include "core/model.h"

#include "graph/pooling.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::core {

using tensor::Reshape;
using tensor::Tensor;

TpGnnModel::TpGnnModel(const TpGnnConfig& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      propagation_(config_, rng_),
      classifier_(config_.use_global_extractor() ? config_.hidden_dim
                                                 : propagation_.output_dim(),
                  1, rng_) {
  RegisterChild("propagation", &propagation_);
  if (config_.use_global_extractor()) {
    if (config_.global_module == GlobalModule::kTransformer) {
      transformer_ = std::make_unique<TransformerGlobalExtractor>(
          propagation_.output_dim(), config_.hidden_dim,
          config_.transformer_heads, rng_, config_.edge_agg);
      RegisterChild("extractor", transformer_.get());
    } else {
      extractor_ = std::make_unique<GlobalTemporalExtractor>(
          propagation_.output_dim(), config_.hidden_dim, rng_,
          config_.extractor_readout, config_.edge_agg);
      RegisterChild("extractor", extractor_.get());
    }
  }
  RegisterChild("classifier", &classifier_);
}

std::vector<graph::TemporalEdge> TpGnnModel::EdgeOrder(
    const graph::TemporalGraph& graph, bool training, Rng& rng) const {
  if (config_.random_edge_order()) {
    // rand variant: aggregation order carries no temporal meaning.
    std::vector<graph::TemporalEdge> order = graph.edges();
    rng.Shuffle(order);
    return order;
  }
  if (training && config_.shuffle_tied_edges) {
    return graph.ChronologicalEdgesShuffled(rng);
  }
  return graph.ChronologicalEdges();
}

Tensor TpGnnModel::EmbedWithOrder(
    const graph::TemporalGraph& graph,
    const std::vector<graph::TemporalEdge>& order) const {
  return EmbedFromNodeStates(propagation_.Forward(graph, order), order);
}

Tensor TpGnnModel::EmbedFromNodeStates(
    const Tensor& h, const std::vector<graph::TemporalEdge>& order) const {
  if (transformer_ != nullptr) {
    return transformer_->Forward(h, order);
  }
  if (extractor_ != nullptr) {
    return extractor_->Forward(h, order);
  }
  return graph::MeanPool(h);
}

Tensor TpGnnModel::ClassifyEmbedding(const Tensor& g) const {
  // Eq. (11): fully connected head; the sigmoid lives in the loss/decision.
  Tensor logit = classifier_.Forward(Reshape(g, {1, g.numel()}));
  return Reshape(logit, {1});
}

Tensor TpGnnModel::Embed(const graph::TemporalGraph& graph) const {
  return EmbedWithOrder(graph, graph.ChronologicalEdges());
}

Tensor TpGnnModel::ForwardLogit(const graph::TemporalGraph& graph,
                                bool training, Rng& rng) {
  const std::vector<graph::TemporalEdge> order =
      EdgeOrder(graph, training, rng);
  return ClassifyEmbedding(EmbedWithOrder(graph, order));
}

std::vector<Tensor> TpGnnModel::TrainableParameters() { return Parameters(); }

std::string TpGnnModel::name() const { return config_.ModelName(); }

}  // namespace tpgnn::core
