#ifndef TPGNN_CORE_TRANSFORMER_EXTRACTOR_H_
#define TPGNN_CORE_TRANSFORMER_EXTRACTOR_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "graph/temporal_graph.h"
#include "nn/attention.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Transformer-based global temporal embedding extractor — the extension the
// paper proposes for large dynamic graphs (Sec. IV-C: "GRU can be replaced
// by other sequential models ... one can choose Transformer for large
// dynamic graphs to capture longer dependencies", and Sec. VI future work).
//
// Edge embeddings (EdgeAgg over the endpoint embeddings) are projected to
// the model width, a fixed sinusoidal encoding of the *establishment
// position* is added (injecting the edge order the paper cares about), one
// pre-norm-free encoder block (multi-head self-attention + residual + FFN +
// residual) mixes the sequence, and mean pooling over the edge tokens yields
// the graph embedding.

namespace tpgnn::core {

class TransformerGlobalExtractor : public nn::Module {
 public:
  TransformerGlobalExtractor(int64_t node_dim, int64_t hidden_dim,
                             int64_t num_heads, Rng& rng,
                             EdgeAgg edge_agg = EdgeAgg::kAverage);

  // `node_embeddings`: [n, node_dim]; returns the graph embedding
  // [hidden_dim] (zeros for an edgeless graph).
  tensor::Tensor Forward(
      const tensor::Tensor& node_embeddings,
      const std::vector<graph::TemporalEdge>& edge_order) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  // Sinusoidal positional encoding for sequence position `pos` -> [1, d].
  tensor::Tensor PositionalEncoding(int64_t pos) const;

  int64_t node_dim_;
  int64_t edge_dim_;
  int64_t hidden_dim_;
  EdgeAgg edge_agg_;
  std::unique_ptr<nn::Linear> input_proj_;
  std::unique_ptr<nn::MultiheadAttention> attention_;
  std::unique_ptr<nn::Linear> ffn1_;
  std::unique_ptr<nn::Linear> ffn2_;
};

}  // namespace tpgnn::core

#endif  // TPGNN_CORE_TRANSFORMER_EXTRACTOR_H_
