#ifndef TPGNN_CORE_MODEL_H_
#define TPGNN_CORE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/global_extractor.h"
#include "core/temporal_propagation.h"
#include "core/transformer_extractor.h"
#include "eval/classifier.h"
#include "graph/temporal_graph.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// End-to-end TP-GNN (Fig. 2): temporal propagation -> global temporal
// embedding extractor (or mean pooling for ablation variants) -> fully
// connected classifier (Eq. 11). Implements the GraphClassifier interface
// shared with the baselines.

namespace tpgnn::core {

class TpGnnModel : public nn::Module, public eval::GraphClassifier {
 public:
  TpGnnModel(const TpGnnConfig& config, uint64_t seed);

  // eval::GraphClassifier:
  tensor::Tensor ForwardLogit(const graph::TemporalGraph& graph, bool training,
                              Rng& rng) override;
  std::vector<tensor::Tensor> TrainableParameters() override;
  std::string name() const override;

  // Graph embedding g (Definition 2) without the classifier head. Uses the
  // deterministic chronological edge order.
  tensor::Tensor Embed(const graph::TemporalGraph& graph) const;

  // --- Staged entry points (online serving, serve/) -----------------------
  // ForwardLogit is EmbedFromNodeStates(propagation.Forward(...), order)
  // followed by ClassifyEmbedding; exposing the stages lets an incremental
  // engine substitute its own folded node-state matrix for the propagation
  // stage while reusing the extractor and classifier verbatim.

  // Extractor stage: node-state matrix `h` (the propagation output) ->
  // graph embedding over `order`.
  tensor::Tensor EmbedFromNodeStates(
      const tensor::Tensor& h,
      const std::vector<graph::TemporalEdge>& order) const;

  // Classifier head (Eq. 11): graph embedding -> scalar logit [1].
  tensor::Tensor ClassifyEmbedding(const tensor::Tensor& g) const;

  const TemporalPropagation& propagation() const { return propagation_; }

  const TpGnnConfig& config() const { return config_; }

 private:
  std::vector<graph::TemporalEdge> EdgeOrder(const graph::TemporalGraph& graph,
                                             bool training, Rng& rng) const;
  tensor::Tensor EmbedWithOrder(
      const graph::TemporalGraph& graph,
      const std::vector<graph::TemporalEdge>& order) const;

  TpGnnConfig config_;
  Rng rng_;  // Initialization-time randomness; declared before the layers.
  TemporalPropagation propagation_;
  std::unique_ptr<GlobalTemporalExtractor> extractor_;
  std::unique_ptr<TransformerGlobalExtractor> transformer_;
  nn::Linear classifier_;
};

}  // namespace tpgnn::core

#endif  // TPGNN_CORE_MODEL_H_
