#ifndef TPGNN_CORE_MODEL_H_
#define TPGNN_CORE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/global_extractor.h"
#include "core/temporal_propagation.h"
#include "core/transformer_extractor.h"
#include "eval/classifier.h"
#include "graph/temporal_graph.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// End-to-end TP-GNN (Fig. 2): temporal propagation -> global temporal
// embedding extractor (or mean pooling for ablation variants) -> fully
// connected classifier (Eq. 11). Implements the GraphClassifier interface
// shared with the baselines.

namespace tpgnn::core {

class TpGnnModel : public nn::Module, public eval::GraphClassifier {
 public:
  TpGnnModel(const TpGnnConfig& config, uint64_t seed);

  // eval::GraphClassifier:
  tensor::Tensor ForwardLogit(const graph::TemporalGraph& graph, bool training,
                              Rng& rng) override;
  std::vector<tensor::Tensor> TrainableParameters() override;
  std::string name() const override;

  // Graph embedding g (Definition 2) without the classifier head. Uses the
  // deterministic chronological edge order.
  tensor::Tensor Embed(const graph::TemporalGraph& graph) const;

  const TpGnnConfig& config() const { return config_; }

 private:
  std::vector<graph::TemporalEdge> EdgeOrder(const graph::TemporalGraph& graph,
                                             bool training, Rng& rng) const;
  tensor::Tensor EmbedWithOrder(
      const graph::TemporalGraph& graph,
      const std::vector<graph::TemporalEdge>& order) const;

  TpGnnConfig config_;
  Rng rng_;  // Initialization-time randomness; declared before the layers.
  TemporalPropagation propagation_;
  std::unique_ptr<GlobalTemporalExtractor> extractor_;
  std::unique_ptr<TransformerGlobalExtractor> transformer_;
  nn::Linear classifier_;
};

}  // namespace tpgnn::core

#endif  // TPGNN_CORE_MODEL_H_
