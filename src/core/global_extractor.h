#ifndef TPGNN_CORE_GLOBAL_EXTRACTOR_H_
#define TPGNN_CORE_GLOBAL_EXTRACTOR_H_

#include <vector>

#include "core/config.h"
#include "graph/temporal_graph.h"
#include "nn/gru_cell.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Global temporal embedding extractor (Sec. IV-C): converts node embeddings
// into edge embeddings via the Average EdgeAgg and runs a GRU over the edges
// in establishment order (Eqs. 7-10); the final hidden state is the graph
// embedding g.

namespace tpgnn::core {

// Combines the two endpoint embeddings ([k] each) into the edge embedding
// ([k], or [2k] for kConcatenation).
tensor::Tensor AggregateEdge(EdgeAgg agg, const tensor::Tensor& h_u,
                             const tensor::Tensor& h_v);

// Width of the aggregated edge embedding for node embeddings of width k.
int64_t EdgeAggOutputDim(EdgeAgg agg, int64_t node_dim);

class GlobalTemporalExtractor : public nn::Module {
 public:
  // `node_dim` is the node embedding width k; `hidden_dim` is the GRU
  // hidden size d.
  GlobalTemporalExtractor(int64_t node_dim, int64_t hidden_dim, Rng& rng,
                          ExtractorReadout readout =
                              ExtractorReadout::kMeanState,
                          EdgeAgg edge_agg = EdgeAgg::kAverage);

  // `node_embeddings`: [n, node_dim] matrix H from temporal propagation.
  // `edge_order`: chronological edge list. Returns the graph embedding [
  // hidden_dim]; for an edgeless graph this is the zero initial state.
  tensor::Tensor Forward(
      const tensor::Tensor& node_embeddings,
      const std::vector<graph::TemporalEdge>& edge_order) const;

  int64_t hidden_dim() const { return hidden_dim_; }
  EdgeAgg edge_agg() const { return edge_agg_; }

 private:
  // Allocation-free GRU sweep used when gradients are disabled; runs the
  // same kernels as the recorded path (GruCell::StepInto), so the returned
  // embedding is bit-identical to Forward.
  tensor::Tensor ForwardInference(
      const tensor::Tensor& node_embeddings,
      const std::vector<graph::TemporalEdge>& edge_order) const;

  int64_t node_dim_;
  int64_t edge_dim_;
  int64_t hidden_dim_;
  ExtractorReadout readout_;
  EdgeAgg edge_agg_;
  nn::GruCell gru_;
};

}  // namespace tpgnn::core

#endif  // TPGNN_CORE_GLOBAL_EXTRACTOR_H_
