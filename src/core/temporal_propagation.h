#ifndef TPGNN_CORE_TEMPORAL_PROPAGATION_H_
#define TPGNN_CORE_TEMPORAL_PROPAGATION_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "graph/temporal_graph.h"
#include "nn/gru_cell.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/time_encoding.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Temporal propagation (Sec. IV-B, Algorithm 1): the paper's message-passing
// mechanism. Edges are consumed in chronological order; each edge (u, v, t)
// pushes the source's current state into the target, so a node's final
// embedding aggregates exactly its influential nodes (Definition 4,
// Theorem 1).

namespace tpgnn::core {

class TemporalPropagation : public nn::Module {
 public:
  TemporalPropagation(const TpGnnConfig& config, Rng& rng);

  // Runs Algorithm 1 over `edge_order` (must be the chronological order, or
  // the shuffled-ties order during training) and returns the local node
  // embedding matrix H:
  //   SUM updater: [n, embed_dim + time_dim] (Eq. 5; time block absent when
  //                the variant disables f(t)),
  //   GRU updater: [n, embed_dim].
  tensor::Tensor Forward(
      const graph::TemporalGraph& graph,
      const std::vector<graph::TemporalEdge>& edge_order) const;

  // Width of the returned embedding rows.
  int64_t output_dim() const;

  const TpGnnConfig& config() const { return config_; }

 private:
  // Allocation-free propagation used when gradients are disabled: node state
  // is mutated in place through zero-copy row views (tensor/tensor.h),
  // running the same kernels as the recorded path so results are
  // bit-identical to Forward. `x` is the freshly embedded [n, embed_dim]
  // matrix, consumed as the initial state.
  tensor::Tensor ForwardInference(
      tensor::Tensor x, const std::vector<graph::TemporalEdge>& edge_order,
      double max_time) const;

  TpGnnConfig config_;
  nn::Linear embed_;                      // Eq. (1).
  std::unique_ptr<nn::Time2Vec> time_;    // Eq. (2); null if disabled.
  std::unique_ptr<nn::GruCell> updater_;  // Eq. (6); null for SUM.
};

// Normalizes edge timestamps to [0, config.time_scale] when
// config.normalize_time is set; identity otherwise.
double NormalizeTime(const TpGnnConfig& config, double t, double max_time);

}  // namespace tpgnn::core

#endif  // TPGNN_CORE_TEMPORAL_PROPAGATION_H_
