#ifndef TPGNN_CORE_TEMPORAL_PROPAGATION_H_
#define TPGNN_CORE_TEMPORAL_PROPAGATION_H_

#include <array>
#include <memory>
#include <vector>

#include "core/config.h"
#include "graph/temporal_graph.h"
#include "nn/gru_cell.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/time_encoding.h"
#include "tensor/executor.h"
#include "tensor/plan.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Temporal propagation (Sec. IV-B, Algorithm 1): the paper's message-passing
// mechanism. Edges are consumed in chronological order; each edge (u, v, t)
// pushes the source's current state into the target, so a node's final
// embedding aggregates exactly its influential nodes (Definition 4,
// Theorem 1).

namespace tpgnn::core {

// Reusable per-loop state for the single-edge propagation steps below. The
// executor's arena holds every temporary the compiled per-edge programs
// need; after the first edge it is warm and the per-edge path performs zero
// heap allocation.
struct PropagationScratch {
  tensor::plan::PlanExecutor exec;
};

class TemporalPropagation : public nn::Module {
 public:
  TemporalPropagation(const TpGnnConfig& config, Rng& rng);

  // Runs Algorithm 1 over `edge_order` (must be the chronological order, or
  // the shuffled-ties order during training) and returns the local node
  // embedding matrix H:
  //   SUM updater: [n, embed_dim + time_dim] (Eq. 5; time block absent when
  //                the variant disables f(t)),
  //   GRU updater: [n, embed_dim].
  tensor::Tensor Forward(
      const graph::TemporalGraph& graph,
      const std::vector<graph::TemporalEdge>& edge_order) const;

  // Width of the returned embedding rows.
  int64_t output_dim() const;

  const TpGnnConfig& config() const { return config_; }

  // --- Incremental single-edge API (online serving, serve/) ---------------
  //
  // The offline inference path is a fold over these three steps; exposing
  // them lets serve::SessionShard keep per-session raw state (`x`, and for
  // the SUM updater the time accumulator `m`) and advance it edge by edge,
  // with a final FinalizeState at score time. Because ForwardInference
  // below is implemented with exactly these calls, an incremental fold over
  // the same chronological edge order is bit-identical to the offline
  // forward. All three require gradients to be disabled (NoGradGuard) —
  // they mutate tensor storage in place through row views.

  // Eq. (1): the initial embedded node-state matrix [n, embed_dim]. This is
  // the per-session one-off cost (one GEMM); the per-edge steps mutate a
  // clone of it.
  tensor::Tensor EmbedInitial(const graph::TemporalGraph& graph) const;

  // One Algorithm-1 step applied in place to the raw node state `x`:
  // SUM: row dst += row src (optionally tanh-squashed) — time-independent;
  // GRU: row dst <- GRU(row dst, [row src ++ f(t)]). The GRU's time
  // argument is NormalizeTime(e.time, max_time) in the absolute basis, and
  // the inter-event gap e.time - prev_time in the invariant basis
  // (`prev_time` is the chronological predecessor's timestamp, 0 for the
  // first edge; ignored otherwise). No-op contract: requires
  // config().use_temporal_propagation().
  void PropagateEdgeState(tensor::Tensor& x, const graph::TemporalEdge& e,
                          double max_time, double prev_time,
                          PropagationScratch& scratch) const;

  // Eq. (4): one accumulation into the SUM time accumulator `m` ([n,
  // time_state_dim()]); only meaningful when has_time_accumulator().
  // Absolute basis: m[dst] += f(NormalizeTime(t, max_time)), optionally
  // tanh-squashed. Invariant basis: the raw-time accumulands
  // [t, 1, sin(w t + phi), cos(w t + phi)] are summed — max_time is never
  // read, which is what makes the fold O(1) under a moving max.
  void AccumulateEdgeTime(tensor::Tensor& m, const graph::TemporalEdge& e,
                          double max_time, PropagationScratch& scratch) const;

  // Readout of the raw folded state: Tanh(x) for GRU / time-less SUM,
  // Tanh(x ++ M(m)) for SUM with time encoding (`m` is ignored otherwise
  // and may be undefined). In the absolute basis M is the identity; in the
  // invariant basis M applies the deferred max-time correction — the exact
  // linear-channel rescale by time_scale/max_time plus the exact phasor
  // rotation by w*max_time (DESIGN.md §4.3) — in O(n * time_dim),
  // independent of the edge count. Returns a fresh tensor; inputs are not
  // mutated.
  tensor::Tensor FinalizeState(const tensor::Tensor& x, const tensor::Tensor& m,
                               double max_time) const;

  // True when the folded node state is coupled to the session's max
  // timestamp, i.e. a max-time change invalidates previously folded steps:
  // GRU updater with Time2Vec under normalize_time in the absolute basis.
  // In the invariant basis the GRU consumes inter-event gaps, which a later
  // max never changes.
  bool StateDependsOnMaxTime() const {
    return updater_ != nullptr && time_ != nullptr && config_.normalize_time &&
           config_.time_basis == TimeBasis::kAbsolute;
  }
  // True when the SUM updater keeps the separate M-hat accumulator.
  bool has_time_accumulator() const {
    return config_.updater == Updater::kSum && time_ != nullptr;
  }
  // True when the M-hat fold itself is coupled to the max timestamp (and a
  // max move therefore forces a refold rather than a finalize-time
  // rescale): absolute basis under normalize_time.
  bool AccumulatorDependsOnMaxTime() const {
    return has_time_accumulator() && config_.normalize_time &&
           config_.time_basis == TimeBasis::kAbsolute;
  }
  // Row width of the time accumulator `m`: f(t) sums in the absolute basis,
  // [sum_t, count, phasor sin, phasor cos] in the invariant basis.
  int64_t time_state_dim() const {
    return config_.time_basis == TimeBasis::kInvariant ? 2 * config_.time_dim
                                                       : config_.time_dim;
  }

 private:
  // Allocation-free propagation used when gradients are disabled: node state
  // is mutated in place through zero-copy row views (tensor/tensor.h),
  // running the compiled per-edge programs (tensor/plan.h) against the
  // scratch arena — the same kernels, in the same order, as the recorded
  // path, so results are bit-identical to Forward in scalar SIMD mode and
  // kernel-ulp-close under a vector ISA (tensor/kernels.h). `x` is the
  // freshly embedded [n, embed_dim] matrix, consumed as the initial state.
  tensor::Tensor ForwardInference(
      tensor::Tensor x, const std::vector<graph::TemporalEdge>& edge_order,
      double max_time) const;

  // The parameter table the compiled programs read (slot -> storage). Built
  // per call — checkpoint loading may reseat parameter storage, so pointers
  // are never cached across calls.
  std::array<const float*, tensor::plan::kNumParamSlots> PlanParams() const;

  TpGnnConfig config_;
  nn::Linear embed_;                      // Eq. (1).
  std::unique_ptr<nn::Time2Vec> time_;    // Eq. (2); null if disabled.
  std::unique_ptr<nn::GruCell> updater_;  // Eq. (6); null for SUM.
  // Compiled per-edge/readout programs for this configuration, shared
  // process-wide through plan::PlanCache.
  std::shared_ptr<const tensor::plan::CompiledPlans> plans_;
};

// Normalizes edge timestamps to [0, config.time_scale] when
// config.normalize_time is set; identity otherwise.
double NormalizeTime(const TpGnnConfig& config, double t, double max_time);

}  // namespace tpgnn::core

#endif  // TPGNN_CORE_TEMPORAL_PROPAGATION_H_
