#include "core/temporal_propagation.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::core {

using tensor::Add;
using tensor::Concat;
using tensor::Reshape;
using tensor::Row;
using tensor::Tanh;
using tensor::Tensor;

double NormalizeTime(const TpGnnConfig& config, double t, double max_time) {
  if (!config.normalize_time || max_time <= 0.0) return t;
  return t / max_time * config.time_scale;
}

TemporalPropagation::TemporalPropagation(const TpGnnConfig& config, Rng& rng)
    : config_(config),
      embed_(config.feature_dim, config.embed_dim, rng) {
  RegisterChild("embed", &embed_);
  if (config_.use_time_encoding() && config_.use_temporal_propagation()) {
    time_ = std::make_unique<nn::Time2Vec>(config_.time_dim, rng);
    RegisterChild("time2vec", time_.get());
  }
  if (config_.updater == Updater::kGru &&
      config_.use_temporal_propagation()) {
    const int64_t input_dim =
        config_.embed_dim + (time_ != nullptr ? config_.time_dim : 0);
    updater_ = std::make_unique<nn::GruCell>(input_dim, config_.embed_dim, rng);
    RegisterChild("updater", updater_.get());
  }
}

int64_t TemporalPropagation::output_dim() const {
  if (!config_.use_temporal_propagation()) {
    return config_.embed_dim;
  }
  if (config_.updater == Updater::kSum) {
    return config_.embed_dim + (time_ != nullptr ? config_.time_dim : 0);
  }
  return config_.embed_dim;
}

Tensor TemporalPropagation::Forward(
    const graph::TemporalGraph& graph,
    const std::vector<graph::TemporalEdge>& edge_order) const {
  const int64_t n = graph.num_nodes();
  TPGNN_CHECK_GT(n, 0);
  TPGNN_CHECK_EQ(graph.feature_dim(), config_.feature_dim);

  // Eq. (1): embed raw features into dense vectors.
  Tensor x = embed_.Forward(graph.FeatureMatrix());  // [n, embed_dim]

  if (!config_.use_temporal_propagation()) {
    return Tanh(x);
  }

  const double max_time = graph.MaxTime();

  if (config_.updater == Updater::kSum) {
    // Running per-node feature (X-hat) and temporal (M-hat) vectors.
    std::vector<Tensor> xhat(static_cast<size_t>(n));
    std::vector<Tensor> mhat;
    for (int64_t v = 0; v < n; ++v) {
      xhat[static_cast<size_t>(v)] = Row(x, v);  // [embed_dim]
    }
    if (time_ != nullptr) {
      mhat.assign(static_cast<size_t>(n),
                  Tensor::Zeros({config_.time_dim}));
    }
    for (const graph::TemporalEdge& e : edge_order) {
      const size_t v = static_cast<size_t>(e.dst);
      const size_t u = static_cast<size_t>(e.src);
      // Eq. (3): the target absorbs the source's current state. With
      // stabilize_sum each step is squashed so dense graphs cannot blow up.
      xhat[v] = Add(xhat[u], xhat[v]);
      if (config_.stabilize_sum) {
        xhat[v] = Tanh(xhat[v]);
      }
      if (time_ != nullptr) {
        // Eq. (4): accumulate the interaction-time encoding.
        const float t = static_cast<float>(
            NormalizeTime(config_, e.time, max_time));
        mhat[v] = Add(time_->Forward(t), mhat[v]);
        if (config_.stabilize_sum) {
          mhat[v] = Tanh(mhat[v]);
        }
      }
    }
    std::vector<Tensor> rows;
    rows.reserve(static_cast<size_t>(n));
    for (int64_t v = 0; v < n; ++v) {
      if (time_ != nullptr) {
        // Eq. (5): concatenate feature and temporal blocks.
        rows.push_back(Concat(
            {xhat[static_cast<size_t>(v)], mhat[static_cast<size_t>(v)]}, 0));
      } else {
        rows.push_back(xhat[static_cast<size_t>(v)]);
      }
    }
    return Tanh(tensor::Stack(rows));
  }

  // GRU updater, Eq. (6): h_v <- GRU(h_v, [h_u ++ f(t)]).
  std::vector<Tensor> h(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    h[static_cast<size_t>(v)] = Reshape(Row(x, v), {1, config_.embed_dim});
  }
  for (const graph::TemporalEdge& e : edge_order) {
    const size_t v = static_cast<size_t>(e.dst);
    const size_t u = static_cast<size_t>(e.src);
    Tensor message = h[u];
    if (time_ != nullptr) {
      const float t =
          static_cast<float>(NormalizeTime(config_, e.time, max_time));
      Tensor ft = Reshape(time_->Forward(t), {1, config_.time_dim});
      message = Concat({message, ft}, /*axis=*/1);
    }
    h[v] = updater_->Forward(message, h[v]);
  }
  std::vector<Tensor> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    rows.push_back(h[static_cast<size_t>(v)]);
  }
  return Tanh(Concat(rows, /*axis=*/0));
}

}  // namespace tpgnn::core
