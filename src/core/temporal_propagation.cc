#include "core/temporal_propagation.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::core {

using tensor::Add;
using tensor::Concat;
using tensor::ConstRowSpan;
using tensor::GatherRows;
using tensor::MutableRowSpan;
using tensor::Reshape;
using tensor::Row;
using tensor::RowSpan;
using tensor::RowSpanOf;
using tensor::Tanh;
using tensor::Tensor;

double NormalizeTime(const TpGnnConfig& config, double t, double max_time) {
  if (!config.normalize_time || max_time <= 0.0) return t;
  return t / max_time * config.time_scale;
}

TemporalPropagation::TemporalPropagation(const TpGnnConfig& config, Rng& rng)
    : config_(config),
      embed_(config.feature_dim, config.embed_dim, rng) {
  RegisterChild("embed", &embed_);
  if (config_.use_time_encoding() && config_.use_temporal_propagation()) {
    time_ = std::make_unique<nn::Time2Vec>(config_.time_dim, rng);
    RegisterChild("time2vec", time_.get());
  }
  if (config_.updater == Updater::kGru &&
      config_.use_temporal_propagation()) {
    const int64_t input_dim =
        config_.embed_dim + (time_ != nullptr ? config_.time_dim : 0);
    updater_ = std::make_unique<nn::GruCell>(input_dim, config_.embed_dim, rng);
    RegisterChild("updater", updater_.get());
  }
}

int64_t TemporalPropagation::output_dim() const {
  if (!config_.use_temporal_propagation()) {
    return config_.embed_dim;
  }
  if (config_.updater == Updater::kSum) {
    return config_.embed_dim + (time_ != nullptr ? config_.time_dim : 0);
  }
  return config_.embed_dim;
}

Tensor TemporalPropagation::Forward(
    const graph::TemporalGraph& graph,
    const std::vector<graph::TemporalEdge>& edge_order) const {
  const int64_t n = graph.num_nodes();
  TPGNN_CHECK_GT(n, 0);
  TPGNN_CHECK_EQ(graph.feature_dim(), config_.feature_dim);

  // Eq. (1): embed raw features into dense vectors.
  Tensor x = embed_.Forward(graph.FeatureMatrix());  // [n, embed_dim]

  if (!config_.use_temporal_propagation()) {
    return Tanh(x);
  }

  const double max_time = graph.MaxTime();

  if (!tensor::GradEnabled()) {
    return ForwardInference(std::move(x), edge_order, max_time);
  }

  if (config_.updater == Updater::kSum) {
    // Running per-node feature (X-hat) and temporal (M-hat) vectors.
    std::vector<Tensor> xhat(static_cast<size_t>(n));
    std::vector<Tensor> mhat;
    for (int64_t v = 0; v < n; ++v) {
      xhat[static_cast<size_t>(v)] = Row(x, v);  // [embed_dim]
    }
    if (time_ != nullptr) {
      mhat.assign(static_cast<size_t>(n),
                  Tensor::Zeros({config_.time_dim}));
    }
    for (const graph::TemporalEdge& e : edge_order) {
      const size_t v = static_cast<size_t>(e.dst);
      const size_t u = static_cast<size_t>(e.src);
      // Eq. (3): the target absorbs the source's current state. With
      // stabilize_sum each step is squashed so dense graphs cannot blow up.
      xhat[v] = Add(xhat[u], xhat[v]);
      if (config_.stabilize_sum) {
        xhat[v] = Tanh(xhat[v]);
      }
      if (time_ != nullptr) {
        // Eq. (4): accumulate the interaction-time encoding.
        const float t = static_cast<float>(
            NormalizeTime(config_, e.time, max_time));
        mhat[v] = Add(time_->Forward(t), mhat[v]);
        if (config_.stabilize_sum) {
          mhat[v] = Tanh(mhat[v]);
        }
      }
    }
    // Eq. (5): row v is xhat[v] ++ mhat[v]. Assembling as two fused stacks
    // plus one axis-1 concat copies the same values into the same layout as
    // the old per-node Concat chain with O(1) recorded ops instead of O(n).
    if (time_ != nullptr) {
      return Tanh(Concat({tensor::Stack(xhat), tensor::Stack(mhat)},
                         /*axis=*/1));
    }
    return Tanh(tensor::Stack(xhat));
  }

  // GRU updater, Eq. (6): h_v <- GRU(h_v, [h_u ++ f(t)]).
  std::vector<Tensor> h(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    h[static_cast<size_t>(v)] = GatherRows(x, {v});  // [1, embed_dim]
  }
  for (const graph::TemporalEdge& e : edge_order) {
    const size_t v = static_cast<size_t>(e.dst);
    const size_t u = static_cast<size_t>(e.src);
    Tensor message = h[u];
    if (time_ != nullptr) {
      const float t =
          static_cast<float>(NormalizeTime(config_, e.time, max_time));
      Tensor ft = Reshape(time_->Forward(t), {1, config_.time_dim});
      message = Concat({message, ft}, /*axis=*/1);
    }
    h[v] = updater_->Forward(message, h[v]);
  }
  std::vector<Tensor> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    rows.push_back(h[static_cast<size_t>(v)]);
  }
  return Tanh(Concat(rows, /*axis=*/0));
}

Tensor TemporalPropagation::EmbedInitial(
    const graph::TemporalGraph& graph) const {
  TPGNN_CHECK(!tensor::GradEnabled())
      << "EmbedInitial is an inference-path entry point";
  TPGNN_CHECK_GT(graph.num_nodes(), 0);
  TPGNN_CHECK_EQ(graph.feature_dim(), config_.feature_dim);
  return embed_.Forward(graph.FeatureMatrix());
}

void TemporalPropagation::PropagateEdgeState(
    Tensor& x, const graph::TemporalEdge& e, double max_time,
    PropagationScratch& scratch) const {
  TPGNN_CHECK(config_.use_temporal_propagation());
  const int64_t embed_dim = config_.embed_dim;
  if (config_.updater == Updater::kSum) {
    ConstRowSpan src = RowSpanOf(x, e.src);
    RowSpan dst = MutableRowSpan(x, e.dst);
    // Eq. (3); reads src[i] and dst[i] of the same index only, so a
    // self-loop (src aliasing dst) doubles the row exactly like Add.
    for (int64_t i = 0; i < embed_dim; ++i) {
      dst.data[i] = src.data[i] + dst.data[i];
    }
    if (config_.stabilize_sum) {
      for (int64_t i = 0; i < embed_dim; ++i) {
        dst.data[i] = std::tanh(dst.data[i]);
      }
    }
    return;
  }
  // GRU updater: the message row is staged in one scratch buffer and the
  // state row is overwritten in place (StepInto allows out == h).
  const int64_t time_dim = time_ != nullptr ? config_.time_dim : 0;
  scratch.message.resize(static_cast<size_t>(embed_dim + time_dim));
  ConstRowSpan src = RowSpanOf(x, e.src);
  std::copy(src.data, src.data + embed_dim, scratch.message.begin());
  if (time_ != nullptr) {
    const float t =
        static_cast<float>(NormalizeTime(config_, e.time, max_time));
    time_->EvalInto(t, scratch.message.data() + embed_dim);
  }
  RowSpan dst = MutableRowSpan(x, e.dst);
  updater_->StepInto(scratch.message.data(), dst.data, dst.data, scratch.gru);
}

void TemporalPropagation::AccumulateEdgeTime(
    Tensor& m, const graph::TemporalEdge& e, double max_time,
    PropagationScratch& scratch) const {
  TPGNN_CHECK(has_time_accumulator());
  const int64_t time_dim = config_.time_dim;
  scratch.time_enc.resize(static_cast<size_t>(time_dim));
  const float t = static_cast<float>(NormalizeTime(config_, e.time, max_time));
  time_->EvalInto(t, scratch.time_enc.data());
  RowSpan mrow = MutableRowSpan(m, e.dst);
  // Eq. (4), associating like Add(f(t), mhat).
  for (int64_t i = 0; i < time_dim; ++i) {
    mrow.data[i] = scratch.time_enc[static_cast<size_t>(i)] + mrow.data[i];
  }
  if (config_.stabilize_sum) {
    for (int64_t i = 0; i < time_dim; ++i) {
      mrow.data[i] = std::tanh(mrow.data[i]);
    }
  }
}

Tensor TemporalPropagation::FinalizeState(const Tensor& x,
                                          const Tensor& m) const {
  if (has_time_accumulator()) {
    TPGNN_CHECK(m.defined());
    return Tanh(Concat({x, m}, /*axis=*/1));
  }
  return Tanh(x);
}

Tensor TemporalPropagation::ForwardInference(
    Tensor x, const std::vector<graph::TemporalEdge>& edge_order,
    double max_time) const {
  // Zero-copy propagation: node state lives in the [n, dim] matrices and is
  // updated in place per edge through the single-edge steps above, so no
  // per-edge tensors or tape nodes exist. Every kernel and elementwise
  // expression mirrors the recorded path in Forward, keeping eval
  // bit-identical to the training forward — and serve/'s incremental fold,
  // built on the same steps, bit-identical to both.
  Tensor m;
  if (has_time_accumulator()) {
    m = Tensor::Zeros({x.size(0), config_.time_dim});
  }
  PropagationScratch scratch;
  for (const graph::TemporalEdge& e : edge_order) {
    PropagateEdgeState(x, e, max_time, scratch);
    if (has_time_accumulator()) {
      AccumulateEdgeTime(m, e, max_time, scratch);
    }
  }
  return FinalizeState(x, m);
}

}  // namespace tpgnn::core
