#include "core/temporal_propagation.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::core {

using tensor::Add;
using tensor::Concat;
using tensor::ConstRowSpan;
using tensor::Cos;
using tensor::GatherRows;
using tensor::Mul;
using tensor::MutableRowSpan;
using tensor::Reshape;
using tensor::Row;
using tensor::RowSpan;
using tensor::RowSpanOf;
using tensor::Scale;
using tensor::Sin;
using tensor::Sub;
using tensor::Tanh;
using tensor::Tensor;

double NormalizeTime(const TpGnnConfig& config, double t, double max_time) {
  if (!config.normalize_time || max_time <= 0.0) return t;
  return t / max_time * config.time_scale;
}

TemporalPropagation::TemporalPropagation(const TpGnnConfig& config, Rng& rng)
    : config_(config),
      embed_(config.feature_dim, config.embed_dim, rng) {
  RegisterChild("embed", &embed_);
  if (config_.use_time_encoding() && config_.use_temporal_propagation()) {
    time_ = std::make_unique<nn::Time2Vec>(config_.time_dim, rng);
    RegisterChild("time2vec", time_.get());
  }
  if (config_.updater == Updater::kGru &&
      config_.use_temporal_propagation()) {
    const int64_t input_dim =
        config_.embed_dim + (time_ != nullptr ? config_.time_dim : 0);
    updater_ = std::make_unique<nn::GruCell>(input_dim, config_.embed_dim, rng);
    RegisterChild("updater", updater_.get());
  }
  // Compile (or fetch) the per-edge programs for this shape. Programs are
  // pure shape — parameters are bound per run through PlanParams() — so
  // models with the same spec share one compiled plan. Variants without
  // temporal propagation still need the finalize program (readout is
  // Tanh(x)); their edge/time programs are never run.
  tensor::plan::PlanSpec spec;
  spec.updater = updater_ != nullptr ? tensor::plan::PlanSpec::Updater::kGru
                                     : tensor::plan::PlanSpec::Updater::kSum;
  spec.embed_dim = static_cast<int32_t>(config_.embed_dim);
  spec.time_dim = time_ != nullptr ? static_cast<int32_t>(config_.time_dim) : 0;
  spec.stabilize = config_.stabilize_sum;
  spec.invariant =
      time_ != nullptr && config_.time_basis == TimeBasis::kInvariant;
  plans_ = tensor::plan::PlanCache::Global().Get(spec);
}

std::array<const float*, tensor::plan::kNumParamSlots>
TemporalPropagation::PlanParams() const {
  std::array<const float*, tensor::plan::kNumParamSlots> params{};
  if (time_ != nullptr) {
    params[tensor::plan::kParamW0] = time_->w0().data().data();
    params[tensor::plan::kParamPhi0] = time_->phi0().data().data();
    params[tensor::plan::kParamW] = time_->w().data().data();
    params[tensor::plan::kParamPhi] = time_->phi().data().data();
  }
  if (updater_ != nullptr) {
    params[tensor::plan::kParamWz] = updater_->wz().data().data();
    params[tensor::plan::kParamUz] = updater_->uz().data().data();
    params[tensor::plan::kParamBz] = updater_->bz().data().data();
    params[tensor::plan::kParamWr] = updater_->wr().data().data();
    params[tensor::plan::kParamUr] = updater_->ur().data().data();
    params[tensor::plan::kParamBr] = updater_->br().data().data();
    params[tensor::plan::kParamWn] = updater_->wn().data().data();
    params[tensor::plan::kParamUn] = updater_->un().data().data();
    params[tensor::plan::kParamBn] = updater_->bn().data().data();
  }
  return params;
}

int64_t TemporalPropagation::output_dim() const {
  if (!config_.use_temporal_propagation()) {
    return config_.embed_dim;
  }
  if (config_.updater == Updater::kSum) {
    return config_.embed_dim + (time_ != nullptr ? config_.time_dim : 0);
  }
  return config_.embed_dim;
}

Tensor TemporalPropagation::Forward(
    const graph::TemporalGraph& graph,
    const std::vector<graph::TemporalEdge>& edge_order) const {
  const int64_t n = graph.num_nodes();
  TPGNN_CHECK_GT(n, 0);
  TPGNN_CHECK_EQ(graph.feature_dim(), config_.feature_dim);

  // Eq. (1): embed raw features into dense vectors.
  Tensor x = embed_.Forward(graph.FeatureMatrix());  // [n, embed_dim]

  if (!config_.use_temporal_propagation()) {
    // Inference readout goes through the planned executor so offline scores
    // match serving bitwise in every SIMD mode (scalar tanh is libm there
    // too, so scalar mode also matches this recorded path bitwise).
    if (!tensor::GradEnabled()) {
      return FinalizeState(x, Tensor(), /*max_time=*/0.0);
    }
    return Tanh(x);
  }

  const double max_time = graph.MaxTime();

  if (!tensor::GradEnabled()) {
    return ForwardInference(std::move(x), edge_order, max_time);
  }

  const bool invariant =
      time_ != nullptr && config_.time_basis == TimeBasis::kInvariant;

  if (config_.updater == Updater::kSum) {
    // Running per-node feature (X-hat) and temporal (M-hat) vectors.
    std::vector<Tensor> xhat(static_cast<size_t>(n));
    std::vector<Tensor> mhat;
    // Invariant-basis accumulators: phasor sums for the periodic channels,
    // plain float sums (no gradient path) for Σt and the event count.
    std::vector<Tensor> phasor_sin;
    std::vector<Tensor> phasor_cos;
    std::vector<float> time_sum;
    std::vector<float> count;
    for (int64_t v = 0; v < n; ++v) {
      xhat[static_cast<size_t>(v)] = Row(x, v);  // [embed_dim]
    }
    if (time_ != nullptr) {
      if (invariant) {
        phasor_sin.assign(static_cast<size_t>(n),
                          Tensor::Zeros({config_.time_dim - 1}));
        phasor_cos.assign(static_cast<size_t>(n),
                          Tensor::Zeros({config_.time_dim - 1}));
        time_sum.assign(static_cast<size_t>(n), 0.0f);
        count.assign(static_cast<size_t>(n), 0.0f);
      } else {
        mhat.assign(static_cast<size_t>(n),
                    Tensor::Zeros({config_.time_dim}));
      }
    }
    for (const graph::TemporalEdge& e : edge_order) {
      const size_t v = static_cast<size_t>(e.dst);
      const size_t u = static_cast<size_t>(e.src);
      // Eq. (3): the target absorbs the source's current state. With
      // stabilize_sum each step is squashed so dense graphs cannot blow up.
      xhat[v] = Add(xhat[u], xhat[v]);
      if (config_.stabilize_sum) {
        xhat[v] = Tanh(xhat[v]);
      }
      if (time_ == nullptr) {
        continue;
      }
      if (invariant) {
        // Eq. (4) in the invariant basis: accumulate the raw-time phasor
        // sin/cos(w t + phi); the max-time coupling is deferred to the
        // correction below. Stabilization becomes the mean at readout —
        // a per-step squash would destroy the rotation identity.
        const float tf = static_cast<float>(e.time);
        Tensor theta = Add(Scale(time_->w(), tf), time_->phi());
        phasor_sin[v] = Add(Sin(theta), phasor_sin[v]);
        phasor_cos[v] = Add(Cos(theta), phasor_cos[v]);
        time_sum[v] = tf + time_sum[v];
        count[v] = 1.0f + count[v];
      } else {
        // Eq. (4): accumulate the interaction-time encoding.
        const float t = static_cast<float>(
            NormalizeTime(config_, e.time, max_time));
        mhat[v] = Add(time_->Forward(t), mhat[v]);
        if (config_.stabilize_sum) {
          mhat[v] = Tanh(mhat[v]);
        }
      }
    }
    if (invariant) {
      // Deferred max-time correction (DESIGN.md §4.3), shared across nodes:
      // linear channel w0 (Σt) s + phi0 k with s = time_scale/max_time, and
      // phasor rotation by w·max_time so row v reads Σ sin(w (t−T) + phi).
      const float sf = static_cast<float>(
          (config_.normalize_time && max_time > 0.0)
              ? config_.time_scale / max_time
              : 1.0);
      const float tmax = static_cast<float>(max_time);
      Tensor rot_cos = Cos(Scale(time_->w(), tmax));
      Tensor rot_sin = Sin(Scale(time_->w(), tmax));
      std::vector<Tensor> mvec(static_cast<size_t>(n));
      for (int64_t v = 0; v < n; ++v) {
        const size_t vi = static_cast<size_t>(v);
        const float sn = time_sum[vi] * sf;
        Tensor lin = Add(Scale(time_->w0(), sn),
                         Scale(time_->phi0(), count[vi]));
        Tensor per = Sub(Mul(phasor_sin[vi], rot_cos),
                         Mul(phasor_cos[vi], rot_sin));
        Tensor mv = Concat({lin, per}, /*axis=*/0);
        if (config_.stabilize_sum) {
          const float invk = count[vi] > 0.0f ? 1.0f / count[vi] : 1.0f;
          mv = Scale(mv, invk);
        }
        mvec[vi] = mv;
      }
      return Tanh(Concat({tensor::Stack(xhat), tensor::Stack(mvec)},
                         /*axis=*/1));
    }
    // Eq. (5): row v is xhat[v] ++ mhat[v]. Assembling as two fused stacks
    // plus one axis-1 concat copies the same values into the same layout as
    // the old per-node Concat chain with O(1) recorded ops instead of O(n).
    if (time_ != nullptr) {
      return Tanh(Concat({tensor::Stack(xhat), tensor::Stack(mhat)},
                         /*axis=*/1));
    }
    return Tanh(tensor::Stack(xhat));
  }

  // GRU updater, Eq. (6): h_v <- GRU(h_v, [h_u ++ f(t)]). In the invariant
  // basis f consumes the inter-event gap instead of the (normalized)
  // absolute timestamp.
  std::vector<Tensor> h(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    h[static_cast<size_t>(v)] = GatherRows(x, {v});  // [1, embed_dim]
  }
  double prev_time = 0.0;
  for (const graph::TemporalEdge& e : edge_order) {
    const size_t v = static_cast<size_t>(e.dst);
    const size_t u = static_cast<size_t>(e.src);
    Tensor message = h[u];
    if (time_ != nullptr) {
      const float t = static_cast<float>(
          invariant ? e.time - prev_time
                    : NormalizeTime(config_, e.time, max_time));
      Tensor ft = Reshape(time_->Forward(t), {1, config_.time_dim});
      message = Concat({message, ft}, /*axis=*/1);
    }
    h[v] = updater_->Forward(message, h[v]);
    prev_time = e.time;
  }
  std::vector<Tensor> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    rows.push_back(h[static_cast<size_t>(v)]);
  }
  return Tanh(Concat(rows, /*axis=*/0));
}

Tensor TemporalPropagation::EmbedInitial(
    const graph::TemporalGraph& graph) const {
  TPGNN_CHECK(!tensor::GradEnabled())
      << "EmbedInitial is an inference-path entry point";
  TPGNN_CHECK_GT(graph.num_nodes(), 0);
  TPGNN_CHECK_EQ(graph.feature_dim(), config_.feature_dim);
  return embed_.Forward(graph.FeatureMatrix());
}

void TemporalPropagation::PropagateEdgeState(
    Tensor& x, const graph::TemporalEdge& e, double max_time, double prev_time,
    PropagationScratch& scratch) const {
  TPGNN_CHECK(config_.use_temporal_propagation());
  TPGNN_CHECK(plans_ != nullptr);
  // Eq. (3) / Eq. (6), as the compiled edge program. SUM reads src[i] and
  // dst[i] of the same index only, so a self-loop (src aliasing dst) doubles
  // the row exactly like Add; the GRU program stages the message into the
  // arena before touching dst, so self-loops are safe there too.
  const auto params = PlanParams();
  tensor::plan::RunContext ctx;
  ctx.src = RowSpanOf(x, e.src).data;
  ctx.dst = MutableRowSpan(x, e.dst).data;
  if (updater_ != nullptr && time_ != nullptr) {
    ctx.t = static_cast<float>(
        config_.time_basis == TimeBasis::kInvariant
            ? e.time - prev_time
            : NormalizeTime(config_, e.time, max_time));
  }
  scratch.exec.Run(plans_->edge, params.data(), ctx);
}

void TemporalPropagation::AccumulateEdgeTime(
    Tensor& m, const graph::TemporalEdge& e, double max_time,
    PropagationScratch& scratch) const {
  TPGNN_CHECK(has_time_accumulator());
  TPGNN_CHECK(plans_ != nullptr);
  // Eq. (4), as the compiled time program. Invariant basis: the raw-time
  // phasor accumulates into [Σt, k, A.., B..]; max_time is deliberately
  // unread, so a later max move never invalidates this fold (the correction
  // happens in FinalizeState). Absolute basis: m += f(t_norm), optionally
  // squashed. Both associate like the recorded Add(·, mhat) chain.
  const auto params = PlanParams();
  tensor::plan::RunContext ctx;
  ctx.m = MutableRowSpan(m, e.dst).data;
  ctx.t = static_cast<float>(
      config_.time_basis == TimeBasis::kInvariant
          ? e.time
          : NormalizeTime(config_, e.time, max_time));
  scratch.exec.Run(plans_->time, params.data(), ctx);
}

Tensor TemporalPropagation::FinalizeState(const Tensor& x, const Tensor& m,
                                          double max_time) const {
  TPGNN_CHECK(plans_ != nullptr);
  const bool with_time = has_time_accumulator();
  if (with_time) {
    TPGNN_CHECK(m.defined());
  }
  const int64_t n = x.size(0);
  const int64_t time_dim = with_time ? config_.time_dim : 0;
  const bool invariant =
      with_time && config_.time_basis == TimeBasis::kInvariant;

  // Per-call constants for the invariant correction (DESIGN.md §4.3): the
  // linear-channel rescale sf rides in ctx.t, the rotation table
  // [cos(w·T) ++ sin(w·T)] in ctx.aux. Every float expression the finalize
  // program runs mirrors the recorded correction in Forward (Scale→Add for
  // the linear channel, Mul/Sub against the shared rotation row for the
  // periodic ones), keeping the two paths bit-identical in scalar mode.
  tensor::plan::RunContext ctx;
  std::vector<float> rot;
  if (invariant) {
    const int64_t periodic = time_dim - 1;
    rot.resize(static_cast<size_t>(2 * periodic));
    time_->EvalRotationInto(static_cast<float>(max_time), rot.data(),
                            rot.data() + periodic);
    ctx.aux = rot.data();
    ctx.t = static_cast<float>(
        (config_.normalize_time && max_time > 0.0)
            ? config_.time_scale / max_time
            : 1.0);
  }

  // The finalize program plans no arena temps (it writes the output row
  // directly), so a local executor stays allocation-free.
  Tensor out = Tensor::Zeros({n, config_.embed_dim + time_dim});
  const auto params = PlanParams();
  tensor::plan::PlanExecutor exec;
  for (int64_t v = 0; v < n; ++v) {
    ctx.src = RowSpanOf(x, v).data;
    ctx.dst = MutableRowSpan(out, v).data;
    if (with_time) {
      // The finalize program only reads the accumulator row.
      ctx.m = const_cast<float*>(RowSpanOf(m, v).data);
    }
    exec.Run(plans_->finalize, params.data(), ctx);
  }
  return out;
}

Tensor TemporalPropagation::ForwardInference(
    Tensor x, const std::vector<graph::TemporalEdge>& edge_order,
    double max_time) const {
  // Zero-copy propagation: node state lives in the [n, dim] matrices and is
  // updated in place per edge by the compiled programs, so no per-edge
  // tensors or tape nodes exist. Every program op mirrors the recorded path
  // in Forward — bit-identical to the training forward in scalar SIMD mode,
  // kernel-ulp-close otherwise — and serve/'s incremental fold, built on
  // the same steps, is bit-identical to this path in every mode.
  Tensor m;
  if (has_time_accumulator()) {
    m = Tensor::Zeros({x.size(0), time_state_dim()});
  }
  PropagationScratch scratch;
  double prev_time = 0.0;
  for (const graph::TemporalEdge& e : edge_order) {
    PropagateEdgeState(x, e, max_time, prev_time, scratch);
    if (has_time_accumulator()) {
      AccumulateEdgeTime(m, e, max_time, scratch);
    }
    prev_time = e.time;
  }
  return FinalizeState(x, m, max_time);
}

}  // namespace tpgnn::core
