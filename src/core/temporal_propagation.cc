#include "core/temporal_propagation.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::core {

using tensor::Add;
using tensor::Concat;
using tensor::ConstRowSpan;
using tensor::Cos;
using tensor::GatherRows;
using tensor::Mul;
using tensor::MutableRowSpan;
using tensor::Reshape;
using tensor::Row;
using tensor::RowSpan;
using tensor::RowSpanOf;
using tensor::Scale;
using tensor::Sin;
using tensor::Sub;
using tensor::Tanh;
using tensor::Tensor;

double NormalizeTime(const TpGnnConfig& config, double t, double max_time) {
  if (!config.normalize_time || max_time <= 0.0) return t;
  return t / max_time * config.time_scale;
}

TemporalPropagation::TemporalPropagation(const TpGnnConfig& config, Rng& rng)
    : config_(config),
      embed_(config.feature_dim, config.embed_dim, rng) {
  RegisterChild("embed", &embed_);
  if (config_.use_time_encoding() && config_.use_temporal_propagation()) {
    time_ = std::make_unique<nn::Time2Vec>(config_.time_dim, rng);
    RegisterChild("time2vec", time_.get());
  }
  if (config_.updater == Updater::kGru &&
      config_.use_temporal_propagation()) {
    const int64_t input_dim =
        config_.embed_dim + (time_ != nullptr ? config_.time_dim : 0);
    updater_ = std::make_unique<nn::GruCell>(input_dim, config_.embed_dim, rng);
    RegisterChild("updater", updater_.get());
  }
}

int64_t TemporalPropagation::output_dim() const {
  if (!config_.use_temporal_propagation()) {
    return config_.embed_dim;
  }
  if (config_.updater == Updater::kSum) {
    return config_.embed_dim + (time_ != nullptr ? config_.time_dim : 0);
  }
  return config_.embed_dim;
}

Tensor TemporalPropagation::Forward(
    const graph::TemporalGraph& graph,
    const std::vector<graph::TemporalEdge>& edge_order) const {
  const int64_t n = graph.num_nodes();
  TPGNN_CHECK_GT(n, 0);
  TPGNN_CHECK_EQ(graph.feature_dim(), config_.feature_dim);

  // Eq. (1): embed raw features into dense vectors.
  Tensor x = embed_.Forward(graph.FeatureMatrix());  // [n, embed_dim]

  if (!config_.use_temporal_propagation()) {
    return Tanh(x);
  }

  const double max_time = graph.MaxTime();

  if (!tensor::GradEnabled()) {
    return ForwardInference(std::move(x), edge_order, max_time);
  }

  const bool invariant =
      time_ != nullptr && config_.time_basis == TimeBasis::kInvariant;

  if (config_.updater == Updater::kSum) {
    // Running per-node feature (X-hat) and temporal (M-hat) vectors.
    std::vector<Tensor> xhat(static_cast<size_t>(n));
    std::vector<Tensor> mhat;
    // Invariant-basis accumulators: phasor sums for the periodic channels,
    // plain float sums (no gradient path) for Σt and the event count.
    std::vector<Tensor> phasor_sin;
    std::vector<Tensor> phasor_cos;
    std::vector<float> time_sum;
    std::vector<float> count;
    for (int64_t v = 0; v < n; ++v) {
      xhat[static_cast<size_t>(v)] = Row(x, v);  // [embed_dim]
    }
    if (time_ != nullptr) {
      if (invariant) {
        phasor_sin.assign(static_cast<size_t>(n),
                          Tensor::Zeros({config_.time_dim - 1}));
        phasor_cos.assign(static_cast<size_t>(n),
                          Tensor::Zeros({config_.time_dim - 1}));
        time_sum.assign(static_cast<size_t>(n), 0.0f);
        count.assign(static_cast<size_t>(n), 0.0f);
      } else {
        mhat.assign(static_cast<size_t>(n),
                    Tensor::Zeros({config_.time_dim}));
      }
    }
    for (const graph::TemporalEdge& e : edge_order) {
      const size_t v = static_cast<size_t>(e.dst);
      const size_t u = static_cast<size_t>(e.src);
      // Eq. (3): the target absorbs the source's current state. With
      // stabilize_sum each step is squashed so dense graphs cannot blow up.
      xhat[v] = Add(xhat[u], xhat[v]);
      if (config_.stabilize_sum) {
        xhat[v] = Tanh(xhat[v]);
      }
      if (time_ == nullptr) {
        continue;
      }
      if (invariant) {
        // Eq. (4) in the invariant basis: accumulate the raw-time phasor
        // sin/cos(w t + phi); the max-time coupling is deferred to the
        // correction below. Stabilization becomes the mean at readout —
        // a per-step squash would destroy the rotation identity.
        const float tf = static_cast<float>(e.time);
        Tensor theta = Add(Scale(time_->w(), tf), time_->phi());
        phasor_sin[v] = Add(Sin(theta), phasor_sin[v]);
        phasor_cos[v] = Add(Cos(theta), phasor_cos[v]);
        time_sum[v] = tf + time_sum[v];
        count[v] = 1.0f + count[v];
      } else {
        // Eq. (4): accumulate the interaction-time encoding.
        const float t = static_cast<float>(
            NormalizeTime(config_, e.time, max_time));
        mhat[v] = Add(time_->Forward(t), mhat[v]);
        if (config_.stabilize_sum) {
          mhat[v] = Tanh(mhat[v]);
        }
      }
    }
    if (invariant) {
      // Deferred max-time correction (DESIGN.md §4.3), shared across nodes:
      // linear channel w0 (Σt) s + phi0 k with s = time_scale/max_time, and
      // phasor rotation by w·max_time so row v reads Σ sin(w (t−T) + phi).
      const float sf = static_cast<float>(
          (config_.normalize_time && max_time > 0.0)
              ? config_.time_scale / max_time
              : 1.0);
      const float tmax = static_cast<float>(max_time);
      Tensor rot_cos = Cos(Scale(time_->w(), tmax));
      Tensor rot_sin = Sin(Scale(time_->w(), tmax));
      std::vector<Tensor> mvec(static_cast<size_t>(n));
      for (int64_t v = 0; v < n; ++v) {
        const size_t vi = static_cast<size_t>(v);
        const float sn = time_sum[vi] * sf;
        Tensor lin = Add(Scale(time_->w0(), sn),
                         Scale(time_->phi0(), count[vi]));
        Tensor per = Sub(Mul(phasor_sin[vi], rot_cos),
                         Mul(phasor_cos[vi], rot_sin));
        Tensor mv = Concat({lin, per}, /*axis=*/0);
        if (config_.stabilize_sum) {
          const float invk = count[vi] > 0.0f ? 1.0f / count[vi] : 1.0f;
          mv = Scale(mv, invk);
        }
        mvec[vi] = mv;
      }
      return Tanh(Concat({tensor::Stack(xhat), tensor::Stack(mvec)},
                         /*axis=*/1));
    }
    // Eq. (5): row v is xhat[v] ++ mhat[v]. Assembling as two fused stacks
    // plus one axis-1 concat copies the same values into the same layout as
    // the old per-node Concat chain with O(1) recorded ops instead of O(n).
    if (time_ != nullptr) {
      return Tanh(Concat({tensor::Stack(xhat), tensor::Stack(mhat)},
                         /*axis=*/1));
    }
    return Tanh(tensor::Stack(xhat));
  }

  // GRU updater, Eq. (6): h_v <- GRU(h_v, [h_u ++ f(t)]). In the invariant
  // basis f consumes the inter-event gap instead of the (normalized)
  // absolute timestamp.
  std::vector<Tensor> h(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    h[static_cast<size_t>(v)] = GatherRows(x, {v});  // [1, embed_dim]
  }
  double prev_time = 0.0;
  for (const graph::TemporalEdge& e : edge_order) {
    const size_t v = static_cast<size_t>(e.dst);
    const size_t u = static_cast<size_t>(e.src);
    Tensor message = h[u];
    if (time_ != nullptr) {
      const float t = static_cast<float>(
          invariant ? e.time - prev_time
                    : NormalizeTime(config_, e.time, max_time));
      Tensor ft = Reshape(time_->Forward(t), {1, config_.time_dim});
      message = Concat({message, ft}, /*axis=*/1);
    }
    h[v] = updater_->Forward(message, h[v]);
    prev_time = e.time;
  }
  std::vector<Tensor> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    rows.push_back(h[static_cast<size_t>(v)]);
  }
  return Tanh(Concat(rows, /*axis=*/0));
}

Tensor TemporalPropagation::EmbedInitial(
    const graph::TemporalGraph& graph) const {
  TPGNN_CHECK(!tensor::GradEnabled())
      << "EmbedInitial is an inference-path entry point";
  TPGNN_CHECK_GT(graph.num_nodes(), 0);
  TPGNN_CHECK_EQ(graph.feature_dim(), config_.feature_dim);
  return embed_.Forward(graph.FeatureMatrix());
}

void TemporalPropagation::PropagateEdgeState(
    Tensor& x, const graph::TemporalEdge& e, double max_time, double prev_time,
    PropagationScratch& scratch) const {
  TPGNN_CHECK(config_.use_temporal_propagation());
  const int64_t embed_dim = config_.embed_dim;
  if (config_.updater == Updater::kSum) {
    ConstRowSpan src = RowSpanOf(x, e.src);
    RowSpan dst = MutableRowSpan(x, e.dst);
    // Eq. (3); reads src[i] and dst[i] of the same index only, so a
    // self-loop (src aliasing dst) doubles the row exactly like Add.
    for (int64_t i = 0; i < embed_dim; ++i) {
      dst.data[i] = src.data[i] + dst.data[i];
    }
    if (config_.stabilize_sum) {
      for (int64_t i = 0; i < embed_dim; ++i) {
        dst.data[i] = std::tanh(dst.data[i]);
      }
    }
    return;
  }
  // GRU updater: the message row is staged in one scratch buffer and the
  // state row is overwritten in place (StepInto allows out == h).
  const int64_t time_dim = time_ != nullptr ? config_.time_dim : 0;
  scratch.message.resize(static_cast<size_t>(embed_dim + time_dim));
  ConstRowSpan src = RowSpanOf(x, e.src);
  std::copy(src.data, src.data + embed_dim, scratch.message.begin());
  if (time_ != nullptr) {
    const float t = static_cast<float>(
        config_.time_basis == TimeBasis::kInvariant
            ? e.time - prev_time
            : NormalizeTime(config_, e.time, max_time));
    time_->EvalInto(t, scratch.message.data() + embed_dim);
  }
  RowSpan dst = MutableRowSpan(x, e.dst);
  updater_->StepInto(scratch.message.data(), dst.data, dst.data, scratch.gru);
}

void TemporalPropagation::AccumulateEdgeTime(
    Tensor& m, const graph::TemporalEdge& e, double max_time,
    PropagationScratch& scratch) const {
  TPGNN_CHECK(has_time_accumulator());
  const int64_t time_dim = config_.time_dim;
  if (config_.time_basis == TimeBasis::kInvariant) {
    // Invariant basis, row layout [Σt, k, A_1..A_{d-1}, B_1..B_{d-1}]:
    // accumulate the raw-time phasor; max_time is deliberately unread, so a
    // later max move never invalidates this fold (the correction happens in
    // FinalizeState). Mirrors the recorded Add(Sin/Cos(theta), ·) chain.
    const int64_t periodic = time_dim - 1;
    scratch.phasor.resize(static_cast<size_t>(2 * periodic));
    float* sin_s = scratch.phasor.data();
    float* cos_s = scratch.phasor.data() + periodic;
    const float tf = static_cast<float>(e.time);
    time_->EvalPhasorInto(tf, sin_s, cos_s);
    RowSpan mrow = MutableRowSpan(m, e.dst);
    mrow.data[0] = tf + mrow.data[0];
    mrow.data[1] = 1.0f + mrow.data[1];
    for (int64_t j = 0; j < periodic; ++j) {
      mrow.data[2 + j] = sin_s[j] + mrow.data[2 + j];
    }
    for (int64_t j = 0; j < periodic; ++j) {
      mrow.data[time_dim + 1 + j] = cos_s[j] + mrow.data[time_dim + 1 + j];
    }
    return;
  }
  scratch.time_enc.resize(static_cast<size_t>(time_dim));
  const float t = static_cast<float>(NormalizeTime(config_, e.time, max_time));
  time_->EvalInto(t, scratch.time_enc.data());
  RowSpan mrow = MutableRowSpan(m, e.dst);
  // Eq. (4), associating like Add(f(t), mhat).
  for (int64_t i = 0; i < time_dim; ++i) {
    mrow.data[i] = scratch.time_enc[static_cast<size_t>(i)] + mrow.data[i];
  }
  if (config_.stabilize_sum) {
    for (int64_t i = 0; i < time_dim; ++i) {
      mrow.data[i] = std::tanh(mrow.data[i]);
    }
  }
}

Tensor TemporalPropagation::FinalizeState(const Tensor& x, const Tensor& m,
                                          double max_time) const {
  if (!has_time_accumulator()) {
    return Tanh(x);
  }
  TPGNN_CHECK(m.defined());
  if (config_.time_basis != TimeBasis::kInvariant) {
    return Tanh(Concat({x, m}, /*axis=*/1));
  }
  // Invariant basis: apply the deferred max-time correction — O(n·time_dim)
  // regardless of how many edges were folded. Every float expression below
  // mirrors the recorded correction in Forward (Scale→Add for the linear
  // channel, Mul/Sub against the shared rotation row for the periodic
  // ones), keeping the two paths bit-identical.
  const int64_t n = x.size(0);
  const int64_t time_dim = config_.time_dim;
  const int64_t periodic = time_dim - 1;
  const float sf = static_cast<float>(
      (config_.normalize_time && max_time > 0.0)
          ? config_.time_scale / max_time
          : 1.0);
  const float tmax = static_cast<float>(max_time);
  const float w0 = time_->w0().data()[0];
  const float phi0 = time_->phi0().data()[0];
  std::vector<float> rot(static_cast<size_t>(2 * periodic));
  float* rot_cos = rot.data();
  float* rot_sin = rot.data() + periodic;
  time_->EvalRotationInto(tmax, rot_cos, rot_sin);
  Tensor corrected = Tensor::Zeros({n, time_dim});
  for (int64_t v = 0; v < n; ++v) {
    ConstRowSpan in = RowSpanOf(m, v);
    RowSpan out = MutableRowSpan(corrected, v);
    const float sn = in.data[0] * sf;
    const float kf = in.data[1];
    const float lin_w = w0 * sn;
    const float lin_p = phi0 * kf;
    out.data[0] = lin_w + lin_p;
    for (int64_t j = 0; j < periodic; ++j) {
      const float a = in.data[2 + j] * rot_cos[j];
      const float b = in.data[time_dim + 1 + j] * rot_sin[j];
      out.data[1 + j] = a - b;
    }
    if (config_.stabilize_sum) {
      const float invk = kf > 0.0f ? 1.0f / kf : 1.0f;
      for (int64_t i = 0; i < time_dim; ++i) {
        out.data[i] = out.data[i] * invk;
      }
    }
  }
  return Tanh(Concat({x, corrected}, /*axis=*/1));
}

Tensor TemporalPropagation::ForwardInference(
    Tensor x, const std::vector<graph::TemporalEdge>& edge_order,
    double max_time) const {
  // Zero-copy propagation: node state lives in the [n, dim] matrices and is
  // updated in place per edge through the single-edge steps above, so no
  // per-edge tensors or tape nodes exist. Every kernel and elementwise
  // expression mirrors the recorded path in Forward, keeping eval
  // bit-identical to the training forward — and serve/'s incremental fold,
  // built on the same steps, bit-identical to both.
  Tensor m;
  if (has_time_accumulator()) {
    m = Tensor::Zeros({x.size(0), time_state_dim()});
  }
  PropagationScratch scratch;
  double prev_time = 0.0;
  for (const graph::TemporalEdge& e : edge_order) {
    PropagateEdgeState(x, e, max_time, prev_time, scratch);
    if (has_time_accumulator()) {
      AccumulateEdgeTime(m, e, max_time, scratch);
    }
    prev_time = e.time;
  }
  return FinalizeState(x, m, max_time);
}

}  // namespace tpgnn::core
