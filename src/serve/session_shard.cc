#include "serve/session_shard.h"

#include <algorithm>
#include <cmath>

#include "core/temporal_propagation.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace tpgnn::serve {

using graph::TemporalEdge;
using tensor::Tensor;

struct SessionShard::Session {
  Session(int64_t num_nodes, int64_t feature_dim)
      : graph(num_nodes, feature_dim) {}

  graph::TemporalGraph graph;  // Features + growing edge list.
  Tensor x0;  // Cached initial embedding (Eq. 1), never mutated.
  Tensor x;   // Raw folded node state (pre-readout).
  Tensor m;   // Raw folded SUM time accumulator, when the config has one.
  core::PropagationScratch scratch;

  // Pinned model version: every kernel this session runs (X0, folds,
  // finalize, extractor, classifier) comes from exactly this version. The
  // shared_ptr keeps a retired version alive until the session ends.
  model::ModelVersionPtr version;
  // Seq of the version x0/x/m were produced under. The mixed-version guard
  // compares this against version->seq() at score time; a rebase re-stamps
  // it after recomputing the state.
  uint64_t state_seq = 0;
  // Registry assignment epoch the version was resolved under; a moved
  // epoch triggers re-resolution at the next touch.
  uint64_t assign_epoch = 0;

  // Fold bookkeeping: how many chronological-prefix edges are folded into
  // x / m, and under which normalization max-time.
  int64_t x_edges = 0;
  int64_t m_edges = 0;
  double x_max_time = 0.0;
  double m_max_time = 0.0;
  // True while edges have arrived in nondecreasing time order, in which
  // case insertion order IS the chronological order (stable sort identity).
  bool sorted = true;
  // True while the folded x/m prefixes are prefixes of the CURRENT
  // chronological order. Cleared when a late edge (below the running max)
  // reorders the chronology; restored by the next EnsureFolded, after which
  // in-order edges eager-fold again — so one late edge costs one refold,
  // not the session's remaining lifetime.
  bool fold_chrono = true;
  // Chronological order scratch for unsorted sessions.
  std::vector<TemporalEdge> chrono;

  // Rescale bookkeeping (TimeBasis::kInvariant): edge count and max-time at
  // the last finalize, so a later score under a moved max is counted as the
  // rescale that replaced an absolute-basis refold.
  int64_t finalized_edges = 0;
  double finalized_max = 0.0;

  double last_touch = 0.0;  // Stream time of the last ingest event.
  int pinned = 0;           // In-flight score requests.
  bool ended = false;       // End received while pinned; removal deferred.
  std::list<uint64_t>::iterator lru_it;
};

SessionShard::SessionShard(const model::ModelRegistry& registry,
                           const ShardOptions& options, Metrics* metrics)
    : registry_(registry), options_(options), metrics_(metrics) {}

SessionShard::~SessionShard() = default;

Status SessionShard::BeginSession(uint64_t session_id, int64_t num_nodes,
                                  int64_t feature_dim,
                                  const std::vector<NodeInit>& features,
                                  double now) {
  const core::TpGnnConfig& config = registry_.config();
  if (num_nodes <= 0) {
    return Status::InvalidArgument("session needs at least one node");
  }
  if (feature_dim != config.feature_dim) {
    return Status::InvalidArgument(
        "feature_dim mismatch: session has " + std::to_string(feature_dim) +
        ", model expects " + std::to_string(config.feature_dim));
  }
  for (const NodeInit& f : features) {
    if (f.node < 0 || f.node >= num_nodes) {
      return Status::InvalidArgument("feature for out-of-range node " +
                                     std::to_string(f.node));
    }
    if (static_cast<int64_t>(f.features.size()) != feature_dim) {
      return Status::InvalidArgument("feature width mismatch for node " +
                                     std::to_string(f.node));
    }
  }

  // Injected admission failure: fires after validation so only well-formed
  // sessions are rejected, and surfaces as the same kOverloaded the resident
  // cap produces — callers cannot tell it from genuine pressure.
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("shard.begin", &hit)) {
    if (hit.kind == failpoint::Kind::kDelay) {
      failpoint::ApplyDelay(hit);
    } else {
      if (metrics_ != nullptr) {
        metrics_->overload_rejections.fetch_add(1, std::memory_order_relaxed);
      }
      return failpoint::InjectedError(StatusCode::kOverloaded, "shard.begin");
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.count(session_id) > 0) {
    return Status::InvalidArgument("duplicate session id " +
                                   std::to_string(session_id));
  }
  while (options_.max_resident_sessions > 0 &&
         sessions_.size() >= options_.max_resident_sessions) {
    if (!EvictOneLocked()) {
      if (metrics_ != nullptr) {
        metrics_->overload_rejections.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::Overloaded(
          "shard at resident-session cap with every session pinned");
    }
  }

  auto session = std::make_unique<Session>(num_nodes, feature_dim);
  for (const NodeInit& f : features) {
    session->graph.SetNodeFeature(f.node, f.features);
  }
  // Resolve and pin the model version: primary, or the A/B candidate per
  // the registry's deterministic per-session split.
  session->version = registry_.ResolveForSession(session_id,
                                                 &session->assign_epoch);
  session->state_seq = session->version->seq();
  {
    tensor::NoGradGuard no_grad;
    const core::TemporalPropagation& prop = session->version->model()
                                                .propagation();
    session->x0 = prop.EmbedInitial(session->graph);
    session->x = session->x0.Clone();
    if (prop.has_time_accumulator()) {
      session->m = Tensor::Zeros({num_nodes, prop.time_state_dim()});
    }
  }
  session->last_touch = now;
  lru_.push_front(session_id);
  session->lru_it = lru_.begin();
  sessions_.emplace(session_id, std::move(session));
  if (metrics_ != nullptr) {
    metrics_->sessions_begun.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

void SessionShard::MaybeRebaseLocked(uint64_t session_id, Session& s) {
  const uint64_t epoch = registry_.assignment_epoch();
  if (epoch == s.assign_epoch) {
    return;
  }
  model::ModelVersionPtr resolved =
      registry_.ResolveForSession(session_id, &s.assign_epoch);
  if (resolved->seq() == s.version->seq()) {
    s.version = std::move(resolved);  // Same version; just re-stamp.
    return;
  }
  // The assignment moved the session onto different parameters: recompute
  // X0 and discard every folded component so the next EnsureFolded replays
  // the full edge list under the new version. Nothing derived from the old
  // parameters survives — that is the zero-mixed-versions invariant.
  s.version = std::move(resolved);
  s.state_seq = s.version->seq();
  {
    tensor::NoGradGuard no_grad;
    const core::TemporalPropagation& prop = s.version->model().propagation();
    s.x0 = prop.EmbedInitial(s.graph);
    s.x = s.x0.Clone();
    s.x_edges = 0;
    s.x_max_time = 0.0;
    if (prop.has_time_accumulator()) {
      s.m = Tensor::Zeros({s.graph.num_nodes(), prop.time_state_dim()});
      s.m_edges = 0;
      s.m_max_time = 0.0;
    }
  }
  // An empty folded prefix is trivially a chronological prefix.
  s.fold_chrono = true;
  s.finalized_edges = 0;
  s.finalized_max = 0.0;
  if (metrics_ != nullptr) {
    metrics_->version_rebases.fetch_add(1, std::memory_order_relaxed);
  }
}

Status SessionShard::AddEdge(uint64_t session_id, int64_t src, int64_t dst,
                             double edge_time, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  Session& s = *it->second;
  if (s.ended) {
    return Status::FailedPrecondition("session " + std::to_string(session_id) +
                                      " already ended");
  }
  const int64_t n = s.graph.num_nodes();
  if (src < 0 || src >= n || dst < 0 || dst >= n) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (edge_time < 0.0 || std::isnan(edge_time)) {
    return Status::InvalidArgument("edge time must be non-negative");
  }
  // Pick up an immediate-rebase swap before folding: the eager fold below
  // must run the same version as the state it extends.
  MaybeRebaseLocked(session_id, s);
  const double old_max = s.graph.MaxTime();
  const bool has_edges = s.graph.num_edges() > 0;
  if (has_edges && edge_time < s.graph.edges().back().time) {
    s.sorted = false;  // Late edge: chronological != arrival order now.
  }
  if (has_edges && edge_time < old_max) {
    s.fold_chrono = false;  // Folded prefixes are no longer chrono prefixes.
  }
  s.graph.AddEdge(src, dst, edge_time);

  // Eager fold: advance any component whose fold stays valid regardless of
  // future edges. Components invalidated by max-time changes (see header)
  // are left for EnsureFolded at score time instead of being folded and
  // thrown away per edge. The gate is fold_chrono, not sorted: an edge at
  // or above the running max is chronologically last even in a session that
  // saw earlier disorder, so eager folding resumes once a refold has
  // re-synced the prefixes.
  const core::TemporalPropagation& prop = s.version->model().propagation();
  const core::TpGnnConfig& config = registry_.config();
  if (s.fold_chrono && config.use_temporal_propagation()) {
    tensor::NoGradGuard no_grad;
    const double max_time = s.graph.MaxTime();
    const int64_t total = s.graph.num_edges();
    const TemporalEdge& e = s.graph.edges().back();
    // Chronological predecessor of the new edge (the invariant-basis GRU
    // consumes the inter-event gap): the previous running max — with ties
    // broken by insertion order, the new edge sorts after every equal-time
    // edge, whose timestamp is exactly old_max.
    const double prev_time = total >= 2 ? old_max : 0.0;
    if (!prop.StateDependsOnMaxTime() && s.x_edges == total - 1) {
      prop.PropagateEdgeState(s.x, e, max_time, prev_time, s.scratch);
      s.x_edges = total;
      s.x_max_time = max_time;
    }
    if (prop.has_time_accumulator() && !prop.AccumulatorDependsOnMaxTime() &&
        s.m_edges == total - 1) {
      prop.AccumulateEdgeTime(s.m, e, max_time, s.scratch);
      s.m_edges = total;
      s.m_max_time = max_time;
    }
  }

  TouchLocked(session_id, s, now);
  if (metrics_ != nullptr) {
    metrics_->edges_ingested.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

const std::vector<TemporalEdge>& SessionShard::EnsureFolded(
    Session& s, bool force_refold) {
  const core::TemporalPropagation& prop = s.version->model().propagation();
  const core::TpGnnConfig& config = registry_.config();
  const std::vector<TemporalEdge>* order = &s.graph.edges();
  if (!s.sorted) {
    s.chrono = s.graph.ChronologicalEdges();
    order = &s.chrono;
  }
  if (!config.use_temporal_propagation()) {
    return *order;  // State is X0 untouched; nothing folds.
  }

  const double max_time = s.graph.MaxTime();
  const int64_t total = s.graph.num_edges();

  // Node state x. For an unsorted session the previously folded prefix may
  // not be a prefix of the new chronological order, so any growth forces a
  // rebuild; for max-coupled state (GRU + Time2Vec under normalize_time in
  // the absolute basis) a max-time change re-times every folded step. The
  // invariant basis removes the max coupling, so only the unsorted case
  // (and the forced shard.rescale fallback) remains.
  const bool x_stale =
      s.x_edges > 0 &&
      (force_refold ||
       (prop.StateDependsOnMaxTime() && s.x_max_time != max_time) ||
       (!s.fold_chrono && s.x_edges != total));
  if (x_stale) {
    s.x = s.x0.Clone();
    s.x_edges = 0;
    if (metrics_ != nullptr) {
      metrics_->state_refolds.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (int64_t i = s.x_edges; i < total; ++i) {
    const double prev_time =
        i > 0 ? (*order)[static_cast<size_t>(i - 1)].time : 0.0;
    prop.PropagateEdgeState(s.x, (*order)[static_cast<size_t>(i)], max_time,
                            prev_time, s.scratch);
  }
  s.x_edges = total;
  s.x_max_time = max_time;

  // SUM time accumulator m: in the absolute basis normalization couples
  // every folded f(t) to the current max time; in the invariant basis the
  // raw-time sums never go stale under a max move.
  if (prop.has_time_accumulator()) {
    const bool m_stale =
        s.m_edges > 0 &&
        (force_refold ||
         (prop.AccumulatorDependsOnMaxTime() && s.m_max_time != max_time) ||
         (!s.fold_chrono && s.m_edges != total));
    if (m_stale) {
      std::fill(s.m.MutableData().begin(), s.m.MutableData().end(), 0.0f);
      s.m_edges = 0;
      if (metrics_ != nullptr) {
        metrics_->state_refolds.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (int64_t i = s.m_edges; i < total; ++i) {
      prop.AccumulateEdgeTime(s.m, (*order)[static_cast<size_t>(i)], max_time,
                              s.scratch);
    }
    s.m_edges = total;
    s.m_max_time = max_time;
  }
  // Everything folded matches the full chronological order now, so edges at
  // or above the max may eager-fold again.
  s.fold_chrono = true;
  return *order;
}

Status SessionShard::Score(uint64_t session_id, ScoreResult* result) {
  TPGNN_CHECK(result != nullptr);
  result->session_id = session_id;
  // Injected scoring failure/delay. The delay runs BEFORE taking mu_, so a
  // pinned session sits exposed while eviction sweeps race against it —
  // exactly the window the pin protocol must protect.
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("shard.score", &hit)) {
    if (hit.kind == failpoint::Kind::kDelay) {
      failpoint::ApplyDelay(hit);
    } else {
      result->status =
          failpoint::InjectedError(StatusCode::kInternal, "shard.score");
      return result->status;
    }
  }
  Stopwatch watch;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    result->status =
        Status::NotFound("unknown session " + std::to_string(session_id));
    return result->status;
  }
  Session& s = *it->second;
  MaybeRebaseLocked(session_id, s);
  // Mixed-version tripwire (the hot-swap safety gate): the pinned version
  // and the stamp of the state it will finalize must agree. They can only
  // disagree if some path re-bound the version handle without rebasing the
  // state — counted, never silently scored away. bench_swap and the chaos
  // sweep assert this stays zero.
  if (s.version->seq() != s.state_seq && metrics_ != nullptr) {
    metrics_->mixed_version_scores.fetch_add(1, std::memory_order_relaxed);
  }
  // Injected rescale fallback: any non-delay fire forces EnsureFolded to
  // discard every folded component and replay it — the legacy refold path —
  // which must reproduce the eagerly folded state bit-for-bit. Evaluated
  // once per score of a live session, so fire counts map 1:1 to scores.
  bool force_refold = false;
  failpoint::Hit rescale_hit;
  if (TPGNN_FAILPOINT("shard.rescale", &rescale_hit)) {
    if (rescale_hit.kind == failpoint::Kind::kDelay) {
      failpoint::ApplyDelay(rescale_hit);
    } else {
      force_refold = true;
    }
  }
  {
    tensor::NoGradGuard no_grad;
    const core::TpGnnModel& model = s.version->model();
    const std::vector<TemporalEdge>& order = EnsureFolded(s, force_refold);
    const core::TpGnnConfig& config = model.config();
    const double max_time = s.graph.MaxTime();
    // A score whose finalize carries previously finalized folded state
    // across a max-time move is the invariant basis absorbing what the
    // absolute basis would have refolded.
    const bool invariant_coupled =
        config.time_basis == core::TimeBasis::kInvariant &&
        config.normalize_time && config.use_temporal_propagation() &&
        config.use_time_encoding();
    if (invariant_coupled && s.finalized_edges > 0 &&
        s.finalized_max != max_time && metrics_ != nullptr) {
      metrics_->state_rescales.fetch_add(1, std::memory_order_relaxed);
    }
    s.finalized_edges = s.graph.num_edges();
    s.finalized_max = max_time;
    Tensor h = model.propagation().FinalizeState(s.x, s.m, max_time);
    Tensor g = model.EmbedFromNodeStates(h, order);
    result->logit = model.ClassifyEmbedding(g).item();
  }
  result->probability = 1.0f / (1.0f + std::exp(-result->logit));
  result->edges_scored = s.graph.num_edges();
  result->score_micros = watch.ElapsedMicros();
  result->status = Status::Ok();
  return result->status;
}

Status SessionShard::ShadowScore(uint64_t session_id, float primary_logit) {
  model::ModelVersionPtr shadow = registry_.shadow();
  if (shadow == nullptr) {
    return Status::Ok();
  }
  // Injected shadow failure: the shadow path must be able to die without
  // the primary result noticing — callers only account the failure.
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("model.shadow_score", &hit)) {
    if (hit.kind == failpoint::Kind::kDelay) {
      failpoint::ApplyDelay(hit);
    } else {
      if (metrics_ != nullptr) {
        metrics_->shadow_failures.fetch_add(1, std::memory_order_relaxed);
      }
      return failpoint::InjectedError(StatusCode::kInternal,
                                      "model.shadow_score");
    }
  }
  Stopwatch watch;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    // The session ended between the primary score and the shadow pass.
    if (metrics_ != nullptr) {
      metrics_->shadow_failures.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  Session& s = *it->second;
  float shadow_logit = 0.0f;
  {
    // Full offline replay under the shadow version — nothing is shared with
    // the session's folded state (which belongs to its pinned version), so
    // the result is exactly the shadow model's ForwardLogit on this graph.
    tensor::NoGradGuard no_grad;
    const core::TpGnnModel& model = shadow->model();
    const core::TemporalPropagation& prop = model.propagation();
    const core::TpGnnConfig& config = model.config();
    const std::vector<TemporalEdge>* order = &s.graph.edges();
    std::vector<TemporalEdge> chrono;
    if (!s.sorted) {
      chrono = s.graph.ChronologicalEdges();
      order = &chrono;
    }
    Tensor x = prop.EmbedInitial(s.graph);
    Tensor m;
    if (prop.has_time_accumulator()) {
      m = Tensor::Zeros({s.graph.num_nodes(), prop.time_state_dim()});
    }
    const double max_time = s.graph.MaxTime();
    if (config.use_temporal_propagation()) {
      const int64_t total = s.graph.num_edges();
      for (int64_t i = 0; i < total; ++i) {
        const double prev_time =
            i > 0 ? (*order)[static_cast<size_t>(i - 1)].time : 0.0;
        prop.PropagateEdgeState(x, (*order)[static_cast<size_t>(i)], max_time,
                                prev_time, s.scratch);
      }
      if (prop.has_time_accumulator()) {
        for (int64_t i = 0; i < total; ++i) {
          prop.AccumulateEdgeTime(m, (*order)[static_cast<size_t>(i)],
                                  max_time, s.scratch);
        }
      }
    }
    Tensor h = prop.FinalizeState(x, m, max_time);
    Tensor g = model.EmbedFromNodeStates(h, *order);
    shadow_logit = model.ClassifyEmbedding(g).item();
  }
  if (metrics_ != nullptr) {
    metrics_->shadow_scores.fetch_add(1, std::memory_order_relaxed);
    metrics_->RecordShadowDelta(std::fabs(static_cast<double>(primary_logit) -
                                          static_cast<double>(shadow_logit)));
    metrics_->shadow_latency.Record(watch.ElapsedMicros());
  }
  return Status::Ok();
}

Status SessionShard::EndSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  Session& s = *it->second;
  if (metrics_ != nullptr) {
    metrics_->sessions_ended.fetch_add(1, std::memory_order_relaxed);
  }
  if (s.pinned > 0) {
    s.ended = true;  // In-flight scores keep the state alive until Unpin.
    return Status::Ok();
  }
  RemoveLocked(session_id, s);
  return Status::Ok();
}

Status SessionShard::ExportSession(uint64_t session_id,
                                   SessionState* state) const {
  TPGNN_CHECK(state != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  const Session& s = *it->second;
  if (s.ended) {
    return Status::FailedPrecondition("session " + std::to_string(session_id) +
                                      " already ended");
  }
  *state = SessionState();
  state->session_id = session_id;
  state->num_nodes = s.graph.num_nodes();
  state->feature_dim = s.graph.feature_dim();
  state->features.reserve(
      static_cast<size_t>(state->num_nodes * state->feature_dim));
  for (int64_t node = 0; node < state->num_nodes; ++node) {
    const std::vector<float>& row = s.graph.node_feature(node);
    state->features.insert(state->features.end(), row.begin(), row.end());
  }
  state->edges = s.graph.edges();
  state->sorted = s.sorted;
  state->fold_chrono = s.fold_chrono;
  state->x_edges = s.x_edges;
  state->m_edges = s.m_edges;
  state->x_max_time = s.x_max_time;
  state->m_max_time = s.m_max_time;
  state->finalized_edges = s.finalized_edges;
  state->finalized_max = s.finalized_max;
  state->last_touch = s.last_touch;
  state->model_version = s.version->name();
  state->x0 = s.x0.data();
  state->x = s.x.data();
  if (s.version->model().propagation().has_time_accumulator()) {
    state->m = s.m.data();
  }
  if (metrics_ != nullptr) {
    metrics_->sessions_exported.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status SessionShard::ImportSession(const SessionState& state, double now) {
  const core::TpGnnConfig& config = registry_.config();
  // The fold is parameter-dependent: the snapshot's tensors are only valid
  // under the exact version that produced them. An empty tag is a
  // version-1 snapshot and resolves to the primary; an unknown tag is a
  // typed precondition failure so the caller can fall back to journal
  // replay instead of silently rebinding the state to other parameters.
  model::ModelVersionPtr version = registry_.Find(state.model_version);
  if (version == nullptr) {
    return Status::FailedPrecondition("snapshot pinned to unknown model "
                                      "version " +
                                      state.model_version);
  }
  const core::TemporalPropagation& prop = version->model().propagation();
  if (state.num_nodes <= 0) {
    return Status::InvalidArgument("session needs at least one node");
  }
  if (state.feature_dim != config.feature_dim) {
    return Status::InvalidArgument(
        "feature_dim mismatch: snapshot has " +
        std::to_string(state.feature_dim) + ", model expects " +
        std::to_string(config.feature_dim));
  }
  const size_t n = static_cast<size_t>(state.num_nodes);
  if (state.features.size() !=
      n * static_cast<size_t>(state.feature_dim)) {
    return Status::InvalidArgument("feature matrix size mismatch");
  }
  if (state.x.size() != n * static_cast<size_t>(config.embed_dim) ||
      state.x0.size() != state.x.size()) {
    return Status::InvalidArgument("node state width mismatch with model");
  }
  if (prop.has_time_accumulator()) {
    if (state.m.size() != n * static_cast<size_t>(prop.time_state_dim())) {
      return Status::InvalidArgument("accumulator width mismatch with model");
    }
  } else if (!state.m.empty()) {
    return Status::InvalidArgument("snapshot carries an accumulator the "
                                   "model config does not use");
  }
  for (const TemporalEdge& e : state.edges) {
    if (e.src < 0 || e.src >= state.num_nodes || e.dst < 0 ||
        e.dst >= state.num_nodes || e.time < 0.0 || std::isnan(e.time)) {
      return Status::InvalidArgument("snapshot edge out of range");
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.count(state.session_id) > 0) {
    return Status::InvalidArgument("duplicate session id " +
                                   std::to_string(state.session_id));
  }
  while (options_.max_resident_sessions > 0 &&
         sessions_.size() >= options_.max_resident_sessions) {
    if (!EvictOneLocked()) {
      if (metrics_ != nullptr) {
        metrics_->overload_rejections.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::Overloaded(
          "shard at resident-session cap with every session pinned");
    }
  }

  auto session = std::make_unique<Session>(state.num_nodes, state.feature_dim);
  std::vector<float> row(static_cast<size_t>(state.feature_dim));
  for (int64_t node = 0; node < state.num_nodes; ++node) {
    const float* src =
        state.features.data() +
        static_cast<size_t>(node) * static_cast<size_t>(state.feature_dim);
    row.assign(src, src + state.feature_dim);
    session->graph.SetNodeFeature(node, row);
  }
  for (const TemporalEdge& e : state.edges) {
    session->graph.AddEdge(e.src, e.dst, e.time);
  }
  // Adopt the exporter's tensors bit-for-bit — including x0, so any later
  // refold replays from the exporter's exact Eq.-1 embedding rather than a
  // recomputed one.
  session->x0 = Tensor::FromVector({state.num_nodes, config.embed_dim},
                                   state.x0);
  session->x = Tensor::FromVector({state.num_nodes, config.embed_dim},
                                  state.x);
  if (prop.has_time_accumulator()) {
    session->m = Tensor::FromVector({state.num_nodes, prop.time_state_dim()},
                                    state.m);
  }
  // Pin the snapshot's version and stamp the session current: the imported
  // pin survives a destination whose primary differs (that is the point of
  // shipping the tag); only a later epoch bump may rebase it.
  session->version = std::move(version);
  session->state_seq = session->version->seq();
  session->assign_epoch = registry_.assignment_epoch();
  session->sorted = state.sorted;
  session->fold_chrono = state.fold_chrono;
  session->x_edges = state.x_edges;
  session->m_edges = state.m_edges;
  session->x_max_time = state.x_max_time;
  session->m_max_time = state.m_max_time;
  session->finalized_edges = state.finalized_edges;
  session->finalized_max = state.finalized_max;
  session->last_touch = state.last_touch > 0.0 ? state.last_touch : now;
  lru_.push_front(state.session_id);
  session->lru_it = lru_.begin();
  sessions_.emplace(state.session_id, std::move(session));
  if (metrics_ != nullptr) {
    metrics_->sessions_imported.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status SessionShard::Pin(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  ++it->second->pinned;
  return Status::Ok();
}

void SessionShard::Unpin(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return;
  }
  Session& s = *it->second;
  TPGNN_CHECK_GT(s.pinned, 0);
  if (--s.pinned == 0 && s.ended) {
    RemoveLocked(session_id, s);
  }
}

void SessionShard::EvictIdle(double now) {
  if (options_.idle_ttl_seconds <= 0.0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // LRU order is most-recent-first, so expired sessions cluster at the
  // back; walk from the back and stop at the first live one.
  std::vector<uint64_t> expired;
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const Session& s = *sessions_.at(*it);
    if (now - s.last_touch <= options_.idle_ttl_seconds) {
      break;
    }
    if (s.pinned == 0) {
      expired.push_back(*it);
    }
  }
  for (uint64_t id : expired) {
    auto it = sessions_.find(id);
    RemoveLocked(id, *it->second);
    if (metrics_ != nullptr) {
      metrics_->sessions_evicted.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

size_t SessionShard::resident_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

bool SessionShard::EvictOneLocked() {
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    Session& s = *sessions_.at(*it);
    if (s.pinned == 0) {
      const uint64_t id = *it;
      RemoveLocked(id, s);
      if (metrics_ != nullptr) {
        metrics_->sessions_evicted.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
  }
  return false;
}

void SessionShard::RemoveLocked(uint64_t session_id, Session& s) {
  lru_.erase(s.lru_it);
  sessions_.erase(session_id);
}

void SessionShard::TouchLocked(uint64_t session_id, Session& s, double now) {
  s.last_touch = now;
  lru_.splice(lru_.begin(), lru_, s.lru_it);
  s.lru_it = lru_.begin();
  (void)session_id;
}

// --- SessionRouter ----------------------------------------------------------

SessionRouter::SessionRouter(const model::ModelRegistry& registry,
                             const Options& options, Metrics* metrics) {
  const int num_shards = options.num_shards < 1 ? 1 : options.num_shards;
  ShardOptions shard_options;
  shard_options.idle_ttl_seconds = options.idle_ttl_seconds;
  if (options.max_resident_sessions > 0) {
    shard_options.max_resident_sessions =
        (options.max_resident_sessions + static_cast<size_t>(num_shards) - 1) /
        static_cast<size_t>(num_shards);
  }
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(
        std::make_unique<SessionShard>(registry, shard_options, metrics));
  }
}

SessionShard& SessionRouter::ShardFor(uint64_t session_id) {
  return *shards_[model::SplitMix64(session_id) % shards_.size()];
}

size_t SessionRouter::resident_sessions() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->resident_sessions();
  }
  return total;
}

void SessionRouter::EvictIdle(double now) {
  for (const auto& shard : shards_) {
    shard->EvictIdle(now);
  }
}

}  // namespace tpgnn::serve
