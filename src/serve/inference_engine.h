#ifndef TPGNN_SERVE_INFERENCE_ENGINE_H_
#define TPGNN_SERVE_INFERENCE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/model.h"
#include "model/registry.h"
#include "serve/event.h"
#include "serve/metrics.h"
#include "serve/session_shard.h"
#include "util/status.h"
#include "util/stopwatch.h"

// Online inference engine: the front door of the serving subsystem.
//
//   * Ingest(event) applies Begin/Edge/End to the owning shard inline
//     (constant-time state updates) and enqueues Score requests onto a
//     bounded queue. A full queue — or a shard whose resident cap cannot be
//     relieved because every session is pinned — is reported as an explicit
//     kOverloaded Status instead of buffering without bound; the caller
//     sheds load or drains with ProcessPending and retries.
//   * ProcessPending() drains up to options.max_batch queued score requests
//     as one micro-batch across the ThreadPool: requests are scored
//     concurrently (each serializes only on its session's shard mutex) and
//     results return in request order. Enqueued requests pin their session
//     so LRU/TTL/cap eviction can never drop an in-flight score.
//   * Latency accounting: ingest_latency per Ingest call, score_latency for
//     the scoring computation, e2e_latency from Score enqueue to result.
//
// Model lifecycle (DESIGN.md §4.8): the engine owns a model::ModelRegistry
// and every session scores against the version handle it resolved at Begin.
// LoadModelVersion / ActivateModel are the process-local verbs behind the
// MODEL_LOAD / MODEL_ACTIVATE admin frames; registry() exposes the full
// surface (A/B candidate, shadow, retire). When a shadow version is set,
// every completed primary score is re-scored under it on the same worker,
// after the primary's latency is recorded — the shadow logit feeds only the
// metrics shadow block and is never part of any ScoreResult.
//
// Snapshots: LoadSnapshot reads a nn::checkpoint file into the initial
// version in place (the pre-serving bootstrap path). A version-2 file
// carries the producing TpGnnConfig as a metadata block, which is validated
// against the engine's config before any parameter is touched; a mismatch
// (e.g. different hidden_dim or extractor kind) fails with a
// FailedPrecondition naming the offending field. Version-1 files load with
// name/shape verification only. Hot swaps under live traffic go through
// LoadModelVersion + ActivateModel instead.
//
// Threading: Ingest and ProcessPending are thread-safe. Events of one
// session must be submitted in order (one producer per session); scores are
// deterministic per session given the event prefix that preceded them.

namespace tpgnn::serve {

struct EngineOptions {
  int num_shards = 4;
  // Resident-session cap across all shards (split evenly); 0 = unlimited.
  size_t max_resident_sessions = 0;
  // TTL for idle sessions in stream seconds; <= 0 disables. Swept on
  // session Begin events.
  double idle_ttl_seconds = 0.0;
  // Bounded score-request queue (backpressure); must be >= 1.
  size_t max_pending_scores = 256;
  // Max score requests drained per ProcessPending micro-batch.
  size_t max_batch = 64;
};

class InferenceEngine {
 public:
  InferenceEngine(const core::TpGnnConfig& config, uint64_t seed,
                  const EngineOptions& options);

  // Loads model parameters into the initial version from `path`, validating
  // the config metadata block first (see class comment). Pre-serving
  // bootstrap only; use LoadModelVersion/ActivateModel under live traffic.
  Status LoadSnapshot(const std::string& path);

  // Registers checkpoint `path` as inactive version `name` (MODEL_LOAD).
  Status LoadModelVersion(const std::string& name, const std::string& path);
  // Makes `name` the primary (MODEL_ACTIVATE): kDrain pins live sessions to
  // their version until they end, kImmediateRebase refolds them onto the
  // new primary at their next touch.
  Status ActivateModel(const std::string& name, model::SwapPolicy policy);

  // The initial version's model. Mutable so a caller can train it in place
  // or copy parameters in before serving starts; must not be mutated while
  // traffic is in flight.
  core::TpGnnModel& model() { return registry_.initial_model(); }
  const core::TpGnnModel& model() const {
    return const_cast<InferenceEngine*>(this)->registry_.initial_model();
  }

  model::ModelRegistry& registry() { return registry_; }
  const model::ModelRegistry& registry() const { return registry_; }

  // Applies one event. Begin/Edge/End run inline; Score enqueues. Returns
  // kOverloaded when the score queue (or the resident cap, with every
  // session pinned) is full.
  Status Ingest(const Event& event);

  // Scores up to options.max_batch pending requests on the global
  // ThreadPool, appending results to `*results` in request order. Returns
  // the number of requests processed (0 when the queue is empty).
  size_t ProcessPending(std::vector<ScoreResult>* results);

  // Drains the queue completely.
  void Flush(std::vector<ScoreResult>* results);

  // Migration passthroughs (cluster serving, DESIGN.md §4.7): snapshot /
  // install a session on its owning shard. Import adopts the snapshot's
  // last_touch as the session's stream-time LRU stamp.
  Status ExportSession(uint64_t session_id, SessionState* state);
  Status ImportSession(const SessionState& state);

  const Metrics& metrics() const { return metrics_; }
  // For front-ends (net::Server) that account wire-level traffic into the
  // engine's metrics.
  Metrics& mutable_metrics() { return metrics_; }
  const EngineOptions& options() const { return options_; }
  size_t pending_scores() const;
  size_t resident_sessions() const { return router_.resident_sessions(); }
  SessionRouter& router() { return router_; }

 private:
  struct PendingScore {
    uint64_t session_id = 0;
    int label = -1;
    double enqueue_micros = 0.0;  // Engine clock at enqueue.
  };

  const EngineOptions options_;
  model::ModelRegistry registry_;
  Metrics metrics_;
  SessionRouter router_;
  Stopwatch clock_;  // Monotone engine clock for latency accounting.

  mutable std::mutex queue_mu_;
  std::deque<PendingScore> pending_;
};

}  // namespace tpgnn::serve

#endif  // TPGNN_SERVE_INFERENCE_ENGINE_H_
