#ifndef TPGNN_SERVE_SESSION_SHARD_H_
#define TPGNN_SERVE_SESSION_SHARD_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/temporal_graph.h"
#include "model/registry.h"
#include "serve/event.h"
#include "serve/metrics.h"
#include "serve/session_state.h"
#include "tensor/tensor.h"
#include "util/status.h"

// Hash-sharded per-session incremental inference state.
//
// A SessionShard owns the sessions whose id hashes to it: for each session
// the growing TemporalGraph, the cached initial embedding X0 (the one-off
// Eq.-1 GEMM), and the raw propagated node state folded edge-by-edge
// through core::TemporalPropagation's single-edge steps. Scoring finalizes
// a copy of the folded state and runs the extractor + classifier stages of
// the model — bit-identical to TpGnnModel::ForwardLogit on the fully built
// graph (see tests/serve/parity_test.cc).
//
// Model versions (DESIGN.md §4.8): there is no process-wide model. Every
// session resolves a refcounted model::ModelVersion handle at Begin (or
// Import) and *pins* it — X0 and the folded x/m are parameter-dependent,
// so every kernel the session ever runs must come from that one version,
// or the score silently blends two models. An atomic primary swap therefore
// never touches live sessions; under SwapPolicy::kImmediateRebase (or an
// A/B assignment change) the registry bumps its assignment epoch and the
// shard re-resolves each session at its next touch, recomputing X0 and
// discarding the folds under the new version (`version_rebases`). A score
// whose pinned version and state stamp ever disagree counts
// `mixed_version_scores` — asserted zero by bench_swap and the chaos sweep.
//
// Fold validity (DESIGN.md §4.3 "Time renormalization algebra"): the SUM
// updater's X-hat fold is time-independent, so it always advances in O(1)
// per edge. Components that consume the time encoding (the SUM M-hat
// accumulator; the whole GRU state) depend, in TimeBasis::kAbsolute under
// config.normalize_time, on the session's final max timestamp, so a
// max-time change since the last fold invalidates them; the shard then
// refolds that component from its cheap base (zeros / X0) at the next score
// and counts a `state_refolds` metric. In TimeBasis::kInvariant the fold is
// carried in a max-time-invariant basis and FinalizeState applies the
// bounded correction at score time instead: every component folds eagerly
// in O(1) per edge, a score under a moved max counts `state_rescales`, and
// refolds remain only for out-of-order edges (timestamp below the session's
// max, which reorders the chronological fold) or the `shard.rescale`
// failpoint (forces the legacy replay as a cross-check). With
// normalize_time off every component folds strictly incrementally in either
// basis.
//
// Concurrency: one mutex per shard; all public methods are thread-safe.
// Events of a single session must still be submitted in order by the
// caller — the shard applies them in arrival order, which is what makes
// per-session results deterministic regardless of shard/thread counts.
//
// Eviction: sessions are kept on an LRU list (most recently touched at the
// front). When the resident cap is hit, the least recently used unpinned
// session is dropped; Pin() marks a session as having an in-flight score
// request, and pinned sessions are never evicted (nor removed by End — the
// removal is deferred to the last Unpin).

namespace tpgnn::serve {

struct ShardOptions {
  // Max resident sessions on this shard; 0 = unlimited. When full and every
  // session is pinned, BeginSession reports kOverloaded.
  size_t max_resident_sessions = 0;
  // Sessions idle (no event) for longer than this many stream seconds are
  // dropped by EvictIdle; <= 0 disables TTL eviction.
  double idle_ttl_seconds = 0.0;
};

class SessionShard {
 public:
  // `registry` must outlive the shard and is shared read-only across shards
  // (inference does not mutate module state). `metrics` may be null.
  SessionShard(const model::ModelRegistry& registry,
               const ShardOptions& options, Metrics* metrics);
  ~SessionShard();

  SessionShard(const SessionShard&) = delete;
  SessionShard& operator=(const SessionShard&) = delete;

  // Opens a session with its node set and features (unlisted nodes keep
  // zero features). `now` is the stream time, used for LRU/TTL bookkeeping.
  // The session resolves and pins its model version here (primary, or the
  // A/B candidate per the registry's deterministic split). Fails with
  // kInvalidArgument on a duplicate id or a feature-dim mismatch with the
  // model config, kOverloaded when the shard is at its cap with every
  // resident session pinned.
  Status BeginSession(uint64_t session_id, int64_t num_nodes,
                      int64_t feature_dim,
                      const std::vector<NodeInit>& features, double now);

  // Appends one timestamped interaction. kNotFound for unknown sessions,
  // kInvalidArgument for endpoint/time violations.
  Status AddEdge(uint64_t session_id, int64_t src, int64_t dst,
                 double edge_time, double now);

  // Scores the session's current state under its pinned model version:
  // result.logit is bit-identical to that version's ForwardLogit(session
  // graph, /*training=*/false) at this edge count. Fills
  // logit/probability/edges_scored; status kNotFound for unknown sessions.
  Status Score(uint64_t session_id, ScoreResult* result);

  // Re-scores the session's current graph under the registry's shadow
  // version — a full offline replay, so the result is bit-identical to the
  // shadow version's ForwardLogit on the session graph. The logit never
  // leaves the process: |primary − shadow| lands in the metrics shadow
  // block. No-op kOk when no shadow version is set; a missing session or an
  // injected `model.shadow_score` failure counts shadow_failures and never
  // affects the primary result.
  Status ShadowScore(uint64_t session_id, float primary_logit);

  // Closes a session. If score requests are in flight (pinned), removal is
  // deferred until the last Unpin; the session stops accepting edges either
  // way.
  Status EndSession(uint64_t session_id);

  // Marks one in-flight score request. Pinned sessions survive eviction and
  // deferred End. Fails with kNotFound for unknown sessions.
  Status Pin(uint64_t session_id);
  // Releases one Pin; completes a deferred End removal when the last pin
  // drops. Unknown ids are ignored (the session may have ended).
  void Unpin(uint64_t session_id);

  // Snapshots a live session for migration (SESSION_EXPORT). The snapshot
  // carries the session's pinned model-version name, so the destination
  // keeps scoring under the same parameters. Safe while scores are pinned —
  // the shard mutex serializes against Score, so the snapshot is always a
  // consistent fold state. kNotFound for unknown sessions,
  // kFailedPrecondition once End has been received (a deferred removal is
  // not a migratable session).
  Status ExportSession(uint64_t session_id, SessionState* state) const;

  // Installs a migrated session (SESSION_IMPORT): rebuilds the graph from
  // the snapshot and adopts the folded x/m tensors bit-for-bit, so the
  // destination scores exactly as the source would have. The snapshot's
  // model-version tag resolves against this registry: an empty tag means
  // the primary, an unknown tag fails with kFailedPrecondition (the caller
  // falls back to journal replay). Fails with kInvalidArgument on a
  // duplicate id or any shape mismatch with the model config, kOverloaded
  // at the resident cap — the same contract as BeginSession.
  Status ImportSession(const SessionState& state, double now);

  // Drops sessions idle since before `now - idle_ttl_seconds` (never pinned
  // ones). No-op when TTL is disabled.
  void EvictIdle(double now);

  size_t resident_sessions() const;

 private:
  struct Session;

  // Applies pending edges (and any required refold) so the folded state
  // matches the session's full edge list; returns the chronological edge
  // order to feed the extractor. `force_refold` (the shard.rescale
  // failpoint) discards every folded component with a nonempty prefix and
  // replays it, counting state_refolds exactly like an organic
  // invalidation.
  const std::vector<graph::TemporalEdge>& EnsureFolded(Session& s,
                                                       bool force_refold);
  // Re-resolves the session's model version when the registry's assignment
  // epoch moved past the session's stamp (immediate-rebase activation or an
  // A/B change). A changed version recomputes X0 and discards the folds so
  // the next EnsureFolded replays everything under the new parameters
  // (`version_rebases`).
  void MaybeRebaseLocked(uint64_t session_id, Session& s);
  // Evicts the least recently used unpinned session; false if none exists.
  bool EvictOneLocked();
  void RemoveLocked(uint64_t session_id, Session& s);
  void TouchLocked(uint64_t session_id, Session& s, double now);

  const model::ModelRegistry& registry_;
  const ShardOptions options_;
  Metrics* const metrics_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_;
  // LRU order, most recent first; Session holds its iterator.
  std::list<uint64_t> lru_;
};

// Routes session ids onto a fixed set of shards with a splitmix64 hash.
// Every event of a session lands on the same shard, so per-session state
// updates serialize behind that shard's mutex in arrival order.
class SessionRouter {
 public:
  struct Options {
    int num_shards = 4;
    // Cap across the whole router, split evenly over shards (ceil); 0 =
    // unlimited.
    size_t max_resident_sessions = 0;
    double idle_ttl_seconds = 0.0;
  };

  SessionRouter(const model::ModelRegistry& registry, const Options& options,
                Metrics* metrics);

  SessionShard& ShardFor(uint64_t session_id);
  SessionShard& shard(size_t index) { return *shards_[index]; }
  size_t num_shards() const { return shards_.size(); }
  // Sum over shards (each read under that shard's lock).
  size_t resident_sessions() const;
  // TTL sweep over every shard.
  void EvictIdle(double now);

 private:
  std::vector<std::unique_ptr<SessionShard>> shards_;
};

}  // namespace tpgnn::serve

#endif  // TPGNN_SERVE_SESSION_SHARD_H_
