#ifndef TPGNN_SERVE_EVENT_H_
#define TPGNN_SERVE_EVENT_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

// The online-serving event vocabulary: a session (one continuous-time
// dynamic network, Definition 1) streams in as a Begin carrying the node
// set and features, a sequence of timestamped edges, score requests, and an
// End. Events of different sessions interleave freely on one stream; events
// of the same session must be submitted in order (the per-session
// determinism contract, see DESIGN.md §"Serving").

namespace tpgnn::serve {

// Feature vector of one node, shipped with the session Begin event.
struct NodeInit {
  int64_t node = 0;
  std::vector<float> features;
};

struct Event {
  enum class Kind {
    kBegin,  // Open a session: num_nodes, feature_dim, features.
    kEdge,   // Append a timestamped interaction (src, dst, edge_time).
    kScore,  // Request an anomaly score for the session's current state.
    kEnd,    // Close the session and release its state.
  };

  Kind kind = Kind::kEdge;
  uint64_t session_id = 0;
  // Arrival position on the global stream, in stream seconds. Drives TTL
  // eviction and replay pacing; strictly bookkeeping, never model input.
  double time = 0.0;

  // kBegin:
  int64_t num_nodes = 0;
  int64_t feature_dim = 0;
  std::vector<NodeInit> features;

  // kEdge:
  int64_t src = 0;
  int64_t dst = 0;
  // Session-local interaction timestamp (the model's t).
  double edge_time = 0.0;

  // kScore: optional ground-truth label carried through to the ScoreResult
  // for accuracy bookkeeping (-1 = unknown).
  int label = -1;
};

// Outcome of one score request.
struct ScoreResult {
  uint64_t session_id = 0;
  Status status;
  float logit = 0.0f;
  float probability = 0.0f;      // sigmoid(logit) = P(normal).
  int64_t edges_scored = 0;      // Session edge count at scoring time.
  int label = -1;                // Echoed from the request.
  double queue_micros = 0.0;     // Enqueue -> start of scoring.
  double score_micros = 0.0;     // The scoring computation itself.
};

}  // namespace tpgnn::serve

#endif  // TPGNN_SERVE_EVENT_H_
