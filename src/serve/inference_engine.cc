#include "serve/inference_engine.h"

#include "nn/checkpoint.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tpgnn::serve {

InferenceEngine::InferenceEngine(const core::TpGnnConfig& config,
                                 uint64_t seed, const EngineOptions& options)
    : options_(options),
      registry_(config, seed),
      router_(registry_,
              SessionRouter::Options{
                  options.num_shards,
                  options.max_resident_sessions,
                  options.idle_ttl_seconds,
              },
              &metrics_) {
  TPGNN_CHECK_GE(options_.max_pending_scores, size_t{1});
  TPGNN_CHECK_GE(options_.max_batch, size_t{1});
}

Status InferenceEngine::LoadSnapshot(const std::string& path) {
  core::TpGnnModel& model = registry_.initial_model();
  nn::CheckpointMetadata metadata;
  if (Status s = nn::ReadCheckpointMetadata(path, &metadata); !s.ok()) {
    return s;
  }
  if (Status s = core::ValidateConfigMetadata(model.config(), metadata);
      !s.ok()) {
    return s;
  }
  return nn::LoadParameters(model, path);
}

Status InferenceEngine::LoadModelVersion(const std::string& name,
                                         const std::string& path) {
  Status status = registry_.Load(name, path);
  if (status.ok()) {
    metrics_.model_loads.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

Status InferenceEngine::ActivateModel(const std::string& name,
                                      model::SwapPolicy policy) {
  Status status = registry_.Activate(name, policy);
  if (status.ok()) {
    metrics_.model_activations.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

Status InferenceEngine::Ingest(const Event& event) {
  Stopwatch watch;
  metrics_.events_ingested.fetch_add(1, std::memory_order_relaxed);
  Status status;
  switch (event.kind) {
    case Event::Kind::kBegin:
      // Begin is the natural sweep point: it is the only event that grows
      // the resident set.
      router_.EvictIdle(event.time);
      status = router_.ShardFor(event.session_id)
                   .BeginSession(event.session_id, event.num_nodes,
                                 event.feature_dim, event.features,
                                 event.time);
      break;
    case Event::Kind::kEdge:
      status = router_.ShardFor(event.session_id)
                   .AddEdge(event.session_id, event.src, event.dst,
                            event.edge_time, event.time);
      break;
    case Event::Kind::kEnd:
      status = router_.ShardFor(event.session_id).EndSession(event.session_id);
      break;
    case Event::Kind::kScore: {
      // Injected engine overload: indistinguishable from a genuinely full
      // score queue, so callers exercise their real shed-and-retry path and
      // overload_rejections accounts for every injected fire.
      failpoint::Hit hit;
      if (TPGNN_FAILPOINT("engine.score_enqueue", &hit)) {
        if (hit.kind == failpoint::Kind::kDelay) {
          failpoint::ApplyDelay(hit);
        } else {
          metrics_.overload_rejections.fetch_add(1, std::memory_order_relaxed);
          metrics_.ingest_latency.Record(watch.ElapsedMicros());
          return failpoint::InjectedError(StatusCode::kOverloaded,
                                          "engine.score_enqueue");
        }
      }
      SessionShard& shard = router_.ShardFor(event.session_id);
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (pending_.size() >= options_.max_pending_scores) {
          metrics_.overload_rejections.fetch_add(1, std::memory_order_relaxed);
          metrics_.ingest_latency.Record(watch.ElapsedMicros());
          return Status::Overloaded(
              "score queue full (" +
              std::to_string(options_.max_pending_scores) +
              " pending); drain with ProcessPending");
        }
        // Pin under the queue lock so a request in the queue is always
        // backed by a pinned (eviction-proof) session.
        status = shard.Pin(event.session_id);
        if (status.ok()) {
          pending_.push_back(
              {event.session_id, event.label, clock_.ElapsedMicros()});
        }
      }
      break;
    }
  }
  metrics_.ingest_latency.Record(watch.ElapsedMicros());
  return status;
}

size_t InferenceEngine::ProcessPending(std::vector<ScoreResult>* results) {
  TPGNN_CHECK(results != nullptr);
  std::vector<PendingScore> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    const size_t take = pending_.size() < options_.max_batch
                            ? pending_.size()
                            : options_.max_batch;
    batch.assign(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(take));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(take));
  }
  if (batch.empty()) {
    return 0;
  }

  // Micro-batch: one task per request on the pool. Results land in request
  // order; requests touching the same shard serialize on its mutex.
  std::vector<ScoreResult> scored = ParallelMap<ScoreResult>(
      ThreadPool::Global(), static_cast<int64_t>(batch.size()), /*grain=*/1,
      [&](int64_t i) {
        const PendingScore& request = batch[static_cast<size_t>(i)];
        ScoreResult result;
        SessionShard& shard = router_.ShardFor(request.session_id);
        const double start_micros = clock_.ElapsedMicros();
        shard.Score(request.session_id, &result);
        result.label = request.label;
        result.queue_micros = start_micros - request.enqueue_micros;
        metrics_.score_latency.Record(result.score_micros);
        metrics_.e2e_latency.Record(clock_.ElapsedMicros() -
                                    request.enqueue_micros);
        if (result.status.ok()) {
          metrics_.scores_completed.fetch_add(1, std::memory_order_relaxed);
          // Shadow re-score off the hot path: the primary's latency is
          // already recorded, the session is still pinned, and the shadow
          // logit only ever reaches the metrics shadow block.
          shard.ShadowScore(request.session_id, result.logit);
        } else {
          metrics_.scores_failed.fetch_add(1, std::memory_order_relaxed);
        }
        shard.Unpin(request.session_id);
        return result;
      });
  results->insert(results->end(), scored.begin(), scored.end());
  return scored.size();
}

void InferenceEngine::Flush(std::vector<ScoreResult>* results) {
  while (ProcessPending(results) > 0) {
  }
}

Status InferenceEngine::ExportSession(uint64_t session_id,
                                      SessionState* state) {
  return router_.ShardFor(session_id).ExportSession(session_id, state);
}

Status InferenceEngine::ImportSession(const SessionState& state) {
  return router_.ShardFor(state.session_id)
      .ImportSession(state, state.last_touch);
}

size_t InferenceEngine::pending_scores() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return pending_.size();
}

}  // namespace tpgnn::serve
