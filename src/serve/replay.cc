#include "serve/replay.h"

#include <algorithm>

#include "util/logging.h"

namespace tpgnn::serve {

EventReplayer::EventReplayer(const graph::GraphDataset& dataset,
                             const ReplayOptions& options) {
  TPGNN_CHECK_GT(options.speed, 0.0);
  TPGNN_CHECK_GE(options.session_start_interval, 0.0);

  num_sessions_ = dataset.size();
  for (size_t i = 0; i < dataset.size(); ++i) {
    const graph::LabeledGraph& sample = dataset[i];
    const uint64_t session_id = options.first_session_id + i;
    const double start =
        static_cast<double>(i) * options.session_start_interval /
        options.speed;

    Event begin;
    begin.kind = Event::Kind::kBegin;
    begin.session_id = session_id;
    begin.time = start;
    begin.num_nodes = sample.graph.num_nodes();
    begin.feature_dim = sample.graph.feature_dim();
    begin.features.reserve(static_cast<size_t>(sample.graph.num_nodes()));
    for (int64_t node = 0; node < sample.graph.num_nodes(); ++node) {
      begin.features.push_back({node, sample.graph.node_feature(node)});
    }
    events_.push_back(std::move(begin));

    // Edges stream in chronological order, offset onto the stream clock by
    // the session start; edge_time keeps the session-local timestamp the
    // model consumes.
    const std::vector<graph::TemporalEdge> chronological =
        sample.graph.ChronologicalEdges();
    double last_time = start;
    for (size_t k = 0; k < chronological.size(); ++k) {
      const graph::TemporalEdge& e = chronological[k];
      Event edge;
      edge.kind = Event::Kind::kEdge;
      edge.session_id = session_id;
      edge.time = start + e.time / options.speed;
      edge.src = e.src;
      edge.dst = e.dst;
      edge.edge_time = e.time;
      last_time = edge.time;
      events_.push_back(std::move(edge));

      if (options.score_every_edges > 0 &&
          static_cast<int64_t>(k + 1) % options.score_every_edges == 0) {
        Event score;
        score.kind = Event::Kind::kScore;
        score.session_id = session_id;
        score.time = last_time;
        score.label = sample.label;
        events_.push_back(std::move(score));
        ++num_score_requests_;
      }
    }

    if (options.score_at_end) {
      Event score;
      score.kind = Event::Kind::kScore;
      score.session_id = session_id;
      score.time = last_time;
      score.label = sample.label;
      events_.push_back(std::move(score));
      ++num_score_requests_;
    }

    Event end;
    end.kind = Event::Kind::kEnd;
    end.session_id = session_id;
    end.time = last_time;
    events_.push_back(std::move(end));
  }

  // Merge sessions on the stream clock. A session's own events carry
  // nondecreasing times and the sort is stable over the session-major build
  // order, so per-session order is preserved exactly.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) {
                     return a.time < b.time;
                   });
}

double EventReplayer::duration() const {
  return events_.empty() ? 0.0 : events_.back().time;
}

}  // namespace tpgnn::serve
