#include "serve/session_state.h"

#include <cmath>
#include <cstring>
#include <string>

namespace tpgnn::serve {

namespace {

// Plausibility caps matching the wire decoder's: a flipped bit in a count
// field must fail the parse, not drive a giant allocation.
constexpr uint64_t kMaxNodes = 1ull << 31;
constexpr uint64_t kMaxFeatureDim = 1ull << 24;

void AppendVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

void AppendZigzag(int64_t value, std::vector<uint8_t>* out) {
  AppendVarint((static_cast<uint64_t>(value) << 1) ^
                   static_cast<uint64_t>(value >> 63),
               out);
}

void AppendU32(uint32_t value, std::vector<uint8_t>* out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<uint8_t>((value >> shift) & 0xff));
  }
}

void AppendF32(float value, std::vector<uint8_t>* out) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU32(bits, out);
}

void AppendF64(double value, std::vector<uint8_t>* out) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<uint8_t>((bits >> shift) & 0xff));
  }
}

void AppendFloats(const std::vector<float>& values,
                  std::vector<uint8_t>* out) {
  AppendVarint(values.size(), out);
  for (float f : values) {
    AppendF32(f, out);
  }
}

// Bounds-checked sequential reader, the session-state twin of the wire
// decoder's: the first failure latches and all later reads fail too.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool failed() const { return failed_; }
  bool Fail() {
    failed_ = true;
    return false;
  }

  bool ReadU8(uint8_t* value) {
    if (!Require(1)) return false;
    *value = data_[pos_++];
    return true;
  }

  bool ReadU32(uint32_t* value) {
    if (!Require(4)) return false;
    uint32_t bits = 0;
    for (int i = 0; i < 4; ++i) {
      bits |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
              << (8 * i);
    }
    pos_ += 4;
    *value = bits;
    return true;
  }

  bool ReadF32(float* value) {
    uint32_t bits;
    if (!ReadU32(&bits)) return false;
    std::memcpy(value, &bits, sizeof(*value));
    return true;
  }

  bool ReadF64(double* value) {
    if (!Require(8)) return false;
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
              << (8 * i);
    }
    pos_ += 8;
    std::memcpy(value, &bits, sizeof(*value));
    return true;
  }

  bool ReadVarint(uint64_t* value) {
    uint64_t result = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!Require(1)) return false;
      const uint8_t byte = data_[pos_++];
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        if (shift == 63 && byte > 1) {
          return Fail();
        }
        *value = result;
        return true;
      }
    }
    return Fail();
  }

  bool ReadZigzag(int64_t* value) {
    uint64_t raw;
    if (!ReadVarint(&raw)) return false;
    *value = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    return true;
  }

  // Reads a varint-prefixed byte string, capped so a corrupt length cannot
  // drive a giant allocation (and a tag is a short handle anyway).
  bool ReadShortString(std::string* value, size_t max_length) {
    uint64_t length;
    if (!ReadVarint(&length)) return false;
    if (length > max_length || length > remaining()) return Fail();
    value->assign(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(length));
    pos_ += static_cast<size_t>(length);
    return true;
  }

  // Reads a varint-prefixed float array; the count must be covered by the
  // bytes actually present (4 per float).
  bool ReadFloats(std::vector<float>* values) {
    uint64_t count;
    if (!ReadVarint(&count)) return false;
    if (count > remaining() / 4) return Fail();
    values->resize(static_cast<size_t>(count));
    for (float& f : *values) {
      if (!ReadF32(&f)) return false;
    }
    return true;
  }

 private:
  bool Require(size_t bytes) {
    if (failed_ || remaining() < bytes) {
      return Fail();
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

Status Corrupt(const std::string& detail) {
  return Status::DataLoss("corrupt session state: " + detail);
}

}  // namespace

void SerializeSessionState(const SessionState& state,
                           std::vector<uint8_t>* out) {
  AppendU32(kSessionStateMagic, out);
  out->push_back(kSessionStateVersion);
  AppendVarint(state.session_id, out);
  AppendVarint(static_cast<uint64_t>(state.num_nodes), out);
  AppendVarint(static_cast<uint64_t>(state.feature_dim), out);
  for (float f : state.features) {
    AppendF32(f, out);
  }
  AppendVarint(state.edges.size(), out);
  for (const graph::TemporalEdge& e : state.edges) {
    AppendZigzag(e.src, out);
    AppendZigzag(e.dst, out);
    AppendF64(e.time, out);
  }
  const uint8_t flags = (state.sorted ? 1u : 0u) |
                        (state.fold_chrono ? 2u : 0u) |
                        (state.m.empty() ? 0u : 4u);
  out->push_back(flags);
  AppendVarint(static_cast<uint64_t>(state.x_edges), out);
  AppendF64(state.x_max_time, out);
  AppendFloats(state.x0, out);
  AppendFloats(state.x, out);
  if (!state.m.empty()) {
    AppendVarint(static_cast<uint64_t>(state.m_edges), out);
    AppendF64(state.m_max_time, out);
    AppendFloats(state.m, out);
  }
  AppendVarint(static_cast<uint64_t>(state.finalized_edges), out);
  AppendF64(state.finalized_max, out);
  AppendF64(state.last_touch, out);
  AppendVarint(state.model_version.size(), out);
  out->insert(out->end(), state.model_version.begin(),
              state.model_version.end());
}

Status ParseSessionState(const uint8_t* data, size_t size,
                         SessionState* state) {
  *state = SessionState();
  Reader reader(data, size);
  uint32_t magic = 0;
  uint8_t version = 0;
  if (!reader.ReadU32(&magic) || magic != kSessionStateMagic) {
    return Corrupt("bad magic");
  }
  if (!reader.ReadU8(&version) || version < 1 ||
      version > kSessionStateVersion) {
    return Corrupt("unsupported version " + std::to_string(version));
  }
  uint64_t num_nodes = 0, feature_dim = 0;
  if (!reader.ReadVarint(&state->session_id) ||
      !reader.ReadVarint(&num_nodes) || num_nodes == 0 ||
      num_nodes > kMaxNodes || !reader.ReadVarint(&feature_dim) ||
      feature_dim > kMaxFeatureDim) {
    return Corrupt("bad header");
  }
  state->num_nodes = static_cast<int64_t>(num_nodes);
  state->feature_dim = static_cast<int64_t>(feature_dim);
  const uint64_t feature_count = num_nodes * feature_dim;
  if (feature_count > reader.remaining() / 4) {
    return Corrupt("feature matrix overruns payload");
  }
  state->features.resize(static_cast<size_t>(feature_count));
  for (float& f : state->features) {
    if (!reader.ReadF32(&f)) return Corrupt("truncated features");
  }
  uint64_t num_edges = 0;
  if (!reader.ReadVarint(&num_edges) ||
      num_edges > reader.remaining() / 10) {  // >= 1+1+8 bytes per edge.
    return Corrupt("implausible edge count");
  }
  state->edges.resize(static_cast<size_t>(num_edges));
  for (graph::TemporalEdge& e : state->edges) {
    if (!reader.ReadZigzag(&e.src) || !reader.ReadZigzag(&e.dst) ||
        !reader.ReadF64(&e.time)) {
      return Corrupt("truncated edge list");
    }
    if (e.src < 0 || e.src >= state->num_nodes || e.dst < 0 ||
        e.dst >= state->num_nodes || e.time < 0.0 || std::isnan(e.time)) {
      return Corrupt("edge endpoint or time out of range");
    }
  }
  uint8_t flags = 0;
  uint64_t x_edges = 0;
  if (!reader.ReadU8(&flags) || (flags & ~7u) != 0 ||
      !reader.ReadVarint(&x_edges) || !reader.ReadF64(&state->x_max_time) ||
      !reader.ReadFloats(&state->x0) || !reader.ReadFloats(&state->x)) {
    return Corrupt("truncated fold state");
  }
  state->sorted = (flags & 1u) != 0;
  state->fold_chrono = (flags & 2u) != 0;
  state->x_edges = static_cast<int64_t>(x_edges);
  if ((flags & 4u) != 0) {
    uint64_t m_edges = 0;
    if (!reader.ReadVarint(&m_edges) || !reader.ReadF64(&state->m_max_time) ||
        !reader.ReadFloats(&state->m)) {
      return Corrupt("truncated accumulator state");
    }
    state->m_edges = static_cast<int64_t>(m_edges);
  }
  uint64_t finalized_edges = 0;
  if (!reader.ReadVarint(&finalized_edges) ||
      !reader.ReadF64(&state->finalized_max) ||
      !reader.ReadF64(&state->last_touch)) {
    return Corrupt("truncated trailer");
  }
  state->finalized_edges = static_cast<int64_t>(finalized_edges);
  if (version >= 2 &&
      !reader.ReadShortString(&state->model_version, kMaxModelVersionName)) {
    return Corrupt("truncated model version tag");
  }
  if (reader.remaining() != 0) {
    return Corrupt(std::to_string(reader.remaining()) + " trailing bytes");
  }
  // Structural consistency: fold counts must sit inside the edge list and
  // the tensors must be rectangular over num_nodes.
  const int64_t total = static_cast<int64_t>(state->edges.size());
  if (state->x_edges < 0 || state->x_edges > total || state->m_edges < 0 ||
      state->m_edges > total || state->finalized_edges < 0 ||
      state->finalized_edges > total) {
    return Corrupt("fold counts exceed edge count");
  }
  if (state->x0.size() != state->x.size() ||
      state->x.size() % static_cast<size_t>(state->num_nodes) != 0 ||
      (!state->m.empty() &&
       state->m.size() % static_cast<size_t>(state->num_nodes) != 0)) {
    return Corrupt("state tensor shape mismatch");
  }
  return Status::Ok();
}

}  // namespace tpgnn::serve
