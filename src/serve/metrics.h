#ifndef TPGNN_SERVE_METRICS_H_
#define TPGNN_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

// Serving telemetry: monotone counters plus fixed-bucket latency
// histograms. Everything is updated with relaxed atomics on the hot path
// and snapshotted without stopping traffic; a snapshot is internally
// consistent per counter (each is monotone) but not across counters, which
// is the usual contract for serving metrics.

namespace tpgnn::serve {

// Power-of-two-bucketed latency histogram over microseconds: bucket i
// counts samples in [2^i, 2^(i+1)) µs (bucket 0 is [0, 2)), the last
// bucket absorbs overflow. 26 buckets cover 1 µs .. ~33 s.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 26;

  void Record(double micros);

  struct Snapshot {
    uint64_t count = 0;
    double sum_micros = 0.0;
    std::array<uint64_t, kNumBuckets> buckets{};

    double mean_micros() const { return count > 0 ? sum_micros / count : 0.0; }
    // Percentile estimate (q in [0, 1]): upper edge of the bucket where the
    // cumulative count crosses q * count; 0 when empty.
    double PercentileMicros(double q) const;
  };

  Snapshot Snap() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  // Sum in nanoseconds so the accumulator stays integral (atomic<double>
  // fetch_add is C++20 but emulated with a CAS loop on most targets).
  std::atomic<uint64_t> sum_nanos_{0};
};

struct MetricsSnapshot {
  uint64_t events_ingested = 0;
  uint64_t sessions_begun = 0;
  uint64_t sessions_ended = 0;
  uint64_t sessions_evicted = 0;
  // Session migrations (cluster serving, DESIGN.md §4.7): snapshots handed
  // out via SESSION_EXPORT and installed via SESSION_IMPORT.
  uint64_t sessions_exported = 0;
  uint64_t sessions_imported = 0;
  uint64_t edges_ingested = 0;
  uint64_t scores_completed = 0;
  uint64_t scores_failed = 0;
  uint64_t overload_rejections = 0;
  uint64_t state_refolds = 0;
  uint64_t state_rescales = 0;
  // Model lifecycle (versioned registry, DESIGN.md §4.8).
  uint64_t model_loads = 0;
  uint64_t model_activations = 0;
  uint64_t version_rebases = 0;
  uint64_t mixed_version_scores = 0;
  // Network front-end (zero unless a net::Server drives the engine).
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t protocol_errors = 0;
  // Process memory high-water marks (soak harness, DESIGN.md §4.9),
  // captured by Metrics::UpdateResourcePeaks — zero until the first probe:
  // the buffer pool's live-bytes peak, its currently cached bytes, the
  // summed planned-executor arena peak, and the kernel's RSS high-water
  // mark (VmHWM). The peaks are gauges, not flows: MergeFrom takes the max
  // (a cluster's value is its worst single process), while bytes_cached
  // sums (total memory parked across processes).
  uint64_t pool_bytes_peak = 0;
  uint64_t pool_bytes_cached = 0;
  uint64_t arena_bytes_peak = 0;
  uint64_t rss_peak_kb = 0;
  // Shadow scoring block (never returned to clients): how many primary
  // scores the shadow version re-scored, how many shadow attempts failed,
  // and the primary-vs-shadow logit divergence.
  uint64_t shadow_scores = 0;
  uint64_t shadow_failures = 0;
  double shadow_delta_sum = 0.0;  // Σ |primary_logit − shadow_logit|.
  double shadow_delta_max = 0.0;  // max |primary_logit − shadow_logit|.
  LatencyHistogram::Snapshot ingest_latency;
  LatencyHistogram::Snapshot score_latency;
  LatencyHistogram::Snapshot e2e_latency;
  LatencyHistogram::Snapshot shadow_latency;

  // One-line human-readable summary (counts + score p50/p95/p99).
  std::string ToString() const;
  // Full snapshot as a JSON object: every counter under "counters", each
  // latency histogram under "latency_us" as {count, mean, sum, p50, p95,
  // p99, buckets}. The raw buckets make the payload mergeable — a router
  // aggregating N backends parses them back and recomputes percentiles
  // over the combined distribution instead of averaging quantiles.
  // This is the METRICS RPC payload and the server half of BENCH_net.json.
  std::string ToJson() const;

  // Field-wise aggregation: counters sum, histogram counts/sums/buckets
  // add, so percentiles of the merged snapshot are percentiles of the
  // union distribution; the memory peaks take the max (worst single
  // process) and pool_bytes_cached sums. The identity element is a default
  // snapshot.
  void MergeFrom(const MetricsSnapshot& other);
};

// Parses a snapshot back out of MetricsSnapshot::ToJson() output — the
// emitter's exact shape, not general JSON (unknown keys are skipped, but
// structure is expected). The router's cluster-wide METRICS RPC uses this
// to fold N backend payloads into one. kDataLoss when a required section
// or histogram field is missing or malformed.
Status ParseMetricsJson(const std::string& json, MetricsSnapshot* snap);

class Metrics {
 public:
  // Counters (relaxed increments).
  std::atomic<uint64_t> events_ingested{0};
  std::atomic<uint64_t> sessions_begun{0};
  std::atomic<uint64_t> sessions_ended{0};
  std::atomic<uint64_t> sessions_evicted{0};
  // Migration traffic (SessionShard::ExportSession / ImportSession).
  std::atomic<uint64_t> sessions_exported{0};
  std::atomic<uint64_t> sessions_imported{0};
  std::atomic<uint64_t> edges_ingested{0};
  std::atomic<uint64_t> scores_completed{0};
  std::atomic<uint64_t> scores_failed{0};
  std::atomic<uint64_t> overload_rejections{0};
  // Folded session states discarded and rebuilt (time-normalization or
  // out-of-order invalidation; see SessionShard).
  std::atomic<uint64_t> state_refolds{0};
  // Scores that absorbed a max-time move through the TimeBasis::kInvariant
  // finalize-time correction instead of a refold (SessionShard; the O(1)
  // counterpart of state_refolds).
  std::atomic<uint64_t> state_rescales{0};
  // Model lifecycle (model::ModelRegistry through InferenceEngine /
  // SessionShard): checkpoint versions loaded, primary activations,
  // sessions refolded onto a new version after an immediate-rebase swap or
  // an A/B assignment change, and — the hot-swap safety gate, asserted zero
  // by bench_swap and the chaos sweep — scores whose folded state mixed
  // parameters from two versions.
  std::atomic<uint64_t> model_loads{0};
  std::atomic<uint64_t> model_activations{0};
  std::atomic<uint64_t> version_rebases{0};
  std::atomic<uint64_t> mixed_version_scores{0};
  // Shadow scoring: candidate re-scores of primary scores (off the client
  // path), failed shadow attempts, and logit divergence. The divergence
  // accumulators stay integral (nanounits / double bits) so the hot path
  // needs no atomic<double> CAS loop for the common add.
  std::atomic<uint64_t> shadow_scores{0};
  std::atomic<uint64_t> shadow_failures{0};
  std::atomic<uint64_t> shadow_delta_sum_nanos{0};
  std::atomic<uint64_t> shadow_delta_max_bits{0};
  // Records one |primary − shadow| logit delta into the sum and running
  // max (CAS max over double bits; monotone for non-negative doubles).
  void RecordShadowDelta(double abs_delta);
  // Network front-end counters, maintained by net::Server: wire bytes and
  // frames in each direction, connection churn, and streams torn down for
  // protocol violations (kDataLoss frames).
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> protocol_errors{0};
  // Memory high-water gauges, written only by UpdateResourcePeaks below
  // (checkpoint-rate probes, never the per-event hot path).
  std::atomic<uint64_t> pool_bytes_peak{0};
  std::atomic<uint64_t> pool_bytes_cached{0};
  std::atomic<uint64_t> arena_bytes_peak{0};
  std::atomic<uint64_t> rss_peak_kb{0};

  // Probes the buffer pool, the planned-executor arena accounting, and the
  // kernel's VmHWM, folding the readings into the gauges above (peaks only
  // ever rise; bytes_cached tracks the current reading). Callers that
  // export metrics for bounded-memory gating — the METRICS RPC, the soak
  // harness's checkpoints — call this right before Snapshot/ToJson.
  void UpdateResourcePeaks();

  // Latency distributions, all in microseconds.
  LatencyHistogram ingest_latency;  // One Ingest(event) call.
  LatencyHistogram score_latency;   // The scoring computation.
  LatencyHistogram e2e_latency;     // Score enqueue -> result ready.
  LatencyHistogram shadow_latency;  // One shadow re-score (off hot path).

  MetricsSnapshot Snapshot() const;
  // Shorthand for Snapshot().ToJson().
  std::string ToJson() const;
};

}  // namespace tpgnn::serve

#endif  // TPGNN_SERVE_METRICS_H_
