#ifndef TPGNN_SERVE_SESSION_STATE_H_
#define TPGNN_SERVE_SESSION_STATE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/status.h"

// Portable snapshot of one live serving session, the payload of the
// SESSION_EXPORT / SESSION_IMPORT migration frames (DESIGN.md §4.7). The
// snapshot carries everything SessionShard holds for the session — the
// feature matrix, the edge list in ARRIVAL order (arrival order is the
// fold's tie-break identity, so it must survive the move, not just the
// chronological sort), and the raw folded x/m/x0 tensors as exact float
// bits — so a session imported on another backend scores bit-identically
// to one that never moved. Under TimeBasis::kInvariant the folded state is
// max-time independent, which keeps the payload free of any
// renormalization coupling to the destination's clock.
//
// The binary encoding mirrors the wire protocol's conventions (LEB128
// varints, zigzag for signed, raw little-endian IEEE-754 bits) but is a
// separate, versioned format: the wire layer treats it as an opaque blob.

namespace tpgnn::serve {

inline constexpr uint32_t kSessionStateMagic = 0x53535054u;  // "TPSS"
// Version 2 appends the model-version tag (the registry name the session's
// fold is pinned to) after last_touch. Version-1 blobs still parse, with an
// empty tag — the importer resolves that to its primary.
inline constexpr uint8_t kSessionStateVersion = 2;
// Plausibility cap for the model-version tag, matching the registry's
// admin-frame expectations: names are short handles, not payloads.
inline constexpr size_t kMaxModelVersionName = 256;

struct SessionState {
  uint64_t session_id = 0;
  int64_t num_nodes = 0;
  int64_t feature_dim = 0;
  // Dense [num_nodes, feature_dim] row-major feature matrix.
  std::vector<float> features;
  // Every edge in arrival order.
  std::vector<graph::TemporalEdge> edges;

  // Fold bookkeeping, mirroring SessionShard::Session.
  bool sorted = true;
  bool fold_chrono = true;
  int64_t x_edges = 0;
  int64_t m_edges = 0;
  double x_max_time = 0.0;
  double m_max_time = 0.0;
  int64_t finalized_edges = 0;
  double finalized_max = 0.0;
  double last_touch = 0.0;

  // Registry name of the model version the folded tensors were produced
  // under (empty = importer's primary, the version-1 behaviour). The folded
  // state is parameter-dependent, so a migrated session must keep scoring
  // under this exact version to stay bit-identical.
  std::string model_version;

  // Raw folded tensors as exact float bits. x0 is shipped rather than
  // recomputed so a refold on the destination replays from the exporter's
  // exact Eq.-1 embedding. m is empty unless the config has a SUM time
  // accumulator.
  std::vector<float> x0;
  std::vector<float> x;
  std::vector<float> m;
};

// Appends the versioned binary encoding of `state` to `*out`.
void SerializeSessionState(const SessionState& state,
                           std::vector<uint8_t>* out);

// Decodes a blob produced by SerializeSessionState. Strictly
// bounds-checked like the wire decoder: truncation, trailing bytes, a bad
// magic/version, or an implausible count yields kDataLoss and never reads
// out of bounds. Structural consistency (fold counts within the edge
// count, tensor sizes divisible by num_nodes) is validated here; model
// compatibility (feature_dim, state widths) is the importer's job.
Status ParseSessionState(const uint8_t* data, size_t size,
                         SessionState* state);

}  // namespace tpgnn::serve

#endif  // TPGNN_SERVE_SESSION_STATE_H_
