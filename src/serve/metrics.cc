#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "tensor/executor.h"
#include "util/buffer_pool.h"
#include "util/resource.h"

namespace tpgnn::serve {

namespace {

// Bucket index for a microsecond sample: floor(log2(micros)), clamped.
int BucketIndex(double micros) {
  if (!(micros >= 1.0)) {  // Also catches NaN.
    return 0;
  }
  const int idx = static_cast<int>(std::log2(micros));
  return idx >= LatencyHistogram::kNumBuckets
             ? LatencyHistogram::kNumBuckets - 1
             : idx;
}

}  // namespace

void LatencyHistogram::Record(double micros) {
  if (micros < 0.0 || std::isnan(micros)) {
    micros = 0.0;
  }
  buckets_[static_cast<size_t>(BucketIndex(micros))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(micros * 1e3),
                       std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_micros =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-3;
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return snap;
}

double LatencyHistogram::Snapshot::PercentileMicros(double q) const {
  if (count == 0) {
    return 0.0;
  }
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[static_cast<size_t>(i)];
    if (static_cast<double>(cumulative) >= target) {
      // Upper edge of bucket i: 2^(i+1) µs (bucket 0 covers [0, 2)).
      return std::ldexp(1.0, i + 1);
    }
  }
  return std::ldexp(1.0, kNumBuckets);
}

void Metrics::RecordShadowDelta(double abs_delta) {
  if (abs_delta < 0.0 || std::isnan(abs_delta)) {
    abs_delta = 0.0;
  }
  shadow_delta_sum_nanos.fetch_add(static_cast<uint64_t>(abs_delta * 1e9),
                                   std::memory_order_relaxed);
  // CAS max over raw double bits: for non-negative doubles the bit pattern
  // orders like the value.
  uint64_t bits;
  std::memcpy(&bits, &abs_delta, sizeof(bits));
  uint64_t seen = shadow_delta_max_bits.load(std::memory_order_relaxed);
  while (bits > seen && !shadow_delta_max_bits.compare_exchange_weak(
                            seen, bits, std::memory_order_relaxed)) {
  }
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  os << "events=" << events_ingested << " sessions=" << sessions_begun << "/"
     << sessions_ended << " evicted=" << sessions_evicted
     << " edges=" << edges_ingested << " scores=" << scores_completed << "/"
     << scores_failed << " overloads=" << overload_rejections
     << " refolds=" << state_refolds << " rescales=" << state_rescales
     << " rebases=" << version_rebases
     << " mixed_version=" << mixed_version_scores
     << " shadow=" << shadow_scores << "/" << shadow_failures
     << " score_us{p50=" <<
      score_latency.PercentileMicros(0.5)
     << " p95=" << score_latency.PercentileMicros(0.95)
     << " p99=" << score_latency.PercentileMicros(0.99) << "}";
  return os.str();
}

namespace {

void AppendHistogramJson(std::ostringstream& os, const char* name,
                         const LatencyHistogram::Snapshot& h) {
  os << "\"" << name << "\": {\"count\": " << h.count
     << ", \"mean\": " << h.mean_micros()
     << ", \"sum\": " << h.sum_micros
     << ", \"p50\": " << h.PercentileMicros(0.5)
     << ", \"p95\": " << h.PercentileMicros(0.95)
     << ", \"p99\": " << h.PercentileMicros(0.99) << ", \"buckets\": [";
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    if (i > 0) os << ", ";
    os << h.buckets[static_cast<size_t>(i)];
  }
  os << "]}";
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\": {"
     << "\"events_ingested\": " << events_ingested
     << ", \"sessions_begun\": " << sessions_begun
     << ", \"sessions_ended\": " << sessions_ended
     << ", \"sessions_evicted\": " << sessions_evicted
     << ", \"sessions_exported\": " << sessions_exported
     << ", \"sessions_imported\": " << sessions_imported
     << ", \"edges_ingested\": " << edges_ingested
     << ", \"scores_completed\": " << scores_completed
     << ", \"scores_failed\": " << scores_failed
     << ", \"overload_rejections\": " << overload_rejections
     << ", \"state_refolds\": " << state_refolds
     << ", \"state_rescales\": " << state_rescales
     << ", \"model_loads\": " << model_loads
     << ", \"model_activations\": " << model_activations
     << ", \"version_rebases\": " << version_rebases
     << ", \"mixed_version_scores\": " << mixed_version_scores
     << ", \"shadow_scores\": " << shadow_scores
     << ", \"shadow_failures\": " << shadow_failures
     << ", \"bytes_received\": " << bytes_received
     << ", \"bytes_sent\": " << bytes_sent
     << ", \"frames_received\": " << frames_received
     << ", \"frames_sent\": " << frames_sent
     << ", \"connections_accepted\": " << connections_accepted
     << ", \"connections_closed\": " << connections_closed
     << ", \"protocol_errors\": " << protocol_errors
     << ", \"pool_bytes_peak\": " << pool_bytes_peak
     << ", \"pool_bytes_cached\": " << pool_bytes_cached
     << ", \"arena_bytes_peak\": " << arena_bytes_peak
     << ", \"rss_peak_kb\": " << rss_peak_kb
     << "}, \"shadow\": {"
     << "\"sum_abs_delta\": " << shadow_delta_sum
     << ", \"max_abs_delta\": " << shadow_delta_max
     << "}, \"latency_us\": {";
  AppendHistogramJson(os, "ingest", ingest_latency);
  os << ", ";
  AppendHistogramJson(os, "score", score_latency);
  os << ", ";
  AppendHistogramJson(os, "e2e", e2e_latency);
  os << ", ";
  AppendHistogramJson(os, "shadow", shadow_latency);
  os << "}}";
  return os.str();
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  events_ingested += other.events_ingested;
  sessions_begun += other.sessions_begun;
  sessions_ended += other.sessions_ended;
  sessions_evicted += other.sessions_evicted;
  sessions_exported += other.sessions_exported;
  sessions_imported += other.sessions_imported;
  edges_ingested += other.edges_ingested;
  scores_completed += other.scores_completed;
  scores_failed += other.scores_failed;
  overload_rejections += other.overload_rejections;
  state_refolds += other.state_refolds;
  state_rescales += other.state_rescales;
  model_loads += other.model_loads;
  model_activations += other.model_activations;
  version_rebases += other.version_rebases;
  mixed_version_scores += other.mixed_version_scores;
  shadow_scores += other.shadow_scores;
  shadow_failures += other.shadow_failures;
  shadow_delta_sum += other.shadow_delta_sum;
  shadow_delta_max = std::max(shadow_delta_max, other.shadow_delta_max);
  bytes_received += other.bytes_received;
  bytes_sent += other.bytes_sent;
  frames_received += other.frames_received;
  frames_sent += other.frames_sent;
  connections_accepted += other.connections_accepted;
  connections_closed += other.connections_closed;
  protocol_errors += other.protocol_errors;
  // Memory peaks are gauges: the cluster-wide peak is the worst single
  // process, not a sum. Cached pool bytes do sum (memory parked per process).
  pool_bytes_peak = std::max(pool_bytes_peak, other.pool_bytes_peak);
  pool_bytes_cached += other.pool_bytes_cached;
  arena_bytes_peak = std::max(arena_bytes_peak, other.arena_bytes_peak);
  rss_peak_kb = std::max(rss_peak_kb, other.rss_peak_kb);
  auto merge_histogram = [](LatencyHistogram::Snapshot& into,
                            const LatencyHistogram::Snapshot& from) {
    into.count += from.count;
    into.sum_micros += from.sum_micros;
    for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      into.buckets[static_cast<size_t>(i)] +=
          from.buckets[static_cast<size_t>(i)];
    }
  };
  merge_histogram(ingest_latency, other.ingest_latency);
  merge_histogram(score_latency, other.score_latency);
  merge_histogram(e2e_latency, other.e2e_latency);
  merge_histogram(shadow_latency, other.shadow_latency);
}

namespace {

// Targeted extraction over the emitter's JSON shape. `Find*` locate a
// quoted key inside [from, json.size()) and parse the value right after
// its ':'; they tolerate unknown keys (skipped by not being asked for)
// but not a missing requested one.
bool FindNumber(const std::string& json, const std::string& key, size_t from,
                double* value, size_t* value_end) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle, from);
  if (at == std::string::npos) {
    return false;
  }
  const char* start = json.c_str() + at + needle.size();
  char* end = nullptr;
  *value = std::strtod(start, &end);
  if (end == start) {
    return false;
  }
  if (value_end != nullptr) {
    *value_end = static_cast<size_t>(end - json.c_str());
  }
  return true;
}

bool FindCounter(const std::string& json, const std::string& key, size_t from,
                 uint64_t* value) {
  double v = 0.0;
  if (!FindNumber(json, key, from, &v, nullptr) || v < 0.0) {
    return false;
  }
  *value = static_cast<uint64_t>(v);
  return true;
}

bool ParseHistogram(const std::string& json, const std::string& name,
                    size_t from, LatencyHistogram::Snapshot* h) {
  const size_t at = json.find("\"" + name + "\":", from);
  if (at == std::string::npos) {
    return false;
  }
  if (!FindCounter(json, "count", at, &h->count) ||
      !FindNumber(json, "sum", at, &h->sum_micros, nullptr)) {
    return false;
  }
  const size_t buckets_at = json.find("\"buckets\":", at);
  if (buckets_at == std::string::npos) {
    return false;
  }
  size_t open = json.find('[', buckets_at);
  if (open == std::string::npos) {
    return false;
  }
  const char* cursor = json.c_str() + open + 1;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    char* end = nullptr;
    const double v = std::strtod(cursor, &end);
    if (end == cursor || v < 0.0) {
      return false;
    }
    h->buckets[static_cast<size_t>(i)] = static_cast<uint64_t>(v);
    cursor = end;
    while (*cursor == ',' || *cursor == ' ') ++cursor;
  }
  return *cursor == ']';
}

}  // namespace

Status ParseMetricsJson(const std::string& json, MetricsSnapshot* snap) {
  *snap = MetricsSnapshot();
  const size_t counters_at = json.find("\"counters\":");
  const size_t latency_at = json.find("\"latency_us\":");
  if (counters_at == std::string::npos || latency_at == std::string::npos) {
    return Status::DataLoss("metrics JSON missing counters or latency_us");
  }
  struct Field {
    const char* key;
    uint64_t* value;
  };
  const Field fields[] = {
      {"events_ingested", &snap->events_ingested},
      {"sessions_begun", &snap->sessions_begun},
      {"sessions_ended", &snap->sessions_ended},
      {"sessions_evicted", &snap->sessions_evicted},
      {"sessions_exported", &snap->sessions_exported},
      {"sessions_imported", &snap->sessions_imported},
      {"edges_ingested", &snap->edges_ingested},
      {"scores_completed", &snap->scores_completed},
      {"scores_failed", &snap->scores_failed},
      {"overload_rejections", &snap->overload_rejections},
      {"state_refolds", &snap->state_refolds},
      {"state_rescales", &snap->state_rescales},
      {"model_loads", &snap->model_loads},
      {"model_activations", &snap->model_activations},
      {"version_rebases", &snap->version_rebases},
      {"mixed_version_scores", &snap->mixed_version_scores},
      {"shadow_scores", &snap->shadow_scores},
      {"shadow_failures", &snap->shadow_failures},
      {"bytes_received", &snap->bytes_received},
      {"bytes_sent", &snap->bytes_sent},
      {"frames_received", &snap->frames_received},
      {"frames_sent", &snap->frames_sent},
      {"connections_accepted", &snap->connections_accepted},
      {"connections_closed", &snap->connections_closed},
      {"protocol_errors", &snap->protocol_errors},
      {"pool_bytes_peak", &snap->pool_bytes_peak},
      {"pool_bytes_cached", &snap->pool_bytes_cached},
      {"arena_bytes_peak", &snap->arena_bytes_peak},
      {"rss_peak_kb", &snap->rss_peak_kb},
  };
  for (const Field& f : fields) {
    if (!FindCounter(json, f.key, counters_at, f.value)) {
      return Status::DataLoss(std::string("metrics JSON missing counter ") +
                              f.key);
    }
  }
  const size_t shadow_at = json.find("\"shadow\":");
  if (shadow_at == std::string::npos || shadow_at > latency_at ||
      !FindNumber(json, "sum_abs_delta", shadow_at, &snap->shadow_delta_sum,
                  nullptr) ||
      !FindNumber(json, "max_abs_delta", shadow_at, &snap->shadow_delta_max,
                  nullptr)) {
    return Status::DataLoss("metrics JSON shadow block malformed");
  }
  if (!ParseHistogram(json, "ingest", latency_at, &snap->ingest_latency) ||
      !ParseHistogram(json, "score", latency_at, &snap->score_latency) ||
      !ParseHistogram(json, "e2e", latency_at, &snap->e2e_latency) ||
      !ParseHistogram(json, "shadow", latency_at, &snap->shadow_latency)) {
    return Status::DataLoss("metrics JSON histogram malformed");
  }
  return Status::Ok();
}

void Metrics::UpdateResourcePeaks() {
  auto raise = [](std::atomic<uint64_t>& gauge, uint64_t reading) {
    uint64_t seen = gauge.load(std::memory_order_relaxed);
    while (reading > seen && !gauge.compare_exchange_weak(
                                 seen, reading, std::memory_order_relaxed)) {
    }
  };
  const util::BufferPoolStats pool = util::GetBufferPoolStats();
  raise(pool_bytes_peak, pool.bytes_peak);
  pool_bytes_cached.store(pool.bytes_cached, std::memory_order_relaxed);
  raise(arena_bytes_peak, tensor::plan::ArenaBytesPeak());
  raise(rss_peak_kb, util::PeakRssKb());
}

std::string Metrics::ToJson() const { return Snapshot().ToJson(); }

MetricsSnapshot Metrics::Snapshot() const {
  MetricsSnapshot snap;
  snap.events_ingested = events_ingested.load(std::memory_order_relaxed);
  snap.sessions_begun = sessions_begun.load(std::memory_order_relaxed);
  snap.sessions_ended = sessions_ended.load(std::memory_order_relaxed);
  snap.sessions_evicted = sessions_evicted.load(std::memory_order_relaxed);
  snap.sessions_exported = sessions_exported.load(std::memory_order_relaxed);
  snap.sessions_imported = sessions_imported.load(std::memory_order_relaxed);
  snap.edges_ingested = edges_ingested.load(std::memory_order_relaxed);
  snap.scores_completed = scores_completed.load(std::memory_order_relaxed);
  snap.scores_failed = scores_failed.load(std::memory_order_relaxed);
  snap.overload_rejections =
      overload_rejections.load(std::memory_order_relaxed);
  snap.state_refolds = state_refolds.load(std::memory_order_relaxed);
  snap.state_rescales = state_rescales.load(std::memory_order_relaxed);
  snap.model_loads = model_loads.load(std::memory_order_relaxed);
  snap.model_activations = model_activations.load(std::memory_order_relaxed);
  snap.version_rebases = version_rebases.load(std::memory_order_relaxed);
  snap.mixed_version_scores =
      mixed_version_scores.load(std::memory_order_relaxed);
  snap.shadow_scores = shadow_scores.load(std::memory_order_relaxed);
  snap.shadow_failures = shadow_failures.load(std::memory_order_relaxed);
  snap.shadow_delta_sum =
      static_cast<double>(
          shadow_delta_sum_nanos.load(std::memory_order_relaxed)) *
      1e-9;
  {
    const uint64_t bits =
        shadow_delta_max_bits.load(std::memory_order_relaxed);
    std::memcpy(&snap.shadow_delta_max, &bits, sizeof(bits));
  }
  snap.bytes_received = bytes_received.load(std::memory_order_relaxed);
  snap.bytes_sent = bytes_sent.load(std::memory_order_relaxed);
  snap.frames_received = frames_received.load(std::memory_order_relaxed);
  snap.frames_sent = frames_sent.load(std::memory_order_relaxed);
  snap.connections_accepted =
      connections_accepted.load(std::memory_order_relaxed);
  snap.connections_closed = connections_closed.load(std::memory_order_relaxed);
  snap.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
  snap.pool_bytes_peak = pool_bytes_peak.load(std::memory_order_relaxed);
  snap.pool_bytes_cached = pool_bytes_cached.load(std::memory_order_relaxed);
  snap.arena_bytes_peak = arena_bytes_peak.load(std::memory_order_relaxed);
  snap.rss_peak_kb = rss_peak_kb.load(std::memory_order_relaxed);
  snap.ingest_latency = ingest_latency.Snap();
  snap.score_latency = score_latency.Snap();
  snap.e2e_latency = e2e_latency.Snap();
  snap.shadow_latency = shadow_latency.Snap();
  return snap;
}

}  // namespace tpgnn::serve
