#include "serve/metrics.h"

#include <cmath>
#include <sstream>

namespace tpgnn::serve {

namespace {

// Bucket index for a microsecond sample: floor(log2(micros)), clamped.
int BucketIndex(double micros) {
  if (!(micros >= 1.0)) {  // Also catches NaN.
    return 0;
  }
  const int idx = static_cast<int>(std::log2(micros));
  return idx >= LatencyHistogram::kNumBuckets
             ? LatencyHistogram::kNumBuckets - 1
             : idx;
}

}  // namespace

void LatencyHistogram::Record(double micros) {
  if (micros < 0.0 || std::isnan(micros)) {
    micros = 0.0;
  }
  buckets_[static_cast<size_t>(BucketIndex(micros))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(micros * 1e3),
                       std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_micros =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-3;
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return snap;
}

double LatencyHistogram::Snapshot::PercentileMicros(double q) const {
  if (count == 0) {
    return 0.0;
  }
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[static_cast<size_t>(i)];
    if (static_cast<double>(cumulative) >= target) {
      // Upper edge of bucket i: 2^(i+1) µs (bucket 0 covers [0, 2)).
      return std::ldexp(1.0, i + 1);
    }
  }
  return std::ldexp(1.0, kNumBuckets);
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  os << "events=" << events_ingested << " sessions=" << sessions_begun << "/"
     << sessions_ended << " evicted=" << sessions_evicted
     << " edges=" << edges_ingested << " scores=" << scores_completed << "/"
     << scores_failed << " overloads=" << overload_rejections
     << " refolds=" << state_refolds << " rescales=" << state_rescales
     << " score_us{p50=" <<
      score_latency.PercentileMicros(0.5)
     << " p95=" << score_latency.PercentileMicros(0.95)
     << " p99=" << score_latency.PercentileMicros(0.99) << "}";
  return os.str();
}

namespace {

void AppendHistogramJson(std::ostringstream& os, const char* name,
                         const LatencyHistogram::Snapshot& h) {
  os << "\"" << name << "\": {\"count\": " << h.count
     << ", \"mean\": " << h.mean_micros()
     << ", \"p50\": " << h.PercentileMicros(0.5)
     << ", \"p95\": " << h.PercentileMicros(0.95)
     << ", \"p99\": " << h.PercentileMicros(0.99) << "}";
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\": {"
     << "\"events_ingested\": " << events_ingested
     << ", \"sessions_begun\": " << sessions_begun
     << ", \"sessions_ended\": " << sessions_ended
     << ", \"sessions_evicted\": " << sessions_evicted
     << ", \"edges_ingested\": " << edges_ingested
     << ", \"scores_completed\": " << scores_completed
     << ", \"scores_failed\": " << scores_failed
     << ", \"overload_rejections\": " << overload_rejections
     << ", \"state_refolds\": " << state_refolds
     << ", \"state_rescales\": " << state_rescales
     << ", \"bytes_received\": " << bytes_received
     << ", \"bytes_sent\": " << bytes_sent
     << ", \"frames_received\": " << frames_received
     << ", \"frames_sent\": " << frames_sent
     << ", \"connections_accepted\": " << connections_accepted
     << ", \"connections_closed\": " << connections_closed
     << ", \"protocol_errors\": " << protocol_errors
     << "}, \"latency_us\": {";
  AppendHistogramJson(os, "ingest", ingest_latency);
  os << ", ";
  AppendHistogramJson(os, "score", score_latency);
  os << ", ";
  AppendHistogramJson(os, "e2e", e2e_latency);
  os << "}}";
  return os.str();
}

std::string Metrics::ToJson() const { return Snapshot().ToJson(); }

MetricsSnapshot Metrics::Snapshot() const {
  MetricsSnapshot snap;
  snap.events_ingested = events_ingested.load(std::memory_order_relaxed);
  snap.sessions_begun = sessions_begun.load(std::memory_order_relaxed);
  snap.sessions_ended = sessions_ended.load(std::memory_order_relaxed);
  snap.sessions_evicted = sessions_evicted.load(std::memory_order_relaxed);
  snap.edges_ingested = edges_ingested.load(std::memory_order_relaxed);
  snap.scores_completed = scores_completed.load(std::memory_order_relaxed);
  snap.scores_failed = scores_failed.load(std::memory_order_relaxed);
  snap.overload_rejections =
      overload_rejections.load(std::memory_order_relaxed);
  snap.state_refolds = state_refolds.load(std::memory_order_relaxed);
  snap.state_rescales = state_rescales.load(std::memory_order_relaxed);
  snap.bytes_received = bytes_received.load(std::memory_order_relaxed);
  snap.bytes_sent = bytes_sent.load(std::memory_order_relaxed);
  snap.frames_received = frames_received.load(std::memory_order_relaxed);
  snap.frames_sent = frames_sent.load(std::memory_order_relaxed);
  snap.connections_accepted =
      connections_accepted.load(std::memory_order_relaxed);
  snap.connections_closed = connections_closed.load(std::memory_order_relaxed);
  snap.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
  snap.ingest_latency = ingest_latency.Snap();
  snap.score_latency = score_latency.Snap();
  snap.e2e_latency = e2e_latency.Snap();
  return snap;
}

}  // namespace tpgnn::serve
