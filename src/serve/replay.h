#ifndef TPGNN_SERVE_REPLAY_H_
#define TPGNN_SERVE_REPLAY_H_

#include <cstdint>
#include <vector>

#include "graph/temporal_graph.h"
#include "serve/event.h"

// Turns any labeled GraphDataset into a timestamp-ordered interleaved event
// stream: each graph becomes one session (Begin with nodes + features, its
// edges in chronological order, optional periodic Score requests, a final
// Score, End), sessions start staggered along the stream clock, and the
// merged stream is sorted by stream time. The construction is fully
// deterministic in (dataset, options), so replay-driven tests and
// benchmarks are reproducible.

namespace tpgnn::serve {

struct ReplayOptions {
  // Stream seconds between consecutive session starts (before the speed
  // multiplier); controls how many sessions are concurrently open.
  double session_start_interval = 1.0;
  // Speed multiplier: all stream-time gaps are divided by this, compressing
  // (speed > 1) or stretching (speed < 1) the stream. Must be > 0.
  double speed = 1.0;
  // Emit a Score request every this many edges of a session (0 disables
  // mid-session scores).
  int64_t score_every_edges = 0;
  // Emit one Score with the session's ground-truth label just before End.
  bool score_at_end = true;
  // Session ids are assigned first_session_id, first_session_id + 1, ...
  uint64_t first_session_id = 1;
};

class EventReplayer {
 public:
  EventReplayer(const graph::GraphDataset& dataset,
                const ReplayOptions& options);

  // The merged stream, nondecreasing in Event::time; events of one session
  // keep their session order (Begin < edges < scores/End).
  const std::vector<Event>& events() const { return events_; }

  size_t num_sessions() const { return num_sessions_; }
  size_t num_score_requests() const { return num_score_requests_; }
  // Stream time of the last event (seconds).
  double duration() const;

 private:
  std::vector<Event> events_;
  size_t num_sessions_ = 0;
  size_t num_score_requests_ = 0;
};

}  // namespace tpgnn::serve

#endif  // TPGNN_SERVE_REPLAY_H_
