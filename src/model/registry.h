#ifndef TPGNN_MODEL_REGISTRY_H_
#define TPGNN_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/model.h"
#include "util/status.h"

// Versioned model registry: the zero-downtime model lifecycle (DESIGN.md
// §4.8). A serving process holds one ModelRegistry; every scoring path
// resolves a refcounted immutable ModelVersion through it instead of
// touching a process-wide TpGnnModel, so a checkpoint swap under live
// traffic is an atomic pointer move — in-flight sessions keep the version
// they folded their state under (the fold is parameter-dependent; mixing
// versions inside one score would be silently wrong) and new sessions pick
// up the new primary immediately.
//
// Lifecycle verbs:
//   * Load(name, path): read a checkpoint into a new inactive version.
//     The metadata block is validated against the registry config before
//     any parameter is touched — every version shares one architecture, so
//     folded state is shape-compatible across a rebase.
//   * Activate(name, policy): atomically make `name` the primary.
//     kDrain leaves live sessions pinned to their version until they end;
//     kImmediateRebase bumps the assignment epoch, which tells shards to
//     re-resolve each session at its next touch and refold its state under
//     the new version (counted as `version_rebases`).
//   * SetCandidate(name, fraction): deterministic per-session A/B split —
//     splitmix64(session id ^ salt) routes `fraction` of sessions to the
//     candidate, the rest to the primary. Assignment is a pure function of
//     (session id, candidate seq, fraction, salt): the same session always
//     lands on the same side, on every backend.
//   * SetShadow(name): the shadow version re-scores every primary score
//     off the client path; logit deltas land in the metrics shadow block
//     and never reach a client.
//   * Retire(name): drop the registry's reference; live sessions pinned to
//     the version keep it alive through their shared_ptr until they end.
//
// Threading: all methods are thread-safe. Resolution (ResolveForSession /
// primary / shadow) is a mutex-guarded shared_ptr copy; the assignment
// epoch is a lock-free atomic so per-event staleness checks stay O(1).

namespace tpgnn::model {

// How Activate treats sessions already folded under the old primary.
enum class SwapPolicy {
  kDrain,            // Pinned sessions keep their version until they end.
  kImmediateRebase,  // Sessions re-resolve and refold at their next touch.
};

// One immutable published model version. The parameters are frozen once
// the version is registered (inference never mutates module state); the
// registry hands out shared_ptr<const ModelVersion> handles whose refcount
// keeps a retired version alive while sessions still score against it.
class ModelVersion {
 public:
  ModelVersion(std::string name, uint64_t seq, const core::TpGnnConfig& config,
               uint64_t seed, std::string source_path);

  const std::string& name() const { return name_; }
  // Monotone registration sequence number; the mixed-version guard compares
  // fold seqs against it.
  uint64_t seq() const { return seq_; }
  const std::string& source_path() const { return source_path_; }
  const core::TpGnnModel& model() const { return *model_; }
  // Parameter loading happens before the version is published; the engine's
  // legacy model() accessor also mutates the initial version in place
  // (trainer flows copy parameters in before serving starts).
  core::TpGnnModel& mutable_model() { return *model_; }

 private:
  const std::string name_;
  const uint64_t seq_;
  const std::string source_path_;
  std::unique_ptr<core::TpGnnModel> model_;
};

using ModelVersionPtr = std::shared_ptr<const ModelVersion>;

// Snapshot row of StatusJson / Versions().
struct ModelVersionInfo {
  std::string name;
  uint64_t seq = 0;
  std::string source_path;
  bool is_primary = false;
  bool is_candidate = false;
  bool is_shadow = false;
  long use_count = 0;  // Outstanding handles (sessions + roles + snapshot).
};

class ModelRegistry {
 public:
  // Creates and activates the initial version (named `initial_name`) with
  // freshly initialized parameters from (config, seed).
  ModelRegistry(const core::TpGnnConfig& config, uint64_t seed,
                const std::string& initial_name = "v0");

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Loads `path` into a new inactive version `name`. Fails with
  // kInvalidArgument on a duplicate or empty name, kFailedPrecondition when
  // the checkpoint metadata names a different architecture, and propagates
  // checkpoint I/O errors. The `model.load` failpoint injects load failures
  // before any file is touched.
  Status Load(const std::string& name, const std::string& path);

  // Registers a freshly initialized (no checkpoint) version — test and
  // bench seam for "a second model" without a file round-trip.
  Status Register(const std::string& name, uint64_t seed);

  // Atomically makes `name` the primary. Under kImmediateRebase the
  // assignment epoch bumps so shards re-resolve sessions at next touch;
  // under kDrain live sessions finish on their pinned version. Activating a
  // version that is the candidate or shadow clears that role first. The
  // `model.activate` failpoint injects activation failures.
  Status Activate(const std::string& name, SwapPolicy policy);

  // A/B: route `fraction` (clamped to [0, 1]) of sessions to `name`.
  // Bumps the assignment epoch so live sessions re-resolve deterministically.
  Status SetCandidate(const std::string& name, double fraction);
  Status ClearCandidate();

  // Shadow: re-score every primary score under `name`, off the client path.
  Status SetShadow(const std::string& name);
  Status ClearShadow();

  // Drops the registry reference to an inactive version. Fails with
  // kFailedPrecondition while `name` is the primary, candidate, or shadow.
  Status Retire(const std::string& name);

  // Deterministic per-session resolution: the candidate when one is set and
  // splitmix64(session_id ^ salt) falls inside the fraction, else the
  // primary. `*epoch` (optional) receives the assignment epoch the decision
  // was made under, read atomically with the decision.
  ModelVersionPtr ResolveForSession(uint64_t session_id,
                                    uint64_t* epoch = nullptr) const;

  ModelVersionPtr primary() const;
  ModelVersionPtr candidate() const;
  ModelVersionPtr shadow() const;
  // Lookup by name; by the empty string resolves to the primary (the
  // version-1 session-state snapshots carry no version tag). Null when the
  // name is unknown.
  ModelVersionPtr Find(const std::string& name) const;

  // Bumped on every assignment-visible change (immediate-rebase activation,
  // candidate set/clear). Shards compare a session's stamped epoch against
  // this before touching its state.
  uint64_t assignment_epoch() const {
    return assignment_epoch_.load(std::memory_order_acquire);
  }

  const core::TpGnnConfig& config() const { return config_; }

  // The initial version's mutable model — the engine's legacy model()
  // accessor (trainer flows copy parameters in before serving starts).
  core::TpGnnModel& initial_model() { return initial_->mutable_model(); }

  double ab_fraction() const;
  uint64_t ab_salt() const { return ab_salt_; }
  void set_ab_salt(uint64_t salt) { ab_salt_ = salt; }

  std::vector<ModelVersionInfo> Versions() const;
  // {"primary": ..., "candidate": ..., "ab_fraction": ..., "shadow": ...,
  //  "assignment_epoch": ..., "versions": [...]} — the MODEL_STATUS payload.
  std::string StatusJson() const;

 private:
  ModelVersionPtr FindLocked(const std::string& name) const;

  const core::TpGnnConfig config_;
  const uint64_t seed_;
  uint64_t ab_salt_ = 0x7450474e4d4f444cULL;  // "TPGN MODL"

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<ModelVersion>> versions_;
  std::shared_ptr<ModelVersion> initial_;
  ModelVersionPtr primary_;
  ModelVersionPtr candidate_;
  ModelVersionPtr shadow_;
  double ab_fraction_ = 0.0;
  uint64_t next_seq_ = 1;
  std::atomic<uint64_t> assignment_epoch_{0};
};

// The deterministic A/B hash, exposed so tests and remote tooling can
// predict assignments: a session routes to the candidate iff
// SplitMix64(session_id ^ salt) < fraction * 2^64.
uint64_t SplitMix64(uint64_t value);
bool AbPicksCandidate(uint64_t session_id, uint64_t salt, double fraction);

}  // namespace tpgnn::model

#endif  // TPGNN_MODEL_REGISTRY_H_
