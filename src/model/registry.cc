#include "model/registry.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "nn/checkpoint.h"
#include "util/failpoint.h"

namespace tpgnn::model {

uint64_t SplitMix64(uint64_t value) {
  value += 0x9e3779b97f4a7c15ULL;
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ULL;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebULL;
  return value ^ (value >> 31);
}

bool AbPicksCandidate(uint64_t session_id, uint64_t salt, double fraction) {
  if (!(fraction > 0.0)) {
    return false;
  }
  if (fraction >= 1.0) {
    return true;
  }
  // Threshold in the hash's full 64-bit range; ldexp keeps the product
  // exact for the fractions people actually configure (powers of two) and
  // monotone for the rest.
  const double threshold = std::ldexp(fraction, 64);
  return static_cast<double>(SplitMix64(session_id ^ salt)) < threshold;
}

ModelVersion::ModelVersion(std::string name, uint64_t seq,
                           const core::TpGnnConfig& config, uint64_t seed,
                           std::string source_path)
    : name_(std::move(name)),
      seq_(seq),
      source_path_(std::move(source_path)),
      model_(std::make_unique<core::TpGnnModel>(config, seed)) {}

ModelRegistry::ModelRegistry(const core::TpGnnConfig& config, uint64_t seed,
                             const std::string& initial_name)
    : config_(config), seed_(seed) {
  initial_ = std::make_shared<ModelVersion>(initial_name, next_seq_++, config_,
                                            seed_, /*source_path=*/"");
  versions_.emplace(initial_name, initial_);
  primary_ = initial_;
}

Status ModelRegistry::Load(const std::string& name, const std::string& path) {
  // Injected load failure: fires before the file is opened, so a failed
  // load never leaves a half-registered version behind.
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("model.load", &hit)) {
    if (hit.kind == failpoint::Kind::kDelay) {
      failpoint::ApplyDelay(hit);
    } else {
      return failpoint::InjectedError(StatusCode::kDataLoss, "model.load");
    }
  }
  if (name.empty()) {
    return Status::InvalidArgument("model version name must be non-empty");
  }
  uint64_t seq = 0;
  {
    // Reserve the seq up front; a failed load leaves a harmless gap in the
    // (merely monotone) sequence rather than a half-registered version.
    std::lock_guard<std::mutex> lock(mu_);
    if (versions_.count(name) > 0) {
      return Status::InvalidArgument("duplicate model version " + name);
    }
    seq = next_seq_++;
  }
  // Pre-flight: reject a checkpoint from a different architecture before
  // any parameter is touched. Every version must share the registry config
  // so folded session state stays shape-compatible across a rebase.
  nn::CheckpointMetadata metadata;
  if (Status s = nn::ReadCheckpointMetadata(path, &metadata); !s.ok()) {
    return s;
  }
  if (Status s = core::ValidateConfigMetadata(config_, metadata); !s.ok()) {
    return s;
  }
  // Build and fill the version outside the lock — checkpoint parsing is the
  // slow part and must not stall resolution on the scoring path.
  auto version = std::make_shared<ModelVersion>(name, seq, config_, seed_,
                                                path);
  if (Status s = nn::LoadParameters(version->mutable_model(), path); !s.ok()) {
    return s;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (versions_.count(name) > 0) {
    return Status::InvalidArgument("duplicate model version " + name);
  }
  versions_.emplace(name, std::move(version));
  return Status::Ok();
}

Status ModelRegistry::Register(const std::string& name, uint64_t seed) {
  if (name.empty()) {
    return Status::InvalidArgument("model version name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (versions_.count(name) > 0) {
    return Status::InvalidArgument("duplicate model version " + name);
  }
  auto version = std::make_shared<ModelVersion>(name, next_seq_++, config_,
                                                seed, /*source_path=*/"");
  versions_.emplace(name, version);
  return Status::Ok();
}

Status ModelRegistry::Activate(const std::string& name, SwapPolicy policy) {
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("model.activate", &hit)) {
    if (hit.kind == failpoint::Kind::kDelay) {
      failpoint::ApplyDelay(hit);
    } else {
      return failpoint::InjectedError(StatusCode::kFailedPrecondition,
                                      "model.activate");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ModelVersionPtr version = FindLocked(name);
  if (version == nullptr) {
    return Status::NotFound("unknown model version " + name);
  }
  if (candidate_ != nullptr && candidate_->name() == name) {
    candidate_ = nullptr;
    ab_fraction_ = 0.0;
  }
  if (shadow_ != nullptr && shadow_->name() == name) {
    shadow_ = nullptr;
  }
  primary_ = version;
  if (policy == SwapPolicy::kImmediateRebase) {
    assignment_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  return Status::Ok();
}

Status ModelRegistry::SetCandidate(const std::string& name, double fraction) {
  std::lock_guard<std::mutex> lock(mu_);
  ModelVersionPtr version = FindLocked(name);
  if (version == nullptr) {
    return Status::NotFound("unknown model version " + name);
  }
  if (primary_ != nullptr && primary_->name() == name) {
    return Status::FailedPrecondition("model version " + name +
                                      " is the primary");
  }
  if (fraction < 0.0 || fraction > 1.0 || std::isnan(fraction)) {
    return Status::InvalidArgument("A/B fraction must be in [0, 1]");
  }
  candidate_ = version;
  ab_fraction_ = fraction;
  assignment_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

Status ModelRegistry::ClearCandidate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (candidate_ != nullptr) {
    candidate_ = nullptr;
    ab_fraction_ = 0.0;
    assignment_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  return Status::Ok();
}

Status ModelRegistry::SetShadow(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  ModelVersionPtr version = FindLocked(name);
  if (version == nullptr) {
    return Status::NotFound("unknown model version " + name);
  }
  if (primary_ != nullptr && primary_->name() == name) {
    return Status::FailedPrecondition("model version " + name +
                                      " is the primary");
  }
  shadow_ = version;
  return Status::Ok();
}

Status ModelRegistry::ClearShadow() {
  std::lock_guard<std::mutex> lock(mu_);
  shadow_ = nullptr;
  return Status::Ok();
}

Status ModelRegistry::Retire(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = versions_.find(name);
  if (it == versions_.end()) {
    return Status::NotFound("unknown model version " + name);
  }
  const auto is_role = [&](const ModelVersionPtr& role) {
    return role != nullptr && role->name() == name;
  };
  if (is_role(primary_) || is_role(candidate_) || is_role(shadow_)) {
    return Status::FailedPrecondition(
        "model version " + name + " is active (primary/candidate/shadow)");
  }
  versions_.erase(it);  // Sessions still holding handles keep it alive.
  return Status::Ok();
}

ModelVersionPtr ModelRegistry::ResolveForSession(uint64_t session_id,
                                                 uint64_t* epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  // The epoch is read under the same lock every epoch bump happens under,
  // so a stamped (version, epoch) pair is always consistent.
  if (epoch != nullptr) {
    *epoch = assignment_epoch_.load(std::memory_order_acquire);
  }
  if (candidate_ != nullptr &&
      AbPicksCandidate(session_id, ab_salt_, ab_fraction_)) {
    return candidate_;
  }
  return primary_;
}

ModelVersionPtr ModelRegistry::primary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return primary_;
}

ModelVersionPtr ModelRegistry::candidate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return candidate_;
}

ModelVersionPtr ModelRegistry::shadow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shadow_;
}

ModelVersionPtr ModelRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (name.empty()) {
    return primary_;
  }
  return FindLocked(name);
}

ModelVersionPtr ModelRegistry::FindLocked(const std::string& name) const {
  auto it = versions_.find(name);
  return it == versions_.end() ? nullptr : it->second;
}

double ModelRegistry::ab_fraction() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ab_fraction_;
}

std::vector<ModelVersionInfo> ModelRegistry::Versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ModelVersionInfo> infos;
  infos.reserve(versions_.size());
  const auto is_role = [](const ModelVersionPtr& role,
                          const std::shared_ptr<ModelVersion>& v) {
    return role != nullptr && role.get() == v.get();
  };
  for (const auto& [name, version] : versions_) {
    ModelVersionInfo info;
    info.name = name;
    info.seq = version->seq();
    info.source_path = version->source_path();
    info.is_primary = is_role(primary_, version);
    info.is_candidate = is_role(candidate_, version);
    info.is_shadow = is_role(shadow_, version);
    info.use_count = version.use_count();
    infos.push_back(std::move(info));
  }
  return infos;
}

std::string ModelRegistry::StatusJson() const {
  std::vector<ModelVersionInfo> infos = Versions();
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  const auto name_or_null = [&os](const ModelVersionPtr& v) {
    if (v == nullptr) {
      os << "null";
    } else {
      os << "\"" << v->name() << "\"";
    }
  };
  os << "{\"primary\": ";
  name_or_null(primary_);
  os << ", \"candidate\": ";
  name_or_null(candidate_);
  os << ", \"ab_fraction\": " << ab_fraction_;
  os << ", \"shadow\": ";
  name_or_null(shadow_);
  os << ", \"assignment_epoch\": "
     << assignment_epoch_.load(std::memory_order_acquire);
  os << ", \"versions\": [";
  bool first = true;
  for (const ModelVersionInfo& info : infos) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << info.name << "\", \"seq\": " << info.seq
       << ", \"primary\": " << (info.is_primary ? "true" : "false")
       << ", \"candidate\": " << (info.is_candidate ? "true" : "false")
       << ", \"shadow\": " << (info.is_shadow ? "true" : "false")
       << ", \"refs\": " << info.use_count;
    if (!info.source_path.empty()) {
      os << ", \"source\": \"" << info.source_path << "\"";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace tpgnn::model
