#ifndef TPGNN_NN_INIT_H_
#define TPGNN_NN_INIT_H_

#include "tensor/tensor.h"
#include "util/rng.h"

// Weight initialization schemes.

namespace tpgnn::nn {

// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
tensor::Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng);

// Uniform in (-1/sqrt(fan_in), 1/sqrt(fan_in)); PyTorch's default for
// recurrent cells and linear biases.
tensor::Tensor ScaledUniform(const tensor::Shape& shape, int64_t fan_in,
                             Rng& rng);

}  // namespace tpgnn::nn

#endif  // TPGNN_NN_INIT_H_
