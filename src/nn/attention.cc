#include "nn/attention.h"

#include <cmath>
#include <string>

#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::nn {

using tensor::Add;
using tensor::AddScalar;
using tensor::Concat;
using tensor::MatMul;
using tensor::Scale;
using tensor::Softmax;
using tensor::Tensor;
using tensor::Transpose;

Tensor ScaledDotProductAttention(const Tensor& q, const Tensor& k,
                                 const Tensor& v, const Tensor* mask) {
  TPGNN_CHECK_EQ(q.dim(), 2);
  TPGNN_CHECK_EQ(k.dim(), 2);
  TPGNN_CHECK_EQ(v.dim(), 2);
  TPGNN_CHECK_EQ(q.size(1), k.size(1));
  TPGNN_CHECK_EQ(k.size(0), v.size(0));

  const float scale = 1.0f / std::sqrt(static_cast<float>(q.size(1)));
  Tensor scores = Scale(MatMul(q, Transpose(k)), scale);
  if (mask != nullptr) {
    TPGNN_CHECK_EQ(mask->size(0), q.size(0));
    TPGNN_CHECK_EQ(mask->size(1), k.size(0));
    // mask==0 -> large negative additive penalty.
    Tensor penalty = Scale(AddScalar(mask->Detach(), -1.0f), 1e9f);
    scores = Add(scores, penalty);
  }
  Tensor attn = Softmax(scores);
  return MatMul(attn, v);
}

MultiheadAttention::MultiheadAttention(int64_t model_dim, int64_t num_heads,
                                       Rng& rng)
    : model_dim_(model_dim), num_heads_(num_heads) {
  TPGNN_CHECK_GT(num_heads, 0);
  TPGNN_CHECK_EQ(model_dim % num_heads, 0)
      << "model_dim must be divisible by num_heads";
  head_dim_ = model_dim / num_heads;
  for (int64_t h = 0; h < num_heads_; ++h) {
    wq_.push_back(std::make_unique<Linear>(model_dim_, head_dim_, rng,
                                           /*bias=*/false));
    wk_.push_back(std::make_unique<Linear>(model_dim_, head_dim_, rng,
                                           /*bias=*/false));
    wv_.push_back(std::make_unique<Linear>(model_dim_, head_dim_, rng,
                                           /*bias=*/false));
    const std::string suffix = std::to_string(h);
    RegisterChild("wq" + suffix, wq_.back().get());
    RegisterChild("wk" + suffix, wk_.back().get());
    RegisterChild("wv" + suffix, wv_.back().get());
  }
  wo_ = std::make_unique<Linear>(model_dim_, model_dim_, rng);
  RegisterChild("wo", wo_.get());
}

Tensor MultiheadAttention::Forward(const Tensor& q, const Tensor& k,
                                   const Tensor& v,
                                   const Tensor* mask) const {
  TPGNN_CHECK_EQ(q.size(1), model_dim_);
  TPGNN_CHECK_EQ(k.size(1), model_dim_);
  TPGNN_CHECK_EQ(v.size(1), model_dim_);
  std::vector<Tensor> heads;
  heads.reserve(static_cast<size_t>(num_heads_));
  for (int64_t h = 0; h < num_heads_; ++h) {
    const size_t hs = static_cast<size_t>(h);
    Tensor qh = wq_[hs]->Forward(q);
    Tensor kh = wk_[hs]->Forward(k);
    Tensor vh = wv_[hs]->Forward(v);
    heads.push_back(ScaledDotProductAttention(qh, kh, vh, mask));
  }
  Tensor combined = Concat(heads, /*axis=*/1);
  return wo_->Forward(combined);
}

}  // namespace tpgnn::nn
