#ifndef TPGNN_NN_GRU_CELL_H_
#define TPGNN_NN_GRU_CELL_H_

#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace tpgnn::nn {

// Reusable scratch for GruCell::StepInto; holding one per propagation loop
// keeps the per-edge inference step allocation-free after the first edge.
struct GruScratch {
  std::vector<float> z, r, n, hu, xn;
};

// Gated recurrent unit cell (Cho et al. 2014):
//   z = sigmoid(x Wz + h Uz + bz)
//   r = sigmoid(x Wr + h Ur + br)
//   n = tanh(x Wn + r o (h Un) + bn)
//   h' = z o h + (1 - z) o n
// matching Eqs. (7)-(10) of the TP-GNN paper (there S plays the role of h and
// the update gate retains the previous state).
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  // x: [batch, input_size], h: [batch, hidden_size] -> [batch, hidden_size].
  tensor::Tensor Forward(const tensor::Tensor& x,
                         const tensor::Tensor& h) const;

  // Raw single-row step for the zero-copy inference path: x [input_size],
  // h [hidden_size], out [hidden_size]. Runs the same GEMM kernels and
  // elementwise formulas as Forward, in the same order, so the result is
  // bit-identical to the recorded path. `out` may alias `h` (in-place state
  // update); no autograd, no heap allocation once `scratch` is warm.
  void StepInto(const float* x, const float* h, float* out,
                GruScratch& scratch) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

  // Parameter views for the planned per-edge executor (tensor/plan.h): the
  // compiled GRU program reads the same storage the recorded Forward and
  // StepInto consume, through the plan's parameter table.
  const tensor::Tensor& wz() const { return wz_; }
  const tensor::Tensor& uz() const { return uz_; }
  const tensor::Tensor& bz() const { return bz_; }
  const tensor::Tensor& wr() const { return wr_; }
  const tensor::Tensor& ur() const { return ur_; }
  const tensor::Tensor& br() const { return br_; }
  const tensor::Tensor& wn() const { return wn_; }
  const tensor::Tensor& un() const { return un_; }
  const tensor::Tensor& bn() const { return bn_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  tensor::Tensor wz_, uz_, bz_;
  tensor::Tensor wr_, ur_, br_;
  tensor::Tensor wn_, un_, bn_;
};

}  // namespace tpgnn::nn

#endif  // TPGNN_NN_GRU_CELL_H_
