#ifndef TPGNN_NN_EMBEDDING_H_
#define TPGNN_NN_EMBEDDING_H_

#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace tpgnn::nn {

// Learned lookup table mapping integer ids to dense vectors.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng& rng);

  // indices in [0, num_embeddings) -> [indices.size(), dim].
  tensor::Tensor Forward(const std::vector<int64_t>& indices) const;

  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  tensor::Tensor weight_;  // [num_embeddings, dim]
};

}  // namespace tpgnn::nn

#endif  // TPGNN_NN_EMBEDDING_H_
