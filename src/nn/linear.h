#ifndef TPGNN_NN_LINEAR_H_
#define TPGNN_NN_LINEAR_H_

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace tpgnn::nn {

// Affine map y = x W + b for x of shape [batch, in_features].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  // x: [batch, in_features] -> [batch, out_features].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const tensor::Tensor& weight() const { return weight_; }
  bool has_bias() const { return has_bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
  tensor::Tensor weight_;  // [in, out]
  tensor::Tensor bias_;    // [out]
};

}  // namespace tpgnn::nn

#endif  // TPGNN_NN_LINEAR_H_
