#ifndef TPGNN_NN_CHECKPOINT_H_
#define TPGNN_NN_CHECKPOINT_H_

#include <map>
#include <string>

#include "nn/module.h"
#include "util/status.h"

// Plain-text model checkpoints: parameters are stored by their registered
// names, so loading verifies the architecture (name and shape) matches.
//
// Format (version 3; version-1 files — no `meta` block — and version-2
// files — no `crc32` trailer — still load):
//   tpgnn-params 3
//   meta <entry_count>                          (entry_count may be 0)
//   <key> <value ...>                           (one line per entry)
//   <parameter_count>
//   <name> <numel> <v_0> ... <v_{numel-1}>      (one line per parameter)
//   crc32 <8 lowercase hex digits>
//
// The metadata block carries free-form key/value strings (keys are single
// tokens, values run to the end of the line). It lets a consumer such as
// serve::InferenceEngine verify the producing configuration (hidden dim,
// extractor kind, ...) before parameters are loaded, failing with a clear
// Status instead of a shape mismatch mid-load. core/config.h provides the
// TpGnnConfig <-> metadata mapping.
//
// The crc32 trailer (IEEE polynomial) covers the *value region* — every
// byte from the parameter count line through the final parameter line.
// Loading a version-3 file verifies it before any value is parsed, so a
// flipped bit or torn tail anywhere in the region fails with kDataLoss
// instead of silently loading a perturbed model. Metadata stays outside
// the checksum: it is validated semantically by its consumers.
// ReadCheckpointMetadata deliberately skips the check — it is a cheap
// header-only pre-flight that never touches the payload.

namespace tpgnn::nn {

using CheckpointMetadata = std::map<std::string, std::string>;

// Saves with an empty metadata block (`meta 0`). Always writes version 3
// so every new checkpoint carries the integrity trailer.
Status SaveParameters(const Module& module, const std::string& path);

// Saves parameters plus the given metadata block. Keys must be non-empty
// single tokens (no whitespace); values may contain spaces but no newlines.
Status SaveParameters(const Module& module, const std::string& path,
                      const CheckpointMetadata& metadata);

// Loads values into `module`'s existing parameters; fails if any stored
// name is missing or has a different element count (and vice versa).
Status LoadParameters(Module& module, const std::string& path);

// As above; additionally returns the metadata block in `*metadata` (empty
// for version-1 files). `metadata` may be null.
Status LoadParameters(Module& module, const std::string& path,
                      CheckpointMetadata* metadata);

// Reads only the header and metadata block — cheap pre-flight validation
// without touching the parameter payload. Version-1 files yield an empty
// map.
Status ReadCheckpointMetadata(const std::string& path,
                              CheckpointMetadata* metadata);

}  // namespace tpgnn::nn

#endif  // TPGNN_NN_CHECKPOINT_H_
