#ifndef TPGNN_NN_CHECKPOINT_H_
#define TPGNN_NN_CHECKPOINT_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

// Plain-text model checkpoints: parameters are stored by their registered
// names, so loading verifies the architecture (name and shape) matches.
//
// Format:
//   tpgnn-params 1
//   <parameter_count>
//   <name> <numel> <v_0> ... <v_{numel-1}>     (one line per parameter)

namespace tpgnn::nn {

Status SaveParameters(const Module& module, const std::string& path);

// Loads values into `module`'s existing parameters; fails if any stored
// name is missing or has a different element count (and vice versa).
Status LoadParameters(Module& module, const std::string& path);

}  // namespace tpgnn::nn

#endif  // TPGNN_NN_CHECKPOINT_H_
