#ifndef TPGNN_NN_CHECKPOINT_H_
#define TPGNN_NN_CHECKPOINT_H_

#include <map>
#include <string>

#include "nn/module.h"
#include "util/status.h"

// Plain-text model checkpoints: parameters are stored by their registered
// names, so loading verifies the architecture (name and shape) matches.
//
// Format (version 2; version-1 files — no `meta` block — still load):
//   tpgnn-params 2
//   meta <entry_count>
//   <key> <value ...>                           (one line per entry)
//   <parameter_count>
//   <name> <numel> <v_0> ... <v_{numel-1}>      (one line per parameter)
//
// The metadata block carries free-form key/value strings (keys are single
// tokens, values run to the end of the line). It lets a consumer such as
// serve::InferenceEngine verify the producing configuration (hidden dim,
// extractor kind, ...) before parameters are loaded, failing with a clear
// Status instead of a shape mismatch mid-load. core/config.h provides the
// TpGnnConfig <-> metadata mapping.

namespace tpgnn::nn {

using CheckpointMetadata = std::map<std::string, std::string>;

// Saves with an empty metadata block (written as a version-1 file, so the
// format version only bumps when the new block is actually used).
Status SaveParameters(const Module& module, const std::string& path);

// Saves parameters plus the given metadata block. Keys must be non-empty
// single tokens (no whitespace); values may contain spaces but no newlines.
Status SaveParameters(const Module& module, const std::string& path,
                      const CheckpointMetadata& metadata);

// Loads values into `module`'s existing parameters; fails if any stored
// name is missing or has a different element count (and vice versa).
Status LoadParameters(Module& module, const std::string& path);

// As above; additionally returns the metadata block in `*metadata` (empty
// for version-1 files). `metadata` may be null.
Status LoadParameters(Module& module, const std::string& path,
                      CheckpointMetadata* metadata);

// Reads only the header and metadata block — cheap pre-flight validation
// without touching the parameter payload. Version-1 files yield an empty
// map.
Status ReadCheckpointMetadata(const std::string& path,
                              CheckpointMetadata* metadata);

}  // namespace tpgnn::nn

#endif  // TPGNN_NN_CHECKPOINT_H_
