#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  TPGNN_CHECK_GT(in_features, 0);
  TPGNN_CHECK_GT(out_features, 0);
  weight_ = RegisterParameter("weight",
                              XavierUniform(in_features, out_features, rng));
  if (has_bias_) {
    bias_ = RegisterParameter(
        "bias", ScaledUniform({out_features}, in_features, rng));
  }
}

tensor::Tensor Linear::Forward(const tensor::Tensor& x) const {
  TPGNN_CHECK_EQ(x.dim(), 2);
  TPGNN_CHECK_EQ(x.size(1), in_features_);
  tensor::Tensor y = tensor::MatMul(x, weight_);
  if (has_bias_) {
    y = tensor::Add(y, bias_);
  }
  return y;
}

}  // namespace tpgnn::nn
