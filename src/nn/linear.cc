#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  TPGNN_CHECK_GT(in_features, 0);
  TPGNN_CHECK_GT(out_features, 0);
  weight_ = RegisterParameter("weight",
                              XavierUniform(in_features, out_features, rng));
  if (has_bias_) {
    bias_ = RegisterParameter(
        "bias", ScaledUniform({out_features}, in_features, rng));
  }
}

tensor::Tensor Linear::Forward(const tensor::Tensor& x) const {
  TPGNN_CHECK_EQ(x.dim(), 2);
  TPGNN_CHECK_EQ(x.size(1), in_features_);
  if (has_bias_) {
    // One recorded op and one buffer; bit-identical to MatMul + Add.
    return tensor::Affine(x, weight_, bias_);
  }
  return tensor::MatMul(x, weight_);
}

}  // namespace tpgnn::nn
