#ifndef TPGNN_NN_TIME_ENCODING_H_
#define TPGNN_NN_TIME_ENCODING_H_

#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace tpgnn::nn {

// Time2Vec (Kazemi et al. 2019), Eq. (2) of the TP-GNN paper:
//   f(t) = (w0 * t + phi0) ++ sin(w * t + phi)
// The first output coordinate is linear in t; the remaining dim-1 are
// periodic.
class Time2Vec : public Module {
 public:
  Time2Vec(int64_t dim, Rng& rng);

  // Encodes a single timestamp -> [dim].
  tensor::Tensor Forward(float t) const;

  // Encodes a batch of timestamps -> [ts.size(), dim].
  tensor::Tensor Forward(const std::vector<float>& ts) const;

  // Raw encoding into out[0..dim) for the zero-copy inference path; computes
  // the same expressions as Forward(float) elementwise, so the values are
  // bit-identical. No autograd, no allocation.
  void EvalInto(float t, float* out) const;

  // Phasor of the periodic channels at raw time t: sin_out[i] =
  // sin(w[i] t + phi[i]), cos_out[i] = cos(w[i] t + phi[i]), each dim-1
  // wide. These are the max-time-invariant accumulands of the
  // TimeBasis::kInvariant SUM fold (DESIGN.md §4.3): summed per node, a
  // later shift of the encoder argument by -delta is recovered exactly as
  // Σ sin(θ - w δ) = (Σ sinθ) cos(w δ) - (Σ cosθ) sin(w δ).
  void EvalPhasorInto(float t, float* sin_out, float* cos_out) const;

  // The rotation coefficients for a shift by `delta`: cos_out[i] =
  // cos(w[i] delta), sin_out[i] = sin(w[i] delta) (no phase offset — the
  // phase lives inside the accumulated phasors).
  void EvalRotationInto(float delta, float* cos_out, float* sin_out) const;

  // Parameter views for the recorded (autograd) invariant-basis path; the
  // recorded fold must consume the same parameters the raw kernels read.
  const tensor::Tensor& w0() const { return w0_; }
  const tensor::Tensor& phi0() const { return phi0_; }
  const tensor::Tensor& w() const { return w_; }
  const tensor::Tensor& phi() const { return phi_; }

  int64_t dim() const { return dim_; }

 private:
  int64_t dim_;
  tensor::Tensor w0_;    // [1]
  tensor::Tensor phi0_;  // [1]
  tensor::Tensor w_;     // [dim - 1]
  tensor::Tensor phi_;   // [dim - 1]
};

// Bochner-theorem functional time encoding used by TGAT (Xu et al. 2020):
//   f(t) = sqrt(1/dim) * cos(w * t + phi)
class BochnerTimeEncoding : public Module {
 public:
  BochnerTimeEncoding(int64_t dim, Rng& rng);

  tensor::Tensor Forward(float t) const;  // -> [dim]

  int64_t dim() const { return dim_; }

 private:
  int64_t dim_;
  tensor::Tensor w_;    // [dim]
  tensor::Tensor phi_;  // [dim]
};

}  // namespace tpgnn::nn

#endif  // TPGNN_NN_TIME_ENCODING_H_
