#ifndef TPGNN_NN_NN_H_
#define TPGNN_NN_NN_H_

// Umbrella header for the neural-network module library.

#include "nn/attention.h"     // IWYU pragma: export
#include "nn/embedding.h"     // IWYU pragma: export
#include "nn/gru_cell.h"      // IWYU pragma: export
#include "nn/init.h"          // IWYU pragma: export
#include "nn/linear.h"        // IWYU pragma: export
#include "nn/lstm_cell.h"     // IWYU pragma: export
#include "nn/module.h"        // IWYU pragma: export
#include "nn/optimizer.h"     // IWYU pragma: export
#include "nn/time_encoding.h" // IWYU pragma: export

#endif  // TPGNN_NN_NN_H_
