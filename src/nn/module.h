#ifndef TPGNN_NN_MODULE_H_
#define TPGNN_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

// Base class for neural-network modules: owns named parameters, supports
// hierarchical composition, and exposes a flat parameter list for optimizers.

namespace tpgnn::nn {

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All trainable parameters of this module and registered children,
  // depth-first. The returned tensors alias module storage, so an optimizer
  // can update them in place.
  std::vector<tensor::Tensor> Parameters() const;

  // Named variants, with child parameters prefixed "child/".
  std::vector<std::pair<std::string, tensor::Tensor>> NamedParameters() const;

  // Total number of scalar parameters.
  int64_t ParameterCount() const;

  // Sets every parameter gradient buffer to zero.
  void ZeroGrad();

 protected:
  // Registers a trainable parameter; `value` must be a leaf tensor. The
  // registered tensor has requires_grad forced on. Returns the stored handle.
  tensor::Tensor RegisterParameter(std::string name, tensor::Tensor value);

  // Registers a child whose parameters are included in Parameters(). The
  // child must outlive this module (typically a member).
  void RegisterChild(std::string name, Module* child);

 private:
  std::vector<std::pair<std::string, tensor::Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace tpgnn::nn

#endif  // TPGNN_NN_MODULE_H_
