#include "nn/time_encoding.h"

#include <cmath>

#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::nn {

using tensor::AddScalar;
using tensor::Concat;
using tensor::Cos;
using tensor::Scale;
using tensor::Sin;
using tensor::Stack;
using tensor::Tensor;

Time2Vec::Time2Vec(int64_t dim, Rng& rng) : dim_(dim) {
  TPGNN_CHECK_GE(dim, 2) << "Time2Vec needs a linear plus >=1 periodic dim";
  w0_ = RegisterParameter("w0", Tensor::Uniform({1}, -1.0f, 1.0f, rng));
  phi0_ = RegisterParameter("phi0", Tensor::Uniform({1}, -1.0f, 1.0f, rng));
  w_ = RegisterParameter("w", Tensor::Uniform({dim - 1}, 0.0f, 1.0f, rng));
  phi_ = RegisterParameter(
      "phi", Tensor::Uniform({dim - 1}, 0.0f, 2.0f * static_cast<float>(M_PI),
                             rng));
}

Tensor Time2Vec::Forward(float t) const {
  Tensor linear = tensor::Add(Scale(w0_, t), phi0_);
  Tensor periodic = Sin(tensor::Add(Scale(w_, t), phi_));
  return Concat({linear, periodic}, /*axis=*/0);
}

Tensor Time2Vec::Forward(const std::vector<float>& ts) const {
  TPGNN_CHECK(!ts.empty());
  std::vector<Tensor> rows;
  rows.reserve(ts.size());
  for (float t : ts) {
    rows.push_back(Forward(t));
  }
  return Stack(rows);
}

// The Eval* fast paths run the dispatched time-encoding kernels
// (tensor/kernels.h). All three are in the bitwise parity class on every
// ISA — the phase w*t + phi keeps the recorded Sin(Add(Scale(w, t), phi))
// chain's two-step rounding and sin/cos stay libm — so these stay
// bit-identical to the recorded path in every SIMD mode.

void Time2Vec::EvalInto(float t, float* out) const {
  tensor::ActiveKernels().time2vec(out, t, w0_.data().data(),
                                   phi0_.data().data(), w_.data().data(),
                                   phi_.data().data(), dim_);
}

void Time2Vec::EvalPhasorInto(float t, float* sin_out, float* cos_out) const {
  tensor::ActiveKernels().phasor(sin_out, cos_out, t, w_.data().data(),
                                 phi_.data().data(), dim_ - 1);
}

void Time2Vec::EvalRotationInto(float delta, float* cos_out,
                                float* sin_out) const {
  tensor::ActiveKernels().rotation(cos_out, sin_out, delta, w_.data().data(),
                                   dim_ - 1);
}

BochnerTimeEncoding::BochnerTimeEncoding(int64_t dim, Rng& rng) : dim_(dim) {
  TPGNN_CHECK_GE(dim, 1);
  w_ = RegisterParameter("w", Tensor::Uniform({dim}, 0.0f, 1.0f, rng));
  phi_ = RegisterParameter(
      "phi",
      Tensor::Uniform({dim}, 0.0f, 2.0f * static_cast<float>(M_PI), rng));
}

Tensor BochnerTimeEncoding::Forward(float t) const {
  const float scale = std::sqrt(1.0f / static_cast<float>(dim_));
  return Scale(Cos(tensor::Add(Scale(w_, t), phi_)), scale);
}

}  // namespace tpgnn::nn
