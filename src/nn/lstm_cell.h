#ifndef TPGNN_NN_LSTM_CELL_H_
#define TPGNN_NN_LSTM_CELL_H_

#include <utility>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace tpgnn::nn {

// Long short-term memory cell:
//   i = sigmoid(x Wi + h Ui + bi)      f = sigmoid(x Wf + h Uf + bf)
//   g = tanh(x Wg + h Ug + bg)         o = sigmoid(x Wo + h Uo + bo)
//   c' = f o c + i o g                 h' = o o tanh(c')
// Used by the GC-LSTM and DyGNN baselines.
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  struct State {
    tensor::Tensor h;  // [batch, hidden]
    tensor::Tensor c;  // [batch, hidden]
  };

  State Forward(const tensor::Tensor& x, const State& state) const;

  // Zero-initialized state for the given batch size.
  State InitialState(int64_t batch) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  tensor::Tensor wi_, ui_, bi_;
  tensor::Tensor wf_, uf_, bf_;
  tensor::Tensor wg_, ug_, bg_;
  tensor::Tensor wo_, uo_, bo_;
};

}  // namespace tpgnn::nn

#endif  // TPGNN_NN_LSTM_CELL_H_
