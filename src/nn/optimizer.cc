#include "nn/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace tpgnn::nn {

Optimizer::Optimizer(std::vector<tensor::Tensor> params)
    : params_(std::move(params)) {
  for (const tensor::Tensor& p : params_) {
    TPGNN_CHECK(p.requires_grad()) << "optimizer parameter lacks gradients";
  }
}

void Optimizer::ZeroGrad() {
  for (tensor::Tensor& p : params_) {
    p.ZeroGrad();
  }
}

Sgd::Sgd(std::vector<tensor::Tensor> params, float lr)
    : Optimizer(std::move(params)), lr_(lr) {}

void Sgd::Step() {
  for (tensor::Tensor& p : params_) {
    const std::vector<float>& g = p.grad();
    std::vector<float>& data = p.MutableData();
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] -= lr_ * g[i];
    }
  }
}

Adam::Adam(std::vector<tensor::Tensor> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const tensor::Tensor& p : params_) {
    m_.emplace_back(static_cast<size_t>(p.numel()), 0.0f);
    v_.emplace_back(static_cast<size_t>(p.numel()), 0.0f);
  }
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    tensor::Tensor& p = params_[pi];
    const std::vector<float>& g = p.grad();
    std::vector<float>& data = p.MutableData();
    std::vector<float>& m = m_[pi];
    std::vector<float>& v = v_[pi];
    for (size_t i = 0; i < data.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      data[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace tpgnn::nn
