#include "nn/checkpoint.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "util/failpoint.h"

namespace tpgnn::nn {

namespace {

constexpr char kMagic[] = "tpgnn-params";
constexpr int kVersionNoMeta = 1;
constexpr int kVersionMeta = 2;
constexpr int kVersionCrc = 3;

// CRC32 (IEEE 802.3 reflected polynomial) over the checkpoint's value
// region. Table-based; the table is built once on first use.
uint32_t Crc32(const char* data, size_t size) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<uint8_t>(data[i])) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

// Reads the "<magic> <version>" header and, for versioned files that carry
// one (v2, v3), the metadata block, leaving the stream positioned at the
// parameter count. Reports the parsed version via `*version_out`.
Status ReadHeader(std::istream& is, const std::string& path,
                  CheckpointMetadata* metadata, int* version_out) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic) {
    return Status::InvalidArgument("not a tpgnn-params file: " + path);
  }
  if (version != kVersionNoMeta && version != kVersionMeta &&
      version != kVersionCrc) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version) + ": " + path);
  }
  *version_out = version;
  if (version == kVersionNoMeta) {
    return Status::Ok();
  }
  std::string tag;
  size_t entries = 0;
  if (!(is >> tag >> entries) || tag != "meta") {
    return Status::InvalidArgument("malformed metadata header: " + path);
  }
  is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  for (size_t i = 0; i < entries; ++i) {
    std::string line;
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("truncated metadata block: " + path);
    }
    const size_t space = line.find(' ');
    std::string key = line.substr(0, space);
    if (key.empty()) {
      return Status::InvalidArgument("empty metadata key: " + path);
    }
    std::string value =
        space == std::string::npos ? "" : line.substr(space + 1);
    if (metadata != nullptr &&
        !metadata->emplace(std::move(key), std::move(value)).second) {
      return Status::InvalidArgument("duplicate metadata key: " + path);
    }
  }
  return Status::Ok();
}

// Verifies the version-3 trailer: the last line must read "crc32 <8 hex>"
// and the checksum must match the value region — every byte from the
// parameter count through the final parameter line, including its newline.
// `is` is positioned at the parameter count (just past the header), which
// is where the protected region starts inside `bytes`.
Status VerifyCrcTrailer(const std::string& bytes, std::istream& is,
                        const std::string& path) {
  const std::streampos pos = is.tellg();
  const size_t body_start =
      pos < std::streampos(0) ? bytes.size() : static_cast<size_t>(pos);
  const size_t tail = bytes.rfind("\ncrc32 ");
  if (tail == std::string::npos || tail + 1 < body_start) {
    return Status::DataLoss("missing crc32 trailer: " + path);
  }
  const size_t hex_start = tail + 7;
  const size_t hex_end = bytes.find('\n', hex_start);
  const std::string hex =
      hex_end == std::string::npos
          ? std::string()
          : bytes.substr(hex_start, hex_end - hex_start);
  if (hex.size() != 8 ||
      hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return Status::DataLoss("malformed crc32 trailer: " + path);
  }
  const uint32_t stored =
      static_cast<uint32_t>(std::stoul(hex, nullptr, 16));
  const uint32_t actual =
      Crc32(bytes.data() + body_start, tail + 1 - body_start);
  if (stored != actual) {
    char computed[16];
    std::snprintf(computed, sizeof(computed), "%08x", actual);
    return Status::DataLoss("crc32 mismatch (stored " + hex + ", computed " +
                            computed + "): " + path);
  }
  return Status::Ok();
}

// Slurps the snapshot into memory so the "checkpoint.read" failpoint can
// model media-level faults (torn tails, flipped bits) on the exact bytes
// the parser will see, independent of stream buffering.
Status ReadSnapshotBytes(const std::string& path, std::string* bytes) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::NotFound("cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (!is) {
    return Status::DataLoss("read failed: " + path);
  }
  *bytes = buffer.str();
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("checkpoint.read", &hit)) {
    switch (hit.kind) {
      case failpoint::Kind::kReturnError:
        return failpoint::InjectedError(StatusCode::kDataLoss,
                                        "checkpoint.read");
      case failpoint::Kind::kShortIo:  // Torn read: only a prefix arrives.
        bytes->resize(failpoint::ShortIoBudget(hit, bytes->size()));
        break;
      case failpoint::Kind::kCorruptByte:  // One bit of the media flips.
        failpoint::CorruptByte(hit,
                               reinterpret_cast<uint8_t*>(bytes->data()),
                               bytes->size());
        break;
      default:
        failpoint::ApplyDelay(hit);
        break;
    }
  }
  return Status::Ok();
}

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  return SaveParameters(module, path, CheckpointMetadata{});
}

Status SaveParameters(const Module& module, const std::string& path,
                      const CheckpointMetadata& metadata) {
  for (const auto& [key, value] : metadata) {
    if (key.empty() || key.find_first_of(" \t\n") != std::string::npos ||
        value.find('\n') != std::string::npos) {
      return Status::InvalidArgument("invalid metadata entry: '" + key + "'");
    }
  }
  // Serialize fully in memory, then write in one pass: the intermediate
  // buffer is what lets the "checkpoint.write" failpoint model a torn write
  // (a crash mid-flush leaves a well-formed prefix on disk). The value
  // region is built separately so its crc32 can be computed over the exact
  // bytes that land in the file.
  std::ostringstream body;
  auto named = module.NamedParameters();
  body << named.size() << "\n";
  body.precision(9);
  for (const auto& [name, p] : named) {
    body << name << " " << p.numel();
    for (float v : p.data()) {
      body << " " << v;
    }
    body << "\n";
  }
  const std::string value_region = body.str();

  std::ostringstream os;
  os << kMagic << " " << kVersionCrc << "\n";
  os << "meta " << metadata.size() << "\n";
  for (const auto& [key, value] : metadata) {
    os << key << " " << value << "\n";
  }
  os << value_region;
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x",
                Crc32(value_region.data(), value_region.size()));
  os << "crc32 " << crc_hex << "\n";
  std::string bytes = os.str();

  failpoint::Hit hit;
  bool torn = false;
  if (TPGNN_FAILPOINT("checkpoint.write", &hit)) {
    switch (hit.kind) {
      case failpoint::Kind::kReturnError:  // Disk gone before any byte lands.
        return failpoint::InjectedError(StatusCode::kInternal,
                                        "checkpoint.write");
      case failpoint::Kind::kShortIo:  // Crash mid-flush: prefix lands, then
                                       // the writer dies with an error.
        bytes.resize(failpoint::ShortIoBudget(hit, bytes.size()));
        torn = true;
        break;
      default:
        failpoint::ApplyDelay(hit);
        break;
    }
  }

  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) {
    return Status::Internal("write failed: " + path);
  }
  if (torn) {
    return failpoint::InjectedError(StatusCode::kInternal, "checkpoint.write");
  }
  return Status::Ok();
}

Status LoadParameters(Module& module, const std::string& path) {
  return LoadParameters(module, path, nullptr);
}

Status LoadParameters(Module& module, const std::string& path,
                      CheckpointMetadata* metadata) {
  if (metadata != nullptr) {
    metadata->clear();
  }
  std::string bytes;
  if (Status s = ReadSnapshotBytes(path, &bytes); !s.ok()) {
    return s;
  }
  std::istringstream is(bytes);
  int version = 0;
  if (Status header = ReadHeader(is, path, metadata, &version);
      !header.ok()) {
    return header;
  }
  if (version == kVersionCrc) {
    if (Status crc = VerifyCrcTrailer(bytes, is, path); !crc.ok()) {
      return crc;
    }
  }
  size_t count = 0;
  if (!(is >> count)) {
    return Status::InvalidArgument("malformed parameter count: " + path);
  }

  std::map<std::string, std::vector<float>> stored;
  for (size_t i = 0; i < count; ++i) {
    std::string name;
    int64_t numel = 0;
    if (!(is >> name >> numel) || numel < 0) {
      return Status::InvalidArgument("malformed parameter header");
    }
    std::vector<float> values(static_cast<size_t>(numel));
    for (float& v : values) {
      if (!(is >> v)) {
        return Status::InvalidArgument("malformed parameter values: " + name);
      }
    }
    if (!stored.emplace(name, std::move(values)).second) {
      return Status::InvalidArgument("duplicate parameter: " + name);
    }
  }

  auto named = module.NamedParameters();
  if (named.size() != stored.size()) {
    return Status::FailedPrecondition(
        "parameter count mismatch: module has " +
        std::to_string(named.size()) + ", checkpoint has " +
        std::to_string(stored.size()));
  }
  for (auto& [name, p] : named) {
    auto it = stored.find(name);
    if (it == stored.end()) {
      return Status::FailedPrecondition("missing parameter: " + name);
    }
    if (static_cast<int64_t>(it->second.size()) != p.numel()) {
      return Status::FailedPrecondition("shape mismatch for: " + name);
    }
    p.MutableData() = it->second;
  }
  return Status::Ok();
}

Status ReadCheckpointMetadata(const std::string& path,
                              CheckpointMetadata* metadata) {
  if (metadata != nullptr) {
    metadata->clear();
  }
  std::string bytes;
  if (Status s = ReadSnapshotBytes(path, &bytes); !s.ok()) {
    return s;
  }
  std::istringstream is(bytes);
  int version = 0;
  return ReadHeader(is, path, metadata, &version);
}

}  // namespace tpgnn::nn
