#include "nn/checkpoint.h"

#include <fstream>
#include <limits>
#include <vector>

namespace tpgnn::nn {

namespace {

constexpr char kMagic[] = "tpgnn-params";
constexpr int kVersionNoMeta = 1;
constexpr int kVersionMeta = 2;

// Reads the "<magic> <version>" header and, for version-2 files, the
// metadata block, leaving the stream positioned at the parameter count.
Status ReadHeader(std::istream& is, const std::string& path,
                  CheckpointMetadata* metadata) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic) {
    return Status::InvalidArgument("not a tpgnn-params file: " + path);
  }
  if (version != kVersionNoMeta && version != kVersionMeta) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version) + ": " + path);
  }
  if (version == kVersionNoMeta) {
    return Status::Ok();
  }
  std::string tag;
  size_t entries = 0;
  if (!(is >> tag >> entries) || tag != "meta") {
    return Status::InvalidArgument("malformed metadata header: " + path);
  }
  is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  for (size_t i = 0; i < entries; ++i) {
    std::string line;
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("truncated metadata block: " + path);
    }
    const size_t space = line.find(' ');
    std::string key = line.substr(0, space);
    if (key.empty()) {
      return Status::InvalidArgument("empty metadata key: " + path);
    }
    std::string value =
        space == std::string::npos ? "" : line.substr(space + 1);
    if (metadata != nullptr &&
        !metadata->emplace(std::move(key), std::move(value)).second) {
      return Status::InvalidArgument("duplicate metadata key: " + path);
    }
  }
  return Status::Ok();
}

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  return SaveParameters(module, path, CheckpointMetadata{});
}

Status SaveParameters(const Module& module, const std::string& path,
                      const CheckpointMetadata& metadata) {
  for (const auto& [key, value] : metadata) {
    if (key.empty() || key.find_first_of(" \t\n") != std::string::npos ||
        value.find('\n') != std::string::npos) {
      return Status::InvalidArgument("invalid metadata entry: '" + key + "'");
    }
  }
  std::ofstream os(path);
  if (!os) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const int version = metadata.empty() ? kVersionNoMeta : kVersionMeta;
  os << kMagic << " " << version << "\n";
  if (!metadata.empty()) {
    os << "meta " << metadata.size() << "\n";
    for (const auto& [key, value] : metadata) {
      os << key << " " << value << "\n";
    }
  }
  auto named = module.NamedParameters();
  os << named.size() << "\n";
  os.precision(9);
  for (const auto& [name, p] : named) {
    os << name << " " << p.numel();
    for (float v : p.data()) {
      os << " " << v;
    }
    os << "\n";
  }
  if (!os) {
    return Status::Internal("write failed: " + path);
  }
  return Status::Ok();
}

Status LoadParameters(Module& module, const std::string& path) {
  return LoadParameters(module, path, nullptr);
}

Status LoadParameters(Module& module, const std::string& path,
                      CheckpointMetadata* metadata) {
  if (metadata != nullptr) {
    metadata->clear();
  }
  std::ifstream is(path);
  if (!is) {
    return Status::NotFound("cannot open: " + path);
  }
  if (Status header = ReadHeader(is, path, metadata); !header.ok()) {
    return header;
  }
  size_t count = 0;
  if (!(is >> count)) {
    return Status::InvalidArgument("malformed parameter count: " + path);
  }

  std::map<std::string, std::vector<float>> stored;
  for (size_t i = 0; i < count; ++i) {
    std::string name;
    int64_t numel = 0;
    if (!(is >> name >> numel) || numel < 0) {
      return Status::InvalidArgument("malformed parameter header");
    }
    std::vector<float> values(static_cast<size_t>(numel));
    for (float& v : values) {
      if (!(is >> v)) {
        return Status::InvalidArgument("malformed parameter values: " + name);
      }
    }
    if (!stored.emplace(name, std::move(values)).second) {
      return Status::InvalidArgument("duplicate parameter: " + name);
    }
  }

  auto named = module.NamedParameters();
  if (named.size() != stored.size()) {
    return Status::FailedPrecondition(
        "parameter count mismatch: module has " +
        std::to_string(named.size()) + ", checkpoint has " +
        std::to_string(stored.size()));
  }
  for (auto& [name, p] : named) {
    auto it = stored.find(name);
    if (it == stored.end()) {
      return Status::FailedPrecondition("missing parameter: " + name);
    }
    if (static_cast<int64_t>(it->second.size()) != p.numel()) {
      return Status::FailedPrecondition("shape mismatch for: " + name);
    }
    p.MutableData() = it->second;
  }
  return Status::Ok();
}

Status ReadCheckpointMetadata(const std::string& path,
                              CheckpointMetadata* metadata) {
  if (metadata != nullptr) {
    metadata->clear();
  }
  std::ifstream is(path);
  if (!is) {
    return Status::NotFound("cannot open: " + path);
  }
  return ReadHeader(is, path, metadata);
}

}  // namespace tpgnn::nn
