#include "nn/checkpoint.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "util/failpoint.h"

namespace tpgnn::nn {

namespace {

constexpr char kMagic[] = "tpgnn-params";
constexpr int kVersionNoMeta = 1;
constexpr int kVersionMeta = 2;

// Reads the "<magic> <version>" header and, for version-2 files, the
// metadata block, leaving the stream positioned at the parameter count.
Status ReadHeader(std::istream& is, const std::string& path,
                  CheckpointMetadata* metadata) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic) {
    return Status::InvalidArgument("not a tpgnn-params file: " + path);
  }
  if (version != kVersionNoMeta && version != kVersionMeta) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version) + ": " + path);
  }
  if (version == kVersionNoMeta) {
    return Status::Ok();
  }
  std::string tag;
  size_t entries = 0;
  if (!(is >> tag >> entries) || tag != "meta") {
    return Status::InvalidArgument("malformed metadata header: " + path);
  }
  is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  for (size_t i = 0; i < entries; ++i) {
    std::string line;
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("truncated metadata block: " + path);
    }
    const size_t space = line.find(' ');
    std::string key = line.substr(0, space);
    if (key.empty()) {
      return Status::InvalidArgument("empty metadata key: " + path);
    }
    std::string value =
        space == std::string::npos ? "" : line.substr(space + 1);
    if (metadata != nullptr &&
        !metadata->emplace(std::move(key), std::move(value)).second) {
      return Status::InvalidArgument("duplicate metadata key: " + path);
    }
  }
  return Status::Ok();
}

// Slurps the snapshot into memory so the "checkpoint.read" failpoint can
// model media-level faults (torn tails, flipped bits) on the exact bytes
// the parser will see, independent of stream buffering.
Status ReadSnapshotBytes(const std::string& path, std::string* bytes) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::NotFound("cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (!is) {
    return Status::DataLoss("read failed: " + path);
  }
  *bytes = buffer.str();
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("checkpoint.read", &hit)) {
    switch (hit.kind) {
      case failpoint::Kind::kReturnError:
        return failpoint::InjectedError(StatusCode::kDataLoss,
                                        "checkpoint.read");
      case failpoint::Kind::kShortIo:  // Torn read: only a prefix arrives.
        bytes->resize(failpoint::ShortIoBudget(hit, bytes->size()));
        break;
      case failpoint::Kind::kCorruptByte:  // One bit of the media flips.
        failpoint::CorruptByte(hit,
                               reinterpret_cast<uint8_t*>(bytes->data()),
                               bytes->size());
        break;
      default:
        failpoint::ApplyDelay(hit);
        break;
    }
  }
  return Status::Ok();
}

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  return SaveParameters(module, path, CheckpointMetadata{});
}

Status SaveParameters(const Module& module, const std::string& path,
                      const CheckpointMetadata& metadata) {
  for (const auto& [key, value] : metadata) {
    if (key.empty() || key.find_first_of(" \t\n") != std::string::npos ||
        value.find('\n') != std::string::npos) {
      return Status::InvalidArgument("invalid metadata entry: '" + key + "'");
    }
  }
  // Serialize fully in memory, then write in one pass: the intermediate
  // buffer is what lets the "checkpoint.write" failpoint model a torn write
  // (a crash mid-flush leaves a well-formed prefix on disk).
  std::ostringstream os;
  const int version = metadata.empty() ? kVersionNoMeta : kVersionMeta;
  os << kMagic << " " << version << "\n";
  if (!metadata.empty()) {
    os << "meta " << metadata.size() << "\n";
    for (const auto& [key, value] : metadata) {
      os << key << " " << value << "\n";
    }
  }
  auto named = module.NamedParameters();
  os << named.size() << "\n";
  os.precision(9);
  for (const auto& [name, p] : named) {
    os << name << " " << p.numel();
    for (float v : p.data()) {
      os << " " << v;
    }
    os << "\n";
  }
  std::string bytes = os.str();

  failpoint::Hit hit;
  bool torn = false;
  if (TPGNN_FAILPOINT("checkpoint.write", &hit)) {
    switch (hit.kind) {
      case failpoint::Kind::kReturnError:  // Disk gone before any byte lands.
        return failpoint::InjectedError(StatusCode::kInternal,
                                        "checkpoint.write");
      case failpoint::Kind::kShortIo:  // Crash mid-flush: prefix lands, then
                                       // the writer dies with an error.
        bytes.resize(failpoint::ShortIoBudget(hit, bytes.size()));
        torn = true;
        break;
      default:
        failpoint::ApplyDelay(hit);
        break;
    }
  }

  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) {
    return Status::Internal("write failed: " + path);
  }
  if (torn) {
    return failpoint::InjectedError(StatusCode::kInternal, "checkpoint.write");
  }
  return Status::Ok();
}

Status LoadParameters(Module& module, const std::string& path) {
  return LoadParameters(module, path, nullptr);
}

Status LoadParameters(Module& module, const std::string& path,
                      CheckpointMetadata* metadata) {
  if (metadata != nullptr) {
    metadata->clear();
  }
  std::string bytes;
  if (Status s = ReadSnapshotBytes(path, &bytes); !s.ok()) {
    return s;
  }
  std::istringstream is(bytes);
  if (Status header = ReadHeader(is, path, metadata); !header.ok()) {
    return header;
  }
  size_t count = 0;
  if (!(is >> count)) {
    return Status::InvalidArgument("malformed parameter count: " + path);
  }

  std::map<std::string, std::vector<float>> stored;
  for (size_t i = 0; i < count; ++i) {
    std::string name;
    int64_t numel = 0;
    if (!(is >> name >> numel) || numel < 0) {
      return Status::InvalidArgument("malformed parameter header");
    }
    std::vector<float> values(static_cast<size_t>(numel));
    for (float& v : values) {
      if (!(is >> v)) {
        return Status::InvalidArgument("malformed parameter values: " + name);
      }
    }
    if (!stored.emplace(name, std::move(values)).second) {
      return Status::InvalidArgument("duplicate parameter: " + name);
    }
  }

  auto named = module.NamedParameters();
  if (named.size() != stored.size()) {
    return Status::FailedPrecondition(
        "parameter count mismatch: module has " +
        std::to_string(named.size()) + ", checkpoint has " +
        std::to_string(stored.size()));
  }
  for (auto& [name, p] : named) {
    auto it = stored.find(name);
    if (it == stored.end()) {
      return Status::FailedPrecondition("missing parameter: " + name);
    }
    if (static_cast<int64_t>(it->second.size()) != p.numel()) {
      return Status::FailedPrecondition("shape mismatch for: " + name);
    }
    p.MutableData() = it->second;
  }
  return Status::Ok();
}

Status ReadCheckpointMetadata(const std::string& path,
                              CheckpointMetadata* metadata) {
  if (metadata != nullptr) {
    metadata->clear();
  }
  std::string bytes;
  if (Status s = ReadSnapshotBytes(path, &bytes); !s.ok()) {
    return s;
  }
  std::istringstream is(bytes);
  return ReadHeader(is, path, metadata);
}

}  // namespace tpgnn::nn
