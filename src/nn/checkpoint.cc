#include "nn/checkpoint.h"

#include <fstream>
#include <map>
#include <vector>

namespace tpgnn::nn {

namespace {

constexpr char kMagic[] = "tpgnn-params";
constexpr int kVersion = 1;

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  auto named = module.NamedParameters();
  os << kMagic << " " << kVersion << "\n" << named.size() << "\n";
  os.precision(9);
  for (const auto& [name, p] : named) {
    os << name << " " << p.numel();
    for (float v : p.data()) {
      os << " " << v;
    }
    os << "\n";
  }
  if (!os) {
    return Status::Internal("write failed: " + path);
  }
  return Status::Ok();
}

Status LoadParameters(Module& module, const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    return Status::NotFound("cannot open: " + path);
  }
  std::string magic;
  int version = 0;
  size_t count = 0;
  if (!(is >> magic >> version >> count) || magic != kMagic) {
    return Status::InvalidArgument("not a tpgnn-params file: " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }

  std::map<std::string, std::vector<float>> stored;
  for (size_t i = 0; i < count; ++i) {
    std::string name;
    int64_t numel = 0;
    if (!(is >> name >> numel) || numel < 0) {
      return Status::InvalidArgument("malformed parameter header");
    }
    std::vector<float> values(static_cast<size_t>(numel));
    for (float& v : values) {
      if (!(is >> v)) {
        return Status::InvalidArgument("malformed parameter values: " + name);
      }
    }
    if (!stored.emplace(name, std::move(values)).second) {
      return Status::InvalidArgument("duplicate parameter: " + name);
    }
  }

  auto named = module.NamedParameters();
  if (named.size() != stored.size()) {
    return Status::FailedPrecondition(
        "parameter count mismatch: module has " +
        std::to_string(named.size()) + ", checkpoint has " +
        std::to_string(stored.size()));
  }
  for (auto& [name, p] : named) {
    auto it = stored.find(name);
    if (it == stored.end()) {
      return Status::FailedPrecondition("missing parameter: " + name);
    }
    if (static_cast<int64_t>(it->second.size()) != p.numel()) {
      return Status::FailedPrecondition("shape mismatch for: " + name);
    }
    p.MutableData() = it->second;
  }
  return Status::Ok();
}

}  // namespace tpgnn::nn
