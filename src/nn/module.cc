#include "nn/module.h"

#include "util/logging.h"

namespace tpgnn::nn {

std::vector<tensor::Tensor> Module::Parameters() const {
  std::vector<tensor::Tensor> out;
  for (const auto& [name, p] : params_) {
    out.push_back(p);
  }
  for (const auto& [name, child] : children_) {
    for (const tensor::Tensor& p : child->Parameters()) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<std::pair<std::string, tensor::Tensor>> Module::NamedParameters()
    const {
  std::vector<std::pair<std::string, tensor::Tensor>> out;
  for (const auto& [name, p] : params_) {
    out.emplace_back(name, p);
  }
  for (const auto& [child_name, child] : children_) {
    for (const auto& [name, p] : child->NamedParameters()) {
      out.emplace_back(child_name + "/" + name, p);
    }
  }
  return out;
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const tensor::Tensor& p : Parameters()) {
    count += p.numel();
  }
  return count;
}

void Module::ZeroGrad() {
  for (tensor::Tensor& p : Parameters()) {
    p.ZeroGrad();
  }
}

tensor::Tensor Module::RegisterParameter(std::string name,
                                         tensor::Tensor value) {
  TPGNN_CHECK(value.impl()->grad_fn == nullptr)
      << "parameters must be leaf tensors: " << name;
  value.set_requires_grad(true);
  params_.emplace_back(std::move(name), value);
  return params_.back().second;
}

void Module::RegisterChild(std::string name, Module* child) {
  TPGNN_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

}  // namespace tpgnn::nn
