#include "nn/lstm_cell.h"

#include "nn/init.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::nn {

using tensor::Add;
using tensor::MatMul;
using tensor::Mul;
using tensor::Sigmoid;
using tensor::Tanh;
using tensor::Tensor;

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  TPGNN_CHECK_GT(input_size, 0);
  TPGNN_CHECK_GT(hidden_size, 0);
  auto w = [&]() {
    return ScaledUniform({input_size, hidden_size}, hidden_size, rng);
  };
  auto u = [&]() {
    return ScaledUniform({hidden_size, hidden_size}, hidden_size, rng);
  };
  auto b = [&]() { return ScaledUniform({hidden_size}, hidden_size, rng); };
  wi_ = RegisterParameter("wi", w());
  ui_ = RegisterParameter("ui", u());
  bi_ = RegisterParameter("bi", b());
  wf_ = RegisterParameter("wf", w());
  uf_ = RegisterParameter("uf", u());
  bf_ = RegisterParameter("bf", b());
  wg_ = RegisterParameter("wg", w());
  ug_ = RegisterParameter("ug", u());
  bg_ = RegisterParameter("bg", b());
  wo_ = RegisterParameter("wo", w());
  uo_ = RegisterParameter("uo", u());
  bo_ = RegisterParameter("bo", b());
}

LstmCell::State LstmCell::Forward(const Tensor& x, const State& state) const {
  TPGNN_CHECK_EQ(x.dim(), 2);
  TPGNN_CHECK_EQ(x.size(1), input_size_);
  TPGNN_CHECK_EQ(state.h.size(1), hidden_size_);
  TPGNN_CHECK_EQ(state.h.size(0), x.size(0));

  const Tensor& h = state.h;
  Tensor i = Sigmoid(Add(Add(MatMul(x, wi_), MatMul(h, ui_)), bi_));
  Tensor f = Sigmoid(Add(Add(MatMul(x, wf_), MatMul(h, uf_)), bf_));
  Tensor g = Tanh(Add(Add(MatMul(x, wg_), MatMul(h, ug_)), bg_));
  Tensor o = Sigmoid(Add(Add(MatMul(x, wo_), MatMul(h, uo_)), bo_));
  Tensor c_next = Add(Mul(f, state.c), Mul(i, g));
  Tensor h_next = Mul(o, Tanh(c_next));
  return {h_next, c_next};
}

LstmCell::State LstmCell::InitialState(int64_t batch) const {
  return {Tensor::Zeros({batch, hidden_size_}),
          Tensor::Zeros({batch, hidden_size_})};
}

}  // namespace tpgnn::nn
