#ifndef TPGNN_NN_ATTENTION_H_
#define TPGNN_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace tpgnn::nn {

// Scaled dot-product attention:
//   Attention(Q, K, V) = softmax(Q K^T / sqrt(d)) V
// `mask`, when provided, is a [nq, nk] tensor of {0, 1}; zero entries are
// excluded from attention (each query must keep at least one visible key).
tensor::Tensor ScaledDotProductAttention(const tensor::Tensor& q,
                                         const tensor::Tensor& k,
                                         const tensor::Tensor& v,
                                         const tensor::Tensor* mask = nullptr);

// Multi-head attention with per-head projections and an output projection.
// Used by the TGAT and TADDY baselines.
class MultiheadAttention : public Module {
 public:
  MultiheadAttention(int64_t model_dim, int64_t num_heads, Rng& rng);

  // q: [nq, model_dim], k/v: [nk, model_dim] -> [nq, model_dim].
  tensor::Tensor Forward(const tensor::Tensor& q, const tensor::Tensor& k,
                         const tensor::Tensor& v,
                         const tensor::Tensor* mask = nullptr) const;

  int64_t model_dim() const { return model_dim_; }
  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t model_dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::vector<std::unique_ptr<Linear>> wq_;
  std::vector<std::unique_ptr<Linear>> wk_;
  std::vector<std::unique_ptr<Linear>> wv_;
  std::unique_ptr<Linear> wo_;
};

}  // namespace tpgnn::nn

#endif  // TPGNN_NN_ATTENTION_H_
