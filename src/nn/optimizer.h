#ifndef TPGNN_NN_OPTIMIZER_H_
#define TPGNN_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

// First-order optimizers. Parameters are Tensor handles aliasing module
// storage; Step() consumes the gradients accumulated by Backward() and
// updates the data in place.

namespace tpgnn::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Tensor> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update from the currently accumulated gradients.
  virtual void Step() = 0;

  // Clears gradients of all managed parameters.
  void ZeroGrad();

 protected:
  std::vector<tensor::Tensor> params_;
};

// Plain stochastic gradient descent.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<tensor::Tensor> params, float lr);

  void Step() override;

 private:
  float lr_;
};

// Adam (Kingma & Ba 2015) with bias correction; the paper trains TP-GNN
// with Adam at lr = 1e-3 (Sec. V-D).
class Adam : public Optimizer {
 public:
  Adam(std::vector<tensor::Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace tpgnn::nn

#endif  // TPGNN_NN_OPTIMIZER_H_
