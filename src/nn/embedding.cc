#include "nn/embedding.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::nn {

Embedding::Embedding(int64_t num_embeddings, int64_t dim, Rng& rng)
    : num_embeddings_(num_embeddings), dim_(dim) {
  TPGNN_CHECK_GT(num_embeddings, 0);
  TPGNN_CHECK_GT(dim, 0);
  weight_ = RegisterParameter(
      "weight",
      tensor::Tensor::Randn({num_embeddings, dim}, /*stddev=*/0.1f, rng));
}

tensor::Tensor Embedding::Forward(const std::vector<int64_t>& indices) const {
  return tensor::IndexSelect(weight_, indices);
}

}  // namespace tpgnn::nn
