#include "nn/gru_cell.h"

#include <cmath>

#include "nn/init.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::nn {

using tensor::Affine;
using tensor::Affine2;
using tensor::GruBlend;
using tensor::MatMul;
using tensor::MulAdd;
using tensor::Sigmoid;
using tensor::Tanh;
using tensor::Tensor;

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  TPGNN_CHECK_GT(input_size, 0);
  TPGNN_CHECK_GT(hidden_size, 0);
  auto w = [&]() {
    return ScaledUniform({input_size, hidden_size}, hidden_size, rng);
  };
  auto u = [&]() {
    return ScaledUniform({hidden_size, hidden_size}, hidden_size, rng);
  };
  auto b = [&]() { return ScaledUniform({hidden_size}, hidden_size, rng); };
  wz_ = RegisterParameter("wz", w());
  uz_ = RegisterParameter("uz", u());
  bz_ = RegisterParameter("bz", b());
  wr_ = RegisterParameter("wr", w());
  ur_ = RegisterParameter("ur", u());
  br_ = RegisterParameter("br", b());
  wn_ = RegisterParameter("wn", w());
  un_ = RegisterParameter("un", u());
  bn_ = RegisterParameter("bn", b());
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  TPGNN_CHECK_EQ(x.dim(), 2);
  TPGNN_CHECK_EQ(h.dim(), 2);
  TPGNN_CHECK_EQ(x.size(1), input_size_);
  TPGNN_CHECK_EQ(h.size(1), hidden_size_);
  TPGNN_CHECK_EQ(x.size(0), h.size(0));

  Tensor z = Sigmoid(Affine2(x, wz_, h, uz_, bz_));
  Tensor r = Sigmoid(Affine2(x, wr_, h, ur_, br_));
  Tensor n = Tanh(MulAdd(r, MatMul(h, un_), Affine(x, wn_, bn_)));
  return GruBlend(z, h, n);
}

void GruCell::StepInto(const float* x, const float* h, float* out,
                       GruScratch& s) const {
  const int64_t d = hidden_size_;
  const int64_t k = input_size_;
  const tensor::Kernels& ker = tensor::ActiveKernels();
  s.z.assign(static_cast<size_t>(d), 0.0f);
  s.r.assign(static_cast<size_t>(d), 0.0f);
  s.n.assign(static_cast<size_t>(d), 0.0f);
  s.hu.assign(static_cast<size_t>(d), 0.0f);
  s.xn.assign(static_cast<size_t>(d), 0.0f);

  // Gates: mirror Affine2's kernel order (x*W accumulated first, then h*U,
  // bias last). GEMM is bitwise across SIMD modes; the sigmoid/tanh maps are
  // in the kernel-ulp tolerance class (tensor/kernels.h), so in scalar mode
  // the values match the recorded Forward bitwise.
  ker.gemm_accumulate(x, wz_.data().data(), s.z.data(), 1, k, d);
  ker.gemm_accumulate(h, uz_.data().data(), s.z.data(), 1, d, d);
  ker.sigmoid_bias(s.z.data(), bz_.data().data(), d);
  ker.gemm_accumulate(x, wr_.data().data(), s.r.data(), 1, k, d);
  ker.gemm_accumulate(h, ur_.data().data(), s.r.data(), 1, d, d);
  ker.sigmoid_bias(s.r.data(), br_.data().data(), d);

  // Candidate: tanh(r o (h Un) + (x Wn + bn)), associating exactly like
  // Tanh(MulAdd(r, MatMul(h, un), Affine(x, wn, bn))).
  ker.gemm_accumulate(h, un_.data().data(), s.hu.data(), 1, d, d);
  ker.gemm_accumulate(x, wn_.data().data(), s.xn.data(), 1, k, d);
  ker.gru_candidate(s.n.data(), s.r.data(), s.hu.data(), s.xn.data(),
                    bn_.data().data(), d);

  // Blend reads h[j] before writing out[j], so out may alias h.
  ker.gru_blend(out, s.z.data(), h, s.n.data(), d);
}

}  // namespace tpgnn::nn
