#include "nn/gru_cell.h"

#include <cmath>

#include "nn/init.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::nn {

using tensor::Affine;
using tensor::Affine2;
using tensor::GruBlend;
using tensor::MatMul;
using tensor::MulAdd;
using tensor::Sigmoid;
using tensor::Tanh;
using tensor::Tensor;
using tensor::internal::GemmAccumulate;

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  TPGNN_CHECK_GT(input_size, 0);
  TPGNN_CHECK_GT(hidden_size, 0);
  auto w = [&]() {
    return ScaledUniform({input_size, hidden_size}, hidden_size, rng);
  };
  auto u = [&]() {
    return ScaledUniform({hidden_size, hidden_size}, hidden_size, rng);
  };
  auto b = [&]() { return ScaledUniform({hidden_size}, hidden_size, rng); };
  wz_ = RegisterParameter("wz", w());
  uz_ = RegisterParameter("uz", u());
  bz_ = RegisterParameter("bz", b());
  wr_ = RegisterParameter("wr", w());
  ur_ = RegisterParameter("ur", u());
  br_ = RegisterParameter("br", b());
  wn_ = RegisterParameter("wn", w());
  un_ = RegisterParameter("un", u());
  bn_ = RegisterParameter("bn", b());
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  TPGNN_CHECK_EQ(x.dim(), 2);
  TPGNN_CHECK_EQ(h.dim(), 2);
  TPGNN_CHECK_EQ(x.size(1), input_size_);
  TPGNN_CHECK_EQ(h.size(1), hidden_size_);
  TPGNN_CHECK_EQ(x.size(0), h.size(0));

  Tensor z = Sigmoid(Affine2(x, wz_, h, uz_, bz_));
  Tensor r = Sigmoid(Affine2(x, wr_, h, ur_, br_));
  Tensor n = Tanh(MulAdd(r, MatMul(h, un_), Affine(x, wn_, bn_)));
  return GruBlend(z, h, n);
}

void GruCell::StepInto(const float* x, const float* h, float* out,
                       GruScratch& s) const {
  const int64_t d = hidden_size_;
  const int64_t k = input_size_;
  s.z.assign(static_cast<size_t>(d), 0.0f);
  s.r.assign(static_cast<size_t>(d), 0.0f);
  s.n.assign(static_cast<size_t>(d), 0.0f);
  s.hu.assign(static_cast<size_t>(d), 0.0f);
  s.xn.assign(static_cast<size_t>(d), 0.0f);

  // Gates: mirror Affine2's kernel order (x*W accumulated first, then h*U,
  // bias last) so the values match the recorded Forward bitwise.
  GemmAccumulate(x, wz_.data().data(), s.z.data(), 1, k, d);
  GemmAccumulate(h, uz_.data().data(), s.z.data(), 1, d, d);
  const float* bz = bz_.data().data();
  for (int64_t j = 0; j < d; ++j) {
    s.z[static_cast<size_t>(j)] =
        1.0f / (1.0f + std::exp(-(s.z[static_cast<size_t>(j)] + bz[j])));
  }
  GemmAccumulate(x, wr_.data().data(), s.r.data(), 1, k, d);
  GemmAccumulate(h, ur_.data().data(), s.r.data(), 1, d, d);
  const float* br = br_.data().data();
  for (int64_t j = 0; j < d; ++j) {
    s.r[static_cast<size_t>(j)] =
        1.0f / (1.0f + std::exp(-(s.r[static_cast<size_t>(j)] + br[j])));
  }

  // Candidate: tanh(r o (h Un) + (x Wn + bn)), associating exactly like
  // Tanh(MulAdd(r, MatMul(h, un), Affine(x, wn, bn))).
  GemmAccumulate(h, un_.data().data(), s.hu.data(), 1, d, d);
  GemmAccumulate(x, wn_.data().data(), s.xn.data(), 1, k, d);
  const float* bn = bn_.data().data();
  for (int64_t j = 0; j < d; ++j) {
    const size_t sj = static_cast<size_t>(j);
    const float xb = s.xn[sj] + bn[j];
    s.n[sj] = std::tanh(s.r[sj] * s.hu[sj] + xb);
  }

  // Blend reads h[j] before writing out[j], so out may alias h.
  for (int64_t j = 0; j < d; ++j) {
    const size_t sj = static_cast<size_t>(j);
    out[j] = s.z[sj] * h[j] + (1.0f - s.z[sj]) * s.n[sj];
  }
}

}  // namespace tpgnn::nn
