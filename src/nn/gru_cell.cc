#include "nn/gru_cell.h"

#include "nn/init.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tpgnn::nn {

using tensor::Add;
using tensor::MatMul;
using tensor::Mul;
using tensor::Sigmoid;
using tensor::Sub;
using tensor::Tanh;
using tensor::Tensor;

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  TPGNN_CHECK_GT(input_size, 0);
  TPGNN_CHECK_GT(hidden_size, 0);
  auto w = [&]() {
    return ScaledUniform({input_size, hidden_size}, hidden_size, rng);
  };
  auto u = [&]() {
    return ScaledUniform({hidden_size, hidden_size}, hidden_size, rng);
  };
  auto b = [&]() { return ScaledUniform({hidden_size}, hidden_size, rng); };
  wz_ = RegisterParameter("wz", w());
  uz_ = RegisterParameter("uz", u());
  bz_ = RegisterParameter("bz", b());
  wr_ = RegisterParameter("wr", w());
  ur_ = RegisterParameter("ur", u());
  br_ = RegisterParameter("br", b());
  wn_ = RegisterParameter("wn", w());
  un_ = RegisterParameter("un", u());
  bn_ = RegisterParameter("bn", b());
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  TPGNN_CHECK_EQ(x.dim(), 2);
  TPGNN_CHECK_EQ(h.dim(), 2);
  TPGNN_CHECK_EQ(x.size(1), input_size_);
  TPGNN_CHECK_EQ(h.size(1), hidden_size_);
  TPGNN_CHECK_EQ(x.size(0), h.size(0));

  Tensor z = Sigmoid(Add(Add(MatMul(x, wz_), MatMul(h, uz_)), bz_));
  Tensor r = Sigmoid(Add(Add(MatMul(x, wr_), MatMul(h, ur_)), br_));
  Tensor n = Tanh(Add(Add(MatMul(x, wn_), Mul(r, MatMul(h, un_))), bn_));
  Tensor keep = Mul(z, h);
  Tensor ones = Tensor::Ones({1, hidden_size_});
  Tensor update = Mul(Sub(ones, z), n);
  return Add(keep, update);
}

}  // namespace tpgnn::nn
