#include "nn/init.h"

#include <cmath>

#include "util/logging.h"

namespace tpgnn::nn {

tensor::Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng) {
  TPGNN_CHECK_GT(fan_in + fan_out, 0);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::Uniform({fan_in, fan_out}, -bound, bound, rng);
}

tensor::Tensor ScaledUniform(const tensor::Shape& shape, int64_t fan_in,
                             Rng& rng) {
  TPGNN_CHECK_GT(fan_in, 0);
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return tensor::Tensor::Uniform(shape, -bound, bound, rng);
}

}  // namespace tpgnn::nn
