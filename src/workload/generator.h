#ifndef TPGNN_WORKLOAD_GENERATOR_H_
#define TPGNN_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "serve/event.h"
#include "util/rng.h"

// Seeded, constant-memory streaming workload generation (DESIGN.md §4.9).
//
// There is no materialized dataset: WorkloadGenerator::Next pulls one serve
// Event at a time from an on-the-fly merge of (a) a Poisson-like session
// arrival process, optionally modulated by a square-wave overload burst,
// and (b) the per-session event schedules of the currently open sessions.
// Memory is bounded by max_open_sessions regardless of how many sessions or
// events the stream produces, so a soak run can stream hundreds of
// thousands of sessions without holding any of them.
//
// Two determinism contracts, both seed-pure:
//   * Stream determinism: the full event sequence is a pure function of
//     WorkloadOptions. Same options => byte-identical streams, on any
//     machine, from any thread.
//   * Session determinism: a session's *content* (tenant, node set,
//     features, edges with session-local timestamps, score placements,
//     label) is a pure function of (options, session index) alone — global
//     scheduling only decides stream-clock interleaving, never content. So
//     MaterializeSession(i) reproduces exactly what the stream emitted for
//     session i, which is what lets the soak harness re-score a sampled
//     session offline and demand bitwise parity with the serving path.
//
// The split is enforced structurally: every content draw comes from the
// session's own Rng (seeded by SessionSeed), every scheduling draw from a
// separate schedule Rng, and the streaming path consumes the session Rng in
// exactly MaterializeSession's draw order.

namespace tpgnn::workload {

// One tenant class in a multi-tenant mix: how big its sessions are, how
// its nodes scale with edges, how chatty scoring is, and how likely a
// session is to be abandoned (dropped without an End event — the fuel of
// eviction churn, since only TTL/cap eviction can reclaim it).
struct TenantProfile {
  std::string name = "default";
  double weight = 1.0;  // Relative share of the session mix.

  // Session size: edges ~ ClampedLogNormal.
  double edges_log_mean = 3.2;
  double edges_log_sigma = 0.8;
  int64_t min_edges = 4;
  int64_t max_edges = 512;

  // Node count: clamp(round(nodes_per_edge * edges)).
  double nodes_per_edge = 0.4;
  int64_t min_nodes = 4;
  int64_t max_nodes = 128;
  int64_t feature_dim = 3;

  // A Score request every this many edges (0 = only the final score), plus
  // one final Score before End unless the session is abandoned.
  int64_t score_every_edges = 16;

  // Mean stream-seconds between consecutive events of one session
  // (exponential); controls how long a session stays open and therefore the
  // concurrency level a given arrival rate sustains.
  double event_gap_mean = 0.05;

  // Mean session-local time delta between consecutive edges (uniform in
  // (0, 2 * mean]); the model's t axis, independent of the stream clock.
  double edge_time_gap_mean = 1.0;

  // Probability the session is abandoned: it stops emitting after its last
  // edge, with no final Score and no End.
  double abandon_probability = 0.0;
};

// Square-wave arrival-rate modulation: for the first burst_fraction of
// every period the session arrival rate is multiplied by burst_multiplier.
// period_seconds <= 0 disables the wave.
struct OverloadWave {
  double period_seconds = 0.0;
  double burst_fraction = 0.25;
  double burst_multiplier = 8.0;
};

struct WorkloadOptions {
  uint64_t seed = 1;
  // Total sessions to generate; 0 = unbounded (the caller decides when to
  // stop pulling).
  uint64_t num_sessions = 0;
  // Base session arrival rate, sessions per stream-second.
  double session_arrival_rate = 200.0;
  OverloadWave wave;
  // Cap on concurrently open generator sessions — the generator's entire
  // per-stream state. When the cap is hit, new arrivals wait for an open
  // session to finish.
  size_t max_open_sessions = 512;
  // The tenant mix; must be non-empty with at least one positive weight.
  std::vector<TenantProfile> tenants = {TenantProfile{}};
};

// A fully materialized session, as MaterializeSession returns it: exactly
// the content the stream emits for that index, in emission order.
struct MaterializedSession {
  uint64_t session_id = 0;
  size_t tenant = 0;
  int64_t num_nodes = 0;
  int64_t feature_dim = 0;
  std::vector<std::vector<float>> features;  // One vector per node.
  struct Edge {
    int64_t src = 0;
    int64_t dst = 0;
    double time = 0.0;  // Session-local timestamp (the model's t).
  };
  std::vector<Edge> edges;
  int label = 0;
  bool abandoned = false;
};

// Session identity: id = SplitMix64 output of seed advanced (index + 1)
// golden-gamma steps. The mix is a bijection of the advanced state, so ids
// are unique within one seed's stream and collide across two seeds only
// with ~n^2 / 2^64 probability.
uint64_t SessionId(uint64_t seed, uint64_t index);
// Per-session content seed, independent of SessionId (different derivation
// lane) and of the schedule Rng.
uint64_t SessionSeed(uint64_t seed, uint64_t index);

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadOptions& options);
  ~WorkloadGenerator();  // Out of line: OpenSession is incomplete here.

  // Pulls the next stream event. Returns false when a bounded workload
  // (num_sessions > 0) is exhausted; an unbounded one never returns false.
  // When session_index is non-null it receives the 0-based index of the
  // event's session (the MaterializeSession argument).
  bool Next(serve::Event* event, uint64_t* session_index = nullptr);

  // Reconstructs session `index`'s full content, independent of stream
  // state. Pure in (options, index): callable before, during, or after the
  // stream reaches that session, from any thread, on a fresh generator.
  MaterializedSession MaterializeSession(uint64_t index) const;

  const WorkloadOptions& options() const { return options_; }
  // Sessions whose Begin has been emitted so far.
  uint64_t sessions_started() const { return next_index_; }
  // Current stream-clock read of the last emitted event.
  double stream_time() const { return stream_time_; }

 private:
  struct OpenSession;

  // Arrival-rate multiplier of the overload wave at stream time t.
  double WaveMultiplier(double t) const;
  // Draws a session header (tenant, sizes, label, ...) from its content
  // Rng, leaving `rng` positioned right before the first per-edge draw.
  struct SessionPlan;
  SessionPlan PlanSession(Rng* rng) const;

  void EmitBegin(serve::Event* event, uint64_t* session_index);
  void EmitFromOpen(serve::Event* event, uint64_t* session_index);

  const WorkloadOptions options_;
  std::vector<double> tenant_weights_;
  Rng schedule_rng_;
  double next_arrival_time_ = 0.0;
  uint64_t next_index_ = 0;
  double stream_time_ = 0.0;

  // Min-heap of open sessions keyed by the stream time of their next edge;
  // ties break on the slot for a total order.
  struct HeapEntry {
    double time;
    size_t slot;
    bool operator>(const HeapEntry& other) const {
      return time != other.time ? time > other.time : slot > other.slot;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;
  std::vector<OpenSession> slots_;
  std::vector<size_t> free_slots_;
  // The next edge's endpoints per slot, drawn when the edge was scheduled
  // (its Rng draws happen at schedule time, one event ahead of emission).
  struct PendingDraw {
    int64_t src = 0;
    int64_t dst = 0;
  };
  std::vector<PendingDraw> pending_draws_;
  // Session-order events (scores, End) that trail an emitted edge at the
  // same stream time; drained before the merge consults the heap again.
  std::deque<std::pair<serve::Event, uint64_t>> pending_;
};

// Canonical byte serialization of one event, appended to *out. The
// determinism tests compare streams through this, so any field the
// generator controls participates.
void AppendEventBytes(const serve::Event& event, std::string* out);

}  // namespace tpgnn::workload

#endif  // TPGNN_WORKLOAD_GENERATOR_H_
