#ifndef TPGNN_WORKLOAD_DISTRIBUTIONS_H_
#define TPGNN_WORKLOAD_DISTRIBUTIONS_H_

#include <cstdint>

#include "util/rng.h"

// The paper-shaped sampling primitives behind the workload generators
// (DESIGN.md §4.9): session sizes follow a clamped lognormal — the
// benchmark datasets' edge-count histograms are right-skewed with a hard
// floor — and event interarrival gaps follow an exponential, the memoryless
// arrival process the overload waves modulate.

namespace tpgnn::workload {

// Lognormal sample exp(N(log_mean, log_sigma)) rounded to an integer and
// clamped into [min_value, max_value]. log_mean/log_sigma parameterize the
// underlying normal (so the median is exp(log_mean)).
int64_t ClampedLogNormal(Rng& rng, double log_mean, double log_sigma,
                         int64_t min_value, int64_t max_value);

// Exponential interarrival gap with the given mean (seconds). mean <= 0
// degenerates to 0 (back-to-back arrivals).
double ExponentialGap(Rng& rng, double mean);

}  // namespace tpgnn::workload

#endif  // TPGNN_WORKLOAD_DISTRIBUTIONS_H_
