#ifndef TPGNN_WORKLOAD_PROFILES_H_
#define TPGNN_WORKLOAD_PROFILES_H_

#include <cstdint>

#include "workload/generator.h"

// Canned workload shapes (DESIGN.md §4.9). Each returns a complete
// WorkloadOptions a caller may tweak further; only the seed is mandatory so
// distinct runs stay deterministic and distinct.

namespace tpgnn::workload {

// The paper-scale serving mix: three tenant classes shaped after the
// evaluation datasets' session-size spread — many small sessions (tens of
// edges), a mid tier, and a heavy tail (hundreds of edges) — with periodic
// mid-session scores. No overload wave, light abandonment.
WorkloadOptions PaperMixProfile(uint64_t seed);

// Eviction-churn stressor: high arrival rate of short sessions with a
// large abandoned fraction, so resident state is reclaimed almost entirely
// by TTL/cap eviction instead of End events.
WorkloadOptions EvictionChurnProfile(uint64_t seed);

// Overload waves: the paper mix with a square-wave burst that multiplies
// the arrival rate for part of every period, driving the engine into its
// kOverloaded backpressure path and back out.
WorkloadOptions OverloadWaveProfile(uint64_t seed);

// Tier-1 smoke shape: small sessions, modest concurrency, every stressor
// enabled a little (waves, abandonment), sized so a full bounded run plus
// invariant checks fits in ~2 seconds.
WorkloadOptions MiniSoakProfile(uint64_t seed);

}  // namespace tpgnn::workload

#endif  // TPGNN_WORKLOAD_PROFILES_H_
