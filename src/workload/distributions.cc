#include "workload/distributions.h"

#include <algorithm>
#include <cmath>

namespace tpgnn::workload {

int64_t ClampedLogNormal(Rng& rng, double log_mean, double log_sigma,
                         int64_t min_value, int64_t max_value) {
  const double sample = std::exp(rng.Normal(log_mean, log_sigma));
  // llround saturates on overflow; the clamp below makes the huge-tail case
  // well-defined either way.
  const int64_t rounded = static_cast<int64_t>(std::llround(sample));
  return std::clamp(rounded, min_value, max_value);
}

double ExponentialGap(Rng& rng, double mean) {
  if (mean <= 0.0) {
    return 0.0;
  }
  // Inverse CDF on u in (0, 1]: Uniform() is [0, 1), so flip it.
  const double u = 1.0 - rng.Uniform();
  return -mean * std::log(u);
}

}  // namespace tpgnn::workload
