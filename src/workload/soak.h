#ifndef TPGNN_WORKLOAD_SOAK_H_
#define TPGNN_WORKLOAD_SOAK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.h"
#include "serve/inference_engine.h"
#include "serve/metrics.h"
#include "workload/generator.h"

// Invariant-checked soak harness (DESIGN.md §4.9): streams a generated
// workload through a live InferenceEngine — optionally with failpoints
// armed — and continuously asserts the properties a long-running server
// must hold:
//
//   * Exact accounting. At every checkpoint (after a Flush, so no score is
//     in flight): sessions_begun == sessions_ended + sessions_evicted +
//     resident_sessions. Holds bit-exactly through overload shedding,
//     eviction churn, and injected Begin/enqueue faults.
//   * Bounded memory. Once the warmup phase has populated the caches, the
//     buffer-pool peak, the summed executor-arena peak, and the process RSS
//     high-water mark may not grow beyond a declared slack over their
//     warmup baselines — monotone growth is a leak, caught while it is
//     still megabytes.
//   * Latency SLOs. Declared p99 bounds over the engine's score/e2e/ingest
//     histograms.
//   * Bitwise parity. A deterministic sample of sessions is re-scored
//     offline at checkpoints: the serving logit of every sampled completed
//     score must equal the model's offline forward over the materialized
//     edge prefix, bit for bit.
//
// Violations are collected (not thrown) so a run reports every broken
// invariant; SoakReport::ok() is the single pass/fail bit.

namespace tpgnn::workload {

// p99 latency ceilings in microseconds over the whole run; 0 disables the
// corresponding check.
struct SoakSlos {
  double ingest_p99_us = 0.0;
  double score_p99_us = 0.0;
  double e2e_p99_us = 0.0;
};

struct SoakOptions {
  WorkloadOptions workload;
  serve::EngineOptions engine;
  core::TpGnnConfig config;
  uint64_t model_seed = 7;

  // Unbounded workloads (workload.num_sessions == 0) run until BOTH
  // min_sessions have begun AND min_wall_seconds have elapsed; bounded
  // workloads run to stream exhaustion.
  uint64_t min_sessions = 0;
  double min_wall_seconds = 0.0;

  // Checkpoint cadence in ingested events.
  uint64_t checkpoint_every_events = 200000;
  // Events before the memory baselines are captured; bound checks apply
  // only to checkpoints after warmup.
  uint64_t warmup_events = 100000;
  // Allowed growth of each high-water mark over its warmup baseline:
  // limit = baseline * (1 + slack) + headroom. The relative slack scales
  // with the workload; the absolute headroom absorbs small post-warmup
  // ramp (scoring-concurrency peaks, allocator noise) that a percentage of
  // a tiny baseline cannot. A real leak grows without bound and crosses
  // any fixed headroom within the run.
  double pool_slack = 0.30;
  double arena_slack = 0.30;
  double rss_slack = 0.30;
  uint64_t pool_headroom_bytes = 1ull << 20;    // 1 MiB
  uint64_t arena_headroom_bytes = 256ull << 10;  // 256 KiB
  uint64_t rss_headroom_kb = 32768;              // 32 MiB

  SoakSlos slos;

  // Fraction of sessions whose scores are re-verified offline (0 disables
  // parity checking). Sampling is a pure function of the session id.
  double parity_sample_rate = 1.0 / 64.0;
  // Bounded-memory guards on the parity machinery: at most this many
  // sampled sessions tracked at once, and at most this many offline
  // re-scores per checkpoint (excess completed scores are dropped and
  // counted, never silently).
  size_t max_tracked_parity_sessions = 4096;
  size_t max_parity_checks_per_checkpoint = 64;

  // Ingest retries when the engine reports kOverloaded (each retry drains a
  // ProcessPending batch first). Exhausted retries shed the event.
  int max_overload_retries = 64;

  // TPGNN_FAILPOINTS-grammar spec armed for the run ("" = none) and its
  // deterministic schedule seed.
  std::string failpoint_spec;
  uint64_t failpoint_seed = 1;

  // Invoked after every checkpoint (progress reporting); may be empty.
  std::function<void(const struct SoakCheckpoint&)> on_checkpoint;
};

struct SoakCheckpoint {
  uint64_t events = 0;
  uint64_t sessions_begun = 0;
  uint64_t scores_completed = 0;
  uint64_t resident_sessions = 0;
  uint64_t pool_bytes_peak = 0;
  uint64_t arena_bytes_peak = 0;
  uint64_t rss_peak_kb = 0;
  double wall_seconds = 0.0;
  uint64_t parity_checks = 0;      // Cumulative.
  uint64_t parity_mismatches = 0;  // Cumulative.
  uint64_t violations = 0;         // Cumulative.
};

struct SoakReport {
  // One human-readable line per broken invariant, in detection order.
  std::vector<std::string> violations;
  std::vector<SoakCheckpoint> checkpoints;

  uint64_t events = 0;
  uint64_t sessions_started = 0;
  uint64_t scores_completed = 0;
  uint64_t scores_failed = 0;
  // Events dropped after exhausting overload retries, and events rejected
  // with a non-retryable status (injected faults, post-shed kNotFound).
  uint64_t events_shed = 0;
  uint64_t events_rejected = 0;
  uint64_t failpoint_fires = 0;

  uint64_t parity_checks = 0;
  uint64_t parity_mismatches = 0;
  // Sampled scores dropped by the parity-machinery memory bounds.
  uint64_t parity_skipped = 0;

  double wall_seconds = 0.0;
  serve::MetricsSnapshot final_metrics;

  bool ok() const { return violations.empty(); }
};

// Runs the soak to completion. Installs the failpoint spec on entry and
// clears all failpoints on exit.
SoakReport RunSoak(const SoakOptions& options);

}  // namespace tpgnn::workload

#endif  // TPGNN_WORKLOAD_SOAK_H_
