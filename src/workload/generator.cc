#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>

#include "util/logging.h"
#include "workload/distributions.h"

namespace tpgnn::workload {

namespace {

constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
// Lane salts so identity, content, and scheduling never share a stream.
constexpr uint64_t kContentLane = 0x636f6e74656e7421ULL;   // "content!"
constexpr uint64_t kScheduleLane = 0x7363686564756c65ULL;  // "schedule"

}  // namespace

uint64_t SessionId(uint64_t seed, uint64_t index) {
  // SplitMix64 advances by one gamma then applies a bijective mix, so this
  // is mix(seed + (index + 1) * gamma): unique per index within a seed.
  uint64_t state = seed + index * kGamma;
  return SplitMix64(state);
}

uint64_t SessionSeed(uint64_t seed, uint64_t index) {
  uint64_t state = (seed ^ kContentLane) + index * kGamma;
  return SplitMix64(state);
}

// Header of one session: every draw before the first per-edge draw, in the
// exact order both the streaming path and MaterializeSession consume them.
struct WorkloadGenerator::SessionPlan {
  size_t tenant = 0;
  int64_t num_edges = 0;
  int64_t num_nodes = 0;
  int label = 0;
  bool abandoned = false;
  std::vector<std::vector<float>> features;
};

// One open session's residual streaming state; features live only in the
// Begin event, so steady-state cost is O(1) per open session.
struct WorkloadGenerator::OpenSession {
  uint64_t index = 0;
  uint64_t id = 0;
  Rng rng{0};
  int64_t num_edges = 0;
  int64_t edges_emitted = 0;
  int64_t num_nodes = 0;
  int64_t score_every = 0;
  double event_gap_mean = 0.0;
  double edge_time_gap_mean = 0.0;
  double session_time = 0.0;
  int label = 0;
  bool abandoned = false;
};

namespace {

struct EdgeDraw {
  int64_t src = 0;
  int64_t dst = 0;
  double dt = 0.0;   // Session-local time delta.
  double gap = 0.0;  // Stream-clock gap to the session's next event.
};

// The per-edge draw sequence — the single definition both paths share.
EdgeDraw DrawEdge(Rng& rng, int64_t num_nodes, double edge_time_gap_mean,
                  double event_gap_mean) {
  EdgeDraw d;
  d.src = rng.UniformInt(0, num_nodes - 1);
  d.dst = rng.UniformInt(0, num_nodes - 1);
  if (num_nodes > 1 && d.dst == d.src) {
    d.dst = (d.dst + 1) % num_nodes;
  }
  d.dt = rng.Uniform(0.0, 2.0 * edge_time_gap_mean);
  d.gap = ExponentialGap(rng, event_gap_mean);
  return d;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadOptions& options)
    : options_(options),
      schedule_rng_([&] {
        uint64_t state = options.seed ^ kScheduleLane;
        return Rng(SplitMix64(state));
      }()) {
  TPGNN_CHECK(!options_.tenants.empty()) << "workload needs >= 1 tenant";
  TPGNN_CHECK_GT(options_.session_arrival_rate, 0.0);
  TPGNN_CHECK_GE(options_.max_open_sessions, 1u);
  tenant_weights_.reserve(options_.tenants.size());
  for (const TenantProfile& t : options_.tenants) {
    TPGNN_CHECK_GE(t.min_edges, 1);
    TPGNN_CHECK_GE(t.min_nodes, 2) << "sessions need >= 2 nodes for edges";
    TPGNN_CHECK_GE(t.feature_dim, 1);
    tenant_weights_.push_back(t.weight);
  }
  next_arrival_time_ =
      ExponentialGap(schedule_rng_, 1.0 / options_.session_arrival_rate);
}

double WorkloadGenerator::WaveMultiplier(double t) const {
  const OverloadWave& w = options_.wave;
  if (w.period_seconds <= 0.0) {
    return 1.0;
  }
  const double phase = std::fmod(t, w.period_seconds);
  return phase < w.burst_fraction * w.period_seconds ? w.burst_multiplier
                                                     : 1.0;
}

WorkloadGenerator::~WorkloadGenerator() = default;

WorkloadGenerator::SessionPlan WorkloadGenerator::PlanSession(
    Rng* rng) const {
  SessionPlan plan;
  plan.tenant = rng->WeightedIndex(tenant_weights_);
  const TenantProfile& t = options_.tenants[plan.tenant];
  plan.num_edges = ClampedLogNormal(*rng, t.edges_log_mean, t.edges_log_sigma,
                                    t.min_edges, t.max_edges);
  plan.num_nodes = std::clamp(
      static_cast<int64_t>(std::llround(
          t.nodes_per_edge * static_cast<double>(plan.num_edges))),
      t.min_nodes, t.max_nodes);
  plan.label = rng->Bernoulli(0.5) ? 1 : 0;
  plan.abandoned = rng->Bernoulli(t.abandon_probability);
  plan.features.resize(static_cast<size_t>(plan.num_nodes));
  for (auto& f : plan.features) {
    f.resize(static_cast<size_t>(t.feature_dim));
    for (float& v : f) {
      v = rng->UniformFloat(-1.0f, 1.0f);
    }
  }
  return plan;
}

bool WorkloadGenerator::Next(serve::Event* event, uint64_t* session_index) {
  // Session-order events (scores, End) determined by an already-emitted
  // edge drain first; they share that edge's stream time.
  if (!pending_.empty()) {
    *event = pending_.front().first;
    if (session_index != nullptr) {
      *session_index = pending_.front().second;
    }
    pending_.pop_front();
  } else {
    const bool more_sessions =
        options_.num_sessions == 0 || next_index_ < options_.num_sessions;
    const size_t open = slots_.size() - free_slots_.size();
    const bool can_open = more_sessions && open < options_.max_open_sessions;
    if (heap_.empty() && !can_open) {
      // Bounded workload fully drained (unbounded always has more
      // sessions).
      return false;
    }
    if (can_open &&
        (heap_.empty() || next_arrival_time_ <= heap_.top().time)) {
      EmitBegin(event, session_index);
    } else {
      EmitFromOpen(event, session_index);
    }
  }
  // The merge rule keeps times nondecreasing except when the open-session
  // cap delays an arrival past its draw; clamp so the stream clock (which
  // drives TTL eviction) never runs backwards.
  stream_time_ = std::max(stream_time_, event->time);
  event->time = stream_time_;
  return true;
}

void WorkloadGenerator::EmitBegin(serve::Event* event,
                                  uint64_t* session_index) {
  const uint64_t index = next_index_++;
  Rng rng(SessionSeed(options_.seed, index));
  SessionPlan plan = PlanSession(&rng);
  const TenantProfile& t = options_.tenants[plan.tenant];

  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_.size();
    slots_.emplace_back();
  }
  OpenSession& s = slots_[slot];
  s.index = index;
  s.id = SessionId(options_.seed, index);
  s.rng = rng;
  s.num_edges = plan.num_edges;
  s.edges_emitted = 0;
  s.num_nodes = plan.num_nodes;
  s.score_every = t.score_every_edges;
  s.event_gap_mean = t.event_gap_mean;
  s.edge_time_gap_mean = t.edge_time_gap_mean;
  s.session_time = 0.0;
  s.label = plan.label;
  s.abandoned = plan.abandoned;

  *event = serve::Event();
  event->kind = serve::Event::Kind::kBegin;
  event->session_id = s.id;
  event->time = next_arrival_time_;
  event->num_nodes = plan.num_nodes;
  event->feature_dim = t.feature_dim;
  event->features.reserve(plan.features.size());
  for (size_t node = 0; node < plan.features.size(); ++node) {
    event->features.push_back(
        {static_cast<int64_t>(node), std::move(plan.features[node])});
  }
  if (session_index != nullptr) {
    *session_index = index;
  }

  // First session event follows its own gap draw; the next arrival follows
  // the (possibly burst-modulated) arrival process.
  const EdgeDraw first = DrawEdge(s.rng, s.num_nodes, s.edge_time_gap_mean,
                                  s.event_gap_mean);
  // Stash the draw: the edge itself is emitted when the heap pops it. Store
  // by replaying the draw is impossible (the Rng advanced), so carry it.
  s.session_time += first.dt;
  pending_draws_.resize(slots_.size());
  pending_draws_[slot] = {first.src, first.dst};
  heap_.push({next_arrival_time_ + first.gap, slot});
  const double rate =
      options_.session_arrival_rate * WaveMultiplier(next_arrival_time_);
  next_arrival_time_ += ExponentialGap(schedule_rng_, 1.0 / rate);
}

void WorkloadGenerator::EmitFromOpen(serve::Event* event,
                                     uint64_t* session_index) {
  const HeapEntry top = heap_.top();
  heap_.pop();
  OpenSession& s = slots_[top.slot];

  *event = serve::Event();
  event->kind = serve::Event::Kind::kEdge;
  event->session_id = s.id;
  event->time = top.time;
  event->src = pending_draws_[top.slot].src;
  event->dst = pending_draws_[top.slot].dst;
  event->edge_time = s.session_time;
  ++s.edges_emitted;
  if (session_index != nullptr) {
    *session_index = s.index;
  }

  const bool last = s.edges_emitted == s.num_edges;
  if (s.score_every > 0 && s.edges_emitted % s.score_every == 0 &&
      !(last && !s.abandoned)) {
    // Periodic score; when the final edge also closes the session the final
    // score below subsumes it.
    serve::Event score;
    score.kind = serve::Event::Kind::kScore;
    score.session_id = s.id;
    score.time = top.time;
    score.label = s.label;
    pending_.push_back({std::move(score), s.index});
  }
  if (last) {
    if (!s.abandoned) {
      serve::Event score;
      score.kind = serve::Event::Kind::kScore;
      score.session_id = s.id;
      score.time = top.time;
      score.label = s.label;
      pending_.push_back({std::move(score), s.index});
      serve::Event end;
      end.kind = serve::Event::Kind::kEnd;
      end.session_id = s.id;
      end.time = top.time;
      pending_.push_back({std::move(end), s.index});
    }
    free_slots_.push_back(top.slot);
    return;
  }
  const EdgeDraw next = DrawEdge(s.rng, s.num_nodes, s.edge_time_gap_mean,
                                  s.event_gap_mean);
  s.session_time += next.dt;
  pending_draws_[top.slot] = {next.src, next.dst};
  heap_.push({top.time + next.gap, top.slot});
}

MaterializedSession WorkloadGenerator::MaterializeSession(
    uint64_t index) const {
  Rng rng(SessionSeed(options_.seed, index));
  SessionPlan plan = PlanSession(&rng);
  const TenantProfile& t = options_.tenants[plan.tenant];

  MaterializedSession session;
  session.session_id = SessionId(options_.seed, index);
  session.tenant = plan.tenant;
  session.num_nodes = plan.num_nodes;
  session.feature_dim = t.feature_dim;
  session.features = std::move(plan.features);
  session.label = plan.label;
  session.abandoned = plan.abandoned;
  session.edges.reserve(static_cast<size_t>(plan.num_edges));
  double session_time = 0.0;
  for (int64_t k = 0; k < plan.num_edges; ++k) {
    const EdgeDraw d = DrawEdge(rng, plan.num_nodes, t.edge_time_gap_mean,
                                t.event_gap_mean);
    session_time += d.dt;  // d.gap is scheduling-only; consumed, unused.
    session.edges.push_back({d.src, d.dst, session_time});
  }
  return session;
}

void AppendEventBytes(const serve::Event& event, std::string* out) {
  auto put_u64 = [out](uint64_t v) {
    char bytes[8];
    std::memcpy(bytes, &v, sizeof(bytes));
    out->append(bytes, sizeof(bytes));
  };
  auto put_f64 = [&put_u64](double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  };
  put_u64(static_cast<uint64_t>(event.kind));
  put_u64(event.session_id);
  put_f64(event.time);
  put_u64(static_cast<uint64_t>(event.num_nodes));
  put_u64(static_cast<uint64_t>(event.feature_dim));
  for (const serve::NodeInit& f : event.features) {
    put_u64(static_cast<uint64_t>(f.node));
    for (float v : f.features) {
      uint32_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      put_u64(bits);
    }
  }
  put_u64(static_cast<uint64_t>(event.src));
  put_u64(static_cast<uint64_t>(event.dst));
  put_f64(event.edge_time);
  put_u64(static_cast<uint64_t>(static_cast<int64_t>(event.label)));
}

}  // namespace tpgnn::workload
