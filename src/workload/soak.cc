#include "workload/soak.h"

#include <cstring>
#include <deque>
#include <sstream>
#include <unordered_map>

#include "graph/temporal_graph.h"
#include "tensor/tensor.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace tpgnn::workload {

namespace {

// Deterministic parity sampling: a pure function of the session id, so the
// sampled set is identical across runs and independent of scheduling.
bool SampledForParity(uint64_t session_id, double rate) {
  if (rate <= 0.0) {
    return false;
  }
  if (rate >= 1.0) {
    return true;
  }
  uint64_t state = session_id ^ 0x7061726974792121ULL;  // "parity!!"
  const uint64_t u = SplitMix64(state);
  return static_cast<double>(u >> 11) * 0x1.0p-53 < rate;
}

// The offline reference score (the serving parity contract, see
// tests/serve/parity_test.cc): inference-mode forward over the fully built
// prefix graph. Serving scores must reproduce this bit for bit.
float OfflineLogit(core::TpGnnModel& model, const graph::TemporalGraph& g) {
  tensor::NoGradGuard no_grad;
  Rng rng(0);
  return model.ForwardLogit(g, /*training=*/false, rng).item();
}

struct ParityPending {
  uint64_t session_index = 0;
  int64_t edges_scored = 0;
  float logit = 0.0f;
};

}  // namespace

SoakReport RunSoak(const SoakOptions& options) {
  TPGNN_CHECK_GE(options.checkpoint_every_events, 1u);
  SoakReport report;

  const uint64_t fires_before = failpoint::TotalFires();
  if (!options.failpoint_spec.empty()) {
    const Status fp_status =
        failpoint::InstallFromSpecString(options.failpoint_spec);
    TPGNN_CHECK(fp_status.ok()) << fp_status.ToString();
    failpoint::SetSeed(options.failpoint_seed);
  }

  serve::InferenceEngine engine(options.config, options.model_seed,
                                options.engine);
  WorkloadGenerator generator(options.workload);
  Stopwatch wall;

  // Parity machinery: sampled live sessions (id -> index), completed scores
  // awaiting offline verification, and ended ids whose tracking is dropped
  // at the next checkpoint (after their queued scores have drained).
  std::unordered_map<uint64_t, uint64_t> tracked;
  std::vector<ParityPending> parity_queue;
  std::deque<uint64_t> ended_tracked;

  std::vector<serve::ScoreResult> results;
  auto handle_results = [&] {
    for (const serve::ScoreResult& r : results) {
      if (!r.status.ok()) {
        continue;
      }
      const auto it = tracked.find(r.session_id);
      if (it == tracked.end()) {
        continue;
      }
      if (parity_queue.size() < options.max_parity_checks_per_checkpoint) {
        parity_queue.push_back({it->second, r.edges_scored, r.logit});
      } else {
        ++report.parity_skipped;
      }
    }
    results.clear();
  };

  // Memory baselines, captured at the first checkpoint past warmup.
  bool baselines_set = false;
  uint64_t pool_baseline = 0, arena_baseline = 0, rss_baseline = 0;
  // One violation line per SLO, at first breach, instead of one per
  // checkpoint thereafter.
  bool slo_breached[3] = {false, false, false};

  auto violation = [&](const std::string& text) {
    report.violations.push_back(text);
  };

  auto checkpoint = [&] {
    engine.Flush(&results);
    handle_results();
    serve::Metrics& metrics = engine.mutable_metrics();
    metrics.UpdateResourcePeaks();
    const serve::MetricsSnapshot snap = metrics.Snapshot();
    const uint64_t resident = engine.resident_sessions();

    // Exact accounting: every begun session is ended, evicted, or resident.
    // Flush drained all pins, so no deferred End is outstanding.
    if (snap.sessions_begun !=
        snap.sessions_ended + snap.sessions_evicted + resident) {
      std::ostringstream os;
      os << "accounting: begun=" << snap.sessions_begun
         << " != ended=" << snap.sessions_ended
         << " + evicted=" << snap.sessions_evicted
         << " + resident=" << resident << " at event " << report.events;
      violation(os.str());
    }

    // Bounded memory after warmup: no monotone growth of any high-water
    // mark beyond its declared slack.
    if (!baselines_set && report.events >= options.warmup_events) {
      baselines_set = true;
      pool_baseline = snap.pool_bytes_peak;
      arena_baseline = snap.arena_bytes_peak;
      rss_baseline = snap.rss_peak_kb;
    } else if (baselines_set) {
      const struct {
        const char* name;
        uint64_t peak;
        uint64_t baseline;
        double slack;
        uint64_t headroom;
      } bounds[] = {
          {"pool_bytes_peak", snap.pool_bytes_peak, pool_baseline,
           options.pool_slack, options.pool_headroom_bytes},
          {"arena_bytes_peak", snap.arena_bytes_peak, arena_baseline,
           options.arena_slack, options.arena_headroom_bytes},
          {"rss_peak_kb", snap.rss_peak_kb, rss_baseline, options.rss_slack,
           options.rss_headroom_kb},
      };
      for (const auto& b : bounds) {
        const double limit = static_cast<double>(b.baseline) *
                                 (1.0 + b.slack) +
                             static_cast<double>(b.headroom);
        if (static_cast<double>(b.peak) > limit) {
          std::ostringstream os;
          os << "memory: " << b.name << "=" << b.peak
             << " exceeds warmup baseline " << b.baseline << " + "
             << static_cast<int>(b.slack * 100) << "% slack + " << b.headroom
             << " headroom at event " << report.events;
          violation(os.str());
        }
      }
    }

    // Latency SLOs over the cumulative histograms.
    const struct {
      int idx;
      const char* name;
      double p99;
      double slo;
    } slos[] = {
        {0, "ingest", snap.ingest_latency.PercentileMicros(0.99),
         options.slos.ingest_p99_us},
        {1, "score", snap.score_latency.PercentileMicros(0.99),
         options.slos.score_p99_us},
        {2, "e2e", snap.e2e_latency.PercentileMicros(0.99),
         options.slos.e2e_p99_us},
    };
    for (const auto& s : slos) {
      if (s.slo > 0.0 && s.p99 > s.slo && !slo_breached[s.idx]) {
        slo_breached[s.idx] = true;
        std::ostringstream os;
        os << "slo: " << s.name << " p99=" << s.p99 << "us exceeds "
           << s.slo << "us at event " << report.events;
        violation(os.str());
      }
    }

    // Offline parity over the sampled completed scores.
    for (const ParityPending& p : parity_queue) {
      const MaterializedSession session =
          generator.MaterializeSession(p.session_index);
      if (p.edges_scored < 0 ||
          static_cast<size_t>(p.edges_scored) > session.edges.size()) {
        std::ostringstream os;
        os << "parity: session " << p.session_index << " scored "
           << p.edges_scored << " edges but materializes only "
           << session.edges.size();
        violation(os.str());
        ++report.parity_mismatches;
        ++report.parity_checks;
        continue;
      }
      graph::TemporalGraph prefix(session.num_nodes, session.feature_dim);
      for (int64_t node = 0; node < session.num_nodes; ++node) {
        prefix.SetNodeFeature(node,
                              session.features[static_cast<size_t>(node)]);
      }
      for (int64_t k = 0; k < p.edges_scored; ++k) {
        const MaterializedSession::Edge& e =
            session.edges[static_cast<size_t>(k)];
        prefix.AddEdge(e.src, e.dst, e.time);
      }
      const float offline = OfflineLogit(engine.model(), prefix);
      ++report.parity_checks;
      if (std::memcmp(&offline, &p.logit, sizeof(float)) != 0) {
        ++report.parity_mismatches;
        std::ostringstream os;
        os << "parity: session " << p.session_index << " at "
           << p.edges_scored << " edges served " << p.logit << " offline "
           << offline;
        violation(os.str());
      }
    }
    parity_queue.clear();
    // Ended sampled sessions have no more scores in flight post-Flush.
    while (!ended_tracked.empty()) {
      tracked.erase(ended_tracked.front());
      ended_tracked.pop_front();
    }

    SoakCheckpoint cp;
    cp.events = report.events;
    cp.sessions_begun = snap.sessions_begun;
    cp.scores_completed = snap.scores_completed;
    cp.resident_sessions = resident;
    cp.pool_bytes_peak = snap.pool_bytes_peak;
    cp.arena_bytes_peak = snap.arena_bytes_peak;
    cp.rss_peak_kb = snap.rss_peak_kb;
    cp.wall_seconds = wall.ElapsedSeconds();
    cp.parity_checks = report.parity_checks;
    cp.parity_mismatches = report.parity_mismatches;
    cp.violations = report.violations.size();
    report.checkpoints.push_back(cp);
    if (options.on_checkpoint) {
      options.on_checkpoint(cp);
    }
  };

  const bool unbounded = options.workload.num_sessions == 0;
  serve::Event event;
  uint64_t session_index = 0;
  while (true) {
    if (unbounded &&
        generator.sessions_started() >= options.min_sessions &&
        wall.ElapsedSeconds() >= options.min_wall_seconds) {
      break;
    }
    if (!generator.Next(&event, &session_index)) {
      break;
    }
    const bool is_begin = event.kind == serve::Event::Kind::kBegin;
    if (is_begin &&
        SampledForParity(event.session_id, options.parity_sample_rate)) {
      if (tracked.size() < options.max_tracked_parity_sessions) {
        tracked.emplace(event.session_id, session_index);
      } else {
        ++report.parity_skipped;
      }
    }
    if (event.kind == serve::Event::Kind::kEnd &&
        tracked.count(event.session_id) > 0) {
      ended_tracked.push_back(event.session_id);
    }

    Status status = engine.Ingest(event);
    for (int retry = 0;
         status.code() == StatusCode::kOverloaded &&
         retry < options.max_overload_retries;
         ++retry) {
      engine.ProcessPending(&results);
      handle_results();
      status = engine.Ingest(event);
    }
    if (status.code() == StatusCode::kOverloaded) {
      ++report.events_shed;
      if (is_begin) {
        tracked.erase(event.session_id);
      }
    } else if (!status.ok()) {
      // Injected faults and the kNotFound fallout of a shed Begin.
      ++report.events_rejected;
      if (is_begin) {
        tracked.erase(event.session_id);
      }
    }
    ++report.events;

    if (engine.pending_scores() >= engine.options().max_batch) {
      engine.ProcessPending(&results);
      handle_results();
    }
    if (report.events % options.checkpoint_every_events == 0) {
      checkpoint();
    }
  }

  checkpoint();  // Final: flush, verify, and record the end state.
  report.sessions_started = generator.sessions_started();
  report.wall_seconds = wall.ElapsedSeconds();
  report.final_metrics = engine.mutable_metrics().Snapshot();
  report.scores_completed = report.final_metrics.scores_completed;
  report.scores_failed = report.final_metrics.scores_failed;
  report.failpoint_fires = failpoint::TotalFires() - fires_before;
  if (!options.failpoint_spec.empty()) {
    failpoint::ClearAll();
  }
  return report;
}

}  // namespace tpgnn::workload
