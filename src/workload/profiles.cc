#include "workload/profiles.h"

namespace tpgnn::workload {

namespace {

TenantProfile SmallTenant() {
  TenantProfile t;
  t.name = "small";
  t.weight = 6.0;
  t.edges_log_mean = 2.7;  // Median ~15 edges.
  t.edges_log_sigma = 0.5;
  t.min_edges = 4;
  t.max_edges = 96;
  t.nodes_per_edge = 0.5;
  t.min_nodes = 4;
  t.max_nodes = 48;
  t.score_every_edges = 8;
  t.event_gap_mean = 0.02;
  return t;
}

TenantProfile MidTenant() {
  TenantProfile t;
  t.name = "mid";
  t.weight = 3.0;
  t.edges_log_mean = 3.9;  // Median ~50 edges.
  t.edges_log_sigma = 0.6;
  t.min_edges = 16;
  t.max_edges = 256;
  t.nodes_per_edge = 0.4;
  t.min_nodes = 8;
  t.max_nodes = 96;
  t.score_every_edges = 16;
  t.event_gap_mean = 0.03;
  return t;
}

TenantProfile HeavyTenant() {
  TenantProfile t;
  t.name = "heavy";
  t.weight = 1.0;
  t.edges_log_mean = 5.0;  // Median ~150 edges.
  t.edges_log_sigma = 0.5;
  t.min_edges = 64;
  t.max_edges = 512;
  t.nodes_per_edge = 0.3;
  t.min_nodes = 16;
  t.max_nodes = 128;
  t.score_every_edges = 32;
  t.event_gap_mean = 0.05;
  return t;
}

}  // namespace

WorkloadOptions PaperMixProfile(uint64_t seed) {
  WorkloadOptions options;
  options.seed = seed;
  options.session_arrival_rate = 300.0;
  options.max_open_sessions = 512;
  TenantProfile small = SmallTenant();
  small.abandon_probability = 0.02;
  options.tenants = {small, MidTenant(), HeavyTenant()};
  return options;
}

WorkloadOptions EvictionChurnProfile(uint64_t seed) {
  WorkloadOptions options;
  options.seed = seed;
  options.session_arrival_rate = 800.0;
  options.max_open_sessions = 768;
  TenantProfile churn = SmallTenant();
  churn.name = "churn";
  churn.edges_log_mean = 2.2;  // Median ~9 edges.
  churn.max_edges = 48;
  churn.score_every_edges = 0;  // Final score only — when not abandoned.
  churn.abandon_probability = 0.5;
  churn.event_gap_mean = 0.01;
  options.tenants = {churn, SmallTenant()};
  return options;
}

WorkloadOptions OverloadWaveProfile(uint64_t seed) {
  WorkloadOptions options = PaperMixProfile(seed);
  options.wave.period_seconds = 20.0;
  options.wave.burst_fraction = 0.2;
  options.wave.burst_multiplier = 6.0;
  return options;
}

WorkloadOptions MiniSoakProfile(uint64_t seed) {
  WorkloadOptions options;
  options.seed = seed;
  options.session_arrival_rate = 400.0;
  options.max_open_sessions = 64;
  TenantProfile tiny = SmallTenant();
  tiny.name = "tiny";
  tiny.edges_log_mean = 2.3;
  tiny.max_edges = 48;
  tiny.max_nodes = 24;
  tiny.score_every_edges = 8;
  tiny.event_gap_mean = 0.01;
  tiny.abandon_probability = 0.1;
  options.tenants = {tiny};
  options.wave.period_seconds = 2.0;
  options.wave.burst_fraction = 0.25;
  options.wave.burst_multiplier = 4.0;
  return options;
}

}  // namespace tpgnn::workload
