#ifndef TPGNN_UTIL_FAILPOINT_H_
#define TPGNN_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

// Deterministic, seeded fault injection for the serving stack.
//
// A *failpoint* is a named site in production code where a fault can be
// provoked on demand: a socket read that pretends the peer reset, a send
// that delivers one byte, a pool acquire that falls back to plain
// allocation, a wire frame whose header gets a bit flipped. Sites are
// compiled in unconditionally; when no failpoint is active the per-site
// cost is one relaxed atomic load and a never-taken branch (verified
// against BENCH_net.json throughput — see DESIGN.md §4.5).
//
// Activation, two ways:
//   * Environment (whole-process chaos runs):
//       TPGNN_FAILPOINTS=net.recv=0.05:short_io,engine.score_enqueue=0.02:return_error
//       TPGNN_FAILPOINT_SEED=7
//     parsed once at startup. Grammar per entry: name=prob:kind[:arg[:max]]
//     where kind is one of return_error | short_io | delay | alloc_fail |
//     corrupt_byte, `arg` is the kind-specific parameter (delay micros,
//     short-io byte cap, ...) and `max` caps the number of fires (0 =
//     unlimited).
//   * Programmatic (tests): ScopedFailpoint installs on construction and
//     restores the previous state of that name on destruction.
//
// Determinism: whether the i-th *evaluation* of a site fires is a pure
// function of (global seed, site name, i). Counters are atomic, so under
// concurrency the fire schedule is deterministic per site-evaluation
// sequence even though thread interleaving decides which thread draws
// which index. Same seed + same per-site evaluation counts => same fires.
//
// A site never *invents* failure modes: each site maps the generic kinds
// onto outcomes its callers already handle (a typed Status, a partial
// read/write, a stall). Chaos tests (tests/net/chaos_test.cc) then assert
// the invariants that must survive any schedule: no crash, exact score
// accounting, bit-identical results, error counters equal to fire counts.

namespace tpgnn::failpoint {

enum class Kind {
  kReturnError,  // The site returns its documented injected-failure Status.
  kShortIo,      // I/O delivers at most `arg` bytes (0 = simulated EAGAIN).
  kDelay,        // The site stalls for `arg` microseconds (default 200).
  kAllocFail,    // Pooled acquisition fails; the site falls back gracefully.
  kCorruptByte,  // One bit of the site's buffer flips, deterministically.
};

// Parses "return_error" etc.; false on unknown names.
bool ParseKind(const std::string& text, Kind* kind);
const char* KindName(Kind kind);

// One fired injection, as seen by the site.
struct Hit {
  Kind kind = Kind::kReturnError;
  uint64_t arg = 0;         // Kind-specific parameter from the spec.
  uint64_t fire_index = 0;  // 0-based index among this site's fires.
  uint64_t site_seed = 0;   // Per-site seed (drives corrupt-byte choices).
};

namespace internal {
// Number of installed failpoints. Acquire/release so a site that observes
// a nonzero count also observes the registry write that installed it.
extern std::atomic<int> g_active_count;
bool Evaluate(const char* name, Hit* hit);
}  // namespace internal

// Fast gate, inlined at every site.
inline bool Armed() {
  return internal::g_active_count.load(std::memory_order_acquire) > 0;
}

// The site macro: false (with no registry access) unless some failpoint is
// installed; otherwise true iff `name` is active and fires this evaluation,
// filling `*hit`.
#define TPGNN_FAILPOINT(name, hit)                    \
  (__builtin_expect(::tpgnn::failpoint::Armed(), 0) && \
   ::tpgnn::failpoint::internal::Evaluate(name, hit))

// --- Standard interpretations of a Hit, shared by the sites ---------------

// Status for a kReturnError hit: Status(code, "injected fault at <site>").
Status InjectedError(StatusCode code, const char* site);

// Sleeps for hit.arg microseconds (200 µs when arg is 0). No-op for
// non-delay hits.
void ApplyDelay(const Hit& hit);

// Byte budget of a kShortIo hit: min(size, hit.arg). hit.arg == 0 means a
// simulated would-block (zero bytes); sites on *blocking* paths should pass
// `min_bytes` = 1 so they always make progress.
size_t ShortIoBudget(const Hit& hit, size_t size, size_t min_bytes = 0);

// Flips one bit at a deterministic position (derived from the hit) of
// [data, data + size). No-op when size is 0.
void CorruptByte(const Hit& hit, uint8_t* data, size_t size);

// Flips one bit in the always-validated region of a 12-byte TPGN frame
// header (magic / version / reserved — never the type or length bytes,
// whose corruption can alias to a different well-formed frame), so every
// fire is guaranteed to surface as a typed kDataLoss at the receiver.
// No-op when size < 12.
void CorruptFrameHeader(const Hit& hit, uint8_t* frame, size_t size);

// --- Registry management --------------------------------------------------

struct FailpointSpec {
  std::string name;
  double probability = 1.0;  // Per-evaluation fire probability in [0, 1].
  Kind kind = Kind::kReturnError;
  uint64_t arg = 0;
  uint64_t max_fires = 0;  // 0 = unlimited.
};

// Installs (or replaces) a failpoint. Counters of the name are kept.
void Install(const FailpointSpec& spec);
// Removes one failpoint; false if it was not installed.
bool Remove(const std::string& name);
// Removes every failpoint (fire counters survive; see ResetCounters).
void ClearAll();

// Parses the TPGNN_FAILPOINTS grammar and installs every entry; on a parse
// error nothing is installed and the error names the bad entry.
Status InstallFromSpecString(const std::string& spec);

// Reseeds the schedule and zeroes all evaluation/fire counters, so runs
// with equal seeds replay identical schedules. Installed specs survive.
void SetSeed(uint64_t seed);

// Fires of one site (survives Remove/ClearAll until ResetCounters).
uint64_t FireCount(const std::string& name);
// Fires across all sites.
uint64_t TotalFires();
// Zeroes every evaluation and fire counter.
void ResetCounters();

// Number of currently installed failpoints.
size_t ActiveCount();

// RAII activation for tests: installs on construction, restores the
// previous registration of `name` (or removes it) on destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(const std::string& name, double probability, Kind kind,
                  uint64_t arg = 0, uint64_t max_fires = 0);
  ~ScopedFailpoint();

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  // Fires since THIS installation (earlier registrations of the same name
  // may have fired before; FireCount(name) holds the cumulative total).
  uint64_t fires() const { return FireCount(name_) - base_fires_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  uint64_t base_fires_ = 0;
  bool had_previous_ = false;
  FailpointSpec previous_;
};

}  // namespace tpgnn::failpoint

#endif  // TPGNN_UTIL_FAILPOINT_H_
