#include "util/status.h"

namespace tpgnn {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  return std::string(CodeName(code_)) + ": " + message_;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace tpgnn
