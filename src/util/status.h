#ifndef TPGNN_UTIL_STATUS_H_
#define TPGNN_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

// Minimal Status/StatusOr for recoverable errors (configuration, I/O).
// Programming errors (shape mismatches, invariant violations) use the CHECK
// macros in util/logging.h instead and abort.

namespace tpgnn {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kInternal = 4,
  // Backpressure: a bounded queue or resource cap is full and the caller
  // should retry after draining (see serve::InferenceEngine).
  kOverloaded = 5,
  // A deadline elapsed before the operation completed (client-side network
  // timeouts; see net::Client).
  kDeadlineExceeded = 6,
  // Unrecoverable data corruption or loss: a malformed, truncated, or
  // bit-flipped wire frame (see net/protocol.h). The stream that produced
  // it cannot be resynchronised and must be torn down.
  kDataLoss = 7,
};

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Overloaded(std::string message) {
    return Status(StatusCode::kOverloaded, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace tpgnn

#endif  // TPGNN_UTIL_STATUS_H_
