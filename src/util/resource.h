#ifndef TPGNN_UTIL_RESOURCE_H_
#define TPGNN_UTIL_RESOURCE_H_

#include <cstdint>

// Process resource probes for the soak harness and serving metrics
// (DESIGN.md §4.9): resident-set readings from the kernel, used to assert
// that memory stays bounded over sustained runs. Both calls are cheap (one
// /proc read) but not hot-path cheap — they are meant for checkpoint-rate
// sampling, not per-event accounting.

namespace tpgnn::util {

// Current resident set size in KiB (Linux: VmRSS from /proc/self/status).
// 0 when the platform offers no probe — callers must treat 0 as "unknown",
// never as "no memory".
uint64_t CurrentRssKb();

// Peak resident set size in KiB (Linux: VmHWM — the kernel's own high-water
// mark, monotone over the process lifetime). 0 when unavailable.
uint64_t PeakRssKb();

}  // namespace tpgnn::util

#endif  // TPGNN_UTIL_RESOURCE_H_
