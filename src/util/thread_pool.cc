#include "util/thread_pool.h"

#include <algorithm>

#include "util/env.h"
#include "util/logging.h"

namespace tpgnn {

namespace {

thread_local bool in_worker = false;

// RAII so fn() throwing a CHECK-abort or early return never leaves the flag
// set on a reused thread. Saves and restores the previous value: the inline
// path of a nested ParallelFor opens its own scope, and resetting the flag
// to false there would make a *subsequent* nested call from the same task
// take the submission path and deadlock waiting on its own enclosing job.
struct InWorkerScope {
  bool prev;
  InWorkerScope() : prev(in_worker) { in_worker = true; }
  ~InWorkerScope() { in_worker = prev; }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

bool ThreadPool::InWorker() { return in_worker; }

void ThreadPool::WorkerLoop() {
  for (;;) {
    Chunk chunk;
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || (job_ != nullptr && !job_->chunks.empty());
      });
      if (stop_) return;
      job = job_;
      chunk = job->chunks.front();
      job->chunks.pop_front();
    }
    {
      InWorkerScope scope;
      for (int64_t i = chunk.begin; i < chunk.end; ++i) {
        (*job->fn)(i);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      // The submitter waits for this count, so `job` stays alive until the
      // notification below is issued under the same mutex.
      if (--job->pending_chunks == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::DrainJob(Job& job) {
  for (;;) {
    Chunk chunk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job.chunks.empty()) return;
      chunk = job.chunks.front();
      job.chunks.pop_front();
    }
    {
      InWorkerScope scope;
      for (int64_t i = chunk.begin; i < chunk.end; ++i) {
        (*job.fn)(i);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--job.pending_chunks == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<int64_t>(1, grain);
  // Inline paths: serial pool, nested call from a worker (avoids deadlock
  // and keeps per-thread guards scoped correctly), or a range too small to
  // split. All three preserve strict index order.
  if (num_threads_ == 1 || InWorker() || end - begin <= grain) {
    InWorkerScope scope;
    for (int64_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }

  Job job;
  for (int64_t lo = begin; lo < end; lo += grain) {
    job.chunks.push_back({lo, std::min(lo + grain, end)});
  }
  job.fn = &fn;
  job.pending_chunks = static_cast<int64_t>(job.chunks.size());

  {
    std::unique_lock<std::mutex> lock(mu_);
    // One live job at a time; concurrent external submitters queue here.
    done_cv_.wait(lock, [this] { return job_ == nullptr; });
    job_ = &job;
  }
  work_cv_.notify_all();

  DrainJob(job);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&job] { return job.pending_chunks == 0; });
    job_ = nullptr;
  }
  // Wake any submitter waiting for the job slot.
  done_cv_.notify_all();
}

int ThreadPool::DefaultNumThreads() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int64_t configured =
      GetEnvInt("TPGNN_NUM_THREADS", hw > 0 ? hw : 1);
  return static_cast<int>(std::max<int64_t>(1, configured));
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads());
  return *pool;
}

}  // namespace tpgnn
