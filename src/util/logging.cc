#include "util/logging.h"

#include <cstring>

namespace tpgnn {
namespace internal_logging {

namespace {

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel& MinLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogMessage::LogMessage(const char* file, int line, LogLevel level)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel()) {
    std::cerr << stream_.str() << std::endl;
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace tpgnn
