#include "util/env.h"

#include <cstdlib>

namespace tpgnn {

int64_t GetEnvInt(const std::string& name, int64_t default_value) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') {
    return default_value;
  }
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    return default_value;
  }
  return static_cast<int64_t>(parsed);
}

std::string GetEnvString(const std::string& name,
                         const std::string& default_value) {
  const char* value = std::getenv(name.c_str());
  return value != nullptr ? std::string(value) : default_value;
}

}  // namespace tpgnn
