#ifndef TPGNN_UTIL_THREAD_POOL_H_
#define TPGNN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

// Fixed-size worker pool shared by the trainer, the evaluator, and the
// benchmark harness.
//
// Design notes (see DESIGN.md §"Threading model"):
//  * The pool size is decided once, at first use of Global(), from the
//    TPGNN_NUM_THREADS environment variable (default: hardware
//    concurrency). Size 1 means every ParallelFor runs inline on the
//    calling thread, which is the bit-exact serial path.
//  * ParallelFor partitions [begin, end) into contiguous chunks of at most
//    `grain` indices. Each index is processed exactly once; callers that
//    need ordered results write into a pre-sized vector at slot `i`
//    (see ParallelMap) so collection order never depends on scheduling.
//  * Nested ParallelFor calls issued from inside a worker run inline on
//    that worker. This keeps nested parallel code deadlock-free without a
//    work-stealing scheduler and keeps the determinism story simple.
//  * Worker threads hold no tensor/autograd state; anything thread-local
//    (e.g. tensor::NoGradGuard) must be established inside the body
//    function, not around the ParallelFor call.

namespace tpgnn {

class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers (the caller participates in every
  // ParallelFor, so `num_threads` is the total parallelism). num_threads < 1
  // is clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Invokes fn(i) exactly once for every i in [begin, end), distributing
  // contiguous chunks of at most `grain` indices across the pool. Blocks
  // until all indices are processed. grain < 1 is clamped to 1. Must not
  // throw from fn; errors should CHECK-fail.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t)>& fn);

  // True while the current thread is executing a ParallelFor body, in which
  // case nested ParallelFor calls run inline.
  static bool InWorker();

  // Process-wide pool sized from TPGNN_NUM_THREADS (default: hardware
  // concurrency, at least 1). Constructed on first use.
  static ThreadPool& Global();

  // Resolved size of Global() without forcing its construction.
  static int DefaultNumThreads();

 private:
  struct Chunk {
    int64_t begin = 0;
    int64_t end = 0;
  };
  // Shared state of one ParallelFor invocation; workers pull chunks until
  // the queue drains.
  struct Job {
    std::deque<Chunk> chunks;
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t pending_chunks = 0;  // Chunks not yet fully processed.
  };

  void WorkerLoop();
  // Runs chunks of `job` until its queue is empty. Returns when the calling
  // thread finds no more chunks to claim (other threads may still be
  // finishing theirs).
  void DrainJob(Job& job);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // Signals workers: job posted or stop.
  std::condition_variable done_cv_;  // Signals submitter: job finished.
  Job* job_ = nullptr;               // Live job, guarded by mu_.
  bool stop_ = false;
};

// Applies fn(i) for i in [0, n) on `pool` and collects the results in index
// order; result slot i is always fn(i) regardless of thread scheduling.
template <typename T, typename Fn>
std::vector<T> ParallelMap(ThreadPool& pool, int64_t n, int64_t grain,
                           Fn&& fn) {
  std::vector<T> results(static_cast<size_t>(n));
  pool.ParallelFor(0, n, grain, [&](int64_t i) {
    results[static_cast<size_t>(i)] = fn(i);
  });
  return results;
}

}  // namespace tpgnn

#endif  // TPGNN_UTIL_THREAD_POOL_H_
