#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace tpgnn {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  // xoshiro256** step.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

float Rng::UniformFloat(float lo, float hi) {
  return static_cast<float>(Uniform(lo, hi));
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TPGNN_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = max() - max() % range;
  uint64_t value = Next();
  while (value >= limit) {
    value = Next();
  }
  return lo + static_cast<int64_t>(value % range);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) {
    u1 = Uniform();
  }
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() { return Rng(Next()); }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  TPGNN_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    TPGNN_CHECK_GE(w, 0.0);
    total += w;
  }
  TPGNN_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) {
      return i;
    }
  }
  return weights.size() - 1;
}

}  // namespace tpgnn
