#ifndef TPGNN_UTIL_LOGGING_H_
#define TPGNN_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

// Lightweight logging and invariant-checking macros.
//
// CHECK-style macros are active in all build types (they do not depend on
// NDEBUG): a failed check indicates API misuse or a broken internal invariant
// and aborts after printing the failing condition and its source location.
// LOG(level) writes a single formatted line to stderr.

namespace tpgnn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

// Minimum level that is actually emitted; settable for tests/quiet runs.
LogLevel& MinLogLevel();

const char* LevelName(LogLevel level);

// Accumulates one log line and flushes it (with a newline) on destruction.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogLevel level);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
  LogLevel level_;
};

// Like LogMessage but aborts the process on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows a fully-built ostream chain so CHECK can be used in expression
// position; operator& binds more loosely than operator<<.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

}  // namespace tpgnn

#define TPGNN_LOG_DEBUG ::tpgnn::LogLevel::kDebug
#define TPGNN_LOG_INFO ::tpgnn::LogLevel::kInfo
#define TPGNN_LOG_WARNING ::tpgnn::LogLevel::kWarning
#define TPGNN_LOG_ERROR ::tpgnn::LogLevel::kError

#define LOG(level)                                                       \
  ::tpgnn::internal_logging::LogMessage(__FILE__, __LINE__,              \
                                        TPGNN_LOG_##level)               \
      .stream()

#define TPGNN_CHECK(condition)                                           \
  (condition) ? (void)0                                                  \
              : ::tpgnn::internal_logging::Voidify() &                   \
                    ::tpgnn::internal_logging::FatalLogMessage(          \
                        __FILE__, __LINE__, #condition)                  \
                        .stream()

#define TPGNN_CHECK_OP(op, a, b)                                         \
  TPGNN_CHECK((a)op(b)) << " (" << (a) << " vs " << (b) << ") "

#define TPGNN_CHECK_EQ(a, b) TPGNN_CHECK_OP(==, a, b)
#define TPGNN_CHECK_NE(a, b) TPGNN_CHECK_OP(!=, a, b)
#define TPGNN_CHECK_LT(a, b) TPGNN_CHECK_OP(<, a, b)
#define TPGNN_CHECK_LE(a, b) TPGNN_CHECK_OP(<=, a, b)
#define TPGNN_CHECK_GT(a, b) TPGNN_CHECK_OP(>, a, b)
#define TPGNN_CHECK_GE(a, b) TPGNN_CHECK_OP(>=, a, b)

#endif  // TPGNN_UTIL_LOGGING_H_
