#include "util/buffer_pool.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <utility>

#include "util/env.h"
#include "util/failpoint.h"

namespace tpgnn::util {

namespace {

// Buckets are powers of two from 2^0 to 2^kNumBuckets-1 floats; buffers
// larger than the top bucket are never cached (nothing in this codebase
// allocates them repeatedly).
constexpr size_t kNumBuckets = 24;  // Top bucket: 8M floats (32 MB).
// Per-thread cap on parked bytes; beyond it, releases free instead of cache.
constexpr size_t kMaxCachedBytesPerThread = 64u << 20;

struct Counters {
  std::atomic<uint64_t> acquires{0};
  std::atomic<uint64_t> pool_hits{0};
  std::atomic<uint64_t> pool_misses{0};
  std::atomic<uint64_t> releases{0};
  std::atomic<uint64_t> node_acquires{0};
  std::atomic<uint64_t> node_reuses{0};
  // Signed: buffers built outside the facade (Tensor::FromVector) are
  // released through it, so the balance can dip below zero; snapshots clamp.
  std::atomic<int64_t> bytes_live{0};
  std::atomic<int64_t> bytes_peak{0};
  std::atomic<uint64_t> bytes_cached{0};
};

Counters& counters() {
  static Counters c;
  return c;
}

void UpdatePeak(int64_t live) {
  int64_t peak = counters().bytes_peak.load(std::memory_order_relaxed);
  while (live > peak && !counters().bytes_peak.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{GetEnvInt("TPGNN_TENSOR_POOL", 1) != 0};
  return enabled;
}

size_t BucketForRequest(size_t n) {  // ceil(log2(n)), n >= 1.
  size_t b = 0;
  while ((size_t{1} << b) < n) ++b;
  return b;
}

size_t BucketForCapacity(size_t cap) {  // floor(log2(cap)), cap >= 1.
  size_t b = 0;
  while ((size_t{2} << b) <= cap) ++b;
  return b;
}

struct ThreadCache {
  std::array<std::vector<std::vector<float>>, kNumBuckets> buckets;
  size_t cached_bytes = 0;

  ~ThreadCache() {
    counters().bytes_cached.fetch_sub(cached_bytes,
                                      std::memory_order_relaxed);
  }
};

// Trivially-destructible flag outlives the cache, so releases that happen
// after thread_local teardown (static destructors on the main thread) fall
// through to plain deallocation instead of touching a dead cache.
thread_local bool tls_cache_destroyed = false;

struct ThreadCacheHolder {
  ThreadCache cache;
  ~ThreadCacheHolder() { tls_cache_destroyed = true; }
};

ThreadCache* Cache() {
  if (tls_cache_destroyed) return nullptr;
  thread_local ThreadCacheHolder holder;
  return &holder.cache;
}

}  // namespace

bool BufferPoolEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetBufferPoolEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

BufferPoolStats GetBufferPoolStats() {
  const Counters& c = counters();
  BufferPoolStats s;
  s.acquires = c.acquires.load(std::memory_order_relaxed);
  s.pool_hits = c.pool_hits.load(std::memory_order_relaxed);
  s.pool_misses = c.pool_misses.load(std::memory_order_relaxed);
  s.releases = c.releases.load(std::memory_order_relaxed);
  s.node_acquires = c.node_acquires.load(std::memory_order_relaxed);
  s.node_reuses = c.node_reuses.load(std::memory_order_relaxed);
  const int64_t live = c.bytes_live.load(std::memory_order_relaxed);
  const int64_t peak = c.bytes_peak.load(std::memory_order_relaxed);
  s.bytes_live = live > 0 ? static_cast<uint64_t>(live) : 0;
  s.bytes_peak = peak > 0 ? static_cast<uint64_t>(peak) : 0;
  s.bytes_cached = c.bytes_cached.load(std::memory_order_relaxed);
  return s;
}

std::vector<float> AcquireBuffer(size_t n) {
  Counters& c = counters();
  c.acquires.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) {
    return {};
  }
  std::vector<float> buffer;
  const size_t bucket = BucketForRequest(n);
  // Injected allocation pressure: the pooled path "fails" and the acquire
  // falls back to a plain, exact-size allocation — the caller-visible
  // contract (a zero-filled vector of size n) is unaffected.
  failpoint::Hit hit;
  const bool injected_alloc_fail =
      TPGNN_FAILPOINT("pool.acquire", &hit) &&
      hit.kind == failpoint::Kind::kAllocFail;
  ThreadCache* cache =
      (!injected_alloc_fail && BufferPoolEnabled() && bucket < kNumBuckets)
          ? Cache()
          : nullptr;
  if (cache != nullptr && !cache->buckets[bucket].empty()) {
    buffer = std::move(cache->buckets[bucket].back());
    cache->buckets[bucket].pop_back();
    cache->cached_bytes -= buffer.capacity() * sizeof(float);
    c.bytes_cached.fetch_sub(buffer.capacity() * sizeof(float),
                             std::memory_order_relaxed);
    c.pool_hits.fetch_add(1, std::memory_order_relaxed);
    // Capacity >= 2^bucket >= n by the bucket invariant: no reallocation.
    buffer.assign(n, 0.0f);
  } else {
    c.pool_misses.fetch_add(1, std::memory_order_relaxed);
    if (!injected_alloc_fail && bucket < kNumBuckets) {
      buffer.reserve(size_t{1} << bucket);  // Full bucket size for reuse.
    }
    buffer.assign(n, 0.0f);
  }
  const int64_t bytes =
      static_cast<int64_t>(buffer.capacity() * sizeof(float));
  const int64_t live =
      c.bytes_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  UpdatePeak(live);
  return buffer;
}

void ReleaseBuffer(std::vector<float>&& buffer) {
  if (buffer.capacity() == 0) {
    return;
  }
  Counters& c = counters();
  const size_t bytes = buffer.capacity() * sizeof(float);
  c.releases.fetch_add(1, std::memory_order_relaxed);
  c.bytes_live.fetch_sub(static_cast<int64_t>(bytes),
                         std::memory_order_relaxed);
  if (!BufferPoolEnabled()) {
    return;  // Vector destructs: plain deallocation, as before the pool.
  }
  const size_t bucket = BucketForCapacity(buffer.capacity());
  if (bucket >= kNumBuckets) {
    return;
  }
  ThreadCache* cache = Cache();
  if (cache == nullptr ||
      cache->cached_bytes + bytes > kMaxCachedBytesPerThread) {
    return;
  }
  cache->cached_bytes += bytes;
  c.bytes_cached.fetch_add(bytes, std::memory_order_relaxed);
  cache->buckets[bucket].push_back(std::move(buffer));
}

void RecordNodeAcquire(bool reused) {
  counters().node_acquires.fetch_add(1, std::memory_order_relaxed);
  if (reused) {
    counters().node_reuses.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace tpgnn::util
