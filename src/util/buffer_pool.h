#ifndef TPGNN_UTIL_BUFFER_POOL_H_
#define TPGNN_UTIL_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

// Size-bucketed, thread-local pooled allocator for float buffers.
//
// The per-edge temporal propagation issues hundreds of thousands of ops over
// tiny [1, d] tensors per training epoch; every one of them used to
// round-trip a std::vector<float> through operator new. AcquireBuffer /
// ReleaseBuffer recycle those vectors instead: a released vector keeps its
// heap allocation and is parked on the releasing thread's free list, bucketed
// by the floor power of two of its capacity; an acquire pops from the bucket
// of the ceiling power of two of the request, so any recycled vector always
// has enough capacity to satisfy the request without reallocating.
//
// Contracts:
//  * AcquireBuffer(n) returns a vector of size n with every element zero,
//    whether it was freshly allocated or recycled (pool reuse is invisible).
//  * Pools are strictly thread-local; no locks on the hot path. Buffers may
//    migrate between threads (released where they die), which is safe and
//    only affects which cache warms up.
//  * The process-wide stats facade (BufferPoolStats) uses relaxed atomics;
//    individual counters are monotone, cross-counter snapshots are not
//    guaranteed to be mutually consistent mid-flight.
//  * TPGNN_TENSOR_POOL=0 (or SetBufferPoolEnabled(false)) disables recycling:
//    acquires allocate, releases free, restoring pre-pool behaviour exactly.
//  * After a thread's pool is torn down (thread exit), releases fall through
//    to plain deallocation, so statics destroyed late stay safe.

namespace tpgnn::util {

struct BufferPoolStats {
  // Monotone counters.
  uint64_t acquires = 0;      // AcquireBuffer calls served (hit or miss).
  uint64_t pool_hits = 0;     // Served by recycling a cached buffer.
  uint64_t pool_misses = 0;   // Served by a fresh heap allocation.
  uint64_t releases = 0;      // Buffers handed back (cached or freed).
  uint64_t node_acquires = 0; // Autograd tape nodes requested (see tensor/).
  uint64_t node_reuses = 0;   // Tape nodes served from the recycle list.
  // Gauges.
  uint64_t bytes_live = 0;    // Bytes in buffers currently acquired.
  uint64_t bytes_peak = 0;    // High-water mark of bytes_live.
  uint64_t bytes_cached = 0;  // Bytes parked on free lists (all threads).
};

// True unless TPGNN_TENSOR_POOL=0 (read once) or overridden by
// SetBufferPoolEnabled. Also gates autograd tape recycling (tensor/).
bool BufferPoolEnabled();

// Test/bench override of the TPGNN_TENSOR_POOL gate. Affects subsequent
// acquires/releases process-wide; already-cached buffers stay valid.
void SetBufferPoolEnabled(bool enabled);

// Snapshot of the process-wide counters.
BufferPoolStats GetBufferPoolStats();

// A zero-filled vector of size n (capacity rounded up to the bucket size).
std::vector<float> AcquireBuffer(std::size_t n);

// Returns a buffer to the releasing thread's pool (or frees it when the pool
// is disabled, the thread pool is torn down, or the cache is full).
void ReleaseBuffer(std::vector<float>&& buffer);

// Internal: counters bumped by the autograd-node recycler in tensor/.
void RecordNodeAcquire(bool reused);

}  // namespace tpgnn::util

#endif  // TPGNN_UTIL_BUFFER_POOL_H_
