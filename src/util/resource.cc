#include "util/resource.h"

#include <cstdio>
#include <cstring>

namespace tpgnn::util {

namespace {

// Reads one "Vm...: <n> kB" line out of /proc/self/status. Returns 0 when
// the file or the field is missing (non-Linux, restricted /proc).
uint64_t ReadStatusKb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  const size_t field_len = std::strlen(field);
  char line[256];
  uint64_t value = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      unsigned long long kb = 0;
      if (std::sscanf(line + field_len + 1, "%llu", &kb) == 1) {
        value = static_cast<uint64_t>(kb);
      }
      break;
    }
  }
  std::fclose(f);
  return value;
}

}  // namespace

uint64_t CurrentRssKb() { return ReadStatusKb("VmRSS"); }

uint64_t PeakRssKb() { return ReadStatusKb("VmHWM"); }

}  // namespace tpgnn::util
