#ifndef TPGNN_UTIL_NET_H_
#define TPGNN_UTIL_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

// Thin POSIX TCP + poll helpers shared by the net/ server and client. All
// failures come back as Status (never exceptions): kDeadlineExceeded when a
// timeout elapses, kDataLoss when the peer breaks the connection mid-stream
// (EPIPE / ECONNRESET / EOF where bytes were expected), kInternal for other
// socket errors. Sockets are IPv4; sends use MSG_NOSIGNAL so a dead peer is
// an error code, not a SIGPIPE.

namespace tpgnn {

// RAII file descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Creates a non-blocking IPv4 listen socket bound to host:port (port 0
// picks an ephemeral port) with SO_REUSEADDR. On success fills `*fd` and
// `*bound_port` (the actual port, useful with port 0).
Status ListenTcp(const std::string& host, int port, int backlog, UniqueFd* fd,
                 int* bound_port);

// Accepts one pending connection from a non-blocking listen socket. Returns
// kOk with an invalid `*fd` when no connection is pending (EAGAIN). The
// accepted socket is non-blocking with TCP_NODELAY set.
Status AcceptTcp(int listen_fd, UniqueFd* fd);

// Connects to host:port within `timeout_ms`, returning a blocking socket
// with TCP_NODELAY set. kDeadlineExceeded when the deadline elapses first.
Status ConnectTcp(const std::string& host, int port, int timeout_ms,
                  UniqueFd* fd);

Status SetNonBlocking(int fd, bool non_blocking);

// Waits until `fd` is readable / writable. kDeadlineExceeded on timeout.
Status WaitReadable(int fd, int timeout_ms);
Status WaitWritable(int fd, int timeout_ms);

// Non-blocking read: appends up to `cap` available bytes. kOk with
// *received == 0 and *eof == false means EAGAIN (no data yet); *eof == true
// means the peer closed its write side.
Status RecvNonBlocking(int fd, uint8_t* buf, size_t cap, size_t* received,
                       bool* eof);

// Non-blocking write of up to `size` bytes; *sent == 0 means EAGAIN.
// A broken peer is kDataLoss.
Status SendNonBlocking(int fd, const uint8_t* data, size_t size, size_t* sent);

// Blocking helpers with an overall deadline (for the client): send the
// whole buffer / receive at least one byte. RecvSome reports *received == 0
// only on orderly EOF, which it maps to kDataLoss (the wire protocol never
// ends a conversation without a Goodbye frame).
Status SendAll(int fd, const uint8_t* data, size_t size, int timeout_ms);
Status RecvSome(int fd, uint8_t* buf, size_t cap, int timeout_ms,
                size_t* received);

}  // namespace tpgnn

#endif  // TPGNN_UTIL_NET_H_
