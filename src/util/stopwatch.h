#ifndef TPGNN_UTIL_STOPWATCH_H_
#define TPGNN_UTIL_STOPWATCH_H_

#include <chrono>

namespace tpgnn {

// Monotonic wall-clock stopwatch for coarse experiment timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tpgnn

#endif  // TPGNN_UTIL_STOPWATCH_H_
