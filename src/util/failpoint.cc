#include "util/failpoint.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/env.h"

namespace tpgnn::failpoint {

namespace {

// Stateless splitmix64 round: the decision hash.
uint64_t Mix(uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t HashName(const std::string& name) {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a over the site name.
  for (char c : name) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001B3ull;
  }
  return h;
}

struct Active {
  FailpointSpec spec;
  uint64_t site_seed = 0;
  uint64_t evaluations = 0;
  uint64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Active> active;
  // Fire counts survive Remove/ClearAll so a test can read them after its
  // ScopedFailpoint went out of scope.
  std::unordered_map<std::string, uint64_t> fire_counts;
  uint64_t seed = 1;
};

Registry& registry() {
  static Registry* r = new Registry();  // Leaked: sites may run at exit.
  return *r;
}

uint64_t SiteSeed(uint64_t global_seed, const std::string& name) {
  return Mix(global_seed ^ HashName(name));
}

void PublishCount(size_t count) {
  internal::g_active_count.store(static_cast<int>(count),
                                 std::memory_order_release);
}

// One-time env activation: TPGNN_FAILPOINTS + TPGNN_FAILPOINT_SEED. Runs
// lazily on the first armed-site evaluation *and* eagerly at static-init of
// any binary that links this file, whichever comes first.
void InstallFromEnvOnce() {
  static const bool installed = [] {
    const uint64_t seed =
        static_cast<uint64_t>(GetEnvInt("TPGNN_FAILPOINT_SEED", 1));
    {
      std::lock_guard<std::mutex> lock(registry().mu);
      registry().seed = seed;
    }
    const std::string spec = GetEnvString("TPGNN_FAILPOINTS", "");
    if (!spec.empty()) {
      Status s = InstallFromSpecString(spec);
      if (!s.ok()) {
        std::fprintf(stderr, "TPGNN_FAILPOINTS ignored: %s\n",
                     s.ToString().c_str());
      }
    }
    return true;
  }();
  (void)installed;
}

[[maybe_unused]] const bool g_env_installed_at_init = [] {
  InstallFromEnvOnce();
  return true;
}();

}  // namespace

namespace internal {

std::atomic<int> g_active_count{0};

bool Evaluate(const char* name, Hit* hit) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.active.find(name);
  if (it == r.active.end()) {
    return false;
  }
  Active& a = it->second;
  const uint64_t index = a.evaluations++;
  if (a.spec.max_fires > 0 && a.fires >= a.spec.max_fires) {
    return false;
  }
  if (a.spec.probability < 1.0) {
    // Deterministic per-evaluation draw in [0, 1); p <= 0 never fires.
    const double draw =
        static_cast<double>(Mix(a.site_seed ^ Mix(index)) >> 11) * 0x1.0p-53;
    if (draw >= a.spec.probability) {
      return false;
    }
  }
  hit->kind = a.spec.kind;
  hit->arg = a.spec.arg;
  hit->fire_index = a.fires++;
  hit->site_seed = a.site_seed;
  ++r.fire_counts[name];
  return true;
}

}  // namespace internal

bool ParseKind(const std::string& text, Kind* kind) {
  if (text == "return_error") {
    *kind = Kind::kReturnError;
  } else if (text == "short_io") {
    *kind = Kind::kShortIo;
  } else if (text == "delay") {
    *kind = Kind::kDelay;
  } else if (text == "alloc_fail") {
    *kind = Kind::kAllocFail;
  } else if (text == "corrupt_byte") {
    *kind = Kind::kCorruptByte;
  } else {
    return false;
  }
  return true;
}

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kReturnError:
      return "return_error";
    case Kind::kShortIo:
      return "short_io";
    case Kind::kDelay:
      return "delay";
    case Kind::kAllocFail:
      return "alloc_fail";
    case Kind::kCorruptByte:
      return "corrupt_byte";
  }
  return "unknown";
}

Status InjectedError(StatusCode code, const char* site) {
  return Status(code, std::string("injected fault at ") + site);
}

void ApplyDelay(const Hit& hit) {
  if (hit.kind != Kind::kDelay) {
    return;
  }
  const uint64_t micros = hit.arg > 0 ? hit.arg : 200;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

size_t ShortIoBudget(const Hit& hit, size_t size, size_t min_bytes) {
  size_t budget = hit.arg < size ? static_cast<size_t>(hit.arg) : size;
  if (budget < min_bytes) {
    budget = min_bytes < size ? min_bytes : size;
  }
  return budget;
}

void CorruptByte(const Hit& hit, uint8_t* data, size_t size) {
  if (size == 0) {
    return;
  }
  const uint64_t h = Mix(hit.site_seed ^ Mix(hit.fire_index + 1));
  data[h % size] ^= static_cast<uint8_t>(1u << ((h >> 32) % 8));
}

void CorruptFrameHeader(const Hit& hit, uint8_t* frame, size_t size) {
  if (size < 12) {
    return;
  }
  // Magic (0..3), version (4), reserved (6..7): corruption here is always
  // detected by the frame decoder. Byte 5 (type) and 8..11 (length) are
  // excluded — a flipped type can name another valid frame, and a flipped
  // length can stall as need-more instead of failing typed.
  static constexpr uint8_t kOffsets[] = {0, 1, 2, 3, 4, 6, 7};
  const uint64_t h = Mix(hit.site_seed ^ Mix(hit.fire_index + 1));
  frame[kOffsets[h % sizeof(kOffsets)]] ^=
      static_cast<uint8_t>(1u << ((h >> 32) % 8));
}

void Install(const FailpointSpec& spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Active& a = r.active[spec.name];
  a.spec = spec;
  a.site_seed = SiteSeed(r.seed, spec.name);
  a.evaluations = 0;
  a.fires = 0;
  PublishCount(r.active.size());
}

bool Remove(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const bool removed = r.active.erase(name) > 0;
  PublishCount(r.active.size());
  return removed;
}

void ClearAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.active.clear();
  PublishCount(0);
}

Status InstallFromSpecString(const std::string& spec) {
  std::vector<FailpointSpec> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding whitespace.
    const size_t first = entry.find_first_not_of(" \t");
    if (first == std::string::npos) {
      continue;
    }
    entry = entry.substr(first, entry.find_last_not_of(" \t") - first + 1);

    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint entry needs name=prob:kind: '" +
                                     entry + "'");
    }
    FailpointSpec fp;
    fp.name = entry.substr(0, eq);
    std::vector<std::string> fields;
    for (size_t p = eq + 1; p <= entry.size();) {
      size_t colon = entry.find(':', p);
      if (colon == std::string::npos) {
        colon = entry.size();
      }
      fields.push_back(entry.substr(p, colon - p));
      p = colon + 1;
    }
    if (fields.size() < 2 || fields.size() > 4) {
      return Status::InvalidArgument(
          "failpoint entry needs prob:kind[:arg[:max]]: '" + entry + "'");
    }
    try {
      fp.probability = std::stod(fields[0]);
      if (fields.size() > 2) {
        fp.arg = std::stoull(fields[2]);
      }
      if (fields.size() > 3) {
        fp.max_fires = std::stoull(fields[3]);
      }
    } catch (...) {
      return Status::InvalidArgument("unparsable failpoint number in: '" +
                                     entry + "'");
    }
    if (fp.probability < 0.0 || fp.probability > 1.0) {
      return Status::InvalidArgument("failpoint probability outside [0,1]: '" +
                                     entry + "'");
    }
    if (!ParseKind(fields[1], &fp.kind)) {
      return Status::InvalidArgument("unknown failpoint kind '" + fields[1] +
                                     "' in: '" + entry + "'");
    }
    parsed.push_back(std::move(fp));
  }
  for (const FailpointSpec& fp : parsed) {
    Install(fp);
  }
  return Status::Ok();
}

void SetSeed(uint64_t seed) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.seed = seed;
  r.fire_counts.clear();
  for (auto& [name, a] : r.active) {
    a.site_seed = SiteSeed(seed, name);
    a.evaluations = 0;
    a.fires = 0;
  }
}

uint64_t FireCount(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.fire_counts.find(name);
  return it == r.fire_counts.end() ? 0 : it->second;
}

uint64_t TotalFires() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  uint64_t total = 0;
  for (const auto& [name, count] : r.fire_counts) {
    total += count;
  }
  return total;
}

void ResetCounters() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.fire_counts.clear();
  for (auto& [name, a] : r.active) {
    a.evaluations = 0;
    a.fires = 0;
  }
}

size_t ActiveCount() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.active.size();
}

ScopedFailpoint::ScopedFailpoint(const std::string& name, double probability,
                                 Kind kind, uint64_t arg, uint64_t max_fires)
    : name_(name) {
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.active.find(name);
    if (it != r.active.end()) {
      had_previous_ = true;
      previous_ = it->second.spec;
    }
    auto count_it = r.fire_counts.find(name);
    base_fires_ = count_it == r.fire_counts.end() ? 0 : count_it->second;
  }
  Install({name, probability, kind, arg, max_fires});
}

ScopedFailpoint::~ScopedFailpoint() {
  if (had_previous_) {
    Install(previous_);
  } else {
    Remove(name_);
  }
}

}  // namespace tpgnn::failpoint
