#ifndef TPGNN_UTIL_ENV_H_
#define TPGNN_UTIL_ENV_H_

#include <cstdint>
#include <string>

// Environment-variable helpers used by the benchmark harness so that
// experiment scale (graph counts, epochs, seeds) can be tuned without
// recompiling.

namespace tpgnn {

// Returns the integer value of the environment variable `name`, or
// `default_value` if it is unset or unparsable.
int64_t GetEnvInt(const std::string& name, int64_t default_value);

// Returns the value of the environment variable `name`, or `default_value`.
std::string GetEnvString(const std::string& name,
                         const std::string& default_value);

}  // namespace tpgnn

#endif  // TPGNN_UTIL_ENV_H_
