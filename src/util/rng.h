#ifndef TPGNN_UTIL_RNG_H_
#define TPGNN_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

// Deterministic, seedable random number generation.
//
// Every stochastic component in the library (initializers, dataset
// generators, edge-order shuffling, dropout) draws from an explicitly seeded
// Rng so that experiments are exactly reproducible. The engine is
// xoshiro256** seeded via SplitMix64.

namespace tpgnn {

// Stateless 64-bit mixer; used to expand a single seed into engine state and
// to derive independent per-component seeds.
uint64_t SplitMix64(uint64_t& state);

class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  // UniformRandomBitGenerator interface (usable with <algorithm>/<random>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }
  result_type operator()() { return Next(); }

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (one cached value).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // True with probability p.
  bool Bernoulli(double p);

  // Derives an independent child generator (e.g. one per dataset graph).
  Rng Fork();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tpgnn

#endif  // TPGNN_UTIL_RNG_H_
