#include "util/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace tpgnn {

namespace {

Status ErrnoStatus(const std::string& op, int err) {
  return Status::Internal(op + ": " + std::string(strerror(err)));
}

bool IsBrokenConnection(int err) {
  return err == EPIPE || err == ECONNRESET || err == ENOTCONN ||
         err == ECONNABORTED;
}

Status ParseAddress(const std::string& host, int port, sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Remaining whole milliseconds of a deadline; at least 0.
int RemainingMs(const Stopwatch& watch, int timeout_ms) {
  const double left =
      static_cast<double>(timeout_ms) - watch.ElapsedSeconds() * 1e3;
  return left > 0.0 ? static_cast<int>(left) : 0;
}

Status WaitFor(int fd, short events, int timeout_ms, const char* what) {
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("net.poll", &hit)) {
    // return_error surfaces as the timeout outcome every caller handles;
    // delay models a stalled poll that still succeeds.
    if (hit.kind == failpoint::Kind::kReturnError) {
      return failpoint::InjectedError(StatusCode::kDeadlineExceeded,
                                      "net.poll");
    }
    failpoint::ApplyDelay(hit);
  }
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int rc = poll(&pfd, 1, timeout_ms);
    if (rc > 0) {
      return Status::Ok();
    }
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(what) + " timed out after " +
                                      std::to_string(timeout_ms) + " ms");
    }
    if (errno != EINTR) {
      return ErrnoStatus("poll", errno);
    }
  }
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = fd;
}

Status ListenTcp(const std::string& host, int port, int backlog, UniqueFd* fd,
                 int* bound_port) {
  sockaddr_in addr;
  if (Status s = ParseAddress(host, port, &addr); !s.ok()) {
    return s;
  }
  UniqueFd sock(socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return ErrnoStatus("socket", errno);
  }
  int one = 1;
  setsockopt(sock.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(sock.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port), errno);
  }
  if (listen(sock.get(), backlog) != 0) {
    return ErrnoStatus("listen", errno);
  }
  if (Status s = SetNonBlocking(sock.get(), true); !s.ok()) {
    return s;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(sock.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return ErrnoStatus("getsockname", errno);
  }
  *bound_port = ntohs(bound.sin_port);
  *fd = std::move(sock);
  return Status::Ok();
}

Status AcceptTcp(int listen_fd, UniqueFd* fd) {
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("net.accept", &hit)) {
    if (hit.kind == failpoint::Kind::kReturnError) {
      return failpoint::InjectedError(StatusCode::kInternal, "net.accept");
    }
    failpoint::ApplyDelay(hit);
  }
  for (;;) {
    const int conn = accept(listen_fd, nullptr, nullptr);
    if (conn >= 0) {
      UniqueFd sock(conn);
      if (Status s = SetNonBlocking(conn, true); !s.ok()) {
        return s;
      }
      SetNoDelay(conn);
      *fd = std::move(sock);
      return Status::Ok();
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      fd->reset();
      return Status::Ok();
    }
    if (errno == EINTR) {
      continue;
    }
    // A connection that died in the backlog is not a server error.
    if (errno == ECONNABORTED) {
      continue;
    }
    return ErrnoStatus("accept", errno);
  }
}

Status ConnectTcp(const std::string& host, int port, int timeout_ms,
                  UniqueFd* fd) {
  sockaddr_in addr;
  if (Status s = ParseAddress(host, port, &addr); !s.ok()) {
    return s;
  }
  UniqueFd sock(socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return ErrnoStatus("socket", errno);
  }
  // Connect non-blocking so the deadline is enforceable, then flip the
  // socket back to blocking for the client's deadline-driven poll I/O.
  if (Status s = SetNonBlocking(sock.get(), true); !s.ok()) {
    return s;
  }
  if (connect(sock.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      return ErrnoStatus("connect " + host + ":" + std::to_string(port),
                         errno);
    }
    if (Status s = WaitFor(sock.get(), POLLOUT, timeout_ms, "connect");
        !s.ok()) {
      return s;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(sock.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return ErrnoStatus("getsockopt", errno);
    }
    if (err != 0) {
      return ErrnoStatus("connect " + host + ":" + std::to_string(port), err);
    }
  }
  if (Status s = SetNonBlocking(sock.get(), false); !s.ok()) {
    return s;
  }
  SetNoDelay(sock.get());
  *fd = std::move(sock);
  return Status::Ok();
}

Status SetNonBlocking(int fd, bool non_blocking) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return ErrnoStatus("fcntl(F_GETFL)", errno);
  }
  const int want = non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, want) != 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::Ok();
}

Status WaitReadable(int fd, int timeout_ms) {
  return WaitFor(fd, POLLIN, timeout_ms, "read");
}

Status WaitWritable(int fd, int timeout_ms) {
  return WaitFor(fd, POLLOUT, timeout_ms, "write");
}

Status RecvNonBlocking(int fd, uint8_t* buf, size_t cap, size_t* received,
                       bool* eof) {
  *received = 0;
  *eof = false;
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("net.recv", &hit)) {
    switch (hit.kind) {
      case failpoint::Kind::kReturnError:  // Simulated ECONNRESET.
        return failpoint::InjectedError(StatusCode::kDataLoss, "net.recv");
      case failpoint::Kind::kShortIo:
        // Budget 0 simulates EAGAIN: the caller defers to the next poll
        // iteration with a partial buffer (mid-frame truncation).
        cap = failpoint::ShortIoBudget(hit, cap);
        if (cap == 0) {
          return Status::Ok();
        }
        break;
      default:
        failpoint::ApplyDelay(hit);
        break;
    }
  }
  for (;;) {
    const ssize_t n = recv(fd, buf, cap, 0);
    if (n > 0) {
      *received = static_cast<size_t>(n);
      return Status::Ok();
    }
    if (n == 0) {
      *eof = true;
      return Status::Ok();
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Ok();
    }
    if (errno == EINTR) {
      continue;
    }
    if (IsBrokenConnection(errno)) {
      return Status::DataLoss("connection broken during recv: " +
                              std::string(strerror(errno)));
    }
    return ErrnoStatus("recv", errno);
  }
}

Status SendNonBlocking(int fd, const uint8_t* data, size_t size,
                       size_t* sent) {
  *sent = 0;
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("net.send", &hit)) {
    switch (hit.kind) {
      case failpoint::Kind::kReturnError:  // Simulated EPIPE/ECONNRESET.
        return failpoint::InjectedError(StatusCode::kDataLoss, "net.send");
      case failpoint::Kind::kShortIo:
        // Budget 0 simulates a full kernel buffer; POLLOUT retries.
        size = failpoint::ShortIoBudget(hit, size);
        if (size == 0) {
          return Status::Ok();
        }
        break;
      default:
        failpoint::ApplyDelay(hit);
        break;
    }
  }
  for (;;) {
    const ssize_t n = send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0) {
      *sent = static_cast<size_t>(n);
      return Status::Ok();
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Ok();
    }
    if (errno == EINTR) {
      continue;
    }
    if (IsBrokenConnection(errno)) {
      return Status::DataLoss("connection broken during send: " +
                              std::string(strerror(errno)));
    }
    return ErrnoStatus("send", errno);
  }
}

Status SendAll(int fd, const uint8_t* data, size_t size, int timeout_ms) {
  Stopwatch watch;
  size_t done = 0;
  while (done < size) {
    size_t chunk = size - done;
    failpoint::Hit hit;
    if (TPGNN_FAILPOINT("net.send_all", &hit)) {
      switch (hit.kind) {
        case failpoint::Kind::kReturnError:
          return failpoint::InjectedError(StatusCode::kDataLoss,
                                          "net.send_all");
        case failpoint::Kind::kShortIo:
          // Blocking path: always at least one byte, so progress holds.
          chunk = failpoint::ShortIoBudget(hit, chunk, /*min_bytes=*/1);
          break;
        default:
          failpoint::ApplyDelay(hit);
          break;
      }
    }
    const ssize_t n = send(fd, data + done, chunk, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (Status s =
              WaitWritable(fd, RemainingMs(watch, timeout_ms));
          !s.ok()) {
        return s;
      }
      continue;
    }
    if (n < 0 && IsBrokenConnection(errno)) {
      return Status::DataLoss("connection broken during send: " +
                              std::string(strerror(errno)));
    }
    return ErrnoStatus("send", errno);
  }
  return Status::Ok();
}

Status RecvSome(int fd, uint8_t* buf, size_t cap, int timeout_ms,
                size_t* received) {
  Stopwatch watch;
  *received = 0;
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("net.recv_some", &hit)) {
    switch (hit.kind) {
      case failpoint::Kind::kReturnError:
        return failpoint::InjectedError(StatusCode::kDataLoss,
                                        "net.recv_some");
      case failpoint::Kind::kShortIo:
        // Blocking path: deliver at least one byte when data arrives.
        cap = failpoint::ShortIoBudget(hit, cap, /*min_bytes=*/1);
        break;
      default:
        failpoint::ApplyDelay(hit);
        break;
    }
  }
  for (;;) {
    const ssize_t n = recv(fd, buf, cap, MSG_DONTWAIT);
    if (n > 0) {
      *received = static_cast<size_t>(n);
      return Status::Ok();
    }
    if (n == 0) {
      return Status::DataLoss("connection closed by peer");
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (Status s = WaitReadable(fd, RemainingMs(watch, timeout_ms));
          !s.ok()) {
        return s;
      }
      continue;
    }
    if (IsBrokenConnection(errno)) {
      return Status::DataLoss("connection broken during recv: " +
                              std::string(strerror(errno)));
    }
    return ErrnoStatus("recv", errno);
  }
}

}  // namespace tpgnn
