#include "cluster/router.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "util/failpoint.h"
#include "util/logging.h"

namespace tpgnn::cluster {

namespace {

// Compact a buffer whose consumed prefix has grown past this many bytes.
constexpr size_t kCompactThreshold = 1u << 20;

bool IsAckOk(const net::Frame& frame) {
  return frame.type == net::FrameType::kIngestAck &&
         frame.status_code == StatusCode::kOk;
}

}  // namespace

Router::Router(const std::vector<BackendConfig>& backends,
               const RouterOptions& options)
    : options_(options),
      registry_(options.registry),
      ring_(options.vnodes_per_backend) {
  for (const BackendConfig& backend : backends) {
    registry_.Add(backend);
  }
}

Router::~Router() = default;

Status Router::Start() {
  if (Status s = ListenTcp(options_.bind_address, options_.port,
                           options_.backlog, &listen_fd_, &port_);
      !s.ok()) {
    return s;
  }
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return Status::Internal("pipe failed for shutdown wakeup");
  }
  wake_read_.reset(pipe_fds[0]);
  wake_write_.reset(pipe_fds[1]);
  SetNonBlocking(wake_read_.get(), true);
  SetNonBlocking(wake_write_.get(), true);
  return Status::Ok();
}

void Router::Run() {
  while (PollOnce(options_.poll_timeout_ms)) {
  }
}

void Router::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_write_.valid()) {
    const uint8_t byte = 1;
    [[maybe_unused]] ssize_t rc = write(wake_write_.get(), &byte, 1);
  }
}

bool Router::PollOnce(int timeout_ms) {
  if (stopped_) {
    return false;
  }
  if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
    BeginShutdown();
  }
  if (!draining_) {
    MaintainBackends(NowSeconds());
  }

  // Poll set: listen socket, wake pipe, every client, every backend.
  enum class EntryKind { kListen, kWake, kClient, kBackend };
  struct Entry {
    EntryKind kind;
    uint64_t client_id = 0;
    std::string backend_name;
  };
  std::vector<pollfd> fds;
  std::vector<Entry> entries;
  if (listen_fd_.valid() && !draining_ &&
      clients_.size() < static_cast<size_t>(options_.max_connections)) {
    fds.push_back({listen_fd_.get(), POLLIN, 0});
    entries.push_back({EntryKind::kListen, 0, {}});
  }
  if (wake_read_.valid()) {
    fds.push_back({wake_read_.get(), POLLIN, 0});
    entries.push_back({EntryKind::kWake, 0, {}});
  }
  for (const auto& [id, conn] : clients_) {
    short events = 0;
    if (!draining_ && !conn->draining) {
      events |= POLLIN;
    }
    if (conn->out_sent < conn->out.size()) {
      events |= POLLOUT;
    }
    if (events != 0) {
      fds.push_back({conn->fd.get(), events, 0});
      entries.push_back({EntryKind::kClient, id, {}});
    }
  }
  for (const auto& [name, conn] : backends_) {
    if (conn->dead) {
      continue;
    }
    short events = POLLIN;
    if (conn->out_sent < conn->out.size()) {
      events |= POLLOUT;
    }
    fds.push_back({conn->fd.get(), events, 0});
    entries.push_back({EntryKind::kBackend, 0, name});
  }

  poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

  for (size_t i = 0; i < fds.size(); ++i) {
    const short revents = fds[i].revents;
    if (revents == 0) {
      continue;
    }
    switch (entries[i].kind) {
      case EntryKind::kWake: {
        uint8_t sink[64];
        while (read(wake_read_.get(), sink, sizeof(sink)) > 0) {
        }
        break;
      }
      case EntryKind::kListen:
        AcceptPending();
        break;
      case EntryKind::kClient: {
        auto it = clients_.find(entries[i].client_id);
        if (it == clients_.end()) {
          break;
        }
        ClientConn& conn = *it->second;
        if ((revents & POLLOUT) != 0 && !conn.dead) {
          HandleClientWritable(conn);
        }
        if ((revents & POLLIN) != 0 && !conn.dead && !conn.draining) {
          HandleClientReadable(conn);
        }
        if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 && !conn.dead &&
            conn.out_sent >= conn.out.size()) {
          conn.dead = true;
        }
        break;
      }
      case EntryKind::kBackend: {
        auto it = backends_.find(entries[i].backend_name);
        if (it == backends_.end() || it->second->dead) {
          break;
        }
        BackendConn& conn = *it->second;
        if ((revents & POLLOUT) != 0) {
          HandleBackendWritable(conn);
        }
        if ((revents & POLLIN) != 0 && !conn.dead) {
          HandleBackendReadable(conn);
        }
        if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
          conn.dead = true;
        }
        break;
      }
    }
  }

  if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
    BeginShutdown();
  }

  // Connections found broken during dispatch fail over now, after the
  // whole poll round's frames were consumed.
  FailDeadBackends();

  // Opportunistic write flushes.
  for (auto& [name, conn] : backends_) {
    if (!conn->dead && conn->out_sent < conn->out.size()) {
      HandleBackendWritable(*conn);
    }
  }
  FailDeadBackends();
  for (auto& [id, conn] : clients_) {
    if (!conn->dead && conn->out_sent < conn->out.size()) {
      HandleClientWritable(*conn);
    }
    if (conn->draining && !conn->dead && conn->out_sent >= conn->out.size()) {
      conn->dead = true;
    }
  }
  ReapDeadClients();

  if (draining_) {
    const bool expired = clock_.ElapsedMicros() >= drain_deadline_micros_;
    if ((backends_.empty() || expired) && !clients_goodbyed_) {
      // Every backend said GOODBYE (its pending score results arrived
      // first; the server contract flushes them before the GOODBYE), so
      // nothing more is owed to any client.
      clients_goodbyed_ = true;
      for (auto& [id, conn] : clients_) {
        if (conn->dead) {
          continue;
        }
        net::Frame goodbye;
        goodbye.type = net::FrameType::kGoodbye;
        SendToClient(*conn, goodbye);
        conn->draining = true;
      }
    }
    if (clients_goodbyed_ && (clients_.empty() || expired)) {
      clients_.clear();
      backends_.clear();
      UpdateConnectedCount();
      stopped_ = true;
    }
  }
  return !stopped_;
}

void Router::AcceptPending() {
  while (clients_.size() < static_cast<size_t>(options_.max_connections)) {
    UniqueFd fd;
    if (Status s = AcceptTcp(listen_fd_.get(), &fd); !s.ok()) {
      return;
    }
    if (!fd.valid()) {
      return;  // Nothing pending.
    }
    auto conn = std::make_unique<ClientConn>();
    conn->fd = std::move(fd);
    conn->id = next_connection_id_++;
    wire_metrics_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    clients_.emplace(conn->id, std::move(conn));
  }
}

void Router::HandleClientReadable(ClientConn& conn) {
  uint8_t buf[64 * 1024];
  for (;;) {
    size_t received = 0;
    bool eof = false;
    Status s =
        RecvNonBlocking(conn.fd.get(), buf, sizeof(buf), &received, &eof);
    if (!s.ok() || eof) {
      conn.dead = true;
      break;
    }
    if (received == 0) {
      break;
    }
    wire_metrics_.bytes_received.fetch_add(received,
                                           std::memory_order_relaxed);
    conn.in.insert(conn.in.end(), buf, buf + received);
  }

  size_t offset = 0;
  while (!conn.dead && !conn.draining) {
    net::Frame frame;
    size_t consumed = 0;
    Status s =
        DecodeFrame(conn.in.data() + offset, conn.in.size() - offset,
                    options_.max_payload_bytes, &frame, &consumed);
    if (!s.ok()) {
      wire_metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      FailClient(conn, s);
      break;
    }
    if (consumed == 0) {
      break;
    }
    offset += consumed;
    wire_metrics_.frames_received.fetch_add(1, std::memory_order_relaxed);
    HandleClientFrame(conn, frame);
  }
  if (offset > 0) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<ptrdiff_t>(offset));
  } else if (conn.in.capacity() > kCompactThreshold && conn.in.empty()) {
    conn.in.shrink_to_fit();
  }
}

void Router::HandleClientWritable(ClientConn& conn) {
  while (conn.out_sent < conn.out.size()) {
    size_t sent = 0;
    Status s = SendNonBlocking(conn.fd.get(), conn.out.data() + conn.out_sent,
                               conn.out.size() - conn.out_sent, &sent);
    if (!s.ok()) {
      conn.dead = true;
      return;
    }
    if (sent == 0) {
      break;
    }
    conn.out_sent += sent;
    wire_metrics_.bytes_sent.fetch_add(sent, std::memory_order_relaxed);
  }
  if (conn.out_sent == conn.out.size()) {
    conn.out.clear();
    conn.out_sent = 0;
  } else if (conn.out_sent > kCompactThreshold) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() + static_cast<ptrdiff_t>(conn.out_sent));
    conn.out_sent = 0;
  }
}

void Router::HandleBackendReadable(BackendConn& conn) {
  uint8_t buf[64 * 1024];
  for (;;) {
    size_t received = 0;
    bool eof = false;
    Status s =
        RecvNonBlocking(conn.fd.get(), buf, sizeof(buf), &received, &eof);
    if (!s.ok() || eof) {
      conn.dead = true;
      break;
    }
    if (received == 0) {
      break;
    }
    conn.in.insert(conn.in.end(), buf, buf + received);
  }

  size_t offset = 0;
  for (;;) {
    net::Frame frame;
    size_t consumed = 0;
    Status s =
        DecodeFrame(conn.in.data() + offset, conn.in.size() - offset,
                    options_.max_payload_bytes, &frame, &consumed);
    if (!s.ok()) {
      counters_.router_protocol_errors++;
      conn.dead = true;
      break;
    }
    if (consumed == 0) {
      break;
    }
    offset += consumed;
    ProcessBackendFrame(conn, frame);
  }
  if (offset > 0) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<ptrdiff_t>(offset));
  } else if (conn.in.capacity() > kCompactThreshold && conn.in.empty()) {
    conn.in.shrink_to_fit();
  }
}

void Router::HandleBackendWritable(BackendConn& conn) {
  while (conn.out_sent < conn.out.size()) {
    size_t sent = 0;
    Status s = SendNonBlocking(conn.fd.get(), conn.out.data() + conn.out_sent,
                               conn.out.size() - conn.out_sent, &sent);
    if (!s.ok()) {
      conn.dead = true;
      return;
    }
    if (sent == 0) {
      break;
    }
    conn.out_sent += sent;
  }
  if (conn.out_sent == conn.out.size()) {
    conn.out.clear();
    conn.out_sent = 0;
  } else if (conn.out_sent > kCompactThreshold) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() + static_cast<ptrdiff_t>(conn.out_sent));
    conn.out_sent = 0;
  }
}

void Router::SendToClient(ClientConn& conn, const net::Frame& frame) {
  if (conn.dead) {
    return;
  }
  EncodeFrame(frame, &conn.out);
  wire_metrics_.frames_sent.fetch_add(1, std::memory_order_relaxed);
}

void Router::SendToBackend(BackendConn& conn, const net::Frame& frame) {
  if (conn.dead) {
    return;
  }
  EncodeFrame(frame, &conn.out);
}

void Router::FailClient(ClientConn& conn, const Status& status) {
  net::Frame error;
  error.type = net::FrameType::kError;
  error.status_code = status.code();
  error.text = status.message();
  SendToClient(conn, error);
  conn.draining = true;
  // The stream past the bad frame is garbage; stop reading immediately.
  shutdown(conn.fd.get(), SHUT_RD);
}

void Router::ReapDeadClients() {
  for (auto it = clients_.begin(); it != clients_.end();) {
    if (!it->second->dead) {
      ++it;
      continue;
    }
    // Drop the client's queued work. Score refs it still has on backends
    // stay: their results arrive and are dropped at delivery.
    for (uint64_t tid : it->second->task_order) {
      tasks_.erase(tid);
    }
    wire_metrics_.connections_closed.fetch_add(1, std::memory_order_relaxed);
    it = clients_.erase(it);
  }
}

// --- Client-side dispatch --------------------------------------------------

void Router::HandleClientFrame(ClientConn& conn, const net::Frame& frame) {
  switch (frame.type) {
    case net::FrameType::kPing: {
      net::Frame pong;
      pong.type = net::FrameType::kPong;
      pong.request_id = frame.request_id;
      SendToClient(conn, pong);
      break;
    }
    case net::FrameType::kMetricsRequest:
      HandleMetricsRequest(conn);
      break;
    case net::FrameType::kIngestBatch: {
      if (frame.events.empty()) {
        net::Frame reply;
        reply.type = net::FrameType::kIngestAck;
        reply.request_id = frame.request_id;
        reply.status_code = StatusCode::kOk;
        SendToClient(conn, reply);
        break;
      }
      IngestTask task;
      task.id = next_task_id_++;
      task.client_id = conn.id;
      task.client_request_id = frame.request_id;
      task.events = frame.events;
      conn.task_order.push_back(task.id);
      tasks_.emplace(task.id, std::move(task));
      AdvanceClient(conn);
      break;
    }
    case net::FrameType::kScore: {
      // A standalone score joins the same per-client forwarding queue as
      // ingest batches: it must not overtake events the client sent first.
      IngestTask task;
      task.id = next_task_id_++;
      task.client_id = conn.id;
      task.client_request_id = frame.request_id;
      task.is_score_frame = true;
      serve::Event event;
      event.kind = serve::Event::Kind::kScore;
      event.session_id = frame.session_id;
      event.label = frame.label;
      task.events.push_back(std::move(event));
      conn.task_order.push_back(task.id);
      tasks_.emplace(task.id, std::move(task));
      AdvanceClient(conn);
      break;
    }
    case net::FrameType::kModelLoad:
    case net::FrameType::kModelActivate:
    case net::FrameType::kModelStatus:
      HandleModelAdmin(conn, frame);
      break;
    case net::FrameType::kShutdown:
      RequestShutdown();
      break;
    case net::FrameType::kGoodbye:
      conn.draining = true;
      break;
    default: {
      wire_metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      FailClient(conn,
                 Status::InvalidArgument(
                     std::string("unexpected frame type from client: ") +
                     net::FrameTypeName(frame.type)));
      break;
    }
  }
}

Router::BackendConn* Router::OwnerFor(uint64_t session_id) {
  const std::string* name = nullptr;
  auto sit = sessions_.find(session_id);
  if (sit != sessions_.end()) {
    name = &sit->second.owner;
  } else {
    name = ring_.OwnerOf(session_id);
  }
  if (name == nullptr) {
    return nullptr;
  }
  auto bit = backends_.find(*name);
  if (bit == backends_.end() || bit->second->dead) {
    return nullptr;
  }
  return bit->second.get();
}

void Router::AdvanceClient(ClientConn& client) {
  if (forwarding_frozen_ || draining_ || client.dead) {
    return;
  }
  size_t idx = 0;
  while (idx < client.task_order.size()) {
    auto it = tasks_.find(client.task_order[idx]);
    if (it == tasks_.end()) {
      // Completed (or dropped) earlier; lazily compact the queue.
      client.task_order.erase(client.task_order.begin() +
                              static_cast<ptrdiff_t>(idx));
      continue;
    }
    IngestTask& task = it->second;
    if (task.next >= task.events.size()) {
      ++idx;  // Fully forwarded; pipelining past it is safe.
      continue;
    }
    const TaskStep step = AdvanceTask(client, task);
    if (step == TaskStep::kGated) {
      return;  // Later tasks must not overtake an unforwarded prefix.
    }
    if (step == TaskStep::kRemoved) {
      continue;  // The stale id is reaped on the next look.
    }
    ++idx;
  }
}

Router::TaskStep Router::AdvanceTask(ClientConn& client, IngestTask& task) {
  while (task.next < task.events.size()) {
    if (task.awaiting_ack) {
      return TaskStep::kGated;  // Mid-multi-run: the run ack gates the rest.
    }
    const serve::Event& head = task.events[task.next];
    BackendConn* owner = OwnerFor(head.session_id);
    if (owner == nullptr) {
      if (ring_.num_backends() > 0 ||
          sessions_.find(head.session_id) != sessions_.end()) {
        // Owner known but not currently connected (mid-failover window).
        return TaskStep::kGated;
      }
      // No backend anywhere: shed with the standard retryable reply.
      counters_.overloads_shed++;
      net::Frame reply;
      reply.type = net::FrameType::kOverloaded;
      reply.request_id = task.client_request_id;
      reply.status_code = StatusCode::kOverloaded;
      reply.events_applied = task.acked;
      reply.text = "no backend available";
      SendToClient(client, reply);
      tasks_.erase(task.id);
      return TaskStep::kRemoved;
    }
    if (task.is_score_frame) {
      PendingOp op;
      op.kind = PendingOp::Kind::kScore;
      op.rid = NextRid();
      op.client_id = client.id;
      op.client_request_id = task.client_request_id;
      op.session_id = head.session_id;
      op.label = head.label;
      net::Frame fwd;
      fwd.type = net::FrameType::kScore;
      fwd.request_id = op.rid;
      fwd.session_id = head.session_id;
      fwd.label = head.label;
      owner->refs.push_back({head.session_id, client.id, head.label, op.rid, 0});
      owner->ops.push_back(std::move(op));
      SendToBackend(*owner, fwd);
      tasks_.erase(task.id);
      return TaskStep::kRemoved;
    }
    // Maximal same-owner run starting at task.next.
    size_t run_end = task.next + 1;
    while (run_end < task.events.size() &&
           OwnerFor(task.events[run_end].session_id) == owner) {
      ++run_end;
    }
    PendingOp op;
    op.kind = PendingOp::Kind::kIngest;
    op.rid = NextRid();
    op.task_id = task.id;
    op.client_id = client.id;
    op.run_offset = task.next;
    op.events.assign(task.events.begin() + static_cast<ptrdiff_t>(task.next),
                     task.events.begin() + static_cast<ptrdiff_t>(run_end));
    net::Frame fwd;
    fwd.type = net::FrameType::kIngestBatch;
    fwd.request_id = op.rid;
    fwd.events = op.events;
    // Refs go in at forward time: a result may overtake the run's ack
    // (the backend drains its engine mid-dispatch under overload).
    for (size_t i = 0; i < op.events.size(); ++i) {
      const serve::Event& event = op.events[i];
      if (event.kind == serve::Event::Kind::kScore) {
        owner->refs.push_back(
            {event.session_id, client.id, event.label, op.rid, i});
      }
    }
    owner->ops.push_back(std::move(op));
    SendToBackend(*owner, fwd);
    task.next = run_end;
    task.awaiting_ack = true;
  }
  return TaskStep::kDone;
}

// --- Backend-side dispatch -------------------------------------------------

void Router::ProcessBackendFrame(BackendConn& conn, const net::Frame& frame) {
  switch (frame.type) {
    case net::FrameType::kPong: {
      if (auto* entry = registry_.Find(conn.name)) {
        registry_.OnPong(*entry, frame.request_id, NowSeconds());
      }
      break;
    }
    case net::FrameType::kIngestAck:
    case net::FrameType::kOverloaded: {
      if (sync_waiting_.count(frame.request_id) > 0) {
        sync_done_[frame.request_id] = frame;
        break;
      }
      auto oit = std::find_if(
          conn.ops.begin(), conn.ops.end(),
          [&](const PendingOp& op) { return op.rid == frame.request_id; });
      if (oit == conn.ops.end()) {
        counters_.router_protocol_errors++;
        break;
      }
      PendingOp op = std::move(*oit);
      conn.ops.erase(oit);
      if (op.kind == PendingOp::Kind::kScore) {
        // The backend shed (or typed-failed) a standalone score before
        // enqueueing it; its ref resolves here, not with a result.
        CancelRefsBeyond(conn, op.rid, 0);
        auto cit = clients_.find(op.client_id);
        if (op.client_request_id != 0) {
          if (cit != clients_.end() && !cit->second->dead) {
            net::Frame reply = frame;
            reply.request_id = op.client_request_id;
            SendToClient(*cit->second, reply);
          }
        } else {
          // Internal reissue: exactly-once still demands one terminal
          // outcome for the original request.
          serve::ScoreResult result;
          result.session_id = op.session_id;
          result.status = Status(frame.status_code == StatusCode::kOk
                                     ? StatusCode::kInternal
                                     : frame.status_code,
                                 frame.text.empty()
                                     ? "score shed during failover reissue"
                                     : frame.text);
          result.label = op.label;
          counters_.scores_failed_over++;
          DeliverResult(op.client_id, result);
        }
      } else {
        HandleIngestAck(conn, std::move(op), frame);
      }
      break;
    }
    case net::FrameType::kScoreResult:
      HandleScoreResults(conn, frame);
      break;
    case net::FrameType::kSessionState:
    case net::FrameType::kModelInfo: {
      if (sync_waiting_.count(frame.request_id) > 0) {
        sync_done_[frame.request_id] = frame;
      } else {
        counters_.router_protocol_errors++;
      }
      break;
    }
    case net::FrameType::kMetricsResponse: {
      if (awaiting_metrics_) {
        metrics_reply_ = frame;
        metrics_done_ = true;
      }
      break;
    }
    case net::FrameType::kGoodbye:
      // Graceful close from the backend; outside a router drain this is
      // indistinguishable from a crash for routing purposes.
      conn.dead = true;
      break;
    case net::FrameType::kError:
    default:
      counters_.router_protocol_errors++;
      conn.dead = true;
      break;
  }
}

void Router::HandleIngestAck(BackendConn& conn, PendingOp op,
                             const net::Frame& frame) {
  const uint64_t applied =
      std::min<uint64_t>(frame.events_applied, op.events.size());
  JournalAppliedEvents(conn, op, applied);
  const bool ok = IsAckOk(frame);
  if (!ok) {
    // Events past the failure point never reached the engine; their
    // scores were never enqueued and must not wait for results.
    CancelRefsBeyond(conn, op.rid, applied);
  }
  auto it = tasks_.find(op.task_id);
  if (it == tasks_.end()) {
    return;  // Client left; the journal update above was all that mattered.
  }
  IngestTask& task = it->second;
  task.awaiting_ack = false;
  auto cit = clients_.find(task.client_id);
  ClientConn* client =
      cit == clients_.end() || cit->second->dead ? nullptr : cit->second.get();
  if (!ok) {
    if (client != nullptr) {
      // Relay in original-frame coordinates: the backend counted within
      // its run, the client thinks in its own batch.
      net::Frame reply;
      reply.type = frame.type;
      reply.request_id = task.client_request_id;
      reply.status_code = frame.status_code;
      reply.events_applied = task.acked + applied;
      reply.text = frame.text;
      SendToClient(*client, reply);
    }
    tasks_.erase(it);
  } else {
    task.acked += applied;
    if (task.acked >= task.events.size()) {
      if (client != nullptr) {
        net::Frame reply;
        reply.type = net::FrameType::kIngestAck;
        reply.request_id = task.client_request_id;
        reply.status_code = StatusCode::kOk;
        reply.events_applied = task.acked;
        SendToClient(*client, reply);
      }
      tasks_.erase(it);
    }
  }
  if (client != nullptr) {
    AdvanceClient(*client);
  }
}

void Router::JournalAppliedEvents(const BackendConn& conn, const PendingOp& op,
                                  uint64_t applied) {
  for (uint64_t i = 0; i < applied; ++i) {
    const serve::Event& event = op.events[i];
    switch (event.kind) {
      case serve::Event::Kind::kBegin: {
        SessionInfo info;
        info.owner = conn.name;
        info.journal.push_back(event);
        sessions_[event.session_id] = std::move(info);
        break;
      }
      case serve::Event::Kind::kEdge: {
        auto it = sessions_.find(event.session_id);
        if (it != sessions_.end() && it->second.owner == conn.name) {
          it->second.journal.push_back(event);
        }
        break;
      }
      case serve::Event::Kind::kEnd:
        sessions_.erase(event.session_id);
        break;
      case serve::Event::Kind::kScore:
        break;
    }
  }
}

void Router::CancelRefsBeyond(BackendConn& conn, uint64_t op_rid,
                              uint64_t applied) {
  for (auto it = conn.refs.begin(); it != conn.refs.end();) {
    if (it->op_rid == op_rid && it->index_in_run >= applied) {
      it = conn.refs.erase(it);
    } else {
      ++it;
    }
  }
}

void Router::HandleScoreResults(BackendConn& conn, const net::Frame& frame) {
  std::map<uint64_t, net::Frame> per_client;
  for (const serve::ScoreResult& result : frame.results) {
    // Oldest unresolved request of the same session. Results of one
    // session come back in request order for everything the engine
    // accepted; only immediate typed failures can overtake, and those
    // carry the failure to whichever outstanding request matches first —
    // same multiset per session, exactly-once per ref either way.
    auto rit = std::find_if(conn.refs.begin(), conn.refs.end(),
                            [&](const ScoreRef& ref) {
                              return ref.session_id == result.session_id;
                            });
    if (rit == conn.refs.end()) {
      counters_.router_protocol_errors++;
      continue;
    }
    const ScoreRef ref = *rit;
    conn.refs.erase(rit);
    // A standalone-score op completes with its result.
    auto oit = std::find_if(
        conn.ops.begin(), conn.ops.end(),
        [&](const PendingOp& op) { return op.rid == ref.op_rid; });
    if (oit != conn.ops.end() && oit->kind == PendingOp::Kind::kScore) {
      conn.ops.erase(oit);
    }
    auto cit = clients_.find(ref.client_id);
    if (cit == clients_.end() || cit->second->dead) {
      continue;  // Requester is gone; the result is dropped.
    }
    net::Frame& out = per_client[ref.client_id];
    out.type = net::FrameType::kScoreResult;
    out.results.push_back(result);
  }
  for (auto& [client_id, out] : per_client) {
    auto cit = clients_.find(client_id);
    if (cit != clients_.end()) {
      SendToClient(*cit->second, out);
    }
  }
}

void Router::DeliverResult(uint64_t client_id,
                           const serve::ScoreResult& result) {
  auto cit = clients_.find(client_id);
  if (cit == clients_.end() || cit->second->dead) {
    return;
  }
  net::Frame frame;
  frame.type = net::FrameType::kScoreResult;
  frame.results.push_back(result);
  SendToClient(*cit->second, frame);
}

// --- Membership, probes, failover, migration -------------------------------

void Router::MaintainBackends(double now) {
  bool joined = false;
  for (const std::string& name : registry_.names()) {
    BackendRegistry::Entry* entry = registry_.Find(name);
    if (entry == nullptr) {
      continue;
    }
    if (entry->health == BackendHealth::kUp) {
      auto it = backends_.find(name);
      if (it == backends_.end() || it->second->dead) {
        continue;  // Tear-down already pending via FailDeadBackends.
      }
      BackendConn& conn = *it->second;
      if (registry_.ProbeDue(*entry, now)) {
        const uint64_t probe_id = registry_.OnProbeSent(*entry, now);
        counters_.probes_sent++;
        net::Frame ping;
        ping.type = net::FrameType::kPing;
        ping.request_id = probe_id;
        SendToBackend(conn, ping);
      }
      double effective_now = now;
      failpoint::Hit hit;
      if (entry->last_probe_sent_at >= 0.0 &&
          TPGNN_FAILPOINT("router.probe", &hit)) {
        if (hit.kind == failpoint::Kind::kDelay) {
          failpoint::ApplyDelay(hit);
        } else {
          // Forced miss: evaluate expiry as if the deadline had passed.
          effective_now = entry->last_probe_sent_at +
                          registry_.options().probe_timeout_seconds + 1.0;
        }
      }
      bool crossed = false;
      if (registry_.ProbeExpired(*entry, effective_now, &crossed)) {
        counters_.probes_missed++;
        if (crossed) {
          conn.dead = true;
        }
      }
    } else if (registry_.ShouldConnect(*entry, now)) {
      joined = TryConnectBackend(*entry, now) || joined;
    }
  }
  FailDeadBackends();
  if (joined) {
    RebalanceSessions();
  }
}

bool Router::TryConnectBackend(BackendRegistry::Entry& entry, double now) {
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("router.backend_connect", &hit)) {
    if (hit.kind == failpoint::Kind::kDelay) {
      failpoint::ApplyDelay(hit);
    } else {
      registry_.OnConnectFailed(entry, now);
      return false;
    }
  }
  UniqueFd fd;
  Status s = ConnectTcp(entry.config.host, entry.config.port,
                        options_.backend_connect_timeout_ms, &fd);
  if (!s.ok()) {
    registry_.OnConnectFailed(entry, now);
    return false;
  }
  SetNonBlocking(fd.get(), true);
  registry_.OnConnected(entry, now);
  auto conn = std::make_unique<BackendConn>();
  conn->name = entry.config.name;
  conn->fd = std::move(fd);
  backends_.emplace(entry.config.name, std::move(conn));
  counters_.backend_connects++;
  if (!entry.draining) {
    ring_.AddBackend(entry.config.name);
  }
  UpdateConnectedCount();
  return !entry.draining;
}

void Router::FailDeadBackends() {
  for (;;) {
    std::string dead_name;
    for (const auto& [name, conn] : backends_) {
      if (conn->dead) {
        dead_name = name;
        break;
      }
    }
    if (dead_name.empty()) {
      return;
    }
    FailBackend(dead_name);
  }
}

void Router::FailBackend(const std::string& name) {
  auto it = backends_.find(name);
  if (it == backends_.end()) {
    return;
  }
  std::unique_ptr<BackendConn> conn = std::move(it->second);
  backends_.erase(it);
  UpdateConnectedCount();
  ring_.RemoveBackend(name);
  if (auto* entry = registry_.Find(name)) {
    registry_.OnConnectionLost(*entry, NowSeconds());
  }
  counters_.backend_disconnects++;
  if (draining_) {
    return;  // Shutdown drops in-flight work by design.
  }
  counters_.backend_failovers++;

  // 1. Rebuild every session the dead backend owned on its new ring owner
  //    from the acked-event journal. Deterministic (sorted) order.
  std::vector<uint64_t> owned;
  for (const auto& [sid, info] : sessions_) {
    if (info.owner == name) {
      owned.push_back(sid);
    }
  }
  for (uint64_t sid : owned) {
    auto sit = sessions_.find(sid);
    if (sit == sessions_.end() || sit->second.owner != name) {
      continue;  // Moved by a nested failover while we worked the list.
    }
    if (!ReplaySessionJournal(sid, sit->second).ok()) {
      counters_.migration_failures++;
      sessions_.erase(sid);
    }
  }

  // 2. Resolve the dead connection's in-flight work in its original
  //    forward order. Acks are FIFO per connection, so every ref whose op
  //    already completed is strictly older than every pending op: those
  //    orphans reissue first, then the pending ops replay in deque order.
  std::set<uint64_t> pending_rids;
  for (const PendingOp& op : conn->ops) {
    pending_rids.insert(op.rid);
  }
  for (const ScoreRef& ref : conn->refs) {
    if (pending_rids.count(ref.op_rid) > 0) {
      continue;  // Re-created below when its op re-forwards.
    }
    ReissueScore(ref);
  }
  for (const PendingOp& op : conn->ops) {
    if (op.kind == PendingOp::Kind::kScore) {
      ScoreRef ref;
      ref.session_id = op.session_id;
      ref.client_id = op.client_id;
      ref.label = op.label;
      ReissueScore(ref);
      continue;
    }
    auto tit = tasks_.find(op.task_id);
    if (tit == tasks_.end()) {
      continue;  // Client is gone.
    }
    IngestTask& task = tit->second;
    // Unacked run: rewind the task to the run start and re-forward right
    // here so ordering against the surrounding ops is preserved.
    task.next = op.run_offset;
    task.awaiting_ack = false;
    auto cit = clients_.find(task.client_id);
    if (cit != clients_.end() && !cit->second->dead) {
      AdvanceTask(*cit->second, task);
    }
  }

  // 3. Whatever gated during the window resumes normally.
  for (auto& [id, client] : clients_) {
    if (!client->dead) {
      AdvanceClient(*client);
    }
  }
}

void Router::ReissueScore(const ScoreRef& ref) {
  BackendConn* owner = nullptr;
  auto sit = sessions_.find(ref.session_id);
  if (sit != sessions_.end()) {
    auto bit = backends_.find(sit->second.owner);
    if (bit != backends_.end() && !bit->second->dead) {
      owner = bit->second.get();
    }
  }
  if (owner == nullptr) {
    // The session did not survive (already Ended, or its replay failed):
    // exactly-once means the request still gets its one terminal outcome.
    counters_.scores_failed_over++;
    serve::ScoreResult result;
    result.session_id = ref.session_id;
    result.status = Status::DataLoss(
        "backend lost before the score completed; session not recovered");
    result.label = ref.label;
    DeliverResult(ref.client_id, result);
    return;
  }
  counters_.scores_reissued++;
  PendingOp op;
  op.kind = PendingOp::Kind::kScore;
  op.rid = NextRid();
  op.client_id = ref.client_id;
  op.client_request_id = 0;  // Internal: overloads become typed results.
  op.session_id = ref.session_id;
  op.label = ref.label;
  net::Frame fwd;
  fwd.type = net::FrameType::kScore;
  fwd.request_id = op.rid;
  fwd.session_id = ref.session_id;
  fwd.label = ref.label;
  owner->refs.push_back({ref.session_id, ref.client_id, ref.label, op.rid, 0});
  owner->ops.push_back(std::move(op));
  SendToBackend(*owner, fwd);
}

void Router::RebalanceSessions() {
  if (sessions_.empty() || ring_.num_backends() == 0) {
    return;
  }
  forwarding_frozen_ = true;
  std::vector<uint64_t> moving;
  for (const auto& [sid, info] : sessions_) {
    const std::string* owner = ring_.OwnerOf(sid);
    if (owner != nullptr && *owner != info.owner) {
      moving.push_back(sid);
    }
  }
  for (uint64_t sid : moving) {
    auto it = sessions_.find(sid);
    if (it == sessions_.end()) {
      continue;
    }
    const std::string* owner = ring_.OwnerOf(sid);
    if (owner == nullptr || *owner == it->second.owner) {
      continue;  // The ring moved again while earlier sessions migrated.
    }
    if (!MigrateSessionSnapshot(sid, it->second).ok()) {
      counters_.migration_failures++;
    }
  }
  forwarding_frozen_ = false;
  for (auto& [id, client] : clients_) {
    if (!client->dead) {
      AdvanceClient(*client);
    }
  }
}

Status Router::MigrateSessionSnapshot(uint64_t session_id, SessionInfo& info) {
  auto sit = backends_.find(info.owner);
  if (sit == backends_.end() || sit->second->dead) {
    return ReplaySessionJournal(session_id, info);
  }
  BackendConn& source = *sit->second;
  const std::string source_name = source.name;
  // The snapshot may only omit what the journal doesn't know about, so
  // every outstanding ingest run must ack (or fail) before the export.
  if (Status s = QuiesceIngest(source); !s.ok()) {
    if (source.dead) {
      FailBackend(source_name);  // Replays this session from the journal.
      return sessions_.count(session_id) > 0 ? Status::Ok() : s;
    }
    return s;  // Transient; the session stays put and retries later.
  }
  failpoint::Hit hit;
  if (TPGNN_FAILPOINT("router.migrate", &hit)) {
    if (hit.kind == failpoint::Kind::kDelay) {
      failpoint::ApplyDelay(hit);
    } else {
      // Injected abort before the export: nothing moved; a later
      // rebalance round retries.
      return failpoint::InjectedError(StatusCode::kInternal, "router.migrate");
    }
  }
  net::Frame req;
  req.type = net::FrameType::kSessionExport;
  req.request_id = NextRid();
  req.session_id = session_id;
  net::Frame snapshot;
  if (Status s = SyncCall(source, req, &snapshot); !s.ok()) {
    if (source.dead) {
      FailBackend(source_name);
      return sessions_.count(session_id) > 0 ? Status::Ok() : s;
    }
    return s;
  }
  if (snapshot.type != net::FrameType::kSessionState) {
    counters_.router_protocol_errors++;
    return Status::DataLoss("unexpected reply to SESSION_EXPORT");
  }
  if (snapshot.status_code != StatusCode::kOk) {
    if (snapshot.status_code == StatusCode::kNotFound) {
      // Evicted under our feet (TTL/LRU); accept reality.
      sessions_.erase(session_id);
    }
    return Status(snapshot.status_code, snapshot.text);
  }
  // From here the source has Ended its copy: the blob (plus the journal,
  // as fallback) is the only live state.
  for (int attempt = 0; attempt < options_.migration_retries; ++attempt) {
    if (info.owner != source_name) {
      // A nested failover replayed this session somewhere already; the
      // snapshot is redundant.
      return Status::Ok();
    }
    const std::string* target_name = ring_.OwnerOf(session_id);
    if (target_name == nullptr) {
      break;
    }
    auto tit = backends_.find(*target_name);
    if (tit == backends_.end() || tit->second->dead) {
      FailBackend(*target_name);
      continue;
    }
    BackendConn& target = *tit->second;
    const std::string tname = target.name;
    net::Frame import;
    import.type = net::FrameType::kSessionImport;
    import.request_id = NextRid();
    import.blob = snapshot.blob;
    net::Frame ack;
    if (Status s = SyncCall(target, import, &ack); !s.ok()) {
      if (target.dead) {
        FailBackend(tname);
      }
      continue;
    }
    if (ack.status_code == StatusCode::kOk) {
      info.owner = tname;
      counters_.sessions_migrated++;
      return Status::Ok();
    }
    break;  // Typed import rejection: retrying the same blob won't help.
  }
  // The import never landed; the journal still can rebuild the session.
  return ReplaySessionJournal(session_id, info);
}

Status Router::ReplaySessionJournal(uint64_t session_id, SessionInfo& info) {
  size_t cursor = 0;
  std::string progress_owner;  // Backend holding the applied prefix.
  Status last = Status::Internal("replay not attempted");
  for (int attempt = 0; attempt < options_.migration_retries; ++attempt) {
    const std::string* target_name = ring_.OwnerOf(session_id);
    if (target_name == nullptr) {
      last = Status::Overloaded("no backend available for session replay");
      break;
    }
    auto tit = backends_.find(*target_name);
    if (tit == backends_.end() || tit->second->dead) {
      FailBackend(*target_name);
      continue;
    }
    BackendConn& target = *tit->second;
    const std::string tname = target.name;
    if (cursor > 0 && tname != progress_owner) {
      // A partial replay is stranded on a previous target; if it is still
      // alive, End the fragment so the fresh Begin cannot collide later.
      auto pit = backends_.find(progress_owner);
      if (pit != backends_.end() && !pit->second->dead) {
        net::Frame cleanup;
        cleanup.type = net::FrameType::kIngestBatch;
        cleanup.request_id = NextRid();
        serve::Event end;
        end.kind = serve::Event::Kind::kEnd;
        end.session_id = session_id;
        cleanup.events.push_back(std::move(end));
        net::Frame ignored;
        (void)SyncCall(*pit->second, cleanup, &ignored);
      }
      cursor = 0;
    }
    failpoint::Hit hit;
    if (TPGNN_FAILPOINT("router.migrate", &hit)) {
      if (hit.kind == failpoint::Kind::kDelay) {
        failpoint::ApplyDelay(hit);
      } else {
        last =
            failpoint::InjectedError(StatusCode::kInternal, "router.migrate");
        continue;
      }
    }
    net::Frame req;
    req.type = net::FrameType::kIngestBatch;
    req.request_id = NextRid();
    req.events.assign(info.journal.begin() + static_cast<ptrdiff_t>(cursor),
                      info.journal.end());
    net::Frame ack;
    if (Status s = SyncCall(target, req, &ack); !s.ok()) {
      last = s;
      if (target.dead) {
        FailBackend(tname);
      }
      continue;
    }
    if (IsAckOk(ack)) {
      info.owner = tname;
      counters_.sessions_replayed++;
      return Status::Ok();
    }
    // Partial progress (overload / typed failure mid-journal): the applied
    // prefix is resident on this target; continue from there next round.
    cursor += std::min<size_t>(ack.events_applied,
                               info.journal.size() - cursor);
    progress_owner = tname;
    last = Status(ack.status_code == StatusCode::kOk ? StatusCode::kInternal
                                                     : ack.status_code,
                  ack.text.empty() ? "session replay rejected" : ack.text);
  }
  // Give up: clear any stranded fragment so future traffic fails typed
  // instead of resuming a half-session.
  if (cursor > 0) {
    auto pit = backends_.find(progress_owner);
    if (pit != backends_.end() && !pit->second->dead) {
      net::Frame cleanup;
      cleanup.type = net::FrameType::kIngestBatch;
      cleanup.request_id = NextRid();
      serve::Event end;
      end.kind = serve::Event::Kind::kEnd;
      end.session_id = session_id;
      cleanup.events.push_back(std::move(end));
      net::Frame ignored;
      (void)SyncCall(*pit->second, cleanup, &ignored);
    }
  }
  return last;
}

Status Router::QuiesceIngest(BackendConn& conn) {
  const double deadline =
      clock_.ElapsedMicros() + options_.backend_sync_timeout_ms * 1000.0;
  for (;;) {
    bool busy = false;
    for (const PendingOp& op : conn.ops) {
      if (op.kind == PendingOp::Kind::kIngest) {
        busy = true;
        break;
      }
    }
    if (!busy) {
      return Status::Ok();
    }
    if (conn.dead) {
      return Status::DataLoss("backend connection lost during quiesce");
    }
    if (clock_.ElapsedMicros() >= deadline) {
      return Status::DeadlineExceeded("backend quiesce timed out");
    }
    if (Status s = PumpBackendOnce(conn, 20);
        !s.ok() && s.code() != StatusCode::kDeadlineExceeded) {
      return s;
    }
  }
}

Status Router::SyncCall(BackendConn& conn, const net::Frame& request,
                        net::Frame* reply) {
  const uint64_t rid = request.request_id;
  const bool is_metrics = request.type == net::FrameType::kMetricsRequest;
  sync_waiting_.insert(rid);
  if (is_metrics) {
    awaiting_metrics_ = true;
    metrics_done_ = false;
  }
  SendToBackend(conn, request);
  const double deadline =
      clock_.ElapsedMicros() + options_.backend_sync_timeout_ms * 1000.0;
  Status result = Status::Ok();
  for (;;) {
    if (is_metrics ? metrics_done_ : sync_done_.count(rid) > 0) {
      *reply = is_metrics ? std::move(metrics_reply_)
                          : std::move(sync_done_[rid]);
      break;
    }
    if (conn.dead) {
      result = Status::DataLoss("backend connection lost mid-request");
      break;
    }
    if (clock_.ElapsedMicros() >= deadline) {
      result = Status::DeadlineExceeded("backend request timed out");
      break;
    }
    if (Status s = PumpBackendOnce(conn, 20);
        !s.ok() && s.code() != StatusCode::kDeadlineExceeded) {
      result = s;
      break;
    }
  }
  sync_waiting_.erase(rid);
  sync_done_.erase(rid);
  if (is_metrics) {
    awaiting_metrics_ = false;
  }
  return result;
}

Status Router::PumpBackendOnce(BackendConn& conn, int timeout_ms) {
  if (conn.dead) {
    return Status::DataLoss("backend connection lost");
  }
  // Push pending writes first so the awaited request actually leaves.
  while (conn.out_sent < conn.out.size()) {
    size_t sent = 0;
    Status s = SendNonBlocking(conn.fd.get(), conn.out.data() + conn.out_sent,
                               conn.out.size() - conn.out_sent, &sent);
    if (!s.ok()) {
      conn.dead = true;
      return s;
    }
    if (sent == 0) {
      if (!WaitWritable(conn.fd.get(), timeout_ms).ok()) {
        break;
      }
      continue;
    }
    conn.out_sent += sent;
  }
  if (conn.out_sent == conn.out.size()) {
    conn.out.clear();
    conn.out_sent = 0;
  }
  if (Status s = WaitReadable(conn.fd.get(), timeout_ms); !s.ok()) {
    return s;  // kDeadlineExceeded: nothing arrived within the slice.
  }
  HandleBackendReadable(conn);
  if (conn.dead) {
    return Status::DataLoss("backend connection lost");
  }
  return Status::Ok();
}

// --- Administrative drain / metrics / shutdown -----------------------------

Status Router::DrainBackend(const std::string& name) {
  BackendRegistry::Entry* entry = registry_.Find(name);
  if (entry == nullptr) {
    return Status::NotFound("unknown backend: " + name);
  }
  if (entry->draining) {
    return Status::Ok();
  }
  registry_.SetDraining(*entry, true);
  ring_.RemoveBackend(name);
  RebalanceSessions();
  return Status::Ok();
}

Status Router::UndrainBackend(const std::string& name) {
  BackendRegistry::Entry* entry = registry_.Find(name);
  if (entry == nullptr) {
    return Status::NotFound("unknown backend: " + name);
  }
  if (!entry->draining) {
    return Status::Ok();
  }
  registry_.SetDraining(*entry, false);
  auto it = backends_.find(name);
  if (entry->health == BackendHealth::kUp && it != backends_.end() &&
      !it->second->dead) {
    ring_.AddBackend(name);
    RebalanceSessions();
  }
  return Status::Ok();
}

void Router::HandleMetricsRequest(ClientConn& conn) {
  serve::MetricsSnapshot merged = wire_metrics_.Snapshot();
  size_t backends_merged = 0;
  for (auto& [name, bconn] : backends_) {
    if (bconn->dead) {
      continue;
    }
    net::Frame req;
    req.type = net::FrameType::kMetricsRequest;
    req.request_id = NextRid();
    net::Frame resp;
    if (!SyncCall(*bconn, req, &resp).ok()) {
      continue;
    }
    serve::MetricsSnapshot snap;
    if (!serve::ParseMetricsJson(resp.text, &snap).ok()) {
      counters_.router_protocol_errors++;
      continue;
    }
    merged.MergeFrom(snap);
    ++backends_merged;
  }
  FailDeadBackends();
  std::string json = merged.ToJson();
  const size_t brace = json.rfind('}');
  if (brace != std::string::npos) {
    json.insert(brace, BuildClusterJson(backends_merged));
  }
  net::Frame reply;
  reply.type = net::FrameType::kMetricsResponse;
  reply.text = std::move(json);
  SendToClient(conn, reply);
}

void Router::HandleModelAdmin(ClientConn& conn, const net::Frame& frame) {
  if (frame.type == net::FrameType::kModelStatus) {
    // Aggregate registry snapshots: {"backends": {"<name>": <StatusJson>}}.
    // Backends that fail the exchange are omitted (and torn down below),
    // exactly like the metrics fan-in.
    std::string json = "{\"backends\": {";
    bool first = true;
    for (auto& [name, bconn] : backends_) {
      if (bconn->dead) {
        continue;
      }
      net::Frame req;
      req.type = net::FrameType::kModelStatus;
      req.request_id = NextRid();
      net::Frame resp;
      if (!SyncCall(*bconn, req, &resp).ok() ||
          resp.status_code != StatusCode::kOk) {
        continue;
      }
      if (!first) {
        json += ", ";
      }
      json += "\"" + name + "\": " + resp.text;
      first = false;
    }
    json += "}}";
    FailDeadBackends();
    net::Frame reply;
    reply.type = net::FrameType::kModelInfo;
    reply.request_id = frame.request_id;
    reply.status_code = StatusCode::kOk;
    reply.text = std::move(json);
    SendToClient(conn, reply);
    return;
  }

  // MODEL_LOAD / MODEL_ACTIVATE: roll across the fleet one backend at a
  // time. Each backend's ack gates the next SyncCall, so a bad checkpoint
  // (or an injected model.load/model.activate failure) stops the roll at
  // the first failing backend instead of half-applying everywhere at once.
  net::Frame reply;
  reply.type = net::FrameType::kIngestAck;
  reply.request_id = frame.request_id;
  reply.status_code = StatusCode::kOk;
  uint64_t applied = 0;
  bool any_backend = false;
  for (auto& [name, bconn] : backends_) {
    if (bconn->dead) {
      continue;
    }
    any_backend = true;
    net::Frame req = frame;
    req.request_id = NextRid();
    net::Frame resp;
    Status st = SyncCall(*bconn, req, &resp);
    if (st.ok() && resp.status_code != StatusCode::kOk) {
      st = Status(resp.status_code, resp.text);
    }
    if (!st.ok()) {
      reply.status_code = st.code();
      reply.text = "backend " + name + ": " + st.message();
      break;
    }
    ++applied;
  }
  if (!any_backend) {
    reply.status_code = StatusCode::kFailedPrecondition;
    reply.text = "no backend connected";
  }
  reply.events_applied = applied;
  FailDeadBackends();
  SendToClient(conn, reply);
}

std::string Router::BuildClusterJson(size_t backends_merged) const {
  auto field = [](const char* key, uint64_t value) {
    return std::string("\"") + key + "\": " + std::to_string(value);
  };
  std::string out = ", \"cluster\": {";
  out += field("backends_configured", registry_.size()) + ", ";
  out += field("backends_up", registry_.num_up()) + ", ";
  out += field("backends_merged", backends_merged) + ", ";
  out += field("resident_sessions", sessions_.size()) + ", ";
  out += field("backend_failovers", counters_.backend_failovers) + ", ";
  out += field("sessions_migrated", counters_.sessions_migrated) + ", ";
  out += field("sessions_replayed", counters_.sessions_replayed) + ", ";
  out += field("migration_failures", counters_.migration_failures) + ", ";
  out += field("scores_reissued", counters_.scores_reissued) + ", ";
  out += field("scores_failed_over", counters_.scores_failed_over) + ", ";
  out += field("probes_sent", counters_.probes_sent) + ", ";
  out += field("probes_missed", counters_.probes_missed) + ", ";
  out += field("backend_connects", counters_.backend_connects) + ", ";
  out += field("backend_disconnects", counters_.backend_disconnects) + ", ";
  out += field("overloads_shed", counters_.overloads_shed) + ", ";
  out += field("router_protocol_errors", counters_.router_protocol_errors);
  out += "}";
  return out;
}

void Router::BeginShutdown() {
  draining_ = true;
  listen_fd_.reset();
  for (auto& [name, conn] : backends_) {
    if (conn->dead) {
      continue;
    }
    net::Frame shutdown;
    shutdown.type = net::FrameType::kShutdown;
    SendToBackend(*conn, shutdown);
  }
  drain_deadline_micros_ =
      clock_.ElapsedMicros() + options_.drain_timeout_ms * 1000.0;
}

void Router::UpdateConnectedCount() {
  size_t up = 0;
  for (const auto& [name, conn] : backends_) {
    if (!conn->dead) {
      ++up;
    }
  }
  connected_backends_.store(up, std::memory_order_relaxed);
}

}  // namespace tpgnn::cluster
