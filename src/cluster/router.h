#ifndef TPGNN_CLUSTER_ROUTER_H_
#define TPGNN_CLUSTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/registry.h"
#include "cluster/ring.h"
#include "net/protocol.h"
#include "serve/metrics.h"
#include "util/net.h"
#include "util/status.h"
#include "util/stopwatch.h"

// The router/proxy tier of the sharded serving cluster (DESIGN.md §4.7).
//
// A Router speaks the net/protocol wire format on both sides: clients
// connect to it exactly as they would to a single serve_server, and it
// keeps one pipelined connection to each backend. Sessions are placed by
// consistent-hashing their id onto the backend ring (cluster/ring.h), so
// every event of a session lands on one backend and the per-session
// ordering contract is preserved end to end.
//
// Ingest batches are forwarded as maximal same-owner runs. A batch whose
// events all own to one backend (the common case: session-affine load)
// forwards as a single frame and pipelines freely; a batch spanning
// owners forwards its runs sequentially — each run's ack gates the next —
// so the ack the client finally sees keeps the protocol's prefix
// semantics (events_applied counts a prefix of the ORIGINAL frame).
// Score results are matched back to requesting clients by session id
// against a per-backend FIFO of outstanding score requests; like the
// single server, per-client result delivery order follows completion
// order, not request order.
//
// Failover: the registry (cluster/registry.h) probes each backend with
// PING and declares it down after consecutive misses or a broken
// connection. The router then removes it from the ring and migrates every
// session it owned to the session's new ring owner by replaying the
// session's JOURNAL — the acked Begin/Edge prefix the router retains per
// live session (never scores; an ack is the only thing that admits an
// event to the journal, so replay can neither lose nor duplicate an
// event). Unacked ingest runs and unresolved score requests that were in
// flight on the dead backend are then re-forwarded in their original
// order, which preserves exactly-once scoring: every score request
// resolves exactly once — with a result, a typed failure, or a cancelled
// slot accounted in an OVERLOADED ack.
//
// Live migration: when a backend is drained (DrainBackend) or rejoins the
// ring, sessions move with their folded state instead of a replay — the
// router quiesces the source, issues SESSION_EXPORT (the backend
// snapshots the SessionShard fold state and Ends its copy), and installs
// the snapshot on the new owner with SESSION_IMPORT. The snapshot carries
// the raw folded tensors as exact float bits, so migrated sessions score
// bit-identically to an engine that never moved them.
//
// Threading: one poll thread owns everything (Run / PollOnce), exactly
// like net::Server. RequestShutdown is thread-safe; DrainBackend /
// UndrainBackend must be called on the poll thread (tests drive PollOnce
// by hand around them).
//
// Failpoints: `router.backend_connect` (dial flap), `router.probe`
// (forced probe miss), `router.migrate` (mid-migration failure; the
// migration retries and falls back from snapshot to journal replay).

namespace tpgnn::cluster {

struct RouterOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; see Router::port().
  int backlog = 64;
  int max_connections = 64;
  uint32_t max_payload_bytes = net::kDefaultMaxPayloadBytes;
  int poll_timeout_ms = 20;
  int drain_timeout_ms = 5000;
  int backend_connect_timeout_ms = 1000;
  // Deadline for synchronous backend exchanges (migration, metrics).
  int backend_sync_timeout_ms = 5000;
  int vnodes_per_backend = 64;
  // Snapshot/replay attempts per migrated session before it is dropped.
  int migration_retries = 3;
  RegistryOptions registry;
};

// Poll-thread-maintained cluster counters, exposed under "cluster" in the
// merged METRICS payload. Plain integers: written only by the poll
// thread; read cross-thread only after Run() returns (the bench joins the
// router thread first).
struct ClusterCounters {
  uint64_t backend_failovers = 0;
  uint64_t sessions_migrated = 0;   // Snapshot (export/import) moves.
  uint64_t sessions_replayed = 0;   // Journal-replay moves.
  uint64_t migration_failures = 0;  // Sessions dropped after retries.
  uint64_t scores_reissued = 0;     // Orphaned scores re-sent on failover.
  uint64_t scores_failed_over = 0;  // Resolved with a typed failure.
  uint64_t probes_sent = 0;
  uint64_t probes_missed = 0;
  uint64_t backend_connects = 0;
  uint64_t backend_disconnects = 0;
  uint64_t overloads_shed = 0;  // Client frames shed with no backend up.
  uint64_t router_protocol_errors = 0;
};

class Router {
 public:
  Router(const std::vector<BackendConfig>& backends,
         const RouterOptions& options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Binds the client-facing listen socket. Backends are dialed lazily by
  // the poll loop (so a router can start before its backends).
  Status Start();
  int port() const { return port_; }

  void Run();
  // One poll iteration; false once fully shut down.
  bool PollOnce(int timeout_ms);

  // Thread- and signal-safe.
  void RequestShutdown();

  // Administrative drain: the backend leaves the ring and every session
  // it owns migrates away via snapshot; its connection stays for
  // in-flight scores. Undrain re-adds it (when healthy) and rebalances
  // sessions back. Poll-thread only.
  Status DrainBackend(const std::string& name);
  Status UndrainBackend(const std::string& name);

  // Live observability. connected_backends is safe cross-thread (the
  // bench spins on it while the router runs); the rest are poll-thread /
  // post-Run reads.
  size_t connected_backends() const {
    return connected_backends_.load(std::memory_order_relaxed);
  }
  size_t num_sessions() const { return sessions_.size(); }
  size_t num_clients() const { return clients_.size(); }
  const ClusterCounters& counters() const { return counters_; }
  const BackendRegistry& registry() const { return registry_; }
  const HashRing& ring() const { return ring_; }

 private:
  struct ClientConn {
    UniqueFd fd;
    uint64_t id = 0;
    std::vector<uint8_t> in;
    std::vector<uint8_t> out;
    size_t out_sent = 0;
    bool draining = false;
    bool dead = false;
    // Ids of this client's unfinished tasks, in frame-arrival order.
    std::deque<uint64_t> task_order;
  };

  // One client frame being forwarded: an INGEST_BATCH (runs of events) or
  // a standalone SCORE (one kScore pseudo-event, no ack on success).
  struct IngestTask {
    uint64_t id = 0;
    uint64_t client_id = 0;
    uint64_t client_request_id = 0;
    bool is_score_frame = false;
    std::vector<serve::Event> events;
    size_t next = 0;   // First event not yet forwarded.
    size_t acked = 0;  // Events acknowledged applied (an original-frame
                       // prefix, because runs forward sequentially).
    bool awaiting_ack = false;
  };

  // An unacknowledged request outstanding on one backend connection.
  struct PendingOp {
    enum class Kind : uint8_t { kIngest, kScore };
    Kind kind = Kind::kIngest;
    uint64_t rid = 0;  // Router-assigned wire request id.
    uint64_t task_id = 0;           // kIngest.
    std::vector<serve::Event> events;  // kIngest: the forwarded run.
    size_t run_offset = 0;  // Original-frame index of events[0].
    uint64_t client_id = 0;
    uint64_t client_request_id = 0;  // kScore: for OVERLOADED relays.
    uint64_t session_id = 0;         // kScore.
    int label = -1;                  // kScore.
  };

  // One outstanding score request on a backend, pushed at forward time
  // (results may overtake the ingest ack that admits them). Resolved by
  // the oldest-unresolved-same-session rule.
  struct ScoreRef {
    uint64_t session_id = 0;
    uint64_t client_id = 0;
    int label = -1;
    uint64_t op_rid = 0;       // Op that carried it.
    size_t index_in_run = 0;   // Position among the op's events.
  };

  struct BackendConn {
    std::string name;
    UniqueFd fd;
    std::vector<uint8_t> in;
    std::vector<uint8_t> out;
    size_t out_sent = 0;
    bool dead = false;
    std::deque<PendingOp> ops;
    std::deque<ScoreRef> refs;
  };

  // The router's authoritative per-session record: current owner and the
  // acked Begin/Edge journal that makes crash failover replayable.
  struct SessionInfo {
    std::string owner;
    std::vector<serve::Event> journal;
  };

  double NowSeconds() const { return clock_.ElapsedMicros() * 1e-6; }
  uint64_t NextRid() { return next_request_id_++; }

  // --- Poll plumbing -----------------------------------------------------
  void AcceptPending();
  void HandleClientReadable(ClientConn& conn);
  void HandleClientWritable(ClientConn& conn);
  void HandleBackendReadable(BackendConn& conn);
  void HandleBackendWritable(BackendConn& conn);
  void SendToClient(ClientConn& conn, const net::Frame& frame);
  void SendToBackend(BackendConn& conn, const net::Frame& frame);
  void FailClient(ClientConn& conn, const Status& status);
  void ReapDeadClients();

  // --- Client-side dispatch ----------------------------------------------
  void HandleClientFrame(ClientConn& conn, const net::Frame& frame);
  void HandleMetricsRequest(ClientConn& conn);
  // Model lifecycle fan-out: MODEL_LOAD / MODEL_ACTIVATE roll across the
  // connected backends one at a time (each backend's ack gates the next, so
  // a failing checkpoint stops the roll with the fleet in a known state);
  // MODEL_STATUS aggregates per-backend registry snapshots.
  void HandleModelAdmin(ClientConn& conn, const net::Frame& frame);
  // Forwards ready tasks of `client` in frame order; stops at a gate (a
  // multi-run task awaiting its run ack, or an owner that is mid-failover).
  void AdvanceClient(ClientConn& client);
  enum class TaskStep { kDone, kGated, kRemoved };
  TaskStep AdvanceTask(ClientConn& client, IngestTask& task);
  // Current owner connection for an event's session; null when the owner
  // backend is not connected (ring empty or mid-failover).
  BackendConn* OwnerFor(uint64_t session_id);

  // --- Backend-side dispatch ---------------------------------------------
  void ProcessBackendFrame(BackendConn& conn, const net::Frame& frame);
  void HandleIngestAck(BackendConn& conn, PendingOp op,
                       const net::Frame& frame);
  void HandleScoreResults(BackendConn& conn, const net::Frame& frame);
  // Admits the acked prefix of an ingest run to the session journals.
  void JournalAppliedEvents(const BackendConn& conn, const PendingOp& op,
                            uint64_t applied);
  void CancelRefsBeyond(BackendConn& conn, uint64_t op_rid, uint64_t applied);
  void DeliverResult(uint64_t client_id, const serve::ScoreResult& result);

  // --- Membership, probes, failover, migration ---------------------------
  void MaintainBackends(double now);
  bool TryConnectBackend(BackendRegistry::Entry& entry, double now);
  // Tears down every connection flagged dead during a dispatch round.
  void FailDeadBackends();
  // Tears down a backend: ring removal, journal-replay of its sessions to
  // their new owners, re-forwarding of its in-flight ops in order.
  void FailBackend(const std::string& name);
  // One terminal outcome for a score orphaned by a failover: re-sent to
  // the session's new owner, or a typed-failure result to the client.
  void ReissueScore(const ScoreRef& ref);
  // Moves every session whose ring owner differs from its current owner
  // (after a join/drain/undrain): snapshot migration when the source is
  // connected, journal replay otherwise.
  void RebalanceSessions();
  Status MigrateSessionSnapshot(uint64_t session_id, SessionInfo& info);
  Status ReplaySessionJournal(uint64_t session_id, SessionInfo& info);
  // Waits until `conn` has no outstanding ingest ops (their acks decide
  // what the journal — and therefore any snapshot — may contain).
  Status QuiesceIngest(BackendConn& conn);
  // Blocking request/reply on one backend connection; interleaved frames
  // (score results, acks of other ops) dispatch through
  // ProcessBackendFrame while waiting.
  Status SyncCall(BackendConn& conn, const net::Frame& request,
                  net::Frame* reply);
  Status PumpBackendOnce(BackendConn& conn, int timeout_ms);

  void BeginShutdown();
  void UpdateConnectedCount();
  std::string BuildClusterJson(size_t backends_merged) const;

  const RouterOptions options_;
  BackendRegistry registry_;
  HashRing ring_;

  UniqueFd listen_fd_;
  int port_ = 0;
  UniqueFd wake_read_;
  UniqueFd wake_write_;
  std::atomic<bool> shutdown_requested_{false};
  bool draining_ = false;
  bool clients_goodbyed_ = false;
  bool stopped_ = false;
  double drain_deadline_micros_ = 0.0;
  Stopwatch clock_;

  uint64_t next_connection_id_ = 1;
  uint64_t next_task_id_ = 1;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, std::unique_ptr<ClientConn>> clients_;
  std::map<std::string, std::unique_ptr<BackendConn>> backends_;
  std::map<uint64_t, IngestTask> tasks_;
  std::map<uint64_t, SessionInfo> sessions_;

  // Forwarding freeze while a migration quiesces its source: acks keep
  // flowing, but no new runs leave the router until the move completes.
  bool forwarding_frozen_ = false;

  // Synchronous-exchange bookkeeping for SyncCall.
  std::set<uint64_t> sync_waiting_;
  std::map<uint64_t, net::Frame> sync_done_;
  bool awaiting_metrics_ = false;
  bool metrics_done_ = false;
  net::Frame metrics_reply_;

  // Client-side wire accounting; merged into the METRICS payload.
  serve::Metrics wire_metrics_;
  ClusterCounters counters_;
  std::atomic<size_t> connected_backends_{0};
};

}  // namespace tpgnn::cluster

#endif  // TPGNN_CLUSTER_ROUTER_H_
