#include "cluster/registry.h"

namespace tpgnn::cluster {

const char* BackendHealthName(BackendHealth health) {
  switch (health) {
    case BackendHealth::kDown:
      return "DOWN";
    case BackendHealth::kUp:
      return "UP";
  }
  return "UNKNOWN";
}

BackendRegistry::BackendRegistry(const RegistryOptions& options)
    : options_(options) {}

void BackendRegistry::Add(const BackendConfig& config) {
  Entry entry;
  entry.config = config;
  entries_.emplace(config.name, std::move(entry));
}

BackendRegistry::Entry* BackendRegistry::Find(const std::string& name) {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

const BackendRegistry::Entry* BackendRegistry::Find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(name);
  }
  return out;
}

size_t BackendRegistry::num_up() const {
  size_t up = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.health == BackendHealth::kUp) {
      ++up;
    }
  }
  return up;
}

bool BackendRegistry::ShouldConnect(const Entry& entry, double now) const {
  return entry.health == BackendHealth::kDown && !entry.draining &&
         now >= entry.next_connect_at;
}

void BackendRegistry::OnConnected(Entry& entry, double now) {
  entry.health = BackendHealth::kUp;
  entry.backoff = 0.0;
  entry.consecutive_probe_misses = 0;
  entry.last_probe_sent_at = -1.0;
  // First probe only after a full interval: the connect itself just
  // proved liveness.
  entry.next_connect_at = now;
  ++entry.connects;
}

void BackendRegistry::OnConnectFailed(Entry& entry, double now) {
  entry.backoff = entry.backoff <= 0.0
                      ? options_.reconnect_backoff_seconds
                      : entry.backoff * 2.0;
  if (entry.backoff > options_.reconnect_backoff_max_seconds) {
    entry.backoff = options_.reconnect_backoff_max_seconds;
  }
  entry.next_connect_at = now + entry.backoff;
}

void BackendRegistry::OnConnectionLost(Entry& entry, double now) {
  if (entry.health == BackendHealth::kUp) {
    ++entry.disconnects;
  }
  entry.health = BackendHealth::kDown;
  entry.last_probe_sent_at = -1.0;
  entry.consecutive_probe_misses = 0;
  // Lost connections retry after one base backoff, then double on
  // repeated failures like any other dial.
  entry.backoff = options_.reconnect_backoff_seconds;
  entry.next_connect_at = now + entry.backoff;
}

bool BackendRegistry::ProbeDue(const Entry& entry, double now) const {
  if (entry.health != BackendHealth::kUp || entry.last_probe_sent_at >= 0.0) {
    return false;
  }
  // next_connect_at doubles as "time of the last liveness proof" while up.
  return now - entry.next_connect_at >= options_.probe_interval_seconds;
}

uint64_t BackendRegistry::OnProbeSent(Entry& entry, double now) {
  entry.last_probe_sent_at = now;
  entry.probe_request_id = next_probe_id_++;
  ++entry.probes_sent;
  return entry.probe_request_id;
}

bool BackendRegistry::OnPong(Entry& entry, uint64_t request_id, double now) {
  if (entry.last_probe_sent_at < 0.0 ||
      request_id != entry.probe_request_id) {
    return false;
  }
  entry.last_probe_sent_at = -1.0;
  entry.consecutive_probe_misses = 0;
  // Liveness proven at `now`; the next probe is due a full interval later
  // (next_connect_at doubles as the last-proof stamp while up).
  entry.next_connect_at = now;
  return true;
}

bool BackendRegistry::ProbeExpired(Entry& entry, double now,
                                   bool* crossed_threshold) {
  *crossed_threshold = false;
  if (entry.health != BackendHealth::kUp || entry.last_probe_sent_at < 0.0 ||
      now - entry.last_probe_sent_at < options_.probe_timeout_seconds) {
    return false;
  }
  entry.last_probe_sent_at = -1.0;
  ++entry.probes_missed;
  ++entry.consecutive_probe_misses;
  *crossed_threshold =
      entry.consecutive_probe_misses >= options_.probe_failures_to_down;
  return true;
}

}  // namespace tpgnn::cluster
