#include "cluster/ring.h"

namespace tpgnn::cluster {

namespace {

uint64_t SplitMix64(uint64_t h) {
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

uint64_t RingPointOf(uint64_t session_id) { return SplitMix64(session_id); }

HashRing::HashRing(int vnodes_per_backend)
    : vnodes_(vnodes_per_backend < 1 ? 1 : vnodes_per_backend) {}

bool HashRing::AddBackend(const std::string& name) {
  if (!backends_.insert(name).second) {
    return false;
  }
  Rebuild();
  return true;
}

bool HashRing::RemoveBackend(const std::string& name) {
  if (backends_.erase(name) == 0) {
    return false;
  }
  Rebuild();
  return true;
}

const std::string* HashRing::OwnerOf(uint64_t session_id) const {
  if (points_.empty()) {
    return nullptr;
  }
  auto it = points_.lower_bound(RingPointOf(session_id));
  if (it == points_.end()) {
    it = points_.begin();  // Wrap past the highest point.
  }
  return &it->second;
}

void HashRing::Rebuild() {
  points_.clear();
  for (const std::string& name : backends_) {
    const uint64_t base = Fnv1a64(name);
    for (int replica = 0; replica < vnodes_; ++replica) {
      const uint64_t point =
          SplitMix64(base ^ SplitMix64(static_cast<uint64_t>(replica) + 1));
      auto [it, inserted] = points_.emplace(point, name);
      // Collision across backends: keep the smaller name. Iterating the
      // sorted backend set would make first-wins equivalent, but the
      // explicit rule keeps the invariant local and obvious.
      if (!inserted && name < it->second) {
        it->second = name;
      }
    }
  }
}

}  // namespace tpgnn::cluster
