#ifndef TPGNN_CLUSTER_REGISTRY_H_
#define TPGNN_CLUSTER_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

// Backend membership and health for the router tier: a socket-free state
// machine over (connect, probe, drain) transitions. The Router owns the
// actual sockets and feeds observations in ("connected", "connect
// failed", "pong arrived", "connection lost"); the registry answers the
// policy questions ("should I dial now?", "is a probe due?", "did that
// miss cross the failure threshold?"). Keeping the clock an explicit
// argument — seconds on any monotone scale — makes every transition unit
// testable with a fake clock (tests/cluster/registry_test.cc).
//
// Health model: a backend is kDown until a TCP connect succeeds, kUp
// while connected and answering PING probes, and back to kDown when the
// connection drops or `probe_failures_to_down` consecutive probes time
// out. Reconnects back off by `reconnect_backoff_seconds` (doubling,
// capped) so a flapping backend cannot spin the poll loop. Draining is an
// orthogonal administrative flag: a draining backend keeps its
// connection and health, but the router removes it from the ring and
// migrates its sessions away.

namespace tpgnn::cluster {

enum class BackendHealth : uint8_t {
  kDown = 0,  // Not connected; dial when the backoff allows.
  kUp = 1,    // Connected and probing clean.
};

const char* BackendHealthName(BackendHealth health);

struct BackendConfig {
  std::string name;  // Ring identity; must be unique and stable.
  std::string host = "127.0.0.1";
  int port = 0;
};

struct RegistryOptions {
  double probe_interval_seconds = 0.5;
  double probe_timeout_seconds = 1.0;
  // Consecutive probe timeouts before the backend is declared down.
  int probe_failures_to_down = 2;
  double reconnect_backoff_seconds = 0.25;
  double reconnect_backoff_max_seconds = 2.0;
};

class BackendRegistry {
 public:
  struct Entry {
    BackendConfig config;
    BackendHealth health = BackendHealth::kDown;
    bool draining = false;
    double next_connect_at = 0.0;  // Earliest allowed dial time.
    double backoff = 0.0;          // Current reconnect backoff.
    double last_probe_sent_at = -1.0;  // < 0: no probe outstanding.
    uint64_t probe_request_id = 0;
    int consecutive_probe_misses = 0;
    // Lifetime counters, surfaced in the router's cluster metrics.
    uint64_t connects = 0;
    uint64_t disconnects = 0;
    uint64_t probes_sent = 0;
    uint64_t probes_missed = 0;
  };

  explicit BackendRegistry(const RegistryOptions& options);

  // Registers a backend (idempotent by name; the config of a repeat Add
  // is ignored).
  void Add(const BackendConfig& config);

  Entry* Find(const std::string& name);
  const Entry* Find(const std::string& name) const;
  // Names in deterministic (sorted) order.
  std::vector<std::string> names() const;
  size_t size() const { return entries_.size(); }
  size_t num_up() const;

  // --- Transitions, driven by the router's poll loop ---------------------

  // True when a down, non-draining backend may be dialed at `now`.
  bool ShouldConnect(const Entry& entry, double now) const;
  void OnConnected(Entry& entry, double now);
  void OnConnectFailed(Entry& entry, double now);
  void OnConnectionLost(Entry& entry, double now);

  // True when an up backend with no outstanding probe is due for one.
  bool ProbeDue(const Entry& entry, double now) const;
  // Records the probe send; returns the request id to put on the wire.
  uint64_t OnProbeSent(Entry& entry, double now);
  // Matches a PONG. False for a stale id (a probe already written off).
  bool OnPong(Entry& entry, uint64_t request_id, double now);
  // True when the outstanding probe has passed its deadline; records the
  // miss. `*crossed_threshold` reports whether this miss was the one that
  // exhausts probe_failures_to_down — the caller then tears the
  // connection down (OnConnectionLost), which is what actually moves the
  // backend to kDown.
  bool ProbeExpired(Entry& entry, double now, bool* crossed_threshold);

  void SetDraining(Entry& entry, bool draining) { entry.draining = draining; }

  const RegistryOptions& options() const { return options_; }

 private:
  const RegistryOptions options_;
  // std::map: deterministic iteration for the poll loop and tests.
  std::map<std::string, Entry> entries_;
  uint64_t next_probe_id_ = 1;
};

}  // namespace tpgnn::cluster

#endif  // TPGNN_CLUSTER_REGISTRY_H_
