#ifndef TPGNN_CLUSTER_RING_H_
#define TPGNN_CLUSTER_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

// Consistent-hash ring mapping session ids onto backend names.
//
// Each backend contributes `vnodes_per_backend` virtual points on a
// 64-bit ring; a session hashes to a point and is owned by the first
// backend point at or after it (wrapping). Virtual points smooth the
// per-backend share toward 1/N, and adding or removing one backend moves
// only the sessions in the ranges its points covered — ~1/N of the keys,
// never a reshuffle of the survivors (tests/cluster/ring_test.cc pins
// both properties).
//
// Determinism is part of the contract: points come from explicit FNV-1a /
// splitmix64 mixing — never std::hash — so two routers built from the
// same backend-name set (in any insertion order, in different processes,
// across restarts) place every session identically. The ring is rebuilt
// from the name set on every membership change, making placement a pure
// function of the set.

namespace tpgnn::cluster {

// The session-id point hash. Exposed so tests can place sessions on
// chosen backends; matches serve::SessionRouter's splitmix64 mixing.
uint64_t RingPointOf(uint64_t session_id);

class HashRing {
 public:
  explicit HashRing(int vnodes_per_backend = 64);

  // False (and no change) when the backend is already present / absent.
  bool AddBackend(const std::string& name);
  bool RemoveBackend(const std::string& name);

  bool Contains(const std::string& name) const {
    return backends_.count(name) > 0;
  }
  size_t num_backends() const { return backends_.size(); }
  std::vector<std::string> backend_names() const {
    return {backends_.begin(), backends_.end()};
  }

  // Owning backend of `session_id`; nullptr when the ring is empty. The
  // pointer is valid until the next membership change.
  const std::string* OwnerOf(uint64_t session_id) const;

 private:
  void Rebuild();

  const int vnodes_;
  std::set<std::string> backends_;
  // Virtual point -> owning backend. Point collisions between different
  // backends keep the lexicographically smaller name, so the resolution
  // is insertion-order independent.
  std::map<uint64_t, std::string> points_;
};

}  // namespace tpgnn::cluster

#endif  // TPGNN_CLUSTER_RING_H_
