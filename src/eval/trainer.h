#ifndef TPGNN_EVAL_TRAINER_H_
#define TPGNN_EVAL_TRAINER_H_

#include <cstdint>
#include <vector>

#include "eval/classifier.h"
#include "eval/metrics.h"
#include "graph/temporal_graph.h"

// End-to-end training loop (Sec. IV-D / V-D): Adam at lr 1e-3, binary
// cross-entropy on the sigmoid of the graph logit, graph order reshuffled
// every epoch.
//
// Two execution modes (see DESIGN.md §"Threading model"):
//  * batch_size == 1 (default): the exact seed behaviour — one optimizer
//    step per graph, a single sequential RNG stream shared by shuffling and
//    the forward passes.
//  * batch_size > 1: mini-batch gradient accumulation. Workers run
//    forward+backward on per-graph autograd tapes concurrently with
//    parameter gradients redirected into thread-private shadow buffers
//    (tensor::ShadowGradScope); the main thread then sums the shadow
//    buffers in batch order and takes one Adam step. Shuffling stays on the
//    main thread and each graph's RNG is derived from (seed, epoch,
//    position), so a given (seed, batch_size) run is bit-identical
//    regardless of num_threads.

namespace tpgnn::eval {

struct TrainOptions {
  int64_t epochs = 10;
  float learning_rate = 1e-3f;
  uint64_t seed = 0;
  // If positive, skip training graphs with more edges (runtime guard;
  // unlimited by default).
  int64_t max_edges = 0;
  // Global gradient-norm clipping applied before each optimizer step;
  // essential for the recurrent models on long edge sequences. <= 0
  // disables.
  float clip_norm = 5.0f;
  // Graphs per optimizer step. 1 reproduces the seed trainer exactly.
  int64_t batch_size = 1;
  // Worker threads for intra-batch forward/backward. <= 0 resolves to
  // ThreadPool::DefaultNumThreads() (TPGNN_NUM_THREADS). Ignored when
  // batch_size == 1.
  int64_t num_threads = 1;
};

struct TrainResult {
  std::vector<double> epoch_losses;  // Mean BCE per epoch.
};

TrainResult TrainClassifier(GraphClassifier& model,
                            const graph::GraphDataset& train,
                            const TrainOptions& options);

// Evaluates on `test` (threshold 0.5) and returns positive-class metrics.
// Graphs are sharded across threads (inference is NoGradGuard-pure per
// graph); confusion counts are reduced in dataset order, so the result is
// bit-identical to the serial path for any thread count. num_threads <= 0
// uses the global pool (TPGNN_NUM_THREADS); otherwise a dedicated pool of
// exactly that size.
Metrics EvaluateClassifier(GraphClassifier& model,
                           const graph::GraphDataset& test,
                           int num_threads = 0);

// Mean per-graph inference time in microseconds over `test`, measured
// per graph on the worker that runs it and averaged in dataset order.
double MeasureInferenceMicros(GraphClassifier& model,
                              const graph::GraphDataset& test,
                              int num_threads = 0);

}  // namespace tpgnn::eval

#endif  // TPGNN_EVAL_TRAINER_H_
