#ifndef TPGNN_EVAL_TRAINER_H_
#define TPGNN_EVAL_TRAINER_H_

#include <cstdint>
#include <vector>

#include "eval/classifier.h"
#include "eval/metrics.h"
#include "graph/temporal_graph.h"

// End-to-end training loop (Sec. IV-D / V-D): Adam at lr 1e-3, binary
// cross-entropy on the sigmoid of the graph logit, one optimizer step per
// graph, graph order reshuffled every epoch.

namespace tpgnn::eval {

struct TrainOptions {
  int64_t epochs = 10;
  float learning_rate = 1e-3f;
  uint64_t seed = 0;
  // If positive, skip training graphs with more edges (runtime guard;
  // unlimited by default).
  int64_t max_edges = 0;
  // Global gradient-norm clipping applied before each optimizer step;
  // essential for the recurrent models on long edge sequences. <= 0
  // disables.
  float clip_norm = 5.0f;
};

struct TrainResult {
  std::vector<double> epoch_losses;  // Mean BCE per epoch.
};

TrainResult TrainClassifier(GraphClassifier& model,
                            const graph::GraphDataset& train,
                            const TrainOptions& options);

// Evaluates on `test` (threshold 0.5) and returns positive-class metrics.
Metrics EvaluateClassifier(GraphClassifier& model,
                           const graph::GraphDataset& test);

// Mean per-graph inference time in microseconds over `test`.
double MeasureInferenceMicros(GraphClassifier& model,
                              const graph::GraphDataset& test);

}  // namespace tpgnn::eval

#endif  // TPGNN_EVAL_TRAINER_H_
