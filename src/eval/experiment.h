#ifndef TPGNN_EVAL_EXPERIMENT_H_
#define TPGNN_EVAL_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/classifier.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "graph/temporal_graph.h"

// Multi-seed experiment runner: builds a fresh model per seed, trains on the
// train split, evaluates on the test split, and aggregates mean +/- std —
// the protocol behind every accuracy table in the paper (5 runs, Sec. V-D).

namespace tpgnn::eval {

using ClassifierFactory =
    std::function<std::unique_ptr<GraphClassifier>(uint64_t seed)>;

struct ExperimentOptions {
  int64_t num_seeds = 5;
  uint64_t base_seed = 1;
  TrainOptions train;
};

struct ExperimentResult {
  std::string model_name;
  AggregateMetrics metrics;
  double train_seconds = 0.0;
  double inference_micros_per_graph = 0.0;
};

ExperimentResult RunExperiment(const ClassifierFactory& factory,
                               const graph::GraphDataset& train,
                               const graph::GraphDataset& test,
                               const ExperimentOptions& options);

// Markdown-ish table printer: one row per result with F1/Precision/Recall
// cells formatted as mean +/- std percentages.
void PrintResultsTable(const std::string& title,
                       const std::vector<ExperimentResult>& results);

}  // namespace tpgnn::eval

#endif  // TPGNN_EVAL_EXPERIMENT_H_
