#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace tpgnn::eval {

void ConfusionCounts::Add(int predicted, int actual) {
  TPGNN_CHECK(predicted == 0 || predicted == 1);
  TPGNN_CHECK(actual == 0 || actual == 1);
  if (predicted == 1 && actual == 1) {
    ++tp;
  } else if (predicted == 1 && actual == 0) {
    ++fp;
  } else if (predicted == 0 && actual == 1) {
    ++fn;
  } else {
    ++tn;
  }
}

Metrics ComputeMetrics(const ConfusionCounts& c) {
  Metrics m;
  const double tp = static_cast<double>(c.tp);
  if (c.tp + c.fp > 0) {
    m.precision = tp / static_cast<double>(c.tp + c.fp);
  }
  if (c.tp + c.fn > 0) {
    m.recall = tp / static_cast<double>(c.tp + c.fn);
  }
  if (m.precision + m.recall > 0.0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  if (c.total() > 0) {
    m.accuracy =
        static_cast<double>(c.tp + c.tn) / static_cast<double>(c.total());
  }
  return m;
}

AggregateMetrics Aggregate(const std::vector<Metrics>& runs) {
  AggregateMetrics agg;
  agg.runs = static_cast<int64_t>(runs.size());
  if (runs.empty()) return agg;
  auto mean_of = [&](double Metrics::*field) {
    double total = 0.0;
    for (const Metrics& m : runs) total += m.*field;
    return total / static_cast<double>(runs.size());
  };
  auto std_of = [&](double Metrics::*field, double mean) {
    if (runs.size() < 2) return 0.0;
    double total = 0.0;
    for (const Metrics& m : runs) {
      total += (m.*field - mean) * (m.*field - mean);
    }
    return std::sqrt(total / static_cast<double>(runs.size() - 1));
  };
  agg.mean.precision = mean_of(&Metrics::precision);
  agg.mean.recall = mean_of(&Metrics::recall);
  agg.mean.f1 = mean_of(&Metrics::f1);
  agg.mean.accuracy = mean_of(&Metrics::accuracy);
  agg.stddev.precision = std_of(&Metrics::precision, agg.mean.precision);
  agg.stddev.recall = std_of(&Metrics::recall, agg.mean.recall);
  agg.stddev.f1 = std_of(&Metrics::f1, agg.mean.f1);
  agg.stddev.accuracy = std_of(&Metrics::accuracy, agg.mean.accuracy);
  return agg;
}

double ComputeAuc(const std::vector<double>& scores,
                  const std::vector<int>& labels) {
  TPGNN_CHECK_EQ(scores.size(), labels.size());
  // Rank-based (Mann-Whitney U): sort by score, assign average ranks to
  // ties, AUC = (sum of positive ranks - n_pos(n_pos+1)/2) / (n_pos*n_neg).
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> rank(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double avg_rank = 0.5 * (static_cast<double>(i) +
                                   static_cast<double>(j)) +
                            1.0;
    for (size_t k = i; k <= j; ++k) {
      rank[order[k]] = avg_rank;
    }
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  int64_t n_pos = 0;
  int64_t n_neg = 0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] == 1) {
      pos_rank_sum += rank[k];
      ++n_pos;
    } else {
      ++n_neg;
    }
  }
  if (n_pos == 0 || n_neg == 0) {
    return 0.5;
  }
  const double u = pos_rank_sum -
                   static_cast<double>(n_pos) *
                       (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

std::string FormatCell(double mean, double stddev) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%5.2f+/-%4.2f", 100.0 * mean,
                100.0 * stddev);
  return std::string(buffer);
}

}  // namespace tpgnn::eval
