#include "eval/trainer.h"

#include <cmath>
#include <memory>
#include <numeric>
#include <optional>

#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/buffer_pool.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace tpgnn::eval {

namespace {

// Scales all gradients so their global L2 norm is at most `clip_norm`.
void ClipGradNorm(std::vector<tensor::Tensor>& params, float clip_norm) {
  double total = 0.0;
  for (const tensor::Tensor& p : params) {
    for (float g : p.grad()) {
      total += static_cast<double>(g) * g;
    }
  }
  const double norm = std::sqrt(total);
  if (norm <= static_cast<double>(clip_norm) || norm == 0.0) {
    return;
  }
  const float scale = clip_norm / static_cast<float>(norm);
  for (tensor::Tensor& p : params) {
    for (float& g : p.MutableGrad()) {
      g *= scale;
    }
  }
}

// Deterministic per-graph RNG seed for batched training: a function of
// (run seed, epoch, position in the shuffled order) only, never of which
// thread executes the graph.
uint64_t GraphSeed(uint64_t seed, int64_t epoch, int64_t position) {
  uint64_t state = seed ^ 0x62617463686c6f6fULL;
  state += 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(epoch + 1);
  state += 0xbf58476d1ce4e5b9ULL * static_cast<uint64_t>(position + 1);
  return SplitMix64(state);
}

// The seed trainer, verbatim: one Adam step per graph, a single RNG stream
// consumed sequentially by shuffling and the training-mode forward passes.
TrainResult TrainSerial(GraphClassifier& model,
                        const graph::GraphDataset& train,
                        const TrainOptions& options) {
  Rng rng(options.seed ^ 0x7261696e65724cULL);
  std::vector<tensor::Tensor> params = model.TrainableParameters();
  nn::Adam optimizer(params, options.learning_rate);

  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    double loss_sum = 0.0;
    int64_t count = 0;
    for (size_t idx : order) {
      const graph::LabeledGraph& sample = train[idx];
      if (options.max_edges > 0 &&
          sample.graph.num_edges() > options.max_edges) {
        continue;
      }
      optimizer.ZeroGrad();
      tensor::Tensor logit =
          model.ForwardLogit(sample.graph, /*training=*/true, rng);
      tensor::Tensor target =
          tensor::Tensor::Scalar(static_cast<float>(sample.label));
      tensor::Tensor loss =
          tensor::BinaryCrossEntropyWithLogits(logit, target);
      loss.Backward();
      if (options.clip_norm > 0.0f) {
        ClipGradNorm(params, options.clip_norm);
      }
      optimizer.Step();
      loss_sum += static_cast<double>(loss.item());
      ++count;
    }
    result.epoch_losses.push_back(count > 0 ? loss_sum / count : 0.0);
  }
  return result;
}

// Mini-batch gradient accumulation: graphs within a batch run
// forward+backward concurrently on per-graph tapes; each worker redirects
// parameter gradients into a thread-private ShadowGradScope, and the main
// thread reduces the per-graph shadow buffers in batch order before the
// single Adam step. Identical results for any num_threads.
TrainResult TrainBatched(GraphClassifier& model,
                         const graph::GraphDataset& train,
                         const TrainOptions& options, int num_threads) {
  Rng shuffle_rng(options.seed ^ 0x7261696e65724cULL);
  std::vector<tensor::Tensor> params = model.TrainableParameters();
  std::vector<std::shared_ptr<tensor::TensorImpl>> param_impls;
  param_impls.reserve(params.size());
  for (const tensor::Tensor& p : params) {
    param_impls.push_back(p.impl());
  }
  nn::Adam optimizer(params, options.learning_rate);

  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = nullptr;
  if (num_threads > 0 && num_threads != ThreadPool::DefaultNumThreads()) {
    local_pool.emplace(num_threads);
    pool = &*local_pool;
  } else {
    pool = &ThreadPool::Global();
  }

  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  const int64_t batch_size = options.batch_size;

  TrainResult result;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    shuffle_rng.Shuffle(order);
    // The max_edges filter is applied on the main thread so batch
    // boundaries (and thus step count and RNG positions) are
    // schedule-independent.
    std::vector<size_t> epoch_order;
    epoch_order.reserve(order.size());
    for (size_t idx : order) {
      if (options.max_edges > 0 &&
          train[idx].graph.num_edges() > options.max_edges) {
        continue;
      }
      epoch_order.push_back(idx);
    }

    double loss_sum = 0.0;
    const int64_t total = static_cast<int64_t>(epoch_order.size());
    for (int64_t start = 0; start < total; start += batch_size) {
      const int64_t bsize = std::min<int64_t>(batch_size, total - start);
      optimizer.ZeroGrad();

      // Per-graph outputs, indexed by position within the batch.
      std::vector<float> batch_losses(static_cast<size_t>(bsize), 0.0f);
      std::vector<std::vector<std::vector<float>>> shadow(
          static_cast<size_t>(bsize));

      pool->ParallelFor(0, bsize, /*grain=*/1, [&](int64_t bi) {
        const size_t idx = epoch_order[static_cast<size_t>(start + bi)];
        const graph::LabeledGraph& sample = train[idx];
        Rng graph_rng(GraphSeed(options.seed, epoch, start + bi));
        tensor::ShadowGradScope scope(param_impls);
        tensor::Tensor logit =
            model.ForwardLogit(sample.graph, /*training=*/true, graph_rng);
        tensor::Tensor target =
            tensor::Tensor::Scalar(static_cast<float>(sample.label));
        tensor::Tensor loss =
            tensor::BinaryCrossEntropyWithLogits(logit, target);
        loss.Backward();
        batch_losses[static_cast<size_t>(bi)] = loss.item();
        // Move the shadow buffers out instead of copying; they are handed
        // back to the pool after the reduction below.
        std::vector<std::vector<float>> grads(param_impls.size());
        for (size_t p = 0; p < param_impls.size(); ++p) {
          grads[p] = scope.TakeShadowGrad(p);
        }
        shadow[static_cast<size_t>(bi)] = std::move(grads);
      });

      // Deterministic reduction: batch order first, parameter order second.
      for (int64_t bi = 0; bi < bsize; ++bi) {
        auto& grads = shadow[static_cast<size_t>(bi)];
        for (size_t p = 0; p < param_impls.size(); ++p) {
          std::vector<float>& g = grads[p];
          if (g.empty()) continue;
          param_impls[p]->AccumulateGrad(g);
          util::ReleaseBuffer(std::move(g));
        }
        loss_sum += static_cast<double>(batch_losses[static_cast<size_t>(bi)]);
      }

      if (options.clip_norm > 0.0f) {
        ClipGradNorm(params, options.clip_norm);
      }
      optimizer.Step();
    }
    result.epoch_losses.push_back(
        total > 0 ? loss_sum / static_cast<double>(total) : 0.0);
  }
  return result;
}

// Resolves the evaluation pool: the global one (honouring
// TPGNN_NUM_THREADS) unless the caller pinned an explicit thread count.
ThreadPool* ResolvePool(int num_threads,
                        std::optional<ThreadPool>& local_pool) {
  if (num_threads > 0 && num_threads != ThreadPool::DefaultNumThreads()) {
    local_pool.emplace(num_threads);
    return &*local_pool;
  }
  return &ThreadPool::Global();
}

}  // namespace

TrainResult TrainClassifier(GraphClassifier& model,
                            const graph::GraphDataset& train,
                            const TrainOptions& options) {
  TPGNN_CHECK(!train.empty());
  TPGNN_CHECK_GE(options.batch_size, 1);
  if (options.batch_size == 1) {
    // Bit-exact seed path; threads cannot help inside a one-graph batch.
    return TrainSerial(model, train, options);
  }
  const int num_threads = options.num_threads <= 0
                              ? ThreadPool::DefaultNumThreads()
                              : static_cast<int>(options.num_threads);
  return TrainBatched(model, train, options, num_threads);
}

Metrics EvaluateClassifier(GraphClassifier& model,
                           const graph::GraphDataset& test, int num_threads) {
  TPGNN_CHECK(!test.empty());
  const int64_t n = static_cast<int64_t>(test.size());
  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = ResolvePool(num_threads, local_pool);
  // One slot per graph; slot i only ever holds graph i's prediction, so the
  // reduction below is independent of scheduling.
  std::vector<int> predicted(static_cast<size_t>(n), 0);
  const int64_t grain =
      std::max<int64_t>(1, n / (4 * static_cast<int64_t>(pool->num_threads())));
  pool->ParallelFor(0, n, grain, [&](int64_t i) {
    tensor::NoGradGuard no_grad;  // Per worker thread, not per call site.
    Rng rng(0);  // Inference path must not depend on it.
    tensor::Tensor logit = model.ForwardLogit(
        test[static_cast<size_t>(i)].graph, /*training=*/false, rng);
    predicted[static_cast<size_t>(i)] = logit.item() > 0.0f ? 1 : 0;
  });
  ConfusionCounts counts;
  for (int64_t i = 0; i < n; ++i) {
    counts.Add(predicted[static_cast<size_t>(i)],
               test[static_cast<size_t>(i)].label);
  }
  return ComputeMetrics(counts);
}

double MeasureInferenceMicros(GraphClassifier& model,
                              const graph::GraphDataset& test,
                              int num_threads) {
  TPGNN_CHECK(!test.empty());
  const int64_t n = static_cast<int64_t>(test.size());
  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = ResolvePool(num_threads, local_pool);
  std::vector<double> micros(static_cast<size_t>(n), 0.0);
  const int64_t grain =
      std::max<int64_t>(1, n / (4 * static_cast<int64_t>(pool->num_threads())));
  pool->ParallelFor(0, n, grain, [&](int64_t i) {
    tensor::NoGradGuard no_grad;
    Rng rng(0);
    Stopwatch watch;
    tensor::Tensor logit = model.ForwardLogit(
        test[static_cast<size_t>(i)].graph, /*training=*/false, rng);
    (void)logit;
    micros[static_cast<size_t>(i)] = watch.ElapsedMicros();
  });
  double total = 0.0;
  for (double m : micros) total += m;
  return total / static_cast<double>(n);
}

}  // namespace tpgnn::eval
