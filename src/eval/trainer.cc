#include "eval/trainer.h"

#include <cmath>
#include <numeric>

#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace tpgnn::eval {

namespace {

// Scales all gradients so their global L2 norm is at most `clip_norm`.
void ClipGradNorm(std::vector<tensor::Tensor>& params, float clip_norm) {
  double total = 0.0;
  for (const tensor::Tensor& p : params) {
    for (float g : p.grad()) {
      total += static_cast<double>(g) * g;
    }
  }
  const double norm = std::sqrt(total);
  if (norm <= static_cast<double>(clip_norm) || norm == 0.0) {
    return;
  }
  const float scale = clip_norm / static_cast<float>(norm);
  for (tensor::Tensor& p : params) {
    for (float& g : p.MutableGrad()) {
      g *= scale;
    }
  }
}

}  // namespace

TrainResult TrainClassifier(GraphClassifier& model,
                            const graph::GraphDataset& train,
                            const TrainOptions& options) {
  TPGNN_CHECK(!train.empty());
  Rng rng(options.seed ^ 0x7261696e65724cULL);
  std::vector<tensor::Tensor> params = model.TrainableParameters();
  nn::Adam optimizer(params, options.learning_rate);

  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    double loss_sum = 0.0;
    int64_t count = 0;
    for (size_t idx : order) {
      const graph::LabeledGraph& sample = train[idx];
      if (options.max_edges > 0 &&
          sample.graph.num_edges() > options.max_edges) {
        continue;
      }
      optimizer.ZeroGrad();
      tensor::Tensor logit =
          model.ForwardLogit(sample.graph, /*training=*/true, rng);
      tensor::Tensor target =
          tensor::Tensor::Scalar(static_cast<float>(sample.label));
      tensor::Tensor loss =
          tensor::BinaryCrossEntropyWithLogits(logit, target);
      loss.Backward();
      if (options.clip_norm > 0.0f) {
        ClipGradNorm(params, options.clip_norm);
      }
      optimizer.Step();
      loss_sum += static_cast<double>(loss.item());
      ++count;
    }
    result.epoch_losses.push_back(count > 0 ? loss_sum / count : 0.0);
  }
  return result;
}

Metrics EvaluateClassifier(GraphClassifier& model,
                           const graph::GraphDataset& test) {
  TPGNN_CHECK(!test.empty());
  tensor::NoGradGuard no_grad;
  Rng rng(0);  // Inference path must not depend on it.
  ConfusionCounts counts;
  for (const graph::LabeledGraph& sample : test) {
    tensor::Tensor logit =
        model.ForwardLogit(sample.graph, /*training=*/false, rng);
    const int predicted = logit.item() > 0.0f ? 1 : 0;  // Sigmoid > 0.5.
    counts.Add(predicted, sample.label);
  }
  return ComputeMetrics(counts);
}

double MeasureInferenceMicros(GraphClassifier& model,
                              const graph::GraphDataset& test) {
  TPGNN_CHECK(!test.empty());
  tensor::NoGradGuard no_grad;
  Rng rng(0);
  Stopwatch watch;
  for (const graph::LabeledGraph& sample : test) {
    tensor::Tensor logit =
        model.ForwardLogit(sample.graph, /*training=*/false, rng);
    (void)logit;
  }
  return watch.ElapsedMicros() / static_cast<double>(test.size());
}

}  // namespace tpgnn::eval
