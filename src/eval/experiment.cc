#include "eval/experiment.h"

#include <cstdio>

#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace tpgnn::eval {

ExperimentResult RunExperiment(const ClassifierFactory& factory,
                               const graph::GraphDataset& train,
                               const graph::GraphDataset& test,
                               const ExperimentOptions& options) {
  TPGNN_CHECK_GT(options.num_seeds, 0);
  ExperimentResult result;
  Stopwatch total_watch;

  // Seeds are independent (fresh model, private RNG streams), so they run
  // as parallel cells on the global pool. Every per-seed output lands in
  // slot s, and the aggregation below walks slots in seed order, so the
  // result is bit-identical to the serial loop for any thread count.
  struct SeedRun {
    std::string model_name;
    Metrics metrics;
    double inference_micros = 0.0;
  };
  std::vector<SeedRun> seed_runs = ParallelMap<SeedRun>(
      ThreadPool::Global(), options.num_seeds, /*grain=*/1, [&](int64_t s) {
        const uint64_t seed = options.base_seed + static_cast<uint64_t>(s);
        std::unique_ptr<GraphClassifier> model = factory(seed);
        TrainOptions train_options = options.train;
        train_options.seed = seed;
        TrainClassifier(*model, train, train_options);
        SeedRun run;
        run.model_name = model->name();
        run.metrics = EvaluateClassifier(*model, test);
        run.inference_micros = MeasureInferenceMicros(*model, test);
        return run;
      });

  std::vector<Metrics> runs;
  runs.reserve(seed_runs.size());
  double inference_sum = 0.0;
  for (const SeedRun& run : seed_runs) {
    if (result.model_name.empty()) {
      result.model_name = run.model_name;
    }
    runs.push_back(run.metrics);
    inference_sum += run.inference_micros;
  }
  result.metrics = Aggregate(runs);
  result.train_seconds = total_watch.ElapsedSeconds();
  result.inference_micros_per_graph =
      inference_sum / static_cast<double>(options.num_seeds);
  return result;
}

void PrintResultsTable(const std::string& title,
                       const std::vector<ExperimentResult>& results) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-22s | %14s | %14s | %14s | %10s\n", "Model", "F1 Score",
              "Precision", "Recall", "us/graph");
  std::printf("%s\n", std::string(88, '-').c_str());
  for (const ExperimentResult& r : results) {
    std::printf("%-22s | %14s | %14s | %14s | %10.1f\n",
                r.model_name.c_str(),
                FormatCell(r.metrics.mean.f1, r.metrics.stddev.f1).c_str(),
                FormatCell(r.metrics.mean.precision, r.metrics.stddev.precision)
                    .c_str(),
                FormatCell(r.metrics.mean.recall, r.metrics.stddev.recall)
                    .c_str(),
                r.inference_micros_per_graph);
  }
  std::fflush(stdout);
}

}  // namespace tpgnn::eval
