#ifndef TPGNN_EVAL_METRICS_H_
#define TPGNN_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

// Binary classification metrics (Sec. V-C). Following the paper's tables
// (high recall / ~prevalence precision for weak baselines), precision,
// recall and F1 are computed with respect to the positive (label 1) class.

namespace tpgnn::eval {

struct ConfusionCounts {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;
  int64_t tn = 0;

  void Add(int predicted, int actual);
  int64_t total() const { return tp + fp + fn + tn; }
};

struct Metrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;
};

Metrics ComputeMetrics(const ConfusionCounts& counts);

// Mean and sample standard deviation over per-seed runs.
struct AggregateMetrics {
  Metrics mean;
  Metrics stddev;
  int64_t runs = 0;
};

AggregateMetrics Aggregate(const std::vector<Metrics>& runs);

// "98.53 +/- 0.33" style cell (percentages).
std::string FormatCell(double mean, double stddev);

// Area under the ROC curve for raw scores (higher = more positive) against
// binary labels; ties contribute 1/2 (Mann-Whitney formulation). Returns
// 0.5 when either class is absent.
double ComputeAuc(const std::vector<double>& scores,
                  const std::vector<int>& labels);

}  // namespace tpgnn::eval

#endif  // TPGNN_EVAL_METRICS_H_
