#ifndef TPGNN_EVAL_CLASSIFIER_H_
#define TPGNN_EVAL_CLASSIFIER_H_

#include <string>
#include <vector>

#include "graph/temporal_graph.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Common interface of every dynamic graph classifier in this repository
// (TP-GNN, its ablation variants, and all twelve baselines): a model maps a
// dynamic network to a single logit; Sigmoid(logit) > 0.5 predicts the
// positive class (Definition 3).

namespace tpgnn::eval {

class GraphClassifier {
 public:
  virtual ~GraphClassifier() = default;

  // Computes the classification logit ([1] tensor) for one graph. `training`
  // enables stochastic behaviour (e.g. shuffling of equal-timestamp edges);
  // `rng` drives it.
  virtual tensor::Tensor ForwardLogit(const graph::TemporalGraph& graph,
                                      bool training, Rng& rng) = 0;

  // Trainable parameters for the optimizer.
  virtual std::vector<tensor::Tensor> TrainableParameters() = 0;

  // Display name used in result tables.
  virtual std::string name() const = 0;
};

}  // namespace tpgnn::eval

#endif  // TPGNN_EVAL_CLASSIFIER_H_
