// Networked serving front-end: loads a quickstart checkpoint and serves
// the TP-GNN wire protocol on a TCP port until a SHUTDOWN frame (e.g. from
// bench_net --shutdown=1 or net::Client::Shutdown) or SIGINT/SIGTERM.
//
// Three-step flow (README "Serving over the network"):
//
//   $ ./build/examples/quickstart --save_checkpoint=/tmp/tpgnn.ckpt
//   $ ./build/examples/serve_server --checkpoint=/tmp/tpgnn.ckpt --port=7471
//   $ ./build/bench/bench_net --port=7471 --shutdown=1
//
// Without --checkpoint the server serves a freshly initialized model (same
// plumbing, untrained scores). --port=0 binds an ephemeral port; pass
// --port_file=PATH to have the bound port written there so scripts (and the
// CI smoke step) can discover it without racing on a fixed port.
//
// Flags: --checkpoint=PATH   snapshot to serve (default: none)
//        --port=N            TCP port, 0 = ephemeral (default 7471)
//        --port_file=PATH    write the bound port here after listen
//        --shards=N          session shards (default 4)
//        --max_pending=N     bounded score-queue depth (default 256)
//        --max_batch=N       micro-batch drained per engine pump (default 64)

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/model.h"
#include "net/server.h"
#include "serve/inference_engine.h"

namespace core = tpgnn::core;
namespace net = tpgnn::net;
namespace serve = tpgnn::serve;

namespace {

net::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) {
    g_server->RequestShutdown();  // Async-signal-safe: atomic + pipe write.
  }
}

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return default_value;
}

int64_t FlagInt(int argc, char** argv, const std::string& name,
                int64_t default_value) {
  const std::string value = FlagValue(argc, argv, name, "");
  return value.empty() ? default_value : std::stoll(value);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string checkpoint = FlagValue(argc, argv, "checkpoint", "");
  const std::string port_file = FlagValue(argc, argv, "port_file", "");
  const int64_t port = FlagInt(argc, argv, "port", 7471);
  const int64_t shards = FlagInt(argc, argv, "shards", 4);
  const int64_t max_pending = FlagInt(argc, argv, "max_pending", 256);
  const int64_t max_batch = FlagInt(argc, argv, "max_batch", 64);

  // Must match the snapshot's config; both use the quickstart's
  // paper-default SUM configuration.
  core::TpGnnConfig config;
  config.updater = core::Updater::kSum;

  serve::EngineOptions engine_options;
  engine_options.num_shards = static_cast<int>(shards);
  engine_options.max_pending_scores = static_cast<size_t>(max_pending);
  engine_options.max_batch = static_cast<size_t>(max_batch);
  serve::InferenceEngine engine(config, /*seed=*/1, engine_options);

  if (!checkpoint.empty()) {
    tpgnn::Status status = engine.LoadSnapshot(checkpoint);
    if (!status.ok()) {
      std::fprintf(stderr, "snapshot rejected: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("serving snapshot: %s\n", checkpoint.c_str());
  } else {
    std::printf("serving untrained model (no --checkpoint)\n");
  }

  net::ServerOptions server_options;
  server_options.port = static_cast<int>(port);
  net::Server server(&engine, server_options);
  if (tpgnn::Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
  }
  std::printf("listening on %s:%d (%lld shards, queue depth %lld)\n",
              server_options.bind_address.c_str(), server.port(),
              static_cast<long long>(shards),
              static_cast<long long>(max_pending));
  std::fflush(stdout);

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  server.Run();
  g_server = nullptr;

  const serve::MetricsSnapshot snap = engine.metrics().Snapshot();
  std::printf("%s\n", snap.ToString().c_str());
  std::printf("wire: %llu/%llu frames in/out, %llu/%llu bytes in/out, "
              "%llu connections, %llu protocol errors\n",
              static_cast<unsigned long long>(snap.frames_received),
              static_cast<unsigned long long>(snap.frames_sent),
              static_cast<unsigned long long>(snap.bytes_received),
              static_cast<unsigned long long>(snap.bytes_sent),
              static_cast<unsigned long long>(snap.connections_accepted),
              static_cast<unsigned long long>(snap.protocol_errors));
  return 0;
}
