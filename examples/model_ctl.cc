// Model lifecycle admin CLI (DESIGN.md §4.8): speaks the MODEL_LOAD /
// MODEL_ACTIVATE / MODEL_STATUS frames to a running serve_server — or to a
// serve_router, which rolls the verb across every backend one at a time and
// stops at the first failure (README "Rolling a new checkpoint").
//
// Usage:
//   model_ctl [--host=H] --port=N load <name> <checkpoint-path>
//   model_ctl [--host=H] --port=N activate <name> [--rebase]
//   model_ctl [--host=H] --port=N candidate <name> <fraction>
//   model_ctl [--host=H] --port=N shadow <name>
//   model_ctl [--host=H] --port=N clear-candidate|clear-shadow
//   model_ctl [--host=H] --port=N status
//
// `activate` drains by default (old sessions finish on their pinned
// version); --rebase refolds live sessions onto the new primary at their
// next touch. `status` prints the registry's JSON (per backend when
// pointed at a router). Exits 0 on success, 1 with the server's typed
// error on stderr otherwise.

#include <cstdio>
#include <string>
#include <vector>

#include "net/client.h"

namespace net = tpgnn::net;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: model_ctl [--host=H] --port=N <command>\n"
      "  load <name> <checkpoint-path>   register an inactive version\n"
      "  activate <name> [--rebase]      swap primary (drain by default)\n"
      "  candidate <name> <fraction>     A/B: fraction of sessions to name\n"
      "  shadow <name>                   mirror scores to name (metrics only)\n"
      "  clear-candidate | clear-shadow  stop A/B / shadow scoring\n"
      "  status                          print registry status JSON\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  net::ClientOptions options;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) {
      options.host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      options.port = std::stoi(arg.substr(7));
    } else {
      args.push_back(arg);
    }
  }
  if (options.port == 0 || args.empty()) return Usage();

  net::Client client(options);
  tpgnn::Status status = client.Connect();
  if (!status.ok()) {
    std::fprintf(stderr, "connect %s:%d: %s\n", options.host.c_str(),
                 options.port, status.ToString().c_str());
    return 1;
  }

  const std::string& command = args[0];
  std::string json;
  if (command == "load" && args.size() == 3) {
    status = client.ModelLoad(args[1], args[2]);
  } else if (command == "activate" &&
             (args.size() == 2 ||
              (args.size() == 3 && args[2] == "--rebase"))) {
    status = client.ModelActivate(
        args[1], args.size() == 3 ? net::ModelAdminMode::kActivateRebase
                                  : net::ModelAdminMode::kActivateDrain);
  } else if (command == "candidate" && args.size() == 3) {
    status = client.ModelActivate(args[1], net::ModelAdminMode::kSetCandidate,
                                  std::stod(args[2]));
  } else if (command == "shadow" && args.size() == 2) {
    status = client.ModelActivate(args[1], net::ModelAdminMode::kSetShadow);
  } else if (command == "clear-candidate" && args.size() == 1) {
    status = client.ModelActivate("", net::ModelAdminMode::kClearCandidate);
  } else if (command == "clear-shadow" && args.size() == 1) {
    status = client.ModelActivate("", net::ModelAdminMode::kClearShadow);
  } else if (command == "status" && args.size() == 1) {
    status = client.ModelStatus(&json);
  } else {
    return Usage();
  }

  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", command.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  if (command == "status") {
    std::printf("%s\n", json.c_str());
  } else {
    std::printf("ok\n");
  }
  return 0;
}
