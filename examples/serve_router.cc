// Router/proxy front-end for a sharded serving cluster: speaks the TP-GNN
// wire protocol to clients, consistent-hashes sessions onto N backend
// serve_server processes, probes backend health, fails over dead backends
// by replaying session journals, and live-migrates sessions on drain.
// Clients cannot tell it from a single serve_server.
//
// Four-step flow (README "Running a cluster"):
//
//   $ ./build/examples/serve_server --port=7481 &
//   $ ./build/examples/serve_server --port=7482 &
//   $ ./build/examples/serve_router --port=7471 "--backends=..." (the two
//     server addresses, e.g. --backends=127.0.0.1:7481,127.0.0.1:7482)
//   $ ./build/bench/bench_net --port=7471 --shutdown=1
//
// Backends are named b0, b1, ... in flag order; the names are the ring
// identities, so keep the flag order stable across router restarts to keep
// session placement stable.
//
// Flags: --backends=H:P,H:P   backend addresses (required)
//        --port=N             client-facing TCP port, 0 = ephemeral
//                             (default 7471)
//        --port_file=PATH     write the bound port here after listen
//        --vnodes=N           virtual nodes per backend (default 64)

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/router.h"

namespace cluster = tpgnn::cluster;

namespace {

cluster::Router* g_router = nullptr;

void HandleSignal(int) {
  if (g_router != nullptr) {
    g_router->RequestShutdown();  // Async-signal-safe: atomic + pipe write.
  }
}

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return default_value;
}

int64_t FlagInt(int argc, char** argv, const std::string& name,
                int64_t default_value) {
  const std::string value = FlagValue(argc, argv, name, "");
  return value.empty() ? default_value : std::stoll(value);
}

// "host:port,host:port" -> configs named b0, b1, ... in flag order.
bool ParseBackends(const std::string& csv,
                   std::vector<cluster::BackendConfig>* configs) {
  size_t start = 0;
  while (start <= csv.size()) {
    size_t end = csv.find(',', start);
    if (end == std::string::npos) {
      end = csv.size();
    }
    const std::string item = csv.substr(start, end - start);
    if (!item.empty()) {
      const size_t colon = item.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == item.size()) {
        std::fprintf(stderr, "bad backend address: %s\n", item.c_str());
        return false;
      }
      cluster::BackendConfig config;
      config.name = "b" + std::to_string(configs->size());
      config.host = item.substr(0, colon);
      config.port = std::stoi(item.substr(colon + 1));
      configs->push_back(std::move(config));
    }
    start = end + 1;
  }
  return !configs->empty();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string backends_csv = FlagValue(argc, argv, "backends", "");
  const std::string port_file = FlagValue(argc, argv, "port_file", "");
  const int64_t port = FlagInt(argc, argv, "port", 7471);
  const int64_t vnodes = FlagInt(argc, argv, "vnodes", 64);

  std::vector<cluster::BackendConfig> configs;
  if (backends_csv.empty() || !ParseBackends(backends_csv, &configs)) {
    std::fprintf(stderr,
                 "usage: serve_router --backends=HOST:PORT,HOST:PORT "
                 "[--port=N] [--port_file=PATH]\n");
    return 2;
  }

  cluster::RouterOptions options;
  options.port = static_cast<int>(port);
  options.vnodes_per_backend = static_cast<int>(vnodes);
  cluster::Router router(configs, options);
  if (tpgnn::Status status = router.Start(); !status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << router.port() << "\n";
  }
  std::printf("routing %s:%d over %zu backends:\n",
              options.bind_address.c_str(), router.port(), configs.size());
  for (const cluster::BackendConfig& config : configs) {
    std::printf("  %s = %s:%d\n", config.name.c_str(), config.host.c_str(),
                config.port);
  }
  std::fflush(stdout);

  g_router = &router;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  router.Run();
  g_router = nullptr;

  const cluster::ClusterCounters& c = router.counters();
  std::printf("cluster: %llu failovers, %llu sessions replayed, "
              "%llu migrated (%llu failed), %llu scores reissued, "
              "%llu failed over, %llu/%llu probes missed/sent, "
              "%llu overloads shed\n",
              static_cast<unsigned long long>(c.backend_failovers),
              static_cast<unsigned long long>(c.sessions_replayed),
              static_cast<unsigned long long>(c.sessions_migrated),
              static_cast<unsigned long long>(c.migration_failures),
              static_cast<unsigned long long>(c.scores_reissued),
              static_cast<unsigned long long>(c.scores_failed_over),
              static_cast<unsigned long long>(c.probes_missed),
              static_cast<unsigned long long>(c.probes_sent),
              static_cast<unsigned long long>(c.overloads_shed));
  return 0;
}
