// User-trajectory anomaly detection (the paper's Brightkite/Gowalla
// motivation): each user's check-in stream forms a dynamic user-trajectory
// network; TP-GNN-GRU classifies whole trajectories as normal or anomalous
// (structurally rewired movements or temporally reordered excursions).
//
//   $ ./build/examples/trajectory_anomaly

#include <cmath>
#include <cstdio>
#include <string>

#include "core/model.h"
#include "data/trajectory_generator.h"
#include "eval/trainer.h"
#include "graph/temporal_graph.h"

namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace eval = tpgnn::eval;
namespace graph = tpgnn::graph;
using tpgnn::Rng;

int main() {
  data::TrajectoryGenerator::Options options;
  options.avg_nodes = 46;  // Brightkite shape (Table I).
  options.avg_edges = 188;
  data::TrajectoryGenerator generator(options);

  // Corpus: 70% normal users, 15% structural anomalies (impossible jumps),
  // 15% temporal anomalies (reordered excursions).
  Rng rng(2024);
  graph::GraphDataset dataset;
  for (int i = 0; i < 200; ++i) {
    const double coin = rng.Uniform();
    if (coin < 0.70) {
      dataset.push_back({generator.GeneratePositive(rng), 1});
    } else if (coin < 0.85) {
      dataset.push_back(
          {generator.GenerateNegative(/*temporal_fraction=*/0.0, rng), 0});
    } else {
      dataset.push_back(
          {generator.GenerateNegative(/*temporal_fraction=*/1.0, rng), 0});
    }
  }
  const size_t train_size = 120;
  graph::GraphDataset train(dataset.begin(),
                            dataset.begin() + train_size);
  graph::GraphDataset test(dataset.begin() + train_size, dataset.end());

  // The GRU updater handles the long interaction sequences of dense
  // trajectory graphs best (Sec. V-E).
  core::TpGnnConfig config;
  config.updater = core::Updater::kGru;
  core::TpGnnModel model(config, /*seed=*/3);
  std::printf("training %s (%lld parameters) on %zu trajectories...\n",
              model.name().c_str(),
              static_cast<long long>(model.ParameterCount()), train.size());

  eval::TrainOptions train_options;
  train_options.epochs = 15;
  train_options.learning_rate = 3e-3f;
  train_options.seed = 3;
  eval::TrainClassifier(model, train, train_options);

  eval::Metrics metrics = eval::EvaluateClassifier(model, test);
  std::printf("held-out trajectories: F1=%.2f%% precision=%.2f%% "
              "recall=%.2f%% accuracy=%.2f%%\n",
              100.0 * metrics.f1, 100.0 * metrics.precision,
              100.0 * metrics.recall, 100.0 * metrics.accuracy);

  // Inspect a few individual users.
  std::printf("\nsample triage:\n");
  tpgnn::tensor::NoGradGuard no_grad;
  Rng inference_rng(0);
  int shown = 0;
  for (const graph::LabeledGraph& sample : test) {
    if (shown >= 6) break;
    const float logit =
        model.ForwardLogit(sample.graph, false, inference_rng).item();
    const double p = 1.0 / (1.0 + std::exp(-static_cast<double>(logit)));
    std::printf("  user %d: %3lld POIs, %3lld moves, P(normal)=%.3f -> %s "
                "(truth: %s)\n",
                shown, static_cast<long long>(sample.graph.num_nodes()),
                static_cast<long long>(sample.graph.num_edges()), p,
                p > 0.5 ? "normal " : "ANOMALY",
                sample.label == 1 ? "normal" : "anomaly");
    ++shown;
  }
  return 0;
}
