// Log anomaly detection (the paper's Forum-java motivation): build dynamic
// session networks from a stream of simulated micro-service logs, train
// TP-GNN-SUM, and triage new sessions, reporting the per-fault detection
// rate.
//
//   $ ./build/examples/log_anomaly_detection

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/log_session_generator.h"
#include "eval/trainer.h"
#include "graph/temporal_graph.h"

namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace eval = tpgnn::eval;
namespace graph = tpgnn::graph;
using tpgnn::Rng;

namespace {

const char* FaultName(data::LogFault fault) {
  switch (fault) {
    case data::LogFault::kNone:
      return "normal";
    case data::LogFault::kOrderAnomaly:
      return "order-anomaly";
    case data::LogFault::kCrashLoop:
      return "crash-loop";
    case data::LogFault::kMissingStep:
      return "missing-step";
    case data::LogFault::kExceptionBurst:
      return "exception-burst";
  }
  return "?";
}

}  // namespace

int main() {
  data::LogSessionGenerator::Options options;
  options.avg_nodes = 27;  // Forum-java shape (Table I).
  options.avg_edges = 30;
  options.num_event_types = 81;
  data::LogSessionGenerator generator(options);

  // Training corpus: normal sessions plus all four fault types.
  Rng rng(123);
  graph::GraphDataset train;
  const std::vector<data::LogFault> faults = {
      data::LogFault::kOrderAnomaly, data::LogFault::kCrashLoop,
      data::LogFault::kMissingStep, data::LogFault::kExceptionBurst};
  for (int i = 0; i < 160; ++i) {
    if (rng.Bernoulli(0.35)) {
      data::LogFault fault =
          faults[static_cast<size_t>(rng.UniformInt(0, 3))];
      train.push_back({generator.GenerateNegative(fault, rng), 0});
    } else {
      train.push_back({generator.GeneratePositive(rng), 1});
    }
  }

  core::TpGnnConfig config;
  config.updater = core::Updater::kSum;
  core::TpGnnModel model(config, /*seed=*/1);
  eval::TrainOptions train_options;
  train_options.epochs = 15;
  train_options.learning_rate = 3e-3f;
  train_options.seed = 1;
  std::printf("training %s on %zu sessions...\n", model.name().c_str(),
              train.size());
  eval::TrainResult history =
      eval::TrainClassifier(model, train, train_options);
  std::printf("mean BCE: %.4f (epoch 1) -> %.4f (epoch %zu)\n\n",
              history.epoch_losses.front(), history.epoch_losses.back(),
              history.epoch_losses.size());

  // Triage fresh sessions and report per-fault detection rates.
  std::printf("%-16s | %8s | %s\n", "session kind", "flagged", "of");
  std::printf("%s\n", std::string(40, '-').c_str());
  tpgnn::tensor::NoGradGuard no_grad;
  Rng eval_rng(321);
  const int per_kind = 40;
  for (int kind = -1; kind < 4; ++kind) {
    int flagged = 0;
    for (int i = 0; i < per_kind; ++i) {
      graph::TemporalGraph session =
          kind < 0 ? generator.GeneratePositive(eval_rng)
                   : generator.GenerateNegative(faults[static_cast<size_t>(kind)],
                                                eval_rng);
      Rng inference_rng(0);
      float logit =
          model.ForwardLogit(session, /*training=*/false, inference_rng)
              .item();
      if (logit <= 0.0f) ++flagged;  // P(normal) <= 0.5 -> anomalous.
    }
    const data::LogFault fault =
        kind < 0 ? data::LogFault::kNone : faults[static_cast<size_t>(kind)];
    std::printf("%-16s | %3d/%-4d | %s\n", FaultName(fault), flagged,
                per_kind,
                kind < 0 ? "(false-positive rate)" : "(detection rate)");
  }
  return 0;
}
