// Online-serving demo: replay a synthetic session dataset as one
// interleaved event stream through the InferenceEngine and report
// throughput, latency percentiles, and scoring accuracy.
//
// Pairs with the quickstart's checkpoint flags for a two-step flow:
//
//   $ ./build/examples/quickstart --save_checkpoint=/tmp/tpgnn.ckpt
//   $ ./build/examples/serve_demo --checkpoint=/tmp/tpgnn.ckpt
//
// Without --checkpoint the engine serves a freshly initialized model (the
// plumbing is identical; the scores are just untrained). Exits nonzero when
// no session was scored or the snapshot is rejected, so CI can use a run as
// a smoke test.
//
// Flags: --checkpoint=PATH  snapshot to serve (default: none)
//        --sessions=N       replayed sessions (default 40)
//        --score_every=N    mid-session score cadence in edges (default 8)
//        --shards=N         session shards (default 4)

#include <cstdio>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/datasets.h"
#include "serve/inference_engine.h"
#include "serve/replay.h"
#include "util/stopwatch.h"

namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace serve = tpgnn::serve;

namespace {

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return default_value;
}

int64_t FlagInt(int argc, char** argv, const std::string& name,
                int64_t default_value) {
  const std::string value = FlagValue(argc, argv, name, "");
  return value.empty() ? default_value : std::stoll(value);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string checkpoint = FlagValue(argc, argv, "checkpoint", "");
  const int64_t num_sessions = FlagInt(argc, argv, "sessions", 40);
  const int64_t score_every = FlagInt(argc, argv, "score_every", 8);
  const int64_t num_shards = FlagInt(argc, argv, "shards", 4);

  // The engine config must match the snapshot's; both use the quickstart's
  // paper-default SUM configuration.
  core::TpGnnConfig config;
  config.updater = core::Updater::kSum;

  serve::EngineOptions options;
  options.num_shards = static_cast<int>(num_shards);
  options.max_pending_scores = 256;
  options.max_batch = 64;
  serve::InferenceEngine engine(config, /*seed=*/1, options);

  if (!checkpoint.empty()) {
    tpgnn::Status status = engine.LoadSnapshot(checkpoint);
    if (!status.ok()) {
      std::fprintf(stderr, "snapshot rejected: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("serving snapshot: %s\n", checkpoint.c_str());
  } else {
    std::printf("serving untrained model (no --checkpoint)\n");
  }

  // Same generator family as the quickstart's training set, held-out seed.
  tpgnn::graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), num_sessions, /*seed=*/99);
  serve::ReplayOptions replay_options;
  replay_options.session_start_interval = 0.5;
  replay_options.score_every_edges = score_every;
  serve::EventReplayer replayer(dataset, replay_options);
  std::printf("replaying %zu sessions / %zu events / %zu score requests\n",
              replayer.num_sessions(), replayer.events().size(),
              replayer.num_score_requests());

  std::vector<serve::ScoreResult> results;
  tpgnn::Stopwatch wall;
  for (const serve::Event& event : replayer.events()) {
    tpgnn::Status status = engine.Ingest(event);
    while (status.code() == tpgnn::StatusCode::kOverloaded) {
      // Backpressure: drain a micro-batch, then resubmit.
      engine.ProcessPending(&results);
      status = engine.Ingest(event);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
      return 1;
    }
    if (engine.pending_scores() >= options.max_batch) {
      engine.ProcessPending(&results);
    }
  }
  engine.Flush(&results);
  const double wall_seconds = wall.ElapsedSeconds();

  size_t scored = 0;
  size_t correct = 0;
  size_t labeled = 0;
  for (const serve::ScoreResult& r : results) {
    if (!r.status.ok()) continue;
    ++scored;
    if (r.label >= 0) {
      ++labeled;
      const int predicted = r.probability > 0.5f ? 1 : 0;
      if (predicted == r.label) ++correct;
    }
  }

  const serve::MetricsSnapshot snap = engine.metrics().Snapshot();
  std::printf("%s\n", snap.ToString().c_str());
  std::printf("throughput: %.0f events/s, %.0f scores/s (wall %.3f s)\n",
              snap.events_ingested / wall_seconds, scored / wall_seconds,
              wall_seconds);
  if (labeled > 0) {
    std::printf("final-score accuracy: %zu/%zu = %.1f%%\n", correct, labeled,
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(labeled));
  }
  std::printf("resident sessions after shutdown: %zu\n",
              engine.resident_sessions());

  if (scored == 0) {
    std::fprintf(stderr, "smoke check failed: no session was scored\n");
    return 1;
  }
  if (engine.resident_sessions() != 0) {
    std::fprintf(stderr, "smoke check failed: %zu sessions leaked\n",
                 engine.resident_sessions());
    return 1;
  }
  return 0;
}
