// The paper's Fig. 1 in miniature: two dynamic session networks with
// identical topology but different edge establishment order. The example
// walks through temporal propagation by hand, showing how the influential
// node sets (Definition 4) — and therefore the learned embeddings — differ.
//
//   $ ./build/examples/motivating_example

#include <cmath>
#include <cstdio>
#include <string>

#include "core/model.h"
#include "graph/influence.h"
#include "graph/temporal_graph.h"
#include "tensor/ops.h"

namespace core = tpgnn::core;
namespace graph = tpgnn::graph;
using tpgnn::Rng;

namespace {

graph::TemporalGraph SessionGraph(bool abnormal) {
  // Nodes v0..v9 are log events; a second (v7 -> v6) interaction happens
  // either before (normal) or after (abnormal) the v9 -> v8 -> v7 chain.
  graph::TemporalGraph g(10, 3);
  for (int64_t v = 0; v < 10; ++v) {
    g.SetNodeFeature(v, {static_cast<float>(v) / 10.0f, 0.5f, 0.0f});
  }
  g.AddEdge(3, 1, 1.0);
  g.AddEdge(2, 1, 2.0);
  g.AddEdge(1, 0, 3.0);
  g.AddEdge(0, 7, 4.0);
  g.AddEdge(7, 6, 4.9);
  g.AddEdge(7, 6, abnormal ? 7.4 : 5.5);
  g.AddEdge(9, 8, 6.0);
  g.AddEdge(8, 7, 7.0);
  g.AddEdge(0, 9, 8.0);
  return g;
}

void PrintInfluencers(const std::string& label,
                      const graph::TemporalGraph& g, int64_t node) {
  graph::InfluenceClosure closure(g);
  std::printf("%s influencers of v%lld: {", label.c_str(),
              static_cast<long long>(node));
  bool first = true;
  for (int64_t u : closure.InfluencersOf(node)) {
    std::printf("%sv%lld", first ? "" : ", ", static_cast<long long>(u));
    first = false;
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  graph::TemporalGraph normal = SessionGraph(false);
  graph::TemporalGraph abnormal = SessionGraph(true);

  std::printf("Both graphs have %lld nodes and %lld edges with identical\n"
              "topology; only the second (v7 -> v6) timestamp differs\n"
              "(t=5.5 normal vs t=7.4 abnormal).\n\n",
              static_cast<long long>(normal.num_nodes()),
              static_cast<long long>(normal.num_edges()));

  // Information-flow analysis (Definition 4).
  PrintInfluencers("normal  ", normal, 6);
  PrintInfluencers("abnormal", abnormal, 6);
  std::printf("\nIn the abnormal session, v9 and v8's information reaches "
              "v6\nthrough the delayed second (v7 -> v6) interaction.\n\n");

  // Embedding analysis: an untrained TP-GNN already maps the two graphs to
  // different representations; an order-agnostic model cannot.
  core::TpGnnConfig config;
  core::TpGnnModel model(config, /*seed=*/7);
  tpgnn::tensor::Tensor g1 = model.Embed(normal);
  tpgnn::tensor::Tensor g2 = model.Embed(abnormal);
  float l2 = 0.0f;
  for (int64_t i = 0; i < g1.numel(); ++i) {
    const float d = g1.data()[static_cast<size_t>(i)] -
                    g2.data()[static_cast<size_t>(i)];
    l2 += d * d;
  }
  std::printf("||g_normal - g_abnormal||_2 = %.6f (> 0: TP-GNN separates "
              "the pair)\n",
              std::sqrt(l2));
  return 0;
}
