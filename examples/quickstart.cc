// Quickstart: build a continuous-time dynamic network by hand, train
// TP-GNN on a small synthetic dataset, and classify the hand-built graph.
//
//   $ ./build/examples/quickstart
//
// Checkpoint flags wire the quickstart into the online-serving demo:
//
//   $ ./build/examples/quickstart --save_checkpoint=/tmp/tpgnn.ckpt
//   $ ./build/examples/serve_demo --checkpoint=/tmp/tpgnn.ckpt
//
// --save_checkpoint writes the trained parameters plus a config metadata
// block (nn/checkpoint.h version 2); --load_checkpoint restores a snapshot
// and skips training.

#include <cmath>
#include <cstdio>
#include <string>

#include "core/model.h"
#include "data/datasets.h"
#include "eval/trainer.h"
#include "graph/temporal_graph.h"
#include "nn/checkpoint.h"
#include "tensor/ops.h"

namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace eval = tpgnn::eval;
namespace graph = tpgnn::graph;
namespace nn = tpgnn::nn;

namespace {

// Value of a `--name=value` flag, or empty if absent.
std::string FlagValue(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string save_path = FlagValue(argc, argv, "save_checkpoint");
  const std::string load_path = FlagValue(argc, argv, "load_checkpoint");

  // 1. A CTDN is a set of nodes with features plus timestamped directed
  //    edges (Definition 1). Here: a five-event log session.
  graph::TemporalGraph session(/*num_nodes=*/5, /*feature_dim=*/3);
  session.SetNodeFeature(0, {0.00f, 1.2f, 0.0f});  // request received
  session.SetNodeFeature(1, {0.25f, 0.8f, 0.0f});  // auth check
  session.SetNodeFeature(2, {0.50f, 2.1f, 0.0f});  // db query
  session.SetNodeFeature(3, {0.75f, 0.5f, 0.0f});  // render
  session.SetNodeFeature(4, {1.00f, 0.3f, 0.0f});  // response sent
  session.AddEdge(0, 1, 1.0);
  session.AddEdge(1, 2, 2.2);
  session.AddEdge(2, 3, 3.7);
  session.AddEdge(3, 4, 4.1);

  // 2. Generate a small labeled dataset (synthetic stand-in for the
  //    paper's HDFS log corpus) and split it 30/70 chronologically.
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/150, /*seed=*/42);
  data::TrainTestSplit split = data::SplitDataset(dataset, 0.3);
  std::printf("dataset: %zu train / %zu test graphs\n", split.train.size(),
              split.test.size());

  // 3. Configure TP-GNN (paper defaults: SUM updater, d=32, d_t=6) and
  //    train end-to-end with Adam + BCE — or restore a snapshot.
  core::TpGnnConfig config;
  config.updater = core::Updater::kSum;
  core::TpGnnModel model(config, /*seed=*/1);
  std::printf("model: %s with %lld parameters\n", model.name().c_str(),
              static_cast<long long>(model.ParameterCount()));

  if (!load_path.empty()) {
    nn::CheckpointMetadata metadata;
    tpgnn::Status status = nn::LoadParameters(model, load_path, &metadata);
    if (!status.ok()) {
      std::fprintf(stderr, "load_checkpoint failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    if (tpgnn::Status check = core::ValidateConfigMetadata(config, metadata);
        !check.ok()) {
      std::fprintf(stderr, "checkpoint config mismatch: %s\n",
                   check.ToString().c_str());
      return 1;
    }
    std::printf("loaded checkpoint: %s\n", load_path.c_str());
  } else {
    eval::TrainOptions train_options;
    train_options.epochs = 8;
    train_options.seed = 1;
    eval::TrainResult history =
        eval::TrainClassifier(model, split.train, train_options);
    std::printf("loss: first epoch %.4f -> last epoch %.4f\n",
                history.epoch_losses.front(), history.epoch_losses.back());
  }

  if (!save_path.empty()) {
    tpgnn::Status status =
        nn::SaveParameters(model, save_path, core::ConfigMetadata(config));
    if (!status.ok()) {
      std::fprintf(stderr, "save_checkpoint failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("saved checkpoint: %s\n", save_path.c_str());
  }

  // 4. Evaluate on the held-out split.
  eval::Metrics metrics = eval::EvaluateClassifier(model, split.test);
  std::printf("test: F1=%.2f%% precision=%.2f%% recall=%.2f%%\n",
              100.0 * metrics.f1, 100.0 * metrics.precision,
              100.0 * metrics.recall);

  // 5. Classify the hand-built session and inspect its graph embedding.
  tpgnn::Rng rng(0);
  float logit = model.ForwardLogit(session, /*training=*/false, rng).item();
  const float prob = 1.0f / (1.0f + std::exp(-logit));
  std::printf("hand-built session: P(normal) = %.3f -> %s\n", prob,
              prob > 0.5f ? "normal" : "anomalous");
  std::printf("graph embedding g: %s\n",
              model.Embed(session).ToString().c_str());
  return 0;
}
