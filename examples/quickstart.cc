// Quickstart: build a continuous-time dynamic network by hand, train
// TP-GNN on a small synthetic dataset, and classify the hand-built graph.
//
//   $ ./build/examples/quickstart

#include <cmath>
#include <cstdio>

#include "core/model.h"
#include "data/datasets.h"
#include "eval/trainer.h"
#include "graph/temporal_graph.h"
#include "tensor/ops.h"

namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace eval = tpgnn::eval;
namespace graph = tpgnn::graph;

int main() {
  // 1. A CTDN is a set of nodes with features plus timestamped directed
  //    edges (Definition 1). Here: a five-event log session.
  graph::TemporalGraph session(/*num_nodes=*/5, /*feature_dim=*/3);
  session.SetNodeFeature(0, {0.00f, 1.2f, 0.0f});  // request received
  session.SetNodeFeature(1, {0.25f, 0.8f, 0.0f});  // auth check
  session.SetNodeFeature(2, {0.50f, 2.1f, 0.0f});  // db query
  session.SetNodeFeature(3, {0.75f, 0.5f, 0.0f});  // render
  session.SetNodeFeature(4, {1.00f, 0.3f, 0.0f});  // response sent
  session.AddEdge(0, 1, 1.0);
  session.AddEdge(1, 2, 2.2);
  session.AddEdge(2, 3, 3.7);
  session.AddEdge(3, 4, 4.1);

  // 2. Generate a small labeled dataset (synthetic stand-in for the
  //    paper's HDFS log corpus) and split it 30/70 chronologically.
  graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), /*count=*/150, /*seed=*/42);
  data::TrainTestSplit split = data::SplitDataset(dataset, 0.3);
  std::printf("dataset: %zu train / %zu test graphs\n", split.train.size(),
              split.test.size());

  // 3. Configure TP-GNN (paper defaults: SUM updater, d=32, d_t=6) and
  //    train end-to-end with Adam + BCE.
  core::TpGnnConfig config;
  config.updater = core::Updater::kSum;
  core::TpGnnModel model(config, /*seed=*/1);
  std::printf("model: %s with %lld parameters\n", model.name().c_str(),
              static_cast<long long>(model.ParameterCount()));

  eval::TrainOptions train_options;
  train_options.epochs = 8;
  train_options.seed = 1;
  eval::TrainResult history =
      eval::TrainClassifier(model, split.train, train_options);
  std::printf("loss: first epoch %.4f -> last epoch %.4f\n",
              history.epoch_losses.front(), history.epoch_losses.back());

  // 4. Evaluate on the held-out split.
  eval::Metrics metrics = eval::EvaluateClassifier(model, split.test);
  std::printf("test: F1=%.2f%% precision=%.2f%% recall=%.2f%%\n",
              100.0 * metrics.f1, 100.0 * metrics.precision,
              100.0 * metrics.recall);

  // 5. Classify the hand-built session and inspect its graph embedding.
  tpgnn::Rng rng(0);
  float logit = model.ForwardLogit(session, /*training=*/false, rng).item();
  const float prob = 1.0f / (1.0f + std::exp(-logit));
  std::printf("hand-built session: P(normal) = %.3f -> %s\n", prob,
              prob > 0.5f ? "normal" : "anomalous");
  std::printf("graph embedding g: %s\n",
              model.Embed(session).ToString().c_str());
  return 0;
}
