// Regenerates Table III: continuous DGNN baselines with their Mean-pooling
// readout replaced by TP-GNN's Global Temporal Embedding Extractor ("+G"),
// compared against full TP-GNN, on the paper's four Table-III datasets.
// Expected shape: each +G variant improves on its Table II self, but TP-GNN
// (whose propagation feeds the extractor order-aware embeddings) stays on
// top.

#include <utility>
#include <vector>

#include "bench_util.h"

namespace bench = tpgnn::bench;
namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace eval = tpgnn::eval;
namespace baselines = tpgnn::baselines;

int main() {
  const bench::BenchSettings settings = bench::LoadSettings();
  bench::PrintHeader(
      "Table III: baselines with the Global Temporal Embedding Extractor",
      settings);
  const eval::ExperimentOptions options =
      bench::MakeExperimentOptions(settings);

  // Table III covers Forum-java, HDFS, Gowalla and Brightkite.
  const std::vector<data::DatasetSpec> specs = {
      data::ForumJavaSpec(), data::HdfsSpec(), data::GowallaSpec(),
      data::BrightkiteSpec()};
  for (const data::DatasetSpec& spec : specs) {
    data::TrainTestSplit split = bench::PrepareDataset(spec, settings);
    std::vector<std::pair<std::string, eval::ClassifierFactory>> models =
        baselines::ContinuousPlusGlobalFactories(
            bench::SuiteOptionsFor(spec), /*global_hidden_dim=*/32);
    models.emplace_back(
        "TP-GNN-SUM",
        bench::TpGnnFactory(bench::DefaultTpGnnConfig(core::Updater::kSum)));
    models.emplace_back(
        "TP-GNN-GRU",
        bench::TpGnnFactory(bench::DefaultTpGnnConfig(core::Updater::kGru)));

    std::vector<eval::ExperimentResult> results;
    for (const auto& [name, factory] : models) {
      results.push_back(
          eval::RunExperiment(factory, split.train, split.test, options));
    }
    eval::PrintResultsTable(spec.name, results);
  }
  return 0;
}
