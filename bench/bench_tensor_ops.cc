// Hot-kernel microbenchmarks: square MatMul (forward and forward+backward)
// at the sizes the models actually hit, plus one full GRU cell step. Run
// directly (`build/bench/bench_tensor_ops`); not registered with ctest.
//
// ns/op is reported by the google-benchmark runner; the MatMul fast-path
// acceptance bar for this repo is >= 2x the seed kernel at 128x128x128.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "nn/gru_cell.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using tpgnn::Rng;
using tpgnn::tensor::Tensor;

Tensor RandomMatrix(int64_t rows, int64_t cols, uint64_t seed,
                    bool requires_grad = false) {
  Rng rng(seed);
  return Tensor::Uniform({rows, cols}, -1.0f, 1.0f, rng, requires_grad);
}

void BM_MatMulForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  tpgnn::tensor::NoGradGuard no_grad;
  Tensor a = RandomMatrix(n, n, 1);
  Tensor b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    Tensor c = tpgnn::tensor::MatMul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulForward)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulForwardBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomMatrix(n, n, 1, /*requires_grad=*/true);
  Tensor b = RandomMatrix(n, n, 2, /*requires_grad=*/true);
  for (auto _ : state) {
    Tensor loss = tpgnn::tensor::Sum(tpgnn::tensor::MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(a.MutableGrad().data());
    a.ZeroGrad();
    b.ZeroGrad();
  }
  state.SetItemsProcessed(state.iterations() * 3 * n * n * n);
}
BENCHMARK(BM_MatMulForwardBackward)->Arg(32)->Arg(64)->Arg(128);

void BM_GruCellStep(benchmark::State& state) {
  const int64_t hidden = state.range(0);
  Rng rng(3);
  tpgnn::nn::GruCell cell(hidden, hidden, rng);
  tpgnn::tensor::NoGradGuard no_grad;
  Tensor x = RandomMatrix(1, hidden, 4);
  Tensor h = RandomMatrix(1, hidden, 5);
  for (auto _ : state) {
    Tensor next = cell.Forward(x, h);
    benchmark::DoNotOptimize(next.data().data());
  }
}
BENCHMARK(BM_GruCellStep)->Arg(32)->Arg(64);

void BM_SigmoidForwardBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomMatrix(n, n, 6, /*requires_grad=*/true);
  for (auto _ : state) {
    Tensor loss = tpgnn::tensor::Sum(tpgnn::tensor::Sigmoid(a));
    loss.Backward();
    benchmark::DoNotOptimize(a.MutableGrad().data());
    a.ZeroGrad();
  }
}
BENCHMARK(BM_SigmoidForwardBackward)->Arg(128);

void BM_TanhForwardBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomMatrix(n, n, 7, /*requires_grad=*/true);
  for (auto _ : state) {
    Tensor loss = tpgnn::tensor::Sum(tpgnn::tensor::Tanh(a));
    loss.Backward();
    benchmark::DoNotOptimize(a.MutableGrad().data());
    a.ZeroGrad();
  }
}
BENCHMARK(BM_TanhForwardBackward)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
