// Hot-kernel microbenchmarks: square MatMul (forward and forward+backward)
// at the sizes the models actually hit, one full GRU cell step, and the
// per-edge propagation op mix that dominates TP-GNN training ([1, 64] rows
// gathered from a [27, 64] node-state matrix; 27 nodes / 64 dims are the
// paper-default graph shape). Run directly or via `cmake --build build
// --target bench`; not registered with ctest.
//
// ns/op is reported by the google-benchmark runner; allocs/op counters come
// from the buffer-pool stats facade (util/buffer_pool.h). Before the
// google-benchmark suites run, main() times the per-edge mix and two tiny
// fig6-style TP-GNN cells with the pool disabled vs enabled and writes the
// machine-readable record to BENCH_alloc.json (TPGNN_BENCH_ALLOC_JSON), then
// times the planned arena executor against the hand-fused scalar inference
// loops it replaced and writes BENCH_plan.json (TPGNN_BENCH_PLAN_JSON).
//
// The MatMul fast-path acceptance bar for this repo is >= 2x the seed
// kernel at 128x128x128; the pooled per-edge mix bar is >= 2x the unpooled
// mix with steady-state allocs/op ~ 0.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/datasets.h"
#include "eval/trainer.h"
#include "nn/gru_cell.h"
#include "nn/time_encoding.h"
#include "tensor/executor.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/plan.h"
#include "tensor/tensor.h"
#include "util/buffer_pool.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using tpgnn::Rng;
using tpgnn::tensor::Tensor;

Tensor RandomMatrix(int64_t rows, int64_t cols, uint64_t seed,
                    bool requires_grad = false) {
  Rng rng(seed);
  return Tensor::Uniform({rows, cols}, -1.0f, 1.0f, rng, requires_grad);
}

void BM_MatMulForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  tpgnn::tensor::NoGradGuard no_grad;
  Tensor a = RandomMatrix(n, n, 1);
  Tensor b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    Tensor c = tpgnn::tensor::MatMul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulForward)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulForwardBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomMatrix(n, n, 1, /*requires_grad=*/true);
  Tensor b = RandomMatrix(n, n, 2, /*requires_grad=*/true);
  for (auto _ : state) {
    Tensor loss = tpgnn::tensor::Sum(tpgnn::tensor::MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(a.MutableGrad().data());
    a.ZeroGrad();
    b.ZeroGrad();
  }
  state.SetItemsProcessed(state.iterations() * 3 * n * n * n);
}
BENCHMARK(BM_MatMulForwardBackward)->Arg(32)->Arg(64)->Arg(128);

void BM_GruCellStep(benchmark::State& state) {
  const int64_t hidden = state.range(0);
  Rng rng(3);
  tpgnn::nn::GruCell cell(hidden, hidden, rng);
  tpgnn::tensor::NoGradGuard no_grad;
  Tensor x = RandomMatrix(1, hidden, 4);
  Tensor h = RandomMatrix(1, hidden, 5);
  for (auto _ : state) {
    Tensor next = cell.Forward(x, h);
    benchmark::DoNotOptimize(next.data().data());
  }
}
BENCHMARK(BM_GruCellStep)->Arg(32)->Arg(64);

void BM_SigmoidForwardBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomMatrix(n, n, 6, /*requires_grad=*/true);
  for (auto _ : state) {
    Tensor loss = tpgnn::tensor::Sum(tpgnn::tensor::Sigmoid(a));
    loss.Backward();
    benchmark::DoNotOptimize(a.MutableGrad().data());
    a.ZeroGrad();
  }
}
BENCHMARK(BM_SigmoidForwardBackward)->Arg(128);

void BM_TanhForwardBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomMatrix(n, n, 7, /*requires_grad=*/true);
  for (auto _ : state) {
    Tensor loss = tpgnn::tensor::Sum(tpgnn::tensor::Tanh(a));
    loss.Backward();
    benchmark::DoNotOptimize(a.MutableGrad().data());
    a.ZeroGrad();
  }
}
BENCHMARK(BM_TanhForwardBackward)->Arg(128);

// --- Per-edge propagation op mix ------------------------------------------

// Paper-default shapes: HDFS graphs average ~27 nodes, embeddings are 64
// floats after the time encoding is concatenated.
constexpr int64_t kNodes = 27;
constexpr int64_t kDim = 64;

class ScopedPoolEnabled {
 public:
  explicit ScopedPoolEnabled(bool enabled)
      : previous_(tpgnn::util::BufferPoolEnabled()) {
    tpgnn::util::SetBufferPoolEnabled(enabled);
  }
  ~ScopedPoolEnabled() { tpgnn::util::SetBufferPoolEnabled(previous_); }

 private:
  bool previous_;
};

// Fresh heap allocations (buffers + tape nodes) recorded by the pool facade.
uint64_t FreshAllocs(const tpgnn::util::BufferPoolStats& s) {
  return s.pool_misses + (s.node_acquires - s.node_reuses);
}

// One recorded training sweep over the node-state matrix: per edge, gather
// the endpoint rows, aggregate them into an edge embedding, step the GRU,
// and close the tape with a scalar loss + Backward. This is the op mix
// TemporalPropagation + GlobalTemporalExtractor issue per graph.
void PerEdgeTrainSweep(tpgnn::nn::GruCell& gru, const Tensor& state) {
  namespace ops = tpgnn::tensor;
  Tensor h = ops::GatherRows(state, {0});
  for (int64_t e = 0; e < kNodes; ++e) {
    Tensor src = ops::GatherRows(state, {e});
    Tensor dst = ops::GatherRows(state, {(e * 7 + 3) % kNodes});
    Tensor edge = ops::Scale(ops::Add(src, dst), 0.5f);  // Average EdgeAgg.
    h = gru.Forward(edge, h);
  }
  ops::Sum(h).Backward();
}

void BM_PerEdgeTrainMix(benchmark::State& state) {
  ScopedPoolEnabled pool(state.range(0) != 0);
  Rng rng(11);
  tpgnn::nn::GruCell gru(kDim, kDim, rng);
  Tensor node_state = RandomMatrix(kNodes, kDim, 12, /*requires_grad=*/true);
  PerEdgeTrainSweep(gru, node_state);  // Warm the pool and freelists.

  const auto before = tpgnn::util::GetBufferPoolStats();
  for (auto _ : state) {
    PerEdgeTrainSweep(gru, node_state);
  }
  const auto after = tpgnn::util::GetBufferPoolStats();
  const double edges =
      static_cast<double>(state.iterations()) * static_cast<double>(kNodes);
  state.counters["allocs/edge"] = static_cast<double>(
      FreshAllocs(after) - FreshAllocs(before)) / edges;
  state.SetItemsProcessed(state.iterations() * kNodes);
}
BENCHMARK(BM_PerEdgeTrainMix)->Arg(0)->Arg(1);

void BM_GatherScatterForwardBackward(benchmark::State& state) {
  ScopedPoolEnabled pool(state.range(0) != 0);
  namespace ops = tpgnn::tensor;
  Tensor base = RandomMatrix(kNodes, kDim, 13, /*requires_grad=*/true);
  Tensor updates = RandomMatrix(kNodes, kDim, 14, /*requires_grad=*/true);
  std::vector<int64_t> idx(kNodes);
  for (int64_t i = 0; i < kNodes; ++i) idx[i] = (i * 5 + 2) % kNodes;

  const auto before = tpgnn::util::GetBufferPoolStats();
  for (auto _ : state) {
    Tensor out = ops::ScatterRowAdd(base, idx, ops::GatherRows(updates, idx));
    ops::Sum(out).Backward();
    benchmark::DoNotOptimize(base.MutableGrad().data());
    base.ZeroGrad();
    updates.ZeroGrad();
  }
  const auto after = tpgnn::util::GetBufferPoolStats();
  state.counters["allocs/op"] = static_cast<double>(
      FreshAllocs(after) - FreshAllocs(before)) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_GatherScatterForwardBackward)->Arg(0)->Arg(1);

void BM_GruRowStepInference(benchmark::State& state) {
  // The zero-copy inference step: StepInto over a [1, 64] row view; no
  // tensors or tape nodes exist per edge, so allocs/op must be ~0.
  tpgnn::tensor::NoGradGuard no_grad;
  Rng rng(15);
  tpgnn::nn::GruCell gru(kDim, kDim, rng);
  Tensor node_state = RandomMatrix(kNodes, kDim, 16);
  std::vector<float> message(static_cast<size_t>(kDim));
  tpgnn::nn::GruScratch scratch;
  int64_t e = 0;
  const auto before = tpgnn::util::GetBufferPoolStats();
  for (auto _ : state) {
    tpgnn::tensor::ConstRowSpan src =
        tpgnn::tensor::RowSpanOf(node_state, e % kNodes);
    std::copy(src.data, src.data + kDim, message.begin());
    tpgnn::tensor::RowSpan dst =
        tpgnn::tensor::MutableRowSpan(node_state, (e * 7 + 3) % kNodes);
    gru.StepInto(message.data(), dst.data, dst.data, scratch);
    benchmark::DoNotOptimize(dst.data);
    ++e;
  }
  const auto after = tpgnn::util::GetBufferPoolStats();
  state.counters["allocs/op"] = static_cast<double>(
      FreshAllocs(after) - FreshAllocs(before)) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_GruRowStepInference);

// --- Seed-style per-edge sweeps --------------------------------------------
// The op sequence the repo issued per edge before the memory subsystem:
// per-edge Row extraction, the unfused 21-node GRU chain (with a fresh Ones
// tensor per step), and no buffer pooling. Kept here as the "before" side of
// the BENCH_alloc.json comparison.

struct SeedGruParams {
  Tensor wz, uz, bz, wr, ur, br, wn, un, bn;
};

SeedGruParams MakeSeedGruParams(uint64_t seed) {
  Rng rng(seed);
  auto mat = [&rng](int64_t r, int64_t c) {
    return Tensor::Uniform({r, c}, -0.125f, 0.125f, rng,
                           /*requires_grad=*/true);
  };
  auto vec = [&rng](int64_t n) {
    return Tensor::Uniform({n}, -0.125f, 0.125f, rng, /*requires_grad=*/true);
  };
  return SeedGruParams{mat(kDim, kDim), mat(kDim, kDim), vec(kDim),
                       mat(kDim, kDim), mat(kDim, kDim), vec(kDim),
                       mat(kDim, kDim), mat(kDim, kDim), vec(kDim)};
}

Tensor SeedGruStep(const SeedGruParams& p, const Tensor& x, const Tensor& h) {
  namespace ops = tpgnn::tensor;
  Tensor z = ops::Sigmoid(
      ops::Add(ops::Add(ops::MatMul(x, p.wz), ops::MatMul(h, p.uz)), p.bz));
  Tensor r = ops::Sigmoid(
      ops::Add(ops::Add(ops::MatMul(x, p.wr), ops::MatMul(h, p.ur)), p.br));
  Tensor n = ops::Tanh(ops::Add(
      ops::Add(ops::MatMul(x, p.wn), ops::Mul(r, ops::MatMul(h, p.un))),
      p.bn));
  Tensor keep = ops::Mul(z, h);
  Tensor ones = Tensor::Ones({1, kDim});
  Tensor update = ops::Mul(ops::Sub(ones, z), n);
  return ops::Add(keep, update);
}

Tensor SeedStyleForward(const SeedGruParams& p, const Tensor& state) {
  namespace ops = tpgnn::tensor;
  Tensor h = ops::Reshape(ops::Row(state, 0), {1, kDim});
  for (int64_t e = 0; e < kNodes; ++e) {
    Tensor src = ops::Row(state, e);
    Tensor dst = ops::Row(state, (e * 7 + 3) % kNodes);
    Tensor edge =
        ops::Reshape(ops::Scale(ops::Add(src, dst), 0.5f), {1, kDim});
    h = SeedGruStep(p, edge, h);
  }
  return h;
}

void SeedStyleTrainSweep(const SeedGruParams& p, const Tensor& state) {
  tpgnn::tensor::Sum(SeedStyleForward(p, state)).Backward();
}

// The current zero-copy inference sweep over the same logical computation:
// the edge row is staged in one scratch buffer and the chain state lives in
// a single flat buffer mutated by GruCell::StepInto.
void ZeroCopyInferenceSweep(const tpgnn::nn::GruCell& gru,
                            const Tensor& state, std::vector<float>& h,
                            std::vector<float>& message,
                            tpgnn::nn::GruScratch& scratch) {
  namespace ops = tpgnn::tensor;
  ops::ConstRowSpan first = ops::RowSpanOf(state, 0);
  std::copy(first.data, first.data + kDim, h.begin());
  for (int64_t e = 0; e < kNodes; ++e) {
    ops::ConstRowSpan src = ops::RowSpanOf(state, e);
    ops::ConstRowSpan dst = ops::RowSpanOf(state, (e * 7 + 3) % kNodes);
    for (int64_t i = 0; i < kDim; ++i) {
      message[static_cast<size_t>(i)] = (src.data[i] + dst.data[i]) * 0.5f;
    }
    gru.StepInto(message.data(), h.data(), h.data(), scratch);
  }
}

// --- SUM-updater per-edge mix ----------------------------------------------
// TP-GNN-SUM (the paper's headline variant) issues no GEMMs per edge: each
// edge is two Add+Tanh chains over a [64] feature row and a [6] time row
// plus one Time2Vec evaluation. This mix is pure allocator pressure, which
// is exactly what the memory subsystem targets.

constexpr int64_t kTimeDim = 6;

Tensor SumTrainForward(const tpgnn::nn::Time2Vec& t2v, const Tensor& x,
                       bool fused_assembly) {
  namespace ops = tpgnn::tensor;
  std::vector<Tensor> xhat(static_cast<size_t>(kNodes));
  std::vector<Tensor> mhat(static_cast<size_t>(kNodes));
  for (int64_t v = 0; v < kNodes; ++v) {
    xhat[static_cast<size_t>(v)] = ops::Row(x, v);
    mhat[static_cast<size_t>(v)] = Tensor::Zeros({kTimeDim});
  }
  for (int64_t e = 0; e < kNodes; ++e) {
    const size_t u = static_cast<size_t>(e);
    const size_t v = static_cast<size_t>((e * 7 + 3) % kNodes);
    xhat[v] = ops::Tanh(ops::Add(xhat[u], xhat[v]));
    Tensor ft = t2v.Forward(static_cast<float>(e) * 0.01f);
    mhat[v] = ops::Tanh(ops::Add(ft, mhat[v]));
  }
  if (fused_assembly) {
    // Current assembly: two fused stacks + one axis-1 concat, O(1) ops.
    return ops::Tanh(ops::Concat({ops::Stack(xhat), ops::Stack(mhat)}, 1));
  }
  // Seed assembly: one Concat per node, O(n) recorded ops.
  std::vector<Tensor> rows;
  rows.reserve(static_cast<size_t>(kNodes));
  for (int64_t v = 0; v < kNodes; ++v) {
    rows.push_back(ops::Concat(
        {xhat[static_cast<size_t>(v)], mhat[static_cast<size_t>(v)]}, 0));
  }
  return ops::Tanh(ops::Stack(rows));
}

// The current zero-copy SUM inference sweep: in-place row updates through
// spans plus Time2Vec::EvalInto; no tensors exist per edge (mirrors
// TemporalPropagation::ForwardInference).
void SumZeroCopySweep(const tpgnn::nn::Time2Vec& t2v, std::vector<float>& x,
                      std::vector<float>& m, std::vector<float>& ft) {
  for (int64_t e = 0; e < kNodes; ++e) {
    const float* src = x.data() + e * kDim;
    float* dst = x.data() + ((e * 7 + 3) % kNodes) * kDim;
    for (int64_t i = 0; i < kDim; ++i) {
      dst[i] = std::tanh(src[i] + dst[i]);
    }
    t2v.EvalInto(static_cast<float>(e) * 0.01f, ft.data());
    float* mrow = m.data() + ((e * 7 + 3) % kNodes) * kTimeDim;
    for (int64_t i = 0; i < kTimeDim; ++i) {
      mrow[i] = std::tanh(ft[static_cast<size_t>(i)] + mrow[i]);
    }
  }
  for (float& v : x) v = std::tanh(v);
  for (float& v : m) v = std::tanh(v);
}

// --- BENCH_alloc.json ------------------------------------------------------

struct MixMeasurement {
  double ns_per_edge = 0.0;
  double buffer_allocs_per_edge = 0.0;
  double node_allocs_per_edge = 0.0;
};

MixMeasurement MeasurePerEdgeMix(bool pool_enabled, int rounds) {
  ScopedPoolEnabled pool(pool_enabled);
  Rng rng(11);
  tpgnn::nn::GruCell gru(kDim, kDim, rng);
  Tensor node_state = RandomMatrix(kNodes, kDim, 12, /*requires_grad=*/true);
  PerEdgeTrainSweep(gru, node_state);  // Warm-up.

  const auto before = tpgnn::util::GetBufferPoolStats();
  tpgnn::Stopwatch watch;
  for (int r = 0; r < rounds; ++r) {
    PerEdgeTrainSweep(gru, node_state);
  }
  const double seconds = watch.ElapsedSeconds();
  const auto after = tpgnn::util::GetBufferPoolStats();

  const double edges = static_cast<double>(rounds) * kNodes;
  MixMeasurement m;
  m.ns_per_edge = seconds * 1e9 / edges;
  m.buffer_allocs_per_edge =
      static_cast<double>(after.pool_misses - before.pool_misses) / edges;
  m.node_allocs_per_edge = static_cast<double>(
      (after.node_acquires - after.node_reuses) -
      (before.node_acquires - before.node_reuses)) / edges;
  return m;
}

// Seed-style training sweep (unfused ops, no pooling): the "before" side.
MixMeasurement MeasureSeedTrainMix(int rounds) {
  ScopedPoolEnabled pool(false);
  SeedGruParams params = MakeSeedGruParams(11);
  Tensor node_state = RandomMatrix(kNodes, kDim, 12, /*requires_grad=*/true);
  SeedStyleTrainSweep(params, node_state);  // Warm-up.

  const auto before = tpgnn::util::GetBufferPoolStats();
  tpgnn::Stopwatch watch;
  for (int r = 0; r < rounds; ++r) {
    SeedStyleTrainSweep(params, node_state);
  }
  const double seconds = watch.ElapsedSeconds();
  const auto after = tpgnn::util::GetBufferPoolStats();

  const double edges = static_cast<double>(rounds) * kNodes;
  MixMeasurement m;
  m.ns_per_edge = seconds * 1e9 / edges;
  m.buffer_allocs_per_edge =
      static_cast<double>(after.pool_misses - before.pool_misses) / edges;
  m.node_allocs_per_edge = static_cast<double>(
      (after.node_acquires - after.node_reuses) -
      (before.node_acquires - before.node_reuses)) / edges;
  return m;
}

// Inference-side comparison: the seed evaluated graphs by running the same
// recorded-op chain under NoGradGuard; the current path walks row views.
double MeasureSeedInferenceMix(int rounds) {
  ScopedPoolEnabled pool(false);
  tpgnn::tensor::NoGradGuard no_grad;
  SeedGruParams params = MakeSeedGruParams(11);
  Tensor node_state = RandomMatrix(kNodes, kDim, 12);
  SeedStyleForward(params, node_state);  // Warm-up.
  tpgnn::Stopwatch watch;
  for (int r = 0; r < rounds; ++r) {
    benchmark::DoNotOptimize(SeedStyleForward(params, node_state).data());
  }
  return watch.ElapsedSeconds() * 1e9 /
         (static_cast<double>(rounds) * kNodes);
}

double MeasureZeroCopyInferenceMix(int rounds) {
  ScopedPoolEnabled pool(true);
  tpgnn::tensor::NoGradGuard no_grad;
  Rng rng(11);
  tpgnn::nn::GruCell gru(kDim, kDim, rng);
  Tensor node_state = RandomMatrix(kNodes, kDim, 12);
  std::vector<float> h(static_cast<size_t>(kDim));
  std::vector<float> message(static_cast<size_t>(kDim));
  tpgnn::nn::GruScratch scratch;
  ZeroCopyInferenceSweep(gru, node_state, h, message, scratch);  // Warm-up.
  tpgnn::Stopwatch watch;
  for (int r = 0; r < rounds; ++r) {
    ZeroCopyInferenceSweep(gru, node_state, h, message, scratch);
    benchmark::DoNotOptimize(h.data());
  }
  return watch.ElapsedSeconds() * 1e9 /
         (static_cast<double>(rounds) * kNodes);
}

MixMeasurement MeasureSumTrainMix(bool pool_enabled, bool fused_assembly,
                                  int rounds) {
  ScopedPoolEnabled pool(pool_enabled);
  Rng rng(11);
  tpgnn::nn::Time2Vec t2v(kTimeDim, rng);
  Tensor x = RandomMatrix(kNodes, kDim, 12, /*requires_grad=*/true);
  tpgnn::tensor::Sum(SumTrainForward(t2v, x, fused_assembly)).Backward();

  const auto before = tpgnn::util::GetBufferPoolStats();
  tpgnn::Stopwatch watch;
  for (int r = 0; r < rounds; ++r) {
    tpgnn::tensor::Sum(SumTrainForward(t2v, x, fused_assembly)).Backward();
  }
  const double seconds = watch.ElapsedSeconds();
  const auto after = tpgnn::util::GetBufferPoolStats();

  const double edges = static_cast<double>(rounds) * kNodes;
  MixMeasurement m;
  m.ns_per_edge = seconds * 1e9 / edges;
  m.buffer_allocs_per_edge =
      static_cast<double>(after.pool_misses - before.pool_misses) / edges;
  m.node_allocs_per_edge = static_cast<double>(
      (after.node_acquires - after.node_reuses) -
      (before.node_acquires - before.node_reuses)) / edges;
  return m;
}

double MeasureSumSeedInferenceMix(int rounds) {
  ScopedPoolEnabled pool(false);
  tpgnn::tensor::NoGradGuard no_grad;
  Rng rng(11);
  tpgnn::nn::Time2Vec t2v(kTimeDim, rng);
  Tensor x = RandomMatrix(kNodes, kDim, 12);
  SumTrainForward(t2v, x, /*fused_assembly=*/false);  // Warm-up.
  tpgnn::Stopwatch watch;
  for (int r = 0; r < rounds; ++r) {
    benchmark::DoNotOptimize(
        SumTrainForward(t2v, x, /*fused_assembly=*/false).data());
  }
  return watch.ElapsedSeconds() * 1e9 /
         (static_cast<double>(rounds) * kNodes);
}

double MeasureSumZeroCopyInferenceMix(int rounds) {
  Rng rng(11);
  tpgnn::nn::Time2Vec t2v(kTimeDim, rng);
  std::vector<float> x(static_cast<size_t>(kNodes * kDim), 0.25f);
  std::vector<float> m(static_cast<size_t>(kNodes * kTimeDim), 0.0f);
  std::vector<float> ft(static_cast<size_t>(kTimeDim));
  SumZeroCopySweep(t2v, x, m, ft);  // Warm-up.
  tpgnn::Stopwatch watch;
  for (int r = 0; r < rounds; ++r) {
    SumZeroCopySweep(t2v, x, m, ft);
    benchmark::DoNotOptimize(x.data());
  }
  return watch.ElapsedSeconds() * 1e9 /
         (static_cast<double>(rounds) * kNodes);
}

std::string MixJson(const char* bench_name, const char* variant,
                    const MixMeasurement& m) {
  std::ostringstream line;
  line << "{\"bench\": \"" << bench_name << "\", \"variant\": \""
       << variant << "\", \"ns_per_edge\": " << m.ns_per_edge
       << ", \"buffer_allocs_per_edge\": " << m.buffer_allocs_per_edge
       << ", \"node_allocs_per_edge\": " << m.node_allocs_per_edge << "}";
  return line.str();
}

// --- Planned executor vs hand-fused inference (BENCH_plan.json) ------------
// The per-edge inference mixes the planned arena executor (tensor/plan.h +
// tensor/executor.h) replaced: the hand-fused scalar loops TemporalPropagation
// used before the refactor, reproduced here verbatim as the baseline. Both
// sides run the same math over the same rows — SUM: fused tanh-add state fold
// + Time2Vec accumulator fold + per-node readout; GRU: staged message
// (src row ++ time encoding) through GruCell::StepInto + tanh readout.
// The baseline is pinned to the scalar kernel table (the only implementation
// that existed pre-refactor); the planned executor is measured both pinned
// scalar (pure dispatch overhead) and in the auto-selected SIMD mode.

namespace plan = tpgnn::tensor::plan;

std::vector<float> RandomRows(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.UniformFloat(-1.0f, 1.0f);
  return v;
}

std::array<const float*, plan::kNumParamSlots> PlanParamTable(
    const tpgnn::nn::Time2Vec& t2v, const tpgnn::nn::GruCell* gru) {
  std::array<const float*, plan::kNumParamSlots> table{};
  table[plan::kParamW0] = t2v.w0().data().data();
  table[plan::kParamPhi0] = t2v.phi0().data().data();
  table[plan::kParamW] = t2v.w().data().data();
  table[plan::kParamPhi] = t2v.phi().data().data();
  if (gru != nullptr) {
    table[plan::kParamWz] = gru->wz().data().data();
    table[plan::kParamUz] = gru->uz().data().data();
    table[plan::kParamBz] = gru->bz().data().data();
    table[plan::kParamWr] = gru->wr().data().data();
    table[plan::kParamUr] = gru->ur().data().data();
    table[plan::kParamBr] = gru->br().data().data();
    table[plan::kParamWn] = gru->wn().data().data();
    table[plan::kParamUn] = gru->un().data().data();
    table[plan::kParamBn] = gru->bn().data().data();
  }
  return table;
}

// The pre-refactor SUM fold (stabilized, absolute basis): fused tanh-add
// state update, Time2Vec encode + tanh-add accumulator fold, then the
// per-node readout [tanh(x) ++ tanh(m)].
void HandFusedSumSweep(const tpgnn::nn::Time2Vec& t2v, std::vector<float>& x,
                       std::vector<float>& m, std::vector<float>& out,
                       std::vector<float>& ft) {
  for (int64_t e = 0; e < kNodes; ++e) {
    const float* src = x.data() + e * kDim;
    float* dst = x.data() + ((e * 7 + 3) % kNodes) * kDim;
    for (int64_t i = 0; i < kDim; ++i) {
      dst[i] = std::tanh(src[i] + dst[i]);
    }
    t2v.EvalInto(static_cast<float>(e) * 0.01f, ft.data());
    float* mrow = m.data() + ((e * 7 + 3) % kNodes) * kTimeDim;
    for (int64_t i = 0; i < kTimeDim; ++i) {
      mrow[i] = std::tanh(ft[static_cast<size_t>(i)] + mrow[i]);
    }
  }
  for (int64_t v = 0; v < kNodes; ++v) {
    const float* xv = x.data() + v * kDim;
    const float* mv = m.data() + v * kTimeDim;
    float* o = out.data() + v * (kDim + kTimeDim);
    for (int64_t i = 0; i < kDim; ++i) o[i] = std::tanh(xv[i]);
    for (int64_t i = 0; i < kTimeDim; ++i) o[kDim + i] = std::tanh(mv[i]);
  }
}

// The same SUM sweep through the compiled plans: one edge program + one
// time program per edge, one finalize program per node.
void PlannedSumSweep(const plan::CompiledPlans& plans, plan::ParamTable params,
                     plan::PlanExecutor& exec, std::vector<float>& x,
                     std::vector<float>& m, std::vector<float>& out) {
  plan::RunContext ctx;
  for (int64_t e = 0; e < kNodes; ++e) {
    ctx.src = x.data() + e * kDim;
    ctx.dst = x.data() + ((e * 7 + 3) % kNodes) * kDim;
    exec.Run(plans.edge, params, ctx);
    ctx.m = m.data() + ((e * 7 + 3) % kNodes) * kTimeDim;
    ctx.t = static_cast<float>(e) * 0.01f;
    exec.Run(plans.time, params, ctx);
  }
  for (int64_t v = 0; v < kNodes; ++v) {
    ctx.src = x.data() + v * kDim;
    ctx.m = m.data() + v * kTimeDim;
    ctx.dst = out.data() + v * (kDim + kTimeDim);
    exec.Run(plans.finalize, params, ctx);
  }
}

// The pre-refactor GRU fold: stage [src row ++ Time2Vec(t)] in a message
// buffer, StepInto the destination row in place, tanh readout per node.
void HandFusedGruSweep(const tpgnn::nn::GruCell& gru,
                       const tpgnn::nn::Time2Vec& t2v,
                       std::vector<float>& state, std::vector<float>& out,
                       std::vector<float>& message,
                       tpgnn::nn::GruScratch& scratch) {
  for (int64_t e = 0; e < kNodes; ++e) {
    const float* src = state.data() + e * kDim;
    float* dst = state.data() + ((e * 7 + 3) % kNodes) * kDim;
    std::copy(src, src + kDim, message.begin());
    t2v.EvalInto(static_cast<float>(e) * 0.01f, message.data() + kDim);
    gru.StepInto(message.data(), dst, dst, scratch);
  }
  for (int64_t v = 0; v < kNodes; ++v) {
    const float* xv = state.data() + v * kDim;
    float* o = out.data() + v * kDim;
    for (int64_t i = 0; i < kDim; ++i) o[i] = std::tanh(xv[i]);
  }
}

void PlannedGruSweep(const plan::CompiledPlans& plans, plan::ParamTable params,
                     plan::PlanExecutor& exec, std::vector<float>& state,
                     std::vector<float>& out) {
  plan::RunContext ctx;
  for (int64_t e = 0; e < kNodes; ++e) {
    ctx.src = state.data() + e * kDim;
    ctx.dst = state.data() + ((e * 7 + 3) % kNodes) * kDim;
    ctx.t = static_cast<float>(e) * 0.01f;
    exec.Run(plans.edge, params, ctx);
  }
  for (int64_t v = 0; v < kNodes; ++v) {
    ctx.src = state.data() + v * kDim;
    ctx.dst = out.data() + v * kDim;
    exec.Run(plans.finalize, params, ctx);
  }
}

MixMeasurement MeasureSumPlanMix(bool planned, tpgnn::tensor::SimdMode mode,
                                 int rounds) {
  ScopedPoolEnabled pool(true);
  tpgnn::tensor::NoGradGuard no_grad;
  tpgnn::tensor::ScopedSimdMode pin(mode);
  Rng rng(19);
  tpgnn::nn::Time2Vec t2v(kTimeDim, rng);
  plan::PlanSpec spec;
  spec.updater = plan::PlanSpec::Updater::kSum;
  spec.embed_dim = kDim;
  spec.time_dim = kTimeDim;
  spec.stabilize = true;
  const plan::CompiledPlans plans = plan::BuildPlans(spec);
  const auto params = PlanParamTable(t2v, nullptr);
  std::vector<float> x = RandomRows(kNodes * kDim, 20);
  std::vector<float> m(static_cast<size_t>(kNodes * kTimeDim), 0.0f);
  std::vector<float> out(static_cast<size_t>(kNodes * (kDim + kTimeDim)));
  std::vector<float> ft(static_cast<size_t>(kTimeDim));
  plan::PlanExecutor exec;

  auto sweep = [&] {
    if (planned) {
      PlannedSumSweep(plans, params.data(), exec, x, m, out);
    } else {
      HandFusedSumSweep(t2v, x, m, out, ft);
    }
  };
  sweep();  // Warm the arena; values saturate but timing is shape-bound.

  const auto before = tpgnn::util::GetBufferPoolStats();
  tpgnn::Stopwatch watch;
  for (int r = 0; r < rounds; ++r) {
    sweep();
    benchmark::DoNotOptimize(out.data());
  }
  const double seconds = watch.ElapsedSeconds();
  const auto after = tpgnn::util::GetBufferPoolStats();

  const double edges = static_cast<double>(rounds) * kNodes;
  MixMeasurement result;
  result.ns_per_edge = seconds * 1e9 / edges;
  result.buffer_allocs_per_edge =
      static_cast<double>(after.pool_misses - before.pool_misses) / edges;
  result.node_allocs_per_edge = static_cast<double>(
      (after.node_acquires - after.node_reuses) -
      (before.node_acquires - before.node_reuses)) / edges;
  return result;
}

MixMeasurement MeasureGruPlanMix(bool planned, tpgnn::tensor::SimdMode mode,
                                 int rounds) {
  ScopedPoolEnabled pool(true);
  tpgnn::tensor::NoGradGuard no_grad;
  tpgnn::tensor::ScopedSimdMode pin(mode);
  Rng rng(23);
  tpgnn::nn::GruCell gru(kDim + kTimeDim, kDim, rng);
  tpgnn::nn::Time2Vec t2v(kTimeDim, rng);
  plan::PlanSpec spec;
  spec.updater = plan::PlanSpec::Updater::kGru;
  spec.embed_dim = kDim;
  spec.time_dim = kTimeDim;
  const plan::CompiledPlans plans = plan::BuildPlans(spec);
  const auto params = PlanParamTable(t2v, &gru);
  std::vector<float> state = RandomRows(kNodes * kDim, 24);
  std::vector<float> out(static_cast<size_t>(kNodes * kDim));
  std::vector<float> message(static_cast<size_t>(kDim + kTimeDim));
  tpgnn::nn::GruScratch scratch;
  plan::PlanExecutor exec;

  auto sweep = [&] {
    if (planned) {
      PlannedGruSweep(plans, params.data(), exec, state, out);
    } else {
      HandFusedGruSweep(gru, t2v, state, out, message, scratch);
    }
  };
  sweep();  // Warm the arena / StepInto scratch.

  const auto before = tpgnn::util::GetBufferPoolStats();
  tpgnn::Stopwatch watch;
  for (int r = 0; r < rounds; ++r) {
    sweep();
    benchmark::DoNotOptimize(out.data());
  }
  const double seconds = watch.ElapsedSeconds();
  const auto after = tpgnn::util::GetBufferPoolStats();

  const double edges = static_cast<double>(rounds) * kNodes;
  MixMeasurement result;
  result.ns_per_edge = seconds * 1e9 / edges;
  result.buffer_allocs_per_edge =
      static_cast<double>(after.pool_misses - before.pool_misses) / edges;
  result.node_allocs_per_edge = static_cast<double>(
      (after.node_acquires - after.node_reuses) -
      (before.node_acquires - before.node_reuses)) / edges;
  return result;
}

void WritePlanReport() {
  const std::string path = tpgnn::GetEnvString("TPGNN_BENCH_PLAN_JSON",
                                               "BENCH_plan.json");
  const int rounds =
      static_cast<int>(tpgnn::GetEnvInt("TPGNN_PLAN_ROUNDS", 1000));
  const tpgnn::tensor::SimdMode active =
      tpgnn::tensor::ActiveSimdMode();
  const char* simd_name = tpgnn::tensor::SimdModeName(active);
  std::printf("== planned executor vs hand-fused inference "
              "(27 nodes x 64+6 dims, %d rounds, simd=%s) ==\n",
              rounds, simd_name);

  std::vector<std::string> lines;
  struct Mix {
    const char* bench;
    MixMeasurement (*measure)(bool, tpgnn::tensor::SimdMode, int);
  };
  const Mix mixes[] = {
      {"plan_sum_edge_mix_27x64t6", MeasureSumPlanMix},
      {"plan_gru_edge_mix_27x64t6", MeasureGruPlanMix},
  };
  for (const Mix& mix : mixes) {
    const MixMeasurement fused =
        mix.measure(false, tpgnn::tensor::SimdMode::kScalar, rounds);
    const MixMeasurement planned_scalar =
        mix.measure(true, tpgnn::tensor::SimdMode::kScalar, rounds);
    const MixMeasurement planned_simd = mix.measure(true, active, rounds);
    const double scalar_speedup = planned_scalar.ns_per_edge > 0.0
        ? fused.ns_per_edge / planned_scalar.ns_per_edge : 0.0;
    const double simd_speedup = planned_simd.ns_per_edge > 0.0
        ? fused.ns_per_edge / planned_simd.ns_per_edge : 0.0;
    std::printf("  %s\n", mix.bench);
    std::printf("    hand-fused scalar : %8.1f ns/edge  "
                "%5.2f buffer allocs/edge\n",
                fused.ns_per_edge, fused.buffer_allocs_per_edge);
    std::printf("    planned scalar    : %8.1f ns/edge  "
                "%5.2f buffer allocs/edge  (%.2fx)\n",
                planned_scalar.ns_per_edge,
                planned_scalar.buffer_allocs_per_edge, scalar_speedup);
    std::printf("    planned %-9s : %8.1f ns/edge  "
                "%5.2f buffer allocs/edge  (%.2fx)\n",
                simd_name, planned_simd.ns_per_edge,
                planned_simd.buffer_allocs_per_edge, simd_speedup);
    lines.push_back(MixJson(mix.bench, "hand_fused_scalar", fused));
    lines.push_back(MixJson(mix.bench, "planned_scalar", planned_scalar));
    lines.push_back(MixJson(mix.bench, "planned_simd", planned_simd));
    std::ostringstream line;
    line << "{\"bench\": \"" << mix.bench
         << "\", \"simd\": \"" << simd_name
         << "\", \"speedup_planned_scalar_vs_fused\": " << scalar_speedup
         << ", \"speedup_planned_simd_vs_fused\": " << simd_speedup << "}";
    lines.push_back(line.str());
  }

  std::ofstream out(path, std::ios::trunc);
  out << "[\n";
  for (size_t i = 0; i < lines.size(); ++i) {
    out << lines[i] << (i + 1 < lines.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::printf("wrote %s\n\n", path.c_str());
  std::fflush(stdout);
}

// A tiny fig6-style cell (HDFS, paper-default dims): train seconds and
// inference microseconds per graph, pool off vs on. Absolute numbers are
// comparable with the TP-GNN cells fig6_runtime reports at the same
// TPGNN_GRAPHS scale.
std::string MeasureModelCell(const char* name, tpgnn::core::Updater updater) {
  namespace core = tpgnn::core;
  namespace data = tpgnn::data;
  namespace eval = tpgnn::eval;

  tpgnn::graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), 60, /*seed=*/21);
  core::TpGnnConfig config;
  config.updater = updater;

  double train_seconds[2] = {0.0, 0.0};
  double infer_micros[2] = {0.0, 0.0};
  for (int pool_on = 0; pool_on < 2; ++pool_on) {
    ScopedPoolEnabled pool(pool_on != 0);
    core::TpGnnModel model(config, 7);
    eval::TrainOptions options;
    options.epochs = 2;
    options.learning_rate = 3e-3f;
    options.seed = 11;
    tpgnn::Stopwatch train_watch;
    eval::TrainClassifier(model, dataset, options);
    train_seconds[pool_on] = train_watch.ElapsedSeconds();
    infer_micros[pool_on] =
        eval::MeasureInferenceMicros(model, dataset, /*num_threads=*/1);
  }

  std::ostringstream line;
  line << "{\"bench\": \"fig6_cell_hdfs_" << name
       << "\", \"train_seconds_pool_off\": " << train_seconds[0]
       << ", \"train_seconds_pool_on\": " << train_seconds[1]
       << ", \"train_speedup\": "
       << (train_seconds[1] > 0.0 ? train_seconds[0] / train_seconds[1] : 0.0)
       << ", \"inference_us_per_graph_pool_off\": " << infer_micros[0]
       << ", \"inference_us_per_graph_pool_on\": " << infer_micros[1] << "}";
  return line.str();
}

void WriteAllocReport() {
  const std::string path = tpgnn::GetEnvString("TPGNN_BENCH_ALLOC_JSON",
                                               "BENCH_alloc.json");
  const int rounds =
      static_cast<int>(tpgnn::GetEnvInt("TPGNN_ALLOC_ROUNDS", 400));
  std::printf("== per-edge op mix (27 nodes x 64 dims, %d rounds) ==\n",
              rounds);
  const MixMeasurement seed = MeasureSeedTrainMix(rounds);
  const MixMeasurement off = MeasurePerEdgeMix(false, rounds);
  const MixMeasurement on = MeasurePerEdgeMix(true, rounds);
  const double train_speedup =
      on.ns_per_edge > 0.0 ? seed.ns_per_edge / on.ns_per_edge : 0.0;
  const double pool_speedup =
      on.ns_per_edge > 0.0 ? off.ns_per_edge / on.ns_per_edge : 0.0;
  std::printf("  seed (unfused, no pool): %8.1f ns/edge  "
              "%5.2f buffer allocs/edge  %5.2f node allocs/edge\n",
              seed.ns_per_edge, seed.buffer_allocs_per_edge,
              seed.node_allocs_per_edge);
  std::printf("  fused, pool off        : %8.1f ns/edge  "
              "%5.2f buffer allocs/edge  %5.2f node allocs/edge\n",
              off.ns_per_edge, off.buffer_allocs_per_edge,
              off.node_allocs_per_edge);
  std::printf("  fused, pool on         : %8.1f ns/edge  "
              "%5.2f buffer allocs/edge  %5.2f node allocs/edge\n",
              on.ns_per_edge, on.buffer_allocs_per_edge,
              on.node_allocs_per_edge);
  std::printf("  train speedup vs seed  : %.2fx (pool on vs off: %.2fx)\n",
              train_speedup, pool_speedup);

  const double infer_seed = MeasureSeedInferenceMix(rounds * 3);
  const double infer_now = MeasureZeroCopyInferenceMix(rounds * 3);
  const double infer_speedup = infer_now > 0.0 ? infer_seed / infer_now : 0.0;
  std::printf("  inference: seed recorded-ops %8.1f ns/edge, zero-copy row "
              "views %8.1f ns/edge -> %.2fx\n",
              infer_seed, infer_now, infer_speedup);

  std::printf("== SUM-updater per-edge mix (27 nodes x 64+6 dims, %d rounds)"
              " ==\n", rounds);
  const MixMeasurement sum_seed =
      MeasureSumTrainMix(/*pool=*/false, /*fused_assembly=*/false, rounds);
  const MixMeasurement sum_now =
      MeasureSumTrainMix(/*pool=*/true, /*fused_assembly=*/true, rounds);
  const double sum_train_speedup =
      sum_now.ns_per_edge > 0.0 ? sum_seed.ns_per_edge / sum_now.ns_per_edge
                                : 0.0;
  std::printf("  seed (no pool)         : %8.1f ns/edge  "
              "%5.2f buffer allocs/edge  %5.2f node allocs/edge\n",
              sum_seed.ns_per_edge, sum_seed.buffer_allocs_per_edge,
              sum_seed.node_allocs_per_edge);
  std::printf("  pooled, fused assembly : %8.1f ns/edge  "
              "%5.2f buffer allocs/edge  %5.2f node allocs/edge\n",
              sum_now.ns_per_edge, sum_now.buffer_allocs_per_edge,
              sum_now.node_allocs_per_edge);
  const double sum_infer_seed = MeasureSumSeedInferenceMix(rounds * 3);
  const double sum_infer_now = MeasureSumZeroCopyInferenceMix(rounds * 3);
  const double sum_infer_speedup =
      sum_infer_now > 0.0 ? sum_infer_seed / sum_infer_now : 0.0;
  std::printf("  train speedup vs seed  : %.2fx\n", sum_train_speedup);
  std::printf("  inference: seed recorded-ops %8.1f ns/edge, zero-copy row "
              "updates %8.1f ns/edge -> %.2fx\n",
              sum_infer_seed, sum_infer_now, sum_infer_speedup);

  std::vector<std::string> lines;
  lines.push_back(MixJson("gru_per_edge_train_mix_27x64",
                          "seed_unfused_nopool", seed));
  lines.push_back(MixJson("gru_per_edge_train_mix_27x64", "fused_pool_off",
                          off));
  lines.push_back(MixJson("gru_per_edge_train_mix_27x64", "fused_pool_on",
                          on));
  {
    std::ostringstream line;
    line << "{\"bench\": \"gru_per_edge_train_mix_27x64\", "
         << "\"speedup_vs_seed\": " << train_speedup
         << ", \"speedup_pool_on_vs_off\": " << pool_speedup << "}";
    lines.push_back(line.str());
  }
  {
    std::ostringstream line;
    line << "{\"bench\": \"gru_per_edge_inference_mix_27x64\", "
         << "\"seed_recorded_ns_per_edge\": " << infer_seed
         << ", \"zero_copy_ns_per_edge\": " << infer_now
         << ", \"speedup\": " << infer_speedup << "}";
    lines.push_back(line.str());
  }
  lines.push_back(MixJson("sum_per_edge_train_mix_27x64",
                          "seed_unfused_nopool", sum_seed));
  lines.push_back(MixJson("sum_per_edge_train_mix_27x64",
                          "fused_pool_on", sum_now));
  {
    std::ostringstream line;
    line << "{\"bench\": \"sum_per_edge_train_mix_27x64\", "
         << "\"speedup_vs_seed\": " << sum_train_speedup << "}";
    lines.push_back(line.str());
  }
  {
    std::ostringstream line;
    line << "{\"bench\": \"sum_per_edge_inference_mix_27x64\", "
         << "\"seed_recorded_ns_per_edge\": " << sum_infer_seed
         << ", \"zero_copy_ns_per_edge\": " << sum_infer_now
         << ", \"speedup\": " << sum_infer_speedup << "}";
    lines.push_back(line.str());
  }
  lines.push_back(MeasureModelCell("tpgnn_sum", tpgnn::core::Updater::kSum));
  lines.push_back(MeasureModelCell("tpgnn_gru", tpgnn::core::Updater::kGru));

  std::ofstream out(path, std::ios::trunc);
  out << "[\n";
  for (size_t i = 0; i < lines.size(); ++i) {
    out << lines[i] << (i + 1 < lines.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::printf("wrote %s\n\n", path.c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  WriteAllocReport();
  WritePlanReport();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
