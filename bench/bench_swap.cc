// Hot-swap benchmark: drive the InferenceEngine with a replayed multi-
// session stream and roll a new model version in mid-stream, measuring what
// the swap costs the serving path and gating the lifecycle invariants
// (DESIGN.md §4.8):
//
//   * mixed_version_scores must be exactly 0 — a session begun under
//     version A never mixes A's folded state with B's classifier head, under
//     either SwapPolicy.
//   * Score p99 inside the swap window must stay bounded relative to the
//     steady-state p99 (the swap is an atomic pointer move; kImmediateRebase
//     additionally refolds each live session on its next touch, which is the
//     cost this bench makes visible).
//   * A shadow version with the primary's seed must re-score every primary
//     score bit-identically (shadow_delta_max == 0) with zero failures —
//     the exactly-once attribution check, off the client-visible path.
//
// Three runs: swap_drain (SwapPolicy::kDrain), swap_rebase
// (SwapPolicy::kImmediateRebase, v2 loaded from a real checkpoint file so
// the load path is exercised too), and shadow (no swap; shadow scoring
// enabled for the whole stream to price the off-hot-path re-score).
//
// Writes BENCH_swap.json (TPGNN_BENCH_SWAP_JSON); check_bench.py gates the
// record with --require-zero mixed_version_scores. Scale knobs:
// TPGNN_SWAP_SESSIONS (default 96), TPGNN_SWAP_SHARDS (default 4),
// TPGNN_SWAP_SCORE_EVERY (default 4 edges).
//
// Flags: --max_p99_multiple=N (default 25) — the swap-window p99 may exceed
// the pre-swap steady-state p99 by at most this factor (with a 2 ms absolute
// floor so micro-latency jitter on fast machines cannot trip the gate).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/model.h"
#include "data/datasets.h"
#include "model/registry.h"
#include "nn/checkpoint.h"
#include "serve/inference_engine.h"
#include "serve/replay.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace model = tpgnn::model;
namespace nn = tpgnn::nn;
namespace serve = tpgnn::serve;

namespace {

constexpr uint64_t kPrimarySeed = 1;
constexpr uint64_t kV2Seed = 2;

// Which lifecycle action a run performs mid-stream.
enum class Mode { kSwapDrain, kSwapRebase, kShadow };

struct SwapMeasurement {
  std::string name;
  size_t events = 0;
  size_t scores = 0;
  double wall_seconds = 0.0;
  double steady_p99_us = 0.0;  // Score p99 before the swap point.
  double swap_p99_us = 0.0;    // Score p99 inside the swap window.
  serve::MetricsSnapshot metrics;

  double events_per_second() const {
    return wall_seconds > 0.0 ? events / wall_seconds : 0.0;
  }
};

// Histogram delta between two snapshots of the same monotone histogram:
// the distribution of samples recorded in the window (pre, post].
serve::LatencyHistogram::Snapshot HistogramWindow(
    const serve::LatencyHistogram::Snapshot& pre,
    const serve::LatencyHistogram::Snapshot& post) {
  serve::LatencyHistogram::Snapshot window;
  window.count = post.count - pre.count;
  window.sum_micros = post.sum_micros - pre.sum_micros;
  for (size_t i = 0; i < window.buckets.size(); ++i) {
    window.buckets[i] = post.buckets[i] - pre.buckets[i];
  }
  return window;
}

// Replays `events` through a fresh engine; at one third of the stream the
// v2 checkpoint is MODEL_LOADed, at two thirds it is activated under the
// run's SwapPolicy (Mode::kShadow instead registers a primary-seed shadow
// up front and never swaps). Scores drain in micro-batches like a real
// caller under load; the swap window covers the activation plus the next
// sixth of the stream.
SwapMeasurement RunSwapStream(Mode mode, const std::string& name,
                              const core::TpGnnConfig& config,
                              const std::vector<serve::Event>& events,
                              int num_shards,
                              const std::string& checkpoint_path) {
  serve::EngineOptions options;
  options.num_shards = num_shards;
  options.max_pending_scores = 256;
  options.max_batch = 64;
  serve::InferenceEngine engine(config, kPrimarySeed, options);

  if (mode == Mode::kShadow) {
    TPGNN_CHECK(engine.registry().Register("shadow", kPrimarySeed).ok());
    TPGNN_CHECK(engine.registry().SetShadow("shadow").ok());
  }

  const size_t load_at = events.size() / 3;
  const size_t swap_at = 2 * events.size() / 3;
  const size_t window_end = swap_at + events.size() / 6;

  std::vector<serve::ScoreResult> results;
  serve::MetricsSnapshot pre_swap;
  serve::MetricsSnapshot post_window;
  bool have_window = false;
  tpgnn::Stopwatch wall;
  for (size_t i = 0; i < events.size(); ++i) {
    if (mode != Mode::kShadow) {
      if (i == load_at) {
        tpgnn::Status loaded = engine.LoadModelVersion("v2", checkpoint_path);
        TPGNN_CHECK(loaded.ok()) << loaded.ToString();
      } else if (i == swap_at) {
        // Drain so the pre-swap snapshot covers every steady-state score.
        engine.ProcessPending(&results);
        pre_swap = engine.metrics().Snapshot();
        const model::SwapPolicy policy = mode == Mode::kSwapRebase
                                             ? model::SwapPolicy::kImmediateRebase
                                             : model::SwapPolicy::kDrain;
        tpgnn::Status activated = engine.ActivateModel("v2", policy);
        TPGNN_CHECK(activated.ok()) << activated.ToString();
      } else if (i == window_end) {
        engine.ProcessPending(&results);
        post_window = engine.metrics().Snapshot();
        have_window = true;
      }
    }
    tpgnn::Status status = engine.Ingest(events[i]);
    while (status.code() == tpgnn::StatusCode::kOverloaded) {
      engine.ProcessPending(&results);
      status = engine.Ingest(events[i]);
    }
    TPGNN_CHECK(status.ok()) << status.ToString();
    if (engine.pending_scores() >= static_cast<size_t>(options.max_batch)) {
      engine.ProcessPending(&results);
    }
  }
  engine.Flush(&results);

  SwapMeasurement m;
  m.name = name;
  m.wall_seconds = wall.ElapsedSeconds();
  m.events = events.size();
  for (const serve::ScoreResult& r : results) {
    if (r.status.ok()) ++m.scores;
  }
  m.metrics = engine.metrics().Snapshot();
  if (mode != Mode::kShadow) {
    if (!have_window) post_window = m.metrics;  // Tiny stream: window = tail.
    m.steady_p99_us = pre_swap.score_latency.PercentileMicros(0.99);
    m.swap_p99_us =
        HistogramWindow(pre_swap.score_latency, post_window.score_latency)
            .PercentileMicros(0.99);
  }
  return m;
}

std::string ToJsonLine(const SwapMeasurement& m) {
  std::ostringstream line;
  line << "{\"bench\": \"swap_" << m.name
       << "\", \"events\": " << m.events
       << ", \"scores\": " << m.scores
       << ", \"wall_seconds\": " << m.wall_seconds
       << ", \"events_per_second\": " << m.events_per_second()
       << ", \"score_p50_us\": " << m.metrics.score_latency.PercentileMicros(0.5)
       << ", \"score_p99_us\": " << m.metrics.score_latency.PercentileMicros(0.99)
       << ", \"steady_p99_us\": " << m.steady_p99_us
       << ", \"swap_p99_us\": " << m.swap_p99_us
       << ", \"mixed_version_scores\": " << m.metrics.mixed_version_scores
       << ", \"version_rebases\": " << m.metrics.version_rebases
       << ", \"model_loads\": " << m.metrics.model_loads
       << ", \"model_activations\": " << m.metrics.model_activations
       << ", \"shadow_scores\": " << m.metrics.shadow_scores
       << ", \"shadow_failures\": " << m.metrics.shadow_failures
       << ", \"shadow_delta_max\": " << m.metrics.shadow_delta_max
       << ", \"shadow_p99_us\": "
       << m.metrics.shadow_latency.PercentileMicros(0.99) << "}";
  return line.str();
}

}  // namespace

int main(int argc, char** argv) {
  double max_p99_multiple = 25.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--max_p99_multiple=", 19) == 0) {
      max_p99_multiple = std::atof(arg + 19);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --max_p99_multiple=N)\n", arg);
      return 2;
    }
  }

  const int64_t sessions = tpgnn::GetEnvInt("TPGNN_SWAP_SESSIONS", 96);
  const int shards = static_cast<int>(tpgnn::GetEnvInt("TPGNN_SWAP_SHARDS", 4));
  const int64_t score_every = tpgnn::GetEnvInt("TPGNN_SWAP_SCORE_EVERY", 4);

  core::TpGnnConfig config;  // Serving formulation: invariant time basis.
  config.time_basis = core::TimeBasis::kInvariant;

  // The v2 checkpoint the swap runs load mid-stream: a real file so the
  // bench exercises the same pre-flight + LoadParameters path as MODEL_LOAD.
  const std::string ckpt_path = tpgnn::GetEnvString(
      "TPGNN_SWAP_CKPT", "bench_swap_ckpt_v2.tmp");
  {
    core::TpGnnModel v2(config, kV2Seed);
    tpgnn::Status saved =
        nn::SaveParameters(v2, ckpt_path, core::ConfigMetadata(config));
    TPGNN_CHECK(saved.ok()) << saved.ToString();
  }

  tpgnn::graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), sessions, /*seed=*/17);
  serve::ReplayOptions replay_options;
  replay_options.session_start_interval = 0.25;
  replay_options.score_every_edges = score_every;
  serve::EventReplayer replayer(dataset, replay_options);
  std::printf("stream: %zu sessions, %zu events, %zu score requests, "
              "%d shards\n",
              replayer.num_sessions(), replayer.events().size(),
              replayer.num_score_requests(), shards);

  struct RunSpec {
    Mode mode;
    const char* name;
  };
  const RunSpec specs[] = {{Mode::kSwapDrain, "drain"},
                           {Mode::kSwapRebase, "rebase"},
                           {Mode::kShadow, "shadow"}};

  std::vector<SwapMeasurement> measurements;
  for (const RunSpec& spec : specs) {
    RunSwapStream(spec.mode, spec.name, config, replayer.events(),
                  shards, ckpt_path);  // Warm-up.
    const SwapMeasurement m = RunSwapStream(
        spec.mode, spec.name, config, replayer.events(), shards, ckpt_path);
    std::printf(
        "%-8s %10.0f events/s  score p50/p99 %5.0f/%5.0f us  "
        "steady p99 %5.0f us  swap p99 %5.0f us  mixed %llu  rebases %llu  "
        "shadow %llu (max delta %.3g)\n",
        m.name.c_str(), m.events_per_second(),
        m.metrics.score_latency.PercentileMicros(0.5),
        m.metrics.score_latency.PercentileMicros(0.99), m.steady_p99_us,
        m.swap_p99_us,
        static_cast<unsigned long long>(m.metrics.mixed_version_scores),
        static_cast<unsigned long long>(m.metrics.version_rebases),
        static_cast<unsigned long long>(m.metrics.shadow_scores),
        m.metrics.shadow_delta_max);
    measurements.push_back(m);
  }
  std::remove(ckpt_path.c_str());

  const std::string path =
      tpgnn::GetEnvString("TPGNN_BENCH_SWAP_JSON", "BENCH_swap.json");
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "[\n";
  for (size_t i = 0; i < measurements.size(); ++i) {
    out << "  " << ToJsonLine(measurements[i])
        << (i + 1 < measurements.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::printf("wrote %s\n", path.c_str());

  // Gates. Mixed-version scores are a hard zero under every policy; the
  // swap window's p99 may not blow past the steady-state p99 (2 ms floor
  // absorbs scheduler jitter on runs whose steady p99 is a few µs).
  bool gate_failed = false;
  for (const SwapMeasurement& m : measurements) {
    if (m.metrics.mixed_version_scores != 0) {
      std::fprintf(stderr, "SWAP GATE: %s reported %llu mixed_version_scores\n",
                   m.name.c_str(),
                   static_cast<unsigned long long>(
                       m.metrics.mixed_version_scores));
      gate_failed = true;
    }
    if (m.swap_p99_us > 0.0) {
      const double bound =
          std::max(2000.0, max_p99_multiple * m.steady_p99_us);
      if (m.swap_p99_us > bound) {
        std::fprintf(stderr,
                     "SWAP GATE: %s swap-window p99 %.0f us exceeds bound "
                     "%.0f us (steady p99 %.0f us, multiple %.1f)\n",
                     m.name.c_str(), m.swap_p99_us, bound, m.steady_p99_us,
                     max_p99_multiple);
        gate_failed = true;
      }
    }
    if (m.name == "shadow") {
      // Primary-seed shadow: bit-identical re-score of every primary score.
      if (m.metrics.shadow_scores != m.metrics.scores_completed ||
          m.metrics.shadow_failures != 0 ||
          m.metrics.shadow_delta_max != 0.0) {
        std::fprintf(stderr,
                     "SWAP GATE: shadow parity violated (shadow %llu of %llu "
                     "scores, %llu failures, max delta %.9g)\n",
                     static_cast<unsigned long long>(m.metrics.shadow_scores),
                     static_cast<unsigned long long>(
                         m.metrics.scores_completed),
                     static_cast<unsigned long long>(
                         m.metrics.shadow_failures),
                     m.metrics.shadow_delta_max);
        gate_failed = true;
      }
    }
  }
  return gate_failed ? 1 : 0;
}
