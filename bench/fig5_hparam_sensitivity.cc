// Regenerates Fig. 5: hyperparameter sensitivity of TP-GNN-SUM over the GRU
// hidden size d in {8, 16, 32, 64, 128} and the time dimension d_t in
// {2, 4, 6, 8}, one F1 heatmap per dataset. Expected shape: F1 rises then
// plateaus around d = 32, d_t = 6 (the paper's default).
//
// Grid size is env-tunable: TPGNN_FIG5_FULL=1 runs the full 5x4 grid;
// the default trims to a 3x3 grid to bound runtime.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "util/env.h"

namespace bench = tpgnn::bench;
namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace eval = tpgnn::eval;

int main() {
  bench::BenchSettings settings = bench::LoadSettings();
  // The grid multiplies training runs by ~9x, so this driver halves the
  // per-cell scale by default (env values are still respected as the base).
  settings.graphs_per_dataset = std::max<int64_t>(
      60, settings.graphs_per_dataset / 2);
  settings.epochs = std::max<int64_t>(4, settings.epochs / 2);
  bench::PrintHeader("Fig. 5: hyperparameter sensitivity (TP-GNN-SUM)",
                     settings);
  const eval::ExperimentOptions options =
      bench::MakeExperimentOptions(settings);

  const bool full_grid = tpgnn::GetEnvInt("TPGNN_FIG5_FULL", 0) != 0;
  const std::vector<int64_t> hidden_sizes =
      full_grid ? std::vector<int64_t>{8, 16, 32, 64, 128}
                : std::vector<int64_t>{8, 32, 64};
  const std::vector<int64_t> time_dims =
      full_grid ? std::vector<int64_t>{2, 4, 6, 8}
                : std::vector<int64_t>{2, 6, 8};

  const std::vector<data::DatasetSpec> specs = {
      data::ForumJavaSpec(), data::HdfsSpec(), data::GowallaSpec(),
      data::BrightkiteSpec()};
  for (const data::DatasetSpec& spec : specs) {
    data::TrainTestSplit split = bench::PrepareDataset(spec, settings);
    std::printf("\n== %s: F1 Score (%%) by d (rows) x d_t (cols) ==\n",
                spec.name.c_str());
    std::printf("%8s", "d \\ d_t");
    for (int64_t dt : time_dims) {
      std::printf(" | %6lld", static_cast<long long>(dt));
    }
    std::printf("\n");
    for (int64_t d : hidden_sizes) {
      std::printf("%8lld", static_cast<long long>(d));
      for (int64_t dt : time_dims) {
        core::TpGnnConfig config =
            bench::DefaultTpGnnConfig(core::Updater::kSum);
        config.hidden_dim = d;
        config.time_dim = dt;
        eval::ExperimentResult result = eval::RunExperiment(
            bench::TpGnnFactory(config), split.train, split.test, options);
        std::printf(" | %6.2f", 100.0 * result.metrics.mean.f1);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
