// Regenerates Fig. 4: ablation study of TP-GNN-GRU (same grid as Fig. 3).

#include "ablation_common.h"
#include "core/config.h"

int main() {
  tpgnn::bench::RunAblation(tpgnn::core::Updater::kGru);
  return 0;
}
