// Regenerates Fig. 3: ablation study of TP-GNN-SUM on Forum-java, HDFS,
// Gowalla and Brightkite. Expected shape (Sec. V-F): rand < temp <
// time2Vec < full, and w/o tem below full.

#include "ablation_common.h"
#include "core/config.h"

int main() {
  tpgnn::bench::RunAblation(tpgnn::core::Updater::kSum);
  return 0;
}
