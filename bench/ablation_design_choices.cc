// Design-choice ablations beyond the paper's Figs. 3/4:
//  * the six EdgeAgg methods of Sec. IV-C (the paper adopts Average),
//  * the GRU vs Transformer global extractor (the paper's proposed
//    large-graph extension, Sec. IV-C / Sec. VI future work).
// Run on one log dataset (HDFS) and one trajectory dataset (Gowalla) at
// half the standard scale (the grid multiplies training runs).

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"

namespace bench = tpgnn::bench;
namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace eval = tpgnn::eval;

int main() {
  bench::BenchSettings settings = bench::LoadSettings();
  settings.graphs_per_dataset =
      std::max<int64_t>(60, settings.graphs_per_dataset / 2);
  bench::PrintHeader("Design-choice ablations: EdgeAgg and global module",
                     settings);
  const eval::ExperimentOptions options =
      bench::MakeExperimentOptions(settings);

  const std::vector<std::pair<std::string, core::EdgeAgg>> aggregations = {
      {"Average (paper)", core::EdgeAgg::kAverage},
      {"Hadamard", core::EdgeAgg::kHadamard},
      {"Weighted-L1", core::EdgeAgg::kWeightedL1},
      {"Weighted-L2", core::EdgeAgg::kWeightedL2},
      {"Activation", core::EdgeAgg::kActivation},
      {"Concatenation", core::EdgeAgg::kConcatenation},
  };

  for (const data::DatasetSpec& spec :
       {data::HdfsSpec(), data::GowallaSpec()}) {
    data::TrainTestSplit split = bench::PrepareDataset(spec, settings);

    std::vector<eval::ExperimentResult> results;
    for (const auto& [label, agg] : aggregations) {
      core::TpGnnConfig config =
          bench::DefaultTpGnnConfig(core::Updater::kSum);
      config.edge_agg = agg;
      eval::ExperimentResult r = eval::RunExperiment(
          bench::TpGnnFactory(config), split.train, split.test, options);
      r.model_name = "EdgeAgg " + label;
      results.push_back(r);
    }
    {
      core::TpGnnConfig config =
          bench::DefaultTpGnnConfig(core::Updater::kSum);
      config.global_module = core::GlobalModule::kTransformer;
      eval::ExperimentResult r = eval::RunExperiment(
          bench::TpGnnFactory(config), split.train, split.test, options);
      r.model_name = "Transformer extractor";
      results.push_back(r);
    }
    eval::PrintResultsTable(spec.name + " (TP-GNN-SUM design choices)",
                            results);
  }
  return 0;
}
