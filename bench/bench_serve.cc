// Serving benchmark: drive the InferenceEngine flat-out with a replayed
// event stream and record sustained throughput plus latency percentiles.
//
// Headline runs use TimeBasis::kInvariant (the serving formulation: no
// refolds on monotone streams); the *_refold companions run the absolute
// basis so the cost the invariant basis removes stays visible. A
// long-session sweep (Variant::kTime2Vec, so the extractor stage is O(1)
// and the fold dominates) shows per-score cost flat in session length for
// the invariant basis against the absolute basis' linear growth.
//
// Runs the stream twice per configuration (warm-up + measured). Prints a
// human-readable table and writes a machine-readable record to
// BENCH_serve.json (TPGNN_BENCH_SERVE_JSON).
//
// Scale knobs: TPGNN_SERVE_SESSIONS (default 200), TPGNN_SERVE_SHARDS
// (default 4), TPGNN_SERVE_SCORE_EVERY (default 8 edges),
// TPGNN_SERVE_SWEEP_MAX (default 10000; caps the sweep's session length).
//
// Flags: --max_refolds=N (default 0) — the bench exits nonzero when an
// invariant-basis run reports more than N state_refolds. Monotone replay
// has no out-of-order edges, so any refold is a regression of the O(1)
// contract. Absolute-basis *_refold runs are exempt (refolding is their
// point).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/datasets.h"
#include "serve/inference_engine.h"
#include "serve/replay.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace serve = tpgnn::serve;

namespace {

struct ServeMeasurement {
  std::string name;
  size_t events = 0;
  size_t scores = 0;
  double wall_seconds = 0.0;
  bool refold_gated = false;  // Invariant-basis run: the gate applies.
  serve::MetricsSnapshot metrics;

  double events_per_second() const {
    return wall_seconds > 0.0 ? events / wall_seconds : 0.0;
  }
  double scores_per_second() const {
    return wall_seconds > 0.0 ? scores / wall_seconds : 0.0;
  }
};

// Replays an event stream through a fresh engine, returning wall time and
// the engine's metrics snapshot. Backpressure is honoured the way a real
// caller would: a kOverloaded Ingest triggers a ProcessPending drain.
// When drain_immediately is set every score request is processed as soon
// as it is ingested (the score-on-demand pattern the long-session sweep
// measures: each score observes the max time of its own prefix); otherwise
// scores drain in micro-batches like a real caller under load.
ServeMeasurement RunStream(const std::string& name,
                           const core::TpGnnConfig& config,
                           const std::vector<serve::Event>& events,
                           size_t num_score_requests, int num_shards,
                           bool drain_immediately = false) {
  serve::EngineOptions options;
  options.num_shards = num_shards;
  options.max_pending_scores = 256;
  options.max_batch = 64;
  serve::InferenceEngine engine(config, /*seed=*/1, options);

  std::vector<serve::ScoreResult> results;
  results.reserve(num_score_requests);
  tpgnn::Stopwatch wall;
  for (const serve::Event& event : events) {
    tpgnn::Status status = engine.Ingest(event);
    while (status.code() == tpgnn::StatusCode::kOverloaded) {
      engine.ProcessPending(&results);
      status = engine.Ingest(event);
    }
    TPGNN_CHECK(status.ok()) << status.ToString();
    if (drain_immediately ? engine.pending_scores() > 0
                          : engine.pending_scores() >= options.max_batch) {
      engine.ProcessPending(&results);
    }
  }
  engine.Flush(&results);

  ServeMeasurement m;
  m.name = name;
  m.wall_seconds = wall.ElapsedSeconds();
  m.events = events.size();
  m.refold_gated = config.time_basis == core::TimeBasis::kInvariant;
  for (const serve::ScoreResult& r : results) {
    if (r.status.ok()) ++m.scores;
  }
  m.metrics = engine.metrics().Snapshot();
  return m;
}

// One long monotone session: `length` edges over 8 nodes, timestamps
// 1, 2, ..., length, a score every 16 edges. The worst case for the
// absolute basis (every score sees a new max) and the flat case for the
// invariant one.
std::vector<serve::Event> LongSessionEvents(int64_t length,
                                            size_t* num_scores) {
  constexpr int64_t kNodes = 8;
  constexpr int64_t kFeatureDim = 3;
  constexpr int64_t kScoreEvery = 16;
  std::vector<serve::Event> events;
  events.reserve(static_cast<size_t>(length + length / kScoreEvery + 3));
  double stream_time = 0.0;
  serve::Event begin;
  begin.kind = serve::Event::Kind::kBegin;
  begin.session_id = 1;
  begin.time = stream_time;
  begin.num_nodes = kNodes;
  begin.feature_dim = kFeatureDim;
  for (int64_t node = 0; node < kNodes; ++node) {
    serve::NodeInit init;
    init.node = node;
    init.features = {0.1f * static_cast<float>(node), 0.5f, -0.25f};
    begin.features.push_back(std::move(init));
  }
  events.push_back(std::move(begin));
  *num_scores = 0;
  for (int64_t i = 0; i < length; ++i) {
    serve::Event edge;
    edge.kind = serve::Event::Kind::kEdge;
    edge.session_id = 1;
    edge.time = (stream_time += 0.001);
    edge.src = i % kNodes;
    edge.dst = (i * 5 + 3) % kNodes;
    edge.edge_time = static_cast<double>(i + 1);
    events.push_back(edge);
    if ((i + 1) % kScoreEvery == 0) {
      serve::Event score;
      score.kind = serve::Event::Kind::kScore;
      score.session_id = 1;
      score.time = (stream_time += 0.001);
      events.push_back(score);
      ++*num_scores;
    }
  }
  if (length % kScoreEvery != 0) {
    serve::Event score;
    score.kind = serve::Event::Kind::kScore;
    score.session_id = 1;
    score.time = (stream_time += 0.001);
    events.push_back(score);
    ++*num_scores;
  }
  serve::Event end;
  end.kind = serve::Event::Kind::kEnd;
  end.session_id = 1;
  end.time = (stream_time += 0.001);
  events.push_back(end);
  return events;
}

std::string ToJsonLine(const ServeMeasurement& m) {
  std::ostringstream line;
  line << "{\"bench\": \"serve_" << m.name
       << "\", \"events\": " << m.events
       << ", \"scores\": " << m.scores
       << ", \"wall_seconds\": " << m.wall_seconds
       << ", \"events_per_second\": " << m.events_per_second()
       << ", \"scores_per_second\": " << m.scores_per_second()
       << ", \"score_p50_us\": " << m.metrics.score_latency.PercentileMicros(0.5)
       << ", \"score_p95_us\": " << m.metrics.score_latency.PercentileMicros(0.95)
       << ", \"score_p99_us\": " << m.metrics.score_latency.PercentileMicros(0.99)
       << ", \"e2e_p50_us\": " << m.metrics.e2e_latency.PercentileMicros(0.5)
       << ", \"e2e_p95_us\": " << m.metrics.e2e_latency.PercentileMicros(0.95)
       << ", \"e2e_p99_us\": " << m.metrics.e2e_latency.PercentileMicros(0.99)
       << ", \"state_refolds\": " << m.metrics.state_refolds
       << ", \"state_rescales\": " << m.metrics.state_rescales << "}";
  return line.str();
}

}  // namespace

int main(int argc, char** argv) {
  int64_t max_refolds = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--max_refolds=", 14) == 0) {
      max_refolds = std::atoll(arg + 14);
    } else {
      std::fprintf(stderr, "unknown flag %s (supported: --max_refolds=N)\n",
                   arg);
      return 2;
    }
  }

  const int64_t sessions = tpgnn::GetEnvInt("TPGNN_SERVE_SESSIONS", 200);
  const int shards =
      static_cast<int>(tpgnn::GetEnvInt("TPGNN_SERVE_SHARDS", 4));
  const int64_t score_every =
      tpgnn::GetEnvInt("TPGNN_SERVE_SCORE_EVERY", 8);
  const int64_t sweep_max =
      tpgnn::GetEnvInt("TPGNN_SERVE_SWEEP_MAX", 10000);

  tpgnn::graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), sessions, /*seed=*/17);
  serve::ReplayOptions replay_options;
  replay_options.session_start_interval = 0.25;
  replay_options.score_every_edges = score_every;
  serve::EventReplayer replayer(dataset, replay_options);
  std::printf("stream: %zu sessions, %zu events, %zu score requests, "
              "%d shards\n",
              replayer.num_sessions(), replayer.events().size(),
              replayer.num_score_requests(), shards);

  std::vector<ServeMeasurement> measurements;
  for (const core::Updater updater :
       {core::Updater::kSum, core::Updater::kGru}) {
    for (const core::TimeBasis basis :
         {core::TimeBasis::kInvariant, core::TimeBasis::kAbsolute}) {
      core::TpGnnConfig config;
      config.updater = updater;
      config.time_basis = basis;
      std::string name = updater == core::Updater::kSum ? "sum" : "gru";
      if (basis == core::TimeBasis::kAbsolute) {
        name += "_refold";
      }
      RunStream(name, config, replayer.events(),
                replayer.num_score_requests(), shards);  // Warm-up.
      const ServeMeasurement m = RunStream(
          name, config, replayer.events(), replayer.num_score_requests(),
          shards);
      std::printf(
          "%-10s %10.0f events/s %9.0f scores/s  score p50/p95/p99 "
          "%5.0f/%5.0f/%5.0f us  e2e p99 %6.0f us  refolds %llu  "
          "rescales %llu\n",
          m.name.c_str(), m.events_per_second(), m.scores_per_second(),
          m.metrics.score_latency.PercentileMicros(0.5),
          m.metrics.score_latency.PercentileMicros(0.95),
          m.metrics.score_latency.PercentileMicros(0.99),
          m.metrics.e2e_latency.PercentileMicros(0.99),
          static_cast<unsigned long long>(m.metrics.state_refolds),
          static_cast<unsigned long long>(m.metrics.state_rescales));
      measurements.push_back(m);
    }
  }

  // Long-session sweep: fold cost isolated from the extractor
  // (Variant::kTime2Vec pools node states in O(nodes)), one session per
  // run, scored every 16 edges. The absolute basis replays the whole
  // session per max-moving score (O(length) per score); the invariant basis
  // rescales at finalize (O(1) in length).
  std::printf("\nlong-session sweep (per-score mean us; flat = O(1)):\n");
  for (const core::Updater updater :
       {core::Updater::kSum, core::Updater::kGru}) {
    for (const core::TimeBasis basis :
         {core::TimeBasis::kInvariant, core::TimeBasis::kAbsolute}) {
      for (const int64_t length : {10LL, 100LL, 1000LL, 10000LL}) {
        if (length > sweep_max) continue;
        core::TpGnnConfig config;
        config.updater = updater;
        config.time_basis = basis;
        config.variant = core::Variant::kTime2Vec;
        config.embed_dim = 8;
        config.time_dim = 4;
        config.hidden_dim = 8;
        std::ostringstream name;
        name << "sweep_" << (updater == core::Updater::kSum ? "sum" : "gru")
             << (basis == core::TimeBasis::kInvariant ? "" : "_refold") << "_"
             << length;
        size_t num_scores = 0;
        const std::vector<serve::Event> events =
            LongSessionEvents(length, &num_scores);
        RunStream(name.str(), config, events, num_scores, 1,
                  /*drain_immediately=*/true);  // Warm-up.
        const ServeMeasurement m = RunStream(name.str(), config, events,
                                             num_scores, 1,
                                             /*drain_immediately=*/true);
        std::printf("%-22s %8.1f us/score  %9.0f events/s  refolds %llu\n",
                    m.name.c_str(),
                    m.metrics.score_latency.mean_micros(),
                    m.events_per_second(),
                    static_cast<unsigned long long>(m.metrics.state_refolds));
        measurements.push_back(m);
      }
    }
  }

  const std::string path =
      tpgnn::GetEnvString("TPGNN_BENCH_SERVE_JSON", "BENCH_serve.json");
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "[\n";
  for (size_t i = 0; i < measurements.size(); ++i) {
    out << "  " << ToJsonLine(measurements[i])
        << (i + 1 < measurements.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::printf("wrote %s\n", path.c_str());

  // Refold gate: an invariant-basis run over a monotone stream must not
  // refold (beyond the allowed budget for deliberately disordered streams).
  bool gate_failed = false;
  for (const ServeMeasurement& m : measurements) {
    if (m.refold_gated &&
        m.metrics.state_refolds > static_cast<uint64_t>(max_refolds)) {
      std::fprintf(stderr,
                   "REFOLD GATE: %s reported %llu state_refolds "
                   "(max_refolds=%lld)\n",
                   m.name.c_str(),
                   static_cast<unsigned long long>(m.metrics.state_refolds),
                   static_cast<long long>(max_refolds));
      gate_failed = true;
    }
  }
  return gate_failed ? 1 : 0;
}
