// Serving benchmark: drive the InferenceEngine flat-out with a replayed
// event stream and record sustained throughput plus latency percentiles.
//
// Runs the stream twice per updater (SUM and GRU): a warm-up pass and a
// measured pass. Prints a human-readable table and writes a
// machine-readable record to BENCH_serve.json (TPGNN_BENCH_SERVE_JSON).
//
// Scale knobs: TPGNN_SERVE_SESSIONS (default 200), TPGNN_SERVE_SHARDS
// (default 4), TPGNN_SERVE_SCORE_EVERY (default 8 edges).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/datasets.h"
#include "serve/inference_engine.h"
#include "serve/replay.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace core = tpgnn::core;
namespace data = tpgnn::data;
namespace serve = tpgnn::serve;

namespace {

struct ServeMeasurement {
  std::string name;
  size_t events = 0;
  size_t scores = 0;
  double wall_seconds = 0.0;
  serve::MetricsSnapshot metrics;

  double events_per_second() const {
    return wall_seconds > 0.0 ? events / wall_seconds : 0.0;
  }
  double scores_per_second() const {
    return wall_seconds > 0.0 ? scores / wall_seconds : 0.0;
  }
};

// Replays the full stream through a fresh engine, returning wall time and
// the engine's metrics snapshot. Backpressure is honoured the way a real
// caller would: a kOverloaded Ingest triggers a ProcessPending drain.
ServeMeasurement RunStream(const std::string& name,
                           const core::TpGnnConfig& config,
                           const serve::EventReplayer& replayer,
                           int num_shards) {
  serve::EngineOptions options;
  options.num_shards = num_shards;
  options.max_pending_scores = 256;
  options.max_batch = 64;
  serve::InferenceEngine engine(config, /*seed=*/1, options);

  std::vector<serve::ScoreResult> results;
  results.reserve(replayer.num_score_requests());
  tpgnn::Stopwatch wall;
  for (const serve::Event& event : replayer.events()) {
    tpgnn::Status status = engine.Ingest(event);
    while (status.code() == tpgnn::StatusCode::kOverloaded) {
      engine.ProcessPending(&results);
      status = engine.Ingest(event);
    }
    TPGNN_CHECK(status.ok()) << status.ToString();
    if (engine.pending_scores() >= options.max_batch) {
      engine.ProcessPending(&results);
    }
  }
  engine.Flush(&results);

  ServeMeasurement m;
  m.name = name;
  m.wall_seconds = wall.ElapsedSeconds();
  m.events = replayer.events().size();
  for (const serve::ScoreResult& r : results) {
    if (r.status.ok()) ++m.scores;
  }
  m.metrics = engine.metrics().Snapshot();
  return m;
}

std::string ToJsonLine(const ServeMeasurement& m) {
  std::ostringstream line;
  line << "{\"bench\": \"serve_" << m.name
       << "\", \"events\": " << m.events
       << ", \"scores\": " << m.scores
       << ", \"wall_seconds\": " << m.wall_seconds
       << ", \"events_per_second\": " << m.events_per_second()
       << ", \"scores_per_second\": " << m.scores_per_second()
       << ", \"score_p50_us\": " << m.metrics.score_latency.PercentileMicros(0.5)
       << ", \"score_p95_us\": " << m.metrics.score_latency.PercentileMicros(0.95)
       << ", \"score_p99_us\": " << m.metrics.score_latency.PercentileMicros(0.99)
       << ", \"e2e_p50_us\": " << m.metrics.e2e_latency.PercentileMicros(0.5)
       << ", \"e2e_p95_us\": " << m.metrics.e2e_latency.PercentileMicros(0.95)
       << ", \"e2e_p99_us\": " << m.metrics.e2e_latency.PercentileMicros(0.99)
       << ", \"state_refolds\": " << m.metrics.state_refolds << "}";
  return line.str();
}

}  // namespace

int main() {
  const int64_t sessions = tpgnn::GetEnvInt("TPGNN_SERVE_SESSIONS", 200);
  const int shards =
      static_cast<int>(tpgnn::GetEnvInt("TPGNN_SERVE_SHARDS", 4));
  const int64_t score_every =
      tpgnn::GetEnvInt("TPGNN_SERVE_SCORE_EVERY", 8);

  tpgnn::graph::GraphDataset dataset =
      data::MakeDataset(data::HdfsSpec(), sessions, /*seed=*/17);
  serve::ReplayOptions replay_options;
  replay_options.session_start_interval = 0.25;
  replay_options.score_every_edges = score_every;
  serve::EventReplayer replayer(dataset, replay_options);
  std::printf("stream: %zu sessions, %zu events, %zu score requests, "
              "%d shards\n",
              replayer.num_sessions(), replayer.events().size(),
              replayer.num_score_requests(), shards);

  std::vector<ServeMeasurement> measurements;
  for (const core::Updater updater :
       {core::Updater::kSum, core::Updater::kGru}) {
    core::TpGnnConfig config;
    config.updater = updater;
    const std::string name =
        updater == core::Updater::kSum ? "sum" : "gru";
    RunStream(name, config, replayer, shards);  // Warm-up.
    const ServeMeasurement m = RunStream(name, config, replayer, shards);
    std::printf("%-4s %10.0f events/s %9.0f scores/s  score p50/p95/p99 "
                "%5.0f/%5.0f/%5.0f us  e2e p99 %6.0f us  refolds %llu\n",
                m.name.c_str(), m.events_per_second(), m.scores_per_second(),
                m.metrics.score_latency.PercentileMicros(0.5),
                m.metrics.score_latency.PercentileMicros(0.95),
                m.metrics.score_latency.PercentileMicros(0.99),
                m.metrics.e2e_latency.PercentileMicros(0.99),
                static_cast<unsigned long long>(m.metrics.state_refolds));
    measurements.push_back(m);
  }

  const std::string path =
      tpgnn::GetEnvString("TPGNN_BENCH_SERVE_JSON", "BENCH_serve.json");
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "[\n";
  for (size_t i = 0; i < measurements.size(); ++i) {
    out << "  " << ToJsonLine(measurements[i])
        << (i + 1 < measurements.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
